// Benchmarks that regenerate every table and figure of the paper's evaluation
// (Sec. VII) on scaled-down synthetic datasets, one benchmark per table or
// figure, plus component micro-benchmarks. The experiment harness itself
// lives in internal/experiments; cmd/experiments runs the same harness and
// prints the full tables (see EXPERIMENTS.md).
//
// Run with:
//
//	go test -bench=. -benchmem
package seqmine_test

import (
	"context"
	"sync"
	"testing"

	"seqmine"
	"seqmine/internal/dseq"
	"seqmine/internal/experiments"
	"seqmine/internal/fst"
	"seqmine/internal/mapreduce"
	"seqmine/internal/obs"
)

// benchScale keeps the full benchmark suite in the minutes range. Increase it
// (or run cmd/experiments -scale default) for more pronounced differences
// between the algorithms.
var benchScale = experiments.Scale{
	NYTSentences:     1000,
	AmazonCustomers:  700,
	ClueWebSentences: 1000,
	Workers:          2,
	Seed:             1,
}

var (
	benchOnce sync.Once
	benchData *experiments.Datasets
	benchErr  error
)

func benchDatasets(b *testing.B) *experiments.Datasets {
	b.Helper()
	benchOnce.Do(func() {
		benchData, benchErr = experiments.Generate(benchScale)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchData
}

// runTable is the common driver: it executes the experiment b.N times and
// fails the benchmark if the experiment reports an inconsistency.
func runTable(b *testing.B, f func(*experiments.Datasets) (experiments.Table, error)) {
	ds := benchDatasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := f(ds)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

// --- Table II: dataset and hierarchy characteristics -----------------------

func BenchmarkTableII_DatasetStats(b *testing.B) {
	runTable(b, func(ds *experiments.Datasets) (experiments.Table, error) {
		return experiments.TableII(ds), nil
	})
}

// --- Table III: example constraints and found frequent sequences -----------

func BenchmarkTableIII_ExampleConstraints(b *testing.B) {
	runTable(b, experiments.TableIII)
}

// --- Table IV: candidate subsequence statistics (CSPI) ---------------------

func BenchmarkTableIV_CSPI(b *testing.B) {
	runTable(b, experiments.TableIV)
}

// --- Fig. 9: flexible constraints -------------------------------------------

func BenchmarkFig9a_FlexibleNYT(b *testing.B) {
	runTable(b, experiments.Fig9a)
}

func BenchmarkFig9b_FlexibleAMZN(b *testing.B) {
	runTable(b, experiments.Fig9b)
}

func BenchmarkFig9c_ShuffleSize(b *testing.B) {
	runTable(b, experiments.Fig9c)
}

// --- Fig. 10: detailed analysis (ablations) ---------------------------------

func BenchmarkFig10a_DSeqAblation(b *testing.B) {
	runTable(b, experiments.Fig10a)
}

func BenchmarkFig10b_DCandAblation(b *testing.B) {
	runTable(b, experiments.Fig10b)
}

// --- Fig. 11: scalability ----------------------------------------------------

func BenchmarkFig11a_DataScalability(b *testing.B) {
	runTable(b, experiments.Fig11a)
}

func BenchmarkFig11b_StrongScalability(b *testing.B) {
	runTable(b, experiments.Fig11b)
}

func BenchmarkFig11c_WeakScalability(b *testing.B) {
	runTable(b, experiments.Fig11c)
}

// --- Table V: speed-up over sequential execution -----------------------------

func BenchmarkTableV_Speedup(b *testing.B) {
	runTable(b, experiments.TableV)
}

// --- Fig. 12: LASH setting ----------------------------------------------------

func BenchmarkFig12_LashSetting(b *testing.B) {
	runTable(b, experiments.Fig12)
}

// --- Fig. 13: MLlib setting ---------------------------------------------------

func BenchmarkFig13_MLlibSetting(b *testing.B) {
	runTable(b, experiments.Fig13)
}

// --- Calibration --------------------------------------------------------------

// BenchmarkCalibration is a fixed, dataset-independent, single-threaded CPU
// workload. The CI bench-compare gate (cmd/benchgate) uses it to normalize
// machine speed between the committed BENCH_baseline.json and the runner
// executing the comparison; it is excluded from the regression geomean. The
// mixer is inlined (splitmix64 finalizer constants) rather than calling any
// repo code on purpose: if it shared code with the gated hot paths, a real
// regression there would inflate the calibration scale and divide itself
// out of every ratio.
func BenchmarkCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var acc uint64
		for j := uint64(0); j < 1<<22; j++ {
			x := j + 0x9e3779b97f4a7c15
			x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
			x = (x ^ (x >> 27)) * 0x94d049bb133111eb
			acc ^= x ^ (x >> 31)
		}
		if acc == 42 {
			b.Fatal("unreachable; keeps the loop from being optimized away")
		}
	}
}

// --- Component micro-benchmarks ----------------------------------------------

// BenchmarkAlgorithms_N1 measures one end-to-end run per algorithm on the
// selective N1 constraint (NYT-like data) through the public API.
func BenchmarkAlgorithms_N1(b *testing.B) {
	ds := benchDatasets(b)
	algos := []seqmine.Algorithm{seqmine.SequentialDFS, seqmine.DSeq, seqmine.DCand, seqmine.SemiNaive}
	for _, algo := range algos {
		b.Run(algo.String(), func(b *testing.B) {
			b.ReportAllocs()
			opts := benchOptions(algo)
			for i := 0; i < b.N; i++ {
				if _, err := seqmine.Mine(ds.NYT, ".*ENTITY (VERB+ NOUN+? PREP?) ENTITY.*", 3, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchOptions pins every knob that could change what the gated benchmarks
// measure: the spill and streaming shuffle paths are explicitly disabled (not
// just left to defaults) so a future default change cannot silently alter the
// committed baseline's meaning.
func benchOptions(algo seqmine.Algorithm) seqmine.Options {
	opts := seqmine.DefaultOptions()
	opts.Algorithm = algo
	opts.Workers = benchScale.Workers
	opts.SpillThreshold = 0
	opts.SendBufferBytes = 0
	opts.CompressSpill = false
	opts.Prefilter = false
	return opts
}

// BenchmarkSpanOverhead measures the tracing layer's cost on the D-SEQ hot
// path: the identical mine with no recorder on the context — StartSpan takes
// the nil fast path everywhere — versus a recorder attached and every engine
// span recorded. The "off" variant rides the CI bench-compare gate like any
// other benchmark, and the published off/on pair pins the budget: recording
// must stay within 2% of the untraced run.
func BenchmarkSpanOverhead(b *testing.B) {
	ds := benchDatasets(b)
	f, err := fst.Compile(".*ENTITY (VERB+ NOUN+? PREP?) ENTITY.*", ds.NYT.Dict)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		ctx  context.Context
	}{
		{"off", context.Background()},
		{"on", obs.WithRecorder(context.Background(), obs.NewRecorder("bench", 0))},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := mapreduce.Config{
				MapWorkers:    benchScale.Workers,
				ReduceWorkers: benchScale.Workers,
				Context:       mode.ctx,
			}
			for i := 0; i < b.N; i++ {
				if _, _, err := dseq.MineLocal(f, ds.NYT.Sequences, 3, dseq.DefaultOptions(), cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAlgorithms_T3 measures one end-to-end run per algorithm on the
// loose T3 constraint (AMZN-F-like data).
func BenchmarkAlgorithms_T3(b *testing.B) {
	ds := benchDatasets(b)
	expr := experiments.T3Expr(1, 5)
	algos := []seqmine.Algorithm{seqmine.SequentialDFS, seqmine.DSeq, seqmine.DCand}
	for _, algo := range algos {
		b.Run(algo.String(), func(b *testing.B) {
			b.ReportAllocs()
			opts := benchOptions(algo)
			for i := 0; i < b.N; i++ {
				if _, err := seqmine.Mine(ds.AMZNF, expr, 10, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
