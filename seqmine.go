// Package seqmine is a library for scalable frequent sequence mining with
// flexible subsequence constraints. It reproduces the system described in
// "Scalable Frequent Sequence Mining with Flexible Subsequence Constraints"
// (Renz-Wieland, Bertsch, Gemulla; ICDE 2019): subsequence constraints are
// stated in the DESQ pattern-expression language (regular expressions with
// capture groups, item hierarchies and generalization), and mining can run
// either sequentially (DESQ-DFS / DESQ-COUNT) or distributed over a bulk
// synchronous parallel engine with one round of communication using the
// D-SEQ and D-CAND algorithms of the paper (plus the NAIVE and SEMI-NAIVE
// baselines).
//
// A minimal end-to-end use looks like this:
//
//	db, _ := seqmine.BuildDatabase(rawSequences, hierarchy)
//	result, _ := seqmine.Mine(db, ".*(A)[(.^)|.]*(b).*", 2, seqmine.DefaultOptions())
//	for _, p := range result.Patterns {
//	    fmt.Println(seqmine.DecodePattern(db, p), p.Freq)
//	}
//
// For repeated queries, NewService returns a long-lived mining service with
// a dataset registry, a compiled-pattern cache (identical queries compile the
// FST once) and a partitioned executor; the seqmined daemon (cmd/seqmined)
// exposes the same service over HTTP.
//
// See the examples directory for complete programs and DESIGN.md for the
// mapping between the paper and the packages of this repository, including
// the service layer and its HTTP API.
package seqmine

import (
	"context"
	"fmt"
	"time"

	"seqmine/internal/datagen"
	"seqmine/internal/dict"
	"seqmine/internal/fst"
	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
	"seqmine/internal/seqdb"
	"seqmine/internal/service"
)

// ItemID identifies an item by its frequency rank; see the dict package.
type ItemID = dict.ItemID

// Dictionary is the vocabulary with hierarchy and document frequencies.
type Dictionary = dict.Dictionary

// Hierarchy maps an item to the names of its direct generalizations.
type Hierarchy = seqdb.Hierarchy

// Database is a sequence database together with its dictionary.
type Database = seqdb.Database

// Stats summarizes a database (Table II of the paper).
type Stats = seqdb.Stats

// Pattern is a mined frequent sequence with its frequency.
type Pattern = miner.Pattern

// Metrics describes the execution of a distributed mining job (stage times,
// shuffle volume, partition counts).
type Metrics = mapreduce.Metrics

// Algorithm selects the mining algorithm.
type Algorithm int

const (
	// SequentialDFS is the sequential DESQ-DFS pattern-growth miner.
	SequentialDFS Algorithm = iota
	// SequentialCount is the sequential DESQ-COUNT miner (enumerate and
	// count).
	SequentialCount
	// DSeq is the distributed algorithm with sequence representation.
	DSeq
	// DCand is the distributed algorithm with candidate (NFA) representation.
	DCand
	// Naive is the distributed word-count style baseline over all candidates.
	Naive
	// SemiNaive is Naive restricted to candidates of frequent items.
	SemiNaive
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case SequentialDFS:
		return "DESQ-DFS"
	case SequentialCount:
		return "DESQ-COUNT"
	case DSeq:
		return "D-SEQ"
	case DCand:
		return "D-CAND"
	case Naive:
		return "Naive"
	case SemiNaive:
		return "SemiNaive"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures Mine.
type Options struct {
	// Algorithm selects the miner (default D-SEQ).
	Algorithm Algorithm
	// Workers is the parallelism of the distributed algorithms (map and
	// reduce workers); 0 uses all CPUs.
	Workers int

	// UseGrid enables the position–state grid during D-SEQ pivot search.
	UseGrid bool
	// Rewrite enables D-SEQ's sequence rewriting.
	Rewrite bool
	// EarlyStopping enables D-SEQ's local-mining early-stopping heuristic.
	EarlyStopping bool
	// AggregateSequences merges identical rewritten sequences per partition.
	AggregateSequences bool

	// MinimizeNFAs enables D-CAND's NFA minimization.
	MinimizeNFAs bool
	// AggregateNFAs enables D-CAND's combiner aggregation of identical NFAs.
	AggregateNFAs bool

	// Prefilter enables the two-pass reachability prefilter: a cheap backward
	// scan over the flattened FST skips input sequences that cannot produce
	// any accepting run before the expensive mining phase. Works with every
	// algorithm; mined output is byte-identical with and without it.
	Prefilter bool

	// SpillThreshold bounds the in-memory shuffle footprint of the
	// distributed algorithms, in bytes: past it, shuffle partitions spill
	// to sorted temp-file segments and the reduce phase merge-streams
	// them, so datasets whose shuffle exceeds RAM still mine. 0 keeps the
	// shuffle in memory.
	SpillThreshold int64
	// SpillTmpDir is where spill segments are created; empty uses the
	// system temp directory.
	SpillTmpDir string
	// SendBufferBytes, when > 0, switches the distributed algorithms to the
	// streaming pipelined shuffle: map workers emit into bounded per-peer
	// send buffers drained while mapping continues, so shuffle transfer
	// overlaps map compute and map-side memory is capped. 0 keeps the
	// phase-synchronous barrier.
	SendBufferBytes int64
	// SendBufferMaxBytes, when > SendBufferBytes, lets the streaming
	// shuffle grow a destination's send buffer adaptively: a destination
	// that keeps filling its share while its sender keeps up doubles its
	// buffer, up to this bound. 0 (or <= SendBufferBytes) keeps buffers
	// fixed at SendBufferBytes.
	SendBufferMaxBytes int64
	// CompressSpill compresses spill segments with DEFLATE.
	CompressSpill bool

	// ClusterWorkers, when non-empty, runs the distributed algorithms
	// (DSeq, DCand) across these seqmine-worker processes (control URLs)
	// with the fault-tolerant cluster scheduler instead of the in-process
	// engine: the input is pushed once per worker into the shared dataset
	// store and failed or straggling attempts are retried on the surviving
	// workers.
	ClusterWorkers []string
	// TaskRetries is the cluster scheduler's retry budget (cluster runs
	// only); 0 uses the default of 2, negative disables retries.
	TaskRetries int
	// SpeculativeAfter launches one speculative duplicate attempt when a
	// cluster run's attempt exceeds this duration; 0 disables speculation.
	SpeculativeAfter time.Duration
}

// DefaultOptions returns the recommended configuration: D-SEQ with all
// enhancements enabled and one worker per CPU.
func DefaultOptions() Options {
	return Options{
		Algorithm:          DSeq,
		UseGrid:            true,
		Rewrite:            true,
		EarlyStopping:      true,
		AggregateSequences: true,
		MinimizeNFAs:       true,
		AggregateNFAs:      true,
	}
}

// Result is the outcome of a mining run.
type Result struct {
	// Patterns are the frequent sequences, sorted by decreasing frequency.
	Patterns []Pattern
	// Metrics describes the distributed execution; it is zero for the
	// sequential algorithms.
	Metrics Metrics
}

// Constraint is a compiled subsequence constraint bound to a database's
// dictionary.
type Constraint struct {
	expression string
	fst        *fst.FST
}

// Expression returns the pattern expression the constraint was compiled from.
func (c *Constraint) Expression() string { return c.expression }

// BuildDatabase constructs a database (and its dictionary/f-list) from raw
// sequences of item names and an item hierarchy.
func BuildDatabase(raw [][]string, hierarchy Hierarchy) (*Database, error) {
	return seqdb.Build(raw, hierarchy)
}

// ReadDatabaseFiles loads a database from a sequence file (one sequence per
// line, space-separated items) and an optional hierarchy file
// ("child<TAB>parent1,parent2" per line; empty path for no hierarchy).
func ReadDatabaseFiles(sequencesPath, hierarchyPath string) (*Database, error) {
	return seqdb.ReadFiles(sequencesPath, hierarchyPath)
}

// CompileConstraint parses and compiles a pattern expression against the
// database's dictionary.
func CompileConstraint(db *Database, expression string) (*Constraint, error) {
	f, err := fst.Compile(expression, db.Dict)
	if err != nil {
		return nil, err
	}
	return &Constraint{expression: expression, fst: f}, nil
}

// Mine compiles the pattern expression and mines the database for frequent
// sequences with minimum support sigma.
func Mine(db *Database, expression string, sigma int64, opts Options) (*Result, error) {
	c, err := CompileConstraint(db, expression)
	if err != nil {
		return nil, err
	}
	return MineConstraint(db, c, sigma, opts)
}

// MineConstraint mines the database with a previously compiled constraint.
// The backend dispatch is shared with the service layer (internal/service);
// the sequential algorithms run unsharded here, exactly as in the paper.
func MineConstraint(db *Database, c *Constraint, sigma int64, opts Options) (*Result, error) {
	eo := opts.execOptions(1)
	if eo.Cluster != nil {
		eo.Cluster.Expression = c.expression
	}
	patterns, metrics, _, err := service.Execute(context.Background(), c.fst, db, sigma, eo)
	if err != nil {
		return nil, fmt.Errorf("seqmine: %w", err)
	}
	return &Result{Patterns: patterns, Metrics: metrics}, nil
}

// execOptions maps Options to the service layer's execution options. shards
// fixes the partition count of the sequential backends (1 = unsharded).
func (o Options) execOptions(shards int) service.ExecOptions {
	eo := service.ExecOptions{
		Algorithm:          o.Algorithm.serviceName(),
		Workers:            o.Workers,
		Shards:             shards,
		UseGrid:            o.UseGrid,
		Rewrite:            o.Rewrite,
		EarlyStopping:      o.EarlyStopping,
		AggregateSequences: o.AggregateSequences,
		MinimizeNFAs:       o.MinimizeNFAs,
		AggregateNFAs:      o.AggregateNFAs,
		Prefilter:          o.Prefilter,
		SpillThreshold:     o.SpillThreshold,
		SpillTmpDir:        o.SpillTmpDir,
		SendBufferBytes:    o.SendBufferBytes,
		SendBufferMaxBytes: o.SendBufferMaxBytes,
		CompressSpill:      o.CompressSpill,
		TaskRetries:        o.TaskRetries,
		SpeculativeAfter:   o.SpeculativeAfter,
	}
	if len(o.ClusterWorkers) > 0 {
		eo.Cluster = &service.ClusterOptions{Workers: o.ClusterWorkers}
	}
	return eo
}

// DecodePattern renders a mined pattern as a space-separated string of item
// names.
func DecodePattern(db *Database, p Pattern) string {
	return db.Dict.DecodeString(p.Items)
}

// PatternsAsMap converts mined patterns to a map keyed by the decoded pattern
// string.
func PatternsAsMap(db *Database, ps []Pattern) map[string]int64 {
	return miner.PatternsToMap(db.Dict, ps)
}

// CountMatches returns how many input sequences satisfy the constraint (have
// at least one candidate subsequence) — the "matched sequences" statistic of
// Table IV.
func CountMatches(db *Database, c *Constraint) int {
	n := 0
	for _, T := range db.Sequences {
		if c.fst.Accepts(T) {
			n++
		}
	}
	return n
}

// QueryMetrics describes the execution of one service query (compile/mine
// time, cache hit, shard counts).
type QueryMetrics = service.QueryMetrics

// ServiceMetrics is a snapshot of a service's aggregate metrics (queries
// served, cache hit rate, per-dataset info).
type ServiceMetrics = service.Snapshot

// ServiceOptions configures NewService.
type ServiceOptions struct {
	// CacheSize is the capacity (entries) of the compiled-pattern cache;
	// 0 means 128.
	CacheSize int
	// Workers bounds each query's worker pool when the query does not set
	// its own; 0 uses all CPUs.
	Workers int
	// MaxConcurrent bounds the number of queries mining at once; 0 means
	// unbounded. Excess queries wait in the bounded admission queue
	// (QueueDepth) and past that are shed with an overload error.
	MaxConcurrent int
	// QueueDepth is the admission queue bound: how many queries may wait for
	// a mining slot before the service sheds load. 0 defaults to
	// 4×MaxConcurrent; negative means no waiting room. Ignored when
	// MaxConcurrent is 0.
	QueueDepth int
	// ResultCacheSize is the capacity (entries) of the mined-result cache,
	// keyed by (dataset generation, expression, sigma, algorithm); 0 disables
	// result caching.
	ResultCacheSize int
	// DefaultTimeout is the per-query deadline applied when the caller's
	// context has none; 0 means no default deadline.
	DefaultTimeout time.Duration
	// ClusterWorkers are the control URLs of a default worker cluster for
	// queries that request distributed execution.
	ClusterWorkers []string
	// TaskRetries is the default retry budget of cluster-executed queries;
	// 0 uses the scheduler's built-in budget of 2, negative disables.
	TaskRetries int
	// SpeculativeAfter is the default straggler threshold for speculative
	// re-execution of cluster-executed queries; 0 disables speculation.
	SpeculativeAfter time.Duration
	// SpillThreshold is the default shuffle spill threshold in bytes per
	// peer for queries that do not set their own; 0 keeps shuffles in
	// memory.
	SpillThreshold int64
	// SpillTmpDir is where shuffle spill segments are created; empty uses
	// the system temp directory.
	SpillTmpDir string
	// SendBufferBytes is the default streaming send-buffer size in bytes
	// per peer for queries that do not set their own; 0 keeps the
	// phase-synchronous barrier.
	SendBufferBytes int64
	// SendBufferMaxBytes is the default adaptive send-buffer bound for
	// queries that do not set their own; see Options.SendBufferMaxBytes.
	SendBufferMaxBytes int64
	// CompressSpill compresses spill segments with DEFLATE by default.
	CompressSpill bool
	// Prefilter enables the two-pass reachability prefilter by default for
	// queries that do not request it themselves.
	Prefilter bool
}

// Service is a long-lived, concurrency-safe mining service: it holds named
// datasets, caches compiled FSTs across queries (with singleflight
// deduplication of concurrent identical compilations) and mines queries over
// a partitioned executor. It is the library-level counterpart of the
// seqmined daemon.
type Service struct {
	inner *service.Service
}

// NewService creates a mining service.
func NewService(opts ServiceOptions) *Service {
	return &Service{inner: service.New(service.Config{
		CacheSize:          opts.CacheSize,
		Workers:            opts.Workers,
		MaxConcurrent:      opts.MaxConcurrent,
		QueueDepth:         opts.QueueDepth,
		ResultCacheSize:    opts.ResultCacheSize,
		DefaultTimeout:     opts.DefaultTimeout,
		ClusterWorkers:     opts.ClusterWorkers,
		SpillThreshold:     opts.SpillThreshold,
		SpillTmpDir:        opts.SpillTmpDir,
		SendBufferBytes:    opts.SendBufferBytes,
		SendBufferMaxBytes: opts.SendBufferMaxBytes,
		CompressSpill:      opts.CompressSpill,
		Prefilter:          opts.Prefilter,
		TaskRetries:        opts.TaskRetries,
		SpeculativeAfter:   opts.SpeculativeAfter,
	})}
}

// RegisterDatabase adds (or replaces) a database under the given name.
func (s *Service) RegisterDatabase(name string, db *Database) error {
	_, err := s.inner.RegisterDataset(name, db)
	return err
}

// LoadDataset reads a database from a sequence file (and optional hierarchy
// file) and registers it under name.
func (s *Service) LoadDataset(name, sequencesPath, hierarchyPath string) error {
	_, err := s.inner.LoadDataset(name, sequencesPath, hierarchyPath)
	return err
}

// RemoveDataset unregisters a dataset; in-flight queries are unaffected.
func (s *Service) RemoveDataset(name string) bool { return s.inner.RemoveDataset(name) }

// Mine runs one query against a registered dataset. Repeated queries with
// the same expression reuse the cached compiled FST; execution is partitioned
// over the service's worker pool and honors ctx cancellation and deadlines.
func (s *Service) Mine(ctx context.Context, dataset, expression string, sigma int64, opts Options) (*Result, QueryMetrics, error) {
	resp, err := s.inner.Mine(ctx, service.Query{
		Dataset:    dataset,
		Expression: expression,
		Sigma:      sigma,
		Options:    opts.execOptions(0),
	})
	if err != nil {
		return nil, QueryMetrics{}, err
	}
	return &Result{Patterns: resp.Patterns, Metrics: resp.Metrics.MapReduce}, resp.Metrics, nil
}

// Metrics returns a snapshot of the service's aggregate metrics.
func (s *Service) Metrics() ServiceMetrics { return s.inner.Metrics() }

// serviceName maps the Algorithm enum to the service layer's wire names.
func (a Algorithm) serviceName() service.Algorithm {
	switch a {
	case SequentialDFS:
		return service.AlgoDFS
	case SequentialCount:
		return service.AlgoCount
	case DSeq:
		return service.AlgoDSeq
	case DCand:
		return service.AlgoDCand
	case Naive:
		return service.AlgoNaive
	case SemiNaive:
		return service.AlgoSemiNaive
	default:
		return service.Algorithm(fmt.Sprintf("algorithm(%d)", int(a)))
	}
}

// GenerateNYTLike generates the synthetic NYT-like text corpus (see the
// datagen package) with the given number of sentences and seed.
func GenerateNYTLike(numSentences int, seed int64) (*Database, error) {
	return datagen.NYT(datagen.NYTConfig{NumSentences: numSentences, Seed: seed})
}

// GenerateAmazonLike generates the synthetic AMZN-like market-basket dataset.
// With forest == true the hierarchy is restricted to a forest (AMZN-F).
func GenerateAmazonLike(numCustomers int, seed int64, forest bool) (*Database, error) {
	return datagen.Amazon(datagen.AmazonConfig{NumCustomers: numCustomers, Seed: seed, Forest: forest})
}

// GenerateClueWebLike generates the synthetic CW-like plain-text corpus
// without a hierarchy.
func GenerateClueWebLike(numSentences int, seed int64) (*Database, error) {
	return datagen.ClueWeb(datagen.ClueWebConfig{NumSentences: numSentences, Seed: seed})
}
