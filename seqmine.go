// Package seqmine is a library for scalable frequent sequence mining with
// flexible subsequence constraints. It reproduces the system described in
// "Scalable Frequent Sequence Mining with Flexible Subsequence Constraints"
// (Renz-Wieland, Bertsch, Gemulla; ICDE 2019): subsequence constraints are
// stated in the DESQ pattern-expression language (regular expressions with
// capture groups, item hierarchies and generalization), and mining can run
// either sequentially (DESQ-DFS / DESQ-COUNT) or distributed over a bulk
// synchronous parallel engine with one round of communication using the
// D-SEQ and D-CAND algorithms of the paper (plus the NAIVE and SEMI-NAIVE
// baselines).
//
// A minimal end-to-end use looks like this:
//
//	db, _ := seqmine.BuildDatabase(rawSequences, hierarchy)
//	result, _ := seqmine.Mine(db, ".*(A)[(.^)|.]*(b).*", 2, seqmine.DefaultOptions())
//	for _, p := range result.Patterns {
//	    fmt.Println(seqmine.DecodePattern(db, p), p.Freq)
//	}
//
// See the examples directory for complete programs and DESIGN.md for the
// mapping between the paper and the packages of this repository.
package seqmine

import (
	"fmt"
	"os"

	"seqmine/internal/datagen"
	"seqmine/internal/dcand"
	"seqmine/internal/dict"
	"seqmine/internal/dseq"
	"seqmine/internal/fst"
	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
	"seqmine/internal/naive"
	"seqmine/internal/seqdb"
)

// ItemID identifies an item by its frequency rank; see the dict package.
type ItemID = dict.ItemID

// Dictionary is the vocabulary with hierarchy and document frequencies.
type Dictionary = dict.Dictionary

// Hierarchy maps an item to the names of its direct generalizations.
type Hierarchy = seqdb.Hierarchy

// Database is a sequence database together with its dictionary.
type Database = seqdb.Database

// Stats summarizes a database (Table II of the paper).
type Stats = seqdb.Stats

// Pattern is a mined frequent sequence with its frequency.
type Pattern = miner.Pattern

// Metrics describes the execution of a distributed mining job (stage times,
// shuffle volume, partition counts).
type Metrics = mapreduce.Metrics

// Algorithm selects the mining algorithm.
type Algorithm int

const (
	// SequentialDFS is the sequential DESQ-DFS pattern-growth miner.
	SequentialDFS Algorithm = iota
	// SequentialCount is the sequential DESQ-COUNT miner (enumerate and
	// count).
	SequentialCount
	// DSeq is the distributed algorithm with sequence representation.
	DSeq
	// DCand is the distributed algorithm with candidate (NFA) representation.
	DCand
	// Naive is the distributed word-count style baseline over all candidates.
	Naive
	// SemiNaive is Naive restricted to candidates of frequent items.
	SemiNaive
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case SequentialDFS:
		return "DESQ-DFS"
	case SequentialCount:
		return "DESQ-COUNT"
	case DSeq:
		return "D-SEQ"
	case DCand:
		return "D-CAND"
	case Naive:
		return "Naive"
	case SemiNaive:
		return "SemiNaive"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures Mine.
type Options struct {
	// Algorithm selects the miner (default D-SEQ).
	Algorithm Algorithm
	// Workers is the parallelism of the distributed algorithms (map and
	// reduce workers); 0 uses all CPUs.
	Workers int

	// UseGrid enables the position–state grid during D-SEQ pivot search.
	UseGrid bool
	// Rewrite enables D-SEQ's sequence rewriting.
	Rewrite bool
	// EarlyStopping enables D-SEQ's local-mining early-stopping heuristic.
	EarlyStopping bool
	// AggregateSequences merges identical rewritten sequences per partition.
	AggregateSequences bool

	// MinimizeNFAs enables D-CAND's NFA minimization.
	MinimizeNFAs bool
	// AggregateNFAs enables D-CAND's combiner aggregation of identical NFAs.
	AggregateNFAs bool
}

// DefaultOptions returns the recommended configuration: D-SEQ with all
// enhancements enabled and one worker per CPU.
func DefaultOptions() Options {
	return Options{
		Algorithm:          DSeq,
		UseGrid:            true,
		Rewrite:            true,
		EarlyStopping:      true,
		AggregateSequences: true,
		MinimizeNFAs:       true,
		AggregateNFAs:      true,
	}
}

// Result is the outcome of a mining run.
type Result struct {
	// Patterns are the frequent sequences, sorted by decreasing frequency.
	Patterns []Pattern
	// Metrics describes the distributed execution; it is zero for the
	// sequential algorithms.
	Metrics Metrics
}

// Constraint is a compiled subsequence constraint bound to a database's
// dictionary.
type Constraint struct {
	expression string
	fst        *fst.FST
}

// Expression returns the pattern expression the constraint was compiled from.
func (c *Constraint) Expression() string { return c.expression }

// BuildDatabase constructs a database (and its dictionary/f-list) from raw
// sequences of item names and an item hierarchy.
func BuildDatabase(raw [][]string, hierarchy Hierarchy) (*Database, error) {
	return seqdb.Build(raw, hierarchy)
}

// ReadDatabaseFiles loads a database from a sequence file (one sequence per
// line, space-separated items) and an optional hierarchy file
// ("child<TAB>parent1,parent2" per line; empty path for no hierarchy).
func ReadDatabaseFiles(sequencesPath, hierarchyPath string) (*Database, error) {
	sf, err := os.Open(sequencesPath)
	if err != nil {
		return nil, err
	}
	defer sf.Close()
	raw, err := seqdb.ReadSequences(sf)
	if err != nil {
		return nil, err
	}
	hierarchy := Hierarchy{}
	if hierarchyPath != "" {
		hf, err := os.Open(hierarchyPath)
		if err != nil {
			return nil, err
		}
		defer hf.Close()
		hierarchy, err = seqdb.ReadHierarchy(hf)
		if err != nil {
			return nil, err
		}
	}
	return seqdb.Build(raw, hierarchy)
}

// CompileConstraint parses and compiles a pattern expression against the
// database's dictionary.
func CompileConstraint(db *Database, expression string) (*Constraint, error) {
	f, err := fst.Compile(expression, db.Dict)
	if err != nil {
		return nil, err
	}
	return &Constraint{expression: expression, fst: f}, nil
}

// Mine compiles the pattern expression and mines the database for frequent
// sequences with minimum support sigma.
func Mine(db *Database, expression string, sigma int64, opts Options) (*Result, error) {
	c, err := CompileConstraint(db, expression)
	if err != nil {
		return nil, err
	}
	return MineConstraint(db, c, sigma, opts)
}

// MineConstraint mines the database with a previously compiled constraint.
func MineConstraint(db *Database, c *Constraint, sigma int64, opts Options) (*Result, error) {
	if sigma <= 0 {
		return nil, fmt.Errorf("seqmine: minimum support must be positive, got %d", sigma)
	}
	cfg := mapreduce.Config{MapWorkers: opts.Workers, ReduceWorkers: opts.Workers}
	res := &Result{}
	switch opts.Algorithm {
	case SequentialDFS:
		res.Patterns = miner.MineDFS(c.fst, miner.Weighted(db.Sequences), sigma, miner.DFSOptions{})
	case SequentialCount:
		res.Patterns = miner.MineCount(c.fst, miner.Weighted(db.Sequences), sigma)
	case DSeq:
		res.Patterns, res.Metrics = dseq.Mine(c.fst, db.Sequences, sigma, dseq.Options{
			UseGrid:       opts.UseGrid,
			Rewrite:       opts.Rewrite,
			EarlyStopping: opts.EarlyStopping,
			Aggregate:     opts.AggregateSequences,
		}, cfg)
	case DCand:
		res.Patterns, res.Metrics = dcand.Mine(c.fst, db.Sequences, sigma, dcand.Options{
			Minimize:  opts.MinimizeNFAs,
			Aggregate: opts.AggregateNFAs,
		}, cfg)
	case Naive:
		res.Patterns, res.Metrics = naive.Mine(c.fst, db.Sequences, sigma, naive.Naive, cfg)
	case SemiNaive:
		res.Patterns, res.Metrics = naive.Mine(c.fst, db.Sequences, sigma, naive.SemiNaive, cfg)
	default:
		return nil, fmt.Errorf("seqmine: unknown algorithm %v", opts.Algorithm)
	}
	return res, nil
}

// DecodePattern renders a mined pattern as a space-separated string of item
// names.
func DecodePattern(db *Database, p Pattern) string {
	return db.Dict.DecodeString(p.Items)
}

// PatternsAsMap converts mined patterns to a map keyed by the decoded pattern
// string.
func PatternsAsMap(db *Database, ps []Pattern) map[string]int64 {
	return miner.PatternsToMap(db.Dict, ps)
}

// CountMatches returns how many input sequences satisfy the constraint (have
// at least one candidate subsequence) — the "matched sequences" statistic of
// Table IV.
func CountMatches(db *Database, c *Constraint) int {
	n := 0
	for _, T := range db.Sequences {
		if c.fst.Accepts(T) {
			n++
		}
	}
	return n
}

// GenerateNYTLike generates the synthetic NYT-like text corpus (see the
// datagen package) with the given number of sentences and seed.
func GenerateNYTLike(numSentences int, seed int64) (*Database, error) {
	return datagen.NYT(datagen.NYTConfig{NumSentences: numSentences, Seed: seed})
}

// GenerateAmazonLike generates the synthetic AMZN-like market-basket dataset.
// With forest == true the hierarchy is restricted to a forest (AMZN-F).
func GenerateAmazonLike(numCustomers int, seed int64, forest bool) (*Database, error) {
	return datagen.Amazon(datagen.AmazonConfig{NumCustomers: numCustomers, Seed: seed, Forest: forest})
}

// GenerateClueWebLike generates the synthetic CW-like plain-text corpus
// without a hierarchy.
func GenerateClueWebLike(numSentences int, seed int64) (*Database, error) {
	return datagen.ClueWeb(datagen.ClueWebConfig{NumSentences: numSentences, Seed: seed})
}
