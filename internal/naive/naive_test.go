package naive_test

import (
	"math/rand"
	"reflect"
	"testing"

	"seqmine/internal/dict"
	"seqmine/internal/fst"
	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
	"seqmine/internal/naive"
	"seqmine/internal/paperex"
)

func TestEncodeDecodeSequence(t *testing.T) {
	cases := [][]dict.ItemID{
		nil,
		{1},
		{1, 2, 3},
		{127, 128, 300, 70000},
	}
	for _, seq := range cases {
		got := naive.DecodeSequence(naive.EncodeSequence(seq))
		if len(seq) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, seq) {
			t.Errorf("round trip of %v = %v", seq, got)
		}
	}
}

func TestNaiveRunningExample(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	db := paperex.DB(d)
	cfg := mapreduce.Config{MapWorkers: 2, ReduceWorkers: 2}
	for _, variant := range []naive.Variant{naive.Naive, naive.SemiNaive} {
		got, metrics := naive.Mine(f, db, paperex.Sigma, variant, naive.DefaultOptions(), cfg)
		if m := miner.PatternsToMap(d, got); !reflect.DeepEqual(m, paperex.ExpectedFrequent()) {
			t.Errorf("%v = %v, want %v", variant, m, paperex.ExpectedFrequent())
		}
		if metrics.ShuffleRecords == 0 || metrics.ShuffleBytes == 0 {
			t.Errorf("%v: metrics not populated: %+v", variant, metrics)
		}
	}
}

func TestSemiNaiveShufflesLess(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	db := paperex.DB(d)
	cfg := mapreduce.Config{MapWorkers: 1, ReduceWorkers: 1}
	_, naiveMetrics := naive.Mine(f, db, paperex.Sigma, naive.Naive, naive.DefaultOptions(), cfg)
	_, semiMetrics := naive.Mine(f, db, paperex.Sigma, naive.SemiNaive, naive.DefaultOptions(), cfg)
	// T2 and T4 generate candidates with infrequent items which SEMI-NAIVE
	// never communicates.
	if semiMetrics.MapOutputRecords >= naiveMetrics.MapOutputRecords {
		t.Errorf("SEMI-NAIVE should emit fewer candidates: %d vs %d",
			semiMetrics.MapOutputRecords, naiveMetrics.MapOutputRecords)
	}
	if semiMetrics.ShuffleBytes >= naiveMetrics.ShuffleBytes {
		t.Errorf("SEMI-NAIVE should shuffle fewer bytes: %d vs %d",
			semiMetrics.ShuffleBytes, naiveMetrics.ShuffleBytes)
	}
}

func TestVariantString(t *testing.T) {
	if naive.Naive.String() != "Naive" || naive.SemiNaive.String() != "SemiNaive" {
		t.Error("unexpected Variant names")
	}
}

// TestNaiveMatchesSequential compares both variants against the sequential
// miner on random databases whose f-list is consistent with the data (the
// standing assumption of the paper).
func TestNaiveMatchesSequential(t *testing.T) {
	patterns := []string{paperex.PatternExpression, "[.*(.)]{1,3}.*"}
	rng := rand.New(rand.NewSource(13))
	cfg := mapreduce.Config{MapWorkers: 4, ReduceWorkers: 4}
	for _, pat := range patterns {
		for trial := 0; trial < 4; trial++ {
			d, db := paperex.RandomDatabase(rng, 20, 6)
			f := fst.MustCompile(pat, d)
			for _, sigma := range []int64{1, 2, 3} {
				want := miner.PatternsToMap(d, miner.MineDFS(f, miner.Weighted(db), sigma, miner.DFSOptions{}))
				for _, variant := range []naive.Variant{naive.Naive, naive.SemiNaive} {
					got, _ := naive.Mine(f, db, sigma, variant, naive.DefaultOptions(), cfg)
					if m := miner.PatternsToMap(d, got); !reflect.DeepEqual(m, want) {
						t.Fatalf("%v pattern %q sigma %d: %v != %v", variant, pat, sigma, m, want)
					}
				}
			}
		}
	}
}

// TestNaiveStreamingEquivalence asserts the baselines mine identically with
// the streaming shuffle, whose bounded send buffers also cap the baselines'
// map-side combine (the candidate groups a map worker holds before the
// combiner runs — unbounded in barrier mode).
func TestNaiveStreamingEquivalence(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	db := paperex.DB(d)
	for _, variant := range []naive.Variant{naive.Naive, naive.SemiNaive} {
		want, _ := naive.Mine(f, db, paperex.Sigma, variant, naive.DefaultOptions(), mapreduce.Config{})
		opts := naive.Options{Spill: mapreduce.ShuffleConfig{SendBufferBytes: 32, TmpDir: t.TempDir()}}
		got, metrics, err := naive.MineLocal(f, db, paperex.Sigma, variant, opts, mapreduce.Config{MapWorkers: 2, ReduceWorkers: 2})
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: streaming run differs from barrier run", variant)
		}
		if metrics.StreamedBatches == 0 {
			t.Errorf("%v: expected streamed batches, got %+v", variant, metrics)
		}
	}
}

// TestNaiveSpillEquivalence asserts the baselines also mine identically when
// their candidate shuffle spills to disk (exercising the string-key codec).
func TestNaiveSpillEquivalence(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	db := paperex.DB(d)
	for _, variant := range []naive.Variant{naive.Naive, naive.SemiNaive} {
		want, _ := naive.Mine(f, db, paperex.Sigma, variant, naive.DefaultOptions(), mapreduce.Config{})
		cfg := mapreduce.Config{MapWorkers: 2, ReduceWorkers: 2,
			Shuffle: mapreduce.ShuffleConfig{SpillThreshold: 1, TmpDir: t.TempDir()}}
		got, metrics, err := naive.MineLocal(f, db, paperex.Sigma, variant, naive.DefaultOptions(), cfg)
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: spilling run differs from in-memory run", variant)
		}
		if metrics.SpilledBytes == 0 || metrics.SpillCount == 0 {
			t.Errorf("%v: expected spilling, got %+v", variant, metrics)
		}
	}
}
