// Package naive implements the NAIVE and SEMI-NAIVE baselines of Sec. III-A:
// subsequence-based partitioning in which every candidate subsequence is
// communicated and counted like in word count. NAIVE generates Gπ(T);
// SEMI-NAIVE restricts generation to candidates that consist of frequent
// items only (Gσπ(T)). Both are simple but communicate all candidates and
// can therefore be infeasible for loose constraints.
package naive

import (
	"seqmine/internal/dict"
	"seqmine/internal/fst"
	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
)

// Variant selects the baseline.
type Variant int

const (
	// Naive generates and communicates all candidate subsequences.
	Naive Variant = iota
	// SemiNaive generates only candidates consisting of frequent items.
	SemiNaive
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	if v == SemiNaive {
		return "SemiNaive"
	}
	return "Naive"
}

// Mine runs the baseline on the database and returns the frequent sequences
// together with the engine metrics.
func Mine(f *fst.FST, db [][]dict.ItemID, sigma int64, variant Variant, cfg mapreduce.Config) ([]miner.Pattern, mapreduce.Metrics) {
	genSigma := int64(0)
	if variant == SemiNaive {
		genSigma = sigma
	}
	job := mapreduce.Job[[]dict.ItemID, string, int64, miner.Pattern]{
		Map: func(T []dict.ItemID, emit func(string, int64)) {
			for _, cand := range f.EnumerateCandidates(T, genSigma) {
				emit(EncodeSequence(cand), 1)
			}
		},
		Combine: func(_ string, vs []int64) []int64 {
			var s int64
			for _, v := range vs {
				s += v
			}
			return []int64{s}
		},
		Reduce: func(key string, vs []int64, emit func(miner.Pattern)) {
			var s int64
			for _, v := range vs {
				s += v
			}
			if s >= sigma {
				emit(miner.Pattern{Items: DecodeSequence(key), Freq: s})
			}
		},
		Hash:   mapreduce.HashString,
		SizeOf: func(k string, _ int64) int { return len(k) + 8 },
	}
	out, metrics := mapreduce.Run(db, cfg, job)
	miner.SortPatterns(out)
	return out, metrics
}

// EncodeSequence renders a sequence of fids as a compact varint byte string,
// used as the partition key of subsequence-based partitioning.
func EncodeSequence(seq []dict.ItemID) string {
	buf := make([]byte, 0, len(seq)*2)
	for _, w := range seq {
		v := uint32(w)
		for v >= 0x80 {
			buf = append(buf, byte(v)|0x80)
			v >>= 7
		}
		buf = append(buf, byte(v))
	}
	return string(buf)
}

// DecodeSequence reverses EncodeSequence.
func DecodeSequence(key string) []dict.ItemID {
	var out []dict.ItemID
	var v uint32
	var shift uint
	for i := 0; i < len(key); i++ {
		b := key[i]
		v |= uint32(b&0x7f) << shift
		if b&0x80 == 0 {
			out = append(out, dict.ItemID(v))
			v, shift = 0, 0
		} else {
			shift += 7
		}
	}
	return out
}
