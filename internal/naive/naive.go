// Package naive implements the NAIVE and SEMI-NAIVE baselines of Sec. III-A:
// subsequence-based partitioning in which every candidate subsequence is
// communicated and counted like in word count. NAIVE generates Gπ(T);
// SEMI-NAIVE restricts generation to candidates that consist of frequent
// items only (Gσπ(T)). Both are simple but communicate all candidates and
// can therefore be infeasible for loose constraints.
package naive

import (
	"fmt"

	"seqmine/internal/dict"
	"seqmine/internal/dminer"
	"seqmine/internal/fst"
	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
)

// Variant selects the baseline.
type Variant int

const (
	// Naive generates and communicates all candidate subsequences.
	Naive Variant = iota
	// SemiNaive generates only candidates consisting of frequent items.
	SemiNaive
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	if v == SemiNaive {
		return "SemiNaive"
	}
	return "Naive"
}

// codec is the wire/spill encoding of one shuffle record: the candidate key
// as length-prefixed bytes and the count as a varint.
func codec() mapreduce.FrameCodec[string, int64] {
	return mapreduce.FrameCodec[string, int64]{
		AppendKey: func(buf []byte, k string) []byte {
			buf = mapreduce.AppendUvarint(buf, uint64(len(k)))
			return append(buf, k...)
		},
		ReadKey: func(data []byte, pos int) (string, int, error) {
			n, pos, err := mapreduce.ReadUvarint(data, pos)
			if err != nil {
				return "", 0, err
			}
			if n > uint64(len(data)-pos) {
				return "", 0, fmt.Errorf("naive: key claims %d bytes, %d left", n, len(data)-pos)
			}
			return string(data[pos : pos+int(n)]), pos + int(n), nil
		},
		AppendValue: func(buf []byte, v int64) []byte {
			return mapreduce.AppendUvarint(buf, uint64(v))
		},
		ReadValue: func(data []byte, pos int) (int64, int, error) {
			v, pos, err := mapreduce.ReadUvarint(data, pos)
			return int64(v), pos, err
		},
	}
}

// Options configures the baselines' shuffle. Unlike D-SEQ/D-CAND the
// baselines have no algorithmic enhancement toggles; the struct exists so
// the shuffle knobs thread through the same way.
type Options struct {
	// Spill bounds the shuffle's memory exactly like dseq.Options.Spill /
	// dcand.Options.Spill. Spill.SendBufferBytes is particularly relevant
	// here: it bounds the baselines' map-side combine, whose candidate
	// groups are otherwise proportional to the whole map output — the
	// combiner then runs per send-buffer flush instead of over one unbounded
	// map per worker. The zero value keeps the shuffle in memory behind the
	// barrier. When set it overrides the engine config's Shuffle field.
	Spill mapreduce.ShuffleConfig
	// Prefilter enables the two-pass trick of the paper: map workers run a
	// cheap backward reachability scan (fst.Flat.CanAccept) and skip the
	// candidate enumeration for sequences without any accepting run. Such
	// sequences produce no candidates, so the output is identical either way.
	Prefilter bool
}

// DefaultOptions keeps the shuffle unbounded (the historical behavior).
func DefaultOptions() Options { return Options{} }

// Mine runs the baseline on the database and returns the frequent sequences
// together with the engine metrics. It panics on failure; a run can only
// fail when the shuffle is bounded (Options.Spill / cfg.Shuffle), so callers
// that bound it should prefer MineLocal.
func Mine(f *fst.FST, db [][]dict.ItemID, sigma int64, variant Variant, opts Options, cfg mapreduce.Config) ([]miner.Pattern, mapreduce.Metrics) {
	return dminer.Mine("naive", db, cfg, opts.Spill, buildJob(f, sigma, variant, opts))
}

// MineLocal is Mine with error reporting: bounded-shuffle failures (the only
// way an in-process run can fail) are returned instead of panicking.
func MineLocal(f *fst.FST, db [][]dict.ItemID, sigma int64, variant Variant, opts Options, cfg mapreduce.Config) ([]miner.Pattern, mapreduce.Metrics, error) {
	return dminer.MineLocal(db, cfg, opts.Spill, buildJob(f, sigma, variant, opts))
}

// buildJob assembles the word-count style BSP job of the baselines.
func buildJob(f *fst.FST, sigma int64, variant Variant, opts Options) mapreduce.Job[[]dict.ItemID, string, int64, miner.Pattern] {
	genSigma := int64(0)
	if variant == SemiNaive {
		genSigma = sigma
	}
	flat := f.Flatten()
	job := mapreduce.Job[[]dict.ItemID, string, int64, miner.Pattern]{
		Map: func(T []dict.ItemID, emit func(string, int64)) {
			if opts.Prefilter && !flat.CanAccept(T) {
				return
			}
			// The flat enumerator deduplicates per sequence, so each distinct
			// candidate is emitted exactly once — the same multiset of records
			// EnumerateCandidates produced, without materializing the list.
			flat.ForEachDistinctCandidate(T, genSigma, func(cand []dict.ItemID) bool {
				emit(EncodeSequence(cand), 1)
				return true
			})
		},
		Combine: func(_ string, vs []int64) []int64 {
			var s int64
			for _, v := range vs {
				s += v
			}
			return []int64{s}
		},
		Reduce: func(key string, vs []int64, emit func(miner.Pattern)) {
			var s int64
			for _, v := range vs {
				s += v
			}
			if s >= sigma {
				emit(miner.Pattern{Items: DecodeSequence(key), Freq: s})
			}
		},
		Hash: mapreduce.HashString,
		// The exact single-record wire size of (k, v) under codec(), so
		// ShuffleBytes and the spill-threshold accounting stay honest.
		SizeOf: func(k string, v int64) int {
			return mapreduce.UvarintLen(uint64(len(k))) + len(k) +
				mapreduce.UvarintLen(1) + mapreduce.UvarintLen(uint64(v))
		},
	}
	c := codec()
	job.Codec = &c
	return job
}

// EncodeSequence renders a sequence of fids as a compact varint byte string,
// used as the partition key of subsequence-based partitioning.
func EncodeSequence(seq []dict.ItemID) string {
	buf := make([]byte, 0, len(seq)*2)
	for _, w := range seq {
		v := uint32(w)
		for v >= 0x80 {
			buf = append(buf, byte(v)|0x80)
			v >>= 7
		}
		buf = append(buf, byte(v))
	}
	return string(buf)
}

// DecodeSequence reverses EncodeSequence.
func DecodeSequence(key string) []dict.ItemID {
	var out []dict.ItemID
	var v uint32
	var shift uint
	for i := 0; i < len(key); i++ {
		b := key[i]
		v |= uint32(b&0x7f) << shift
		if b&0x80 == 0 {
			out = append(out, dict.ItemID(v))
			v, shift = 0, 0
		} else {
			shift += 7
		}
	}
	return out
}
