package service

import (
	"sync/atomic"
	"time"

	"seqmine/internal/mapreduce"
)

// QueryMetrics describes the execution of one query, in the spirit of
// mapreduce.Metrics: stage wall-clock times plus volume counters.
type QueryMetrics struct {
	Dataset    string    `json:"dataset"`
	Expression string    `json:"expression"`
	Algorithm  Algorithm `json:"algorithm"`
	Sigma      int64     `json:"sigma"`

	// CacheHit reports whether the compiled FST was served from the
	// compiled-pattern cache (including piggybacking on an in-flight
	// compilation) rather than compiled by this query.
	CacheHit bool `json:"cache_hit"`
	// CompileTime is the time spent obtaining the compiled FST. On a cache
	// hit it is the (near-zero) lookup time.
	CompileTime time.Duration `json:"compile_time_ns"`
	// MineTime is the time spent mining.
	MineTime time.Duration `json:"mine_time_ns"`
	// Patterns is the number of frequent sequences found.
	Patterns int `json:"patterns"`
	// Exec describes the partitioned execution.
	Exec ExecStats `json:"exec"`
	// MapReduce carries the BSP engine metrics for distributed backends
	// (zero for the sharded sequential backends).
	MapReduce mapreduce.Metrics `json:"mapreduce"`
}

// Total returns the total serving time of the query.
func (m QueryMetrics) Total() time.Duration { return m.CompileTime + m.MineTime }

// aggregator accumulates service-wide counters across queries.
type aggregator struct {
	queries          atomic.Uint64
	errors           atomic.Uint64
	active           atomic.Int64
	patterns         atomic.Uint64
	cacheHits        atomic.Uint64
	compileTimeNS    atomic.Int64
	mineTimeNS       atomic.Int64
	spilledBytes     atomic.Int64
	spillCount       atomic.Int64
	streamedBatches  atomic.Int64
	overflowSegments atomic.Int64
	attempts         atomic.Int64
	retries          atomic.Int64
	speculative      atomic.Int64
	storeHits        atomic.Int64
	storeMisses      atomic.Int64
	storePutBytes    atomic.Int64
}

func (a *aggregator) record(m QueryMetrics) {
	a.queries.Add(1)
	a.patterns.Add(uint64(m.Patterns))
	if m.CacheHit {
		a.cacheHits.Add(1)
	}
	a.compileTimeNS.Add(int64(m.CompileTime))
	a.mineTimeNS.Add(int64(m.MineTime))
	a.spilledBytes.Add(m.MapReduce.SpilledBytes)
	a.spillCount.Add(m.MapReduce.SpillCount)
	a.streamedBatches.Add(m.MapReduce.StreamedBatches)
	a.overflowSegments.Add(m.MapReduce.SendOverflowSegments)
	if c := m.Exec.Cluster; c != nil {
		a.attempts.Add(int64(c.Attempts))
		a.retries.Add(int64(c.Retries))
		a.speculative.Add(int64(c.SpeculativeAttempts))
		a.storeHits.Add(int64(c.StoreHits))
		a.storeMisses.Add(int64(c.StoreMisses))
		a.storePutBytes.Add(c.StorePutBytes)
	}
}

// Snapshot is a point-in-time view of the aggregate service metrics.
type Snapshot struct {
	Queries       uint64        `json:"queries"`
	Errors        uint64        `json:"errors"`
	ActiveQueries int64         `json:"active_queries"`
	PatternsFound uint64        `json:"patterns_found"`
	CacheHits     uint64        `json:"query_cache_hits"`
	CacheHitRate  float64       `json:"query_cache_hit_rate"`
	CompileTime   time.Duration `json:"compile_time_total_ns"`
	MineTime      time.Duration `json:"mine_time_total_ns"`
	// SpilledBytes/SpillCount/StreamedBatches/SendOverflowSegments total the
	// shuffle's disk and streaming activity across all served queries
	// (per-query values live in each response's MapReduce metrics).
	SpilledBytes         int64 `json:"spilled_bytes_total"`
	SpillCount           int64 `json:"spill_count_total"`
	StreamedBatches      int64 `json:"streamed_batches_total"`
	SendOverflowSegments int64 `json:"send_overflow_segments_total"`
	// ClusterAttempts/ClusterRetries/SpeculativeAttempts total the cluster
	// scheduler's fault-tolerance activity, and DatasetStoreHits/Misses/
	// PutBytes its dataset-store traffic, across all cluster-executed
	// queries.
	ClusterAttempts      int64         `json:"cluster_attempts_total"`
	ClusterRetries       int64         `json:"cluster_retries_total"`
	SpeculativeAttempts  int64         `json:"speculative_attempts_total"`
	DatasetStoreHits     int64         `json:"dataset_store_hits_total"`
	DatasetStoreMisses   int64         `json:"dataset_store_misses_total"`
	DatasetStorePutBytes int64         `json:"dataset_store_put_bytes_total"`
	Cache                cacheStats    `json:"compiled_pattern_cache"`
	Datasets             []DatasetInfo `json:"datasets"`
}

func (a *aggregator) snapshot() Snapshot {
	s := Snapshot{
		Queries:              a.queries.Load(),
		Errors:               a.errors.Load(),
		ActiveQueries:        a.active.Load(),
		PatternsFound:        a.patterns.Load(),
		CacheHits:            a.cacheHits.Load(),
		CompileTime:          time.Duration(a.compileTimeNS.Load()),
		MineTime:             time.Duration(a.mineTimeNS.Load()),
		SpilledBytes:         a.spilledBytes.Load(),
		SpillCount:           a.spillCount.Load(),
		StreamedBatches:      a.streamedBatches.Load(),
		SendOverflowSegments: a.overflowSegments.Load(),
		ClusterAttempts:      a.attempts.Load(),
		ClusterRetries:       a.retries.Load(),
		SpeculativeAttempts:  a.speculative.Load(),
		DatasetStoreHits:     a.storeHits.Load(),
		DatasetStoreMisses:   a.storeMisses.Load(),
		DatasetStorePutBytes: a.storePutBytes.Load(),
	}
	if s.Queries > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(s.Queries)
	}
	return s
}
