package service

import (
	"sync"
	"time"

	"seqmine/internal/mapreduce"
	"seqmine/internal/obs"
)

// QueryMetrics describes the execution of one query, in the spirit of
// mapreduce.Metrics: stage wall-clock times plus volume counters.
type QueryMetrics struct {
	Dataset    string    `json:"dataset"`
	Expression string    `json:"expression"`
	Algorithm  Algorithm `json:"algorithm"`
	Sigma      int64     `json:"sigma"`

	// CacheHit reports whether the compiled FST was served from the
	// compiled-pattern cache (including piggybacking on an in-flight
	// compilation) rather than compiled by this query.
	CacheHit bool `json:"cache_hit"`
	// ResultCacheHit reports whether the whole answer was served from the
	// result cache (including sharing an identical in-flight query's answer):
	// no admission slot was consumed and no mining ran.
	ResultCacheHit bool `json:"result_cache_hit,omitempty"`
	// CompileTime is the time spent obtaining the compiled FST. On a cache
	// hit it is the (near-zero) lookup time.
	CompileTime time.Duration `json:"compile_time_ns"`
	// MineTime is the time spent mining.
	MineTime time.Duration `json:"mine_time_ns"`
	// Patterns is the number of frequent sequences found.
	Patterns int `json:"patterns"`
	// Exec describes the partitioned execution.
	Exec ExecStats `json:"exec"`
	// MapReduce carries the BSP engine metrics for distributed backends
	// (zero for the sharded sequential backends).
	MapReduce mapreduce.Metrics `json:"mapreduce"`
}

// Total returns the total serving time of the query.
func (m QueryMetrics) Total() time.Duration { return m.CompileTime + m.MineTime }

// aggregator accumulates service-wide counters across queries. One mutex
// orders every update against snapshot(), so a snapshot is an internally
// consistent cut of the counters: a query recorded concurrently is either
// fully visible or not at all. (The fields used to be independent atomics,
// and a snapshot taken mid-record could report a query's patterns without
// its query count — visible as a cache hit rate above 1 or patterns with
// zero queries.)
type aggregator struct {
	mu               sync.Mutex
	queries          uint64
	errors           uint64
	active           int64
	patterns         uint64
	cacheHits        uint64
	resultCacheHits  uint64
	compileTimeNS    int64
	mineTimeNS       int64
	spilledBytes     int64
	spillCount       int64
	streamedBatches  int64
	overflowSegments int64
	attempts         int64
	retries          int64
	speculative      int64
	storeHits        int64
	storeMisses      int64
	storePutBytes    int64
}

func (a *aggregator) record(m QueryMetrics) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.queries++
	a.patterns += uint64(m.Patterns)
	if m.CacheHit {
		a.cacheHits++
	}
	if m.ResultCacheHit {
		a.resultCacheHits++
	}
	a.compileTimeNS += int64(m.CompileTime)
	a.mineTimeNS += int64(m.MineTime)
	a.spilledBytes += m.MapReduce.SpilledBytes
	a.spillCount += m.MapReduce.SpillCount
	a.streamedBatches += m.MapReduce.StreamedBatches
	a.overflowSegments += m.MapReduce.SendOverflowSegments
	if c := m.Exec.Cluster; c != nil {
		a.attempts += int64(c.Attempts)
		a.retries += int64(c.Retries)
		a.speculative += int64(c.SpeculativeAttempts)
		a.storeHits += int64(c.StoreHits)
		a.storeMisses += int64(c.StoreMisses)
		a.storePutBytes += c.StorePutBytes
	}
}

func (a *aggregator) incErrors() {
	a.mu.Lock()
	a.errors++
	a.mu.Unlock()
}

func (a *aggregator) addActive(delta int64) {
	a.mu.Lock()
	a.active += delta
	a.mu.Unlock()
}

// Snapshot is a point-in-time view of the aggregate service metrics.
type Snapshot struct {
	Queries       uint64  `json:"queries"`
	Errors        uint64  `json:"errors"`
	ActiveQueries int64   `json:"active_queries"`
	PatternsFound uint64  `json:"patterns_found"`
	CacheHits     uint64  `json:"query_cache_hits"`
	CacheHitRate  float64 `json:"query_cache_hit_rate"`
	// ResultCacheHits counts queries served entirely from the result cache
	// (no admission slot, no mining).
	ResultCacheHits uint64        `json:"result_cache_hits"`
	CompileTime     time.Duration `json:"compile_time_total_ns"`
	MineTime        time.Duration `json:"mine_time_total_ns"`
	// SpilledBytes/SpillCount/StreamedBatches/SendOverflowSegments total the
	// shuffle's disk and streaming activity across all served queries
	// (per-query values live in each response's MapReduce metrics).
	SpilledBytes         int64 `json:"spilled_bytes_total"`
	SpillCount           int64 `json:"spill_count_total"`
	StreamedBatches      int64 `json:"streamed_batches_total"`
	SendOverflowSegments int64 `json:"send_overflow_segments_total"`
	// ClusterAttempts/ClusterRetries/SpeculativeAttempts total the cluster
	// scheduler's fault-tolerance activity, and DatasetStoreHits/Misses/
	// PutBytes its dataset-store traffic, across all cluster-executed
	// queries.
	ClusterAttempts      int64      `json:"cluster_attempts_total"`
	ClusterRetries       int64      `json:"cluster_retries_total"`
	SpeculativeAttempts  int64      `json:"speculative_attempts_total"`
	DatasetStoreHits     int64      `json:"dataset_store_hits_total"`
	DatasetStoreMisses   int64      `json:"dataset_store_misses_total"`
	DatasetStorePutBytes int64      `json:"dataset_store_put_bytes_total"`
	Cache                cacheStats `json:"compiled_pattern_cache"`
	// ResultCache reports the result cache's occupancy and hit counters
	// (all-zero when result caching is disabled).
	ResultCache cacheStats `json:"result_cache"`
	// Admission reports the admission gate's live and cumulative load
	// counters (all-zero when MaxConcurrent is 0, i.e. admission disabled).
	Admission admissionStats `json:"admission"`
	Datasets  []DatasetInfo  `json:"datasets"`
	// Registry flattens the typed metrics registry (stage-latency and engine
	// histograms, per-algorithm counters) into the JSON view; the same series
	// back the Prometheus exposition at GET /metrics?format=prometheus.
	Registry []obs.SnapshotEntry `json:"registry,omitempty"`
}

func (a *aggregator) snapshot() Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := Snapshot{
		Queries:              a.queries,
		Errors:               a.errors,
		ActiveQueries:        a.active,
		PatternsFound:        a.patterns,
		CacheHits:            a.cacheHits,
		ResultCacheHits:      a.resultCacheHits,
		CompileTime:          time.Duration(a.compileTimeNS),
		MineTime:             time.Duration(a.mineTimeNS),
		SpilledBytes:         a.spilledBytes,
		SpillCount:           a.spillCount,
		StreamedBatches:      a.streamedBatches,
		SendOverflowSegments: a.overflowSegments,
		ClusterAttempts:      a.attempts,
		ClusterRetries:       a.retries,
		SpeculativeAttempts:  a.speculative,
		DatasetStoreHits:     a.storeHits,
		DatasetStoreMisses:   a.storeMisses,
		DatasetStorePutBytes: a.storePutBytes,
	}
	if s.Queries > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(s.Queries)
	}
	return s
}
