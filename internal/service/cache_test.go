package service

import (
	"sync"
	"sync/atomic"
	"testing"

	"seqmine/internal/fst"
	"seqmine/internal/paperex"
)

func testFST(t *testing.T) *fst.FST {
	t.Helper()
	return fst.MustCompile(paperex.PatternExpression, paperex.Dict())
}

func key(expr string) cacheKey {
	return cacheKey{dataset: "ds", generation: 1, expression: expr}
}

func TestCacheLRUEviction(t *testing.T) {
	f := testFST(t)
	c := newFSTCache(2)
	compiles := 0
	compile := func() (*fst.FST, error) { compiles++; return f, nil }

	for _, expr := range []string{"p1", "p2"} {
		if _, hit, err := c.get(key(expr), compile); err != nil || hit {
			t.Fatalf("first get(%s): hit=%v err=%v", expr, hit, err)
		}
	}
	// Touch p1 so p2 becomes the LRU entry, then insert p3 to evict p2.
	if _, hit, _ := c.get(key("p1"), compile); !hit {
		t.Fatal("get(p1) should hit")
	}
	if _, hit, _ := c.get(key("p3"), compile); hit {
		t.Fatal("get(p3) should miss")
	}
	if _, hit, _ := c.get(key("p1"), compile); !hit {
		t.Fatal("p1 should still be cached")
	}
	if _, hit, _ := c.get(key("p2"), compile); hit {
		t.Fatal("p2 should have been evicted")
	}
	st := c.stats()
	if st.Evictions != 2 { // p2 evicted by p3, then p3 or p1 evicted by p2's re-insert
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
	if st.Size != 2 {
		t.Errorf("size = %d, want 2", st.Size)
	}
	if compiles != 4 {
		t.Errorf("compiles = %d, want 4", compiles)
	}
}

func TestCacheSingleflight(t *testing.T) {
	f := testFST(t)
	c := newFSTCache(8)
	var compiles atomic.Int64
	release := make(chan struct{})
	compile := func() (*fst.FST, error) {
		compiles.Add(1)
		<-release
		return f, nil
	}

	const n = 8
	var wg sync.WaitGroup
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			got, _, err := c.get(key("shared"), compile)
			if err != nil || got != f {
				t.Errorf("get = %v, %v", got, err)
			}
		}()
	}
	for i := 0; i < n; i++ {
		<-started
	}
	close(release)
	wg.Wait()

	if got := compiles.Load(); got != 1 {
		t.Errorf("compile ran %d times, want 1 (singleflight)", got)
	}
	st := c.stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	if st.Hits+st.SharedIn != n-1 {
		t.Errorf("hits+shared = %d, want %d", st.Hits+st.SharedIn, n-1)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	d := paperex.Dict()
	c := newFSTCache(4)
	bad := func() (*fst.FST, error) { return fst.Compile("(((", d) }
	if _, _, err := c.get(key("bad"), bad); err == nil {
		t.Fatal("expected compile error")
	}
	if st := c.stats(); st.Size != 0 {
		t.Errorf("failed compile must not be cached, size = %d", st.Size)
	}
	// A later attempt compiles again (and may succeed).
	good := func() (*fst.FST, error) { return fst.Compile(paperex.PatternExpression, d) }
	if _, hit, err := c.get(key("bad"), good); err != nil || hit {
		t.Fatalf("retry after error: hit=%v err=%v", hit, err)
	}
}

func TestCacheInvalidateDataset(t *testing.T) {
	f := testFST(t)
	c := newFSTCache(8)
	compile := func() (*fst.FST, error) { return f, nil }
	c.get(cacheKey{dataset: "a", generation: 1, expression: "p"}, compile)
	c.get(cacheKey{dataset: "b", generation: 1, expression: "p"}, compile)
	c.invalidateDataset("a")
	if st := c.stats(); st.Size != 1 {
		t.Fatalf("size after invalidate = %d, want 1", st.Size)
	}
	if _, hit, _ := c.get(cacheKey{dataset: "b", generation: 1, expression: "p"}, compile); !hit {
		t.Error("dataset b entry should survive invalidation of a")
	}
	if _, hit, _ := c.get(cacheKey{dataset: "a", generation: 1, expression: "p"}, compile); hit {
		t.Error("dataset a entry should be gone")
	}
}
