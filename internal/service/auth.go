package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync/atomic"
)

// The authentication plane of the serving tier. Production deployments front
// the daemon with API keys: every key maps to a tenant, and tenants carry
// quotas (concurrent queries in flight, datasets registered). With no keys
// configured the service stays open — every request runs as the anonymous
// admin tenant — so single-user and test deployments need no ceremony.

// ErrUnauthenticated is returned (wrapped) when authentication is required
// but the request carried no valid API key; the HTTP layer maps it to 401.
var ErrUnauthenticated = errors.New("missing or unknown API key")

// APIKey declares one key of the key file: the secret, the tenant it
// authenticates as, and that tenant's quotas. Multiple keys may name the same
// tenant (key rotation); their quotas must agree.
type APIKey struct {
	// Key is the secret presented as "Authorization: Bearer <key>" or in the
	// X-Api-Key request header.
	Key string `json:"key"`
	// Tenant names the principal the key authenticates.
	Tenant string `json:"tenant"`
	// MaxInFlight bounds the tenant's concurrently admitted queries;
	// 0 means no per-tenant bound (the global admission bound still applies).
	MaxInFlight int `json:"max_inflight,omitempty"`
	// MaxDatasets bounds how many datasets the tenant may have registered at
	// once; 0 means unbounded.
	MaxDatasets int `json:"max_datasets,omitempty"`
}

// Tenant is the resolved principal of an authenticated request. The zero
// value (the anonymous tenant) is what unauthenticated deployments run as:
// no quotas, admin rights.
type Tenant struct {
	// Name is the tenant name ("" for the anonymous tenant of deployments
	// without configured keys).
	Name string
	// limits (0 = unbounded).
	maxInFlight int
	maxDatasets int
	// inflight counts the tenant's admitted queries.
	inflight atomic.Int64
}

// InFlight returns the tenant's currently admitted queries.
func (t *Tenant) InFlight() int64 {
	if t == nil {
		return 0
	}
	return t.inflight.Load()
}

// acquire takes one in-flight slot, reporting false when the tenant is at its
// quota. A nil tenant (unauthenticated deployment) always admits.
func (t *Tenant) acquire() bool {
	if t == nil {
		return true
	}
	for {
		cur := t.inflight.Load()
		if t.maxInFlight > 0 && cur >= int64(t.maxInFlight) {
			return false
		}
		if t.inflight.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func (t *Tenant) release() {
	if t != nil {
		t.inflight.Add(-1)
	}
}

// Authenticator resolves API keys to tenants. A nil *Authenticator disables
// authentication (every request resolves to the anonymous tenant).
type Authenticator struct {
	byKey    map[string]*Tenant
	byTenant map[string]*Tenant
}

// NewAuthenticator builds an authenticator from key declarations. Keys and
// tenant names must be non-empty; two keys of the same tenant share one quota
// accounting and must declare identical quotas.
func NewAuthenticator(keys []APIKey) (*Authenticator, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("service: no API keys configured")
	}
	a := &Authenticator{byKey: make(map[string]*Tenant), byTenant: make(map[string]*Tenant)}
	for i, k := range keys {
		if k.Key == "" || k.Tenant == "" {
			return nil, fmt.Errorf("service: API key entry %d: key and tenant must be non-empty", i)
		}
		if k.MaxInFlight < 0 || k.MaxDatasets < 0 {
			return nil, fmt.Errorf("service: API key entry %d (tenant %q): quotas must be >= 0", i, k.Tenant)
		}
		if _, dup := a.byKey[k.Key]; dup {
			return nil, fmt.Errorf("service: API key entry %d: duplicate key", i)
		}
		t := a.byTenant[k.Tenant]
		if t == nil {
			t = &Tenant{Name: k.Tenant, maxInFlight: k.MaxInFlight, maxDatasets: k.MaxDatasets}
			a.byTenant[k.Tenant] = t
		} else if t.maxInFlight != k.MaxInFlight || t.maxDatasets != k.MaxDatasets {
			return nil, fmt.Errorf("service: tenant %q declared with conflicting quotas", k.Tenant)
		}
		a.byKey[k.Key] = t
	}
	return a, nil
}

// LoadAPIKeys reads a key file: a JSON array of APIKey objects, e.g.
//
//	[
//	  {"key": "s3cret", "tenant": "analytics", "max_inflight": 4, "max_datasets": 8},
//	  {"key": "t0ken",  "tenant": "ops"}
//	]
func LoadAPIKeys(path string) ([]APIKey, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var keys []APIKey
	if err := json.Unmarshal(buf, &keys); err != nil {
		return nil, fmt.Errorf("service: parsing API key file %s: %w", path, err)
	}
	return keys, nil
}

// Enabled reports whether authentication is required.
func (a *Authenticator) Enabled() bool { return a != nil }

// Authenticate resolves the request's API key ("Authorization: Bearer <key>"
// or the X-Api-Key header). With authentication disabled it returns the nil
// (anonymous) tenant.
func (a *Authenticator) Authenticate(r *http.Request) (*Tenant, error) {
	if a == nil {
		return nil, nil
	}
	key := r.Header.Get("X-Api-Key")
	if key == "" {
		if auth := r.Header.Get("Authorization"); len(auth) > 7 && auth[:7] == "Bearer " {
			key = auth[7:]
		}
	}
	if key == "" {
		return nil, fmt.Errorf("%w (send Authorization: Bearer <key> or X-Api-Key)", ErrUnauthenticated)
	}
	t, ok := a.byKey[key]
	if !ok {
		return nil, ErrUnauthenticated
	}
	return t, nil
}

// Tenant returns the named tenant, or nil if unknown (or auth is disabled).
func (a *Authenticator) Tenant(name string) *Tenant {
	if a == nil {
		return nil
	}
	return a.byTenant[name]
}

// tenantCtxKey carries the authenticated tenant through a request context.
type tenantCtxKey struct{}

// WithTenant attaches an authenticated tenant to a context; the service's
// admission control charges the query against the tenant's quotas.
func WithTenant(ctx context.Context, t *Tenant) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tenantCtxKey{}, t)
}

// TenantFrom returns the context's tenant (nil for anonymous).
func TenantFrom(ctx context.Context) *Tenant {
	t, _ := ctx.Value(tenantCtxKey{}).(*Tenant)
	return t
}
