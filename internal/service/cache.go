package service

import (
	"container/list"
	"fmt"
	"sync"

	"seqmine/internal/fst"
)

// cacheKey identifies one compiled constraint. The dataset generation is part
// of the key so replacing a dataset under the same name invalidates its
// cached FSTs (they become unreachable and age out of the LRU). The pattern
// expression fully determines the FST for a given dictionary; mining options
// (algorithm, workers, sharding) do not affect compilation and are therefore
// not part of the key.
type cacheKey struct {
	dataset    string
	generation uint64
	expression string
}

// fstCache is an LRU cache of compiled FSTs with singleflight deduplication:
// concurrent lookups of the same key while a compile is in flight block and
// share the one result instead of compiling again.
type fstCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[cacheKey]*list.Element
	inflight map[cacheKey]*flight

	hits      uint64 // served from cache without waiting
	shared    uint64 // served by waiting on an in-flight compile
	misses    uint64 // triggered a compile
	evictions uint64
}

type cacheEntry struct {
	key cacheKey
	fst *fst.FST
}

type flight struct {
	done chan struct{}
	fst  *fst.FST
	err  error
}

func newFSTCache(capacity int) *fstCache {
	if capacity <= 0 {
		capacity = 128
	}
	return &fstCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[cacheKey]*list.Element),
		inflight: make(map[cacheKey]*flight),
	}
}

// get returns the compiled FST for key, calling compile at most once across
// all concurrent callers on a miss. The second result reports whether the
// caller was served without compiling itself (a cache hit or a shared
// in-flight result).
func (c *fstCache) get(key cacheKey, compile func() (*fst.FST, error)) (*fst.FST, bool, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		f := el.Value.(*cacheEntry).fst
		c.mu.Unlock()
		return f, true, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.shared++
		c.mu.Unlock()
		<-fl.done
		return fl.fst, true, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.misses++
	c.mu.Unlock()

	// A panicking compile must still resolve the flight, or every waiter on
	// this key (each holding a concurrency slot and dataset lease) would
	// block forever; it is reported as an error instead.
	func() {
		defer func() {
			if r := recover(); r != nil {
				fl.fst, fl.err = nil, fmt.Errorf("compiling pattern: panic: %v", r)
			}
		}()
		fl.fst, fl.err = compile()
	}()
	close(fl.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil {
		c.insert(key, fl.fst)
	}
	c.mu.Unlock()
	return fl.fst, false, fl.err
}

// insert adds an entry, evicting from the LRU tail. Callers hold c.mu.
func (c *fstCache) insert(key cacheKey, f *fst.FST) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).fst = f
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, fst: f})
	for c.ll.Len() > c.capacity {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// invalidateDataset drops every cached FST belonging to the named dataset
// (any generation). Entries would age out anyway once unreachable; this frees
// them eagerly when a dataset is unregistered.
func (c *fstCache) invalidateDataset(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*cacheEntry)
		if e.key.dataset == name {
			c.ll.Remove(el)
			delete(c.items, e.key)
		}
		el = next
	}
}

// cacheStats is a point-in-time snapshot of the cache counters.
type cacheStats struct {
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	SharedIn  uint64 `json:"shared_inflight"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

func (c *fstCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		Size:      c.ll.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		SharedIn:  c.shared,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
