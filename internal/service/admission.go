package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"seqmine/internal/obs"
)

// Admission control is the overload front door of the serving tier. Instead
// of spawning an unbounded goroutine per request, at most MaxInFlight queries
// mine at once, at most QueueDepth more wait for a slot, and everything past
// that is shed immediately with an OverloadError carrying a Retry-After hint
// — the HTTP layer turns it into 429 + Retry-After. Per-tenant in-flight
// quotas are enforced at the same gate, before a query may occupy queue
// space, so one tenant cannot starve the shared queue.

// OverloadError reports a shed query: the admission queue (or a tenant
// quota) is full. The HTTP layer maps it to 429 Too Many Requests with a
// Retry-After header.
type OverloadError struct {
	// Reason is "queue_full" or "tenant_quota".
	Reason string
	// RetryAfter is the suggested backoff before retrying.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("service overloaded (%s): retry after %s", e.Reason, e.RetryAfter)
}

// IsOverload reports whether err is a shed-query error and returns it.
func IsOverload(err error) (*OverloadError, bool) {
	var oe *OverloadError
	if errors.As(err, &oe) {
		return oe, true
	}
	return nil, false
}

// admission is the bounded admission queue. The zero configuration
// (maxInFlight == 0) admits everything and never queues or sheds, keeping
// the pre-admission-control behavior for library users who configured no
// bounds.
type admission struct {
	slots      chan struct{} // nil = unbounded
	queueDepth int

	mu         sync.Mutex
	queued     int           // queries waiting for a slot
	queuedMax  int           // high watermark of queued (since start)
	avgServeNS float64       // EWMA of query service time, for Retry-After
	minRetry   time.Duration // floor of the Retry-After hint

	admitted, shedQueue, shedTenant int64

	// registry instruments (nil-safe).
	inflightGauge  *obs.Gauge
	queueGauge     *obs.Gauge
	queueMaxGauge  *obs.Gauge
	waitHist       *obs.Histogram
	admittedCtr    *obs.Counter
	shedQueueCtr   *obs.Counter
	shedTenantCtr  *obs.Counter
	retryAfterHist *obs.Histogram
}

// newAdmission builds the controller. maxInFlight <= 0 disables bounding
// (and with it queueing and shedding); queueDepth <= 0 with a bound means no
// waiting room — a query either gets a slot immediately or is shed.
func newAdmission(maxInFlight, queueDepth int, reg *obs.Registry) *admission {
	a := &admission{
		queueDepth: queueDepth,
		minRetry:   time.Second,

		inflightGauge:  reg.Gauge("seqmine_admission_inflight", "Queries currently holding a mining slot."),
		queueGauge:     reg.Gauge("seqmine_admission_queue_depth", "Queries currently waiting for a mining slot."),
		queueMaxGauge:  reg.Gauge("seqmine_admission_queue_depth_max", "High watermark of the admission queue depth."),
		waitHist:       reg.Histogram("seqmine_admission_wait_seconds", "Time admitted queries spent waiting for a mining slot.", obs.DurationBuckets),
		admittedCtr:    reg.Counter("seqmine_admission_admitted_total", "Queries admitted to mine."),
		shedQueueCtr:   reg.Counter("seqmine_admission_shed_total", "Queries shed with 429.", "reason", "queue_full"),
		shedTenantCtr:  reg.Counter("seqmine_admission_shed_total", "Queries shed with 429.", "reason", "tenant_quota"),
		retryAfterHist: reg.Histogram("seqmine_admission_retry_after_seconds", "Retry-After hints attached to shed queries.", obs.DurationBuckets),
	}
	if maxInFlight > 0 {
		a.slots = make(chan struct{}, maxInFlight)
		if queueDepth < 0 {
			a.queueDepth = 0
		}
	}
	return a
}

// acquire admits one query, blocking in the bounded queue when all slots are
// busy. It returns a release func on admission and an *OverloadError when the
// query is shed (tenant quota exceeded, queue full, or ctx done while
// queued — context errors are returned as-is). The tenant slot is charged
// first so a tenant at its quota is shed without occupying queue space.
func (a *admission) acquire(ctx context.Context, tenant *Tenant) (func(), error) {
	if !tenant.acquire() {
		oe := a.shed("tenant_quota")
		a.mu.Lock()
		a.shedTenant++
		a.mu.Unlock()
		a.shedTenantCtr.Inc()
		return nil, oe
	}
	releaseTenant := tenant.release

	if a.slots == nil {
		a.admit(0)
		return func() { releaseTenant() }, nil
	}

	// Fast path: a slot is free right now.
	select {
	case a.slots <- struct{}{}:
		a.admit(0)
		return a.releaser(releaseTenant), nil
	default:
	}

	// Queue, bounded.
	a.mu.Lock()
	if a.queued >= a.queueDepth {
		a.shedQueue++
		a.mu.Unlock()
		releaseTenant()
		a.shedQueueCtr.Inc()
		return nil, a.shed("queue_full")
	}
	a.queued++
	if a.queued > a.queuedMax {
		a.queuedMax = a.queued
		a.queueMaxGauge.Set(int64(a.queuedMax))
	}
	a.queueGauge.Set(int64(a.queued))
	a.mu.Unlock()

	start := time.Now()
	var err error
	select {
	case a.slots <- struct{}{}:
	case <-ctx.Done():
		err = ctx.Err()
	}
	a.mu.Lock()
	a.queued--
	a.queueGauge.Set(int64(a.queued))
	a.mu.Unlock()
	if err != nil {
		releaseTenant()
		return nil, err
	}
	a.admit(time.Since(start))
	return a.releaser(releaseTenant), nil
}

func (a *admission) releaser(releaseTenant func()) func() {
	return func() {
		<-a.slots
		releaseTenant()
	}
}

func (a *admission) admit(waited time.Duration) {
	a.mu.Lock()
	a.admitted++
	a.mu.Unlock()
	a.admittedCtr.Inc()
	a.inflightGauge.Add(1)
	a.waitHist.Observe(waited.Seconds())
}

// done records a finished query's service time into the EWMA that prices
// Retry-After hints, and drops the in-flight gauge.
func (a *admission) done(served time.Duration) {
	a.inflightGauge.Add(-1)
	a.mu.Lock()
	if a.avgServeNS == 0 {
		a.avgServeNS = float64(served)
	} else {
		a.avgServeNS = 0.8*a.avgServeNS + 0.2*float64(served)
	}
	a.mu.Unlock()
}

// shed builds the overload error. The Retry-After hint estimates when a slot
// should free up: the average service time scaled by how many queries are
// already committed ahead of a retry, floored at one second and rounded up to
// whole seconds (the HTTP header's granularity).
func (a *admission) shed(reason string) *OverloadError {
	a.mu.Lock()
	avg := time.Duration(a.avgServeNS)
	waiting := a.queued
	a.mu.Unlock()
	capacity := 1
	if a.slots != nil {
		capacity = cap(a.slots)
	}
	retry := time.Duration(float64(avg) * float64(waiting+1) / float64(capacity))
	if retry < a.minRetry {
		retry = a.minRetry
	}
	retry = time.Duration(math.Ceil(retry.Seconds())) * time.Second
	a.retryAfterHist.Observe(retry.Seconds())
	return &OverloadError{Reason: reason, RetryAfter: retry}
}

// admissionStats is the point-in-time accounting of the admission gate.
type admissionStats struct {
	MaxInFlight   int   `json:"max_inflight"`
	QueueDepth    int   `json:"queue_depth"`
	Queued        int   `json:"queued"`
	QueuedMax     int   `json:"queued_max"`
	Admitted      int64 `json:"admitted"`
	ShedQueueFull int64 `json:"shed_queue_full"`
	ShedTenant    int64 `json:"shed_tenant_quota"`
}

func (a *admission) stats() admissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := admissionStats{
		QueueDepth:    a.queueDepth,
		Queued:        a.queued,
		QueuedMax:     a.queuedMax,
		Admitted:      a.admitted,
		ShedQueueFull: a.shedQueue,
		ShedTenant:    a.shedTenant,
	}
	if a.slots != nil {
		s.MaxInFlight = cap(a.slots)
	}
	return s
}
