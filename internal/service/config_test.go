package service_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seqmine/internal/paperex"
	"seqmine/internal/service"
)

func TestLoadAPIKeys(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keys.json")
	content := `[
  {"key": "s3cret", "tenant": "analytics", "max_inflight": 4, "max_datasets": 8},
  {"key": "t0ken",  "tenant": "ops"}
]`
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	keys, err := service.LoadAPIKeys(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0].Tenant != "analytics" || keys[0].MaxInFlight != 4 || keys[0].MaxDatasets != 8 {
		t.Fatalf("keys = %+v", keys)
	}
	auth, err := service.NewAuthenticator(keys)
	if err != nil {
		t.Fatal(err)
	}
	if !auth.Enabled() {
		t.Fatal("authenticator not enabled")
	}
	var disabled *service.Authenticator
	if disabled.Enabled() {
		t.Fatal("nil authenticator claims enabled")
	}

	if _, err := service.LoadAPIKeys(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := service.LoadAPIKeys(bad); err == nil || !strings.Contains(err.Error(), "parsing API key file") {
		t.Fatalf("bad file err = %v", err)
	}
}

// writeExampleFiles writes the running example as the on-disk text formats.
func writeExampleFiles(t *testing.T, dir string) (seqPath, hierPath string) {
	t.Helper()
	var seqs strings.Builder
	for _, s := range paperex.RawDB() {
		seqs.WriteString(strings.Join(s, " "))
		seqs.WriteByte('\n')
	}
	seqPath = filepath.Join(dir, "sequences.txt")
	if err := os.WriteFile(seqPath, []byte(seqs.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	hierPath = filepath.Join(dir, "hierarchy.txt")
	if err := os.WriteFile(hierPath, []byte("a1\tA\na2\tA\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return seqPath, hierPath
}

func TestLoadDatasetFromFiles(t *testing.T) {
	seqPath, hierPath := writeExampleFiles(t, t.TempDir())
	svc := service.New(service.Config{})
	gen, err := svc.LoadDataset("ex", seqPath, hierPath)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("generation = %d, want 1", gen)
	}
	resp, err := svc.Mine(context.Background(), service.Query{
		Dataset: "ex", Expression: paperex.PatternExpression, Sigma: paperex.Sigma,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Patterns) == 0 {
		t.Fatal("no patterns from a file-loaded dataset")
	}
	if _, err := svc.LoadDataset("nope", filepath.Join(t.TempDir(), "absent.txt"), ""); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
	if !svc.RemoveDataset("ex") {
		t.Fatal("RemoveDataset failed")
	}
	if svc.RemoveDataset("ex") {
		t.Fatal("second RemoveDataset claimed success")
	}
}
