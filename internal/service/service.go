// Package service is the query-serving layer of seqmine: a long-lived,
// concurrency-safe front end over the miners of the paper. It provides
//
//   - a dataset registry holding multiple named sequence databases
//     (registered programmatically or loaded from files, leased to queries
//     with reference counting so replacement never disturbs in-flight work);
//   - a compiled-pattern cache, an LRU over compiled FSTs keyed by (dataset
//     generation, pattern expression) with singleflight deduplication so
//     concurrent identical queries compile once;
//   - a partitioned query executor that shards the database over a bounded
//     worker pool for the sequential backends (exact two-phase SON-style
//     mining) and drives the BSP engine for the distributed ones, under a
//     per-query context deadline;
//   - per-query and aggregate metrics (compile/mine time, cache hit rate,
//     patterns found) in the idiom of mapreduce.Metrics.
//
// The seqmined daemon (cmd/seqmined) exposes this over HTTP; the root
// seqmine package re-exports it for library users.
package service

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"seqmine/internal/dict"
	"seqmine/internal/fst"
	"seqmine/internal/miner"
	"seqmine/internal/obs"
	"seqmine/internal/seqdb"
)

// Config configures a Service.
type Config struct {
	// CacheSize is the capacity (entries) of the compiled-pattern cache;
	// 0 means 128.
	CacheSize int
	// Workers bounds each query's worker pool when the query does not set
	// its own; 0 uses all CPUs.
	Workers int
	// MaxConcurrent bounds the number of queries mining at once; excess
	// queries wait (respecting their context). 0 means unbounded.
	MaxConcurrent int
	// DefaultTimeout is applied to queries that carry no deadline; 0 means
	// no default deadline.
	DefaultTimeout time.Duration
	// ClusterWorkers are the control URLs of a default worker cluster.
	// Queries that request distributed execution without naming workers use
	// it (see the HTTP API's "distributed" flag).
	ClusterWorkers []string
	// SpillThreshold is the default shuffle spill threshold in bytes per
	// peer applied to queries that do not set their own (see
	// ExecOptions.SpillThreshold); 0 keeps shuffles in memory.
	SpillThreshold int64
	// SpillTmpDir is the default directory for shuffle spill segments;
	// empty uses the system temp directory.
	SpillTmpDir string
	// SendBufferBytes is the default streaming send-buffer size in bytes
	// per peer applied to queries that do not set their own (see
	// ExecOptions.SendBufferBytes); 0 keeps the phase-synchronous barrier.
	SendBufferBytes int64
	// CompressSpill compresses spill segments with DEFLATE by default.
	// Queries opt in or out per request with the tri-state "compress_spill"
	// body field (ExecOptions.CompressSpillSet); a query that says nothing
	// inherits this default.
	CompressSpill bool
	// Prefilter enables the two-pass reachability prefilter by default for
	// queries that do not request it themselves (ExecOptions.Prefilter).
	// Mining output is byte-identical either way, so a simple opt-in default
	// suffices (no tri-state needed).
	Prefilter bool
	// TaskRetries is the default retry budget of cluster-executed queries
	// that do not set their own (see ExecOptions.TaskRetries): how many
	// failed attempts the scheduler relaunches on the surviving workers.
	// 0 falls through to the scheduler's built-in budget of 2; negative
	// disables retries by default.
	TaskRetries int
	// SpeculativeAfter is the default straggler threshold of
	// cluster-executed queries: a speculative duplicate attempt launches
	// when the running attempt exceeds it. 0 disables speculation by
	// default.
	SpeculativeAfter time.Duration
	// Obs is the metrics registry the service's instruments live on:
	// query/error counters, the seqmine_query_stage_seconds stage-latency
	// histograms, and — because Mine threads it into the executor and the
	// cluster coordinator — the engine's spill/streaming histograms and the
	// scheduler's attempt/heartbeat histograms. Nil disables registry
	// metrics; the JSON Snapshot counters are unaffected.
	Obs *obs.Registry
	// Recorder receives trace spans of queries whose context carries no
	// recorder of its own; the HTTP handler serves recorded traces at
	// GET /debug/trace/{trace_id}. Nil leaves tracing to the caller's
	// context (no recorder there either means spans are not recorded).
	Recorder *obs.Recorder
}

// Service is a concurrent mining service. All methods are safe for
// concurrent use.
type Service struct {
	cfg   Config
	reg   *Registry
	cache *fstCache
	agg   aggregator
	slots chan struct{} // nil when MaxConcurrent == 0
}

// New creates a Service.
func New(cfg Config) *Service {
	s := &Service{
		cfg:   cfg,
		reg:   NewRegistry(),
		cache: newFSTCache(cfg.CacheSize),
	}
	if cfg.MaxConcurrent > 0 {
		s.slots = make(chan struct{}, cfg.MaxConcurrent)
	}
	return s
}

// RegisterDataset adds (or replaces) a database under the given name.
// Replacement drops the previous generation's cached FSTs so the LRU is not
// left holding unreachable entries.
func (s *Service) RegisterDataset(name string, db *seqdb.Database) (uint64, error) {
	gen, err := s.reg.Register(name, db)
	if err == nil && gen > 1 {
		s.cache.invalidateDataset(name)
	}
	return gen, err
}

// LoadDataset reads a database from files and registers it.
func (s *Service) LoadDataset(name, sequencesPath, hierarchyPath string) (uint64, error) {
	gen, err := s.reg.LoadFiles(name, sequencesPath, hierarchyPath)
	if err == nil && gen > 1 {
		s.cache.invalidateDataset(name)
	}
	return gen, err
}

// RemoveDataset unregisters a dataset and drops its cached FSTs. In-flight
// queries are unaffected.
func (s *Service) RemoveDataset(name string) bool {
	ok := s.reg.Unregister(name)
	if ok {
		s.cache.invalidateDataset(name)
	}
	return ok
}

// Datasets lists the registered datasets.
func (s *Service) Datasets() []DatasetInfo { return s.reg.List() }

// ClusterWorkers returns the configured default worker cluster (may be nil).
func (s *Service) ClusterWorkers() []string { return s.cfg.ClusterWorkers }

// DatasetInfo describes one dataset, or an error if it is not registered.
func (s *Service) DatasetInfo(name string) (DatasetInfo, error) {
	ds, err := s.reg.Acquire(name)
	if err != nil {
		return DatasetInfo{}, err
	}
	defer ds.Release()
	return DatasetInfo{
		Name:          ds.Name,
		Generation:    ds.Gen,
		ActiveQueries: ds.entry.refs.Load() - 1, // exclude our own lease
		Stats:         ds.entry.stats,
	}, nil
}

// Query is one mining request.
type Query struct {
	// Dataset names a registered dataset.
	Dataset string
	// Expression is the DESQ pattern expression.
	Expression string
	// Sigma is the minimum support threshold (> 0).
	Sigma int64
	// Options configures the execution; the zero value mines with D-SEQ
	// and no enhancements (see DefaultExecOptions for the recommended
	// configuration).
	Options ExecOptions
	// Timeout overrides the service default deadline for this query; 0
	// keeps the default.
	Timeout time.Duration
}

// Response is the outcome of one query.
type Response struct {
	// Patterns are the frequent sequences, sorted by decreasing frequency.
	Patterns []miner.Pattern
	// Dict is the dictionary of the dataset generation the query ran
	// against; use it to decode Patterns (immutable, safe to share).
	Dict *dict.Dictionary
	// Metrics describes the execution.
	Metrics QueryMetrics
	// TraceID identifies the query's trace when a recorder was attached
	// (via the query context or Config.Recorder); empty otherwise. The
	// recorded spans cover compile/execute stages, the engine's map,
	// shuffle, spill and reduce phases, and — for cluster execution — the
	// scheduler's attempts and every worker's local spans, merged into one
	// trace.
	TraceID obs.TraceID
}

// Mine serves one query: it leases the dataset, obtains the compiled FST from
// the compiled-pattern cache (compiling at most once across concurrent
// identical queries), runs the partitioned executor and records metrics.
func (s *Service) Mine(ctx context.Context, q Query) (*Response, error) {
	if q.Expression == "" {
		return nil, s.fail(fmt.Errorf("empty pattern expression"))
	}
	if q.Sigma <= 0 {
		return nil, s.fail(fmt.Errorf("minimum support must be positive, got %d", q.Sigma))
	}
	// Tracing: install the service recorder unless the caller brought one
	// (the HTTP handler installs it plus any remote parent before calling),
	// then open the root span of the query. With no recorder anywhere,
	// StartSpan returns a nil span and every use below no-ops.
	if s.cfg.Recorder != nil && obs.RecorderFrom(ctx) == nil {
		ctx = obs.WithRecorder(ctx, s.cfg.Recorder)
	}
	ctx, span := obs.StartSpan(ctx, "service.mine",
		obs.String("dataset", q.Dataset), obs.Int("sigma", q.Sigma))
	defer span.End()
	fail := func(err error) error {
		span.SetAttr("error", err.Error())
		return s.fail(err)
	}
	opts := q.Options
	if opts.Workers <= 0 {
		opts.Workers = s.cfg.Workers
	}
	if opts.SpillThreshold == 0 {
		opts.SpillThreshold = s.cfg.SpillThreshold
	}
	if opts.SpillTmpDir == "" {
		opts.SpillTmpDir = s.cfg.SpillTmpDir
	}
	if opts.SendBufferBytes == 0 {
		opts.SendBufferBytes = s.cfg.SendBufferBytes
	}
	if !opts.CompressSpillSet && !opts.CompressSpill {
		opts.CompressSpill = s.cfg.CompressSpill
	}
	if !opts.Prefilter {
		opts.Prefilter = s.cfg.Prefilter
	}
	if opts.TaskRetries == 0 {
		opts.TaskRetries = s.cfg.TaskRetries
	}
	if opts.SpeculativeAfter == 0 {
		opts.SpeculativeAfter = s.cfg.SpeculativeAfter
	}
	if opts.Obs == nil {
		opts.Obs = s.cfg.Obs
	}
	if opts.Cluster != nil && opts.Cluster.Expression == "" {
		// The workers compile the expression themselves; copy the options so
		// the caller's struct is not mutated.
		withExpr := *opts.Cluster
		withExpr.Expression = q.Expression
		opts.Cluster = &withExpr
	}

	timeout := q.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	// The concurrency slot, active counter and dataset lease are held for
	// the true lifetime of the mining work: a query abandoned on deadline
	// keeps its resources until the background goroutine finishes, so
	// MaxConcurrent genuinely bounds concurrent mining.
	if s.slots != nil {
		select {
		case s.slots <- struct{}{}:
		case <-ctx.Done():
			return nil, fail(ctx.Err())
		}
	}
	s.agg.addActive(1)
	activeGauge := s.cfg.Obs.Gauge("seqmine_active_queries", "Queries currently holding a mining slot.")
	activeGauge.Add(1)
	release := func() {
		s.agg.addActive(-1)
		activeGauge.Add(-1)
		if s.slots != nil {
			<-s.slots
		}
	}

	ds, err := s.reg.Acquire(q.Dataset)
	if err != nil {
		release()
		return nil, fail(err)
	}
	cleanup := func() {
		ds.Release()
		release()
	}

	m := QueryMetrics{
		Dataset:    q.Dataset,
		Expression: q.Expression,
		Algorithm:  opts.Algorithm,
		Sigma:      q.Sigma,
	}
	if m.Algorithm == "" {
		m.Algorithm = AlgoDSeq
	}
	span.SetAttr("algorithm", string(m.Algorithm))

	key := cacheKey{dataset: ds.Name, generation: ds.Gen, expression: q.Expression}
	compileStart := time.Now()
	f, hit, err := s.cache.get(key, func() (*fst.FST, error) {
		return fst.Compile(q.Expression, ds.DB.Dict)
	})
	m.CompileTime = time.Since(compileStart)
	m.CacheHit = hit
	s.stageHist("compile").Observe(m.CompileTime.Seconds())
	obs.Observe(ctx, "service.compile", compileStart, m.CompileTime,
		obs.String("cache_hit", strconv.FormatBool(hit)))
	if err != nil {
		cleanup()
		return nil, fail(fmt.Errorf("compiling %q: %w", q.Expression, err))
	}

	mineStart := time.Now()
	patterns, mrm, exec, err := execute(ctx, f, ds.DB, q.Sigma, opts, cleanup)
	m.MineTime = time.Since(mineStart)
	s.stageHist("mine").Observe(m.MineTime.Seconds())
	obs.Observe(ctx, "service.execute", mineStart, m.MineTime,
		obs.String("algorithm", string(m.Algorithm)))
	if err != nil {
		return nil, fail(err)
	}
	m.Patterns = len(patterns)
	m.Exec = exec
	m.MapReduce = mrm
	s.agg.record(m)
	s.cfg.Obs.Counter("seqmine_queries_total",
		"Queries served successfully.", "algorithm", string(m.Algorithm)).Inc()
	span.SetAttrInt("patterns", int64(m.Patterns))
	return &Response{Patterns: patterns, Dict: ds.DB.Dict, Metrics: m, TraceID: span.TraceID()}, nil
}

// stageHist returns the stage-latency histogram series for one serving
// stage ("compile" or "mine"); nil (a no-op) without a registry.
func (s *Service) stageHist(stage string) *obs.Histogram {
	return s.cfg.Obs.Histogram("seqmine_query_stage_seconds",
		"Wall-clock duration of query-serving stages.", obs.DurationBuckets, "stage", stage)
}

// Decode renders a mined pattern against the named dataset's current
// dictionary.
func (s *Service) Decode(dataset string, p miner.Pattern) (string, error) {
	ds, err := s.reg.Acquire(dataset)
	if err != nil {
		return "", err
	}
	defer ds.Release()
	return ds.DB.Dict.DecodeString(p.Items), nil
}

// Metrics returns a snapshot of the aggregate service metrics.
func (s *Service) Metrics() Snapshot {
	snap := s.agg.snapshot()
	snap.Cache = s.cache.stats()
	snap.Datasets = s.reg.List()
	snap.Registry = s.cfg.Obs.Snapshot()
	return snap
}

func (s *Service) fail(err error) error {
	s.agg.incErrors()
	s.cfg.Obs.Counter("seqmine_query_errors_total", "Queries that returned an error.").Inc()
	return err
}
