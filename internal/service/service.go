// Package service is the query-serving layer of seqmine: a long-lived,
// concurrency-safe front end over the miners of the paper. It provides
//
//   - a dataset registry holding multiple named sequence databases
//     (registered programmatically or loaded from files, leased to queries
//     with reference counting so replacement never disturbs in-flight work);
//   - a compiled-pattern cache, an LRU over compiled FSTs keyed by (dataset
//     generation, pattern expression) with singleflight deduplication so
//     concurrent identical queries compile once;
//   - a partitioned query executor that shards the database over a bounded
//     worker pool for the sequential backends (exact two-phase SON-style
//     mining) and drives the BSP engine for the distributed ones, under a
//     per-query context deadline;
//   - per-query and aggregate metrics (compile/mine time, cache hit rate,
//     patterns found) in the idiom of mapreduce.Metrics.
//
// The seqmined daemon (cmd/seqmined) exposes this over HTTP; the root
// seqmine package re-exports it for library users.
package service

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"seqmine/internal/dict"
	"seqmine/internal/fst"
	"seqmine/internal/miner"
	"seqmine/internal/obs"
	"seqmine/internal/seqdb"
)

// Config configures a Service.
type Config struct {
	// CacheSize is the capacity (entries) of the compiled-pattern cache;
	// 0 means 128.
	CacheSize int
	// Workers bounds each query's worker pool when the query does not set
	// its own; 0 uses all CPUs.
	Workers int
	// MaxConcurrent bounds the number of queries mining at once (the
	// admission gate's in-flight bound). Excess queries wait in the bounded
	// admission queue (QueueDepth); past that they are shed with an
	// OverloadError. 0 means unbounded (no queueing, no shedding).
	MaxConcurrent int
	// QueueDepth is the admission queue bound: how many queries may wait for
	// a mining slot before the service sheds load. 0 defaults to
	// 4×MaxConcurrent; negative means no waiting room (immediate shed when
	// all slots are busy). Ignored when MaxConcurrent is 0.
	QueueDepth int
	// ResultCacheSize is the capacity (entries) of the mined-result cache,
	// keyed by (dataset generation, expression, sigma, algorithm) with
	// singleflight deduplication of concurrent identical queries. 0 disables
	// result caching.
	ResultCacheSize int
	// Auth, when non-nil, requires an API key on every query and dataset
	// mutation and charges tenants' quotas. Nil disables authentication
	// (everything runs as the anonymous admin tenant).
	Auth *Authenticator
	// Catalog, when non-nil, persists dataset registrations: every
	// Register/Load writes the dataset as a content-addressed bundle plus a
	// journaled name binding, and RestoreCatalog re-registers the cataloged
	// datasets after a restart.
	Catalog *Catalog
	// DefaultTimeout is applied to queries that carry no deadline; 0 means
	// no default deadline.
	DefaultTimeout time.Duration
	// ClusterWorkers are the control URLs of a default worker cluster.
	// Queries that request distributed execution without naming workers use
	// it (see the HTTP API's "distributed" flag).
	ClusterWorkers []string
	// SpillThreshold is the default shuffle spill threshold in bytes per
	// peer applied to queries that do not set their own (see
	// ExecOptions.SpillThreshold); 0 keeps shuffles in memory.
	SpillThreshold int64
	// SpillTmpDir is the default directory for shuffle spill segments;
	// empty uses the system temp directory.
	SpillTmpDir string
	// SendBufferBytes is the default streaming send-buffer size in bytes
	// per peer applied to queries that do not set their own (see
	// ExecOptions.SendBufferBytes); 0 keeps the phase-synchronous barrier.
	SendBufferBytes int64
	// SendBufferMaxBytes is the default adaptive send-buffer bound applied
	// to queries that do not set their own (see
	// ExecOptions.SendBufferMaxBytes); 0 (or <= the effective
	// SendBufferBytes) keeps the buffers fixed.
	SendBufferMaxBytes int64
	// CompressSpill compresses spill segments with DEFLATE by default.
	// Queries opt in or out per request with the tri-state "compress_spill"
	// body field (ExecOptions.CompressSpillSet); a query that says nothing
	// inherits this default.
	CompressSpill bool
	// Prefilter enables the two-pass reachability prefilter by default for
	// queries that do not request it themselves (ExecOptions.Prefilter).
	// Mining output is byte-identical either way, so a simple opt-in default
	// suffices (no tri-state needed).
	Prefilter bool
	// TaskRetries is the default retry budget of cluster-executed queries
	// that do not set their own (see ExecOptions.TaskRetries): how many
	// failed attempts the scheduler relaunches on the surviving workers.
	// 0 falls through to the scheduler's built-in budget of 2; negative
	// disables retries by default.
	TaskRetries int
	// SpeculativeAfter is the default straggler threshold of
	// cluster-executed queries: a speculative duplicate attempt launches
	// when the running attempt exceeds it. 0 disables speculation by
	// default.
	SpeculativeAfter time.Duration
	// Obs is the metrics registry the service's instruments live on:
	// query/error counters, the seqmine_query_stage_seconds stage-latency
	// histograms, and — because Mine threads it into the executor and the
	// cluster coordinator — the engine's spill/streaming histograms and the
	// scheduler's attempt/heartbeat histograms. Nil disables registry
	// metrics; the JSON Snapshot counters are unaffected.
	Obs *obs.Registry
	// Recorder receives trace spans of queries whose context carries no
	// recorder of its own; the HTTP handler serves recorded traces at
	// GET /debug/trace/{trace_id}. Nil leaves tracing to the caller's
	// context (no recorder there either means spans are not recorded).
	Recorder *obs.Recorder
}

// Service is a concurrent mining service. All methods are safe for
// concurrent use.
type Service struct {
	cfg     Config
	reg     *Registry
	cache   *fstCache
	results *resultCache // nil when ResultCacheSize == 0
	adm     *admission
	agg     aggregator
}

// ErrQuotaExceeded is returned (wrapped) when a tenant's dataset quota is
// exhausted; the HTTP layer maps it to 429.
var ErrQuotaExceeded = errors.New("tenant quota exceeded")

// ErrForbidden is returned (wrapped) when a tenant acts on another tenant's
// dataset; the HTTP layer maps it to 403.
var ErrForbidden = errors.New("forbidden")

// New creates a Service.
func New(cfg Config) *Service {
	queueDepth := cfg.QueueDepth
	if queueDepth == 0 && cfg.MaxConcurrent > 0 {
		queueDepth = 4 * cfg.MaxConcurrent
	}
	return &Service{
		cfg:     cfg,
		reg:     NewRegistry(),
		cache:   newFSTCache(cfg.CacheSize),
		results: newResultCache(cfg.ResultCacheSize),
		adm:     newAdmission(cfg.MaxConcurrent, queueDepth, cfg.Obs),
	}
}

// Auth returns the service's authenticator (nil when auth is disabled).
func (s *Service) Auth() *Authenticator { return s.cfg.Auth }

// RestoreCatalog re-registers every dataset of the configured catalog (the
// persisted registrations of previous runs) and returns how many it
// restored. Call it once after New, before serving; with no catalog it is a
// no-op.
func (s *Service) RestoreCatalog() (int, error) {
	if s.cfg.Catalog == nil {
		return 0, nil
	}
	n := 0
	for _, e := range s.cfg.Catalog.Entries() {
		db, err := s.cfg.Catalog.Load(e)
		if err != nil {
			return n, err
		}
		if _, err := s.reg.RegisterOwned(e.Name, db, e.Tenant); err != nil {
			return n, fmt.Errorf("restoring dataset %q: %w", e.Name, err)
		}
		n++
	}
	return n, nil
}

// RegisterDataset adds (or replaces) a database under the given name.
// Replacement drops the previous generation's cached FSTs and results so the
// LRUs are not left holding unreachable entries.
func (s *Service) RegisterDataset(name string, db *seqdb.Database) (uint64, error) {
	return s.RegisterDatasetAs(name, db, nil)
}

// RegisterDatasetAs is RegisterDataset on behalf of an authenticated tenant:
// the registration is charged against the tenant's dataset quota and the
// tenant is recorded as the owner. A nil tenant registers unowned (admin).
func (s *Service) RegisterDatasetAs(name string, db *seqdb.Database, tenant *Tenant) (uint64, error) {
	if err := s.checkDatasetQuota(name, tenant); err != nil {
		return 0, err
	}
	owner := ""
	if tenant != nil {
		owner = tenant.Name
	}
	// Persist before registering: a catalog failure must not leave a
	// registration that would silently vanish on restart.
	if s.cfg.Catalog != nil {
		if _, err := s.cfg.Catalog.Put(name, db, owner); err != nil {
			return 0, fmt.Errorf("persisting dataset %q: %w", name, err)
		}
	}
	gen, err := s.reg.RegisterOwned(name, db, owner)
	if err == nil && gen > 1 {
		s.cache.invalidateDataset(name)
		s.results.invalidateDataset(name)
	}
	return gen, err
}

// checkDatasetQuota enforces a tenant's MaxDatasets bound. Replacing a
// dataset the tenant already owns does not consume quota.
func (s *Service) checkDatasetQuota(name string, tenant *Tenant) error {
	if tenant == nil || tenant.maxDatasets <= 0 {
		return nil
	}
	if owner, ok := s.reg.Owner(name); ok && owner == tenant.Name {
		return nil
	}
	if s.reg.CountOwned(tenant.Name) >= tenant.maxDatasets {
		return fmt.Errorf("%w: tenant %q already holds %d datasets",
			ErrQuotaExceeded, tenant.Name, tenant.maxDatasets)
	}
	return nil
}

// LoadDataset reads a database from files and registers it.
func (s *Service) LoadDataset(name, sequencesPath, hierarchyPath string) (uint64, error) {
	db, err := seqdb.ReadFiles(sequencesPath, hierarchyPath)
	if err != nil {
		return 0, err
	}
	return s.RegisterDatasetAs(name, db, nil)
}

// RemoveDataset unregisters a dataset and drops its cached FSTs and results.
// In-flight queries are unaffected.
func (s *Service) RemoveDataset(name string) bool {
	ok, _ := s.RemoveDatasetAs(name, nil)
	return ok
}

// RemoveDatasetAs is RemoveDataset on behalf of an authenticated tenant.
// A tenant may only remove datasets it owns; the nil (anonymous/admin)
// tenant may remove anything.
func (s *Service) RemoveDatasetAs(name string, tenant *Tenant) (bool, error) {
	if tenant != nil {
		if owner, ok := s.reg.Owner(name); ok && owner != tenant.Name {
			return false, fmt.Errorf("%w: dataset %q is not owned by tenant %q", ErrForbidden, name, tenant.Name)
		}
	}
	ok := s.reg.Unregister(name)
	if ok {
		s.cache.invalidateDataset(name)
		s.results.invalidateDataset(name)
		if s.cfg.Catalog != nil {
			if err := s.cfg.Catalog.Delete(name); err != nil {
				return true, fmt.Errorf("unpersisting dataset %q: %w", name, err)
			}
		}
	}
	return ok, nil
}

// Datasets lists the registered datasets.
func (s *Service) Datasets() []DatasetInfo { return s.reg.List() }

// ClusterWorkers returns the configured default worker cluster (may be nil).
func (s *Service) ClusterWorkers() []string { return s.cfg.ClusterWorkers }

// DatasetInfo describes one dataset, or an error if it is not registered.
func (s *Service) DatasetInfo(name string) (DatasetInfo, error) {
	ds, err := s.reg.Acquire(name)
	if err != nil {
		return DatasetInfo{}, err
	}
	defer ds.Release()
	return DatasetInfo{
		Name:          ds.Name,
		Generation:    ds.Gen,
		ActiveQueries: ds.entry.refs.Load() - 1, // exclude our own lease
		Stats:         ds.entry.stats,
		Tenant:        ds.entry.owner,
	}, nil
}

// Query is one mining request.
type Query struct {
	// Dataset names a registered dataset.
	Dataset string
	// Expression is the DESQ pattern expression.
	Expression string
	// Sigma is the minimum support threshold (> 0).
	Sigma int64
	// Options configures the execution; the zero value mines with D-SEQ
	// and no enhancements (see DefaultExecOptions for the recommended
	// configuration).
	Options ExecOptions
	// Timeout overrides the service default deadline for this query; 0
	// keeps the default.
	Timeout time.Duration
}

// Response is the outcome of one query.
type Response struct {
	// Patterns are the frequent sequences, sorted by decreasing frequency.
	Patterns []miner.Pattern
	// Dict is the dictionary of the dataset generation the query ran
	// against; use it to decode Patterns (immutable, safe to share).
	Dict *dict.Dictionary
	// Metrics describes the execution.
	Metrics QueryMetrics
	// TraceID identifies the query's trace when a recorder was attached
	// (via the query context or Config.Recorder); empty otherwise. The
	// recorded spans cover compile/execute stages, the engine's map,
	// shuffle, spill and reduce phases, and — for cluster execution — the
	// scheduler's attempts and every worker's local spans, merged into one
	// trace.
	TraceID obs.TraceID
}

// Mine serves one query: it leases the dataset, obtains the compiled FST from
// the compiled-pattern cache (compiling at most once across concurrent
// identical queries), runs the partitioned executor and records metrics.
func (s *Service) Mine(ctx context.Context, q Query) (*Response, error) {
	if q.Expression == "" {
		return nil, s.fail(fmt.Errorf("empty pattern expression"))
	}
	if q.Sigma <= 0 {
		return nil, s.fail(fmt.Errorf("minimum support must be positive, got %d", q.Sigma))
	}
	// Tracing: install the service recorder unless the caller brought one
	// (the HTTP handler installs it plus any remote parent before calling),
	// then open the root span of the query. With no recorder anywhere,
	// StartSpan returns a nil span and every use below no-ops.
	if s.cfg.Recorder != nil && obs.RecorderFrom(ctx) == nil {
		ctx = obs.WithRecorder(ctx, s.cfg.Recorder)
	}
	ctx, span := obs.StartSpan(ctx, "service.mine",
		obs.String("dataset", q.Dataset), obs.Int("sigma", q.Sigma))
	defer span.End()
	fail := func(err error) error {
		span.SetAttr("error", err.Error())
		return s.fail(err)
	}
	opts := q.Options
	if opts.Workers <= 0 {
		opts.Workers = s.cfg.Workers
	}
	if opts.SpillThreshold == 0 {
		opts.SpillThreshold = s.cfg.SpillThreshold
	}
	if opts.SpillTmpDir == "" {
		opts.SpillTmpDir = s.cfg.SpillTmpDir
	}
	if opts.SendBufferBytes == 0 {
		opts.SendBufferBytes = s.cfg.SendBufferBytes
	}
	if opts.SendBufferMaxBytes == 0 {
		opts.SendBufferMaxBytes = s.cfg.SendBufferMaxBytes
	}
	if !opts.CompressSpillSet && !opts.CompressSpill {
		opts.CompressSpill = s.cfg.CompressSpill
	}
	if !opts.Prefilter {
		opts.Prefilter = s.cfg.Prefilter
	}
	if opts.TaskRetries == 0 {
		opts.TaskRetries = s.cfg.TaskRetries
	}
	if opts.SpeculativeAfter == 0 {
		opts.SpeculativeAfter = s.cfg.SpeculativeAfter
	}
	if opts.Obs == nil {
		opts.Obs = s.cfg.Obs
	}
	if opts.Cluster != nil && opts.Cluster.Expression == "" {
		// The workers compile the expression themselves; copy the options so
		// the caller's struct is not mutated.
		withExpr := *opts.Cluster
		withExpr.Expression = q.Expression
		opts.Cluster = &withExpr
	}

	timeout := q.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	ds, err := s.reg.Acquire(q.Dataset)
	if err != nil {
		return nil, fail(err)
	}

	m := QueryMetrics{
		Dataset:    q.Dataset,
		Expression: q.Expression,
		Algorithm:  opts.Algorithm,
		Sigma:      q.Sigma,
	}
	if m.Algorithm == "" {
		m.Algorithm = AlgoDSeq
	}
	span.SetAttr("algorithm", string(m.Algorithm))

	// Result cache: a hit (or piggybacking on an identical in-flight query)
	// serves the answer without consuming an admission slot — the cheap path
	// that keeps repeated analyst queries off the mining pool entirely.
	rkey := resultKey{dataset: ds.Name, generation: ds.Gen, expression: q.Expression,
		sigma: q.Sigma, algorithm: m.Algorithm}
	lookupStart := time.Now()
	var flight *resultFlight
	if cached, hit, fl, err := s.results.lookup(rkey); hit || err != nil {
		ds.Release()
		if err != nil {
			return nil, fail(err)
		}
		m.ResultCacheHit = true
		m.CacheHit = true // the FST never needed compiling either
		m.MineTime = time.Since(lookupStart)
		m.Patterns = len(cached.patterns)
		s.agg.record(m)
		s.cfg.Obs.Counter("seqmine_result_cache_hits_total",
			"Queries served from the result cache (including shared in-flight answers).").Inc()
		s.cfg.Obs.Counter("seqmine_queries_total",
			"Queries served successfully.", "algorithm", string(m.Algorithm)).Inc()
		span.SetAttr("result_cache_hit", "true")
		span.SetAttrInt("patterns", int64(m.Patterns))
		return &Response{Patterns: cached.patterns, Dict: cached.dict, Metrics: m, TraceID: span.TraceID()}, nil
	} else if fl != nil {
		// This query now owns the flight: every return path below must
		// resolve it exactly once or concurrent identical queries would block
		// forever. All error returns run through fail (wrapped here); the one
		// success return resolves with the answer.
		flight = fl
		origFail := fail
		fail = func(err error) error {
			s.results.resolve(rkey, flight, cachedResult{}, err)
			return origFail(err)
		}
		s.cfg.Obs.Counter("seqmine_result_cache_misses_total",
			"Queries that missed the result cache and mined.").Inc()
	}

	// Admission: the bounded queue and the tenant's in-flight quota. Shed
	// queries error with OverloadError (HTTP 429 + Retry-After).
	tenant := TenantFrom(ctx)
	admitStart := time.Now()
	release, err := s.adm.acquire(ctx, tenant)
	if err != nil {
		ds.Release()
		return nil, fail(err)
	}
	s.stageHist("queue").Observe(time.Since(admitStart).Seconds())
	s.agg.addActive(1)
	activeGauge := s.cfg.Obs.Gauge("seqmine_active_queries", "Queries currently holding a mining slot.")
	activeGauge.Add(1)
	served := time.Now()

	// The admission slot, active counter and dataset lease are held for the
	// true lifetime of the mining work: a query abandoned on deadline keeps
	// its resources until the background goroutine finishes, so MaxConcurrent
	// genuinely bounds concurrent mining.
	cleanup := func() {
		ds.Release()
		s.agg.addActive(-1)
		activeGauge.Add(-1)
		s.adm.done(time.Since(served))
		release()
	}

	key := cacheKey{dataset: ds.Name, generation: ds.Gen, expression: q.Expression}
	compileStart := time.Now()
	f, hit, err := s.cache.get(key, func() (*fst.FST, error) {
		return fst.Compile(q.Expression, ds.DB.Dict)
	})
	m.CompileTime = time.Since(compileStart)
	m.CacheHit = hit
	s.stageHist("compile").Observe(m.CompileTime.Seconds())
	obs.Observe(ctx, "service.compile", compileStart, m.CompileTime,
		obs.String("cache_hit", strconv.FormatBool(hit)))
	if err != nil {
		cleanup()
		return nil, fail(fmt.Errorf("compiling %q: %w", q.Expression, err))
	}

	mineStart := time.Now()
	patterns, mrm, exec, err := execute(ctx, f, ds.DB, q.Sigma, opts, cleanup)
	m.MineTime = time.Since(mineStart)
	s.stageHist("mine").Observe(m.MineTime.Seconds())
	obs.Observe(ctx, "service.execute", mineStart, m.MineTime,
		obs.String("algorithm", string(m.Algorithm)))
	if err != nil {
		return nil, fail(err)
	}
	m.Patterns = len(patterns)
	m.Exec = exec
	m.MapReduce = mrm
	if flight != nil {
		s.results.resolve(rkey, flight, cachedResult{patterns: patterns, dict: ds.DB.Dict}, nil)
	}
	s.agg.record(m)
	s.cfg.Obs.Counter("seqmine_queries_total",
		"Queries served successfully.", "algorithm", string(m.Algorithm)).Inc()
	span.SetAttrInt("patterns", int64(m.Patterns))
	return &Response{Patterns: patterns, Dict: ds.DB.Dict, Metrics: m, TraceID: span.TraceID()}, nil
}

// stageHist returns the stage-latency histogram series for one serving
// stage ("compile" or "mine"); nil (a no-op) without a registry.
func (s *Service) stageHist(stage string) *obs.Histogram {
	return s.cfg.Obs.Histogram("seqmine_query_stage_seconds",
		"Wall-clock duration of query-serving stages.", obs.DurationBuckets, "stage", stage)
}

// Decode renders a mined pattern against the named dataset's current
// dictionary.
func (s *Service) Decode(dataset string, p miner.Pattern) (string, error) {
	ds, err := s.reg.Acquire(dataset)
	if err != nil {
		return "", err
	}
	defer ds.Release()
	return ds.DB.Dict.DecodeString(p.Items), nil
}

// Metrics returns a snapshot of the aggregate service metrics.
func (s *Service) Metrics() Snapshot {
	snap := s.agg.snapshot()
	snap.Cache = s.cache.stats()
	snap.ResultCache = s.results.stats()
	snap.Admission = s.adm.stats()
	snap.Datasets = s.reg.List()
	snap.Registry = s.cfg.Obs.Snapshot()
	return snap
}

func (s *Service) fail(err error) error {
	s.agg.incErrors()
	s.cfg.Obs.Counter("seqmine_query_errors_total", "Queries that returned an error.").Inc()
	return err
}
