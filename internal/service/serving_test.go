package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"seqmine/internal/paperex"
)

// postMine issues one POST /mine against a test server and returns the
// response (body left open for the caller via t.Cleanup).
func postMine(t *testing.T, url, apiKey string, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/mine", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if apiKey != "" {
		req.Header.Set("X-Api-Key", apiKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestMineShedsOverHTTP holds the only mining slot and checks the HTTP
// contract of a shed query: 429 Too Many Requests, a whole-second Retry-After
// header, a JSON error body — and recovery once the slot frees.
func TestMineShedsOverHTTP(t *testing.T) {
	svc := New(Config{MaxConcurrent: 1, QueueDepth: -1})
	if _, err := svc.RegisterDataset("ex", catalogDB(t)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	// Occupy the slot as a long-running query would.
	release, err := svc.adm.acquire(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}

	body := `{"dataset":"ex","pattern":"` + paperex.PatternExpression + `","sigma":2}`
	resp := postMine(t, srv.URL, "", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want a whole number of seconds >= 1", ra)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e.Error, "overloaded") {
		t.Fatalf("error body = %+v (%v), want an overloaded message", e, err)
	}

	release()
	svc.adm.done(time.Millisecond)
	resp2 := postMine(t, srv.URL, "", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-release status = %d, want 200", resp2.StatusCode)
	}
	if snap := svc.Metrics(); snap.Admission.ShedQueueFull != 1 {
		t.Fatalf("admission stats = %+v, want 1 queue-full shed", snap.Admission)
	}
}

// TestTenantQuotaShedsOverHTTP charges a tenant to its in-flight quota and
// checks that its next query is shed with 429 while another tenant still
// mines.
func TestTenantQuotaShedsOverHTTP(t *testing.T) {
	auth, err := NewAuthenticator([]APIKey{
		{Key: "k-acme", Tenant: "acme", MaxInFlight: 1},
		{Key: "k-ops", Tenant: "ops"},
	})
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{MaxConcurrent: 8, Auth: auth})
	if _, err := svc.RegisterDataset("ex", catalogDB(t)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	acme := auth.Tenant("acme")
	if !acme.acquire() { // simulate acme's one in-flight query
		t.Fatal("could not charge acme's quota")
	}
	body := `{"dataset":"ex","pattern":"` + paperex.PatternExpression + `","sigma":2}`
	resp := postMine(t, srv.URL, "k-acme", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("acme status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("tenant-quota 429 without Retry-After header")
	}
	// Another tenant is unaffected by acme's quota.
	resp2 := postMine(t, srv.URL, "k-ops", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("ops status = %d, want 200", resp2.StatusCode)
	}
	acme.release()
	resp3 := postMine(t, srv.URL, "k-acme", body)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("acme post-release status = %d, want 200", resp3.StatusCode)
	}
	if snap := svc.Metrics(); snap.Admission.ShedTenant != 1 {
		t.Fatalf("admission stats = %+v, want 1 tenant shed", snap.Admission)
	}
}
