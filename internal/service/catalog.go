package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"seqmine/internal/cluster"
	"seqmine/internal/seqdb"
)

// Catalog is the persistent dataset catalog of the serving tier. The daemon's
// in-memory registry forgets everything on restart; a catalog makes
// registrations durable by splitting them into two parts:
//
//   - the sequence bytes live in a content-addressed bundle store
//     (cluster.BundleDir — the same SQDS1 encoding the cluster's dataset
//     store ships to workers), immutable and shareable across processes;
//   - the name -> bundle-id binding lives in an append-only journal of JSON
//     lines (catalog.journal), one record per register/unregister.
//
// On open, the journal is replayed (last record per name wins) and compacted.
// A daemon that restarts re-registers every cataloged dataset from the local
// bundle files — no re-PUT needed — and N stateless replicas pointed at one
// catalog directory all serve the same datasets.
type Catalog struct {
	dir     string
	bundles *cluster.BundleDir

	mu      sync.Mutex
	journal *os.File
	entries map[string]CatalogEntry
}

// CatalogEntry is one live binding of the catalog.
type CatalogEntry struct {
	// Name is the dataset name in the registry.
	Name string `json:"name"`
	// ID is the content id of the dataset's bundle in the store.
	ID string `json:"id"`
	// Tenant is the owner recorded at registration ("" for anonymous).
	Tenant string `json:"tenant,omitempty"`
}

// journalRecord is one line of catalog.journal.
type journalRecord struct {
	// Op is "put" or "del".
	Op string `json:"op"`
	CatalogEntry
}

const journalName = "catalog.journal"

// OpenCatalog opens (creating if needed) a catalog directory, replays its
// journal and compacts it.
func OpenCatalog(dir string) (*Catalog, error) {
	if dir == "" {
		return nil, fmt.Errorf("service: catalog directory must not be empty")
	}
	bundles, err := cluster.OpenBundleDir(filepath.Join(dir, "bundles"))
	if err != nil {
		return nil, err
	}
	c := &Catalog{dir: dir, bundles: bundles}
	path := filepath.Join(dir, journalName)
	if f, err := os.Open(path); err == nil {
		c.entries, err = replayJournal(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("service: replaying catalog journal %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	} else {
		c.entries = make(map[string]CatalogEntry)
	}
	// Compact: rewrite the live entries and swap the journal atomically, so
	// deletions and re-registrations do not grow the file without bound.
	if err := c.compactLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// replayJournal folds journal lines into the live entry set: a "put" binds a
// name, a "del" unbinds it, later records win. A trailing line without a
// newline is a torn append (the process died mid-write) and is ignored; a
// malformed complete line is corruption and errors.
func replayJournal(r io.Reader) (map[string]CatalogEntry, error) {
	entries := make(map[string]CatalogEntry)
	br := bufio.NewReader(r)
	lineno := 0
	for {
		line, err := br.ReadString('\n')
		if err == io.EOF {
			// No trailing newline: a torn final append; drop it.
			return entries, nil
		}
		if err != nil {
			return nil, err
		}
		lineno++
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		switch rec.Op {
		case "put":
			if rec.Name == "" || rec.ID == "" {
				return nil, fmt.Errorf("line %d: put record missing name or id", lineno)
			}
			entries[rec.Name] = rec.CatalogEntry
		case "del":
			if rec.Name == "" {
				return nil, fmt.Errorf("line %d: del record missing name", lineno)
			}
			delete(entries, rec.Name)
		default:
			return nil, fmt.Errorf("line %d: unknown op %q", lineno, rec.Op)
		}
	}
}

// appendJournal encodes records as journal lines (the inverse of
// replayJournal).
func appendJournal(w io.Writer, recs ...journalRecord) error {
	for _, rec := range recs {
		buf, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// compactLocked rewrites the journal with only the live entries (sorted for
// determinism) into a temp file renamed over the old journal, then reopens it
// for appending. Callers must hold no lock on a fresh catalog or c.mu
// otherwise.
func (c *Catalog) compactLocked() error {
	if c.journal != nil {
		c.journal.Close()
		c.journal = nil
	}
	path := filepath.Join(c.dir, journalName)
	tmp, err := os.CreateTemp(c.dir, ".journal-*")
	if err != nil {
		return err
	}
	names := make([]string, 0, len(c.entries))
	for name := range c.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	recs := make([]journalRecord, 0, len(names))
	for _, name := range names {
		recs = append(recs, journalRecord{Op: "put", CatalogEntry: c.entries[name]})
	}
	if err := appendJournal(tmp, recs...); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	c.journal = f
	return nil
}

// Put stores a dataset's bundle and journals the name binding. It returns
// the bundle's content id.
func (c *Catalog) Put(name string, db *seqdb.Database, tenant string) (string, error) {
	data, id, err := cluster.EncodeBundle(db)
	if err != nil {
		return "", err
	}
	if err := c.bundles.Put(id, data); err != nil {
		return "", err
	}
	entry := CatalogEntry{Name: name, ID: id, Tenant: tenant}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.appendLocked(journalRecord{Op: "put", CatalogEntry: entry}); err != nil {
		return "", err
	}
	c.entries[name] = entry
	return id, nil
}

// Delete journals the removal of a name binding. Removing an unknown name is
// a no-op (the registry is the source of truth for existence errors).
func (c *Catalog) Delete(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[name]; !ok {
		return nil
	}
	if err := c.appendLocked(journalRecord{Op: "del", CatalogEntry: CatalogEntry{Name: name}}); err != nil {
		return err
	}
	delete(c.entries, name)
	return nil
}

func (c *Catalog) appendLocked(rec journalRecord) error {
	if c.journal == nil {
		return fmt.Errorf("service: catalog is closed")
	}
	if err := appendJournal(c.journal, rec); err != nil {
		return err
	}
	return c.journal.Sync()
}

// Load decodes the bundle bound to one catalog entry.
func (c *Catalog) Load(entry CatalogEntry) (*seqdb.Database, error) {
	data, err := c.bundles.Get(entry.ID)
	if err != nil {
		return nil, fmt.Errorf("service: catalog entry %q: %w", entry.Name, err)
	}
	return cluster.DecodeBundle(data)
}

// Entries lists the live catalog entries, sorted by name.
func (c *Catalog) Entries() []CatalogEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CatalogEntry, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Dir returns the catalog directory.
func (c *Catalog) Dir() string { return c.dir }

// Close closes the journal. Further Put/Delete calls fail.
func (c *Catalog) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal == nil {
		return nil
	}
	err := c.journal.Close()
	c.journal = nil
	return err
}
