package service

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"seqmine/internal/cluster"
	"seqmine/internal/dcand"
	"seqmine/internal/dict"
	"seqmine/internal/dseq"
	"seqmine/internal/fst"
	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
	"seqmine/internal/naive"
	"seqmine/internal/obs"
	"seqmine/internal/seqdb"
)

// Algorithm names a mining backend. The string values double as the wire
// format of the HTTP API.
type Algorithm string

const (
	AlgoDFS       Algorithm = "dfs"
	AlgoCount     Algorithm = "count"
	AlgoDSeq      Algorithm = "dseq"
	AlgoDCand     Algorithm = "dcand"
	AlgoNaive     Algorithm = "naive"
	AlgoSemiNaive Algorithm = "seminaive"
)

// ParseAlgorithm validates an algorithm name; the empty string selects DSeq.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch a := Algorithm(strings.ToLower(s)); a {
	case "":
		return AlgoDSeq, nil
	case AlgoDFS, AlgoCount, AlgoDSeq, AlgoDCand, AlgoNaive, AlgoSemiNaive:
		return a, nil
	default:
		return "", fmt.Errorf("unknown algorithm %q", s)
	}
}

// ExecOptions configures one query's execution. The zero value mines with
// D-SEQ and none of the paper's enhancements enabled, mirroring the root
// package's Options; start from DefaultExecOptions for the recommended
// configuration.
type ExecOptions struct {
	// Algorithm selects the backend miner; empty means D-SEQ.
	Algorithm Algorithm
	// Workers bounds the worker pool mining the query; 0 uses all CPUs.
	Workers int
	// Shards is the number of database partitions for the sequential
	// backends (dfs, count); 0 means one shard per worker. The distributed
	// backends partition internally (by pivot item) and ignore it.
	Shards int

	// D-SEQ toggles (defaults on when zero-valued via DefaultExecOptions).
	UseGrid            bool
	Rewrite            bool
	EarlyStopping      bool
	AggregateSequences bool
	// D-CAND toggles.
	MinimizeNFAs  bool
	AggregateNFAs bool

	// Prefilter enables the paper's two-pass trick on every backend: a cheap
	// backward reachability scan rejects input sequences without any
	// accepting run before the expensive per-sequence work (full simulation,
	// pivot analysis, or candidate enumeration). Mining output is
	// byte-identical with and without it. Off by default.
	Prefilter bool

	// SpillThreshold bounds the in-memory shuffle footprint of the
	// distributed backends, in bytes per peer: past it, shuffle partitions
	// spill to sorted temp-file segments that the reduce phase
	// merge-streams, so shuffles larger than memory still complete.
	// 0 inherits the service default (Config.SpillThreshold) when run
	// through Service.Mine; <= 0 at Execute time keeps the shuffle in
	// memory. The sequential backends (dfs, count) do not shuffle and
	// ignore it.
	SpillThreshold int64
	// SpillTmpDir is where spill segments are created for in-process runs;
	// empty uses the system temp directory. It is a daemon-local path and is
	// never shipped to cluster workers — they spill into their own
	// -spill-dir.
	SpillTmpDir string
	// SendBufferBytes, when > 0, switches the distributed backends to the
	// streaming pipelined shuffle: map workers emit into bounded per-peer
	// send buffers drained while mapping continues, overlapping map compute
	// with transfer and bounding map-side memory. 0 inherits the service
	// default (Config.SendBufferBytes) when run through Service.Mine; <= 0
	// at Execute time keeps the phase-synchronous barrier.
	SendBufferBytes int64
	// SendBufferMaxBytes, when > SendBufferBytes, lets the streaming
	// shuffle grow a destination's send buffer adaptively up to this
	// bound. 0 inherits the service default (Config.SendBufferMaxBytes)
	// when run through Service.Mine; <= SendBufferBytes at Execute time
	// keeps the buffers fixed.
	SendBufferMaxBytes int64
	// CompressSpill compresses spill segments (receive-side runs and
	// map-side send overflow) with DEFLATE; SpilledBytes then reports the
	// compressed on-disk size.
	CompressSpill bool
	// CompressSpillSet marks CompressSpill as an explicit per-query choice:
	// when set, Service.Mine honors CompressSpill verbatim (including false
	// overriding a daemon-wide -compress-spill default) instead of merging
	// it with the service default. The HTTP API sets it whenever the request
	// body carries a "compress_spill" field (tri-state *bool).
	CompressSpillSet bool

	// TaskRetries is the cluster scheduler's retry budget: how many failed
	// attempts it relaunches on the surviving workers before the job fails.
	// 0 inherits the service default (Config.TaskRetries) when run through
	// Service.Mine, falling back to the scheduler's built-in budget of 2;
	// negative disables retries. In-process backends never retry and ignore
	// it.
	TaskRetries int
	// SpeculativeAfter launches one speculative duplicate attempt when a
	// cluster job's running attempt exceeds this duration (straggler
	// mitigation; first attempt to finish wins). 0 inherits the service
	// default (Config.SpeculativeAfter); negative disables speculation.
	SpeculativeAfter time.Duration
	// TaskPartitions is the number of per-partition tasks a cluster job is
	// decomposed into; 0 uses one task per live worker.
	TaskPartitions int

	// Cluster, when non-nil, runs the distributed backends (dseq, dcand)
	// across remote worker processes over the TCP shuffle transport instead
	// of the in-process BSP engine.
	Cluster *ClusterOptions

	// Obs receives the execution's registry metrics: the in-process engine's
	// spill-segment and send-buffer histograms, or the cluster scheduler's
	// attempt and heartbeat histograms. Nil disables registry metrics.
	// Service.Mine fills it in from its own registry when unset.
	Obs *obs.Registry
}

// ClusterOptions selects distributed execution across worker processes.
type ClusterOptions struct {
	// Workers are the control URLs of the worker processes
	// ("http://host:port"), one per peer.
	Workers []string
	// Expression is the pattern expression shipped to the workers, which
	// compile it against the dataset dictionary themselves. Service.Mine
	// fills it in from the query; direct Execute callers must set it (the
	// compiled FST cannot be sent over the wire).
	Expression string
}

// DefaultExecOptions mirrors seqmine.DefaultOptions: D-SEQ with every
// enhancement enabled.
func DefaultExecOptions() ExecOptions {
	return ExecOptions{
		Algorithm:          AlgoDSeq,
		UseGrid:            true,
		Rewrite:            true,
		EarlyStopping:      true,
		AggregateSequences: true,
		MinimizeNFAs:       true,
		AggregateNFAs:      true,
	}
}

// ExecStats describes how a query was executed.
type ExecStats struct {
	// Shards is the number of database partitions mined (1 when the backend
	// ran unpartitioned).
	Shards int `json:"shards"`
	// Candidates is the size of the candidate superset produced by phase one
	// of two-phase sharded mining (0 for unpartitioned backends).
	Candidates int `json:"candidates"`
	// Cluster carries the scheduler's attempt/retry and dataset-store
	// accounting for cluster-executed queries (nil otherwise).
	Cluster *ClusterStats `json:"cluster,omitempty"`
}

// ClusterStats is the fault-tolerance and dataset-store accounting of one
// cluster-executed query.
type ClusterStats struct {
	// Tasks is the number of per-partition tasks of the job.
	Tasks int `json:"tasks"`
	// Attempts is the number of attempts launched (>= 1); Retries counts
	// relaunches after failures and SpeculativeAttempts counts straggler
	// races.
	Attempts            int `json:"attempts"`
	Retries             int `json:"retries"`
	SpeculativeAttempts int `json:"speculative_attempts"`
	// DeadWorkers is how many pool members were declared dead during the
	// job.
	DeadWorkers int `json:"dead_workers"`
	// StoreHits / StoreMisses / StorePutBytes describe the dataset-store
	// traffic: a resubmission against an already-pushed dataset reports
	// zero misses and zero put bytes.
	StoreHits     int   `json:"store_hits"`
	StoreMisses   int   `json:"store_misses"`
	StorePutBytes int64 `json:"store_put_bytes"`
}

// Execute runs one mining job. The sequential backends (dfs, count) run as a
// two-phase partitioned job over a bounded worker pool: phase one mines every
// shard with a proportionally scaled local threshold (SON-style — any
// globally frequent pattern is locally frequent in at least one shard), phase
// two recounts the exact global support of the candidate superset and filters
// by sigma, so the result is identical to the sequential miner on the whole
// database. (Phase two counts by candidate enumeration, DESQ-COUNT style, so
// for very loose constraints on long sequences Shards=1 or a distributed
// backend is the better choice.) The distributed backends (dseq, dcand,
// naive, seminaive) already partition internally by pivot item and run on the
// in-process BSP engine with Workers map/reduce workers.
//
// Cancellation: the job runs in a goroutine and the call returns ctx.Err()
// as soon as the context is done. Shard workers notice cancellation at shard
// boundaries and stop early; a backend in the middle of a shard (or a BSP
// round, which is not interruptible) finishes that unit in the background and
// its result is dropped.
func Execute(ctx context.Context, f *fst.FST, db *seqdb.Database, sigma int64, opts ExecOptions) ([]miner.Pattern, mapreduce.Metrics, ExecStats, error) {
	return execute(ctx, f, db, sigma, opts, nil)
}

// execute is Execute with a completion hook: onDone (when non-nil) is called
// exactly once, after the mining goroutine has actually finished — even when
// the call itself returned early on context cancellation. Callers use it to
// hold resources (concurrency slots, dataset leases) for the true lifetime
// of the work rather than the lifetime of the request.
func execute(ctx context.Context, f *fst.FST, db *seqdb.Database, sigma int64, opts ExecOptions, onDone func()) ([]miner.Pattern, mapreduce.Metrics, ExecStats, error) {
	fail := func(err error) ([]miner.Pattern, mapreduce.Metrics, ExecStats, error) {
		if onDone != nil {
			onDone()
		}
		return nil, mapreduce.Metrics{}, ExecStats{}, err
	}
	if sigma <= 0 {
		return fail(fmt.Errorf("minimum support must be positive, got %d", sigma))
	}
	if err := ctx.Err(); err != nil {
		return fail(err)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	type jobResult struct {
		patterns []miner.Pattern
		metrics  mapreduce.Metrics
		stats    ExecStats
		err      error
	}
	ch := make(chan jobResult, 1)
	go func() {
		var r jobResult
		switch opts.Algorithm {
		case AlgoDFS, AlgoCount:
			if opts.Cluster != nil {
				// Reject rather than silently running locally: the caller
				// asked for cluster execution and would misread the local
				// metrics as cluster metrics.
				r.err = fmt.Errorf("algorithm %q cannot run on a worker cluster (want %s or %s)", opts.Algorithm, AlgoDSeq, AlgoDCand)
			} else {
				r.patterns, r.metrics, r.stats, r.err = mineSharded(ctx, f, db, sigma, opts, workers)
			}
		case "", AlgoDSeq, AlgoDCand, AlgoNaive, AlgoSemiNaive:
			if opts.Cluster != nil {
				r.patterns, r.metrics, r.stats, r.err = mineCluster(ctx, db, sigma, opts)
			} else {
				r.patterns, r.metrics, r.stats, r.err = mineDistributed(ctx, f, db, sigma, opts, workers)
			}
		default:
			r.err = fmt.Errorf("unknown algorithm %q", opts.Algorithm)
		}
		ch <- r
		if onDone != nil {
			onDone()
		}
	}()
	select {
	case <-ctx.Done():
		return nil, mapreduce.Metrics{}, ExecStats{}, ctx.Err()
	case r := <-ch:
		return r.patterns, r.metrics, r.stats, r.err
	}
}

// mineDistributed runs one of the BSP algorithms whole-database. The context
// is threaded into the engine for cooperative cancellation and trace-span
// recording (the mapreduce.run span and its stage children parent under the
// caller's service.mine span when the context carries a recorder).
func mineDistributed(ctx context.Context, f *fst.FST, db *seqdb.Database, sigma int64, opts ExecOptions, workers int) ([]miner.Pattern, mapreduce.Metrics, ExecStats, error) {
	cfg := mapreduce.Config{
		MapWorkers:    workers,
		ReduceWorkers: workers,
		Shuffle:       opts.shuffleConfig(),
		Context:       ctx,
		Obs:           opts.Obs,
	}
	var (
		patterns []miner.Pattern
		metrics  mapreduce.Metrics
		err      error
	)
	switch opts.Algorithm {
	case "", AlgoDSeq:
		patterns, metrics, err = dseq.MineLocal(f, db.Sequences, sigma, dseq.Options{
			UseGrid:       opts.UseGrid,
			Rewrite:       opts.Rewrite,
			EarlyStopping: opts.EarlyStopping,
			Aggregate:     opts.AggregateSequences,
			Prefilter:     opts.Prefilter,
		}, cfg)
	case AlgoDCand:
		patterns, metrics, err = dcand.MineLocal(f, db.Sequences, sigma, dcand.Options{
			Minimize:  opts.MinimizeNFAs,
			Aggregate: opts.AggregateNFAs,
			Prefilter: opts.Prefilter,
		}, cfg)
	case AlgoNaive:
		patterns, metrics, err = naive.MineLocal(f, db.Sequences, sigma, naive.Naive, naive.Options{Spill: cfg.Shuffle, Prefilter: opts.Prefilter}, cfg)
	case AlgoSemiNaive:
		patterns, metrics, err = naive.MineLocal(f, db.Sequences, sigma, naive.SemiNaive, naive.Options{Spill: cfg.Shuffle, Prefilter: opts.Prefilter}, cfg)
	}
	if err != nil {
		return nil, metrics, ExecStats{}, err
	}
	return patterns, metrics, ExecStats{Shards: 1}, nil
}

// shuffleConfig maps the spill/streaming options to the engine's shuffle
// bounds.
func (o ExecOptions) shuffleConfig() mapreduce.ShuffleConfig {
	var sc mapreduce.ShuffleConfig
	if o.SpillThreshold > 0 {
		sc.SpillThreshold = o.SpillThreshold
	}
	if o.SendBufferBytes > 0 {
		sc.SendBufferBytes = o.SendBufferBytes
		if o.SendBufferMaxBytes > o.SendBufferBytes {
			sc.SendBufferMaxBytes = o.SendBufferMaxBytes
		}
	}
	if sc == (mapreduce.ShuffleConfig{}) {
		return sc
	}
	sc.TmpDir = o.SpillTmpDir
	sc.Compression = o.CompressSpill
	return sc
}

// mineCluster fans a distributed backend out across worker processes: the
// coordinator splits the database over the configured workers, which shuffle
// among themselves over the TCP transport and return their pivot partitions'
// patterns. The merged metrics report real socket traffic as ShuffleBytes.
func mineCluster(ctx context.Context, db *seqdb.Database, sigma int64, opts ExecOptions) ([]miner.Pattern, mapreduce.Metrics, ExecStats, error) {
	var algo string
	switch opts.Algorithm {
	case "", AlgoDSeq:
		algo = cluster.AlgoDSeq
	case AlgoDCand:
		algo = cluster.AlgoDCand
	default:
		return nil, mapreduce.Metrics{}, ExecStats{}, fmt.Errorf("algorithm %q cannot run on a worker cluster (want %s or %s)", opts.Algorithm, AlgoDSeq, AlgoDCand)
	}
	if opts.Cluster.Expression == "" {
		return nil, mapreduce.Metrics{}, ExecStats{}, fmt.Errorf("cluster execution requires the pattern expression")
	}
	copts := cluster.Options{
		UseGrid:            opts.UseGrid,
		Rewrite:            opts.Rewrite,
		EarlyStopping:      opts.EarlyStopping,
		AggregateSequences: opts.AggregateSequences,
		MinimizeNFAs:       opts.MinimizeNFAs,
		AggregateNFAs:      opts.AggregateNFAs,
		Prefilter:          opts.Prefilter,
		TaskPartitions:     opts.TaskPartitions,
	}
	if opts.SpillThreshold > 0 {
		copts.SpillThresholdBytes = opts.SpillThreshold
		// SpillTmpDir is deliberately NOT forwarded: it names a path on the
		// daemon's filesystem (often the -spill-dir service default), which
		// is meaningless on remote workers. Left empty in the JobSpec, each
		// worker spills into its own -spill-dir (or system temp dir).
	}
	if opts.SendBufferBytes > 0 {
		copts.SendBufferBytes = opts.SendBufferBytes
		if opts.SendBufferMaxBytes > opts.SendBufferBytes {
			copts.SendBufferMaxBytes = opts.SendBufferMaxBytes
		}
	}
	copts.CompressSpill = opts.CompressSpill
	// Retry/speculation knobs: 0 means "unset" all the way down (Service.Mine
	// resolves it to the daemon default first, which may itself be 0), so the
	// scheduler's built-in budget applies; negative is the explicit "off".
	copts.ApplyRetryKnobs(opts.TaskRetries, opts.SpeculativeAfter)
	coord := &cluster.Coordinator{Workers: opts.Cluster.Workers, Obs: opts.Obs}
	res, err := coord.Mine(ctx, db, opts.Cluster.Expression, sigma, algo, copts)
	if err != nil {
		return nil, mapreduce.Metrics{}, ExecStats{}, err
	}
	stats := ExecStats{
		Shards: len(opts.Cluster.Workers),
		Cluster: &ClusterStats{
			Tasks:               res.Tasks,
			Attempts:            res.Attempts,
			Retries:             res.Retries,
			SpeculativeAttempts: res.SpeculativeAttempts,
			DeadWorkers:         len(res.DeadWorkers),
			StoreHits:           res.StoreHits,
			StoreMisses:         res.StoreMisses,
			StorePutBytes:       res.StorePutBytes,
		},
	}
	return res.Patterns, res.Metrics, stats, nil
}

// mineSharded is the two-phase partitioned executor for the sequential
// backends.
func mineSharded(ctx context.Context, f *fst.FST, db *seqdb.Database, sigma int64, opts ExecOptions, workers int) ([]miner.Pattern, mapreduce.Metrics, ExecStats, error) {
	shards := opts.Shards
	if shards <= 0 {
		shards = workers
	}
	if shards > len(db.Sequences) {
		shards = len(db.Sequences)
	}
	if shards <= 1 {
		// Single shard: run the backend directly with the global threshold.
		patterns, err := mineShardDirect(ctx, f, miner.Weighted(db.Sequences), sigma, opts.Algorithm, opts.Prefilter)
		return patterns, mapreduce.Metrics{}, ExecStats{Shards: 1}, err
	}

	parts := splitSequences(db.Sequences, shards)
	total := int64(len(db.Sequences))

	// Phase 1: mine each shard with the scaled local threshold. A pattern
	// with global support >= sigma has support >= ceil(sigma*|shard|/|db|)
	// in at least one shard, so the union is a superset of the answer.
	partials := make([][]miner.Pattern, len(parts))
	err := runPool(ctx, workers, len(parts), func(i int) error {
		local := (sigma*int64(len(parts[i])) + total - 1) / total
		if local < 1 {
			local = 1
		}
		ps, err := mineShardDirect(ctx, f, miner.Weighted(parts[i]), local, opts.Algorithm, opts.Prefilter)
		partials[i] = ps
		return err
	})
	if err != nil {
		return nil, mapreduce.Metrics{}, ExecStats{}, err
	}

	candidates := make(map[string]bool)
	shapes := make(map[string][]dict.ItemID)
	for _, ps := range partials {
		for _, p := range ps {
			k := miner.Key(p.Items)
			if !candidates[k] {
				candidates[k] = true
				shapes[k] = p.Items
			}
		}
	}
	stats := ExecStats{Shards: len(parts), Candidates: len(candidates)}

	// Phase 2: exact support of every candidate, counted per shard in
	// parallel and summed.
	counts := make([]map[string]int64, len(parts))
	err = runPool(ctx, workers, len(parts), func(i int) error {
		counts[i] = miner.SupportOfOpts(f, miner.Weighted(parts[i]), sigma, candidates, miner.CountOptions{Prefilter: opts.Prefilter})
		return nil
	})
	if err != nil {
		return nil, mapreduce.Metrics{}, stats, err
	}
	totals := make(map[string]int64, len(candidates))
	for _, m := range counts {
		for k, c := range m {
			totals[k] += c
		}
	}
	var out []miner.Pattern
	for k, c := range totals {
		if c >= sigma {
			out = append(out, miner.Pattern{Items: shapes[k], Freq: c})
		}
	}
	miner.SortPatterns(out)
	return out, mapreduce.Metrics{}, stats, nil
}

// mineShardDirect runs a sequential backend on one partition.
func mineShardDirect(ctx context.Context, f *fst.FST, part []miner.WeightedSequence, sigma int64, algo Algorithm, prefilter bool) ([]miner.Pattern, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch algo {
	case AlgoDFS:
		return miner.MineDFS(f, part, sigma, miner.DFSOptions{Prefilter: prefilter}), nil
	case AlgoCount:
		return miner.MineCountOpts(f, part, sigma, miner.CountOptions{Prefilter: prefilter}), nil
	default:
		return nil, fmt.Errorf("algorithm %q is not a sequential backend", algo)
	}
}

// splitSequences partitions the database round-robin into n parts so skewed
// prefixes (e.g. sorted inputs) spread evenly.
func splitSequences(seqs [][]dict.ItemID, n int) [][][]dict.ItemID {
	parts := make([][][]dict.ItemID, n)
	for i, s := range seqs {
		parts[i%n] = append(parts[i%n], s)
	}
	return parts
}

// runPool executes tasks 0..n-1 on at most workers goroutines (strided
// assignment, like the mapreduce engine's map phase), stopping early on the
// first error or context cancellation.
func runPool(ctx context.Context, workers, n int, task func(i int) error) error {
	if workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				if failed() {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				if err := task(i); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}
