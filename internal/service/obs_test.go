package service_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"seqmine/internal/obs"
	"seqmine/internal/paperex"
	"seqmine/internal/service"
)

func newObsServer(t *testing.T) (*httptest.Server, *obs.Recorder) {
	t.Helper()
	rec := obs.NewRecorder("seqmined-test", 0)
	svc := service.New(service.Config{Obs: obs.NewRegistry(), Recorder: rec})
	srv := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(srv.Close)
	return srv, rec
}

// TestMineTraceOverHTTP: a traced query returns its trace id in both the
// body and the X-Seqmine-Trace header, and GET /debug/trace/{id} exports the
// compile/execute/engine spans as Chrome trace-event JSON.
func TestMineTraceOverHTTP(t *testing.T) {
	srv, rec := newObsServer(t)
	putExampleDataset(t, srv, "ex")

	var out service.MineResponse
	resp := doJSON(t, http.MethodPost, srv.URL+"/mine", service.MineRequest{
		Dataset: "ex", Pattern: paperex.PatternExpression, Sigma: paperex.Sigma,
	}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /mine: status %d", resp.StatusCode)
	}
	if out.TraceID == "" {
		t.Fatal("response carries no trace id")
	}
	if got := resp.Header.Get(obs.TraceHeader); got != string(out.TraceID) {
		t.Errorf("%s header = %q, want %q", obs.TraceHeader, got, out.TraceID)
	}

	names := map[string]bool{}
	for _, sp := range rec.TraceSpans(out.TraceID) {
		names[sp.Name] = true
	}
	for _, want := range []string{"service.mine", "service.compile", "service.execute", "mapreduce.run", "mapreduce.map", "mapreduce.reduce"} {
		if !names[want] {
			t.Errorf("trace is missing a %s span (got %v)", want, names)
		}
	}

	traceResp, err := http.Get(srv.URL + "/debug/trace/" + string(out.TraceID))
	if err != nil {
		t.Fatal(err)
	}
	defer traceResp.Body.Close()
	if traceResp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/trace: status %d", traceResp.StatusCode)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(traceResp.Body).Decode(&chrome); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Error("trace export has no events")
	}

	if resp, err := http.Get(srv.URL + "/debug/trace/ffffffffffffffff"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown trace id: status %d, want 404", resp.StatusCode)
		}
	}
}

// TestMineJoinsRemoteTrace: an incoming X-Seqmine-Trace header makes the
// query's spans part of the caller's trace instead of starting a new one.
func TestMineJoinsRemoteTrace(t *testing.T) {
	srv, rec := newObsServer(t)
	putExampleDataset(t, srv, "ex")

	parent := obs.NewTraceID()
	body := `{"dataset":"ex","pattern":"` + paperex.PatternExpression + `","sigma":2}`
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/mine", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceHeader, string(parent)+"-"+string(obs.NewSpanID()))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out service.MineResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.TraceID != parent {
		t.Errorf("traced query joined trace %q, want the caller's %q", out.TraceID, parent)
	}
	if len(rec.TraceSpans(parent)) == 0 {
		t.Error("no spans recorded under the caller's trace id")
	}
}

// TestMetricsPrometheusOverHTTP pins the exposition acceptance criterion:
// after a query, GET /metrics?format=prometheus is valid exposition text with
// populated stage-latency histograms, while the default stays JSON.
func TestMetricsPrometheusOverHTTP(t *testing.T) {
	srv, _ := newObsServer(t)
	putExampleDataset(t, srv, "ex")
	var out service.MineResponse
	if resp := doJSON(t, http.MethodPost, srv.URL+"/mine", service.MineRequest{
		Dataset: "ex", Pattern: paperex.PatternExpression, Sigma: paperex.Sigma,
	}, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /mine: status %d", resp.StatusCode)
	}

	resp, err := http.Get(srv.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	stats, err := obs.ValidateExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	for _, want := range []string{"seqmine_query_stage_seconds_count", "seqmine_queries_total"} {
		if stats.SeriesByName[want] == 0 {
			t.Errorf("exposition missing %s (series: %v)", want, stats.SeriesByName)
		}
	}

	// The JSON default now carries the same series in flattened form.
	jsonResp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer jsonResp.Body.Close()
	b, _ := io.ReadAll(jsonResp.Body)
	var snap struct {
		Registry []obs.SnapshotEntry `json:"registry"`
	}
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	found := false
	for _, e := range snap.Registry {
		if e.Name == "seqmine_query_stage_seconds" && e.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("JSON metrics registry lacks populated stage histograms: %s", b)
	}
}
