package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"seqmine/internal/paperex"
	"seqmine/internal/seqdb"
	"seqmine/internal/service"
)

// exampleQuery is the running example's query against the "ex" dataset.
func exampleQuery() service.Query {
	return service.Query{
		Dataset:    "ex",
		Expression: paperex.PatternExpression,
		Sigma:      paperex.Sigma,
	}
}

// TestResultCacheByteIdentical verifies the core cache-correctness property:
// a cached answer is exactly the uncached answer — same patterns, same order,
// same dictionary — observable in per-query and aggregate metrics.
func TestResultCacheByteIdentical(t *testing.T) {
	svc, _ := newTestService(t, service.Config{ResultCacheSize: 16})
	first, err := svc.Mine(context.Background(), exampleQuery())
	if err != nil {
		t.Fatal(err)
	}
	if first.Metrics.ResultCacheHit {
		t.Fatal("first query claims a result-cache hit")
	}
	second, err := svc.Mine(context.Background(), exampleQuery())
	if err != nil {
		t.Fatal(err)
	}
	if !second.Metrics.ResultCacheHit {
		t.Fatal("second identical query missed the result cache")
	}
	if !reflect.DeepEqual(first.Patterns, second.Patterns) {
		t.Fatalf("cached patterns differ:\n first %v\nsecond %v", first.Patterns, second.Patterns)
	}
	if first.Dict != second.Dict {
		t.Fatal("cached response carries a different dictionary")
	}
	snap := svc.Metrics()
	if snap.ResultCacheHits != 1 || snap.ResultCache.Hits != 1 || snap.ResultCache.Misses != 1 {
		t.Fatalf("snapshot = hits %d / cache %+v, want exactly one hit and one miss",
			snap.ResultCacheHits, snap.ResultCache)
	}
	// A different sigma is a different answer: must not hit.
	q := exampleQuery()
	q.Sigma++
	third, err := svc.Mine(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if third.Metrics.ResultCacheHit {
		t.Fatal("query with different sigma served from the cache")
	}
}

// TestResultCacheInvalidatedOnGenerationBump replaces the dataset under the
// same name and checks the next query mines the new generation instead of
// serving the stale cached answer.
func TestResultCacheInvalidatedOnGenerationBump(t *testing.T) {
	svc, _ := newTestService(t, service.Config{ResultCacheSize: 16})
	first, err := svc.Mine(context.Background(), exampleQuery())
	if err != nil {
		t.Fatal(err)
	}
	// Replace "ex" with a database holding each sequence twice: every
	// frequency doubles, so a stale cached answer is detectable.
	doubled := append(append([][]string{}, paperex.RawDB()...), paperex.RawDB()...)
	db2, err := seqdb.Build(doubled, seqdb.Hierarchy{"a1": {"A"}, "a2": {"A"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RegisterDataset("ex", db2); err != nil {
		t.Fatal(err)
	}
	second, err := svc.Mine(context.Background(), exampleQuery())
	if err != nil {
		t.Fatal(err)
	}
	if second.Metrics.ResultCacheHit {
		t.Fatal("query after generation bump served from the cache")
	}
	// Every original pattern's support doubled (more patterns may newly
	// qualify; a stale cached answer would keep the old frequencies).
	freqs := make(map[string]int64, len(second.Patterns))
	for _, p := range second.Patterns {
		freqs[fmt.Sprint(p.Items)] = p.Freq
	}
	for _, p := range first.Patterns {
		if got := freqs[fmt.Sprint(p.Items)]; got != 2*p.Freq {
			t.Fatalf("pattern %v freq = %d after bump, want doubled %d (stale cache?)", p.Items, got, 2*p.Freq)
		}
	}
}

// TestResultCacheSingleflightThroughService runs identical queries
// concurrently: exactly one may mine (one cache miss), all answers must be
// equal.
func TestResultCacheSingleflightThroughService(t *testing.T) {
	svc, _ := newTestService(t, service.Config{ResultCacheSize: 16})
	const n = 8
	responses := make([]*service.Response, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := svc.Mine(context.Background(), exampleQuery())
			if err != nil {
				panic(err)
			}
			responses[i] = resp
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(responses[0].Patterns, responses[i].Patterns) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
	if snap := svc.Metrics(); snap.ResultCache.Misses != 1 {
		t.Fatalf("result cache misses = %d, want exactly 1 (singleflight)", snap.ResultCache.Misses)
	}
}

func newAuthServer(t *testing.T, keys []service.APIKey, cfg service.Config) (*httptest.Server, *service.Service) {
	t.Helper()
	auth, err := service.NewAuthenticator(keys)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Auth = auth
	svc := service.New(cfg)
	srv := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(srv.Close)
	return srv, svc
}

// TestAuthRequiredOverHTTP checks the authentication plane: requests without
// a valid key are rejected with 401, the operational endpoints stay open, and
// both key headers work.
func TestAuthRequiredOverHTTP(t *testing.T) {
	srv, svc := newAuthServer(t, []service.APIKey{{Key: "s3cret", Tenant: "acme"}}, service.Config{})
	if _, err := svc.RegisterDataset("ex", exampleDB(t)); err != nil {
		t.Fatal(err)
	}
	mine := service.MineRequest{Dataset: "ex", Pattern: paperex.PatternExpression, Sigma: paperex.Sigma}

	if resp := doJSON(t, http.MethodPost, srv.URL+"/mine", mine, nil); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no key: status = %d, want 401", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/datasets", nil)
	req.Header.Set("X-Api-Key", "wrong")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad key: status = %d, want 401", resp.StatusCode)
	}
	// Operational plane needs no key.
	for _, path := range []string{"/healthz", "/metrics"} {
		r, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s without key: status = %d, want 200", path, r.StatusCode)
		}
	}
	// Both key headers authenticate.
	for _, set := range []func(*http.Request){
		func(r *http.Request) { r.Header.Set("X-Api-Key", "s3cret") },
		func(r *http.Request) { r.Header.Set("Authorization", "Bearer s3cret") },
	} {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/datasets", nil)
		set(req)
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("authenticated GET /datasets: status = %d, want 200", r.StatusCode)
		}
	}
}

func doJSONWithKey(t *testing.T, method, url, key string, body any, out any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Api-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp
}

// TestDatasetQuotaAndOwnershipOverHTTP exercises the dataset quota (429 with
// Retry-After on PUT past MaxDatasets, replacement exempt) and ownership
// (403 deleting another tenant's dataset).
func TestDatasetQuotaAndOwnershipOverHTTP(t *testing.T) {
	srv, _ := newAuthServer(t, []service.APIKey{
		{Key: "k-acme", Tenant: "acme", MaxDatasets: 1},
		{Key: "k-ops", Tenant: "ops"},
	}, service.Config{})
	put := func(key, name string) *http.Response {
		return doJSONWithKey(t, http.MethodPut, srv.URL+"/datasets/"+name, key, service.DatasetRequest{
			Sequences: paperex.RawDB(),
			Hierarchy: map[string][]string{"a1": {"A"}, "a2": {"A"}},
		}, nil)
	}
	if resp := put("k-acme", "first"); resp.StatusCode != http.StatusOK {
		t.Fatalf("first PUT: status = %d, want 200", resp.StatusCode)
	}
	resp := put("k-acme", "second")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("PUT past quota: status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("quota 429 without Retry-After header")
	}
	// Replacing an owned dataset does not consume quota.
	if resp := put("k-acme", "first"); resp.StatusCode != http.StatusOK {
		t.Fatalf("replacement PUT: status = %d, want 200", resp.StatusCode)
	}
	// Another tenant may not delete acme's dataset…
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/datasets/first", nil)
	req.Header.Set("X-Api-Key", "k-ops")
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusForbidden {
		t.Fatalf("cross-tenant DELETE: status = %d, want 403", r.StatusCode)
	}
	// …but acme may.
	req2, _ := http.NewRequest(http.MethodDelete, srv.URL+"/datasets/first", nil)
	req2.Header.Set("X-Api-Key", "k-acme")
	r2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNoContent {
		t.Fatalf("own DELETE: status = %d, want 204", r2.StatusCode)
	}
	// Quota freed: acme can register again.
	if resp := put("k-acme", "second"); resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT after delete: status = %d, want 200", resp.StatusCode)
	}
}

// TestCatalogSurvivesRestart is the restart acceptance test: a service with a
// catalog registers a dataset, a brand-new service over the same directory
// restores it and serves byte-identical results.
func TestCatalogSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cat1, err := service.OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc1 := service.New(service.Config{Catalog: cat1})
	if _, err := svc1.RegisterDataset("ex", exampleDB(t)); err != nil {
		t.Fatal(err)
	}
	first, err := svc1.Mine(context.Background(), exampleQuery())
	if err != nil {
		t.Fatal(err)
	}
	if err := cat1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh process opens the same catalog directory.
	cat2, err := service.OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cat2.Close()
	svc2 := service.New(service.Config{Catalog: cat2})
	n, err := svc2.RestoreCatalog()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d datasets, want 1", n)
	}
	infos := svc2.Datasets()
	if len(infos) != 1 || infos[0].Name != "ex" {
		t.Fatalf("datasets after restore = %+v", infos)
	}
	second, err := svc2.Mine(context.Background(), exampleQuery())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Patterns, second.Patterns) {
		t.Fatalf("post-restart patterns differ:\n before %v\n after %v", first.Patterns, second.Patterns)
	}
	// Removal unpersists: a third open must not resurrect the dataset.
	if ok, err := svc2.RemoveDatasetAs("ex", nil); !ok || err != nil {
		t.Fatalf("RemoveDatasetAs = %v, %v", ok, err)
	}
	cat2.Close()
	cat3, err := service.OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cat3.Close()
	if entries := cat3.Entries(); len(entries) != 0 {
		t.Fatalf("entries after delete = %+v, want none", entries)
	}
}

// TestCatalogOwnershipRestored checks tenant ownership survives the journal:
// after a restart the restored dataset still belongs to its tenant.
func TestCatalogOwnershipRestored(t *testing.T) {
	dir := t.TempDir()
	auth, err := service.NewAuthenticator([]service.APIKey{{Key: "k", Tenant: "acme", MaxDatasets: 2}})
	if err != nil {
		t.Fatal(err)
	}
	cat1, err := service.OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc1 := service.New(service.Config{Catalog: cat1, Auth: auth})
	if _, err := svc1.RegisterDatasetAs("ex", exampleDB(t), auth.Tenant("acme")); err != nil {
		t.Fatal(err)
	}
	cat1.Close()

	cat2, err := service.OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cat2.Close()
	svc2 := service.New(service.Config{Catalog: cat2, Auth: auth})
	if _, err := svc2.RestoreCatalog(); err != nil {
		t.Fatal(err)
	}
	infos := svc2.Datasets()
	if len(infos) != 1 || infos[0].Tenant != "acme" {
		t.Fatalf("restored datasets = %+v, want acme ownership", infos)
	}
}
