package service_test

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"

	"seqmine/internal/cluster"
	"seqmine/internal/fst"
	"seqmine/internal/miner"
	"seqmine/internal/seqdb"
	"seqmine/internal/service"
	"seqmine/internal/transport"
)

// startClusterWorkers brings up n worker processes' worth of machinery
// (shuffle node + control server each) inside the test process.
func startClusterWorkers(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		node, err := transport.NewNode("127.0.0.1:0", transport.Config{})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		t.Cleanup(func() { node.Close() })
		srv := httptest.NewServer(cluster.NewWorker(node).Handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls
}

// randomClusterDB returns a deterministic pseudo-random database whose
// mining result spreads over many pivot partitions.
func randomClusterDB(t *testing.T) *seqdb.Database {
	t.Helper()
	vocab := []string{"a1", "a2", "b1", "b2", "c", "d", "e", "f"}
	state := uint64(7)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	raw := make([][]string, 80)
	for i := range raw {
		seq := make([]string, next(6)+1)
		for j := range seq {
			seq[j] = vocab[next(len(vocab))]
		}
		raw[i] = seq
	}
	db, err := seqdb.Build(raw, seqdb.Hierarchy{"a1": {"A"}, "a2": {"A"}, "b1": {"B"}, "b2": {"B"}})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestExecuteClusterMatchesInProcess is the executor-level equivalence
// property: for D-SEQ and D-CAND, the TCP-exchange backend must return
// exactly the same patterns (order-normalized via PatternsToMap) as the
// in-process backend, across all pivot partitions.
func TestExecuteClusterMatchesInProcess(t *testing.T) {
	db := randomClusterDB(t)
	const expr = "[.*(.)]{1,3}.*"
	f, err := fst.Compile(expr, db.Dict)
	if err != nil {
		t.Fatal(err)
	}
	workers := startClusterWorkers(t, 3)

	for _, algo := range []service.Algorithm{service.AlgoDSeq, service.AlgoDCand} {
		for _, sigma := range []int64{2, 5} {
			inOpts := service.DefaultExecOptions()
			inOpts.Algorithm = algo
			want, _, _, err := service.Execute(context.Background(), f, db, sigma, inOpts)
			if err != nil {
				t.Fatalf("%s sigma=%d in-process: %v", algo, sigma, err)
			}

			clOpts := inOpts
			clOpts.Cluster = &service.ClusterOptions{Workers: workers, Expression: expr}
			got, metrics, stats, err := service.Execute(context.Background(), f, db, sigma, clOpts)
			if err != nil {
				t.Fatalf("%s sigma=%d cluster: %v", algo, sigma, err)
			}
			gotM := miner.PatternsToMap(db.Dict, got)
			wantM := miner.PatternsToMap(db.Dict, want)
			if !reflect.DeepEqual(gotM, wantM) {
				t.Errorf("%s sigma=%d: cluster backend = %v, want %v", algo, sigma, gotM, wantM)
			}
			if stats.Shards != len(workers) {
				t.Errorf("%s sigma=%d: Shards = %d, want %d", algo, sigma, stats.Shards, len(workers))
			}
			if !metrics.RemoteShuffle {
				t.Errorf("%s sigma=%d: metrics should be marked RemoteShuffle", algo, sigma)
			}
		}
	}
}

// TestServiceMineCluster runs the full service path (registry, cache,
// expression plumbing into the cluster options) against a 3-worker cluster.
func TestServiceMineCluster(t *testing.T) {
	svc := service.New(service.Config{})
	db := randomClusterDB(t)
	if _, err := svc.RegisterDataset("rnd", db); err != nil {
		t.Fatal(err)
	}
	workers := startClusterWorkers(t, 3)

	opts := service.DefaultExecOptions()
	opts.Algorithm = service.AlgoDCand
	opts.Cluster = &service.ClusterOptions{Workers: workers} // Expression filled by Mine
	resp, err := svc.Mine(context.Background(), service.Query{
		Dataset:    "rnd",
		Expression: "[.*(.)]{1,3}.*",
		Sigma:      2,
		Options:    opts,
	})
	if err != nil {
		t.Fatalf("Mine: %v", err)
	}

	inOpts := service.DefaultExecOptions()
	inOpts.Algorithm = service.AlgoDCand
	wantResp, err := svc.Mine(context.Background(), service.Query{
		Dataset:    "rnd",
		Expression: "[.*(.)]{1,3}.*",
		Sigma:      2,
		Options:    inOpts,
	})
	if err != nil {
		t.Fatalf("Mine in-process: %v", err)
	}
	got := miner.PatternsToMap(resp.Dict, resp.Patterns)
	want := miner.PatternsToMap(wantResp.Dict, wantResp.Patterns)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("service cluster mine = %v, want %v", got, want)
	}
	if resp.Metrics.MapReduce.ShuffleBytes <= 0 {
		t.Errorf("expected positive wire ShuffleBytes, got %d", resp.Metrics.MapReduce.ShuffleBytes)
	}
}

// TestExecuteClusterRejectsOtherAlgorithms: only dseq/dcand can run on a
// cluster; every other algorithm must error rather than silently running
// locally.
func TestExecuteClusterRejectsOtherAlgorithms(t *testing.T) {
	db := randomClusterDB(t)
	f, err := fst.Compile("[.*(.)]{1,3}.*", db.Dict)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []service.Algorithm{service.AlgoNaive, service.AlgoSemiNaive, service.AlgoDFS, service.AlgoCount} {
		opts := service.DefaultExecOptions()
		opts.Algorithm = algo
		opts.Cluster = &service.ClusterOptions{Workers: []string{"http://127.0.0.1:1"}, Expression: "[.*(.)]{1,3}.*"}
		if _, _, _, err := service.Execute(context.Background(), f, db, 2, opts); err == nil {
			t.Errorf("expected an error for %s on a cluster", algo)
		}
	}
}
