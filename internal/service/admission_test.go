package service

import (
	"context"
	"testing"
	"time"
)

func TestAdmissionUnboundedAdmitsEverything(t *testing.T) {
	a := newAdmission(0, 0, nil)
	for i := 0; i < 100; i++ {
		release, err := a.acquire(context.Background(), nil)
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		defer release()
	}
	if s := a.stats(); s.Admitted != 100 || s.MaxInFlight != 0 {
		t.Fatalf("stats = %+v, want 100 admitted, unbounded", s)
	}
}

func TestAdmissionShedsWhenQueueFull(t *testing.T) {
	a := newAdmission(1, -1, nil) // one slot, no waiting room
	release, err := a.acquire(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.acquire(context.Background(), nil)
	oe, ok := IsOverload(err)
	if !ok {
		t.Fatalf("second acquire = %v, want OverloadError", err)
	}
	if oe.Reason != "queue_full" {
		t.Fatalf("reason = %q, want queue_full", oe.Reason)
	}
	if oe.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s floor", oe.RetryAfter)
	}
	if oe.RetryAfter != oe.RetryAfter.Truncate(time.Second) {
		t.Fatalf("RetryAfter = %v, want whole seconds", oe.RetryAfter)
	}
	release()
	a.done(10 * time.Millisecond)
	// With the slot free again, admission resumes.
	release2, err := a.acquire(context.Background(), nil)
	if err != nil {
		t.Fatalf("post-release acquire: %v", err)
	}
	release2()
	a.done(10 * time.Millisecond)
	if s := a.stats(); s.ShedQueueFull != 1 || s.Admitted != 2 {
		t.Fatalf("stats = %+v, want 1 shed / 2 admitted", s)
	}
}

func TestAdmissionQueueAdmitsWhenSlotFrees(t *testing.T) {
	a := newAdmission(1, 2, nil)
	release, err := a.acquire(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan func(), 1)
	go func() {
		r, err := a.acquire(context.Background(), nil)
		if err != nil {
			panic(err)
		}
		admitted <- r
	}()
	// The waiter must be queued, not admitted, while the slot is held.
	deadline := time.Now().Add(time.Second)
	for a.stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-admitted:
		t.Fatal("waiter admitted while the slot was held")
	default:
	}
	release()
	a.done(5 * time.Millisecond)
	select {
	case r := <-admitted:
		r()
		a.done(5 * time.Millisecond)
	case <-time.After(2 * time.Second):
		t.Fatal("waiter not admitted after release")
	}
	if s := a.stats(); s.QueuedMax != 1 || s.Queued != 0 {
		t.Fatalf("stats = %+v, want queuedMax 1, queued drained", s)
	}
}

func TestAdmissionQueueHonorsContext(t *testing.T) {
	a := newAdmission(1, 2, nil)
	release, err := a.acquire(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.acquire(ctx, nil); err != context.DeadlineExceeded {
		t.Fatalf("queued acquire with expired ctx = %v, want DeadlineExceeded", err)
	}
	if s := a.stats(); s.Queued != 0 {
		t.Fatalf("queued = %d after ctx abort, want 0", s.Queued)
	}
}

func TestAdmissionTenantQuota(t *testing.T) {
	a := newAdmission(8, 8, nil)
	tenant := &Tenant{Name: "acme", maxInFlight: 2}
	r1, err := a.acquire(context.Background(), tenant)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.acquire(context.Background(), tenant)
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.acquire(context.Background(), tenant)
	oe, ok := IsOverload(err)
	if !ok || oe.Reason != "tenant_quota" {
		t.Fatalf("third acquire = %v, want tenant_quota OverloadError", err)
	}
	// The global gate was untouched by the tenant shed: another tenant admits.
	other, err := a.acquire(context.Background(), &Tenant{Name: "other", maxInFlight: 1})
	if err != nil {
		t.Fatalf("other tenant blocked by acme's quota: %v", err)
	}
	other()
	r1()
	if tenant.InFlight() != 1 {
		t.Fatalf("inflight = %d after release, want 1", tenant.InFlight())
	}
	r3, err := a.acquire(context.Background(), tenant)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	r3()
	r2()
	if s := a.stats(); s.ShedTenant != 1 {
		t.Fatalf("stats = %+v, want 1 tenant shed", s)
	}
}

func TestRetryAfterScalesWithLoad(t *testing.T) {
	a := newAdmission(1, -1, nil)
	// Teach the EWMA a 5s service time: the next shed should price the wait
	// accordingly instead of the 1s floor.
	a.done(5 * time.Second)
	release, err := a.acquire(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	_, err = a.acquire(context.Background(), nil)
	oe, ok := IsOverload(err)
	if !ok {
		t.Fatalf("want OverloadError, got %v", err)
	}
	if oe.RetryAfter < 5*time.Second {
		t.Fatalf("RetryAfter = %v, want >= the 5s average service time", oe.RetryAfter)
	}
}
