package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"seqmine/internal/seqdb"
)

// ErrUnknownDataset is returned (wrapped) when a named dataset is not
// registered; check with errors.Is.
var ErrUnknownDataset = errors.New("unknown dataset")

// Registry holds named sequence databases for the mining service. It is safe
// for concurrent use: any number of queries may hold a dataset while others
// register, replace or unregister datasets. Replacing or unregistering a
// dataset never disturbs in-flight queries — they keep the handle they
// acquired; the old database is garbage collected once the last holder
// releases it.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*datasetEntry
	nextGen atomic.Uint64
}

type datasetEntry struct {
	name  string
	gen   uint64
	owner string // tenant that registered the dataset ("" = anonymous/admin)
	db    *seqdb.Database
	stats seqdb.Stats  // computed once at registration; the database is immutable
	refs  atomic.Int64 // active queries holding this entry
}

// Dataset is a leased reference to a registered database. Callers must call
// Release exactly once when done.
type Dataset struct {
	Name string
	// Gen is the registration generation, unique per Register call. It keys
	// compiled-pattern cache entries so that replacing a dataset under the
	// same name cannot serve stale FSTs.
	Gen uint64
	DB  *seqdb.Database

	entry    *datasetEntry
	released atomic.Bool
}

// Release returns the lease. Releasing twice is a no-op.
func (d *Dataset) Release() {
	if d.entry != nil && d.released.CompareAndSwap(false, true) {
		d.entry.refs.Add(-1)
	}
}

// DatasetInfo describes one registered dataset.
type DatasetInfo struct {
	Name          string      `json:"name"`
	Generation    uint64      `json:"generation"`
	ActiveQueries int64       `json:"active_queries"`
	Stats         seqdb.Stats `json:"stats"`
	// Tenant is the owner recorded at registration ("" for datasets loaded
	// by the daemon itself or registered without authentication).
	Tenant string `json:"tenant,omitempty"`
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*datasetEntry)}
}

// Register adds (or replaces) a database under the given name and returns its
// generation number.
func (r *Registry) Register(name string, db *seqdb.Database) (uint64, error) {
	return r.RegisterOwned(name, db, "")
}

// RegisterOwned is Register with an owning tenant recorded for quota
// accounting and deletion policy.
func (r *Registry) RegisterOwned(name string, db *seqdb.Database, owner string) (uint64, error) {
	if name == "" {
		return 0, fmt.Errorf("dataset name must not be empty")
	}
	if db == nil {
		return 0, fmt.Errorf("dataset %q: database must not be nil", name)
	}
	gen := r.nextGen.Add(1)
	e := &datasetEntry{name: name, gen: gen, owner: owner, db: db, stats: db.Stats()}
	r.mu.Lock()
	r.entries[name] = e
	r.mu.Unlock()
	return gen, nil
}

// Owner returns the owning tenant of a dataset and whether it is registered.
func (r *Registry) Owner(name string) (string, bool) {
	r.mu.RLock()
	e := r.entries[name]
	r.mu.RUnlock()
	if e == nil {
		return "", false
	}
	return e.owner, true
}

// CountOwned returns how many datasets the tenant currently owns.
func (r *Registry) CountOwned(owner string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, e := range r.entries {
		if e.owner == owner {
			n++
		}
	}
	return n
}

// LoadFiles reads a database from a sequence file (and optional hierarchy
// file) and registers it under name.
func (r *Registry) LoadFiles(name, sequencesPath, hierarchyPath string) (uint64, error) {
	db, err := seqdb.ReadFiles(sequencesPath, hierarchyPath)
	if err != nil {
		return 0, err
	}
	return r.Register(name, db)
}

// Acquire leases the named dataset for the duration of a query.
func (r *Registry) Acquire(name string) (*Dataset, error) {
	r.mu.RLock()
	e := r.entries[name]
	if e != nil {
		// Take the reference under the read lock so Unregister observing
		// refs cannot race past an acquisition in progress.
		e.refs.Add(1)
	}
	r.mu.RUnlock()
	if e == nil {
		return nil, fmt.Errorf("%w %q", ErrUnknownDataset, name)
	}
	return &Dataset{Name: e.name, Gen: e.gen, DB: e.db, entry: e}, nil
}

// Unregister removes the named dataset. In-flight queries holding a lease are
// unaffected. It reports whether the dataset existed.
func (r *Registry) Unregister(name string) bool {
	r.mu.Lock()
	_, ok := r.entries[name]
	delete(r.entries, name)
	r.mu.Unlock()
	return ok
}

// Generation returns the current generation of the named dataset, or false if
// it is not registered.
func (r *Registry) Generation(name string) (uint64, bool) {
	r.mu.RLock()
	e := r.entries[name]
	r.mu.RUnlock()
	if e == nil {
		return 0, false
	}
	return e.gen, true
}

// List describes all registered datasets, sorted by name.
func (r *Registry) List() []DatasetInfo {
	r.mu.RLock()
	entries := make([]*datasetEntry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	out := make([]DatasetInfo, len(entries))
	for i, e := range entries {
		out[i] = DatasetInfo{
			Name:          e.name,
			Generation:    e.gen,
			ActiveQueries: e.refs.Load(),
			Stats:         e.stats,
			Tenant:        e.owner,
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
