package service

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"seqmine/internal/dict"
	"seqmine/internal/miner"
)

func rkey(expr string) resultKey {
	return resultKey{dataset: "ds", generation: 1, expression: expr, sigma: 2, algorithm: AlgoDSeq}
}

func TestResultCacheNilDisabled(t *testing.T) {
	var c *resultCache // what newResultCache(0) returns
	if got := newResultCache(0); got != nil {
		t.Fatalf("newResultCache(0) = %v, want nil", got)
	}
	if _, hit, fl, err := c.lookup(rkey("a")); hit || fl != nil || err != nil {
		t.Fatalf("nil cache lookup = hit=%v flight=%v err=%v, want all-miss", hit, fl, err)
	}
	c.resolve(rkey("a"), nil, cachedResult{}, nil) // must not panic
	c.invalidateDataset("ds")
	if s := c.stats(); s != (cacheStats{}) {
		t.Fatalf("nil cache stats = %+v, want zero", s)
	}
}

func TestResultCacheHitAfterResolve(t *testing.T) {
	c := newResultCache(4)
	_, hit, fl, _ := c.lookup(rkey("a"))
	if hit || fl == nil {
		t.Fatalf("first lookup: hit=%v flight=%v, want miss with flight", hit, fl)
	}
	want := cachedResult{patterns: []miner.Pattern{{Items: []dict.ItemID{1}, Freq: 3}}}
	c.resolve(rkey("a"), fl, want, nil)
	res, hit, fl2, err := c.lookup(rkey("a"))
	if !hit || fl2 != nil || err != nil {
		t.Fatalf("second lookup: hit=%v flight=%v err=%v, want cached hit", hit, fl2, err)
	}
	if len(res.patterns) != 1 || res.patterns[0].Freq != 3 {
		t.Fatalf("cached result = %+v, want %+v", res, want)
	}
	s := c.stats()
	if s.Hits != 1 || s.Misses != 1 || s.Size != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / size 1", s)
	}
}

func TestResultCacheSingleflightShares(t *testing.T) {
	c := newResultCache(4)
	_, _, fl, _ := c.lookup(rkey("a"))
	if fl == nil {
		t.Fatal("leader got no flight")
	}
	const waiters = 8
	results := make(chan cachedResult, waiters)
	var started sync.WaitGroup
	started.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			started.Done()
			res, hit, wfl, err := c.lookup(rkey("a"))
			if !hit || wfl != nil || err != nil {
				panic(fmt.Sprintf("waiter: hit=%v flight=%v err=%v", hit, wfl, err))
			}
			results <- res
		}()
	}
	started.Wait()
	want := cachedResult{patterns: []miner.Pattern{{Items: []dict.ItemID{7}, Freq: 9}}}
	c.resolve(rkey("a"), fl, want, nil)
	for i := 0; i < waiters; i++ {
		res := <-results
		if len(res.patterns) != 1 || res.patterns[0].Freq != 9 {
			t.Fatalf("waiter %d got %+v, want the leader's result", i, res)
		}
	}
	if s := c.stats(); s.Misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 (the leader)", s.Misses)
	}
}

func TestResultCacheErrorNotCached(t *testing.T) {
	c := newResultCache(4)
	_, _, fl, _ := c.lookup(rkey("a"))
	done := make(chan error, 1)
	go func() {
		_, _, _, err := c.lookup(rkey("a")) // piggybacks on the flight
		done <- err
	}()
	// Wait until the waiter has attached to the flight (SharedIn counts the
	// attach under the cache lock), then fail the flight.
	for c.stats().SharedIn == 0 {
		time.Sleep(time.Millisecond)
	}
	boom := fmt.Errorf("boom")
	c.resolve(rkey("a"), fl, cachedResult{}, boom)
	if err := <-done; err != boom {
		t.Fatalf("waiter error = %v, want the leader's error", err)
	}
	// The error was not cached: the next lookup mines afresh.
	_, hit, fl2, err := c.lookup(rkey("a"))
	if hit || fl2 == nil || err != nil {
		t.Fatalf("post-error lookup: hit=%v flight=%v err=%v, want a fresh miss", hit, fl2, err)
	}
	c.resolve(rkey("a"), fl2, cachedResult{}, nil)
}

func TestResultCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	for _, expr := range []string{"a", "b", "c"} {
		_, _, fl, _ := c.lookup(rkey(expr))
		c.resolve(rkey(expr), fl, cachedResult{}, nil)
	}
	if _, hit, fl, _ := c.lookup(rkey("a")); hit {
		t.Fatal("oldest entry should have been evicted")
	} else {
		c.resolve(rkey("a"), fl, cachedResult{}, nil)
	}
	if s := c.stats(); s.Evictions == 0 || s.Size != 2 {
		t.Fatalf("stats = %+v, want evictions > 0 and size 2", s)
	}
}

func TestResultCacheInvalidateDataset(t *testing.T) {
	c := newResultCache(8)
	other := resultKey{dataset: "other", generation: 1, expression: "a", sigma: 2, algorithm: AlgoDSeq}
	for _, k := range []resultKey{rkey("a"), rkey("b"), other} {
		_, _, fl, _ := c.lookup(k)
		c.resolve(k, fl, cachedResult{}, nil)
	}
	c.invalidateDataset("ds")
	if _, hit, fl, _ := c.lookup(rkey("a")); hit {
		t.Fatal("invalidated entry still served")
	} else {
		c.resolve(rkey("a"), fl, cachedResult{}, nil)
	}
	if _, hit, _, _ := c.lookup(other); !hit {
		t.Fatal("unrelated dataset's entry was dropped")
	}
}

func TestResultKeyDistinguishesParameters(t *testing.T) {
	c := newResultCache(8)
	base := rkey("a")
	_, _, fl, _ := c.lookup(base)
	c.resolve(base, fl, cachedResult{}, nil)
	variants := []resultKey{
		{dataset: "ds", generation: 2, expression: "a", sigma: 2, algorithm: AlgoDSeq},
		{dataset: "ds", generation: 1, expression: "a", sigma: 3, algorithm: AlgoDSeq},
		{dataset: "ds", generation: 1, expression: "a", sigma: 2, algorithm: AlgoDCand},
	}
	for _, k := range variants {
		if _, hit, fl, _ := c.lookup(k); hit {
			t.Fatalf("key %+v hit the cache; generation/sigma/algorithm must partition entries", k)
		} else {
			c.resolve(k, fl, cachedResult{}, nil)
		}
	}
}
