package service_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"seqmine/internal/fst"
	"seqmine/internal/miner"
	"seqmine/internal/paperex"
	"seqmine/internal/seqdb"
	"seqmine/internal/service"
)

// exampleDB builds the running example of the paper as a seqdb.Database.
func exampleDB(t *testing.T) *seqdb.Database {
	t.Helper()
	db, err := seqdb.Build(paperex.RawDB(), seqdb.Hierarchy{"a1": {"A"}, "a2": {"A"}})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func newTestService(t *testing.T, cfg service.Config) (*service.Service, *seqdb.Database) {
	t.Helper()
	svc := service.New(cfg)
	db := exampleDB(t)
	if _, err := svc.RegisterDataset("ex", db); err != nil {
		t.Fatal(err)
	}
	return svc, db
}

func mineViaService(t *testing.T, svc *service.Service, algo service.Algorithm, shards int, sigma int64) map[string]int64 {
	t.Helper()
	opts := service.DefaultExecOptions()
	opts.Algorithm = algo
	opts.Shards = shards
	resp, err := svc.Mine(context.Background(), service.Query{
		Dataset:    "ex",
		Expression: paperex.PatternExpression,
		Sigma:      sigma,
		Options:    opts,
	})
	if err != nil {
		t.Fatalf("Mine(%s, shards=%d, sigma=%d): %v", algo, shards, sigma, err)
	}
	return miner.PatternsToMap(resp.Dict, resp.Patterns)
}

// TestShardedMatchesSequential is the core exactness property of the
// partitioned executor: for every shard count, two-phase sharded mining must
// return exactly the patterns of the sequential miner on the whole database.
func TestShardedMatchesSequential(t *testing.T) {
	svc, db := newTestService(t, service.Config{})
	f := fst.MustCompile(paperex.PatternExpression, db.Dict)
	for _, sigma := range []int64{1, 2, 3} {
		want := miner.PatternsToMap(db.Dict, miner.MineCount(f, miner.Weighted(db.Sequences), sigma))
		for _, algo := range []service.Algorithm{service.AlgoDFS, service.AlgoCount} {
			for _, shards := range []int{1, 2, 3, 5, 8} {
				got := mineViaService(t, svc, algo, shards, sigma)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s shards=%d sigma=%d:\n got %v\nwant %v", algo, shards, sigma, got, want)
				}
			}
		}
	}
}

// TestShardedMatchesSequentialRandom repeats the exactness check on larger
// random databases and several pattern expressions.
func TestShardedMatchesSequentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d, seqs := paperex.RandomDatabase(rng, 300, 9)
	db := &seqdb.Database{Dict: d, Sequences: seqs}
	svc := service.New(service.Config{})
	if _, err := svc.RegisterDataset("rnd", db); err != nil {
		t.Fatal(err)
	}
	patterns := []string{
		paperex.PatternExpression,
		"[.*(.)]{1,3}.*",
		".*(A^)[.{0,1}(.)]{1,2}.*",
	}
	for _, pat := range patterns {
		f := fst.MustCompile(pat, d)
		for _, sigma := range []int64{2, 5, 20} {
			want := miner.PatternsToMap(d, miner.MineDFS(f, miner.Weighted(seqs), sigma, miner.DFSOptions{}))
			opts := service.DefaultExecOptions()
			opts.Algorithm = service.AlgoDFS
			opts.Shards = 4
			resp, err := svc.Mine(context.Background(), service.Query{
				Dataset: "rnd", Expression: pat, Sigma: sigma, Options: opts,
			})
			if err != nil {
				t.Fatalf("pattern %q sigma %d: %v", pat, sigma, err)
			}
			got := miner.PatternsToMap(d, resp.Patterns)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("pattern %q sigma %d: sharded %v != sequential %v", pat, sigma, got, want)
			}
		}
	}
}

// TestDistributedBackends runs every BSP backend through the service on the
// running example and checks against the paper's expected result.
func TestDistributedBackends(t *testing.T) {
	svc, _ := newTestService(t, service.Config{})
	want := paperex.ExpectedFrequent()
	for _, algo := range []service.Algorithm{service.AlgoDSeq, service.AlgoDCand, service.AlgoNaive, service.AlgoSemiNaive} {
		got := mineViaService(t, svc, algo, 0, paperex.Sigma)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s = %v, want %v", algo, got, want)
		}
	}
}

func TestCacheHitMetrics(t *testing.T) {
	svc, _ := newTestService(t, service.Config{})
	q := service.Query{Dataset: "ex", Expression: paperex.PatternExpression, Sigma: paperex.Sigma}
	first, err := svc.Mine(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Metrics.CacheHit {
		t.Error("first query must not be a cache hit")
	}
	second, err := svc.Mine(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Metrics.CacheHit {
		t.Error("repeated identical query must hit the compiled-pattern cache")
	}
	snap := svc.Metrics()
	if snap.Queries != 2 || snap.CacheHits != 1 {
		t.Errorf("aggregate queries=%d cacheHits=%d, want 2 and 1", snap.Queries, snap.CacheHits)
	}
	if snap.Cache.Misses != 1 || snap.Cache.Hits != 1 {
		t.Errorf("cache stats = %+v, want 1 miss and 1 hit", snap.Cache)
	}
	if snap.CacheHitRate != 0.5 {
		t.Errorf("cache hit rate = %v, want 0.5", snap.CacheHitRate)
	}
	if snap.PatternsFound != uint64(len(first.Patterns)+len(second.Patterns)) {
		t.Errorf("patterns found = %d, want %d", snap.PatternsFound, len(first.Patterns)*2)
	}
}

// TestConcurrentQueries exercises the service from many goroutines (run
// under -race): a mix of algorithms and shard counts against the same
// dataset, every result checked against the sequential reference, and the
// compiled-pattern cache must compile each distinct expression exactly once.
func TestConcurrentQueries(t *testing.T) {
	svc, db := newTestService(t, service.Config{MaxConcurrent: 4})
	f := fst.MustCompile(paperex.PatternExpression, db.Dict)
	want := miner.PatternsToMap(db.Dict, miner.MineCount(f, miner.Weighted(db.Sequences), paperex.Sigma))

	algos := []service.Algorithm{service.AlgoDFS, service.AlgoCount, service.AlgoDSeq, service.AlgoDCand}
	const n = 24
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := service.DefaultExecOptions()
			opts.Algorithm = algos[i%len(algos)]
			opts.Shards = 1 + i%4
			resp, err := svc.Mine(context.Background(), service.Query{
				Dataset:    "ex",
				Expression: paperex.PatternExpression,
				Sigma:      paperex.Sigma,
				Options:    opts,
			})
			if err != nil {
				errs <- err
				return
			}
			if got := miner.PatternsToMap(resp.Dict, resp.Patterns); !reflect.DeepEqual(got, want) {
				errs <- fmt.Errorf("query %d (%s): got %v, want %v", i, opts.Algorithm, got, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	snap := svc.Metrics()
	if snap.Cache.Misses != 1 {
		t.Errorf("distinct expression compiled %d times, want 1 (singleflight + cache)", snap.Cache.Misses)
	}
	if snap.Queries != n {
		t.Errorf("queries = %d, want %d", snap.Queries, n)
	}
}

func TestQueryDeadline(t *testing.T) {
	svc, _ := newTestService(t, service.Config{})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for _, algo := range []service.Algorithm{service.AlgoDFS, service.AlgoDSeq} {
		opts := service.DefaultExecOptions()
		opts.Algorithm = algo
		_, err := svc.Mine(ctx, service.Query{
			Dataset: "ex", Expression: paperex.PatternExpression, Sigma: 2, Options: opts,
		})
		if err != context.DeadlineExceeded {
			t.Errorf("%s with expired deadline: err = %v, want DeadlineExceeded", algo, err)
		}
	}
}

func TestQueryValidation(t *testing.T) {
	svc, _ := newTestService(t, service.Config{})
	cases := []service.Query{
		{Dataset: "ex", Expression: "", Sigma: 2},
		{Dataset: "ex", Expression: "(.)", Sigma: 0},
		{Dataset: "nope", Expression: "(.)", Sigma: 2},
		{Dataset: "ex", Expression: "(((", Sigma: 2},
	}
	for _, q := range cases {
		if _, err := svc.Mine(context.Background(), q); err == nil {
			t.Errorf("Mine(%+v) should fail", q)
		}
	}
	if snap := svc.Metrics(); snap.Errors != uint64(len(cases)) {
		t.Errorf("error counter = %d, want %d", snap.Errors, len(cases))
	}
}

// TestDatasetReplacement replaces a dataset under the same name and checks
// that the compiled-pattern cache does not serve the old generation's FST.
func TestDatasetReplacement(t *testing.T) {
	svc, _ := newTestService(t, service.Config{})
	q := service.Query{Dataset: "ex", Expression: paperex.PatternExpression, Sigma: 1}
	if _, err := svc.Mine(context.Background(), q); err != nil {
		t.Fatal(err)
	}

	// Replace "ex" with a smaller database: same name, new generation.
	small, err := seqdb.Build([][]string{{"a1", "b"}, {"a1", "b"}}, seqdb.Hierarchy{"a1": {"A"}, "a2": {"A"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RegisterDataset("ex", small); err != nil {
		t.Fatal(err)
	}
	resp, err := svc.Mine(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Metrics.CacheHit {
		t.Error("query after dataset replacement must recompile (new generation)")
	}
	for _, p := range resp.Patterns {
		if p.Freq > 2 {
			t.Errorf("pattern %q freq %d impossible in 2-sequence database (stale data?)",
				resp.Dict.DecodeString(p.Items), p.Freq)
		}
	}
}

func TestRegistryLifecycle(t *testing.T) {
	reg := service.NewRegistry()
	db := exampleDB(t)
	gen1, err := reg.Register("a", db)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := reg.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	if infos := reg.List(); len(infos) != 1 || infos[0].ActiveQueries != 1 {
		t.Errorf("List = %+v, want one dataset with 1 active query", infos)
	}
	// Replacement bumps the generation; the old lease stays valid.
	gen2, err := reg.Register("a", db)
	if err != nil {
		t.Fatal(err)
	}
	if gen2 <= gen1 {
		t.Errorf("generation must increase: %d then %d", gen1, gen2)
	}
	if ds.DB == nil || ds.Gen != gen1 {
		t.Error("existing lease must keep its generation")
	}
	ds.Release()
	ds.Release() // double release is a no-op
	if !reg.Unregister("a") {
		t.Error("Unregister should report existing dataset")
	}
	if reg.Unregister("a") {
		t.Error("second Unregister should report missing dataset")
	}
	if _, err := reg.Acquire("a"); err == nil {
		t.Error("Acquire after Unregister should fail")
	}
	if _, err := reg.Register("", db); err == nil {
		t.Error("empty dataset name should be rejected")
	}
	if _, err := reg.Register("x", nil); err == nil {
		t.Error("nil database should be rejected")
	}
}

// TestSpillThresholdThroughService exercises the spill path end-to-end
// through the service layer: a query-level spill threshold (and the service
// default) must produce the same patterns as the in-memory run, with spill
// metrics reported, for every distributed backend.
func TestSpillThresholdThroughService(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d, seqs := paperex.RandomDatabase(rng, 300, 9)
	db := &seqdb.Database{Dict: d, Sequences: seqs}
	svc := service.New(service.Config{})
	if _, err := svc.RegisterDataset("rnd", db); err != nil {
		t.Fatal(err)
	}
	const pat = "[.*(.)]{1,3}.*"
	const sigma = 10
	for _, algo := range []service.Algorithm{service.AlgoDSeq, service.AlgoDCand, service.AlgoSemiNaive} {
		base := service.DefaultExecOptions()
		base.Algorithm = algo
		ref, err := svc.Mine(context.Background(), service.Query{Dataset: "rnd", Expression: pat, Sigma: sigma, Options: base})
		if err != nil {
			t.Fatalf("%s reference: %v", algo, err)
		}
		if ref.Metrics.MapReduce.SpilledBytes != 0 {
			t.Fatalf("%s reference run spilled unexpectedly", algo)
		}

		spilling := base
		spilling.SpillThreshold = 512
		spilling.SpillTmpDir = t.TempDir()
		got, err := svc.Mine(context.Background(), service.Query{Dataset: "rnd", Expression: pat, Sigma: sigma, Options: spilling})
		if err != nil {
			t.Fatalf("%s spilling: %v", algo, err)
		}
		if !reflect.DeepEqual(got.Patterns, ref.Patterns) {
			t.Errorf("%s: spilling run differs from in-memory run", algo)
		}
		if got.Metrics.MapReduce.SpilledBytes == 0 || got.Metrics.MapReduce.SpillCount == 0 {
			t.Errorf("%s: expected spill metrics, got %+v", algo, got.Metrics.MapReduce)
		}
	}
}

// TestServiceDefaultSpillThreshold checks that Config.SpillThreshold applies
// to queries that do not set their own, and that a negative query threshold
// opts back out.
func TestServiceDefaultSpillThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d, seqs := paperex.RandomDatabase(rng, 200, 9)
	db := &seqdb.Database{Dict: d, Sequences: seqs}
	svc := service.New(service.Config{SpillThreshold: 512, SpillTmpDir: t.TempDir()})
	if _, err := svc.RegisterDataset("rnd", db); err != nil {
		t.Fatal(err)
	}
	q := service.Query{Dataset: "rnd", Expression: "[.*(.)]{1,3}.*", Sigma: 10, Options: service.DefaultExecOptions()}
	resp, err := svc.Mine(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Metrics.MapReduce.SpilledBytes == 0 {
		t.Error("expected the service default threshold to trigger spilling")
	}

	q.Options.SpillThreshold = -1 // explicit opt-out
	resp, err = svc.Mine(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Metrics.MapReduce.SpilledBytes != 0 {
		t.Error("a negative query threshold must disable the service default")
	}
}

// TestStreamingThroughService exercises the streaming pipelined shuffle
// end-to-end through the service layer: a query-level send buffer (with and
// without compressed spill) must produce byte-identical patterns for every
// distributed backend, with streaming metrics reported and aggregated into
// the service totals.
func TestStreamingThroughService(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d, seqs := paperex.RandomDatabase(rng, 300, 9)
	db := &seqdb.Database{Dict: d, Sequences: seqs}
	svc := service.New(service.Config{})
	if _, err := svc.RegisterDataset("rnd", db); err != nil {
		t.Fatal(err)
	}
	const pat = "[.*(.)]{1,3}.*"
	const sigma = 10
	for _, algo := range []service.Algorithm{service.AlgoDSeq, service.AlgoDCand, service.AlgoSemiNaive} {
		base := service.DefaultExecOptions()
		base.Algorithm = algo
		ref, err := svc.Mine(context.Background(), service.Query{Dataset: "rnd", Expression: pat, Sigma: sigma, Options: base})
		if err != nil {
			t.Fatalf("%s reference: %v", algo, err)
		}
		if ref.Metrics.MapReduce.StreamedBatches != 0 {
			t.Fatalf("%s reference run streamed unexpectedly", algo)
		}

		streaming := base
		streaming.SendBufferBytes = 256
		streaming.SpillThreshold = 512
		streaming.CompressSpill = true
		streaming.SpillTmpDir = t.TempDir()
		got, err := svc.Mine(context.Background(), service.Query{Dataset: "rnd", Expression: pat, Sigma: sigma, Options: streaming})
		if err != nil {
			t.Fatalf("%s streaming: %v", algo, err)
		}
		if !reflect.DeepEqual(got.Patterns, ref.Patterns) {
			t.Errorf("%s: streaming run differs from in-memory run", algo)
		}
		if got.Metrics.MapReduce.StreamedBatches == 0 {
			t.Errorf("%s: expected streaming metrics, got %+v", algo, got.Metrics.MapReduce)
		}
	}

	// The aggregate snapshot must total the per-query spill/stream activity.
	snap := svc.Metrics()
	if snap.StreamedBatches == 0 {
		t.Error("GET /metrics totals: StreamedBatches not aggregated")
	}
	if snap.SpilledBytes == 0 || snap.SpillCount == 0 {
		t.Error("GET /metrics totals: spill metrics not aggregated")
	}
}

// TestServiceDefaultSendBuffer checks that Config.SendBufferBytes applies to
// queries that do not set their own, and that a negative query value opts
// back out to the barrier shuffle.
func TestServiceDefaultSendBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d, seqs := paperex.RandomDatabase(rng, 80, 6)
	db := &seqdb.Database{Dict: d, Sequences: seqs}
	svc := service.New(service.Config{SendBufferBytes: 128, SpillTmpDir: t.TempDir()})
	if _, err := svc.RegisterDataset("rnd", db); err != nil {
		t.Fatal(err)
	}
	q := service.Query{Dataset: "rnd", Expression: "[.*(.)]{1,3}.*", Sigma: 5, Options: service.DefaultExecOptions()}
	resp, err := svc.Mine(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Metrics.MapReduce.StreamedBatches == 0 {
		t.Error("expected the service default send buffer to enable streaming")
	}

	q.Options.SendBufferBytes = -1 // explicit opt-out
	resp, err = svc.Mine(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Metrics.MapReduce.StreamedBatches != 0 {
		t.Error("a negative send buffer must force the barrier shuffle")
	}
}

// TestPrefilterThroughService checks that the two-pass reachability prefilter
// never changes service results, whether requested per query
// (ExecOptions.Prefilter) or enabled as the daemon default (Config.Prefilter),
// on every algorithm the service exposes.
func TestPrefilterThroughService(t *testing.T) {
	algos := []service.Algorithm{
		service.AlgoDFS, service.AlgoCount,
		service.AlgoDSeq, service.AlgoDCand, service.AlgoNaive, service.AlgoSemiNaive,
	}

	plain, _ := newTestService(t, service.Config{})
	defaulted, _ := newTestService(t, service.Config{Prefilter: true})
	for _, algo := range algos {
		want := mineViaService(t, plain, algo, 0, paperex.Sigma)

		opts := service.DefaultExecOptions()
		opts.Algorithm = algo
		opts.Prefilter = true
		resp, err := plain.Mine(context.Background(), service.Query{
			Dataset:    "ex",
			Expression: paperex.PatternExpression,
			Sigma:      paperex.Sigma,
			Options:    opts,
		})
		if err != nil {
			t.Fatalf("%s with prefilter: %v", algo, err)
		}
		if got := miner.PatternsToMap(resp.Dict, resp.Patterns); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: per-query prefilter changed results:\n got %v\nwant %v", algo, got, want)
		}

		if got := mineViaService(t, defaulted, algo, 0, paperex.Sigma); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: Config.Prefilter default changed results:\n got %v\nwant %v", algo, got, want)
		}
	}
}
