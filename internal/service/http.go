package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"seqmine/internal/obs"
	"seqmine/internal/seqdb"
)

// Request body caps: mining requests are small; dataset uploads may carry
// inline sequences and get a generous limit.
const (
	maxMineBodyBytes    = 1 << 20   // 1 MiB
	maxDatasetBodyBytes = 256 << 20 // 256 MiB
)

// MineRequest is the body of POST /mine.
type MineRequest struct {
	Dataset   string `json:"dataset"`
	Pattern   string `json:"pattern"`
	Sigma     int64  `json:"sigma"`
	Algorithm string `json:"algorithm,omitempty"` // dfs|count|dseq|dcand|naive|seminaive; default dseq
	Workers   int    `json:"workers,omitempty"`
	Shards    int    `json:"shards,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	// Limit truncates the response to the top-k patterns (0 = all).
	Limit int `json:"limit,omitempty"`
	// ClusterWorkers runs a dseq/dcand query across these worker processes
	// (control URLs) over the TCP shuffle transport.
	ClusterWorkers []string `json:"cluster_workers,omitempty"`
	// Distributed runs the query on the daemon's default worker cluster
	// (seqmined -cluster); an error if none is configured.
	Distributed bool `json:"distributed,omitempty"`
	// SpillThresholdBytes bounds the in-memory shuffle footprint per peer
	// for the distributed algorithms: past it, shuffle partitions spill to
	// disk and are merge-streamed into the reducers. 0 uses the daemon
	// default (-spill-threshold); a negative value forces in-memory
	// shuffles for this query.
	SpillThresholdBytes int64 `json:"spill_threshold_bytes,omitempty"`
	// SendBufferBytes switches the distributed algorithms to the streaming
	// pipelined shuffle with the given per-peer send-buffer bound. 0 uses
	// the daemon default (-send-buffer); a negative value forces the
	// phase-synchronous barrier for this query.
	SendBufferBytes int64 `json:"send_buffer_bytes,omitempty"`
	// SendBufferMaxBytes, when greater than the effective send-buffer
	// size, lets the streaming shuffle grow a destination's send buffer
	// adaptively up to this bound. 0 uses the daemon default
	// (-send-buffer-max); values <= the send-buffer size keep the buffers
	// fixed.
	SendBufferMaxBytes int64 `json:"send_buffer_max_bytes,omitempty"`
	// CompressSpill is tri-state: absent inherits the daemon default
	// (-compress-spill), true compresses this query's spill segments with
	// DEFLATE, false keeps them uncompressed even when the daemon default
	// is on (compression only changes the on-disk segment representation,
	// never results).
	CompressSpill *bool `json:"compress_spill,omitempty"`
	// TaskRetries is the cluster scheduler's retry budget for this query:
	// how many failed attempts are relaunched on the surviving workers.
	// 0 uses the daemon default (-task-retries); a negative value disables
	// retries for this query.
	TaskRetries int `json:"task_retries,omitempty"`
	// SpeculativeAfterMS launches a speculative duplicate attempt when the
	// running attempt of a cluster query exceeds this many milliseconds.
	// 0 uses the daemon default (-speculative-after); a negative value
	// disables speculation for this query.
	SpeculativeAfterMS int64 `json:"speculative_after_ms,omitempty"`
	// TaskPartitions decomposes a cluster query into this many per-partition
	// tasks; 0 uses one task per live worker.
	TaskPartitions int `json:"task_partitions,omitempty"`
	// Prefilter enables the two-pass reachability prefilter for this query:
	// sequences with no accepting run are skipped before the expensive mining
	// phase. Output is byte-identical either way; absent or false inherits the
	// daemon default (-prefilter).
	Prefilter bool `json:"prefilter,omitempty"`
}

// MinePattern is one mined pattern on the wire.
type MinePattern struct {
	Items []string `json:"items"`
	Freq  int64    `json:"freq"`
}

// MineResponse is the body of a successful POST /mine.
type MineResponse struct {
	Patterns []MinePattern `json:"patterns"`
	// Total is the number of patterns found before Limit truncation.
	Total   int          `json:"total"`
	Metrics QueryMetrics `json:"metrics"`
	// TraceID identifies the query's recorded trace (also echoed in the
	// X-Seqmine-Trace response header); fetch the merged span set as Chrome
	// trace-event JSON from GET /debug/trace/{trace_id}. Empty when the
	// daemon has no trace recorder.
	TraceID obs.TraceID `json:"trace_id,omitempty"`
}

// DatasetRequest is the body of PUT /datasets/{name}: either file paths
// (resolved on the server) or inline sequences with an optional hierarchy.
type DatasetRequest struct {
	Path          string              `json:"path,omitempty"`
	HierarchyPath string              `json:"hierarchy_path,omitempty"`
	Sequences     [][]string          `json:"sequences,omitempty"`
	Hierarchy     map[string][]string `json:"hierarchy,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// NewHandler returns the HTTP API of the service:
//
//	POST   /mine                 run a mining query
//	GET    /datasets             list datasets
//	PUT    /datasets/{name}      register a dataset (paths or inline data)
//	GET    /datasets/{name}      one dataset's info
//	DELETE /datasets/{name}      unregister a dataset
//	GET    /metrics              aggregate service metrics (JSON; add
//	                             ?format=prometheus for text exposition)
//	GET    /debug/trace/{id}     one recorded trace as Chrome trace-event JSON
//	GET    /healthz              liveness probe
//
// POST /mine honors an incoming X-Seqmine-Trace header (joining the caller's
// trace) and echoes the query's trace id in the same response header.
//
// When the service is configured with an Authenticator, every endpoint except
// /healthz, /metrics and /debug/ requires an API key ("Authorization: Bearer
// <key>" or X-Api-Key) and runs as the key's tenant: queries are charged
// against the tenant's in-flight quota, dataset registrations against its
// dataset quota, and a tenant may only delete its own datasets. Shed queries
// (admission queue full, tenant quota exhausted) answer 429 Too Many Requests
// with a Retry-After header.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prometheus" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = s.cfg.Obs.WritePrometheus(w)
			return
		}
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	mux.HandleFunc("GET /debug/trace/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := obs.TraceID(r.PathValue("id"))
		spans := s.cfg.Recorder.TraceSpans(id)
		if len(spans) == 0 {
			writeError(w, http.StatusNotFound, fmt.Errorf("no spans recorded for trace %q", id))
			return
		}
		buf, err := obs.ChromeTrace(spans)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(buf)
	})
	mux.HandleFunc("POST /mine", func(w http.ResponseWriter, r *http.Request) {
		var req MineRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxMineBodyBytes)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON body: %w", err))
			return
		}
		algo, err := ParseAlgorithm(req.Algorithm)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		opts := DefaultExecOptions()
		opts.Algorithm = algo
		opts.Workers = req.Workers
		opts.Shards = req.Shards
		opts.SpillThreshold = req.SpillThresholdBytes
		opts.SendBufferBytes = req.SendBufferBytes
		opts.SendBufferMaxBytes = req.SendBufferMaxBytes
		if req.CompressSpill != nil {
			opts.CompressSpill = *req.CompressSpill
			opts.CompressSpillSet = true
		}
		opts.TaskRetries = req.TaskRetries
		opts.SpeculativeAfter = time.Duration(req.SpeculativeAfterMS) * time.Millisecond
		opts.TaskPartitions = req.TaskPartitions
		opts.Prefilter = req.Prefilter
		switch {
		case len(req.ClusterWorkers) > 0:
			opts.Cluster = &ClusterOptions{Workers: req.ClusterWorkers}
		case req.Distributed:
			workers := s.ClusterWorkers()
			if len(workers) == 0 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("no default worker cluster configured (start the daemon with -cluster)"))
				return
			}
			opts.Cluster = &ClusterOptions{Workers: workers}
		}
		// Join the caller's trace when the request carries one; the service
		// recorder is installed here so remote parent spans land in it.
		ctx := obs.ExtractHeader(obs.WithRecorder(r.Context(), s.cfg.Recorder), r.Header)
		resp, err := s.Mine(ctx, Query{
			Dataset:    req.Dataset,
			Expression: req.Pattern,
			Sigma:      req.Sigma,
			Options:    opts,
			Timeout:    time.Duration(req.TimeoutMS) * time.Millisecond,
		})
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		if resp.TraceID != "" {
			w.Header().Set(obs.TraceHeader, string(resp.TraceID))
		}
		out := MineResponse{Total: len(resp.Patterns), Metrics: resp.Metrics, TraceID: resp.TraceID}
		patterns := resp.Patterns
		if req.Limit > 0 && len(patterns) > req.Limit {
			patterns = patterns[:req.Limit]
		}
		out.Patterns = make([]MinePattern, len(patterns))
		for i, p := range patterns {
			out.Patterns[i] = MinePattern{Items: resp.Dict.DecodeSequence(p.Items), Freq: p.Freq}
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /datasets", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Datasets())
	})
	mux.HandleFunc("GET /datasets/{name}", func(w http.ResponseWriter, r *http.Request) {
		info, err := s.DatasetInfo(r.PathValue("name"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("PUT /datasets/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		var req DatasetRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxDatasetBodyBytes)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON body: %w", err))
			return
		}
		tenant := TenantFrom(r.Context())
		var err error
		switch {
		case req.Path != "" && req.Sequences != nil:
			writeError(w, http.StatusBadRequest, fmt.Errorf("specify either path or sequences, not both"))
			return
		case req.Path != "":
			var db *seqdb.Database
			db, err = seqdb.ReadFiles(req.Path, req.HierarchyPath)
			if err == nil {
				_, err = s.RegisterDatasetAs(name, db, tenant)
			}
		case req.Sequences != nil:
			var db *seqdb.Database
			db, err = seqdb.Build(req.Sequences, seqdb.Hierarchy(req.Hierarchy))
			if err == nil {
				_, err = s.RegisterDatasetAs(name, db, tenant)
			}
		default:
			writeError(w, http.StatusBadRequest, fmt.Errorf("specify path or sequences"))
			return
		}
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		info, err := s.DatasetInfo(name)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("DELETE /datasets/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		ok, err := s.RemoveDatasetAs(name, TenantFrom(r.Context()))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown dataset %q", name))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return withAuth(s, mux)
}

// withAuth enforces API-key authentication on every endpoint except the
// unauthenticated operational plane (/healthz, /metrics, /debug/). With no
// authenticator configured it passes everything through as the anonymous
// tenant.
func withAuth(s *Service, next http.Handler) http.Handler {
	if s.cfg.Auth == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" || strings.HasPrefix(r.URL.Path, "/debug/") {
			next.ServeHTTP(w, r)
			return
		}
		tenant, err := s.cfg.Auth.Authenticate(r)
		if err != nil {
			writeError(w, http.StatusUnauthorized, err)
			return
		}
		next.ServeHTTP(w, r.WithContext(WithTenant(r.Context(), tenant)))
	})
}

func statusFor(err error) int {
	if _, ok := IsOverload(err); ok {
		return http.StatusTooManyRequests
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	case errors.Is(err, ErrUnknownDataset):
		return http.StatusNotFound
	case errors.Is(err, ErrQuotaExceeded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrUnauthenticated):
		return http.StatusUnauthorized
	case errors.Is(err, ErrForbidden):
		return http.StatusForbidden
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	// Every 429 carries a Retry-After: the admission gate's priced hint when
	// it shed the query, a conservative second otherwise.
	if status == http.StatusTooManyRequests {
		retry := 1
		if oe, ok := IsOverload(err); ok {
			retry = int(oe.RetryAfter / time.Second)
			if retry < 1 {
				retry = 1
			}
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
