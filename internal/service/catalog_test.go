package service

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"seqmine/internal/paperex"
	"seqmine/internal/seqdb"
)

func catalogDB(t *testing.T) *seqdb.Database {
	t.Helper()
	db, err := seqdb.Build(paperex.RawDB(), seqdb.Hierarchy{"a1": {"A"}, "a2": {"A"}})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCatalogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	db := catalogDB(t)
	id, err := c.Put("ex", db, "acme")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("other", db, ""); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("other"); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the surviving binding replays, the deleted one does not.
	c2, err := OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	entries := c2.Entries()
	if len(entries) != 1 || entries[0].Name != "ex" || entries[0].ID != id || entries[0].Tenant != "acme" {
		t.Fatalf("reopened entries = %+v, want the single ex binding", entries)
	}
	got, err := c2.Load(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if got.Dict.Size() != db.Dict.Size() || len(got.Sequences) != len(db.Sequences) {
		t.Fatalf("restored database differs: %d items / %d sequences, want %d / %d",
			got.Dict.Size(), len(got.Sequences), db.Dict.Size(), len(db.Sequences))
	}
}

func TestCatalogReplaceKeepsLatest(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	db := catalogDB(t)
	if _, err := c.Put("ex", db, "old"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("ex", db, "new"); err != nil {
		t.Fatal(err)
	}
	c.Close()
	c2, err := OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	entries := c2.Entries()
	if len(entries) != 1 || entries[0].Tenant != "new" {
		t.Fatalf("entries = %+v, want the latest registration to win", entries)
	}
}

func TestCatalogTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("ex", catalogDB(t), ""); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Simulate a crash mid-append: a final line without a newline must be
	// dropped silently; the complete records before it survive.
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"put","name":"torn","id":"sha256:feed`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c2, err := OpenCatalog(dir)
	if err != nil {
		t.Fatalf("torn tail should be tolerated, got %v", err)
	}
	defer c2.Close()
	entries := c2.Entries()
	if len(entries) != 1 || entries[0].Name != "ex" {
		t.Fatalf("entries = %+v, want only the complete record", entries)
	}
}

func TestCatalogCorruptCompleteLineErrors(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	path := filepath.Join(dir, journalName)
	if err := os.WriteFile(path, []byte("this is not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCatalog(dir); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("corrupt journal error = %v, want a line-numbered parse failure", err)
	}
}

func TestCatalogCompactsOnOpen(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	db := catalogDB(t)
	// Churn: repeated replacement and deletion grows the journal.
	for i := 0; i < 10; i++ {
		if _, err := c.Put("ex", db, ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Delete("ex"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("keep", db, ""); err != nil {
		t.Fatal(err)
	}
	c.Close()
	c2, err := OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2.Close()
	buf, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(buf, []byte{'\n'}); lines != 1 {
		t.Fatalf("compacted journal has %d lines, want 1 (only the live binding)", lines)
	}
}

// FuzzCatalogJournal fuzzes the journal replay path: arbitrary bytes must
// never panic, and whatever entry set a journal replays to must survive a
// re-encode/replay round trip unchanged (the compaction invariant).
func FuzzCatalogJournal(f *testing.F) {
	f.Add([]byte(`{"op":"put","name":"a","id":"sha256:00"}` + "\n"))
	f.Add([]byte(`{"op":"put","name":"a","id":"sha256:00","tenant":"t"}` + "\n" + `{"op":"del","name":"a"}` + "\n"))
	f.Add([]byte(`{"op":"put","name":"a","id":"x"}`)) // torn tail
	f.Add([]byte("\n\n"))
	f.Add([]byte(`{"op":"bogus"}` + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := replayJournal(bytes.NewReader(data))
		if err != nil {
			return // malformed complete lines are rejected; that's the contract
		}
		// Round trip: re-encoding the live set and replaying it must
		// reproduce the same set (what compaction relies on).
		var buf bytes.Buffer
		for name := range entries {
			if err := appendJournal(&buf, journalRecord{Op: "put", CatalogEntry: entries[name]}); err != nil {
				t.Fatalf("re-encoding %+v: %v", entries[name], err)
			}
		}
		again, err := replayJournal(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("replaying re-encoded journal: %v (journal %q)", err, buf.String())
		}
		if !reflect.DeepEqual(entries, again) {
			t.Fatalf("round trip diverged:\n first %+v\nsecond %+v", entries, again)
		}
	})
}
