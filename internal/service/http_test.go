package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"testing"

	"seqmine/internal/paperex"
	"seqmine/internal/seqdb"
	"seqmine/internal/service"
)

func newTestServer(t *testing.T) (*httptest.Server, *service.Service) {
	t.Helper()
	svc := service.New(service.Config{})
	srv := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(srv.Close)
	return srv, svc
}

func doJSON(t *testing.T, method, url string, body any, out any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp
}

func putExampleDataset(t *testing.T, srv *httptest.Server, name string) {
	t.Helper()
	var info service.DatasetInfo
	resp := doJSON(t, http.MethodPut, srv.URL+"/datasets/"+name, service.DatasetRequest{
		Sequences: paperex.RawDB(),
		Hierarchy: map[string][]string{"a1": {"A"}, "a2": {"A"}},
	}, &info)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT dataset: status %d", resp.StatusCode)
	}
	if info.Name != name || info.Stats.NumSequences != int64(len(paperex.RawDB())) {
		t.Fatalf("PUT dataset info = %+v", info)
	}
}

func TestHealthz(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(b)) != "ok" {
		t.Errorf("healthz = %d %q", resp.StatusCode, b)
	}
}

func TestMineEndToEnd(t *testing.T) {
	srv, _ := newTestServer(t)
	putExampleDataset(t, srv, "ex")

	want := paperex.ExpectedFrequent()
	for _, algo := range []string{"dfs", "count", "dseq", "dcand"} {
		var out service.MineResponse
		resp := doJSON(t, http.MethodPost, srv.URL+"/mine", service.MineRequest{
			Dataset:   "ex",
			Pattern:   paperex.PatternExpression,
			Sigma:     paperex.Sigma,
			Algorithm: algo,
			Shards:    3,
		}, &out)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /mine (%s): status %d", algo, resp.StatusCode)
		}
		got := map[string]int64{}
		for _, p := range out.Patterns {
			got[strings.Join(p.Items, " ")] = p.Freq
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: patterns = %v, want %v", algo, got, want)
		}
		if out.Total != len(want) {
			t.Errorf("%s: total = %d, want %d", algo, out.Total, len(want))
		}
	}
}

// TestMineCacheHitOverHTTP verifies the acceptance criterion: a repeated
// identical query is served from the compiled-pattern cache, observable in
// both the per-query metrics and GET /metrics.
func TestMineCacheHitOverHTTP(t *testing.T) {
	srv, _ := newTestServer(t)
	putExampleDataset(t, srv, "ex")

	req := service.MineRequest{Dataset: "ex", Pattern: paperex.PatternExpression, Sigma: paperex.Sigma}
	var first, second service.MineResponse
	doJSON(t, http.MethodPost, srv.URL+"/mine", req, &first)
	doJSON(t, http.MethodPost, srv.URL+"/mine", req, &second)
	if first.Metrics.CacheHit {
		t.Error("first query must not report cache_hit")
	}
	if !second.Metrics.CacheHit {
		t.Error("repeated query must report cache_hit")
	}

	var snap service.Snapshot
	resp := doJSON(t, http.MethodGet, srv.URL+"/metrics", nil, &snap)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if snap.Queries != 2 || snap.CacheHits != 1 || snap.Cache.Misses != 1 {
		t.Errorf("metrics = queries %d, cache hits %d, compile misses %d; want 2, 1, 1",
			snap.Queries, snap.CacheHits, snap.Cache.Misses)
	}
	if len(snap.Datasets) != 1 || snap.Datasets[0].Name != "ex" {
		t.Errorf("metrics datasets = %+v", snap.Datasets)
	}
}

func TestMineLimit(t *testing.T) {
	srv, _ := newTestServer(t)
	putExampleDataset(t, srv, "ex")
	var out service.MineResponse
	doJSON(t, http.MethodPost, srv.URL+"/mine", service.MineRequest{
		Dataset: "ex", Pattern: paperex.PatternExpression, Sigma: 1, Limit: 1,
	}, &out)
	if len(out.Patterns) != 1 {
		t.Fatalf("limit=1 returned %d patterns", len(out.Patterns))
	}
	if out.Total <= 1 {
		t.Errorf("total = %d, want the untruncated count > 1", out.Total)
	}
}

func TestDatasetLifecycleOverHTTP(t *testing.T) {
	srv, _ := newTestServer(t)
	putExampleDataset(t, srv, "a")
	putExampleDataset(t, srv, "b")

	var list []service.DatasetInfo
	doJSON(t, http.MethodGet, srv.URL+"/datasets", nil, &list)
	if len(list) != 2 || list[0].Name != "a" || list[1].Name != "b" {
		t.Fatalf("GET /datasets = %+v", list)
	}

	var info service.DatasetInfo
	if resp := doJSON(t, http.MethodGet, srv.URL+"/datasets/a", nil, &info); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /datasets/a: status %d", resp.StatusCode)
	}
	if info.ActiveQueries != 0 {
		t.Errorf("idle dataset reports %d active queries", info.ActiveQueries)
	}

	if resp := doJSON(t, http.MethodDelete, srv.URL+"/datasets/a", nil, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE /datasets/a: status %d", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodDelete, srv.URL+"/datasets/a", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("second DELETE: status %d, want 404", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodGet, srv.URL+"/datasets/a", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET deleted dataset: status %d, want 404", resp.StatusCode)
	}
}

func TestHTTPErrors(t *testing.T) {
	srv, _ := newTestServer(t)
	putExampleDataset(t, srv, "ex")

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		status int
	}{
		{"bad JSON", http.MethodPost, "/mine", "not json", http.StatusBadRequest},
		{"unknown dataset", http.MethodPost, "/mine",
			service.MineRequest{Dataset: "nope", Pattern: "(.)", Sigma: 1}, http.StatusNotFound},
		{"bad algorithm", http.MethodPost, "/mine",
			service.MineRequest{Dataset: "ex", Pattern: "(.)", Sigma: 1, Algorithm: "spark"}, http.StatusBadRequest},
		{"zero sigma", http.MethodPost, "/mine",
			service.MineRequest{Dataset: "ex", Pattern: "(.)", Sigma: 0}, http.StatusBadRequest},
		{"bad pattern", http.MethodPost, "/mine",
			service.MineRequest{Dataset: "ex", Pattern: "(((", Sigma: 1}, http.StatusBadRequest},
		{"dataset without body fields", http.MethodPut, "/datasets/x",
			service.DatasetRequest{}, http.StatusBadRequest},
		{"dataset with both sources", http.MethodPut, "/datasets/x",
			service.DatasetRequest{Path: "p", Sequences: [][]string{{"a"}}}, http.StatusBadRequest},
		{"dataset with missing file", http.MethodPut, "/datasets/x",
			service.DatasetRequest{Path: "/does/not/exist"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		var errResp struct {
			Error string `json:"error"`
		}
		var body any = tc.body
		if s, ok := tc.body.(string); ok {
			body = json.RawMessage(s) // will marshal invalidly on purpose
		}
		resp := doJSONRaw(t, tc.method, srv.URL+tc.path, body, &errResp)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
		if errResp.Error == "" {
			t.Errorf("%s: missing error message in body", tc.name)
		}
	}
}

// doJSONRaw is doJSON but tolerates bodies that are intentionally invalid
// JSON (passed as json.RawMessage).
func doJSONRaw(t *testing.T, method, url string, body any, out any) *http.Response {
	t.Helper()
	var rd io.Reader
	if raw, ok := body.(json.RawMessage); ok {
		rd = bytes.NewReader(raw)
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
				t.Fatalf("%s %s: decoding response: %v", method, url, err)
			}
		}
		return resp
	}
	return doJSON(t, method, url, body, out)
}

func TestMineFromLoadedFiles(t *testing.T) {
	srv, _ := newTestServer(t)
	dir := t.TempDir()
	seqPath := dir + "/sequences.txt"
	hierPath := dir + "/hierarchy.txt"
	var sb strings.Builder
	for _, seq := range paperex.RawDB() {
		fmt.Fprintln(&sb, strings.Join(seq, " "))
	}
	if err := writeFile(seqPath, sb.String()); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(hierPath, "a1\tA\na2\tA\n"); err != nil {
		t.Fatal(err)
	}
	var info service.DatasetInfo
	resp := doJSON(t, http.MethodPut, srv.URL+"/datasets/files", service.DatasetRequest{
		Path: seqPath, HierarchyPath: hierPath,
	}, &info)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT from files: status %d", resp.StatusCode)
	}

	var out service.MineResponse
	doJSON(t, http.MethodPost, srv.URL+"/mine", service.MineRequest{
		Dataset: "files", Pattern: paperex.PatternExpression, Sigma: paperex.Sigma,
	}, &out)
	got := map[string]int64{}
	for _, p := range out.Patterns {
		got[strings.Join(p.Items, " ")] = p.Freq
	}
	if !reflect.DeepEqual(got, paperex.ExpectedFrequent()) {
		t.Errorf("patterns = %v, want %v", got, paperex.ExpectedFrequent())
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// TestMineSpillThresholdOverHTTP drives the spill path through the wire API:
// "spill_threshold_bytes" must reach the engine, produce identical patterns,
// and surface the spill metrics in the response.
func TestMineSpillThresholdOverHTTP(t *testing.T) {
	srv, _ := newTestServer(t)
	putExampleDataset(t, srv, "ex")

	want := paperex.ExpectedFrequent()
	var out service.MineResponse
	resp := doJSON(t, http.MethodPost, srv.URL+"/mine", service.MineRequest{
		Dataset:             "ex",
		Pattern:             paperex.PatternExpression,
		Sigma:               paperex.Sigma,
		Algorithm:           "dseq",
		SpillThresholdBytes: 1, // every record spills on the tiny example
	}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /mine: status %d", resp.StatusCode)
	}
	got := map[string]int64{}
	for _, p := range out.Patterns {
		got[strings.Join(p.Items, " ")] = p.Freq
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("patterns = %v, want %v", got, want)
	}
	if out.Metrics.MapReduce.SpilledBytes == 0 || out.Metrics.MapReduce.SpillCount == 0 {
		t.Errorf("expected spill metrics in the response, got %+v", out.Metrics.MapReduce)
	}
}

// TestMineStreamingOverHTTP drives the streaming shuffle through the wire
// API: "send_buffer_bytes" must reach the engine, produce identical patterns
// and surface StreamedBatches both per query and in the GET /metrics totals.
func TestMineStreamingOverHTTP(t *testing.T) {
	srv, _ := newTestServer(t)
	putExampleDataset(t, srv, "ex")

	want := paperex.ExpectedFrequent()
	var out service.MineResponse
	resp := doJSON(t, http.MethodPost, srv.URL+"/mine", service.MineRequest{
		Dataset:         "ex",
		Pattern:         paperex.PatternExpression,
		Sigma:           paperex.Sigma,
		Algorithm:       "dseq",
		SendBufferBytes: 32, // tiny buffer: every few records flush and stream
	}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /mine: status %d", resp.StatusCode)
	}
	got := map[string]int64{}
	for _, p := range out.Patterns {
		got[strings.Join(p.Items, " ")] = p.Freq
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("patterns = %v, want %v", got, want)
	}
	if out.Metrics.MapReduce.StreamedBatches == 0 {
		t.Errorf("expected streaming metrics in the response, got %+v", out.Metrics.MapReduce)
	}

	var snap service.Snapshot
	resp = doJSON(t, http.MethodGet, srv.URL+"/metrics", nil, &snap)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if snap.StreamedBatches == 0 {
		t.Errorf("GET /metrics should total streamed batches, got %+v", snap)
	}
}

// TestMineCompressSpillTriState pins the tri-state "compress_spill" body
// field: absent inherits the daemon-wide default, true forces compression,
// and false opts a query out of a daemon that compresses by default (the
// ROADMAP follow-up). Opting out must yield strictly larger on-disk spill
// volume on redundant data.
func TestMineCompressSpillTriState(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d, seqs := paperex.RandomDatabase(rng, 400, 9)
	svc := service.New(service.Config{
		CompressSpill:  true, // daemon-wide -compress-spill
		SpillThreshold: 2048,
		SpillTmpDir:    t.TempDir(),
	})
	if _, err := svc.RegisterDataset("rnd", &seqdb.Database{Dict: d, Sequences: seqs}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(srv.Close)

	mine := func(t *testing.T, compress *bool) service.MineResponse {
		t.Helper()
		var out service.MineResponse
		resp := doJSON(t, http.MethodPost, srv.URL+"/mine", service.MineRequest{
			Dataset:       "rnd",
			Pattern:       "[.*(.)]{1,3}.*",
			Sigma:         10,
			Algorithm:     "dseq",
			CompressSpill: compress,
		}, &out)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /mine: status %d", resp.StatusCode)
		}
		if out.Metrics.MapReduce.SpilledBytes == 0 {
			t.Fatalf("query did not spill; the tri-state has nothing to observe: %+v", out.Metrics.MapReduce)
		}
		return out
	}
	boolPtr := func(b bool) *bool { return &b }

	inherited := mine(t, nil)           // daemon default: compressed
	optedOut := mine(t, boolPtr(false)) // explicit opt-out: raw segments
	explicit := mine(t, boolPtr(true))  // explicit opt-in: compressed

	if optedOut.Metrics.MapReduce.SpilledBytes <= inherited.Metrics.MapReduce.SpilledBytes {
		t.Errorf("opt-out spilled %d bytes, inherited-compression spilled %d — opting out should write more",
			optedOut.Metrics.MapReduce.SpilledBytes, inherited.Metrics.MapReduce.SpilledBytes)
	}
	if optedOut.Metrics.MapReduce.SpilledBytes <= explicit.Metrics.MapReduce.SpilledBytes {
		t.Errorf("opt-out spilled %d bytes, explicit-compression spilled %d — opting out should write more",
			optedOut.Metrics.MapReduce.SpilledBytes, explicit.Metrics.MapReduce.SpilledBytes)
	}
	// All three rode the same query; patterns must be identical regardless.
	if !reflect.DeepEqual(inherited.Patterns, optedOut.Patterns) || !reflect.DeepEqual(inherited.Patterns, explicit.Patterns) {
		t.Error("compression choice changed the mined patterns")
	}
}

// TestMineClusterSchedulerOverHTTP drives the task-based cluster scheduler
// through the wire API: attempt/retry counters and dataset-store accounting
// must appear per query and in the GET /metrics totals, and a resubmission
// must hit the workers' dataset stores instead of re-shipping sequences.
func TestMineClusterSchedulerOverHTTP(t *testing.T) {
	srv, _ := newTestServer(t)
	putExampleDataset(t, srv, "ex")
	workers := startClusterWorkers(t, 3)

	mine := func(t *testing.T) service.MineResponse {
		t.Helper()
		var out service.MineResponse
		resp := doJSON(t, http.MethodPost, srv.URL+"/mine", service.MineRequest{
			Dataset:        "ex",
			Pattern:        paperex.PatternExpression,
			Sigma:          paperex.Sigma,
			Algorithm:      "dseq",
			ClusterWorkers: workers,
			TaskRetries:    1,
			TaskPartitions: 5,
		}, &out)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /mine: status %d", resp.StatusCode)
		}
		return out
	}

	want := paperex.ExpectedFrequent()
	first := mine(t)
	got := map[string]int64{}
	for _, p := range first.Patterns {
		got[strings.Join(p.Items, " ")] = p.Freq
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("cluster patterns = %v, want %v", got, want)
	}
	cs := first.Metrics.Exec.Cluster
	if cs == nil {
		t.Fatal("cluster query response carries no ClusterStats")
	}
	if cs.Attempts < 1 || cs.Tasks != 5 || cs.StoreMisses != 3 || cs.StorePutBytes == 0 {
		t.Errorf("first cluster run stats = %+v", cs)
	}

	second := mine(t)
	cs = second.Metrics.Exec.Cluster
	if cs == nil || cs.StoreMisses != 0 || cs.StorePutBytes != 0 || cs.StoreHits != 3 {
		t.Errorf("resubmission should ship zero sequence bytes: %+v", cs)
	}

	var snap service.Snapshot
	if resp := doJSON(t, http.MethodGet, srv.URL+"/metrics", nil, &snap); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if snap.ClusterAttempts < 2 || snap.DatasetStoreHits < 3 || snap.DatasetStoreMisses < 3 {
		t.Errorf("GET /metrics cluster totals not aggregated: %+v", snap)
	}
}

// TestMinePrefilterOverHTTP checks the prefilter request field end to end:
// the same query with "prefilter": true must return exactly the patterns of
// the plain run on every algorithm.
func TestMinePrefilterOverHTTP(t *testing.T) {
	srv, _ := newTestServer(t)
	putExampleDataset(t, srv, "ex")

	want := paperex.ExpectedFrequent()
	for _, algo := range []string{"dfs", "count", "dseq", "dcand"} {
		var out service.MineResponse
		resp := doJSON(t, http.MethodPost, srv.URL+"/mine", service.MineRequest{
			Dataset:   "ex",
			Pattern:   paperex.PatternExpression,
			Sigma:     paperex.Sigma,
			Algorithm: algo,
			Prefilter: true,
		}, &out)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /mine (%s, prefilter): status %d", algo, resp.StatusCode)
		}
		got := map[string]int64{}
		for _, p := range out.Patterns {
			got[strings.Join(p.Items, " ")] = p.Freq
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: prefiltered patterns = %v, want %v", algo, got, want)
		}
	}
}
