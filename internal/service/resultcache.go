package service

import (
	"container/list"
	"sync"

	"seqmine/internal/dict"
	"seqmine/internal/miner"
)

// resultKey identifies one query's answer. The dataset generation is part of
// the key, so replacing a dataset under the same name (a generation bump)
// can never serve stale patterns. The algorithm is included defensively:
// every backend is tested to produce identical pattern sets, but a cached
// answer must never paper over a divergence bug between backends. Execution
// knobs (workers, shards, spill, streaming, prefilter, cluster) provably do
// not affect the answer — equivalence is CI-gated at every level — and are
// deliberately not part of the key, so a cached in-process answer serves a
// later distributed query of the same logical question.
type resultKey struct {
	dataset    string
	generation uint64
	expression string
	sigma      int64
	algorithm  Algorithm
}

// cachedResult is one cached answer. Patterns and Dict are shared, immutable
// by convention (every consumer only reads them — the HTTP layer decodes into
// fresh wire structs).
type cachedResult struct {
	patterns []miner.Pattern
	dict     *dict.Dictionary
}

// resultCache is an LRU over query answers with singleflight deduplication:
// while one query mines a key, concurrent identical queries wait and share
// its answer instead of mining again — without holding admission slots.
// A nil *resultCache disables caching (every lookup misses and mine runs).
type resultCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	items    map[resultKey]*list.Element
	inflight map[resultKey]*resultFlight

	hits, shared, misses, evictions uint64
}

type resultEntry struct {
	key resultKey
	res cachedResult
}

type resultFlight struct {
	done chan struct{}
	res  cachedResult
	err  error
}

// newResultCache builds a cache of the given entry capacity; <= 0 disables
// caching (returns nil).
func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	return &resultCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[resultKey]*list.Element),
		inflight: make(map[resultKey]*resultFlight),
	}
}

// lookup returns a cached answer, or registers the caller as the miner of
// key. Outcomes:
//
//   - cached answer: (res, true, nil, nil) — serve it;
//   - someone else is mining it: blocks, then (res, true, nil, err) with
//     their outcome;
//   - the caller should mine: (_, false, flight, nil) — mine, then call
//     resolve(flight, ...) exactly once.
func (c *resultCache) lookup(key resultKey) (cachedResult, bool, *resultFlight, error) {
	if c == nil {
		return cachedResult{}, false, nil, nil
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		res := el.Value.(*resultEntry).res
		c.mu.Unlock()
		return res, true, nil, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.shared++
		c.mu.Unlock()
		<-fl.done
		return fl.res, true, nil, fl.err
	}
	fl := &resultFlight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.misses++
	c.mu.Unlock()
	return cachedResult{}, false, fl, nil
}

// resolve completes a flight: a successful answer is inserted into the LRU,
// an error is delivered to waiters but not cached.
func (c *resultCache) resolve(key resultKey, fl *resultFlight, res cachedResult, err error) {
	if c == nil || fl == nil {
		return
	}
	fl.res, fl.err = res, err
	close(fl.done)
	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil {
		c.insert(key, res)
	}
	c.mu.Unlock()
}

// insert adds an entry, evicting from the LRU tail. Callers hold c.mu.
func (c *resultCache) insert(key resultKey, res cachedResult) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*resultEntry).res = res
		return
	}
	c.items[key] = c.ll.PushFront(&resultEntry{key: key, res: res})
	for c.ll.Len() > c.capacity {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*resultEntry).key)
		c.evictions++
	}
}

// invalidateDataset drops every cached answer of the named dataset (any
// generation): replacement bumps the generation (stale keys become
// unreachable anyway), this frees the memory eagerly.
func (c *resultCache) invalidateDataset(name string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*resultEntry)
		if e.key.dataset == name {
			c.ll.Remove(el)
			delete(c.items, e.key)
		}
		el = next
	}
}

func (c *resultCache) stats() cacheStats {
	if c == nil {
		return cacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		Size:      c.ll.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		SharedIn:  c.shared,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
