package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"
)

// testCluster starts n nodes on ephemeral localhost ports.
func testCluster(t *testing.T, n int) ([]*Node, []string) {
	t.Helper()
	nodes := make([]*Node, n)
	addrs := make([]string, n)
	for i := range nodes {
		node, err := NewNode("127.0.0.1:0", Config{
			HandshakeTimeout: 5 * time.Second,
			DialRetryWindow:  5 * time.Second,
			AdoptTimeout:     10 * time.Second,
			OpenTimeout:      10 * time.Second,
		})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		t.Cleanup(func() { node.Close() })
		nodes[i] = node
		addrs[i] = node.Addr()
	}
	return nodes, addrs
}

// runExchangePeer opens the job on one node, sends one tagged frame to every
// other peer, and collects everything it receives until EOF.
func runExchangePeer(t *testing.T, node *Node, jobID string, self int, addrs []string, frames int) ([]string, *Exchange) {
	t.Helper()
	ex, err := node.OpenExchange(jobID, self, addrs)
	if err != nil {
		t.Errorf("peer %d: OpenExchange: %v", self, err)
		return nil, nil
	}
	var (
		recvd []string
		wg    sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			frame, err := ex.Recv()
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Errorf("peer %d: Recv: %v", self, err)
				return
			}
			recvd = append(recvd, string(frame))
		}
	}()
	for dst := range addrs {
		if dst == self {
			continue
		}
		for f := 0; f < frames; f++ {
			msg := fmt.Sprintf("%s:%d->%d:%d", jobID, self, dst, f)
			if err := ex.Send(dst, []byte(msg)); err != nil {
				t.Errorf("peer %d: Send: %v", self, err)
			}
		}
	}
	if err := ex.CloseSend(); err != nil {
		t.Errorf("peer %d: CloseSend: %v", self, err)
	}
	wg.Wait()
	return recvd, ex
}

func TestExchangeThreePeers(t *testing.T) {
	nodes, addrs := testCluster(t, 3)

	const frames = 50
	recvd := make([][]string, 3)
	exs := make([]*Exchange, 3)
	var wg sync.WaitGroup
	for p := range nodes {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			recvd[p], exs[p] = runExchangePeer(t, nodes[p], "job-3peer", p, addrs, frames)
		}(p)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	var wantTotal, gotTotal int
	for p := range recvd {
		var want []string
		for src := range addrs {
			if src == p {
				continue
			}
			for f := 0; f < frames; f++ {
				want = append(want, fmt.Sprintf("job-3peer:%d->%d:%d", src, p, f))
			}
		}
		got := append([]string(nil), recvd[p]...)
		sort.Strings(got)
		sort.Strings(want)
		wantTotal += len(want)
		gotTotal += len(got)
		for i := range want {
			if i >= len(got) || got[i] != want[i] {
				t.Fatalf("peer %d: frame set mismatch:\n got %v\nwant %v", p, got, want)
			}
		}
	}
	if gotTotal != wantTotal {
		t.Fatalf("received %d frames, want %d", gotTotal, wantTotal)
	}

	// The acceptance bar: bytes counted as written must equal bytes counted
	// as read across the cluster — ShuffleBytes is real socket traffic.
	var out, in int64
	for p, ex := range exs {
		out += ex.WireBytesOut()
		in += ex.WireBytesIn()
		if ex.WireBytesOut() <= 0 {
			t.Errorf("peer %d reports no wire bytes out", p)
		}
		stats := ex.Stats()
		if stats[p].BytesOut != 0 || stats[p].BytesIn != 0 {
			t.Errorf("peer %d counts self traffic: %+v", p, stats[p])
		}
	}
	if out != in {
		t.Errorf("wire bytes out %d != wire bytes in %d", out, in)
	}
	for _, ex := range exs {
		ex.Close()
	}
}

func TestExchangeConcurrentJobsIsolated(t *testing.T) {
	nodes, addrs := testCluster(t, 2)

	jobs := []string{"job-a", "job-b"}
	results := make(map[string][][]string)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, job := range jobs {
		for p := range nodes {
			wg.Add(1)
			go func(job string, p int) {
				defer wg.Done()
				got, ex := runExchangePeer(t, nodes[p], job, p, addrs, 10)
				if ex != nil {
					defer ex.Close()
				}
				mu.Lock()
				results[job] = append(results[job], got)
				mu.Unlock()
			}(job, p)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for job, peerFrames := range results {
		for _, frames := range peerFrames {
			for _, f := range frames {
				if len(f) < len(job) || f[:len(job)] != job {
					t.Errorf("job %s received foreign frame %q", job, f)
				}
			}
		}
	}
}

func TestExchangeJobIDReuseAfterClose(t *testing.T) {
	nodes, addrs := testCluster(t, 2)
	for round := 0; round < 2; round++ {
		var wg sync.WaitGroup
		for p := range nodes {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				_, ex := runExchangePeer(t, nodes[p], "job-reuse", p, addrs, 3)
				if ex != nil {
					ex.Close()
				}
			}(p)
		}
		wg.Wait()
		if t.Failed() {
			t.Fatalf("round %d failed", round)
		}
	}
}

func TestOpenExchangeDuplicateJob(t *testing.T) {
	nodes, _ := testCluster(t, 1)
	ex, err := nodes[0].OpenExchange("dup", 0, []string{nodes[0].Addr()})
	if err != nil {
		t.Fatalf("OpenExchange: %v", err)
	}
	defer ex.Close()
	if _, err := nodes[0].OpenExchange("dup", 0, []string{nodes[0].Addr()}); err == nil {
		t.Fatal("second OpenExchange with the same job id should fail")
	}
}

func TestSinglePeerExchangeIsImmediatelyDone(t *testing.T) {
	nodes, _ := testCluster(t, 1)
	ex, err := nodes[0].OpenExchange("solo", 0, []string{nodes[0].Addr()})
	if err != nil {
		t.Fatalf("OpenExchange: %v", err)
	}
	defer ex.Close()
	if err := ex.CloseSend(); err != nil {
		t.Fatalf("CloseSend: %v", err)
	}
	if _, err := ex.Recv(); err != io.EOF {
		t.Fatalf("Recv: got %v, want io.EOF", err)
	}
}

func TestHandshakeRejectsGarbage(t *testing.T) {
	nodes, addrs := testCluster(t, 1)
	_ = nodes
	conn, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 16)
	if n, err := conn.Read(buf); err == nil {
		t.Fatalf("expected the node to drop a garbage connection, read %d bytes", n)
	}
}

// TestUnadoptedJobEntryIsDropped: a handshaken connection for a job that is
// never opened locally must not leak its entry in the node's jobs map.
func TestUnadoptedJobEntryIsDropped(t *testing.T) {
	node, err := NewNode("127.0.0.1:0", Config{AdoptTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer node.Close()

	conn, err := net.Dial("tcp", node.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write(appendHandshake(nil, "ghost-job", 1, 0, nil)); err != nil {
		t.Fatalf("write handshake: %v", err)
	}
	ack := make([]byte, 1)
	if _, err := io.ReadFull(conn, ack); err != nil {
		t.Fatalf("read ack: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		node.mu.Lock()
		n := len(node.jobs)
		node.mu.Unlock()
		if n == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs map still holds %d entries after adopt timeout", n)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestSendToSelfRejected(t *testing.T) {
	nodes, _ := testCluster(t, 1)
	ex, err := nodes[0].OpenExchange("selfsend", 0, []string{nodes[0].Addr()})
	if err != nil {
		t.Fatalf("OpenExchange: %v", err)
	}
	defer ex.Close()
	if err := ex.Send(0, []byte("x")); err == nil {
		t.Fatal("Send to self should be rejected")
	}
}

// TestAbruptPeerDisconnectFailsLivePeers is the fail-stop contract under a
// mid-stream crash: one peer tears its connections down without sending end
// frames while the others are still streaming. Every live peer must surface
// an error from its exchange (no silent truncation), none may wedge, and the
// node goroutines must all wind down (no leaks).
func TestAbruptPeerDisconnectFailsLivePeers(t *testing.T) {
	before := runtime.NumGoroutine()
	nodes, addrs := testCluster(t, 3)

	exs := make([]*Exchange, 3)
	for p, node := range nodes {
		ex, err := node.OpenExchange("job-crash", p, addrs)
		if err != nil {
			t.Fatalf("peer %d: OpenExchange: %v", p, err)
		}
		exs[p] = ex
	}

	// Peers 0 and 1 stream continuously and drain their inboxes; peer 2
	// receives one frame and then dies abruptly (Close sends no end frames).
	started := make(chan struct{}, 2)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for _, p := range []int{0, 1} {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			recvErr := make(chan error, 1)
			go func() {
				for {
					if _, err := exs[p].Recv(); err != nil {
						if err == io.EOF {
							recvErr <- nil
						} else {
							recvErr <- err
						}
						return
					}
				}
			}()
			payload := make([]byte, 4096)
			var sendErr error
			started <- struct{}{}
			for i := 0; i < 100000; i++ {
				for dst := range exs {
					if dst == p {
						continue
					}
					if err := exs[p].Send(dst, payload); err != nil {
						sendErr = err
						break
					}
				}
				if sendErr != nil {
					break
				}
			}
			// Whether or not Send already failed, the receive side must
			// observe the missing end frame of the dead peer as an error.
			if sendErr == nil {
				_ = exs[p].CloseSend()
			}
			err := <-recvErr
			if sendErr == nil && err == nil {
				errs[p] = fmt.Errorf("peer %d: neither Send nor Recv surfaced the dead peer", p)
				return
			}
			errs[p] = nil
		}(p)
	}
	<-started
	<-started
	// Let peer 2 adopt some traffic, then kill it abruptly.
	if _, err := exs[2].Recv(); err != nil {
		t.Fatalf("peer 2: first Recv: %v", err)
	}
	exs[2].Close()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("live peers did not observe the abrupt disconnect within 30s (wedged exchange?)")
	}
	for p, err := range errs {
		if err != nil {
			t.Error(err)
		}
		_ = p
	}

	for _, ex := range exs {
		ex.Close()
	}
	for _, node := range nodes {
		node.Close()
	}
	// All read loops, accept loops and handshake handlers must wind down.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after abrupt disconnect: %d -> %d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestExchangeEpochsIsolated runs two epochs of the same job id concurrently
// (the speculative re-execution shape): frames must never cross epochs.
func TestExchangeEpochsIsolated(t *testing.T) {
	nodes, addrs := testCluster(t, 2)

	// Open the epochs in scheduler order — the running attempt (epoch 0)
	// exists on every worker before the speculative attempt (epoch 1) opens;
	// both then run concurrently.
	exs := make(map[[2]int]*Exchange)
	for _, epoch := range []int{0, 1} {
		var openWG sync.WaitGroup
		var mu0 sync.Mutex
		for p := range nodes {
			openWG.Add(1)
			go func(epoch, p int) {
				defer openWG.Done()
				ex, err := nodes[p].OpenExchangeEpoch("job-epochs", epoch, p, addrs)
				if err != nil {
					t.Errorf("epoch %d peer %d: OpenExchangeEpoch: %v", epoch, p, err)
					return
				}
				mu0.Lock()
				exs[[2]int{epoch, p}] = ex
				mu0.Unlock()
			}(epoch, p)
		}
		openWG.Wait()
		if t.Failed() {
			t.FailNow()
		}
	}

	results := make(map[int][][]string)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, epoch := range []int{0, 1} {
		for p := range nodes {
			wg.Add(1)
			go func(epoch, p int) {
				defer wg.Done()
				ex := exs[[2]int{epoch, p}]
				defer ex.Close()
				recvErr := make(chan []string, 1)
				go func() {
					var got []string
					for {
						frame, err := ex.Recv()
						if err != nil {
							recvErr <- got
							return
						}
						got = append(got, string(frame))
					}
				}()
				for f := 0; f < 10; f++ {
					msg := fmt.Sprintf("e%d:%d", epoch, f)
					if err := ex.Send(1-p, []byte(msg)); err != nil {
						t.Errorf("epoch %d peer %d: Send: %v", epoch, p, err)
					}
				}
				if err := ex.CloseSend(); err != nil {
					t.Errorf("epoch %d peer %d: CloseSend: %v", epoch, p, err)
				}
				got := <-recvErr
				mu.Lock()
				results[epoch] = append(results[epoch], got)
				mu.Unlock()
			}(epoch, p)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for epoch, peerFrames := range results {
		want := fmt.Sprintf("e%d:", epoch)
		n := 0
		for _, frames := range peerFrames {
			for _, f := range frames {
				n++
				if f[:len(want)] != want {
					t.Errorf("epoch %d received foreign frame %q", epoch, f)
				}
			}
		}
		if n != 20 {
			t.Errorf("epoch %d received %d frames, want 20", epoch, n)
		}
	}
}

// TestStaleEpochRejected: once a newer epoch of a job is open on a node,
// opening (or connecting as) an older epoch must be refused.
func TestStaleEpochRejected(t *testing.T) {
	nodes, addrs := testCluster(t, 2)

	// Open epoch 2 on both peers and complete the handshake mesh.
	exs := make([]*Exchange, 2)
	var wg sync.WaitGroup
	for p := range nodes {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ex, err := nodes[p].OpenExchangeEpoch("job-stale", 2, p, addrs)
			if err != nil {
				t.Errorf("peer %d: OpenExchangeEpoch: %v", p, err)
				return
			}
			exs[p] = ex
		}(p)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	defer exs[0].Close()
	defer exs[1].Close()

	// A local open of an older epoch fails immediately.
	if _, err := nodes[0].OpenExchangeEpoch("job-stale", 1, 0, addrs); err == nil {
		t.Fatal("opening a stale epoch should fail")
	}

	// A zombie sender handshaking with an older epoch is cut off: the ack
	// arrives (the handshake is read before the epoch check) but the
	// connection is closed without ever being adopted.
	conn, err := net.Dial("tcp", addrs[1])
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write(appendHandshake(nil, "job-stale", 0, 1, nil)); err != nil {
		t.Fatalf("write handshake: %v", err)
	}
	ack := make([]byte, 1)
	if _, err := io.ReadFull(conn, ack); err != nil {
		t.Fatalf("read ack: %v", err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(ack); err == nil {
		t.Fatal("stale-epoch connection should be closed by the acceptor")
	}
}

// TestPeerErrorIdentifiesDeadPeer: when a peer dies abruptly, the survivors'
// exchange error must be a *PeerError naming it.
func TestPeerErrorIdentifiesDeadPeer(t *testing.T) {
	nodes, addrs := testCluster(t, 3)
	exs := make([]*Exchange, 3)
	for p, node := range nodes {
		ex, err := node.OpenExchange("job-peererr", p, addrs)
		if err != nil {
			t.Fatalf("peer %d: OpenExchange: %v", p, err)
		}
		exs[p] = ex
	}
	defer exs[0].Close()
	defer exs[1].Close()

	// Peer 2 dies without end frames; peer 0 blocks in Recv until the broken
	// connection surfaces.
	exs[2].Close()
	_ = exs[0].CloseSend()
	_ = exs[1].CloseSend()
	for {
		_, err := exs[0].Recv()
		if err == io.EOF {
			t.Fatal("Recv reached EOF although peer 2 never sent an end frame")
		}
		if err != nil {
			var perr *PeerError
			if !errors.As(err, &perr) {
				t.Fatalf("Recv error %v (%T) is not a *PeerError", err, err)
			}
			if perr.Peer != 2 {
				t.Fatalf("PeerError names peer %d, want 2", perr.Peer)
			}
			return
		}
	}
}
