package transport

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzReadFrame feeds arbitrary bytes into the frame reader (it must fail
// cleanly, never panic or over-allocate) and checks that frames written by
// writeFrame round-trip.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{frameEnd})
	f.Add([]byte{frameData, 3, 'a', 'b', 'c'})
	f.Add([]byte{frameData, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary input: parse frames until an error or exhaustion.
		br := bufio.NewReader(bytes.NewReader(data))
		for {
			payload, end, err := readFrame(br, 1<<16)
			if err != nil {
				break
			}
			if end {
				continue
			}
			_ = payload
		}

		// Round trip: data as a payload must come back byte-identical,
		// followed by a clean end frame.
		if len(data) > 1<<16 {
			return
		}
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := writeFrame(bw, data); err != nil {
			t.Fatalf("writeFrame: %v", err)
		}
		if err := writeEndFrame(bw); err != nil {
			t.Fatalf("writeEndFrame: %v", err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		br = bufio.NewReader(&buf)
		payload, end, err := readFrame(br, 1<<16)
		if err != nil || end {
			t.Fatalf("readFrame after writeFrame: payload=%v end=%v err=%v", payload, end, err)
		}
		if !bytes.Equal(payload, data) {
			t.Fatalf("payload round trip mismatch: got %d bytes, want %d", len(payload), len(data))
		}
		if _, end, err := readFrame(br, 1<<16); err != nil || !end {
			t.Fatalf("end frame round trip: end=%v err=%v", end, err)
		}
	})
}

// FuzzReadHandshake feeds arbitrary bytes into the handshake reader and
// checks that well-formed handshakes round-trip, including the v3 trace
// field in its empty, 16-byte, and arbitrary (bounded) forms.
func FuzzReadHandshake(f *testing.F) {
	f.Add([]byte{}, "job", uint16(0), uint16(0), []byte{})
	f.Add([]byte("SQX1"), "a", uint16(7), uint16(1), []byte{})
	f.Add(appendHandshake(nil, "fuzz-seed", 2, 3, nil), "fuzz-seed", uint16(2), uint16(3), []byte{})
	trace16 := bytes.Repeat([]byte{0xab}, 16)
	f.Add(appendHandshake(nil, "traced", 1, 0, trace16), "traced", uint16(1), uint16(0), trace16)
	f.Fuzz(func(t *testing.T, data []byte, jobID string, sender, epoch uint16, trace []byte) {
		// Arbitrary input must not panic.
		_, _, _, _, _ = readHandshake(bufio.NewReader(bytes.NewReader(data)))

		// Round trip for any valid job id and bounded trace field.
		if jobID == "" || len(jobID) > maxJobIDLen || len(trace) > maxTraceLen {
			return
		}
		hs := appendHandshake(nil, jobID, int(sender), int(epoch), trace)
		gotJob, gotSender, gotEpoch, gotTrace, err := readHandshake(bufio.NewReader(bytes.NewReader(hs)))
		if err != nil {
			t.Fatalf("readHandshake(appendHandshake(%q, %d, %d, %d-byte trace)): %v", jobID, sender, epoch, len(trace), err)
		}
		if gotJob != jobID || gotSender != int(sender) || gotEpoch != int(epoch) {
			t.Fatalf("handshake round trip: got (%q, %d, %d), want (%q, %d, %d)",
				gotJob, gotSender, gotEpoch, jobID, sender, epoch)
		}
		if len(trace) == 0 {
			if len(gotTrace) != 0 {
				t.Fatalf("empty trace came back as %d bytes", len(gotTrace))
			}
		} else if !bytes.Equal(gotTrace, trace) {
			t.Fatalf("trace round trip: got %x, want %x", gotTrace, trace)
		}
	})
}
