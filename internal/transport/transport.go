// Package transport is the TCP shuffle fabric of the distributed miners: it
// moves the serialized key/value frames of one BSP job (internal/mapreduce)
// between worker processes over persistent, length-prefixed TCP connections.
//
// A process runs one Node, which owns a listening socket for the lifetime of
// the process and demultiplexes inbound peer connections onto per-attempt
// Exchanges by the (job id, epoch) pair carried in the connection handshake.
// An Exchange implements mapreduce.ByteExchange: every ordered peer pair uses
// one connection (opened by the sender), frames destined to a peer are
// streamed as they are produced, and an end frame per connection forms the
// shuffle barrier. Inbound frames are buffered in a bounded inbox, so a slow
// reducer exerts backpressure on remote senders through TCP flow control.
//
// Failure semantics of one exchange are fail-stop: a broken or missing
// connection fails the whole exchange (every blocked Send/Recv returns the
// error). The error is a *PeerError naming the peer whose connection broke,
// so a scheduler above the fabric (internal/cluster) can treat the death as
// one task's failure — mark that worker dead, re-execute the attempt —
// instead of a global abort. Re-execution is what the epoch in the handshake
// exists for: a restarted attempt reuses its job id with a higher epoch, each
// epoch gets its own Exchange, and the Node refuses connections from epochs
// older than the newest one opened locally, so a zombie sender from a dead
// attempt can never leak frames into the restarted shuffle.
//
// The Exchange counts the actual bytes written to and read from its sockets
// (handshake, data and end frames; the one-byte handshake ack is excluded),
// which the engine reports as the true ShuffleBytes.
package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"seqmine/internal/obs"
)

// Config tunes a Node. The zero value is ready for use.
type Config struct {
	// Advertise is the address other peers should dial, when it differs from
	// the listener's address (e.g. listening on ":9101" behind a hostname).
	Advertise string
	// HandshakeTimeout bounds connection setup (dial, handshake, ack);
	// default 10s.
	HandshakeTimeout time.Duration
	// DialRetryWindow is how long an Exchange keeps retrying to reach a peer
	// that refuses connections (it may not have started yet); default 20s.
	DialRetryWindow time.Duration
	// AdoptTimeout is how long an accepted connection waits for its job to
	// be opened locally before it is dropped; default 60s.
	AdoptTimeout time.Duration
	// OpenTimeout is how long an Exchange waits for every remote peer to
	// connect before the job fails; default 60s.
	OpenTimeout time.Duration
	// MaxFrame bounds the payload of one frame; default 64 MiB.
	MaxFrame int
	// InboxFrames bounds the number of buffered inbound frames per Exchange
	// (the backpressure window); default 256.
	InboxFrames int
}

func (c Config) withDefaults() Config {
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 10 * time.Second
	}
	if c.DialRetryWindow <= 0 {
		c.DialRetryWindow = 20 * time.Second
	}
	if c.AdoptTimeout <= 0 {
		c.AdoptTimeout = 60 * time.Second
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 60 * time.Second
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = 64 << 20
	}
	if c.InboxFrames <= 0 {
		c.InboxFrames = 256
	}
	return c
}

// Node owns a process's shuffle listener and the set of open exchanges.
type Node struct {
	cfg  Config
	ln   net.Listener
	done chan struct{}
	wg   sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*jobFamily
	closed bool
}

// jobFamily is the per-job-id state of the node: one entry per attempt epoch
// plus the newest epoch opened locally, which gates stale senders. The family
// is dropped once its last entry is released, so job ids do not accumulate.
type jobFamily struct {
	epochs  map[int]*jobEntry
	maxOpen int  // newest epoch opened locally via OpenExchange
	anyOpen bool // whether maxOpen is meaningful
}

// jobEntry connects inbound connections to the local Exchange of one job
// attempt. The ready channel is closed once ex is set, so connections that
// arrive before the attempt is opened locally can wait.
type jobEntry struct {
	ready chan struct{}
	ex    *Exchange
}

// NewNode listens on addr ("host:port", ":0" for an ephemeral port) and
// starts accepting peer connections.
func NewNode(addr string, cfg Config) (*Node, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	n := &Node{
		cfg:  cfg.withDefaults(),
		ln:   ln,
		done: make(chan struct{}),
		jobs: map[string]*jobFamily{},
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the address peers should dial: the Advertise address when
// configured, otherwise the listener's address (with unspecified hosts
// rewritten to 127.0.0.1 so the result is dialable).
func (n *Node) Addr() string {
	if n.cfg.Advertise != "" {
		return n.cfg.Advertise
	}
	addr, ok := n.ln.Addr().(*net.TCPAddr)
	if !ok {
		return n.ln.Addr().String()
	}
	if addr.IP == nil || addr.IP.IsUnspecified() {
		return net.JoinHostPort("127.0.0.1", strconv.Itoa(addr.Port))
	}
	return addr.String()
}

// Close stops the listener and closes every open exchange.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	close(n.done)
	jobs := n.jobs
	n.jobs = map[string]*jobFamily{}
	n.mu.Unlock()

	err := n.ln.Close()
	for _, fam := range jobs {
		for _, entry := range fam.epochs {
			select {
			case <-entry.ready:
				entry.ex.Close()
			default:
			}
		}
	}
	n.wg.Wait()
	return err
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go n.handleInbound(conn)
	}
}

// handleInbound validates a peer connection's handshake and hands it to the
// attempt's Exchange, waiting (bounded) for the attempt to be opened locally.
// Connections from epochs older than the newest locally-opened epoch of the
// job are refused outright: they belong to a dead attempt.
func (n *Node) handleInbound(conn net.Conn) {
	defer n.wg.Done()
	cr := &countingReader{r: conn}
	br := bufio.NewReader(cr)
	_ = conn.SetDeadline(time.Now().Add(n.cfg.HandshakeTimeout))
	jobID, sender, epoch, trace, err := readHandshake(br)
	if err != nil {
		conn.Close()
		return
	}
	if _, err := conn.Write([]byte{protocolVersion}); err != nil { // ack
		conn.Close()
		return
	}
	_ = conn.SetDeadline(time.Time{})

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		conn.Close()
		return
	}
	fam, ok := n.jobs[jobID]
	if !ok {
		fam = &jobFamily{epochs: map[int]*jobEntry{}}
		n.jobs[jobID] = fam
	}
	if fam.anyOpen && epoch < fam.maxOpen {
		// A newer attempt of this job is (or was) open here; the sender is a
		// zombie of a superseded attempt and must not deliver frames.
		n.mu.Unlock()
		conn.Close()
		return
	}
	entry, ok := fam.epochs[epoch]
	if !ok {
		entry = &jobEntry{ready: make(chan struct{})}
		fam.epochs[epoch] = entry
	}
	n.mu.Unlock()

	timer := time.NewTimer(n.cfg.AdoptTimeout)
	defer timer.Stop()
	select {
	case <-entry.ready:
		entry.ex.adoptInbound(sender, conn, br, cr, trace)
	case <-timer.C:
		conn.Close()
		n.dropIfUnopened(jobID, epoch, entry)
	case <-n.done:
		conn.Close()
	}
}

// dropIfUnopened removes an attempt entry that never got a local exchange, so
// ids of abandoned attempts (a peer dialing a worker whose own job setup
// failed, or garbage connections with made-up job ids) do not accumulate in
// the jobs map for the life of the node.
func (n *Node) dropIfUnopened(jobID string, epoch int, entry *jobEntry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	fam, ok := n.jobs[jobID]
	if !ok {
		return
	}
	if cur, ok := fam.epochs[epoch]; ok && cur == entry {
		select {
		case <-entry.ready:
			// Opened locally; Exchange.Close releases it.
		default:
			delete(fam.epochs, epoch)
			if len(fam.epochs) == 0 {
				delete(n.jobs, jobID)
			}
		}
	}
}

// release removes a finished attempt so the job id can eventually be reused.
func (n *Node) release(jobID string, epoch int, ex *Exchange) {
	n.mu.Lock()
	defer n.mu.Unlock()
	fam, ok := n.jobs[jobID]
	if !ok {
		return
	}
	if entry, ok := fam.epochs[epoch]; ok && entry.ex == ex {
		delete(fam.epochs, epoch)
		if len(fam.epochs) == 0 {
			delete(n.jobs, jobID)
		}
	}
}

// PeerStats is the per-peer traffic of one Exchange. Bytes are real socket
// bytes including protocol overhead.
type PeerStats struct {
	Addr      string `json:"addr"`
	BytesOut  int64  `json:"bytes_out"`
	FramesOut int64  `json:"frames_out"`
	BytesIn   int64  `json:"bytes_in"`
	FramesIn  int64  `json:"frames_in"`
	// StreamedBatches and OverflowSegments are the streaming shuffle's
	// per-destination counters (key batches flushed toward this peer, and
	// flushed runs that overflowed to disk because the sender lagged). They
	// are engine-level counts: the transport does not fill them itself — the
	// cluster worker copies them in from the engine metrics after a run.
	StreamedBatches  int64 `json:"streamed_batches,omitempty"`
	OverflowSegments int64 `json:"overflow_segments,omitempty"`
}

// PeerError is the failure of one peer's connection within an exchange. It
// names the peer so a scheduler can turn the death into a targeted task
// failure (mark that worker dead, re-execute) instead of an anonymous global
// abort. Unwrap exposes the underlying I/O error.
type PeerError struct {
	// Peer is the index of the peer whose connection failed.
	Peer int
	// Err is the underlying failure.
	Err error
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("transport: peer %d failed: %v", e.Peer, e.Err)
}

func (e *PeerError) Unwrap() error { return e.Err }

type peerCounters struct {
	bytesOut, framesOut, bytesIn, framesIn atomic.Int64
}

// outConn is the sending half of one peer pair: a persistent connection with
// a buffered writer, serialized by a mutex so concurrent Sends interleave at
// frame granularity.
type outConn struct {
	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
	err  error // sticky
}

// Exchange is the per-job shuffle endpoint of this process. It implements
// mapreduce.ByteExchange.
type Exchange struct {
	node  *Node
	jobID string
	epoch int
	self  int
	peers []string

	outs  []*outConn // index per peer; nil for self
	inbox chan []byte
	stats []peerCounters

	// Tracing (optional): the recorder and trace context captured from the
	// context handed to OpenExchangeContext. traceWire is the handshake trace
	// field sent to every peer; openedAt anchors the per-peer send spans.
	obsCtx    context.Context
	traceWire []byte
	openedAt  time.Time

	wireOut atomic.Int64
	wireIn  atomic.Int64

	mu         sync.Mutex
	ins        []net.Conn // adopted inbound connections, index per peer
	adopted    int
	finished   int // remote peers whose end frame arrived
	err        error
	closed     bool
	failed     chan struct{} // closed on first failure
	closedCh   chan struct{} // closed by Close
	allAdopted chan struct{} // closed when every remote peer connected
}

// OpenExchange creates the local endpoint of job jobID at epoch 0. See
// OpenExchangeEpoch.
func (n *Node) OpenExchange(jobID string, self int, peers []string) (*Exchange, error) {
	return n.OpenExchangeEpoch(jobID, 0, self, peers)
}

// OpenExchangeEpoch creates the local endpoint of attempt epoch of job jobID.
// See OpenExchangeContext.
func (n *Node) OpenExchangeEpoch(jobID string, epoch, self int, peers []string) (*Exchange, error) {
	return n.OpenExchangeContext(context.Background(), jobID, epoch, self, peers)
}

// OpenExchangeContext creates the local endpoint of attempt epoch of job
// jobID. peers lists the shuffle address of every participant in peer order;
// self is this process's index in it. The call dials every remote peer
// (retrying while the peer starts up) and returns once all outbound
// connections are established; inbound connections attach as the remote
// peers open their side. Opening an epoch makes the node refuse inbound
// connections of older epochs of the same job, and an attempt to open an
// epoch older than one already opened fails: a scheduler retrying a job must
// use a fresh, strictly higher epoch.
//
// When ctx carries an obs trace context, the exchange propagates it in the
// handshake to every peer and records per-peer transport.send/transport.recv
// spans into ctx's recorder. ctx does not control the exchange's lifetime —
// callers cancel via Close, typically through context.AfterFunc.
func (n *Node) OpenExchangeContext(ctx context.Context, jobID string, epoch, self int, peers []string) (*Exchange, error) {
	if jobID == "" || len(jobID) > maxJobIDLen {
		return nil, fmt.Errorf("transport: job id length %d out of range", len(jobID))
	}
	if epoch < 0 || epoch >= maxEpoch {
		return nil, fmt.Errorf("transport: epoch %d out of range", epoch)
	}
	if self < 0 || self >= len(peers) {
		return nil, fmt.Errorf("transport: self index %d out of range for %d peers", self, len(peers))
	}
	if len(peers) > maxPeerIndex {
		return nil, fmt.Errorf("transport: %d peers exceed the protocol limit", len(peers))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	e := &Exchange{
		node:       n,
		jobID:      jobID,
		epoch:      epoch,
		self:       self,
		peers:      append([]string(nil), peers...),
		outs:       make([]*outConn, len(peers)),
		inbox:      make(chan []byte, n.cfg.InboxFrames),
		stats:      make([]peerCounters, len(peers)),
		ins:        make([]net.Conn, len(peers)),
		failed:     make(chan struct{}),
		closedCh:   make(chan struct{}),
		allAdopted: make(chan struct{}),
		obsCtx:     ctx,
		traceWire:  obs.TraceBytes(ctx),
		openedAt:   time.Now(),
	}

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, errors.New("transport: node is closed")
	}
	fam, ok := n.jobs[jobID]
	if !ok {
		fam = &jobFamily{epochs: map[int]*jobEntry{}}
		n.jobs[jobID] = fam
	}
	if fam.anyOpen && epoch < fam.maxOpen {
		n.mu.Unlock()
		return nil, fmt.Errorf("transport: job %q epoch %d is stale (epoch %d already opened)", jobID, epoch, fam.maxOpen)
	}
	entry, ok := fam.epochs[epoch]
	if !ok {
		entry = &jobEntry{ready: make(chan struct{})}
		fam.epochs[epoch] = entry
	}
	select {
	case <-entry.ready:
		n.mu.Unlock()
		return nil, fmt.Errorf("transport: job %q epoch %d is already open on this node", jobID, epoch)
	default:
	}
	entry.ex = e
	close(entry.ready)
	if !fam.anyOpen || epoch > fam.maxOpen {
		fam.anyOpen = true
		fam.maxOpen = epoch
	}
	n.mu.Unlock()

	if len(peers) == 1 {
		close(e.allAdopted)
		close(e.inbox) // no remote senders: the shuffle barrier is trivially met
	} else {
		go e.watchAdoption()
	}

	var wg sync.WaitGroup
	dialErrs := make(chan error, len(peers))
	for p := range peers {
		if p == self {
			continue
		}
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			if err := e.dialPeer(p); err != nil {
				dialErrs <- fmt.Errorf("transport: connecting to peer %d (%s): %w", p, peers[p], err)
			}
		}(p)
	}
	wg.Wait()
	select {
	case err := <-dialErrs:
		e.Close()
		return nil, err
	default:
	}
	return e, nil
}

// dialPeer establishes the outbound connection to peer p, retrying while the
// peer process may still be starting.
func (e *Exchange) dialPeer(p int) error {
	cfg := e.node.cfg
	deadline := time.Now().Add(cfg.DialRetryWindow)
	var conn net.Conn
	for {
		var err error
		conn, err = net.DialTimeout("tcp", e.peers[p], cfg.HandshakeTimeout)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return err
		}
		select {
		case <-e.closedCh:
			return errors.New("transport: exchange closed while dialing")
		case <-time.After(100 * time.Millisecond):
		}
	}
	cw := &countingWriter{w: conn, sinks: []*atomic.Int64{&e.wireOut, &e.stats[p].bytesOut}}
	bw := bufio.NewWriter(cw)
	_ = conn.SetDeadline(time.Now().Add(cfg.HandshakeTimeout))
	if _, err := bw.Write(appendHandshake(nil, e.jobID, e.self, e.epoch, e.traceWire)); err != nil {
		conn.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		conn.Close()
		return err
	}
	ack := make([]byte, 1)
	if _, err := io.ReadFull(conn, ack); err != nil {
		conn.Close()
		return fmt.Errorf("reading handshake ack: %w", err)
	}
	if ack[0] != protocolVersion {
		conn.Close()
		return fmt.Errorf("handshake ack version %d, want %d", ack[0], protocolVersion)
	}
	_ = conn.SetDeadline(time.Time{})
	e.outs[p] = &outConn{conn: conn, bw: bw}
	return nil
}

// watchAdoption fails the exchange if the remote peers do not all connect
// within the open timeout.
func (e *Exchange) watchAdoption() {
	timer := time.NewTimer(e.node.cfg.OpenTimeout)
	defer timer.Stop()
	select {
	case <-e.allAdopted:
	case <-e.closedCh:
	case <-timer.C:
		e.fail(fmt.Errorf("transport: job %q: not all peers connected within %v", e.jobID, e.node.cfg.OpenTimeout))
	}
}

// adoptInbound attaches an accepted, handshaken connection from a remote
// sender and starts its read loop. trace is the sender's handshake trace
// field; the stream's transport.recv span is parented under it so the span
// links to the remote sender's context in a merged trace.
func (e *Exchange) adoptInbound(sender int, conn net.Conn, br *bufio.Reader, cr *countingReader, trace []byte) {
	e.mu.Lock()
	if e.closed || sender < 0 || sender >= len(e.peers) || sender == e.self || e.ins[sender] != nil {
		e.mu.Unlock()
		conn.Close()
		return
	}
	e.ins[sender] = conn
	e.adopted++
	if e.adopted == len(e.peers)-1 {
		close(e.allAdopted)
	}
	e.mu.Unlock()
	cr.attach(&e.wireIn, &e.stats[sender].bytesIn)
	go e.readLoop(sender, br, trace, time.Now())
}

// recordRecvSpan records the lifetime of one inbound stream once its end
// frame arrives. No-op without a local recorder.
func (e *Exchange) recordRecvSpan(sender int, trace []byte, start time.Time) {
	rec := obs.RecorderFrom(e.obsCtx)
	if rec == nil {
		return
	}
	traceID, parent, ok := obs.ParseTraceBytes(trace)
	if !ok {
		// Sender carried no context (e.g. an untraced process); fall back to
		// the local trace so the span is not orphaned.
		traceID, parent = obs.SpanContextFrom(e.obsCtx)
	}
	if traceID == "" {
		return
	}
	rec.Record(obs.SpanRecord{
		Trace:       traceID,
		Span:        obs.NewSpanID(),
		Parent:      parent,
		Name:        "transport.recv",
		StartUnixNS: start.UnixNano(),
		DurationNS:  int64(time.Since(start)),
		Attrs: []obs.Attr{
			obs.String("job", e.jobID),
			obs.Int("epoch", int64(e.epoch)),
			obs.Int("sender", int64(sender)),
			obs.Int("bytes_in", e.stats[sender].bytesIn.Load()),
			obs.Int("frames_in", e.stats[sender].framesIn.Load()),
		},
	})
}

// readLoop pumps one inbound connection into the bounded inbox until the end
// frame. The loop that completes the last open stream closes the inbox,
// which is the EOF signal of Recv.
func (e *Exchange) readLoop(sender int, br *bufio.Reader, trace []byte, started time.Time) {
	for {
		payload, end, err := readFrame(br, e.node.cfg.MaxFrame)
		if err != nil {
			e.fail(&PeerError{Peer: sender, Err: fmt.Errorf("receiving: %w", err)})
			return
		}
		if end {
			e.recordRecvSpan(sender, trace, started)
			e.mu.Lock()
			e.finished++
			done := e.finished == len(e.peers)-1 && !e.closed
			e.mu.Unlock()
			if done {
				close(e.inbox)
			}
			return
		}
		e.stats[sender].framesIn.Add(1)
		select {
		case e.inbox <- payload:
		case <-e.closedCh:
			return
		}
	}
}

// NumPeers returns the number of job participants.
func (e *Exchange) NumPeers() int { return len(e.peers) }

// Self returns this process's peer index.
func (e *Exchange) Self() int { return e.self }

// Send streams one frame to peer dst. The frame is fully buffered or written
// before Send returns, so the caller may reuse the slice.
func (e *Exchange) Send(dst int, frame []byte) error {
	if dst == e.self {
		return errors.New("transport: self-delivery must be short-circuited by the caller")
	}
	if dst < 0 || dst >= len(e.peers) {
		return fmt.Errorf("transport: unknown peer %d of %d", dst, len(e.peers))
	}
	oc := e.outs[dst]
	if oc == nil {
		return fmt.Errorf("transport: peer %d is not connected", dst)
	}
	oc.mu.Lock()
	defer oc.mu.Unlock()
	if oc.err != nil {
		return oc.err
	}
	if err := writeFrame(oc.bw, frame); err != nil {
		perr := &PeerError{Peer: dst, Err: fmt.Errorf("sending: %w", err)}
		oc.err = perr
		e.fail(perr)
		return perr
	}
	e.stats[dst].framesOut.Add(1)
	return nil
}

// CloseSend writes the end frame to every peer and flushes the outbound
// connections: the remote shuffle barrier for this sender. With a recorder
// attached it also records one transport.send span per peer covering the
// stream's lifetime (exchange open to barrier).
func (e *Exchange) CloseSend() error {
	var first error
	for p, oc := range e.outs {
		if oc == nil {
			continue
		}
		oc.mu.Lock()
		err := oc.err
		if err == nil {
			err = writeEndFrame(oc.bw)
			if err == nil {
				err = oc.bw.Flush()
			}
			if err != nil {
				err = &PeerError{Peer: p, Err: fmt.Errorf("closing send: %w", err)}
			}
			oc.err = err
		}
		oc.mu.Unlock()
		e.recordSendSpan(p, err)
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// recordSendSpan records the lifetime of one outbound stream at its barrier.
// No-op without a local recorder or trace.
func (e *Exchange) recordSendSpan(peer int, sendErr error) {
	rec := obs.RecorderFrom(e.obsCtx)
	if rec == nil {
		return
	}
	traceID, parent := obs.SpanContextFrom(e.obsCtx)
	if traceID == "" {
		return
	}
	attrs := []obs.Attr{
		obs.String("job", e.jobID),
		obs.Int("epoch", int64(e.epoch)),
		obs.Int("dst", int64(peer)),
		obs.Int("bytes_out", e.stats[peer].bytesOut.Load()),
		obs.Int("frames_out", e.stats[peer].framesOut.Load()),
	}
	if sendErr != nil {
		attrs = append(attrs, obs.String("error", sendErr.Error()))
	}
	rec.Record(obs.SpanRecord{
		Trace:       traceID,
		Span:        obs.NewSpanID(),
		Parent:      parent,
		Name:        "transport.send",
		StartUnixNS: e.openedAt.UnixNano(),
		DurationNS:  int64(time.Since(e.openedAt)),
		Attrs:       attrs,
	})
}

// Recv returns the next inbound frame; io.EOF once every remote peer's end
// frame has arrived. The returned slice is owned by the caller.
func (e *Exchange) Recv() ([]byte, error) {
	select {
	case frame, ok := <-e.inbox:
		if !ok {
			return nil, io.EOF
		}
		return frame, nil
	case <-e.failed:
		return nil, e.Err()
	case <-e.closedCh:
		return nil, errors.New("transport: exchange is closed")
	}
}

// Err returns the first failure of the exchange, if any.
func (e *Exchange) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// WireBytesOut returns the bytes actually written to this peer's outbound
// sockets so far.
func (e *Exchange) WireBytesOut() int64 { return e.wireOut.Load() }

// WireBytesIn returns the bytes actually read from the inbound sockets.
func (e *Exchange) WireBytesIn() int64 { return e.wireIn.Load() }

// Stats returns a per-peer traffic snapshot (this peer's own row is zero).
func (e *Exchange) Stats() []PeerStats {
	out := make([]PeerStats, len(e.peers))
	for i := range e.peers {
		out[i] = PeerStats{
			Addr:      e.peers[i],
			BytesOut:  e.stats[i].bytesOut.Load(),
			FramesOut: e.stats[i].framesOut.Load(),
			BytesIn:   e.stats[i].bytesIn.Load(),
			FramesIn:  e.stats[i].framesIn.Load(),
		}
	}
	return out
}

// Close tears down every connection of the exchange and releases its job id.
// It is idempotent and safe to call while Sends or Recvs are blocked.
func (e *Exchange) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.closedCh)
	ins := append([]net.Conn(nil), e.ins...)
	e.mu.Unlock()

	for _, oc := range e.outs {
		if oc != nil {
			oc.conn.Close()
		}
	}
	for _, conn := range ins {
		if conn != nil {
			conn.Close()
		}
	}
	e.node.release(e.jobID, e.epoch, e)
	return nil
}

// fail records the first error and wakes every blocked Recv.
func (e *Exchange) fail(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err == nil {
		e.err = err
		close(e.failed)
	}
}

// countingWriter forwards writes and adds the written byte counts to its
// sinks. It sits directly on the socket, below the buffered writer, so the
// counts are bytes that actually reached the kernel.
type countingWriter struct {
	w     io.Writer
	sinks []*atomic.Int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	for _, s := range c.sinks {
		s.Add(int64(n))
	}
	return n, err
}

// countingReader forwards reads and counts bytes. Before attach it counts
// locally (the handshake is read before the owning exchange is known); attach
// transfers the running count into the sinks and routes further reads there.
// attach must not race with Read — the handshake reader has finished before
// the read loop starts.
type countingReader struct {
	r     io.Reader
	n     int64
	sinks []*atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if c.sinks == nil {
		c.n += int64(n)
	} else {
		for _, s := range c.sinks {
			s.Add(int64(n))
		}
	}
	return n, err
}

func (c *countingReader) attach(sinks ...*atomic.Int64) {
	for _, s := range sinks {
		s.Add(c.n)
	}
	c.sinks = sinks
}
