package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire protocol, version 3. Every ordered peer pair (i -> j) of a job
// attempt uses one TCP connection, opened by i. The dialer starts with a
// handshake:
//
//	magic "SQX1" | version byte | uvarint len(jobID) | jobID | uvarint sender
//	| uvarint epoch | uvarint len(trace) | trace
//
// and the acceptor answers with a single ack byte (the protocol version).
// The epoch is the job's attempt number: a retried or speculatively
// re-executed job reuses its job id with a higher epoch, and the acceptor
// refuses connections from epochs older than the newest one it has opened
// locally, so frames of a dead attempt can never mix into its successor's
// shuffle. The trace field carries the dialer's distributed-tracing context
// (internal/obs wire form: 8 bytes trace id + 8 bytes parent span id) so the
// receive side of a shuffle stream can be recorded under the same trace as
// the sender; it is empty when the dialer traces nothing. After the
// handshake the connection carries length-prefixed frames:
//
//	type 0x01 (data) | uvarint payload length | payload
//	type 0x02 (end)                                      — sender is done
//
// All varints are unsigned LEB128. The end frame is the shuffle barrier: a
// receiver that has seen the end frame of every remote peer knows its
// partitions are complete.
const (
	protocolMagic   = "SQX1"
	protocolVersion = byte(3)

	frameData = byte(1)
	frameEnd  = byte(2)

	// maxJobIDLen bounds the handshake so a garbage connection cannot make
	// the acceptor buffer an arbitrarily long "job id".
	maxJobIDLen = 256
	// maxTraceLen bounds the handshake's trace-context field. The obs wire
	// form is 16 bytes; the bound leaves headroom for future context without
	// letting a garbage handshake demand a large buffer.
	maxTraceLen = 64
	// maxPeerIndex bounds the sender index claimed in a handshake.
	maxPeerIndex = 1 << 20
	// maxEpoch bounds the attempt epoch claimed in a handshake. Far above any
	// real retry budget; merely keeps a garbage handshake from smuggling an
	// absurd epoch into the per-job epoch tracking.
	maxEpoch = 1 << 20
)

// appendHandshake appends the dialer's opening message. trace is the obs
// wire-form trace context (possibly empty).
func appendHandshake(buf []byte, jobID string, sender, epoch int, trace []byte) []byte {
	buf = append(buf, protocolMagic...)
	buf = append(buf, protocolVersion)
	buf = binary.AppendUvarint(buf, uint64(len(jobID)))
	buf = append(buf, jobID...)
	buf = binary.AppendUvarint(buf, uint64(sender))
	buf = binary.AppendUvarint(buf, uint64(epoch))
	buf = binary.AppendUvarint(buf, uint64(len(trace)))
	buf = append(buf, trace...)
	return buf
}

// readHandshake reads and validates a dialer's opening message.
func readHandshake(br *bufio.Reader) (jobID string, sender, epoch int, trace []byte, err error) {
	head := make([]byte, len(protocolMagic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return "", 0, 0, nil, fmt.Errorf("transport: reading handshake: %w", err)
	}
	if string(head[:len(protocolMagic)]) != protocolMagic {
		return "", 0, 0, nil, errors.New("transport: bad handshake magic")
	}
	if head[len(protocolMagic)] != protocolVersion {
		return "", 0, 0, nil, fmt.Errorf("transport: protocol version %d, want %d", head[len(protocolMagic)], protocolVersion)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", 0, 0, nil, fmt.Errorf("transport: reading job id length: %w", err)
	}
	if n == 0 || n > maxJobIDLen {
		return "", 0, 0, nil, fmt.Errorf("transport: job id length %d out of range", n)
	}
	id := make([]byte, n)
	if _, err := io.ReadFull(br, id); err != nil {
		return "", 0, 0, nil, fmt.Errorf("transport: reading job id: %w", err)
	}
	s, err := binary.ReadUvarint(br)
	if err != nil {
		return "", 0, 0, nil, fmt.Errorf("transport: reading sender index: %w", err)
	}
	if s >= maxPeerIndex {
		return "", 0, 0, nil, fmt.Errorf("transport: sender index %d out of range", s)
	}
	e, err := binary.ReadUvarint(br)
	if err != nil {
		return "", 0, 0, nil, fmt.Errorf("transport: reading epoch: %w", err)
	}
	if e >= maxEpoch {
		return "", 0, 0, nil, fmt.Errorf("transport: epoch %d out of range", e)
	}
	tn, err := binary.ReadUvarint(br)
	if err != nil {
		return "", 0, 0, nil, fmt.Errorf("transport: reading trace length: %w", err)
	}
	if tn > maxTraceLen {
		return "", 0, 0, nil, fmt.Errorf("transport: trace context length %d out of range", tn)
	}
	if tn > 0 {
		trace = make([]byte, tn)
		if _, err := io.ReadFull(br, trace); err != nil {
			return "", 0, 0, nil, fmt.Errorf("transport: reading trace context: %w", err)
		}
	}
	return string(id), int(s), int(e), trace, nil
}

// writeFrame writes one data frame.
func writeFrame(bw *bufio.Writer, payload []byte) error {
	var head [binary.MaxVarintLen64 + 1]byte
	head[0] = frameData
	n := binary.PutUvarint(head[1:], uint64(len(payload)))
	if _, err := bw.Write(head[:1+n]); err != nil {
		return err
	}
	_, err := bw.Write(payload)
	return err
}

// writeEndFrame writes the end-of-stream frame.
func writeEndFrame(bw *bufio.Writer) error {
	return bw.WriteByte(frameEnd)
}

// readFrame reads the next frame. It returns (payload, false) for a data
// frame and (nil, true) for the end frame. The payload is freshly allocated
// and owned by the caller.
func readFrame(br *bufio.Reader, maxFrame int) (payload []byte, end bool, err error) {
	t, err := br.ReadByte()
	if err != nil {
		return nil, false, err
	}
	switch t {
	case frameEnd:
		return nil, true, nil
	case frameData:
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, false, fmt.Errorf("transport: reading frame length: %w", err)
		}
		if n > uint64(maxFrame) {
			return nil, false, fmt.Errorf("transport: frame of %d bytes exceeds limit %d", n, maxFrame)
		}
		payload = make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, false, fmt.Errorf("transport: reading frame payload: %w", err)
		}
		return payload, false, nil
	default:
		return nil, false, fmt.Errorf("transport: unknown frame type 0x%02x", t)
	}
}
