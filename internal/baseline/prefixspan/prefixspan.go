// Package prefixspan implements the PrefixSpan algorithm (Pei et al., ICDE'01)
// with a maximum-length constraint, mirroring the constraint class of Spark
// MLlib's distributed PrefixSpan used as the comparator of Fig. 13 in the
// paper ("MLlib setting"): subsequences with arbitrary gaps, no hierarchy and
// a maximum length. Work is parallelized over the frequent first items
// (prefix-based partitioning, like MLlib).
package prefixspan

import (
	"sort"
	"sync"

	"seqmine/internal/dict"
	"seqmine/internal/miner"
)

// Options configures PrefixSpan mining.
type Options struct {
	// MaxLength bounds the length of reported subsequences.
	MaxLength int
	// Workers is the number of concurrent prefix partitions to mine (default
	// 1).
	Workers int
}

// posting is the pseudo-projection of one sequence: the earliest position at
// which the current prefix can end. With arbitrary gaps, greedy leftmost
// matching is sufficient for deciding containment, so one position per
// sequence suffices.
type posting struct {
	seq int
	pos int
}

// Mine returns all subsequences of length 1..MaxLength (arbitrary gaps, no
// hierarchy) whose support reaches sigma.
func Mine(d *dict.Dictionary, db [][]dict.ItemID, sigma int64, opts Options) []miner.Pattern {
	if opts.MaxLength <= 0 {
		opts.MaxLength = 1<<31 - 1
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}

	// Frequent items and their first occurrence per sequence.
	first := map[dict.ItemID][]posting{}
	for s, T := range db {
		seen := map[dict.ItemID]bool{}
		for p, t := range T {
			if seen[t] || !d.IsFrequent(t, sigma) {
				continue
			}
			seen[t] = true
			first[t] = append(first[t], posting{seq: s, pos: p})
		}
	}
	items := make([]dict.ItemID, 0, len(first))
	for w, ps := range first {
		if int64(len(ps)) >= sigma {
			items = append(items, w)
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })

	// Mine each prefix partition concurrently.
	results := make([][]miner.Pattern, len(items))
	var wg sync.WaitGroup
	sem := make(chan struct{}, opts.Workers)
	for i, w := range items {
		wg.Add(1)
		go func(i int, w dict.ItemID) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			m := &psMiner{db: db, dict: d, sigma: sigma, maxLen: opts.MaxLength}
			m.expand([]dict.ItemID{w}, first[w])
			results[i] = m.out
		}(i, w)
	}
	wg.Wait()

	var out []miner.Pattern
	for _, rs := range results {
		out = append(out, rs...)
	}
	miner.SortPatterns(out)
	return out
}

type psMiner struct {
	db     [][]dict.ItemID
	dict   *dict.Dictionary
	sigma  int64
	maxLen int
	out    []miner.Pattern
}

func (m *psMiner) expand(prefix []dict.ItemID, ps []posting) {
	m.out = append(m.out, miner.Pattern{Items: append([]dict.ItemID(nil), prefix...), Freq: int64(len(ps))})
	if len(prefix) >= m.maxLen {
		return
	}
	// Next items: earliest occurrence after the current position per sequence.
	next := map[dict.ItemID][]posting{}
	for _, p := range ps {
		T := m.db[p.seq]
		seen := map[dict.ItemID]bool{}
		for j := p.pos + 1; j < len(T); j++ {
			t := T[j]
			if seen[t] || !m.dict.IsFrequent(t, m.sigma) {
				continue
			}
			seen[t] = true
			next[t] = append(next[t], posting{seq: p.seq, pos: j})
		}
	}
	items := make([]dict.ItemID, 0, len(next))
	for w, nps := range next {
		if int64(len(nps)) >= m.sigma {
			items = append(items, w)
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	for _, w := range items {
		m.expand(append(prefix, w), next[w])
	}
}
