package prefixspan_test

import (
	"math/rand"
	"reflect"
	"testing"

	"seqmine/internal/baseline/prefixspan"
	"seqmine/internal/dict"
	"seqmine/internal/dseq"
	"seqmine/internal/fst"
	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
	"seqmine/internal/paperex"
)

func TestPrefixSpanSmallExample(t *testing.T) {
	// Classic example: three sequences over items encoded by a small dict.
	b := dict.NewBuilder()
	raw := [][]string{
		{"a", "b", "c"},
		{"a", "c"},
		{"b", "c"},
	}
	for _, s := range raw {
		b.AddSequence(s)
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var db [][]dict.ItemID
	for _, s := range raw {
		enc, _ := d.EncodeSequence(s)
		db = append(db, enc)
	}
	got := miner.PatternsToMap(d, prefixspan.Mine(d, db, 2, prefixspan.Options{MaxLength: 3}))
	want := map[string]int64{
		"a": 2, "b": 2, "c": 3,
		"a c": 2, "b c": 2,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PrefixSpan = %v, want %v", got, want)
	}
}

func TestPrefixSpanMaxLength(t *testing.T) {
	b := dict.NewBuilder()
	raw := [][]string{{"a", "b", "c"}, {"a", "b", "c"}}
	for _, s := range raw {
		b.AddSequence(s)
	}
	d, _ := b.Build()
	var db [][]dict.ItemID
	for _, s := range raw {
		enc, _ := d.EncodeSequence(s)
		db = append(db, enc)
	}
	got := prefixspan.Mine(d, db, 2, prefixspan.Options{MaxLength: 2})
	for _, p := range got {
		if len(p.Items) > 2 {
			t.Errorf("pattern %v exceeds the maximum length", d.DecodeString(p.Items))
		}
	}
	if len(got) != 6 { // a, b, c, ab, ac, bc
		t.Errorf("expected 6 patterns, got %d: %v", len(got), miner.PatternsToMap(d, got))
	}
}

// TestPrefixSpanMatchesDSeq cross-validates PrefixSpan against D-SEQ with the
// equivalent T1 pattern expression on random databases.
func TestPrefixSpanMatchesDSeq(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	cfg := mapreduce.Config{MapWorkers: 2, ReduceWorkers: 2}
	for trial := 0; trial < 4; trial++ {
		d, db := paperex.RandomDatabase(rng, 20, 5)
		f := fst.MustCompile("[.*(.)]{1,3}.*", d) // T1 with lambda = 3
		for _, sigma := range []int64{2, 3} {
			wantPatterns, _ := dseq.Mine(f, db, sigma, dseq.DefaultOptions(), cfg)
			want := miner.PatternsToMap(d, wantPatterns)
			for _, workers := range []int{1, 4} {
				got := miner.PatternsToMap(d, prefixspan.Mine(d, db, sigma, prefixspan.Options{MaxLength: 3, Workers: workers}))
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d sigma %d workers %d: PrefixSpan %v != D-SEQ %v", trial, sigma, workers, got, want)
				}
			}
		}
	}
}

func TestPrefixSpanEmpty(t *testing.T) {
	d := paperex.Dict()
	if got := prefixspan.Mine(d, nil, 1, prefixspan.Options{}); len(got) != 0 {
		t.Errorf("empty database should mine nothing, got %v", got)
	}
}
