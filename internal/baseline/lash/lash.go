// Package lash implements a specialized distributed miner for the constraint
// class of LASH (Beedkar & Gemulla, SIGMOD'15): maximum-gap and
// maximum-length constraints with item-hierarchy generalization. It plays the
// role of the LASH comparator in the paper's Fig. 12 ("LASH setting"): a
// less general algorithm that does not need an FST and against which the
// generalization overhead of D-SEQ and D-CAND is measured.
//
// Like MG-FSM and LASH it uses item-based partitioning with sequence
// representation and specialized rewrites: items that cannot contribute to a
// pivot sequence are blanked out, leading/trailing blanks are trimmed and
// long blank runs are collapsed (they only need to remain unspannable under
// the gap constraint).
package lash

import (
	"sort"

	"seqmine/internal/dict"
	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
)

// Constraint is the LASH-setting constraint: subsequences of length
// MinLength..MaxLength whose consecutive items are at most MaxGap positions
// apart in the input, where each subsequence item is the input item itself or
// (with Hierarchy) one of its ancestors.
type Constraint struct {
	MaxGap    int
	MaxLength int
	MinLength int
	Hierarchy bool
}

// blank marks rewritten-away positions; it never matches an item.
const blank = dict.None

// Mine runs the distributed specialized miner and returns the frequent
// sequences together with the engine metrics.
func Mine(d *dict.Dictionary, db [][]dict.ItemID, sigma int64, c Constraint, cfg mapreduce.Config) ([]miner.Pattern, mapreduce.Metrics) {
	if c.MinLength <= 0 {
		c.MinLength = 1
	}
	job := mapreduce.Job[[]dict.ItemID, dict.ItemID, []dict.ItemID, miner.Pattern]{
		Map: func(T []dict.ItemID, emit func(dict.ItemID, []dict.ItemID)) {
			for _, k := range potentialPivots(d, T, sigma, c) {
				emit(k, rewrite(d, T, k, sigma, c))
			}
		},
		Reduce: func(k dict.ItemID, seqs [][]dict.ItemID, emit func(miner.Pattern)) {
			for _, p := range minePartition(d, seqs, sigma, c, k) {
				emit(p)
			}
		},
		Hash:   func(k dict.ItemID) uint64 { return mapreduce.HashUint64(uint64(k)) },
		SizeOf: func(_ dict.ItemID, seq []dict.ItemID) int { return 2*len(seq) + 2 },
	}
	out, metrics := mapreduce.Run(db, cfg, job)
	miner.SortPatterns(out)
	return out, metrics
}

// MineSequential mines the whole database on a single core (no partitioning).
func MineSequential(d *dict.Dictionary, db [][]dict.ItemID, sigma int64, c Constraint) []miner.Pattern {
	if c.MinLength <= 0 {
		c.MinLength = 1
	}
	out := minePartition(d, db, sigma, c, dict.None)
	miner.SortPatterns(out)
	return out
}

// outputsOf returns the possible subsequence items for input item t: t itself
// (if frequent) plus, with hierarchy generalization, its frequent ancestors,
// optionally restricted to items <= pivot.
func outputsOf(d *dict.Dictionary, t dict.ItemID, sigma int64, c Constraint, pivot dict.ItemID) []dict.ItemID {
	if t == blank {
		return nil
	}
	var out []dict.ItemID
	if c.Hierarchy {
		for _, a := range d.Ancestors(t) {
			if d.IsFrequent(a, sigma) && (pivot == dict.None || a <= pivot) {
				out = append(out, a)
			}
		}
		return out
	}
	if d.IsFrequent(t, sigma) && (pivot == dict.None || t <= pivot) {
		out = append(out, t)
	}
	return out
}

// potentialPivots returns the frequent items that could be the pivot of a
// subsequence of T, i.e. the frequent (ancestor) items producible from T.
func potentialPivots(d *dict.Dictionary, T []dict.ItemID, sigma int64, c Constraint) []dict.ItemID {
	set := map[dict.ItemID]bool{}
	for _, t := range T {
		for _, w := range outputsOf(d, t, sigma, c, dict.None) {
			set[w] = true
		}
	}
	out := make([]dict.ItemID, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// rewrite blanks out items that cannot contribute to a pivot sequence, trims
// leading and trailing blanks and collapses blank runs longer than MaxGap+1
// (they only need to stay unspannable).
func rewrite(d *dict.Dictionary, T []dict.ItemID, pivot dict.ItemID, sigma int64, c Constraint) []dict.ItemID {
	out := make([]dict.ItemID, 0, len(T))
	blankRun := 0
	for _, t := range T {
		if len(outputsOf(d, t, sigma, c, pivot)) == 0 {
			blankRun++
			if len(out) == 0 {
				continue // leading blank
			}
			if blankRun > c.MaxGap+1 {
				continue // collapse long runs
			}
			out = append(out, blank)
			continue
		}
		blankRun = 0
		out = append(out, t)
	}
	// Trim trailing blanks.
	for len(out) > 0 && out[len(out)-1] == blank {
		out = out[:len(out)-1]
	}
	return out
}

// posting is the position of the last matched item of the current prefix in
// one partition sequence.
type posting struct {
	seq int
	pos int
}

// minePartition grows prefixes over the partition sequences. With a pivot it
// only reports sequences containing the pivot item (whose maximum item is then
// exactly the pivot because larger items are never used for expansion).
func minePartition(d *dict.Dictionary, seqs [][]dict.ItemID, sigma int64, c Constraint, pivot dict.ItemID) []miner.Pattern {
	m := &gapMiner{dict: d, seqs: seqs, sigma: sigma, c: c, pivot: pivot}
	root := make(map[dict.ItemID][]posting)
	for s, T := range seqs {
		seen := map[posting]map[dict.ItemID]bool{}
		for p, t := range T {
			for _, w := range outputsOf(d, t, sigma, c, pivot) {
				key := posting{seq: s, pos: p}
				if seen[key] == nil {
					seen[key] = map[dict.ItemID]bool{}
				}
				if seen[key][w] {
					continue
				}
				seen[key][w] = true
				root[w] = append(root[w], key)
			}
		}
	}
	m.expandAll(nil, root)
	return m.out
}

type gapMiner struct {
	dict  *dict.Dictionary
	seqs  [][]dict.ItemID
	sigma int64
	c     Constraint
	pivot dict.ItemID
	out   []miner.Pattern
}

// support counts the distinct sequences among the postings.
func (m *gapMiner) support(ps []posting) int64 {
	var s int64
	last := -1
	for _, p := range ps {
		if p.seq != last {
			s++
			last = p.seq
		}
	}
	return s
}

// expandAll recurses into every sufficiently supported expansion.
func (m *gapMiner) expandAll(prefix []dict.ItemID, expansions map[dict.ItemID][]posting) {
	items := make([]dict.ItemID, 0, len(expansions))
	for w := range expansions {
		items = append(items, w)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	for _, w := range items {
		ps := expansions[w]
		if m.support(ps) < m.sigma {
			continue
		}
		m.expand(append(prefix, w), ps)
	}
}

func (m *gapMiner) expand(prefix []dict.ItemID, ps []posting) {
	freq := m.support(ps)
	if len(prefix) >= m.c.MinLength && len(prefix) <= m.c.MaxLength &&
		(m.pivot == dict.None || containsItem(prefix, m.pivot)) {
		m.out = append(m.out, miner.Pattern{Items: append([]dict.ItemID(nil), prefix...), Freq: freq})
	}
	if len(prefix) >= m.c.MaxLength {
		return
	}
	next := map[dict.ItemID][]posting{}
	for _, p := range ps {
		T := m.seqs[p.seq]
		limit := p.pos + 1 + m.c.MaxGap
		if limit >= len(T) {
			limit = len(T) - 1
		}
		seen := map[posting]map[dict.ItemID]bool{}
		for j := p.pos + 1; j <= limit; j++ {
			for _, w := range outputsOf(m.dict, T[j], m.sigma, m.c, m.pivot) {
				key := posting{seq: p.seq, pos: j}
				if seen[key] == nil {
					seen[key] = map[dict.ItemID]bool{}
				}
				if seen[key][w] {
					continue
				}
				seen[key][w] = true
				next[w] = append(next[w], key)
			}
		}
	}
	// Deduplicate postings per item (different source postings may reach the
	// same target position).
	for w, list := range next {
		next[w] = dedupPostings(list)
	}
	m.expandAll(prefix, next)
}

func dedupPostings(ps []posting) []posting {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].seq != ps[j].seq {
			return ps[i].seq < ps[j].seq
		}
		return ps[i].pos < ps[j].pos
	})
	out := ps[:0]
	for i, p := range ps {
		if i == 0 || p != ps[i-1] {
			out = append(out, p)
		}
	}
	return out
}

func containsItem(seq []dict.ItemID, w dict.ItemID) bool {
	for _, it := range seq {
		if it == w {
			return true
		}
	}
	return false
}
