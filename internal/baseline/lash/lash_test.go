package lash_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"seqmine/internal/baseline/lash"
	"seqmine/internal/datagen"
	"seqmine/internal/dseq"
	"seqmine/internal/fst"
	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
	"seqmine/internal/paperex"
)

// t3Pattern is the pattern-expression formulation of the LASH constraint
// (max gap, max length, hierarchy), with explicit gap context.
func t3Pattern(gamma, lambda int) string {
	return fmt.Sprintf(".*(.^)[.{0,%d}(.^)]{1,%d}.*", gamma, lambda-1)
}

// t2Pattern is the same without hierarchy generalization.
func t2Pattern(gamma, lambda int) string {
	return fmt.Sprintf(".*(.)[.{0,%d}(.)]{1,%d}.*", gamma, lambda-1)
}

func TestLashSimpleExample(t *testing.T) {
	d := paperex.Dict()
	db := paperex.DB(d)
	c := lash.Constraint{MaxGap: 0, MaxLength: 2, MinLength: 2, Hierarchy: true}
	got := miner.PatternsToMap(d, lash.MineSequential(d, db, 2, c))
	// Consecutive pairs (gap 0, hierarchy) with support >= 2:
	// d c (T1: d@3 c@4? gap0 yes; T3: d c) -> 2, c b (T1, T3) -> 2,
	// d b (T4 only at gap 0? T4 = a2 d b: d b consecutive) plus T1? d c b: no.
	// A d from T1 (a1 c d...)? not consecutive. a1/A pairs in T5: a1 a1, a1 A,
	// A a1, A A, a1 b, A b (T5 and T2? T2 has a1 e b: not consecutive).
	want := map[string]int64{
		"d c": 2,
		"c b": 2,
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("pattern %q: support %d, want %d (all: %v)", k, got[k], v, got)
		}
	}
	// No pattern may contain an infrequent item.
	for k := range got {
		if k == "" {
			t.Error("empty pattern reported")
		}
	}
}

// TestLashMatchesDSeq cross-validates the specialized miner against D-SEQ
// with the equivalent pattern expression, with and without hierarchy.
func TestLashMatchesDSeq(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	cfg := mapreduce.Config{MapWorkers: 2, ReduceWorkers: 2}
	for trial := 0; trial < 4; trial++ {
		d, db := paperex.RandomDatabase(rng, 25, 6)
		for _, hier := range []bool{true, false} {
			for _, gamma := range []int{0, 1} {
				lambda := 3
				pattern := t2Pattern(gamma, lambda)
				if hier {
					pattern = t3Pattern(gamma, lambda)
				}
				f := fst.MustCompile(pattern, d)
				for _, sigma := range []int64{2, 3} {
					wantPatterns, _ := dseq.Mine(f, db, sigma, dseq.DefaultOptions(), cfg)
					want := miner.PatternsToMap(d, wantPatterns)
					c := lash.Constraint{MaxGap: gamma, MaxLength: lambda, MinLength: 2, Hierarchy: hier}
					gotSeq := miner.PatternsToMap(d, lash.MineSequential(d, db, sigma, c))
					if !reflect.DeepEqual(gotSeq, want) {
						t.Fatalf("trial %d hier=%v gamma=%d sigma=%d: sequential LASH %v != D-SEQ %v",
							trial, hier, gamma, sigma, gotSeq, want)
					}
					gotDist, _ := lash.Mine(d, db, sigma, c, cfg)
					if m := miner.PatternsToMap(d, gotDist); !reflect.DeepEqual(m, want) {
						t.Fatalf("trial %d hier=%v gamma=%d sigma=%d: distributed LASH %v != D-SEQ %v",
							trial, hier, gamma, sigma, m, want)
					}
				}
			}
		}
	}
}

// TestLashOnAmazonData checks distributed and sequential mining agree on a
// small generated AMZN-like dataset (hierarchy of depth 3).
func TestLashOnAmazonData(t *testing.T) {
	db, err := datagen.Amazon(datagen.AmazonConfig{NumCustomers: 80, Seed: 9, Forest: true})
	if err != nil {
		t.Fatal(err)
	}
	c := lash.Constraint{MaxGap: 1, MaxLength: 3, MinLength: 2, Hierarchy: true}
	want := miner.PatternsToMap(db.Dict, lash.MineSequential(db.Dict, db.Sequences, 10, c))
	got, metrics := lash.Mine(db.Dict, db.Sequences, 10, c, mapreduce.Config{MapWorkers: 4, ReduceWorkers: 4})
	if m := miner.PatternsToMap(db.Dict, got); !reflect.DeepEqual(m, want) {
		t.Fatalf("distributed %v != sequential %v", m, want)
	}
	if len(want) == 0 {
		t.Fatal("expected some frequent patterns on the AMZN-like data")
	}
	if metrics.ShuffleBytes == 0 || metrics.Partitions == 0 {
		t.Errorf("metrics not populated: %+v", metrics)
	}
}

func TestLashRewriteDropsIrrelevantItems(t *testing.T) {
	// The rewriting must not change results but must reduce communication.
	d := paperex.Dict()
	db := paperex.DB(d)
	c := lash.Constraint{MaxGap: 1, MaxLength: 3, MinLength: 2, Hierarchy: true}
	_, metrics := lash.Mine(d, db, 2, c, mapreduce.Config{MapWorkers: 1, ReduceWorkers: 1})
	var rawBytes int64
	for _, T := range db {
		rawBytes += int64(2*len(T) + 2)
	}
	// Every sequence is sent to several partitions, but rewriting should keep
	// the shuffled volume well below #pivots * full size.
	if metrics.ShuffleBytes >= rawBytes*int64(d.NumFrequent(2)) {
		t.Errorf("rewriting seems ineffective: shuffle %d bytes", metrics.ShuffleBytes)
	}
}
