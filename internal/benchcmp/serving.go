package benchcmp

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// The serving-latency gate. Where BENCH_baseline.json gates micro-benchmarks
// (ns/op of `go test -bench`), BENCH_serving.json gates the serving tier
// end to end: cmd/seqmine-bench drives a live seqmined over HTTP with the
// Table III workloads and records tail latencies, throughput and shed rates
// per workload, grouped into passes (local execution, cluster execution).
// CI re-runs the bench and fails when p99 regresses past the gate.
//
// Like the micro-benchmark gate, cross-machine comparability comes from a
// calibration workload: seqmine-bench runs the same fixed splitmix64 loop as
// BenchmarkCalibration and stores its per-iteration nanoseconds in the file,
// so the comparison can divide the machine-speed factor out of every latency
// ratio.

// ServingSchemaVersion is the current BENCH_serving.json schema.
const ServingSchemaVersion = 1

// ServingBaseline is the committed serving benchmark reference
// (BENCH_serving.json).
type ServingBaseline struct {
	Schema    int    `json:"schema"`
	Command   string `json:"command,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
	// CalibrationNS is the wall-clock nanoseconds of one calibration loop
	// iteration (the splitmix64 workload of BenchmarkCalibration) on the
	// machine that produced the samples.
	CalibrationNS float64 `json:"calibration_ns"`
	// Passes groups workload results by serving configuration, e.g. "local"
	// (in-process execution) and "cluster" (distributed over workers).
	Passes map[string]ServingPass `json:"passes"`
}

// ServingPass is the result of one bench pass: every workload's measurements.
type ServingPass struct {
	Workloads map[string]ServingWorkload `json:"workloads"`
}

// ServingWorkload is the measured outcome of one workload in one pass.
type ServingWorkload struct {
	// Requests/Errors/Shed count all issued requests, hard failures
	// (non-2xx other than 429), and shed requests (429).
	Requests int `json:"requests"`
	Errors   int `json:"errors"`
	Shed     int `json:"shed"`
	// P50MS/P99MS are latency percentiles over successful requests, in
	// milliseconds.
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	// ThroughputRPS is successful requests per second of wall time.
	ThroughputRPS float64 `json:"throughput_rps"`
	// ShedRate is Shed / Requests.
	ShedRate float64 `json:"shed_rate"`
	// ResultHash is the canonical hash of the workload's mining answer
	// (identical across runs unless mining output changed).
	ResultHash string `json:"result_hash,omitempty"`
}

// WriteServingBaseline serializes a serving baseline as indented JSON.
func WriteServingBaseline(w io.Writer, b *ServingBaseline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadServingBaseline parses BENCH_serving.json, failing with an actionable
// message on stale or foreign files (see ReadBaseline for the rationale).
func ReadServingBaseline(r io.Reader) (*ServingBaseline, error) {
	var b ServingBaseline
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("benchcmp: parsing serving baseline: %w", err)
	}
	switch {
	case b.Schema == 0:
		return nil, fmt.Errorf("benchcmp: serving baseline has no schema field — this is not a seqmine-bench " +
			"baseline; re-record it with scripts/serving-baseline.sh")
	case b.Schema > ServingSchemaVersion:
		return nil, fmt.Errorf("benchcmp: serving baseline schema %d is newer than this benchgate understands (max %d); "+
			"update the tool or re-record with scripts/serving-baseline.sh", b.Schema, ServingSchemaVersion)
	case b.Schema != ServingSchemaVersion:
		return nil, fmt.Errorf("benchcmp: unsupported serving baseline schema %d; re-record with scripts/serving-baseline.sh", b.Schema)
	}
	if len(b.Passes) == 0 {
		return nil, fmt.Errorf("benchcmp: serving baseline holds no passes; re-record with scripts/serving-baseline.sh")
	}
	if b.CalibrationNS <= 0 {
		return nil, fmt.Errorf("benchcmp: serving baseline has no calibration sample; re-record with scripts/serving-baseline.sh")
	}
	return &b, nil
}

// ServingResult is one workload's comparison against the serving baseline.
type ServingResult struct {
	Pass     string `json:"pass"`
	Workload string `json:"workload"`
	// BaselineP99MS / CurrentP99MS are raw (uncalibrated) milliseconds.
	BaselineP99MS float64 `json:"baseline_p99_ms"`
	CurrentP99MS  float64 `json:"current_p99_ms"`
	// Ratio is (current/baseline) p99 after dividing out the machine-speed
	// calibration scale.
	Ratio float64 `json:"ratio"`
	// BaselineHash/CurrentHash carry the result hashes when both sides
	// recorded one; HashMismatch flags a divergence (mining output changed).
	HashMismatch bool `json:"hash_mismatch,omitempty"`
	// ThroughputRatio is current/baseline successful-requests-per-second,
	// calibration-scaled the other way (informational, not gated).
	ThroughputRatio float64 `json:"throughput_ratio"`
}

// ServingReport is the outcome of a serving comparison.
type ServingReport struct {
	Results []ServingResult `json:"results"`
	// Geomean is the geometric mean of the p99 ratios.
	Geomean float64 `json:"p99_geomean"`
	// CalibrationScale is the machine-speed factor (current calibration ns /
	// baseline calibration ns) divided out of every ratio.
	CalibrationScale float64 `json:"calibration_scale"`
	// MissingInCurrent are baseline pass/workload pairs absent from the
	// current run (the gate refuses to pass on partial runs).
	MissingInCurrent []string `json:"missing_in_current,omitempty"`
	// MissingInBaseline are current pass/workload pairs with no baseline
	// entry (informational).
	MissingInBaseline []string `json:"missing_in_baseline,omitempty"`
	// HashMismatches lists pass/workload pairs whose result hashes diverged.
	HashMismatches []string `json:"hash_mismatches,omitempty"`
}

// CompareServing evaluates a current serving run against the baseline: every
// baseline workload must be present, p99 ratios are calibration-scaled, and
// result hashes (when recorded on both sides) must agree.
func CompareServing(baseline, current *ServingBaseline) (*ServingReport, error) {
	rep := &ServingReport{CalibrationScale: 1}
	if baseline.CalibrationNS > 0 && current.CalibrationNS > 0 {
		rep.CalibrationScale = current.CalibrationNS / baseline.CalibrationNS
	}
	logSum, n := 0.0, 0
	for _, pass := range sortedPassNames(baseline.Passes) {
		basePass := baseline.Passes[pass]
		curPass, ok := current.Passes[pass]
		if !ok {
			for _, wl := range sortedWorkloadNames(basePass.Workloads) {
				rep.MissingInCurrent = append(rep.MissingInCurrent, pass+"/"+wl)
			}
			continue
		}
		for _, wl := range sortedWorkloadNames(basePass.Workloads) {
			base := basePass.Workloads[wl]
			cur, ok := curPass.Workloads[wl]
			if !ok {
				rep.MissingInCurrent = append(rep.MissingInCurrent, pass+"/"+wl)
				continue
			}
			if base.P99MS <= 0 || cur.P99MS <= 0 {
				return nil, fmt.Errorf("benchcmp: non-positive p99 for %s/%s", pass, wl)
			}
			res := ServingResult{
				Pass:          pass,
				Workload:      wl,
				BaselineP99MS: base.P99MS,
				CurrentP99MS:  cur.P99MS,
				Ratio:         (cur.P99MS / base.P99MS) / rep.CalibrationScale,
			}
			if base.ThroughputRPS > 0 && cur.ThroughputRPS > 0 {
				res.ThroughputRatio = (cur.ThroughputRPS / base.ThroughputRPS) * rep.CalibrationScale
			}
			if base.ResultHash != "" && cur.ResultHash != "" && base.ResultHash != cur.ResultHash {
				res.HashMismatch = true
				rep.HashMismatches = append(rep.HashMismatches, pass+"/"+wl)
			}
			rep.Results = append(rep.Results, res)
			logSum += math.Log(res.Ratio)
			n++
		}
	}
	for _, pass := range sortedPassNames(current.Passes) {
		for _, wl := range sortedWorkloadNames(current.Passes[pass].Workloads) {
			basePass, ok := baseline.Passes[pass]
			if !ok {
				rep.MissingInBaseline = append(rep.MissingInBaseline, pass+"/"+wl)
				continue
			}
			if _, ok := basePass.Workloads[wl]; !ok {
				rep.MissingInBaseline = append(rep.MissingInBaseline, pass+"/"+wl)
			}
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("benchcmp: no serving workload overlaps the baseline")
	}
	rep.Geomean = math.Exp(logSum / float64(n))
	sort.Slice(rep.Results, func(i, j int) bool { return rep.Results[i].Ratio > rep.Results[j].Ratio })
	return rep, nil
}

// Format renders the serving report as an aligned table.
func (r *ServingReport) Format(w io.Writer, maxRatio float64) {
	fmt.Fprintf(w, "%-32s %14s %14s %8s %10s\n", "pass/workload", "base p99 ms", "cur p99 ms", "ratio", "thru ratio")
	for _, res := range r.Results {
		marker := ""
		if res.Ratio > maxRatio {
			marker = "  <-- above gate"
		}
		if res.HashMismatch {
			marker += "  <-- result hash diverged"
		}
		fmt.Fprintf(w, "%-32s %14.2f %14.2f %8.3f %10.3f%s\n",
			res.Pass+"/"+res.Workload, res.BaselineP99MS, res.CurrentP99MS, res.Ratio, res.ThroughputRatio, marker)
	}
	if r.CalibrationScale != 1 {
		fmt.Fprintf(w, "calibration scale (machine speed factor): %.3f\n", r.CalibrationScale)
	}
	for _, name := range r.MissingInCurrent {
		fmt.Fprintf(w, "warning: %s is in the baseline but was not run\n", name)
	}
	for _, name := range r.MissingInBaseline {
		fmt.Fprintf(w, "note: %s has no baseline entry (not gated)\n", name)
	}
	fmt.Fprintf(w, "p99 geomean ratio %.3f (gate %.3f)\n", r.Geomean, maxRatio)
}

// FormatMarkdown renders the serving report as a GitHub-flavored markdown
// table for CI step summaries.
func (r *ServingReport) FormatMarkdown(w io.Writer, maxRatio float64) {
	fmt.Fprintf(w, "### Serving benchmark comparison\n\n")
	fmt.Fprintf(w, "| pass/workload | baseline p99 ms | current p99 ms | p99 ratio | throughput ratio |\n")
	fmt.Fprintf(w, "|---|---:|---:|---:|---:|\n")
	for _, res := range r.Results {
		cell := fmt.Sprintf("%.3f", res.Ratio)
		if res.Ratio > maxRatio {
			cell = fmt.Sprintf("**%.3f** ⚠", res.Ratio)
		}
		if res.HashMismatch {
			cell += " (hash diverged)"
		}
		fmt.Fprintf(w, "| %s | %.2f | %.2f | %s | %.3f |\n",
			res.Pass+"/"+res.Workload, res.BaselineP99MS, res.CurrentP99MS, cell, res.ThroughputRatio)
	}
	fmt.Fprintf(w, "\np99 geomean **%.3f** (gate %.3f)", r.Geomean, maxRatio)
	if r.CalibrationScale != 1 {
		fmt.Fprintf(w, ", calibration scale %.3f", r.CalibrationScale)
	}
	fmt.Fprintf(w, "\n")
	for _, name := range r.MissingInCurrent {
		fmt.Fprintf(w, "\n⚠ `%s` is in the baseline but was not run\n", name)
	}
	for _, name := range r.HashMismatches {
		fmt.Fprintf(w, "\n⚠ `%s` result hash diverged from the baseline\n", name)
	}
}

func sortedPassNames(m map[string]ServingPass) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func sortedWorkloadNames(m map[string]ServingWorkload) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
