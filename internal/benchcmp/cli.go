package benchcmp

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
)

// RunCLI executes one benchgate subcommand (record, compare, emit,
// normalize) with injected streams, so cmd/benchgate stays a thin shim and
// the command logic is testable. It returns an error instead of exiting; a
// failing gate is an error.
func RunCLI(args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: benchgate record|compare|emit|normalize [flags]")
	}
	switch cmd := args[0]; cmd {
	case "record":
		return runRecord(args[1:], stdin, stdout)
	case "compare":
		return runCompare(args[1:], stdin, stdout)
	case "emit":
		return runEmit(args[1:], stdout)
	case "normalize":
		return runNormalize(args[1:], stdin, stdout)
	default:
		return fmt.Errorf("benchgate: unknown subcommand %q (want record, compare, emit or normalize)", cmd)
	}
}

func runRecord(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	out := fs.String("out", "BENCH_baseline.json", "baseline file to write")
	command := fs.String("command", "go test -run '^$' -bench . -benchtime=3x -count=5", "provenance note stored in the baseline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	samples, err := Parse(stdin)
	if err != nil {
		return err
	}
	b := &Baseline{
		Schema:     1,
		Command:    *command,
		GoVersion:  runtime.Version(),
		Benchmarks: samples,
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := WriteBaseline(f, b); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "recorded %d benchmarks to %s\n", len(samples), *out)
	for _, name := range SortedNames(samples) {
		fmt.Fprintf(stdout, "  %-60s median %12.0f ns/op (%d samples)\n", name, Median(samples[name]), len(samples[name]))
	}
	return nil
}

func runCompare(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "BENCH_baseline.json", "baseline file to compare against")
	maxRatio := fs.Float64("max-ratio", 1.15, "fail when the geomean time ratio exceeds this bound")
	calibration := fs.String("calibration", "BenchmarkCalibration", "machine-speed calibration benchmark (excluded from the geomean; empty disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	baseline, err := readBaselineFile(*baselinePath)
	if err != nil {
		return err
	}
	current, err := Parse(stdin)
	if err != nil {
		return err
	}
	rep, err := Compare(baseline, current, *calibration)
	if err != nil {
		return err
	}
	rep.Format(stdout, *maxRatio)
	if len(rep.MissingInCurrent) > 0 {
		return fmt.Errorf("benchgate: %d baseline benchmarks were not run; the gate cannot pass on partial results", len(rep.MissingInCurrent))
	}
	if rep.Geomean > *maxRatio {
		return fmt.Errorf("benchgate: geomean ratio %.3f exceeds the %.3f gate — performance regression", rep.Geomean, *maxRatio)
	}
	fmt.Fprintln(stdout, "benchgate: PASS")
	return nil
}

func runEmit(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("emit", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "BENCH_baseline.json", "baseline file to render")
	if err := fs.Parse(args); err != nil {
		return err
	}
	baseline, err := readBaselineFile(*baselinePath)
	if err != nil {
		return err
	}
	return EmitText(stdout, baseline)
}

func runNormalize(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("normalize", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	samples, err := Parse(stdin)
	if err != nil {
		return err
	}
	return EmitText(stdout, &Baseline{Schema: 1, Benchmarks: samples})
}

func readBaselineFile(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBaseline(f)
}
