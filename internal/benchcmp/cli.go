package benchcmp

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// toleranceFlags collects repeated -tolerance name=ratio flags.
type toleranceFlags map[string]float64

func (t toleranceFlags) String() string { return fmt.Sprintf("%v", map[string]float64(t)) }

func (t toleranceFlags) Set(v string) error {
	name, ratioStr, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=ratio, got %q", v)
	}
	ratio, err := strconv.ParseFloat(ratioStr, 64)
	if err != nil || ratio <= 0 {
		return fmt.Errorf("want a positive ratio in %q", v)
	}
	t[name] = ratio
	return nil
}

// RunCLI executes one benchgate subcommand (record, compare, emit,
// normalize) with injected streams, so cmd/benchgate stays a thin shim and
// the command logic is testable. It returns an error instead of exiting; a
// failing gate is an error.
func RunCLI(args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: benchgate record|compare|emit|normalize|serving [flags]")
	}
	switch cmd := args[0]; cmd {
	case "record":
		return runRecord(args[1:], stdin, stdout)
	case "compare":
		return runCompare(args[1:], stdin, stdout)
	case "emit":
		return runEmit(args[1:], stdout)
	case "normalize":
		return runNormalize(args[1:], stdin, stdout)
	case "serving":
		return runServing(args[1:], stdout)
	default:
		return fmt.Errorf("benchgate: unknown subcommand %q (want record, compare, emit, normalize or serving)", cmd)
	}
}

func runRecord(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	out := fs.String("out", "BENCH_baseline.json", "baseline file to write")
	command := fs.String("command", "go test -run '^$' -bench . -benchtime=3x -count=5", "provenance note stored in the baseline")
	tolerance := toleranceFlags{}
	fs.Var(tolerance, "tolerance", "per-benchmark time-ratio gate as name=ratio (repeatable): the benchmark leaves the geomeans and is gated individually at this bound")
	if err := fs.Parse(args); err != nil {
		return err
	}
	samples, err := ParseAll(stdin)
	if err != nil {
		return err
	}
	b := &Baseline{
		Schema:     2,
		Command:    *command,
		GoVersion:  runtime.Version(),
		Benchmarks: samples.Ns,
	}
	if len(samples.Bytes) > 0 {
		b.BytesPerOp = samples.Bytes
	}
	if len(samples.Allocs) > 0 {
		b.AllocsPerOp = samples.Allocs
	}
	if len(tolerance) > 0 {
		for name := range tolerance {
			if _, ok := samples.Ns[name]; !ok {
				return fmt.Errorf("benchgate: -tolerance names %s, which the recorded run does not contain", name)
			}
		}
		b.Tolerance = tolerance
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := WriteBaseline(f, b); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "recorded %d benchmarks to %s (schema %d)\n", len(samples.Ns), *out, b.Schema)
	for _, name := range SortedNames(samples.Ns) {
		fmt.Fprintf(stdout, "  %-60s median %12.0f ns/op", name, Median(samples.Ns[name]))
		if a, ok := samples.Allocs[name]; ok {
			fmt.Fprintf(stdout, " %10.0f allocs/op", Median(a))
		}
		fmt.Fprintf(stdout, " (%d samples)\n", len(samples.Ns[name]))
	}
	return nil
}

func runCompare(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "BENCH_baseline.json", "baseline file to compare against")
	maxRatio := fs.Float64("max-ratio", 1.15, "fail when the geomean time ratio exceeds this bound")
	maxAllocRatio := fs.Float64("max-alloc-ratio", 1.15, "fail when the geomean allocs/op ratio exceeds this bound (schema-2 baselines)")
	calibration := fs.String("calibration", "BenchmarkCalibration", "machine-speed calibration benchmark (excluded from the geomean; empty disables)")
	summaryPath := fs.String("summary", "", "append the comparison as a markdown table to this file (e.g. $GITHUB_STEP_SUMMARY; empty disables)")
	jsonPath := fs.String("json", "", "write the raw comparison report as JSON to this file (empty disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	baseline, err := readBaselineFile(*baselinePath)
	if err != nil {
		return err
	}
	current, err := ParseAll(stdin)
	if err != nil {
		return err
	}
	rep, err := CompareFull(baseline, current, *calibration)
	if err != nil {
		return err
	}
	rep.Format(stdout, *maxRatio)
	if *summaryPath != "" {
		f, err := os.OpenFile(*summaryPath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		rep.FormatMarkdown(f, *maxRatio, *maxAllocRatio)
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
	}
	if len(rep.MissingInCurrent) > 0 {
		return fmt.Errorf("benchgate: %d baseline benchmarks were not run; the gate cannot pass on partial results", len(rep.MissingInCurrent))
	}
	if rep.Geomean > *maxRatio {
		return fmt.Errorf("benchgate: geomean ratio %.3f exceeds the %.3f gate — performance regression", rep.Geomean, *maxRatio)
	}
	if rep.AllocGeomean > *maxAllocRatio {
		return fmt.Errorf("benchgate: allocation geomean ratio %.3f exceeds the %.3f gate — allocation regression", rep.AllocGeomean, *maxAllocRatio)
	}
	if fails := rep.GateFailures(); len(fails) > 0 {
		return fmt.Errorf("benchgate: %s", strings.Join(fails, "; "))
	}
	fmt.Fprintln(stdout, "benchgate: PASS")
	return nil
}

func runEmit(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("emit", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "BENCH_baseline.json", "baseline file to render")
	if err := fs.Parse(args); err != nil {
		return err
	}
	baseline, err := readBaselineFile(*baselinePath)
	if err != nil {
		return err
	}
	return EmitText(stdout, baseline)
}

func runNormalize(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("normalize", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	samples, err := ParseAll(stdin)
	if err != nil {
		return err
	}
	return EmitText(stdout, &Baseline{
		Schema:      2,
		Benchmarks:  samples.Ns,
		BytesPerOp:  samples.Bytes,
		AllocsPerOp: samples.Allocs,
	})
}

// runServing gates a seqmine-bench run (BENCH_serving.json produced with
// -out) against the committed serving baseline: p99 latency per workload,
// calibration-scaled, plus result-hash equivalence.
func runServing(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("serving", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "BENCH_serving.json", "committed serving baseline to compare against")
	currentPath := fs.String("current", "", "serving results of this run (seqmine-bench -out file; required)")
	maxRatio := fs.Float64("max-p99-ratio", 1.15, "fail when the geomean p99 ratio exceeds this bound")
	summaryPath := fs.String("summary", "", "append the comparison as a markdown table to this file (e.g. $GITHUB_STEP_SUMMARY; empty disables)")
	jsonPath := fs.String("json", "", "write the raw comparison report as JSON to this file (empty disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *currentPath == "" {
		return fmt.Errorf("benchgate serving: -current is required")
	}
	baseline, err := readServingFile(*baselinePath)
	if err != nil {
		return err
	}
	current, err := readServingFile(*currentPath)
	if err != nil {
		return err
	}
	rep, err := CompareServing(baseline, current)
	if err != nil {
		return err
	}
	rep.Format(stdout, *maxRatio)
	if *summaryPath != "" {
		f, err := os.OpenFile(*summaryPath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		rep.FormatMarkdown(f, *maxRatio)
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
	}
	if len(rep.MissingInCurrent) > 0 {
		return fmt.Errorf("benchgate: %d baseline serving workloads were not run; the gate cannot pass on partial results", len(rep.MissingInCurrent))
	}
	if len(rep.HashMismatches) > 0 {
		return fmt.Errorf("benchgate: %d workload result hashes diverged from the baseline — mining output changed "+
			"(re-record the baseline if intentional)", len(rep.HashMismatches))
	}
	if rep.Geomean > *maxRatio {
		return fmt.Errorf("benchgate: serving p99 geomean ratio %.3f exceeds the %.3f gate — latency regression", rep.Geomean, *maxRatio)
	}
	fmt.Fprintln(stdout, "benchgate: PASS")
	return nil
}

func readServingFile(path string) (*ServingBaseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadServingBaseline(f)
}

func readBaselineFile(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBaseline(f)
}
