package benchcmp_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"seqmine/internal/benchcmp"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: seqmine
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAlgorithms_N1/D-SEQ-8         	       3	   2568312 ns/op
BenchmarkAlgorithms_N1/D-SEQ-8         	       3	   2600000 ns/op
BenchmarkAlgorithms_N1/D-CAND-8        	       3	   4034567 ns/op
BenchmarkWordCount/workers-4-8         	       3	   1534256 ns/op
BenchmarkCalibration-8                 	       3	   8000000 ns/op
PASS
ok  	seqmine	101.882s
`

func TestParse(t *testing.T) {
	got, err := benchcmp.Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got["BenchmarkAlgorithms_N1/D-SEQ"]) != 2 {
		t.Errorf("D-SEQ samples = %v, want 2 entries under the normalized name", got)
	}
	// The GOMAXPROCS suffix is stripped but a trailing sub-benchmark number
	// is kept: workers-4 must survive.
	if len(got["BenchmarkWordCount/workers-4"]) != 1 {
		t.Errorf("workers-4 lost its identity: %v", benchcmp.SortedNames(got))
	}
	if _, err := benchcmp.Parse(strings.NewReader("no benchmarks here")); err == nil {
		t.Error("expected an error for output without benchmark lines")
	}
}

func TestMedian(t *testing.T) {
	if m := benchcmp.Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %v", m)
	}
	if m := benchcmp.Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("even median = %v", m)
	}
	if m := benchcmp.Median(nil); !math.IsNaN(m) {
		t.Errorf("empty median = %v, want NaN", m)
	}
}

func baseline(benches map[string][]float64) *benchcmp.Baseline {
	return &benchcmp.Baseline{Schema: 1, Benchmarks: benches}
}

func TestCompareGate(t *testing.T) {
	base := baseline(map[string][]float64{
		"BenchmarkA": {100, 100, 100},
		"BenchmarkB": {200, 200, 200},
	})
	// 10% regression on A, none on B: geomean ~1.049, under a 1.15 gate.
	rep, err := benchcmp.Compare(base, map[string][]float64{
		"BenchmarkA": {110},
		"BenchmarkB": {200},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Geomean > 1.15 || rep.Geomean < 1.0 {
		t.Errorf("geomean = %v, want ~1.049", rep.Geomean)
	}

	// 50% regression on both: geomean 1.5, over the gate.
	rep, err = benchcmp.Compare(base, map[string][]float64{
		"BenchmarkA": {150},
		"BenchmarkB": {300},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Geomean-1.5) > 1e-9 {
		t.Errorf("geomean = %v, want 1.5", rep.Geomean)
	}
}

func TestCompareTolerance(t *testing.T) {
	base := baseline(map[string][]float64{
		"BenchmarkA":     {100},
		"BenchmarkNoisy": {100},
	})
	base.Tolerance = map[string]float64{"BenchmarkNoisy": 2.0}
	base.AllocsPerOp = map[string][]float64{
		"BenchmarkA":     {9},
		"BenchmarkNoisy": {9},
	}

	// The noisy benchmark triples while staying out of both geomeans.
	rep, err := benchcmp.CompareFull(base, &benchcmp.Samples{
		Ns:     map[string][]float64{"BenchmarkA": {100}, "BenchmarkNoisy": {300}},
		Allocs: map[string][]float64{"BenchmarkA": {9}, "BenchmarkNoisy": {39}},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Geomean-1.0) > 1e-9 || math.Abs(rep.AllocGeomean-1.0) > 1e-9 {
		t.Errorf("geomeans = %v / %v, want 1.0: toleranced benchmarks must not contribute", rep.Geomean, rep.AllocGeomean)
	}
	if len(rep.Toleranced) != 1 || rep.Toleranced[0].Name != "BenchmarkNoisy" || math.Abs(rep.Toleranced[0].Ratio-3.0) > 1e-9 {
		t.Errorf("Toleranced = %+v, want BenchmarkNoisy at ratio 3.0", rep.Toleranced)
	}
	if len(rep.TolerancedAllocs) != 1 || math.Abs(rep.TolerancedAllocs[0].Ratio-4.0) > 1e-9 {
		t.Errorf("TolerancedAllocs = %+v, want BenchmarkNoisy at smoothed ratio 4.0", rep.TolerancedAllocs)
	}
	if fails := rep.GateFailures(); len(fails) != 2 {
		t.Errorf("GateFailures = %v, want both the time and alloc tolerance breaches", fails)
	}

	// Within tolerance: 1.8x would breach the 1.15 geomean gate but passes
	// the benchmark's own 2.0 bound.
	rep, err = benchcmp.CompareFull(base, &benchcmp.Samples{
		Ns:     map[string][]float64{"BenchmarkA": {100}, "BenchmarkNoisy": {180}},
		Allocs: map[string][]float64{"BenchmarkA": {9}, "BenchmarkNoisy": {9}},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	if fails := rep.GateFailures(); len(fails) != 0 {
		t.Errorf("GateFailures = %v, want none within tolerance", fails)
	}
}

func TestCompareCalibration(t *testing.T) {
	base := baseline(map[string][]float64{
		"BenchmarkA":           {100},
		"BenchmarkCalibration": {1000},
	})
	// The current machine is 2x slower across the board: the calibration
	// benchmark doubles too, so the normalized ratio is 1.
	rep, err := benchcmp.Compare(base, map[string][]float64{
		"BenchmarkA":           {200},
		"BenchmarkCalibration": {2000},
	}, "BenchmarkCalibration")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.CalibrationScale-2.0) > 1e-9 {
		t.Errorf("calibration scale = %v, want 2", rep.CalibrationScale)
	}
	if math.Abs(rep.Geomean-1.0) > 1e-9 {
		t.Errorf("calibrated geomean = %v, want 1", rep.Geomean)
	}
	for _, res := range rep.Results {
		if res.Name == "BenchmarkCalibration" {
			t.Error("the calibration benchmark must be excluded from the gated results")
		}
	}
}

func TestCompareMissing(t *testing.T) {
	base := baseline(map[string][]float64{"BenchmarkA": {100}, "BenchmarkGone": {50}})
	rep, err := benchcmp.Compare(base, map[string][]float64{"BenchmarkA": {100}, "BenchmarkNew": {10}}, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.MissingInCurrent) != 1 || rep.MissingInCurrent[0] != "BenchmarkGone" {
		t.Errorf("MissingInCurrent = %v", rep.MissingInCurrent)
	}
	if len(rep.MissingInBaseline) != 1 || rep.MissingInBaseline[0] != "BenchmarkNew" {
		t.Errorf("MissingInBaseline = %v", rep.MissingInBaseline)
	}
	if _, err := benchcmp.Compare(base, map[string][]float64{"BenchmarkNew": {10}}, ""); err == nil {
		t.Error("expected an error when nothing overlaps the baseline")
	}
}

func TestBaselineRoundTripAndEmit(t *testing.T) {
	samples, err := benchcmp.Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	b := &benchcmp.Baseline{Schema: 1, Command: "test", GoVersion: "go0.0", Benchmarks: samples}
	var buf bytes.Buffer
	if err := benchcmp.WriteBaseline(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := benchcmp.ReadBaseline(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != len(b.Benchmarks) {
		t.Errorf("round trip lost benchmarks: %d vs %d", len(got.Benchmarks), len(b.Benchmarks))
	}

	var text bytes.Buffer
	if err := benchcmp.EmitText(&text, got); err != nil {
		t.Fatal(err)
	}
	// The emitted text must parse back to the same normalized sample sets.
	reparsed, err := benchcmp.Parse(bytes.NewReader(text.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range got.Benchmarks {
		if len(reparsed[name]) != len(s) {
			t.Errorf("%s: emitted text reparsed to %d samples, want %d", name, len(reparsed[name]), len(s))
		}
	}

	if _, err := benchcmp.ReadBaseline(strings.NewReader(`{"schema":99}`)); err == nil {
		t.Error("expected an error for an unsupported schema")
	}
}

func TestCompareCalibrationMissingFromCurrent(t *testing.T) {
	base := baseline(map[string][]float64{
		"BenchmarkA":           {100},
		"BenchmarkCalibration": {1000},
	})
	// The baseline expects calibration; a current run without it must be
	// reported as missing so the CLI gate refuses the partial comparison.
	rep, err := benchcmp.Compare(base, map[string][]float64{"BenchmarkA": {100}}, "BenchmarkCalibration")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range rep.MissingInCurrent {
		if name == "BenchmarkCalibration" {
			found = true
		}
	}
	if !found {
		t.Errorf("MissingInCurrent = %v, want it to include the calibration benchmark", rep.MissingInCurrent)
	}
	if rep.CalibrationScale != 1 {
		t.Errorf("scale = %v, want the neutral 1 when calibration is absent", rep.CalibrationScale)
	}
}

const benchmemOutput = `goos: linux
BenchmarkAlgorithms_T3/DESQ-DFS-8   	     100	  10500000 ns/op	  373049 B/op	    3207 allocs/op
BenchmarkAlgorithms_T3/DESQ-DFS-8   	     100	  10600000 ns/op	  373100 B/op	    3210 allocs/op
BenchmarkZeroAlloc-8                	 1000000	      1000 ns/op	       0 B/op	       0 allocs/op
BenchmarkCalibration-8              	       3	   8000000 ns/op	      16 B/op	       1 allocs/op
PASS
`

func TestParseAllBenchmem(t *testing.T) {
	got, err := benchcmp.ParseAll(strings.NewReader(benchmemOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ns["BenchmarkAlgorithms_T3/DESQ-DFS"]) != 2 {
		t.Errorf("ns samples = %v", got.Ns)
	}
	if a := got.Allocs["BenchmarkAlgorithms_T3/DESQ-DFS"]; len(a) != 2 || a[0] != 3207 {
		t.Errorf("allocs samples = %v", a)
	}
	if b := got.Bytes["BenchmarkAlgorithms_T3/DESQ-DFS"]; len(b) != 2 || b[0] != 373049 {
		t.Errorf("bytes samples = %v", b)
	}
	if a := got.Allocs["BenchmarkZeroAlloc"]; len(a) != 1 || a[0] != 0 {
		t.Errorf("zero-alloc samples = %v", a)
	}
	// Output without -benchmem still parses, with empty allocation maps.
	plain, err := benchcmp.ParseAll(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Allocs) != 0 || len(plain.Bytes) != 0 {
		t.Errorf("plain output produced allocation samples: %v %v", plain.Allocs, plain.Bytes)
	}
}

func TestCompareFullAllocGate(t *testing.T) {
	base := &benchcmp.Baseline{
		Schema:     2,
		Benchmarks: map[string][]float64{"BenchmarkA": {100}, "BenchmarkZ": {50}},
		AllocsPerOp: map[string][]float64{
			"BenchmarkA": {1000},
			"BenchmarkZ": {0}, // zero-alloc benchmark: the +1 smoothing keeps it defined
		},
	}
	cur := &benchcmp.Samples{
		Ns:     map[string][]float64{"BenchmarkA": {100}, "BenchmarkZ": {50}},
		Allocs: map[string][]float64{"BenchmarkA": {2000}, "BenchmarkZ": {0}},
	}
	rep, err := benchcmp.CompareFull(base, cur, "")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Geomean-1.0) > 1e-9 {
		t.Errorf("time geomean = %v, want 1 (times unchanged)", rep.Geomean)
	}
	// A's smoothed ratio is 2001/1001 ≈ 2, Z's is 1; geomean ≈ sqrt(2).
	want := math.Sqrt(2001.0 / 1001.0)
	if math.Abs(rep.AllocGeomean-want) > 1e-9 {
		t.Errorf("alloc geomean = %v, want %v", rep.AllocGeomean, want)
	}
	if len(rep.AllocResults) != 2 || rep.AllocResults[0].Name != "BenchmarkA" {
		t.Errorf("alloc results = %+v, want BenchmarkA first (largest ratio)", rep.AllocResults)
	}

	// A current run without -benchmem must be flagged as partial.
	rep, err = benchcmp.CompareFull(base, &benchcmp.Samples{Ns: cur.Ns}, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.MissingInCurrent) != 2 {
		t.Errorf("MissingInCurrent = %v, want both alloc entries", rep.MissingInCurrent)
	}

	// Schema-1 baselines gate time only.
	rep, err = benchcmp.CompareFull(baseline(map[string][]float64{"BenchmarkA": {100}}), cur, "")
	if err != nil {
		t.Fatal(err)
	}
	if rep.AllocGeomean != 0 || len(rep.AllocResults) != 0 {
		t.Errorf("schema-1 baseline produced an alloc gate: %+v", rep)
	}
}

func TestSchema2RoundTrip(t *testing.T) {
	samples, err := benchcmp.ParseAll(strings.NewReader(benchmemOutput))
	if err != nil {
		t.Fatal(err)
	}
	b := &benchcmp.Baseline{
		Schema:      2,
		Benchmarks:  samples.Ns,
		BytesPerOp:  samples.Bytes,
		AllocsPerOp: samples.Allocs,
	}
	var buf bytes.Buffer
	if err := benchcmp.WriteBaseline(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := benchcmp.ReadBaseline(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.AllocsPerOp) != len(b.AllocsPerOp) || len(got.BytesPerOp) != len(b.BytesPerOp) {
		t.Errorf("schema-2 round trip lost allocation samples")
	}
	// Emitted text must carry the allocation columns back through ParseAll.
	var text bytes.Buffer
	if err := benchcmp.EmitText(&text, got); err != nil {
		t.Fatal(err)
	}
	reparsed, err := benchcmp.ParseAll(bytes.NewReader(text.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range got.AllocsPerOp {
		if len(reparsed.Allocs[name]) != len(s) {
			t.Errorf("%s: emitted text lost allocs/op samples", name)
		}
	}
}

func TestFormatMarkdown(t *testing.T) {
	base := &benchcmp.Baseline{
		Schema:      2,
		Benchmarks:  map[string][]float64{"BenchmarkA": {100}},
		AllocsPerOp: map[string][]float64{"BenchmarkA": {10}},
	}
	cur := &benchcmp.Samples{
		Ns:     map[string][]float64{"BenchmarkA": {200}},
		Allocs: map[string][]float64{"BenchmarkA": {30}},
	}
	rep, err := benchcmp.CompareFull(base, cur, "")
	if err != nil {
		t.Fatal(err)
	}
	var md bytes.Buffer
	rep.FormatMarkdown(&md, 1.15, 1.15)
	out := md.String()
	for _, want := range []string{"| benchmark |", "BenchmarkA", "⚠", "Allocation geomean"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown output missing %q:\n%s", want, out)
		}
	}
}

// TestFormatMarkdownMapPhaseSection: the map-phase kernel benchmarks are
// pulled out of the main tables into their own section of the step summary.
func TestFormatMarkdownMapPhaseSection(t *testing.T) {
	base := &benchcmp.Baseline{
		Schema: 2,
		Benchmarks: map[string][]float64{
			"BenchmarkAlgorithms_T3/D-SEQ":  {100},
			"BenchmarkPivotAnalyze_T3/Grid": {50},
			"BenchmarkMineCount":            {40},
		},
		AllocsPerOp: map[string][]float64{
			"BenchmarkPivotAnalyze_T3/Grid": {10},
		},
	}
	cur := &benchcmp.Samples{
		Ns: map[string][]float64{
			"BenchmarkAlgorithms_T3/D-SEQ":  {100},
			"BenchmarkPivotAnalyze_T3/Grid": {50},
			"BenchmarkMineCount":            {40},
		},
		Allocs: map[string][]float64{
			"BenchmarkPivotAnalyze_T3/Grid": {10},
		},
	}
	rep, err := benchcmp.CompareFull(base, cur, "")
	if err != nil {
		t.Fatal(err)
	}
	var md bytes.Buffer
	rep.FormatMarkdown(&md, 1.15, 1.15)
	out := md.String()
	if !strings.Contains(out, "#### Map-phase kernels") {
		t.Fatalf("markdown output missing the map-phase section:\n%s", out)
	}
	mapSection := out[strings.Index(out, "#### Map-phase kernels"):]
	mainSection := out[:strings.Index(out, "#### Map-phase kernels")]
	for _, name := range []string{"BenchmarkPivotAnalyze_T3/Grid", "BenchmarkMineCount"} {
		if strings.Contains(mainSection, name) {
			t.Errorf("%s should only appear in the map-phase section:\n%s", name, out)
		}
		if !strings.Contains(mapSection, name) {
			t.Errorf("%s missing from the map-phase section:\n%s", name, out)
		}
	}
	if !strings.Contains(mainSection, "BenchmarkAlgorithms_T3/D-SEQ") {
		t.Errorf("end-to-end benchmark missing from the main table:\n%s", out)
	}
}
