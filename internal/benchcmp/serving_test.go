package benchcmp

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func servingWL(p99 float64, hash string) ServingWorkload {
	return ServingWorkload{Requests: 100, P50MS: p99 / 2, P99MS: p99, ThroughputRPS: 50, ResultHash: hash}
}

func servingBaseline(cal float64, passes map[string]ServingPass) *ServingBaseline {
	return &ServingBaseline{Schema: ServingSchemaVersion, CalibrationNS: cal, Passes: passes}
}

func TestServingBaselineRoundTrip(t *testing.T) {
	b := servingBaseline(3.5, map[string]ServingPass{
		"local": {Workloads: map[string]ServingWorkload{"t1": servingWL(12, "abc")}},
	})
	var buf bytes.Buffer
	if err := WriteServingBaseline(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadServingBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.CalibrationNS != 3.5 || got.Passes["local"].Workloads["t1"].P99MS != 12 {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestReadServingBaselineRejectsStaleFiles(t *testing.T) {
	cases := []struct {
		name, json, want string
	}{
		{"no schema", `{"passes":{"local":{"workloads":{}}}}`, "no schema field"},
		{"future schema", `{"schema":99,"calibration_ns":1,"passes":{"local":{"workloads":{}}}}`, "newer than this benchgate"},
		{"no passes", `{"schema":1,"calibration_ns":1}`, "no passes"},
		{"no calibration", `{"schema":1,"passes":{"local":{"workloads":{}}}}`, "no calibration sample"},
		{"not json", `bench: 42 ns/op`, "parsing serving baseline"},
	}
	for _, c := range cases {
		_, err := ReadServingBaseline(strings.NewReader(c.json))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
		// Every rejection must tell the user how to fix it.
		if err != nil && c.name != "not json" && !strings.Contains(err.Error(), "serving-baseline.sh") {
			t.Errorf("%s: err %v does not point at scripts/serving-baseline.sh", c.name, err)
		}
	}
}

func TestCompareServingCalibrationScale(t *testing.T) {
	base := servingBaseline(2, map[string]ServingPass{
		"local": {Workloads: map[string]ServingWorkload{"t1": servingWL(10, "h")}},
	})
	// The current machine is 2x slower (calibration 4ns vs 2ns) and measured
	// 2x the latency: after dividing out machine speed the ratio is 1.0.
	cur := servingBaseline(4, map[string]ServingPass{
		"local": {Workloads: map[string]ServingWorkload{"t1": servingWL(20, "h")}},
	})
	rep, err := CompareServing(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CalibrationScale != 2 {
		t.Fatalf("scale = %v, want 2", rep.CalibrationScale)
	}
	if math.Abs(rep.Geomean-1) > 1e-9 {
		t.Fatalf("geomean = %v, want 1.0 after calibration", rep.Geomean)
	}
	if len(rep.Results) != 1 || math.Abs(rep.Results[0].Ratio-1) > 1e-9 {
		t.Fatalf("results = %+v", rep.Results)
	}
	if math.Abs(rep.Results[0].ThroughputRatio-2) > 1e-9 {
		t.Fatalf("throughput ratio = %v, want 2 (same rps on a 2x slower machine)", rep.Results[0].ThroughputRatio)
	}
}

func TestCompareServingFlagsMissingAndMismatched(t *testing.T) {
	base := servingBaseline(1, map[string]ServingPass{
		"local": {Workloads: map[string]ServingWorkload{
			"t1": servingWL(10, "aaa"),
			"t2": servingWL(10, "bbb"),
		}},
		"cluster": {Workloads: map[string]ServingWorkload{"t1": servingWL(30, "")}},
	})
	cur := servingBaseline(1, map[string]ServingPass{
		"local": {Workloads: map[string]ServingWorkload{
			"t1": servingWL(11, "zzz"), // hash diverged
			"t3": servingWL(5, ""),     // new workload, not in baseline
		}},
		// the whole cluster pass is missing
	})
	rep, err := CompareServing(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	wantMissing := []string{"local/t2", "cluster/t1"}
	if len(rep.MissingInCurrent) != 2 {
		t.Fatalf("missing in current = %v, want %v", rep.MissingInCurrent, wantMissing)
	}
	if len(rep.HashMismatches) != 1 || rep.HashMismatches[0] != "local/t1" {
		t.Fatalf("hash mismatches = %v, want [local/t1]", rep.HashMismatches)
	}
	if len(rep.MissingInBaseline) != 1 || rep.MissingInBaseline[0] != "local/t3" {
		t.Fatalf("missing in baseline = %v, want [local/t3]", rep.MissingInBaseline)
	}
	var buf bytes.Buffer
	rep.Format(&buf, 1.15)
	out := buf.String()
	for _, want := range []string{"local/t1", "result hash diverged", "in the baseline but was not run"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted report lacks %q:\n%s", want, out)
		}
	}
}

func TestCompareServingNoOverlapErrors(t *testing.T) {
	base := servingBaseline(1, map[string]ServingPass{
		"local": {Workloads: map[string]ServingWorkload{"t1": servingWL(10, "")}},
	})
	cur := servingBaseline(1, map[string]ServingPass{
		"other": {Workloads: map[string]ServingWorkload{"t9": servingWL(10, "")}},
	})
	if _, err := CompareServing(base, cur); err == nil {
		t.Fatal("disjoint runs should not produce a comparable report")
	}
}
