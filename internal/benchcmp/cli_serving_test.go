package benchcmp_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seqmine/internal/benchcmp"
)

func writeServing(t *testing.T, path string, cal float64, p99 map[string]float64, hash string) {
	t.Helper()
	wls := make(map[string]benchcmp.ServingWorkload, len(p99))
	for name, v := range p99 {
		wls[name] = benchcmp.ServingWorkload{
			Requests: 50, P50MS: v / 2, P99MS: v, ThroughputRPS: 20, ResultHash: hash,
		}
	}
	b := &benchcmp.ServingBaseline{
		Schema:        benchcmp.ServingSchemaVersion,
		CalibrationNS: cal,
		Passes:        map[string]benchcmp.ServingPass{"local": {Workloads: wls}},
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := benchcmp.WriteServingBaseline(f, b); err != nil {
		t.Fatal(err)
	}
}

func TestCLIServingGate(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_serving.json")
	current := filepath.Join(dir, "current.json")
	writeServing(t, baseline, 100, map[string]float64{"t1": 10, "t2": 40}, "h1")

	// Identical run passes, writes the summary table and the JSON report.
	writeServing(t, current, 100, map[string]float64{"t1": 10, "t2": 40}, "h1")
	summary := filepath.Join(dir, "summary.md")
	report := filepath.Join(dir, "report.json")
	out, err := runCLI(t, []string{"serving", "-baseline", baseline, "-current", current,
		"-summary", summary, "-json", report}, "")
	if err != nil {
		t.Fatalf("identical run: %v\n%s", err, out)
	}
	if !strings.Contains(out, "benchgate: PASS") {
		t.Errorf("output: %q", out)
	}
	md, err := os.ReadFile(summary)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "| local/t1 |") {
		t.Errorf("summary markdown lacks the workload row:\n%s", md)
	}
	var rep benchcmp.ServingReport
	buf, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 || rep.Geomean != 1 {
		t.Fatalf("report = %+v", rep)
	}

	// A uniform 2x latency regression fails the 1.15 gate.
	writeServing(t, current, 100, map[string]float64{"t1": 20, "t2": 80}, "h1")
	if _, err := runCLI(t, []string{"serving", "-baseline", baseline, "-current", current}, ""); err == nil ||
		!strings.Contains(err.Error(), "latency regression") {
		t.Fatalf("regressed run: err = %v, want latency regression failure", err)
	}

	// The same 2x on a machine whose calibration also doubled is machine
	// speed, not regression: it passes.
	writeServing(t, current, 200, map[string]float64{"t1": 20, "t2": 80}, "h1")
	if out, err := runCLI(t, []string{"serving", "-baseline", baseline, "-current", current}, ""); err != nil {
		t.Fatalf("calibrated run: %v\n%s", err, out)
	}

	// A diverged result hash fails even when latency is fine.
	writeServing(t, current, 100, map[string]float64{"t1": 10, "t2": 40}, "h2")
	if _, err := runCLI(t, []string{"serving", "-baseline", baseline, "-current", current}, ""); err == nil ||
		!strings.Contains(err.Error(), "mining output changed") {
		t.Fatalf("hash mismatch: err = %v, want output-changed failure", err)
	}

	// A partial run (missing workload) cannot pass the gate.
	writeServing(t, current, 100, map[string]float64{"t1": 10}, "h1")
	if _, err := runCLI(t, []string{"serving", "-baseline", baseline, "-current", current}, ""); err == nil ||
		!strings.Contains(err.Error(), "partial") {
		t.Fatalf("partial run: err = %v, want partial-results failure", err)
	}
}

func TestCLIServingRequiresCurrent(t *testing.T) {
	if _, err := runCLI(t, []string{"serving"}, ""); err == nil ||
		!strings.Contains(err.Error(), "-current is required") {
		t.Fatalf("err = %v", err)
	}
}

func TestCLIServingStaleBaselineIsActionable(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_serving.json")
	current := filepath.Join(dir, "current.json")
	writeServing(t, current, 100, map[string]float64{"t1": 10}, "")
	// A pre-schema file (e.g. a hand-written or foreign JSON) must fail with
	// a pointer at the re-record script, not a nil-map panic or a bare
	// unmarshal error.
	if err := os.WriteFile(baseline, []byte(`{"passes":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := runCLI(t, []string{"serving", "-baseline", baseline, "-current", current}, "")
	if err == nil || !strings.Contains(err.Error(), "serving-baseline.sh") {
		t.Fatalf("err = %v, want re-record guidance", err)
	}
}
