// Package benchcmp parses `go test -bench` output and gates performance
// regressions against a committed baseline (BENCH_baseline.json at the repo
// root). The CI bench-compare job records the baseline once per runner class
// and fails a change when the geometric mean of the per-benchmark time
// ratios (current / baseline) exceeds a configured bound.
//
// Because the committed baseline may have been produced on different
// hardware than the runner executing the comparison, the gate normalizes by
// a calibration benchmark — a fixed, dataset-independent CPU workload
// (BenchmarkCalibration in the root package) that scales with machine speed
// but not with the code under test. The calibration ratio divides out the
// constant machine factor and is excluded from the geomean.
package benchcmp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
)

// Baseline is the committed benchmark reference (BENCH_baseline.json).
type Baseline struct {
	// Schema versions the file format.
	Schema int `json:"schema"`
	// Command documents how the samples were produced.
	Command string `json:"command"`
	// GoVersion is the toolchain that produced the samples.
	GoVersion string `json:"go_version,omitempty"`
	// Benchmarks maps the normalized benchmark name (GOMAXPROCS suffix
	// stripped) to its ns/op samples.
	Benchmarks map[string][]float64 `json:"benchmarks"`
}

// benchLine matches one result line of `go test -bench` output, e.g.
//
//	BenchmarkAlgorithms_N1/D-SEQ-8   	     385	   3104660 ns/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)

// cpuSuffix strips the trailing -N GOMAXPROCS marker so runs from machines
// with different core counts compare under the same name.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// NormalizeName removes the GOMAXPROCS suffix from a benchmark name.
func NormalizeName(name string) string { return cpuSuffix.ReplaceAllString(name, "") }

// Parse reads `go test -bench` output and returns ns/op samples keyed by
// normalized benchmark name.
func Parse(r io.Reader) (map[string][]float64, error) {
	out := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchcmp: parsing %q: %w", sc.Text(), err)
		}
		name := NormalizeName(m[1])
		out[name] = append(out[name], ns)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchcmp: no benchmark result lines found")
	}
	return out, nil
}

// Median returns the middle sample (mean of the middle two for even counts).
func Median(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Result is one benchmark's comparison against the baseline.
type Result struct {
	Name     string
	Baseline float64 // median ns/op in the baseline
	Current  float64 // median ns/op in the current run
	Ratio    float64 // current/baseline after calibration scaling
}

// Report is the outcome of a comparison.
type Report struct {
	// Results holds the compared benchmarks, sorted by descending ratio.
	Results []Result
	// Geomean is the geometric mean of the ratios.
	Geomean float64
	// CalibrationScale is the machine-speed factor divided out of every
	// ratio (1 when no calibration benchmark was present on both sides).
	CalibrationScale float64
	// MissingInCurrent are baseline benchmarks absent from the current run.
	MissingInCurrent []string
	// MissingInBaseline are current benchmarks absent from the baseline
	// (informational — new benchmarks are not gated).
	MissingInBaseline []string
}

// Compare evaluates the current samples against the baseline, normalizing by
// calibration (the normalized name of the calibration benchmark; empty
// disables normalization). Only benchmarks present in the baseline are
// gated.
func Compare(baseline *Baseline, current map[string][]float64, calibration string) (*Report, error) {
	if len(baseline.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchcmp: baseline holds no benchmarks")
	}
	rep := &Report{CalibrationScale: 1}
	if calibration != "" {
		base, okB := baseline.Benchmarks[calibration]
		cur, okC := current[calibration]
		switch {
		case okB && okC:
			rep.CalibrationScale = Median(cur) / Median(base)
		case okB && !okC:
			// The baseline expects calibration but the current run skipped
			// it: without the scale, cross-machine ratios are meaningless.
			// Surface it as a missing benchmark so the gate refuses to pass
			// on the partial run instead of silently comparing raw ns/op.
			rep.MissingInCurrent = append(rep.MissingInCurrent, calibration)
		}
	}

	logSum, n := 0.0, 0
	for name, baseSamples := range baseline.Benchmarks {
		if name == calibration {
			continue
		}
		curSamples, ok := current[name]
		if !ok {
			rep.MissingInCurrent = append(rep.MissingInCurrent, name)
			continue
		}
		base, cur := Median(baseSamples), Median(curSamples)
		if base <= 0 || cur <= 0 {
			return nil, fmt.Errorf("benchcmp: non-positive median for %s", name)
		}
		ratio := (cur / base) / rep.CalibrationScale
		rep.Results = append(rep.Results, Result{Name: name, Baseline: base, Current: cur, Ratio: ratio})
		logSum += math.Log(ratio)
		n++
	}
	for name := range current {
		if name == calibration {
			continue
		}
		if _, ok := baseline.Benchmarks[name]; !ok {
			rep.MissingInBaseline = append(rep.MissingInBaseline, name)
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("benchcmp: no benchmark overlaps the baseline")
	}
	rep.Geomean = math.Exp(logSum / float64(n))
	sort.Slice(rep.Results, func(i, j int) bool { return rep.Results[i].Ratio > rep.Results[j].Ratio })
	sort.Strings(rep.MissingInCurrent)
	sort.Strings(rep.MissingInBaseline)
	return rep, nil
}

// Format renders the report as an aligned table.
func (r *Report) Format(w io.Writer, maxRatio float64) {
	fmt.Fprintf(w, "%-52s %14s %14s %8s\n", "benchmark", "baseline ns/op", "current ns/op", "ratio")
	for _, res := range r.Results {
		marker := ""
		if res.Ratio > maxRatio {
			marker = "  <-- above gate"
		}
		fmt.Fprintf(w, "%-52s %14.0f %14.0f %8.3f%s\n", res.Name, res.Baseline, res.Current, res.Ratio, marker)
	}
	if r.CalibrationScale != 1 {
		fmt.Fprintf(w, "calibration scale (machine speed factor): %.3f\n", r.CalibrationScale)
	}
	for _, name := range r.MissingInCurrent {
		fmt.Fprintf(w, "warning: %s is in the baseline but was not run\n", name)
	}
	for _, name := range r.MissingInBaseline {
		fmt.Fprintf(w, "note: %s has no baseline entry (not gated)\n", name)
	}
	fmt.Fprintf(w, "geomean ratio %.3f (gate %.3f)\n", r.Geomean, maxRatio)
}

// WriteBaseline serializes a baseline as deterministic, indented JSON.
func WriteBaseline(w io.Writer, b *Baseline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBaseline parses BENCH_baseline.json.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	var b Baseline
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("benchcmp: parsing baseline: %w", err)
	}
	if b.Schema != 1 {
		return nil, fmt.Errorf("benchcmp: unsupported baseline schema %d", b.Schema)
	}
	return &b, nil
}

// EmitText renders a baseline back into `go test -bench` text form (one line
// per sample), which tools like benchstat consume directly.
func EmitText(w io.Writer, b *Baseline) error {
	names := make([]string, 0, len(b.Benchmarks))
	for name := range b.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, ns := range b.Benchmarks[name] {
			// benchstat requires names to keep the Benchmark prefix; emit a
			// fixed -1 proc suffix so current and baseline align.
			if _, err := fmt.Fprintf(w, "%s-1 \t1\t%s ns/op\n", name, strconv.FormatFloat(ns, 'f', -1, 64)); err != nil {
				return err
			}
		}
	}
	return nil
}

// SortedNames lists a sample map's benchmark names.
func SortedNames(m map[string][]float64) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
