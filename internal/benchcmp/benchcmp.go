// Package benchcmp parses `go test -bench` output and gates performance
// regressions against a committed baseline (BENCH_baseline.json at the repo
// root). The CI bench-compare job records the baseline once per runner class
// and fails a change when the geometric mean of the per-benchmark time
// ratios (current / baseline) exceeds a configured bound.
//
// Because the committed baseline may have been produced on different
// hardware than the runner executing the comparison, the gate normalizes by
// a calibration benchmark — a fixed, dataset-independent CPU workload
// (BenchmarkCalibration in the root package) that scales with machine speed
// but not with the code under test. The calibration ratio divides out the
// constant machine factor and is excluded from the geomean.
package benchcmp

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed benchmark reference (BENCH_baseline.json).
//
// Schema 1 records ns/op samples only. Schema 2 adds the allocation metrics
// of `go test -benchmem` (B/op, allocs/op); readers accept both, so a
// schema-1 baseline still gates time until it is re-recorded.
type Baseline struct {
	// Schema versions the file format.
	Schema int `json:"schema"`
	// Command documents how the samples were produced.
	Command string `json:"command"`
	// GoVersion is the toolchain that produced the samples.
	GoVersion string `json:"go_version,omitempty"`
	// Benchmarks maps the normalized benchmark name (GOMAXPROCS suffix
	// stripped) to its ns/op samples.
	Benchmarks map[string][]float64 `json:"benchmarks"`
	// BytesPerOp maps the normalized benchmark name to its B/op samples
	// (schema 2; informational, not gated).
	BytesPerOp map[string][]float64 `json:"bytes_per_op,omitempty"`
	// AllocsPerOp maps the normalized benchmark name to its allocs/op
	// samples (schema 2; gated like time, but without calibration because
	// allocation counts are machine-independent).
	AllocsPerOp map[string][]float64 `json:"allocs_per_op,omitempty"`
	// Tolerance maps a normalized benchmark name to its own time-ratio
	// gate. A toleranced benchmark is excluded from both geomeans (its
	// noise would otherwise dominate the mean) and gated individually at
	// this bound instead — for inherently noisy wall-clock benchmarks like
	// the TCP shuffle-overlap runs, whose medians swing 2-3x between
	// otherwise identical runs. Recorded with `benchgate record
	// -tolerance name=ratio`.
	Tolerance map[string]float64 `json:"tolerance,omitempty"`
}

// Samples holds one benchmark run's parsed samples per metric, keyed by
// normalized benchmark name. Bytes and Allocs are empty when the run was not
// executed with -benchmem.
type Samples struct {
	Ns     map[string][]float64
	Bytes  map[string][]float64
	Allocs map[string][]float64
}

// benchLine matches one result line of `go test -bench` output, with the
// optional -benchmem columns, e.g.
//
//	BenchmarkAlgorithms_N1/D-SEQ-8   	     385	   3104660 ns/op	  373049 B/op	    3207 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op(?:\s+[0-9.]+ MB/s)?(?:\s+([0-9.]+) B/op)?(?:\s+([0-9]+) allocs/op)?`)

// cpuSuffix strips the trailing -N GOMAXPROCS marker so runs from machines
// with different core counts compare under the same name.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// NormalizeName removes the GOMAXPROCS suffix from a benchmark name.
func NormalizeName(name string) string { return cpuSuffix.ReplaceAllString(name, "") }

// Parse reads `go test -bench` output and returns ns/op samples keyed by
// normalized benchmark name.
func Parse(r io.Reader) (map[string][]float64, error) {
	s, err := ParseAll(r)
	if err != nil {
		return nil, err
	}
	return s.Ns, nil
}

// ParseAll reads `go test -bench` output and returns all samples it carries:
// ns/op always, plus B/op and allocs/op when the run used -benchmem.
func ParseAll(r io.Reader) (*Samples, error) {
	out := &Samples{
		Ns:     make(map[string][]float64),
		Bytes:  make(map[string][]float64),
		Allocs: make(map[string][]float64),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchcmp: parsing %q: %w", sc.Text(), err)
		}
		name := NormalizeName(m[1])
		out.Ns[name] = append(out.Ns[name], ns)
		if m[3] != "" {
			b, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				return nil, fmt.Errorf("benchcmp: parsing %q: %w", sc.Text(), err)
			}
			out.Bytes[name] = append(out.Bytes[name], b)
		}
		if m[4] != "" {
			a, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				return nil, fmt.Errorf("benchcmp: parsing %q: %w", sc.Text(), err)
			}
			out.Allocs[name] = append(out.Allocs[name], a)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out.Ns) == 0 {
		return nil, fmt.Errorf("benchcmp: no benchmark result lines found")
	}
	return out, nil
}

// Median returns the middle sample (mean of the middle two for even counts).
func Median(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Result is one benchmark's comparison against the baseline.
type Result struct {
	Name     string  `json:"name"`
	Baseline float64 `json:"baseline"` // median in the baseline
	Current  float64 `json:"current"`  // median in the current run
	Ratio    float64 `json:"ratio"`    // current/baseline (time: after calibration scaling; allocs: +1-smoothed)
}

// TolerancedResult is one toleranced benchmark's comparison: gated at its own
// bound instead of contributing to the geomean.
type TolerancedResult struct {
	Result
	// Gate is the benchmark's individual ratio bound (Baseline.Tolerance).
	Gate float64 `json:"gate"`
}

// Report is the outcome of a comparison.
type Report struct {
	// Results holds the compared time benchmarks, sorted by descending ratio.
	Results []Result `json:"time"`
	// Geomean is the geometric mean of the time ratios.
	Geomean float64 `json:"time_geomean"`
	// Toleranced holds the benchmarks with per-benchmark tolerance bounds
	// (excluded from Geomean; time ratios, after calibration scaling).
	Toleranced []TolerancedResult `json:"toleranced,omitempty"`
	// TolerancedAllocs holds the toleranced benchmarks' allocs/op
	// comparisons (excluded from AllocGeomean, gated at the same
	// per-benchmark bound; +1-smoothed like AllocResults).
	TolerancedAllocs []TolerancedResult `json:"toleranced_allocs,omitempty"`
	// CalibrationScale is the machine-speed factor divided out of every
	// time ratio (1 when no calibration benchmark was present on both sides).
	CalibrationScale float64 `json:"calibration_scale"`
	// AllocResults holds the compared allocs/op benchmarks (schema-2
	// baselines only), sorted by descending ratio. Allocation counts are
	// machine-independent, so no calibration applies; ratios are smoothed as
	// (current+1)/(baseline+1) so zero-alloc benchmarks stay well-defined.
	AllocResults []Result `json:"allocs,omitempty"`
	// AllocGeomean is the geometric mean of the smoothed allocation ratios
	// (0 when the baseline carries no allocation samples).
	AllocGeomean float64 `json:"allocs_geomean,omitempty"`
	// MissingInCurrent are baseline benchmarks absent from the current run.
	MissingInCurrent []string `json:"missing_in_current,omitempty"`
	// MissingInBaseline are current benchmarks absent from the baseline
	// (informational — new benchmarks are not gated).
	MissingInBaseline []string `json:"missing_in_baseline,omitempty"`
}

// Compare evaluates the current samples against the baseline, normalizing by
// calibration (the normalized name of the calibration benchmark; empty
// disables normalization). Only benchmarks present in the baseline are
// gated.
func Compare(baseline *Baseline, current map[string][]float64, calibration string) (*Report, error) {
	if len(baseline.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchcmp: baseline holds no benchmarks")
	}
	rep := &Report{CalibrationScale: 1}
	if calibration != "" {
		base, okB := baseline.Benchmarks[calibration]
		cur, okC := current[calibration]
		switch {
		case okB && okC:
			rep.CalibrationScale = Median(cur) / Median(base)
		case okB && !okC:
			// The baseline expects calibration but the current run skipped
			// it: without the scale, cross-machine ratios are meaningless.
			// Surface it as a missing benchmark so the gate refuses to pass
			// on the partial run instead of silently comparing raw ns/op.
			rep.MissingInCurrent = append(rep.MissingInCurrent, calibration)
		}
	}

	logSum, n := 0.0, 0
	for name, baseSamples := range baseline.Benchmarks {
		if name == calibration {
			continue
		}
		curSamples, ok := current[name]
		if !ok {
			rep.MissingInCurrent = append(rep.MissingInCurrent, name)
			continue
		}
		base, cur := Median(baseSamples), Median(curSamples)
		if base <= 0 || cur <= 0 {
			return nil, fmt.Errorf("benchcmp: non-positive median for %s", name)
		}
		ratio := (cur / base) / rep.CalibrationScale
		res := Result{Name: name, Baseline: base, Current: cur, Ratio: ratio}
		if tol, ok := baseline.Tolerance[name]; ok && tol > 0 {
			rep.Toleranced = append(rep.Toleranced, TolerancedResult{Result: res, Gate: tol})
			continue
		}
		rep.Results = append(rep.Results, res)
		logSum += math.Log(ratio)
		n++
	}
	for name := range current {
		if name == calibration {
			continue
		}
		if _, ok := baseline.Benchmarks[name]; !ok {
			rep.MissingInBaseline = append(rep.MissingInBaseline, name)
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("benchcmp: no benchmark overlaps the baseline")
	}
	rep.Geomean = math.Exp(logSum / float64(n))
	sort.Slice(rep.Results, func(i, j int) bool { return rep.Results[i].Ratio > rep.Results[j].Ratio })
	sort.Slice(rep.Toleranced, func(i, j int) bool { return rep.Toleranced[i].Ratio > rep.Toleranced[j].Ratio })
	sort.Strings(rep.MissingInCurrent)
	sort.Strings(rep.MissingInBaseline)
	return rep, nil
}

// GateFailures lists the toleranced benchmarks whose ratio exceeds their own
// bound, as ready-to-print failure messages. The geomean gates do not cover
// these benchmarks, so a caller enforcing the gates must check this too.
func (r *Report) GateFailures() []string {
	var fails []string
	for _, res := range r.Toleranced {
		if res.Ratio > res.Gate {
			fails = append(fails, fmt.Sprintf("%s time ratio %.3f exceeds its %.3f tolerance", res.Name, res.Ratio, res.Gate))
		}
	}
	for _, res := range r.TolerancedAllocs {
		if res.Ratio > res.Gate {
			fails = append(fails, fmt.Sprintf("%s allocs/op ratio %.3f exceeds its %.3f tolerance", res.Name, res.Ratio, res.Gate))
		}
	}
	return fails
}

// CompareFull is Compare plus the allocation gate of schema-2 baselines: when
// the baseline carries allocs/op samples, the current run's allocs/op are
// compared benchmark by benchmark (no calibration — allocation counts do not
// depend on machine speed) and their +1-smoothed geomean lands in
// Report.AllocGeomean. A baseline benchmark with allocation samples whose
// current run lacks them (the run skipped -benchmem) is reported missing so
// the gate refuses partial comparisons. Schema-1 baselines gate time only.
func CompareFull(baseline *Baseline, current *Samples, calibration string) (*Report, error) {
	rep, err := Compare(baseline, current.Ns, calibration)
	if err != nil {
		return nil, err
	}
	if len(baseline.AllocsPerOp) == 0 {
		return rep, nil
	}
	logSum, n := 0.0, 0
	for name, baseSamples := range baseline.AllocsPerOp {
		if name == calibration {
			continue
		}
		curSamples, ok := current.Allocs[name]
		if !ok {
			rep.MissingInCurrent = append(rep.MissingInCurrent, name+" (allocs/op)")
			continue
		}
		base, cur := Median(baseSamples), Median(curSamples)
		if base < 0 || cur < 0 {
			return nil, fmt.Errorf("benchcmp: negative allocation median for %s", name)
		}
		ratio := (cur + 1) / (base + 1)
		res := Result{Name: name, Baseline: base, Current: cur, Ratio: ratio}
		if tol, ok := baseline.Tolerance[name]; ok && tol > 0 {
			rep.TolerancedAllocs = append(rep.TolerancedAllocs, TolerancedResult{Result: res, Gate: tol})
			continue
		}
		rep.AllocResults = append(rep.AllocResults, res)
		logSum += math.Log(ratio)
		n++
	}
	if n > 0 {
		rep.AllocGeomean = math.Exp(logSum / float64(n))
	}
	sort.Slice(rep.AllocResults, func(i, j int) bool { return rep.AllocResults[i].Ratio > rep.AllocResults[j].Ratio })
	sort.Slice(rep.TolerancedAllocs, func(i, j int) bool { return rep.TolerancedAllocs[i].Ratio > rep.TolerancedAllocs[j].Ratio })
	sort.Strings(rep.MissingInCurrent)
	return rep, nil
}

// Format renders the report as an aligned table.
func (r *Report) Format(w io.Writer, maxRatio float64) {
	fmt.Fprintf(w, "%-52s %14s %14s %8s\n", "benchmark", "baseline ns/op", "current ns/op", "ratio")
	for _, res := range r.Results {
		marker := ""
		if res.Ratio > maxRatio {
			marker = "  <-- above gate"
		}
		fmt.Fprintf(w, "%-52s %14.0f %14.0f %8.3f%s\n", res.Name, res.Baseline, res.Current, res.Ratio, marker)
	}
	for _, res := range r.Toleranced {
		marker := ""
		if res.Ratio > res.Gate {
			marker = "  <-- above tolerance"
		}
		fmt.Fprintf(w, "%-52s %14.0f %14.0f %8.3f (toleranced, gate %.2f)%s\n", res.Name, res.Baseline, res.Current, res.Ratio, res.Gate, marker)
	}
	if r.CalibrationScale != 1 {
		fmt.Fprintf(w, "calibration scale (machine speed factor): %.3f\n", r.CalibrationScale)
	}
	if len(r.AllocResults) > 0 || len(r.TolerancedAllocs) > 0 {
		fmt.Fprintf(w, "%-52s %14s %14s %8s\n", "benchmark", "base allocs/op", "cur allocs/op", "ratio")
		for _, res := range r.AllocResults {
			marker := ""
			if res.Ratio > maxRatio {
				marker = "  <-- above gate"
			}
			fmt.Fprintf(w, "%-52s %14.0f %14.0f %8.3f%s\n", res.Name, res.Baseline, res.Current, res.Ratio, marker)
		}
		for _, res := range r.TolerancedAllocs {
			marker := ""
			if res.Ratio > res.Gate {
				marker = "  <-- above tolerance"
			}
			fmt.Fprintf(w, "%-52s %14.0f %14.0f %8.3f (toleranced, gate %.2f)%s\n", res.Name, res.Baseline, res.Current, res.Ratio, res.Gate, marker)
		}
	}
	for _, name := range r.MissingInCurrent {
		fmt.Fprintf(w, "warning: %s is in the baseline but was not run\n", name)
	}
	for _, name := range r.MissingInBaseline {
		fmt.Fprintf(w, "note: %s has no baseline entry (not gated)\n", name)
	}
	fmt.Fprintf(w, "geomean ratio %.3f (gate %.3f)\n", r.Geomean, maxRatio)
	if r.AllocGeomean > 0 {
		fmt.Fprintf(w, "allocation geomean ratio %.3f (gate %.3f)\n", r.AllocGeomean, maxRatio)
	}
}

// mapPhaseBench reports whether name is one of the map-side kernel benchmarks
// (pivot analysis and candidate counting) that the CI step summary calls out
// in their own table section, separate from the end-to-end runs.
func mapPhaseBench(name string) bool {
	for _, prefix := range []string{"BenchmarkPivotAnalyze", "BenchmarkAnalyze", "BenchmarkMineCount"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// markdownTable renders one comparison table, returning how many rows it wrote.
func markdownTable(w io.Writer, results []Result, unit string, gate float64, keep func(string) bool) int {
	rows := 0
	for _, res := range results {
		if !keep(res.Name) {
			continue
		}
		if rows == 0 {
			fmt.Fprintf(w, "| benchmark | baseline %s | current %s | ratio |\n", unit, unit)
			fmt.Fprintf(w, "|---|---:|---:|---:|\n")
		}
		rows++
		cell := fmt.Sprintf("%.3f", res.Ratio)
		if res.Ratio > gate {
			cell = fmt.Sprintf("**%.3f** ⚠", res.Ratio)
		}
		fmt.Fprintf(w, "| %s | %.0f | %.0f | %s |\n", res.Name, res.Baseline, res.Current, cell)
	}
	return rows
}

// FormatMarkdown renders the report as GitHub-flavored markdown tables, for
// publication as a CI step summary. Ratios above the gates are bolded and
// flagged; the map-phase kernel benchmarks get their own section below the
// end-to-end tables.
func (r *Report) FormatMarkdown(w io.Writer, maxRatio, maxAllocRatio float64) {
	notMapPhase := func(name string) bool { return !mapPhaseBench(name) }
	fmt.Fprintf(w, "### Benchmark comparison\n\n")
	markdownTable(w, r.Results, "ns/op", maxRatio, notMapPhase)
	fmt.Fprintf(w, "\nTime geomean **%.3f** (gate %.3f)", r.Geomean, maxRatio)
	if r.CalibrationScale != 1 {
		fmt.Fprintf(w, ", calibration scale %.3f", r.CalibrationScale)
	}
	fmt.Fprintf(w, "\n")
	if len(r.AllocResults) > 0 {
		fmt.Fprintf(w, "\n")
		markdownTable(w, r.AllocResults, "allocs/op", maxAllocRatio, notMapPhase)
		fmt.Fprintf(w, "\nAllocation geomean **%.3f** (gate %.3f)\n", r.AllocGeomean, maxAllocRatio)
	}
	var mapMd bytes.Buffer
	n := markdownTable(&mapMd, r.Results, "ns/op", maxRatio, mapPhaseBench)
	if n > 0 {
		mapMd.WriteString("\n")
	}
	n += markdownTable(&mapMd, r.AllocResults, "allocs/op", maxAllocRatio, mapPhaseBench)
	if n > 0 {
		fmt.Fprintf(w, "\n#### Map-phase kernels\n\n%s", mapMd.String())
	}
	if len(r.Toleranced) > 0 || len(r.TolerancedAllocs) > 0 {
		fmt.Fprintf(w, "\n#### Toleranced benchmarks (own gates, excluded from geomeans)\n\n")
		fmt.Fprintf(w, "| benchmark | metric | baseline | current | ratio | gate |\n|---|---|---:|---:|---:|---:|\n")
		tolRow := func(res TolerancedResult, unit string) {
			cell := fmt.Sprintf("%.3f", res.Ratio)
			if res.Ratio > res.Gate {
				cell = fmt.Sprintf("**%.3f** ⚠", res.Ratio)
			}
			fmt.Fprintf(w, "| %s | %s | %.0f | %.0f | %s | %.2f |\n", res.Name, unit, res.Baseline, res.Current, cell, res.Gate)
		}
		for _, res := range r.Toleranced {
			tolRow(res, "ns/op")
		}
		for _, res := range r.TolerancedAllocs {
			tolRow(res, "allocs/op")
		}
	}
	for _, name := range r.MissingInCurrent {
		fmt.Fprintf(w, "\n⚠ `%s` is in the baseline but was not run\n", name)
	}
	for _, name := range r.MissingInBaseline {
		fmt.Fprintf(w, "\n`%s` has no baseline entry (not gated)\n", name)
	}
}

// WriteBaseline serializes a baseline as deterministic, indented JSON.
func WriteBaseline(w io.Writer, b *Baseline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBaseline parses BENCH_baseline.json. A stale or foreign file fails with
// a message that says what to do about it, not just that a number was wrong:
// the gate's most common operational failure is a baseline left behind by an
// older (or newer) toolchain, and "unsupported schema 3" alone sends people
// diffing JSON instead of re-recording.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	var b Baseline
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("benchcmp: parsing baseline: %w", err)
	}
	switch {
	case b.Schema == 0:
		return nil, fmt.Errorf("benchcmp: baseline has no schema field — this is not a benchgate baseline " +
			"(or predates schema versioning); re-record it with `benchgate record`")
	case b.Schema > 2:
		return nil, fmt.Errorf("benchcmp: baseline schema %d is newer than this benchgate understands (max 2); "+
			"update the tool or re-record the baseline with `benchgate record`", b.Schema)
	case b.Schema != 1 && b.Schema != 2:
		return nil, fmt.Errorf("benchcmp: unsupported baseline schema %d; re-record with `benchgate record`", b.Schema)
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchcmp: baseline (schema %d) holds no benchmarks; re-record with `benchgate record`", b.Schema)
	}
	return &b, nil
}

// EmitText renders a baseline back into `go test -bench` text form (one line
// per sample), which tools like benchstat consume directly.
func EmitText(w io.Writer, b *Baseline) error {
	names := make([]string, 0, len(b.Benchmarks))
	for name := range b.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bytesS, allocsS := b.BytesPerOp[name], b.AllocsPerOp[name]
		for i, ns := range b.Benchmarks[name] {
			// benchstat requires names to keep the Benchmark prefix; emit a
			// fixed -1 proc suffix so current and baseline align.
			if _, err := fmt.Fprintf(w, "%s-1 \t1\t%s ns/op", name, strconv.FormatFloat(ns, 'f', -1, 64)); err != nil {
				return err
			}
			if i < len(bytesS) {
				if _, err := fmt.Fprintf(w, "\t%.0f B/op", bytesS[i]); err != nil {
					return err
				}
			}
			if i < len(allocsS) {
				if _, err := fmt.Fprintf(w, "\t%.0f allocs/op", allocsS[i]); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// SortedNames lists a sample map's benchmark names.
func SortedNames(m map[string][]float64) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
