package benchcmp_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seqmine/internal/benchcmp"
)

// runCLI invokes the benchgate CLI with captured stdout.
func runCLI(t *testing.T, args []string, stdin string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	err := benchcmp.RunCLI(args, strings.NewReader(stdin), &out)
	return out.String(), err
}

func TestCLIRecordCompareEmit(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")

	out, err := runCLI(t, []string{"record", "-out", baseline, "-command", "test run"}, sampleOutput)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	if !strings.Contains(out, "recorded 4 benchmarks") {
		t.Errorf("record output: %q", out)
	}
	if _, err := os.Stat(baseline); err != nil {
		t.Fatalf("baseline file: %v", err)
	}

	// Identical samples compare with geomean 1.0 and pass the gate.
	out, err = runCLI(t, []string{"compare", "-baseline", baseline}, sampleOutput)
	if err != nil {
		t.Fatalf("compare: %v\n%s", err, out)
	}
	if !strings.Contains(out, "benchgate: PASS") {
		t.Errorf("compare output: %q", out)
	}

	// A 2x regression on every benchmark fails the 1.15 gate (the slowdown
	// does not touch the calibration benchmark, so it cannot hide there).
	regressed := strings.NewReplacer(
		"2568312 ns/op", "5136624 ns/op",
		"2600000 ns/op", "5200000 ns/op",
		"4034567 ns/op", "8069134 ns/op",
		"1534256 ns/op", "3068512 ns/op",
	).Replace(sampleOutput)
	out, err = runCLI(t, []string{"compare", "-baseline", baseline}, regressed)
	if err == nil {
		t.Fatalf("compare must fail on a 2x regression; output:\n%s", out)
	}
	if !strings.Contains(err.Error(), "performance regression") {
		t.Errorf("unexpected failure: %v", err)
	}

	// A partial run cannot pass the gate.
	partial := "BenchmarkAlgorithms_N1/D-SEQ-8 \t3\t2568312 ns/op\n"
	if _, err := runCLI(t, []string{"compare", "-baseline", baseline}, partial); err == nil {
		t.Error("compare must fail when baseline benchmarks were not run")
	}

	// emit renders the baseline back as parseable benchmark text.
	out, err = runCLI(t, []string{"emit", "-baseline", baseline}, "")
	if err != nil {
		t.Fatalf("emit: %v", err)
	}
	reparsed, err := benchcmp.Parse(strings.NewReader(out))
	if err != nil {
		t.Fatalf("emit output does not parse: %v", err)
	}
	if len(reparsed) != 4 {
		t.Errorf("emit reparsed to %d benchmarks, want 4", len(reparsed))
	}
}

func TestCLINormalize(t *testing.T) {
	out, err := runCLI(t, []string{"normalize"}, sampleOutput)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "-8 ") {
		t.Errorf("normalize kept GOMAXPROCS suffixes:\n%s", out)
	}
	if !strings.Contains(out, "BenchmarkWordCount/workers-4-1 ") {
		t.Errorf("normalize lost the sub-benchmark identity:\n%s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	if _, err := runCLI(t, nil, ""); err == nil {
		t.Error("no subcommand must error")
	}
	if _, err := runCLI(t, []string{"bogus"}, ""); err == nil {
		t.Error("unknown subcommand must error")
	}
	if _, err := runCLI(t, []string{"compare", "-baseline", "/nonexistent.json"}, sampleOutput); err == nil {
		t.Error("missing baseline must error")
	}
	if _, err := runCLI(t, []string{"record", "-out", filepath.Join(t.TempDir(), "b.json")}, "no benchmarks"); err == nil {
		t.Error("record without benchmark lines must error")
	}
	if _, err := runCLI(t, []string{"emit", "-baseline", "/nonexistent.json"}, ""); err == nil {
		t.Error("emit with a missing baseline must error")
	}
}
