package mapreduce

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// KeyBatch is the unit of communication of the shuffle phase: all values of
// one key produced (and combined) by one map worker. Batching by key keeps
// the in-process loopback zero-copy — the worker's value slice is handed to
// the reducer side without copying — and amortizes the key encoding over the
// values on wire transports.
type KeyBatch[K comparable, V any] struct {
	Key    K
	Values []V
}

// Exchange routes the shuffle batches of one BSP job between peers. A peer is
// one participant of the job — the single local process for the in-process
// loopback, or one of N processes connected by a wire transport. The engine
// sends every combined batch to the peer that owns the batch's key and
// reduces exactly the keys it receives.
//
// Send is safe for concurrent use. Recv is called from a single receiver
// goroutine that runs concurrently with the senders (an implementation may
// therefore apply backpressure in Send without risking deadlock). RunExchange
// never sends to Self — self-destined batches are accumulated locally by the
// engine (and bounded by its spill buffer, see ShuffleConfig) — so wire
// implementations may reject dst == Self.
type Exchange[K comparable, V any] interface {
	// NumPeers returns the number of peers participating in the exchange.
	NumPeers() int
	// Self returns this peer's index in [0, NumPeers).
	Self() int
	// Send routes one batch to peer dst.
	Send(dst int, b KeyBatch[K, V]) error
	// CloseSend flushes outstanding batches and signals end-of-stream to
	// every peer, including this one. No Send may follow CloseSend.
	CloseSend() error
	// Recv returns the next batch destined for this peer. It returns io.EOF
	// after every peer (including this one) has closed its sending side.
	Recv() (KeyBatch[K, V], error)
}

// WireMetrics is implemented by exchanges that move real bytes (wire
// transports). When the engine detects it, Metrics.ShuffleBytes reports the
// actual bytes written to the transport instead of the SizeOf estimate.
type WireMetrics interface {
	// WireBytesOut returns the total bytes this peer has written to the
	// transport so far (frames and protocol overhead; self-deliveries, which
	// never touch the transport, are excluded).
	WireBytesOut() int64
}

// ---------------------------------------------------------------------------
// In-process loopback
// ---------------------------------------------------------------------------

// loopbackMsg is either a batch or an end-of-stream marker from one sender.
type loopbackMsg[K comparable, V any] struct {
	batch KeyBatch[K, V]
	eos   bool
}

// loopbackPeer is one endpoint of an in-memory exchange group. Batches are
// passed by reference (zero-copy).
type loopbackPeer[K comparable, V any] struct {
	self    int
	inboxes []chan loopbackMsg[K, V]
	open    int // senders that have not yet delivered eos to us
	closed  bool
}

// NewLoopbackGroup returns n exchanges connected in memory: a batch sent to
// peer i is received by group[i]. With n == 1 this is the default in-process
// shuffle of Run. The group applies bounded buffering, so senders experience
// the same backpressure discipline as on a wire transport.
func NewLoopbackGroup[K comparable, V any](n int) []Exchange[K, V] {
	if n <= 0 {
		n = 1
	}
	inboxes := make([]chan loopbackMsg[K, V], n)
	for i := range inboxes {
		inboxes[i] = make(chan loopbackMsg[K, V], 256)
	}
	group := make([]Exchange[K, V], n)
	for i := range group {
		group[i] = &loopbackPeer[K, V]{self: i, inboxes: inboxes, open: n}
	}
	return group
}

func (l *loopbackPeer[K, V]) NumPeers() int { return len(l.inboxes) }
func (l *loopbackPeer[K, V]) Self() int     { return l.self }

func (l *loopbackPeer[K, V]) Send(dst int, b KeyBatch[K, V]) error {
	if dst < 0 || dst >= len(l.inboxes) {
		return fmt.Errorf("mapreduce: send to unknown peer %d of %d", dst, len(l.inboxes))
	}
	l.inboxes[dst] <- loopbackMsg[K, V]{batch: b}
	return nil
}

func (l *loopbackPeer[K, V]) CloseSend() error {
	if l.closed {
		return errors.New("mapreduce: CloseSend called twice")
	}
	l.closed = true
	for _, inbox := range l.inboxes {
		inbox <- loopbackMsg[K, V]{eos: true}
	}
	return nil
}

func (l *loopbackPeer[K, V]) Recv() (KeyBatch[K, V], error) {
	for l.open > 0 {
		msg := <-l.inboxes[l.self]
		if msg.eos {
			l.open--
			continue
		}
		return msg.batch, nil
	}
	return KeyBatch[K, V]{}, io.EOF
}

// ---------------------------------------------------------------------------
// Frame codec and wire adapter
// ---------------------------------------------------------------------------

// ByteExchange is the peer-to-peer fabric implemented by wire transports
// (internal/transport): it moves opaque frames between peers. Send and Recv
// follow the same contract as Exchange. Frames sent to Self never reach a
// ByteExchange — the frame adapter short-circuits them in memory.
type ByteExchange interface {
	NumPeers() int
	Self() int
	Send(dst int, frame []byte) error
	CloseSend() error
	Recv() ([]byte, error)
	// WireBytesOut returns the actual bytes written to the transport so far.
	WireBytesOut() int64
}

// FrameCodec serializes the keys and values of one job for a wire transport.
// Distributed algorithms (internal/dseq, internal/dcand) define one codec per
// communicated value type. All Read functions take the buffer and a position
// and return the decoded value with the next position.
type FrameCodec[K comparable, V any] struct {
	AppendKey   func(buf []byte, k K) []byte
	ReadKey     func(data []byte, pos int) (K, int, error)
	AppendValue func(buf []byte, v V) []byte
	ReadValue   func(data []byte, pos int) (V, int, error)
}

// EncodeBatch appends the wire form of one batch: key, value count, values.
func (c FrameCodec[K, V]) EncodeBatch(buf []byte, b KeyBatch[K, V]) []byte {
	buf = c.AppendKey(buf, b.Key)
	buf = AppendUvarint(buf, uint64(len(b.Values)))
	for _, v := range b.Values {
		buf = c.AppendValue(buf, v)
	}
	return buf
}

// DecodeBatch decodes one frame produced by EncodeBatch. Trailing bytes are
// an error.
func (c FrameCodec[K, V]) DecodeBatch(frame []byte) (KeyBatch[K, V], error) {
	b, _, err := c.decodeBatchKeyed(frame)
	return b, err
}

// frameHeader is the parsed prefix of one encoded batch frame: the encoded-key
// length and the value count, located without decoding any value. valsStart is
// the offset of the first encoded value byte. It is the unit the raw shuffle
// spine works in — receive-side grouping, spill segments and the reduce merge
// all operate on these (keyBytes, count, value-bytes) triples and only decode
// values when a fully assembled group reaches the reduce callback.
type frameHeader struct {
	keyLen    int
	count     int
	valsStart int
}

// parseFrameHeader splits one batch frame into its encoded key, value count
// and value-byte region. Values are not decoded; the only validation is the
// structural minimum (every encoded value occupies at least one byte), so a
// frame with corrupt value bytes surfaces its error at decode time.
func (c FrameCodec[K, V]) parseFrameHeader(frame []byte) (frameHeader, error) {
	var h frameHeader
	_, keyLen, err := c.ReadKey(frame, 0)
	if err != nil {
		return h, err
	}
	count, pos, err := ReadUvarint(frame, keyLen)
	if err != nil {
		return h, err
	}
	if count > uint64(len(frame)-pos) {
		return h, fmt.Errorf("mapreduce: batch claims %d values in %d bytes", count, len(frame)-pos)
	}
	if count == 0 && pos != len(frame) {
		return h, fmt.Errorf("mapreduce: %d trailing bytes after empty batch", len(frame)-pos)
	}
	h.keyLen = keyLen
	h.count = int(count)
	h.valsStart = pos
	return h, nil
}

// appendValues decodes count encoded values from raw into vals. The byte
// region must hold exactly count values (the concatenation of one or more
// frames' value regions of the same key).
func (c FrameCodec[K, V]) appendValues(vals []V, raw []byte, count int) ([]V, error) {
	pos := 0
	for i := 0; i < count; i++ {
		v, np, err := c.ReadValue(raw, pos)
		if err != nil {
			return vals, err
		}
		pos = np
		vals = append(vals, v)
	}
	if pos != len(raw) {
		return vals, fmt.Errorf("mapreduce: %d trailing bytes after %d values", len(raw)-pos, count)
	}
	return vals, nil
}

// decodeBatchKeyed is DecodeBatch returning also the length of the frame's
// encoded-key prefix, so callers that need the raw key bytes (the spill
// merge orders runs by them) decode each frame exactly once.
func (c FrameCodec[K, V]) decodeBatchKeyed(frame []byte) (KeyBatch[K, V], int, error) {
	var b KeyBatch[K, V]
	k, keyLen, err := c.ReadKey(frame, 0)
	if err != nil {
		return b, 0, err
	}
	b.Key = k
	pos := keyLen
	count, pos, err := ReadUvarint(frame, pos)
	if err != nil {
		return b, 0, err
	}
	// Every value occupies at least one byte, so a count larger than the
	// remaining payload is corrupt (and would otherwise allocate unboundedly).
	if count > uint64(len(frame)-pos) {
		return b, 0, fmt.Errorf("mapreduce: batch claims %d values in %d bytes", count, len(frame)-pos)
	}
	b.Values = make([]V, 0, count)
	for i := uint64(0); i < count; i++ {
		v, np, err := c.ReadValue(frame, pos)
		if err != nil {
			return b, 0, err
		}
		pos = np
		b.Values = append(b.Values, v)
	}
	if pos != len(frame) {
		return b, 0, fmt.Errorf("mapreduce: %d trailing bytes after batch", len(frame)-pos)
	}
	return b, keyLen, nil
}

// RecordSize returns the exact encoded size of a single-record batch for
// (k, v). Jobs use it as an honest SizeOf: in-process runs then estimate
// ShuffleBytes with the same encoding a wire transport would use.
func (c FrameCodec[K, V]) RecordSize(k K, v V) int {
	return len(c.AppendKey(nil, k)) + UvarintLen(1) + len(c.AppendValue(nil, v))
}

// frameExchange adapts a ByteExchange to an Exchange[K, V] with a FrameCodec.
// Self-destined batches never reach it: the engine accumulates them locally
// (bounded by its spill buffer, see ShuffleConfig), which replaced the
// unbounded self-delivery queue this adapter used to keep — local data stays
// local without a queue that could wedge senders against the receiver or
// grow without limit. Backpressure is a remote concern only and is applied
// by the transport through TCP flow control.
//
// Encoding state is per destination peer, so the streaming shuffle's
// dedicated sender goroutines (one per peer) encode and send concurrently
// without contending on a shared buffer; the transport below serializes
// frames per connection.
type frameExchange[K comparable, V any] struct {
	bx    ByteExchange
	codec FrameCodec[K, V]
	peers []peerEncoder
}

// peerEncoder is one destination's serialized encode scratch state.
type peerEncoder struct {
	mu  sync.Mutex
	buf []byte
}

// NewFrameExchange wires a codec to a byte transport. The returned exchange
// implements WireMetrics, so RunExchange reports true wire bytes.
func NewFrameExchange[K comparable, V any](bx ByteExchange, codec FrameCodec[K, V]) Exchange[K, V] {
	return &frameExchange[K, V]{bx: bx, codec: codec, peers: make([]peerEncoder, bx.NumPeers())}
}

func (e *frameExchange[K, V]) NumPeers() int       { return e.bx.NumPeers() }
func (e *frameExchange[K, V]) Self() int           { return e.bx.Self() }
func (e *frameExchange[K, V]) WireBytesOut() int64 { return e.bx.WireBytesOut() }

func (e *frameExchange[K, V]) Send(dst int, b KeyBatch[K, V]) error {
	if dst == e.bx.Self() {
		return errors.New("mapreduce: self-delivery must be short-circuited by the caller")
	}
	if dst < 0 || dst >= len(e.peers) {
		return fmt.Errorf("mapreduce: send to unknown peer %d of %d", dst, len(e.peers))
	}
	pe := &e.peers[dst]
	pe.mu.Lock()
	pe.buf = e.codec.EncodeBatch(pe.buf[:0], b)
	err := e.bx.Send(dst, pe.buf)
	pe.mu.Unlock()
	return err
}

func (e *frameExchange[K, V]) CloseSend() error { return e.bx.CloseSend() }

func (e *frameExchange[K, V]) Recv() (KeyBatch[K, V], error) {
	frame, err := e.bx.Recv()
	if err != nil {
		return KeyBatch[K, V]{}, err // io.EOF once every remote peer closed
	}
	return e.codec.DecodeBatch(frame)
}

// FrameSource is implemented by exchanges that can surface received batches
// as raw encoded frames. When the engine detects it (and the job has a
// codec), the receive side skips DecodeBatch entirely: frames are grouped by
// their encoded-key prefix and values stay encoded until the reduce callback.
type FrameSource interface {
	// RecvFrame returns the next batch frame destined for this peer, in
	// EncodeBatch wire form. It returns io.EOF after every peer has closed
	// its sending side. The returned slice is owned by the caller.
	RecvFrame() ([]byte, error)
}

// FrameSender is implemented by exchanges that accept pre-encoded batch
// frames. The streaming shuffle uses it to relay send-overflow segments —
// whose on-disk record form is exactly the wire form — without the
// decode→re-encode round trip of Send.
type FrameSender interface {
	// SendFrame routes one EncodeBatch-form frame to peer dst. The frame is
	// not retained after the call returns.
	SendFrame(dst int, frame []byte) error
}

func (e *frameExchange[K, V]) RecvFrame() ([]byte, error) { return e.bx.Recv() }

func (e *frameExchange[K, V]) SendFrame(dst int, frame []byte) error {
	if dst == e.bx.Self() {
		return errors.New("mapreduce: self-delivery must be short-circuited by the caller")
	}
	if dst < 0 || dst >= len(e.peers) {
		return fmt.Errorf("mapreduce: send to unknown peer %d of %d", dst, len(e.peers))
	}
	return e.bx.Send(dst, frame)
}

// ---------------------------------------------------------------------------
// Wire primitives shared by the codecs
// ---------------------------------------------------------------------------

// AppendUvarint appends v in LEB128 form.
func AppendUvarint(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

// ReadUvarint decodes a LEB128 varint at pos and returns the value and the
// next position.
func ReadUvarint(data []byte, pos int) (uint64, int, error) {
	var v uint64
	var shift uint
	for {
		if pos >= len(data) {
			return 0, 0, errors.New("mapreduce: truncated varint")
		}
		b := data[pos]
		pos++
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, pos, nil
		}
		shift += 7
		if shift > 63 {
			return 0, 0, errors.New("mapreduce: varint overflow")
		}
	}
}

// UvarintLen returns the encoded size of v in bytes.
func UvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
