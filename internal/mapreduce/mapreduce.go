// Package mapreduce provides a small in-process bulk synchronous parallel
// engine with exactly one round of communication: a map phase over input
// splits, an optional per-worker combine, a hash-partitioned shuffle and a
// reduce phase over partitions. It stands in for the Spark/MapReduce clusters
// used in the paper; the distributed FSM algorithms (D-SEQ, D-CAND, NAIVE,
// SEMI-NAIVE) are expressed against this engine exactly as in Alg. 1 of the
// paper. The engine instruments shuffle volume and per-stage wall-clock
// times, which the experiment harness reports.
package mapreduce

import (
	"context"
	"errors"
	"io"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"seqmine/internal/obs"
)

// Config controls the parallelism of a job. The zero value uses one worker
// per available CPU for both stages and keeps the shuffle in memory.
type Config struct {
	// MapWorkers is the number of concurrent map tasks ("executor cores").
	MapWorkers int
	// ReduceWorkers is the number of concurrent reduce tasks.
	ReduceWorkers int
	// Shuffle bounds the memory of the shuffle: past Shuffle.SpillThreshold
	// buffered bytes, partitions spill to sorted temp-file segments that the
	// reduce phase merge-streams (receive side), and with
	// Shuffle.SendBufferBytes > 0 map workers stream through bounded
	// per-peer send buffers instead of a phase barrier (map side). Both
	// require the job to carry a Codec. The zero value keeps everything in
	// memory and shuffles after the map barrier.
	Shuffle ShuffleConfig
	// Context, when non-nil, aborts the job cooperatively: map workers stop
	// consuming inputs at input granularity, the shuffle barrier still
	// completes (peers receive this peer's end frame, so a canceled peer
	// never wedges the others), the reduce phase is skipped and the run
	// returns the context's error. A re-executed task can therefore restart
	// promptly without leaking goroutines or CPU into the dead attempt. On a
	// wire exchange the caller should additionally close the exchange on
	// cancellation so a barrier blocked on a dead peer fails fast.
	//
	// Context also carries the job's observability state (internal/obs): a
	// recorder attached with obs.WithRecorder receives mapreduce.run /
	// mapreduce.map / mapreduce.shuffle / mapreduce.spill / mapreduce.reduce
	// spans, and a remote trace context attached with obs.ContextWithRemote
	// parents them under the caller's trace.
	Context context.Context
	// Obs, when non-nil, receives engine histograms: spill-segment sizes
	// (seqmine_spill_segment_bytes) and streaming send-buffer occupancy at
	// flush time (seqmine_send_buffer_occupancy_bytes). Nil skips the
	// instrumentation entirely.
	Obs *obs.Registry
}

func (c Config) normalized() Config {
	if c.MapWorkers <= 0 {
		c.MapWorkers = runtime.NumCPU()
	}
	if c.ReduceWorkers <= 0 {
		c.ReduceWorkers = runtime.NumCPU()
	}
	if c.Context == nil {
		c.Context = context.Background()
	}
	return c
}

// Metrics describes one job execution.
type Metrics struct {
	// MapTime is the wall-clock duration of the map phase (including the
	// combine step; with a streaming shuffle the combiner runs on every
	// send-buffer flush inside this window).
	MapTime time.Duration
	// ShuffleTime is the wall-clock duration of the shuffle (sending plus
	// draining the exchange until the end-frame barrier). In barrier mode it
	// is a sub-interval of ReduceTime; with a streaming shuffle it starts
	// with the map phase and overlaps MapTime — that overlap is the point.
	ShuffleTime time.Duration
	// ReduceTime is the wall-clock duration after the map phase: the shuffle
	// tail (barrier mode: the whole shuffle) plus the reduce phase.
	ReduceTime time.Duration
	// MapOutputRecords counts key/value pairs emitted by mappers before
	// combining.
	MapOutputRecords int64
	// ShuffleRecords counts key/value pairs after combining, i.e. the records
	// that are communicated.
	ShuffleRecords int64
	// ShuffleBytes is the serialized size of the communicated records. On an
	// in-process run it is estimated by the job's SizeOf function; on a wire
	// exchange it is the actual number of bytes written to the transport
	// (see WireMetrics).
	ShuffleBytes int64
	// RemoteShuffle reports whether ShuffleBytes measured real transport
	// traffic rather than the SizeOf estimate.
	RemoteShuffle bool
	// Partitions is the number of distinct keys.
	Partitions int64
	// MaxPartitionRecords is the largest number of records received by a
	// single key (partition skew indicator).
	MaxPartitionRecords int64
	// SpilledBytes is the number of shuffle bytes this peer wrote to on-disk
	// spill segments — receive-side sorted runs plus map-side send-buffer
	// overflow (0 when the whole shuffle fit in memory). With
	// ShuffleConfig.Compression it is the compressed on-disk size.
	SpilledBytes int64
	// SpillCount is the number of spill segments written.
	SpillCount int64
	// StreamedBatches counts the key batches flushed out of the bounded
	// per-peer send buffers by the streaming shuffle (0 in barrier mode).
	StreamedBatches int64
	// SendOverflowSegments counts the flushed runs the streaming shuffle
	// pushed to on-disk overflow segments because a sender lagged (a subset
	// of SpillCount; 0 in barrier mode or when the network kept up).
	SendOverflowSegments int64
	// StreamPeers breaks StreamedBatches and SendOverflowSegments down per
	// destination peer (remote destinations only; empty in barrier mode).
	// The cluster worker copies these counters into the per-peer transport
	// stats of its job result.
	StreamPeers []PeerStreamStats `json:"stream_peers,omitempty"`
}

// PeerStreamStats is the streaming shuffle's activity toward one destination
// peer.
type PeerStreamStats struct {
	// Peer is the destination's peer index.
	Peer int `json:"peer"`
	// StreamedBatches counts key batches flushed toward the peer.
	StreamedBatches int64 `json:"streamed_batches"`
	// OverflowSegments counts flushed runs that overflowed to disk because
	// the peer's sender lagged.
	OverflowSegments int64 `json:"overflow_segments"`
}

// Total returns the total wall-clock time of the job.
func (m Metrics) Total() time.Duration { return m.MapTime + m.ReduceTime }

// Job describes a one-round BSP computation. I is the input record type, K
// the partition key, V the communicated value and O the output type.
type Job[I any, K comparable, V any, O any] struct {
	// Map processes one input record and emits key/value pairs.
	Map func(input I, emit func(K, V))
	// Combine (optional) merges the values of one key emitted by a single map
	// worker before they are shuffled, mirroring MapReduce combiners.
	Combine func(key K, values []V) []V
	// Reduce processes one partition (all values of one key) and emits output
	// records.
	Reduce func(key K, values []V, emit func(O))
	// Hash assigns keys to reduce workers. When nil, all keys go to a single
	// reduce worker.
	Hash func(K) uint64
	// SizeOf estimates the serialized size of one key/value pair in bytes for
	// the shuffle-size metric. When nil, every record counts one byte.
	SizeOf func(K, V) int
	// Codec serializes keys and values. It is required for spilling
	// (Config.Shuffle) — spill segments use the same wire encoding a remote
	// shuffle would — and optional otherwise.
	Codec *FrameCodec[K, V]
}

// Run executes the job on the given inputs and returns the concatenated
// reduce outputs (in unspecified order) together with execution metrics. The
// shuffle runs over the in-process loopback exchange (zero-copy). Run panics
// on failure; an in-process run can only fail when Config.Shuffle bounds the
// shuffle (a misconfigured job or disk errors while spilling or streaming) —
// callers that enable those should prefer RunLocal and handle the error.
func Run[I any, K comparable, V any, O any](inputs []I, cfg Config, job Job[I, K, V, O]) ([]O, Metrics) {
	out, metrics, err := RunLocal(inputs, cfg, job)
	if err != nil {
		panic("mapreduce: in-process run failed: " + err.Error())
	}
	return out, metrics
}

// RunLocal is Run with error reporting: identical execution, but spill
// failures (the only way an in-process run can fail) are returned instead of
// panicking.
func RunLocal[I any, K comparable, V any, O any](inputs []I, cfg Config, job Job[I, K, V, O]) ([]O, Metrics, error) {
	return RunExchange(inputs, cfg, job, NewLoopbackGroup[K, V](1)[0])
}

// RunExchange executes this peer's share of the job: it maps the local
// inputs, routes every combined batch through the exchange to the peer that
// owns the batch's key (job.Hash modulo the peer count) and reduces the keys
// it receives. The returned outputs are the local partition's share of the
// job output; on a single-peer exchange they are the complete output.
//
// With more than one peer, every peer must call RunExchange with the same
// job over its own input split; job.Hash is then mandatory so key ownership
// is consistent across peers.
func RunExchange[I any, K comparable, V any, O any](inputs []I, cfg Config, job Job[I, K, V, O], ex Exchange[K, V]) ([]O, Metrics, error) {
	cfg = cfg.normalized()
	var metrics Metrics
	npeers := ex.NumPeers()
	if npeers > 1 && job.Hash == nil {
		return nil, metrics, errors.New("mapreduce: multi-peer jobs require a Hash function")
	}
	if (cfg.Shuffle.Enabled() || cfg.Shuffle.Streaming()) && job.Codec == nil {
		return nil, metrics, errShuffleNeedsCodec
	}
	runCtx, runSpan := obs.StartSpan(cfg.Context, "mapreduce.run",
		obs.Int("peer", int64(ex.Self())), obs.Int("peers", int64(npeers)))
	cfg.Context = runCtx
	defer runSpan.End()

	// The accumulator gathers the key batches this peer receives (or owns
	// itself); it is bounded by the spill threshold. The receiver drains the
	// exchange into it concurrently with the senders, so bounded transports
	// can apply backpressure without deadlock. It starts before the map
	// phase: peers running a streaming shuffle deliver while this peer still
	// maps, and even in barrier mode a peer that finishes mapping early may
	// start sending.
	//
	// When the exchange can surface raw frames (a wire exchange with a
	// codec), the receiver never decodes: frames are grouped by their
	// encoded-key prefix and values stay encoded until the reduce callback.
	acc := newShuffleAccumulator(runCtx, cfg.Shuffle, cfg.Obs, job.Codec, job.SizeOf)
	acc.combine = job.Combine
	defer acc.cleanup()
	frames, rawRecv := ex.(FrameSource)
	rawRecv = rawRecv && job.Codec != nil
	recvDone := make(chan error, 1)
	go pprof.Do(runCtx, pprof.Labels("seqmine_stage", "shuffle_recv"), func(context.Context) {
		var accErr error
		for {
			if rawRecv {
				frame, err := frames.RecvFrame()
				if err == io.EOF {
					recvDone <- accErr
					return
				}
				if err != nil {
					if accErr == nil {
						accErr = err
					}
					recvDone <- accErr
					return
				}
				if accErr != nil {
					continue // keep draining so remote senders are not wedged
				}
				accErr = acc.addRaw(frame)
				continue
			}
			b, err := ex.Recv()
			if err == io.EOF {
				recvDone <- accErr
				return
			}
			if err != nil {
				if accErr == nil {
					accErr = err
				}
				recvDone <- accErr
				return
			}
			if accErr != nil {
				continue // keep draining so remote senders are not wedged
			}
			accErr = acc.add(b)
		}
	})

	// ---- Map + shuffle (up to the end-frame barrier) ----------------------
	// On a wire exchange the SizeOf estimate would be discarded in favor of
	// the measured byte count, so the send paths skip computing it.
	_, wire := ex.(WireMetrics)
	var (
		mapEnd     time.Time
		shuffleErr error
	)
	if cfg.Shuffle.Streaming() {
		mapEnd, shuffleErr = runStreamingMapShuffle(inputs, cfg, job, ex, acc, recvDone, wire, &metrics)
	} else {
		mapEnd, shuffleErr = runBarrierMapShuffle(inputs, cfg, job, ex, acc, recvDone, wire, &metrics)
	}
	// The map and shuffle phases are recorded retroactively from the metrics
	// the engine already measures (the span is free when nothing listens). In
	// barrier mode the shuffle follows the map phase; streaming overlaps it.
	mapStart := mapEnd.Add(-metrics.MapTime)
	obs.Observe(runCtx, "mapreduce.map", mapStart, metrics.MapTime,
		obs.Int("records_out", metrics.MapOutputRecords))
	shuffleStart := mapEnd
	if cfg.Shuffle.Streaming() {
		shuffleStart = mapStart
	}
	shuffleAttrs := []obs.Attr{obs.Int("records", metrics.ShuffleRecords)}
	if shuffleErr != nil {
		shuffleAttrs = append(shuffleAttrs, obs.String("error", shuffleErr.Error()))
	}
	obs.Observe(runCtx, "mapreduce.shuffle", shuffleStart, metrics.ShuffleTime, shuffleAttrs...)
	if shuffleErr != nil {
		metrics.ReduceTime = time.Since(mapEnd)
		return nil, metrics, shuffleErr
	}
	if wm, ok := ex.(WireMetrics); ok {
		metrics.ShuffleBytes = wm.WireBytesOut()
		metrics.RemoteShuffle = true
	}
	accSpilled, accCount := acc.stats()
	metrics.SpilledBytes += accSpilled
	metrics.SpillCount += accCount

	// ---- Reduce phase ------------------------------------------------------
	if err := cfg.Context.Err(); err != nil {
		metrics.ReduceTime = time.Since(mapEnd)
		return nil, metrics, err
	}
	var out []O
	var reduceErr error
	reduceStart := time.Now()
	if acc.spilled() {
		out, reduceErr = reduceStreaming(cfg, job, acc, &metrics)
	} else {
		out, reduceErr = reduceInMemory(cfg, job, acc, &metrics)
	}
	obs.Observe(runCtx, "mapreduce.reduce", reduceStart, time.Since(reduceStart),
		obs.Int("partitions", metrics.Partitions))
	metrics.ReduceTime = time.Since(mapEnd)
	if reduceErr == nil {
		reduceErr = cfg.Context.Err()
	}
	if reduceErr != nil {
		return nil, metrics, reduceErr
	}
	runSpan.SetAttrInt("shuffle_bytes", metrics.ShuffleBytes)
	runSpan.SetAttrInt("spilled_bytes", metrics.SpilledBytes)
	return out, metrics, nil
}

// runBarrierMapShuffle is the historical phase-synchronous path: every map
// worker accumulates all of its groups, and nothing is sent until the whole
// map phase has finished. It returns when the shuffle barrier is complete
// (own sends flushed, every remote end frame received).
func runBarrierMapShuffle[I any, K comparable, V any, O any](inputs []I, cfg Config, job Job[I, K, V, O], ex Exchange[K, V], acc *shuffleAccumulator[K, V], recvDone <-chan error, wire bool, metrics *Metrics) (time.Time, error) {
	npeers, self := ex.NumPeers(), ex.Self()
	ctx := cfg.Context
	mapStart := time.Now()
	type workerState struct {
		groups  map[K][]V
		emitted int64
	}
	workers := make([]workerState, cfg.MapWorkers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.MapWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			state := &workers[w]
			state.groups = make(map[K][]V)
			emit := func(k K, v V) {
				state.groups[k] = append(state.groups[k], v)
				state.emitted++
			}
			for i := w; i < len(inputs) && ctx.Err() == nil; i += cfg.MapWorkers {
				job.Map(inputs[i], emit)
			}
			if job.Combine != nil {
				for k, vs := range state.groups {
					state.groups[k] = job.Combine(k, vs)
				}
			}
		}(w)
	}
	wg.Wait()
	mapEnd := time.Now()
	metrics.MapTime = mapEnd.Sub(mapStart)

	// Route each combined batch to the peer owning its key. Batches this
	// peer owns bypass the exchange entirely and go straight into the
	// accumulator: self-delivery is bounded by the spill buffer
	// (Config.Shuffle), not by a queue that could wedge or grow.
	// A canceled job skips the routing but still runs the barrier below, so
	// remote peers get this peer's end frame instead of a wedged shuffle.
	sendErr := ctx.Err()
	for w := range workers {
		metrics.MapOutputRecords += workers[w].emitted
		for k, vs := range workers[w].groups {
			metrics.ShuffleRecords += int64(len(vs))
			switch {
			case wire:
			case job.SizeOf != nil:
				for _, v := range vs {
					metrics.ShuffleBytes += int64(job.SizeOf(k, v))
				}
			default:
				metrics.ShuffleBytes += int64(len(vs))
			}
			if sendErr == nil {
				dst := 0
				if npeers > 1 {
					dst = int(job.Hash(k) % uint64(npeers))
				}
				var err error
				if dst == self {
					err = acc.add(KeyBatch[K, V]{Key: k, Values: vs})
				} else {
					err = ex.Send(dst, KeyBatch[K, V]{Key: k, Values: vs})
				}
				if err != nil {
					sendErr = err
				}
			}
		}
		workers[w].groups = nil
	}
	if err := ex.CloseSend(); err != nil && sendErr == nil {
		sendErr = err
	}
	if err := <-recvDone; err != nil && sendErr == nil {
		sendErr = err
	}
	metrics.ShuffleTime = time.Since(mapEnd)
	return mapEnd, sendErr
}

// runStreamingMapShuffle is the pipelined path (ShuffleConfig.SendBufferBytes
// > 0): map workers emit into bounded per-peer send buffers drained by
// dedicated sender goroutines while mapping continues, so network transfer
// overlaps map compute (see stream.go). It returns when the shuffle barrier
// is complete.
func runStreamingMapShuffle[I any, K comparable, V any, O any](inputs []I, cfg Config, job Job[I, K, V, O], ex Exchange[K, V], acc *shuffleAccumulator[K, V], recvDone <-chan error, wire bool, metrics *Metrics) (time.Time, error) {
	npeers := ex.NumPeers()
	ctx := cfg.Context
	ss := newStreamShuffle(cfg, jobShape[K, V]{
		combine: job.Combine,
		sizeOf:  job.SizeOf,
		codec:   job.Codec,
		wire:    wire,
	}, acc, ex)
	defer ss.cleanup()

	mapStart := time.Now()
	emitted := make([]int64, cfg.MapWorkers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.MapWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			emit := func(k K, v V) {
				emitted[w]++
				dst := 0
				if npeers > 1 {
					dst = int(job.Hash(k) % uint64(npeers))
				}
				ss.emit(w, dst, k, v)
			}
			for i := w; i < len(inputs) && ctx.Err() == nil; i += cfg.MapWorkers {
				job.Map(inputs[i], emit)
			}
		}(w)
	}
	wg.Wait()
	mapEnd := time.Now()
	metrics.MapTime = mapEnd.Sub(mapStart)
	for _, n := range emitted {
		metrics.MapOutputRecords += n
	}

	// Final flush, join the senders, then the end-frame barrier. All three
	// steps run even after an error (or cancellation) so remote peers are
	// never wedged.
	streamErr := ss.finish()
	if err := ctx.Err(); err != nil && streamErr == nil {
		streamErr = err
	}
	if err := ex.CloseSend(); err != nil && streamErr == nil {
		streamErr = err
	}
	if err := <-recvDone; err != nil && streamErr == nil {
		streamErr = err
	}
	metrics.ShuffleTime = time.Since(mapStart)
	ss.fold(metrics)
	return mapEnd, streamErr
}

// reduceInMemory is the historical reduce path: the whole shuffle fit in
// memory, so keys are bucketed across the reduce workers by hash. Raw groups
// (encoded wire frames) are decoded here — once per group, after the
// barrier — and a job combiner runs once more over each fully assembled
// group, merging the equal-key records different peers and workers shipped
// (the combiner contract, reduce∘combine == reduce, keeps output identical).
func reduceInMemory[I any, K comparable, V any, O any](cfg Config, job Job[I, K, V, O], acc *shuffleAccumulator[K, V], metrics *Metrics) ([]O, error) {
	if err := acc.materializeRaw(); err != nil {
		return nil, err
	}
	merged := acc.mem
	metrics.Partitions = int64(len(merged))
	for _, vs := range merged {
		if int64(len(vs)) > metrics.MaxPartitionRecords {
			metrics.MaxPartitionRecords = int64(len(vs))
		}
	}
	buckets := make([][]K, cfg.ReduceWorkers)
	for k := range merged {
		b := 0
		if job.Hash != nil {
			b = int(job.Hash(k) % uint64(cfg.ReduceWorkers))
		}
		buckets[b] = append(buckets[b], k)
	}
	outs := make([][]O, cfg.ReduceWorkers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.ReduceWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pprof.Do(cfg.Context, pprof.Labels("seqmine_stage", "reduce"), func(context.Context) {
				emit := func(o O) { outs[w] = append(outs[w], o) }
				for _, k := range buckets[w] {
					if cfg.Context.Err() != nil {
						return // canceled: the caller discards the output
					}
					vs := merged[k]
					if job.Combine != nil && len(vs) > 1 {
						vs = job.Combine(k, vs)
					}
					job.Reduce(k, vs, emit)
				}
			})
		}(w)
	}
	wg.Wait()
	var out []O
	for _, os := range outs {
		out = append(out, os...)
	}
	return out, nil
}

// reduceStreaming reduces a spilled shuffle: a k-way merge over the on-disk
// segments and the final in-memory run feeds one key group at a time to the
// reduce workers through a bounded channel, so this peer never materializes
// its full partition set — memory is bounded by the spill threshold plus the
// in-flight groups.
func reduceStreaming[I any, K comparable, V any, O any](cfg Config, job Job[I, K, V, O], acc *shuffleAccumulator[K, V], metrics *Metrics) ([]O, error) {
	groups := make(chan KeyBatch[K, V], cfg.ReduceWorkers)
	outs := make([][]O, cfg.ReduceWorkers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.ReduceWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pprof.Do(cfg.Context, pprof.Labels("seqmine_stage", "reduce"), func(context.Context) {
				emit := func(o O) { outs[w] = append(outs[w], o) }
				for g := range groups {
					vs := g.Values
					if job.Combine != nil && len(vs) > 1 {
						vs = job.Combine(g.Key, vs)
					}
					job.Reduce(g.Key, vs, emit)
				}
			})
		}(w)
	}
	var mergeErr error
	pprof.Do(cfg.Context, pprof.Labels("seqmine_stage", "shuffle_merge"), func(context.Context) {
		mergeErr = acc.merge(func(k K, vs []V) error {
			if err := cfg.Context.Err(); err != nil {
				return err
			}
			metrics.Partitions++
			if int64(len(vs)) > metrics.MaxPartitionRecords {
				metrics.MaxPartitionRecords = int64(len(vs))
			}
			groups <- KeyBatch[K, V]{Key: k, Values: vs}
			return nil
		})
	})
	close(groups)
	wg.Wait()
	if mergeErr != nil {
		return nil, mergeErr
	}
	var out []O
	for _, os := range outs {
		out = append(out, os...)
	}
	return out, nil
}

// HashUint64 is a convenience mixing function for integer keys
// (splitmix64-style finalizer).
func HashUint64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashString hashes a string key (FNV-1a).
func HashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// SortSlice sorts outputs with the given less function; a convenience for
// callers that need deterministic result ordering.
func SortSlice[O any](out []O, less func(a, b O) bool) {
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
}
