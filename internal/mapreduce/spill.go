package mapreduce

import (
	"bufio"
	"bytes"
	"compress/flate"
	"container/heap"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"seqmine/internal/obs"
)

// spillSegmentHist is the histogram of on-disk spill-segment sizes, shared by
// receive-side sorted runs and map-side send overflow. Nil registry → nil
// histogram → no-op observes.
func spillSegmentHist(reg *obs.Registry) *obs.Histogram {
	return reg.Histogram("seqmine_spill_segment_bytes",
		"Size in bytes of shuffle spill segments written to disk.", obs.ByteBuckets)
}

// ShuffleConfig bounds the memory footprint of the shuffle. SpillThreshold
// bounds the receive side (spilling overflow to disk); SendBufferBytes bounds
// the map side and switches the engine to the streaming pipelined shuffle.
// The zero value keeps the whole shuffle in memory with a phase-synchronous
// barrier (the historical behavior).
type ShuffleConfig struct {
	// SpillThreshold is the number of buffered shuffle bytes a peer holds in
	// memory before it spills a sorted run to a temp-file segment; <= 0
	// disables spilling. Sizes are measured with the job's SizeOf function
	// (or the codec's exact record size when SizeOf is nil), i.e. in wire
	// bytes, not Go heap bytes.
	SpillThreshold int64
	// TmpDir is the directory spill segments are created under; empty uses
	// the system temp directory. Each job creates (and removes) its own
	// subdirectory.
	TmpDir string
	// SendBufferBytes, when > 0, enables the streaming pipelined shuffle: map
	// workers emit into bounded per-peer send buffers (partial combine runs
	// on every flush) that dedicated sender goroutines drain over the
	// exchange while mapping continues, so network transfer overlaps map
	// compute. Each peer's buffer holds at most SendBufferBytes (plus one
	// record), measured like SpillThreshold; when the buffer is full and the
	// sender is still busy, the flushed run overflows to an on-disk segment
	// the sender drains later, so a slow network never stalls map compute
	// and never grows sender memory. Requires the job to carry a Codec.
	SendBufferBytes int64
	// SendBufferMaxBytes, when > SendBufferBytes, lets the streaming shuffle
	// grow a destination's send buffer adaptively: a peer whose buffer keeps
	// flushing at full occupancy while its sender keeps up (no overflow to
	// disk) doubles its share, up to this bound. Buffers start at
	// SendBufferBytes, so the configured value stays the floor and
	// SendBufferMaxBytes the ceiling of per-peer sender memory. 0 (or any
	// value <= SendBufferBytes) disables adaptation.
	SendBufferMaxBytes int64
	// Compression compresses spill segments (receive-side runs and map-side
	// send overflow) with DEFLATE. Metrics.SpilledBytes then reports the
	// compressed on-disk size.
	Compression bool
}

// Enabled reports whether the configuration asks for spilling.
func (c ShuffleConfig) Enabled() bool { return c.SpillThreshold > 0 }

// Streaming reports whether the configuration asks for the streaming
// pipelined shuffle.
func (c ShuffleConfig) Streaming() bool { return c.SendBufferBytes > 0 }

const (
	// maxSpillFrame bounds one segment frame on read-back (corruption
	// guard). It matches the TCP transport's default MaxFrame: a record too
	// large to spill would not fit the wire shuffle either. The writer
	// enforces it up front — a single encoded record near this size is
	// rejected with a clear error instead of producing an unreadable
	// segment.
	maxSpillFrame = 64 << 20
	// spillChunkBytes caps the encoded values of a single segment frame, so
	// one hot key spanning a whole run still produces bounded frames (a
	// frame holds at most spillChunkBytes of already-buffered values plus
	// one record).
	spillChunkBytes = 1 << 20
)

// shuffleAccumulator gathers the key batches a peer receives (or owns
// itself) during the shuffle. Below the spill threshold it is a plain
// in-memory group-by; past it, the current run is sorted by encoded key and
// written to a temp-file segment in the FrameCodec wire encoding, and the
// reduce phase streams a k-way merge over the segments plus the final
// in-memory run. add and addRaw are safe for concurrent use (the engine's
// sender and receiver both feed it); merge and cleanup are called after the
// shuffle barrier, single-goroutine.
//
// The accumulator holds two kinds of runs. Decoded batches (self-delivered
// and loopback batches, which are zero-copy Go values) group into mem.
// Encoded frames from a wire exchange group into raw, keyed by the frame's
// encoded-key prefix: the value bytes of equal-key frames are concatenated
// without decoding a single record, and stay encoded through spilling and
// the k-way merge until a fully assembled group reaches the reduce
// callback. A key may legitimately appear in both runs (a peer owns part of
// its own partition); the merge and the in-memory reduce reunite them.
type shuffleAccumulator[K comparable, V any] struct {
	codec  *FrameCodec[K, V]
	cfg    ShuffleConfig
	sizeOf func(K, V) int
	// combine, when non-nil, is the job's combiner. The accumulator applies
	// it to the decoded run before spilling (cross-flush external combine:
	// equal keys re-delivered across buffers collapse before paying disk);
	// the reduce paths apply it once more on fully assembled groups.
	combine func(K, []V) []V

	// ctx carries the job's trace recorder (spill spans); segHist observes
	// segment sizes. Both are no-ops when observability is not wired up.
	ctx     context.Context
	segHist *obs.Histogram

	mu       sync.Mutex
	mem      map[K][]V
	raw      map[string]*rawGroup
	memBytes int64
	dir      string // lazily created spill directory, removed by cleanup
	segs     []*os.File

	spilledBytes int64
	buf          []byte // scratch encode buffer, reused across spills
}

// rawGroup accumulates the still-encoded values one peer received for one
// key: the value regions of every frame carrying that key, concatenated in
// arrival order, plus the frame boundaries (spilling re-frames along them so
// a segment frame never has to split an encoded value).
type rawGroup struct {
	vals   []byte
	chunks []rawChunk
}

// rawChunk is one received frame's contribution to a rawGroup: count values
// ending at offset end of vals (the region starts at the previous chunk's
// end).
type rawChunk struct {
	end   int
	count int
}

// newShuffleAccumulator builds the accumulator for one RunExchange call.
// codec may be nil when cfg does not enable spilling; ctx and reg carry the
// optional observability state (trace recorder and metric registry).
func newShuffleAccumulator[K comparable, V any](ctx context.Context, cfg ShuffleConfig, reg *obs.Registry, codec *FrameCodec[K, V], sizeOf func(K, V) int) *shuffleAccumulator[K, V] {
	if ctx == nil {
		ctx = context.Background()
	}
	a := &shuffleAccumulator[K, V]{codec: codec, cfg: cfg, mem: make(map[K][]V), ctx: ctx, segHist: spillSegmentHist(reg)}
	if cfg.Enabled() {
		if sizeOf == nil {
			sizeOf = codec.RecordSize
		}
		a.sizeOf = sizeOf
	}
	return a
}

// add appends one batch to the current run, spilling it when the run exceeds
// the threshold.
func (a *shuffleAccumulator[K, V]) add(b KeyBatch[K, V]) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.mem[b.Key] = append(a.mem[b.Key], b.Values...)
	if !a.cfg.Enabled() {
		return nil
	}
	for _, v := range b.Values {
		a.memBytes += int64(a.sizeOf(b.Key, v))
	}
	if a.memBytes < a.cfg.SpillThreshold {
		return nil
	}
	return a.spillLocked()
}

// addRaw appends one received wire frame to the current run without decoding
// it: the frame's value bytes are appended to the group of its encoded-key
// prefix. The group lookup allocates only on a key's first appearance (the
// string conversion for the lookup itself does not escape). Buffered raw
// bytes count toward the spill threshold at their exact wire size.
func (a *shuffleAccumulator[K, V]) addRaw(frame []byte) error {
	h, err := a.codec.parseFrameHeader(frame)
	if err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.raw == nil {
		a.raw = make(map[string]*rawGroup)
	}
	g, ok := a.raw[string(frame[:h.keyLen])]
	if !ok {
		g = &rawGroup{}
		a.raw[string(frame[:h.keyLen])] = g
	}
	g.vals = append(g.vals, frame[h.valsStart:]...)
	g.chunks = append(g.chunks, rawChunk{end: len(g.vals), count: h.count})
	if !a.cfg.Enabled() {
		return nil
	}
	a.memBytes += int64(len(frame))
	if a.memBytes < a.cfg.SpillThreshold {
		return nil
	}
	return a.spillLocked()
}

// spillLocked writes the current run — the decoded and raw groups
// interleaved in encoded-key order — as one length-prefixed segment file and
// resets the run. The decoded groups are combined first when the job has a
// combiner (equal keys buffered across several adds collapse before paying
// disk); raw groups are written as straight byte copies along their received
// frame boundaries, coalesced up to the chunk bound.
func (a *shuffleAccumulator[K, V]) spillLocked() error {
	if len(a.mem) == 0 && len(a.raw) == 0 {
		return nil
	}
	start := time.Now()
	if a.dir == "" {
		dir, err := os.MkdirTemp(a.cfg.TmpDir, "seqmine-spill-")
		if err != nil {
			return fmt.Errorf("mapreduce: creating spill directory: %w", err)
		}
		a.dir = dir
	}
	memKeys := a.sortedRun()
	rawKeys := a.sortedRawKeys()

	sink, err := newSegmentSink(a.dir, len(a.segs), a.cfg.Compression)
	if err != nil {
		return err
	}
	w := segmentWriter[K, V]{codec: a.codec, bw: sink.bw, vbuf: a.buf}
	mi, ri := 0, 0
	for mi < len(memKeys) || ri < len(rawKeys) {
		// Two-pointer merge of the sorted runs. A key present in both is
		// written as consecutive frames under the same key bytes, which the
		// reduce merge reunites like any duplicate key.
		writeMem, writeRaw := ri >= len(rawKeys), mi >= len(memKeys)
		if !writeMem && !writeRaw {
			c := bytes.Compare(memKeys[mi].keyBytes, []byte(rawKeys[ri]))
			writeMem, writeRaw = c <= 0, c >= 0
		}
		if writeMem {
			kr := memKeys[mi]
			mi++
			vs := a.mem[kr.key]
			if a.combine != nil && len(vs) > 1 {
				vs = a.combine(kr.key, vs)
			}
			if err := w.writeKey(kr.keyBytes, vs); err != nil {
				sink.abort()
				return fmt.Errorf("mapreduce: writing spill segment: %w", err)
			}
		}
		if writeRaw {
			ks := rawKeys[ri]
			ri++
			if err := w.writeRawGroup(ks, a.raw[ks]); err != nil {
				sink.abort()
				return fmt.Errorf("mapreduce: writing spill segment: %w", err)
			}
		}
	}
	if err := sink.finish(); err != nil {
		return err
	}
	a.segs = append(a.segs, sink.f)
	a.spilledBytes += sink.cw.n
	a.segHist.Observe(float64(sink.cw.n))
	obs.Observe(a.ctx, "mapreduce.spill", start, time.Since(start),
		obs.Int("bytes", sink.cw.n), obs.Int("segment", int64(len(a.segs)-1)))
	a.mem = make(map[K][]V, len(a.mem))
	if a.raw != nil {
		a.raw = make(map[string]*rawGroup, len(a.raw))
	}
	a.memBytes = 0
	a.buf = w.vbuf // keep the grown scratch buffer for the next spill
	return nil
}

// sortedRawKeys returns the raw run's encoded keys in byte order (string
// comparison and encoded-byte comparison agree).
func (a *shuffleAccumulator[K, V]) sortedRawKeys() []string {
	if len(a.raw) == 0 {
		return nil
	}
	keys := make([]string, 0, len(a.raw))
	for ks := range a.raw {
		keys = append(keys, ks)
	}
	sort.Strings(keys)
	return keys
}

// materializeRaw decodes the raw run into the decoded run, merging groups of
// keys present in both. The in-memory reduce path calls it once after the
// barrier: every group is decoded exactly once, into a slice sized for its
// full value count.
func (a *shuffleAccumulator[K, V]) materializeRaw() error {
	if len(a.raw) == 0 {
		return nil
	}
	for ks, g := range a.raw {
		a.buf = append(a.buf[:0], ks...)
		k, _, err := a.codec.ReadKey(a.buf, 0)
		if err != nil {
			return fmt.Errorf("mapreduce: decoding shuffled key: %w", err)
		}
		total := 0
		for _, c := range g.chunks {
			total += c.count
		}
		vs := a.mem[k]
		if vs == nil && total > 0 {
			vs = make([]V, 0, total)
		}
		vs, err = a.codec.appendValues(vs, g.vals, total)
		if err != nil {
			return fmt.Errorf("mapreduce: decoding shuffled values: %w", err)
		}
		a.mem[k] = vs
	}
	a.raw = nil
	return nil
}

// segmentSink is the write stack of one spill segment file: buffered writes,
// optionally DEFLATE-compressed, over a counting writer that measures the
// bytes actually reaching disk (the SpilledBytes metric).
type segmentSink struct {
	f  *os.File
	cw *spillCountingWriter
	fw *flate.Writer // nil without compression
	bw *bufio.Writer
}

// newSegmentSink creates one segment file under dir.
func newSegmentSink(dir string, index int, compress bool) (*segmentSink, error) {
	f, err := os.CreateTemp(dir, fmt.Sprintf("seg-%04d-*.run", index))
	if err != nil {
		return nil, fmt.Errorf("mapreduce: creating spill segment: %w", err)
	}
	s := &segmentSink{f: f, cw: &spillCountingWriter{w: f}}
	var w io.Writer = s.cw
	if compress {
		// BestSpeed: spill segments are written once and read once; cheap
		// compression wins as soon as it beats the disk.
		s.fw, _ = flate.NewWriter(w, flate.BestSpeed)
		w = s.fw
	}
	s.bw = bufio.NewWriterSize(w, 256<<10)
	return s, nil
}

// finish flushes every layer of the write stack. The file stays open for
// read-back; the caller owns closing it.
func (s *segmentSink) finish() error {
	if err := s.bw.Flush(); err != nil {
		s.f.Close()
		return fmt.Errorf("mapreduce: flushing spill segment: %w", err)
	}
	if s.fw != nil {
		if err := s.fw.Close(); err != nil {
			s.f.Close()
			return fmt.Errorf("mapreduce: closing compressed spill segment: %w", err)
		}
	}
	return nil
}

// abort closes the file of a segment whose write failed.
func (s *segmentSink) abort() { s.f.Close() }

// openSegment rewinds a finished segment file and returns its read stack
// (mirroring the write stack of newSegmentSink).
func openSegment[K comparable, V any](codec *FrameCodec[K, V], f *os.File, compress bool) (*segmentReader[K, V], error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("mapreduce: rewinding spill segment: %w", err)
	}
	var r io.Reader = bufio.NewReaderSize(f, 256<<10)
	if compress {
		r = flate.NewReader(r)
	}
	return newSegmentReader(codec, bufio.NewReaderSize(r, 64<<10), maxSpillFrame), nil
}

// keyedRun is one key of the current in-memory run with its encoded form,
// the sort key of segments and of the merge. keyBytes aliases the run's key
// arena (off and end locate it there while the arena is still growing).
type keyedRun[K comparable] struct {
	keyBytes []byte
	off, end int
	key      K
}

// sortedRun returns the current in-memory run's keys sorted by encoded key
// bytes — the order segments are written in and the merge consumes. All keys
// encode into one arena (two allocations per run instead of one per key);
// the returned keyBytes alias it.
func (a *shuffleAccumulator[K, V]) sortedRun() []keyedRun[K] {
	keys := make([]keyedRun[K], 0, len(a.mem))
	arena := []byte(nil)
	for k := range a.mem {
		off := len(arena)
		arena = a.codec.AppendKey(arena, k)
		keys = append(keys, keyedRun[K]{off: off, end: len(arena), key: k})
	}
	for i := range keys {
		keys[i].keyBytes = arena[keys[i].off:keys[i].end]
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i].keyBytes, keys[j].keyBytes) < 0 })
	return keys
}

// spilled reports whether any run went to disk.
func (a *shuffleAccumulator[K, V]) spilled() bool { return len(a.segs) > 0 }

// stats returns the spill volume written so far.
func (a *shuffleAccumulator[K, V]) stats() (spilledBytes int64, spillCount int64) {
	return a.spilledBytes, int64(len(a.segs))
}

// merge streams every key group — the union of all on-disk segments, the
// final decoded run and the final raw run — to fn in encoded-key order. Each
// key is delivered exactly once with all of its values; fn therefore sees
// the same groups an in-memory shuffle would have built, just one at a time.
// Segment and raw-run entries stay encoded on the heap — ordering needs only
// their key bytes — and are decoded exactly once, when the fully assembled
// group is handed to fn.
func (a *shuffleAccumulator[K, V]) merge(fn func(K, []V) error) error {
	// Sort the final in-memory runs like segments.
	memRun := a.sortedRun()
	memNext := 0
	rawRun := a.sortedRawKeys()
	rawNext := 0

	h := &mergeHeap[K, V]{}
	readers := make([]*segmentReader[K, V], len(a.segs))
	for i, f := range a.segs {
		r, err := openSegment(a.codec, f, a.cfg.Compression)
		if err != nil {
			return err
		}
		readers[i] = r
	}
	// advance pushes source src's next entry onto the heap. Source index
	// len(readers) is the decoded in-memory run, len(readers)+1 the raw one.
	memSrc, rawSrc := len(readers), len(readers)+1
	advance := func(src int) error {
		switch src {
		case memSrc:
			if memNext < len(memRun) {
				e := memRun[memNext]
				memNext++
				heap.Push(h, mergeEntry[K, V]{keyBytes: e.keyBytes, key: e.key, hasKey: true, decoded: true, vals: a.mem[e.key], src: src})
			}
			return nil
		case rawSrc:
			if rawNext < len(rawRun) {
				ks := rawRun[rawNext]
				rawNext++
				g := a.raw[ks]
				count := 0
				for _, c := range g.chunks {
					count += c.count
				}
				heap.Push(h, mergeEntry[K, V]{keyBytes: []byte(ks), raw: g.vals, count: count, src: src})
			}
			return nil
		}
		keyBytes, vals, count, err := readers[src].nextRaw()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("mapreduce: reading spill segment %d: %w", src, err)
		}
		heap.Push(h, mergeEntry[K, V]{keyBytes: keyBytes, raw: vals, count: count, src: src})
		return nil
	}
	for src := 0; src <= rawSrc; src++ {
		if err := advance(src); err != nil {
			return err
		}
	}

	var entries []mergeEntry[K, V] // reused across groups; contents are consumed by the end of each iteration
	for h.Len() > 0 {
		top := heap.Pop(h).(mergeEntry[K, V])
		if err := advance(top.src); err != nil {
			return err
		}
		entries = append(entries[:0], top)
		for h.Len() > 0 && bytes.Equal((*h)[0].keyBytes, top.keyBytes) {
			next := heap.Pop(h).(mergeEntry[K, V])
			entries = append(entries, next)
			if err := advance(next.src); err != nil {
				return err
			}
		}
		key, values, err := a.assembleGroup(top.keyBytes, entries)
		if err != nil {
			return err
		}
		if err := fn(key, values); err != nil {
			return err
		}
	}
	return nil
}

// assembleGroup decodes one merged key group. The values slice is freshly
// built per group (fn may hand it to a concurrent reducer) — except for the
// common single-source decoded case, which stays zero-copy.
func (a *shuffleAccumulator[K, V]) assembleGroup(keyBytes []byte, entries []mergeEntry[K, V]) (K, []V, error) {
	var key K
	gotKey := false
	total := 0
	for _, e := range entries {
		if e.decoded {
			total += len(e.vals)
			if e.hasKey {
				key = e.key
				gotKey = true
			}
		} else {
			total += e.count
		}
	}
	if !gotKey {
		k, _, err := a.codec.ReadKey(keyBytes, 0)
		if err != nil {
			return key, nil, fmt.Errorf("mapreduce: decoding shuffled key: %w", err)
		}
		key = k
	}
	if len(entries) == 1 && entries[0].decoded {
		return key, entries[0].vals, nil
	}
	values := make([]V, 0, total)
	for _, e := range entries {
		if e.decoded {
			values = append(values, e.vals...)
			continue
		}
		var err error
		values, err = a.codec.appendValues(values, e.raw, e.count)
		if err != nil {
			return key, nil, fmt.Errorf("mapreduce: decoding shuffled values: %w", err)
		}
	}
	return key, values, nil
}

// cleanup removes the spill segments and their directory. Safe to call when
// nothing was spilled.
func (a *shuffleAccumulator[K, V]) cleanup() {
	for _, f := range a.segs {
		f.Close()
	}
	a.segs = nil
	if a.dir != "" {
		os.RemoveAll(a.dir)
		a.dir = ""
	}
}

// mergeEntry is one run head on the merge heap. Decoded entries (the
// in-memory decoded run) carry Go values; encoded entries (segments and the
// in-memory raw run) carry the still-encoded value bytes, which only
// assembleGroup decodes.
type mergeEntry[K comparable, V any] struct {
	keyBytes []byte
	key      K
	hasKey   bool
	decoded  bool
	vals     []V    // decoded values (decoded == true)
	raw      []byte // encoded values (decoded == false)
	count    int    // number of encoded values in raw
	src      int
}

// mergeHeap is a min-heap of run heads ordered by encoded key bytes (ties
// broken by source so the merge is deterministic).
type mergeHeap[K comparable, V any] []mergeEntry[K, V]

func (h mergeHeap[K, V]) Len() int { return len(h) }
func (h mergeHeap[K, V]) Less(i, j int) bool {
	if c := bytes.Compare(h[i].keyBytes, h[j].keyBytes); c != 0 {
		return c < 0
	}
	return h[i].src < h[j].src
}
func (h mergeHeap[K, V]) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap[K, V]) Push(x any)   { *h = append(*h, x.(mergeEntry[K, V])) }
func (h *mergeHeap[K, V]) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// spillCountingWriter counts the bytes that reach the segment file.
type spillCountingWriter struct {
	w io.Writer
	n int64
}

func (c *spillCountingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// segmentWriter emits one spill segment: a sequence of frames, each a uvarint
// length prefix followed by the FrameCodec batch encoding (key, value count,
// values). Keys appear in sorted order; a key whose encoded values exceed
// spillChunkBytes is split across consecutive frames with the same key, which
// the merge reunites like any other duplicate key. A key with no values
// still writes one zero-count frame, so the spilling run reduces exactly the
// keys the in-memory run would (a combiner may legitimately prune every
// value of a key).
type segmentWriter[K comparable, V any] struct {
	codec    *FrameCodec[K, V]
	bw       *bufio.Writer
	vbuf     []byte // scratch for encoded values
	maxFrame int    // 0 means maxSpillFrame
}

func (w *segmentWriter[K, V]) writeKey(keyBytes []byte, values []V) error {
	bound := w.maxFrame
	if bound <= 0 {
		bound = maxSpillFrame
	}
	vbuf := w.vbuf[:0]
	count := 0
	empty := len(values) == 0
	flush := func() error {
		if count == 0 && !empty {
			return nil
		}
		empty = false
		frameLen := len(keyBytes) + UvarintLen(uint64(count)) + len(vbuf)
		// A frame holds at most spillChunkBytes of buffered values plus one
		// record; reject a frame the reader's corruption guard would refuse
		// rather than write an unreadable segment. (The wire transport's
		// default MaxFrame is the same bound, so such a record could not
		// shuffle remotely either.)
		if frameLen > bound {
			return fmt.Errorf("frame of %d encoded bytes exceeds the %d-byte spill frame bound", frameLen, bound)
		}
		var hdr [binary.MaxVarintLen64]byte
		if _, err := w.bw.Write(hdr[:binary.PutUvarint(hdr[:], uint64(frameLen))]); err != nil {
			return err
		}
		if _, err := w.bw.Write(keyBytes); err != nil {
			return err
		}
		if _, err := w.bw.Write(AppendUvarint(hdr[:0], uint64(count))); err != nil {
			return err
		}
		if _, err := w.bw.Write(vbuf); err != nil {
			return err
		}
		vbuf = vbuf[:0]
		count = 0
		return nil
	}
	for _, v := range values {
		vbuf = w.codec.AppendValue(vbuf, v)
		count++
		if len(vbuf) >= spillChunkBytes {
			if err := flush(); err != nil {
				w.vbuf = vbuf[:0]
				return err
			}
		}
	}
	err := flush()
	w.vbuf = vbuf
	return err
}

// writeRawGroup spills one raw group as straight byte copies: frames are cut
// along the group's received-frame boundaries (an encoded value is never
// split), coalescing consecutive chunks up to spillChunkBytes per frame. key
// is the group's encoded-key bytes (the raw map's key string).
func (w *segmentWriter[K, V]) writeRawGroup(key string, g *rawGroup) error {
	bound := w.maxFrame
	if bound <= 0 {
		bound = maxSpillFrame
	}
	start := 0
	for i := 0; i < len(g.chunks); {
		end := g.chunks[i].end
		count := g.chunks[i].count
		i++
		for i < len(g.chunks) && g.chunks[i].end-start <= spillChunkBytes {
			end = g.chunks[i].end
			count += g.chunks[i].count
			i++
		}
		frameLen := len(key) + UvarintLen(uint64(count)) + (end - start)
		if frameLen > bound {
			return fmt.Errorf("frame of %d encoded bytes exceeds the %d-byte spill frame bound", frameLen, bound)
		}
		var hdr [binary.MaxVarintLen64]byte
		if _, err := w.bw.Write(hdr[:binary.PutUvarint(hdr[:], uint64(frameLen))]); err != nil {
			return err
		}
		if _, err := w.bw.WriteString(key); err != nil {
			return err
		}
		if _, err := w.bw.Write(AppendUvarint(hdr[:0], uint64(count))); err != nil {
			return err
		}
		if _, err := w.bw.Write(g.vals[start:end]); err != nil {
			return err
		}
		start = end
	}
	return nil
}

// segmentReader streams the frames of one spill segment back as decoded
// batches. It is robust against corrupt input (truncated prefixes, oversized
// frames, trailing garbage) and never allocates more than maxFrame per frame,
// so it can also be driven by the fuzzer.
type segmentReader[K comparable, V any] struct {
	codec    *FrameCodec[K, V]
	br       *bufio.Reader
	maxFrame int
}

func newSegmentReader[K comparable, V any](codec *FrameCodec[K, V], br *bufio.Reader, maxFrame int) *segmentReader[K, V] {
	if maxFrame <= 0 {
		maxFrame = maxSpillFrame
	}
	return &segmentReader[K, V]{codec: codec, br: br, maxFrame: maxFrame}
}

// next returns the next batch and its encoded key (for merge ordering). It
// returns io.EOF at a clean end of the segment.
func (r *segmentReader[K, V]) next() ([]byte, KeyBatch[K, V], error) {
	var zero KeyBatch[K, V]
	frame, err := r.readFrame()
	if err != nil {
		return nil, zero, err
	}
	batch, keyLen, err := r.codec.decodeBatchKeyed(frame)
	if err != nil {
		return nil, zero, err
	}
	return frame[:keyLen], batch, nil
}

// nextRaw returns the next frame's encoded key, still-encoded value bytes
// and value count without decoding a single value — the form the k-way merge
// orders and regroups in. The returned slices alias one fresh per-frame
// buffer and stay valid after further reads. It returns io.EOF at a clean
// end of the segment.
func (r *segmentReader[K, V]) nextRaw() (keyBytes, vals []byte, count int, err error) {
	frame, err := r.readFrame()
	if err != nil {
		return nil, nil, 0, err
	}
	h, err := r.codec.parseFrameHeader(frame)
	if err != nil {
		return nil, nil, 0, err
	}
	return frame[:h.keyLen], frame[h.valsStart:], h.count, nil
}

// readFrame reads one length-prefixed frame into a fresh buffer, guarding
// against corrupt lengths. It returns io.EOF at a clean segment end.
func (r *segmentReader[K, V]) readFrame() ([]byte, error) {
	n, err := binary.ReadUvarint(r.br)
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("reading frame length: %w", err)
	}
	if n == 0 || n > uint64(r.maxFrame) {
		return nil, fmt.Errorf("frame length %d out of range (max %d)", n, r.maxFrame)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(r.br, frame); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("reading %d-byte frame: %w", n, err)
	}
	return frame, nil
}

// errShuffleNeedsCodec is returned when spilling or streaming is requested
// for a job that cannot serialize its records.
var errShuffleNeedsCodec = errors.New("mapreduce: ShuffleConfig.SpillThreshold and SendBufferBytes require a job Codec to serialize shuffle records")
