package mapreduce

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"seqmine/internal/obs"
)

// sendOverflowGrace is how long a flush with a full sender queue waits for
// the sender before overflowing the run to disk. A full queue usually means
// the sender goroutine merely lost a scheduling race (or the box is briefly
// oversubscribed), not that the network stalled; paying disk for that would
// be far more expensive than the wait. Once a flush does time out, the peer
// is marked lagging and further overflow goes to disk immediately (no
// repeated stalls) until the sender catches up.
const sendOverflowGrace = 100 * time.Millisecond

// senderIdleCheck is how long the sender waits on an empty queue before
// replaying an overflow segment. Replaying while the map workers are still
// producing turns one overflow into a spiral (the replay blocks the queue,
// stalling flushes into more spill), so segments wait for a genuinely idle
// queue — or the end of the map phase, which drains them unconditionally.
const senderIdleCheck = 20 * time.Millisecond

// sendBufferGrowthFlushes is how many consecutive capacity-triggered flushes
// a destination absorbs — with its sender keeping up — before the adaptive
// send buffer (ShuffleConfig.SendBufferMaxBytes) doubles its share. Flushing
// at full occupancy that often means the buffer, not the network, is the
// bottleneck: bigger buffers mean fewer, larger flushes and better combining.
const sendBufferGrowthFlushes = 4

// This file implements the streaming pipelined shuffle
// (ShuffleConfig.SendBufferBytes > 0): instead of accumulating the whole map
// output and shuffling after a phase barrier, map workers emit into bounded
// per-peer send buffers that dedicated sender goroutines drain over the
// exchange while mapping continues. Network transfer therefore overlaps map
// compute, and a peer's sender memory is capped by SendBufferBytes per peer:
//
//   - each destination's buffer is sharded across the map workers (worker w
//     owns shard w mod nshards), so emits from different map workers do not
//     serialize on one mutex; each shard holds SendBufferBytes/nshards, so
//     the per-destination total still respects the cap;
//   - a shard that reaches its share is flushed — the combiner runs on the
//     buffered groups (partial combine; the reducers merge the partial
//     results exactly like batches from different peers), and the combined
//     batches are handed to the destination's sender goroutine;
//   - when the sender is still busy with the previous run (the network is
//     applying backpressure), the flushed run overflows to an on-disk
//     segment in the FrameCodec wire encoding — the same machinery the
//     receive side spills with — and the sender replays those segments as
//     the network catches up, so map compute never stalls and sender memory
//     never grows;
//   - batches this peer owns flush into the shuffle accumulator, which is
//     itself bounded by the spill threshold.
//
// Streaming and barrier mode produce identical mining results: the reduce
// phase sees the same multiset of values per key either way, only grouped
// into different partial batches.

// testSendBufferProbe, when non-nil, observes the per-peer send-buffer
// occupancy (in accounted bytes, summed over the destination's shards) after
// every emit. Tests use it to assert the SendBufferBytes bound; it must be
// set before the job starts and not changed while one runs.
var testSendBufferProbe func(peer int, occupancyBytes int64)

// jobShape is the slice of Job the streaming shuffle needs, avoiding a type
// parameter tangle with the job's input and output types.
type jobShape[K comparable, V any] struct {
	combine func(K, []V) []V
	sizeOf  func(K, V) int
	codec   *FrameCodec[K, V]
	wire    bool // ShuffleBytes comes from WireMetrics, skip the estimate
}

// streamShuffle is the per-RunExchange state of the streaming shuffle.
type streamShuffle[K comparable, V any] struct {
	cfg      ShuffleConfig
	combine  func(K, []V) []V
	sizeOf   func(K, V) int
	codec    *FrameCodec[K, V]
	wire     bool
	nshards  int
	shardCap int64 // initial per-shard byte share of SendBufferBytes
	// maxShardCap bounds the adaptive per-shard share
	// (SendBufferMaxBytes/nshards); equal to shardCap when adaptation is
	// disabled.
	maxShardCap int64

	acc    *shuffleAccumulator[K, V]
	dests  []*destSendState[K, V]
	shards []*sendShard[K, V] // dst*nshards + (worker mod nshards)

	// ctx carries the job's trace recorder (overflow-spill spans); occHist
	// observes per-destination buffer occupancy at flush time and segHist the
	// overflow-segment sizes. All no-ops when observability is not wired up.
	ctx     context.Context
	occHist *obs.Histogram
	segHist *obs.Histogram

	dir     string // lazily created overflow-segment directory
	dirOnce sync.Once
	dirErr  error

	senders sync.WaitGroup
	err     atomic.Value // first sender/flush error, wrapped in errBox
}

type errBox struct{ err error }

// destSendState is the per-destination half of the send path: the sender
// queue, the overflow segments and the accounting the shards share.
type destSendState[K comparable, V any] struct {
	owner *streamShuffle[K, V]
	dst   int
	self  bool

	// dead: a sender/flush error was recorded; drop further data.
	dead atomic.Bool
	// lagging: a flush timed the grace out; overflow goes straight to disk.
	lagging atomic.Bool
	// occupancy is the summed buffered bytes across the destination's shards
	// (the quantity SendBufferBytes bounds; observed by the test probe).
	occupancy atomic.Int64
	// shardCap is this destination's current per-shard byte share; starts at
	// the owner's shardCap and doubles (up to maxShardCap) after
	// sendBufferGrowthFlushes consecutive capacity flushes with the sender
	// keeping up (see noteFullFlush).
	shardCap atomic.Int64
	// capFlushes counts the consecutive capacity-triggered flushes feeding
	// the adaptive growth decision.
	capFlushes atomic.Int32
	// free recycles flushed batch slices from the sender back to the flush
	// path (bounded; misses fall back to allocation).
	free chan []KeyBatch[K, V]

	// queue hands flushed runs to the sender goroutine (remote peers only).
	// Its small capacity absorbs scheduler jitter — the sender losing the
	// CPU for a couple of timeslices must not stall the map workers or send
	// runs to disk. Flushes beyond a full queue overflow to disk after the
	// grace, so in-flight sender memory stays a small constant multiple of
	// SendBufferBytes per peer.
	queue chan []KeyBatch[K, V]

	// overflow segments, completed and not yet sent (remote peers only),
	// guarded by spillMu.
	spillMu      sync.Mutex
	segs         []*os.File
	spilledBytes int64
	spillCount   int64
	buf          []byte // scratch encode buffer for overflow segments

	// accounting, folded into Metrics after the barrier.
	records   atomic.Int64 // post-combine records flushed (ShuffleRecords share)
	batches   atomic.Int64 // flushed batches (StreamedBatches share)
	sizeBytes atomic.Int64 // SizeOf estimate of flushed records (non-wire runs)
}

// sendShard is one slice of one destination's send buffer. With nshards >=
// MapWorkers exactly one map worker fills each shard and emits never contend;
// when SendBufferBytes is smaller than the worker count, several workers
// share a shard (worker w uses shard w mod nshards). The mutex guards groups
// in both cases — finish() also flushes every shard from the engine
// goroutine. groups == nil marks a shard killed by a flush error.
type sendShard[K comparable, V any] struct {
	dest *destSendState[K, V]

	mu     sync.Mutex
	groups map[K][]V
	bytes  int64
}

// newStreamShuffle prepares the send states and starts one sender goroutine
// per remote peer. cfg.MapWorkers fixes the shard count: one shard per map
// worker (capped so every shard keeps a byte of budget when SendBufferBytes
// is smaller than the worker count).
func newStreamShuffle[K comparable, V any](cfg Config, job jobShape[K, V], acc *shuffleAccumulator[K, V], ex Exchange[K, V]) *streamShuffle[K, V] {
	sizeOf := job.sizeOf
	if sizeOf == nil {
		sizeOf = job.codec.RecordSize
	}
	nshards := cfg.MapWorkers
	if nshards < 1 {
		nshards = 1
	}
	if int64(nshards) > cfg.Shuffle.SendBufferBytes {
		nshards = int(cfg.Shuffle.SendBufferBytes)
		if nshards < 1 {
			nshards = 1
		}
	}
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	s := &streamShuffle[K, V]{
		cfg:      cfg.Shuffle,
		combine:  job.combine,
		sizeOf:   sizeOf,
		codec:    job.codec,
		wire:     job.wire,
		nshards:  nshards,
		shardCap: cfg.Shuffle.SendBufferBytes / int64(nshards),
		acc:      acc,
		dests:    make([]*destSendState[K, V], ex.NumPeers()),
		shards:   make([]*sendShard[K, V], ex.NumPeers()*nshards),
		ctx:      ctx,
		occHist: cfg.Obs.Histogram("seqmine_send_buffer_occupancy_bytes",
			"Per-destination streaming send-buffer occupancy, observed at each flush.", obs.ByteBuckets),
		segHist: spillSegmentHist(cfg.Obs),
	}
	s.maxShardCap = s.shardCap
	if cfg.Shuffle.SendBufferMaxBytes > cfg.Shuffle.SendBufferBytes {
		s.maxShardCap = cfg.Shuffle.SendBufferMaxBytes / int64(nshards)
	}
	self := ex.Self()
	for p := range s.dests {
		st := &destSendState[K, V]{owner: s, dst: p, self: p == self,
			free: make(chan []KeyBatch[K, V], 8)}
		st.shardCap.Store(s.shardCap)
		s.dests[p] = st
		for i := 0; i < nshards; i++ {
			s.shards[p*nshards+i] = &sendShard[K, V]{dest: st, groups: make(map[K][]V)}
		}
		if p == self {
			continue
		}
		st.queue = make(chan []KeyBatch[K, V], 4)
		s.senders.Add(1)
		go pprof.Do(ctx, pprof.Labels("seqmine_stage", "shuffle_send", "peer", strconv.Itoa(p)),
			func(context.Context) { st.runSender(ex) })
	}
	return s
}

// getBatches returns a recycled batch slice for one flush, or a fresh one.
func (st *destSendState[K, V]) getBatches(n int) []KeyBatch[K, V] {
	select {
	case b := <-st.free:
		return b
	default:
		return make([]KeyBatch[K, V], 0, n)
	}
}

// putBatches recycles a fully consumed batch slice. References to keys and
// value slices are dropped first so recycling never retains shuffle data.
func (st *destSendState[K, V]) putBatches(b []KeyBatch[K, V]) {
	clear(b)
	select {
	case st.free <- b[:0]:
	default:
	}
}

// noteFullFlush records one capacity-triggered flush for the adaptive send
// buffer. After sendBufferGrowthFlushes in a row — none of which found the
// sender lagging — the destination's per-shard share doubles, up to
// maxShardCap. A lagging sender resets the streak: a buffer that overflows
// to disk is bounded by the network, and growing it would only grow the
// overflow.
func (st *destSendState[K, V]) noteFullFlush() {
	s := st.owner
	if s.maxShardCap <= s.shardCap {
		return // adaptation disabled
	}
	if st.lagging.Load() {
		st.capFlushes.Store(0)
		return
	}
	if st.capFlushes.Add(1) < sendBufferGrowthFlushes {
		return
	}
	st.capFlushes.Store(0)
	cur := st.shardCap.Load()
	next := cur * 2
	if next > s.maxShardCap {
		next = s.maxShardCap
	}
	if next > cur {
		st.shardCap.Store(next)
	}
}

// emit routes one record from map worker w into the owning peer's send-buffer
// shard, flushing the shard first when adding the record would exceed its
// share (so per-destination occupancy stays within SendBufferBytes, plus one
// record per shard when a single record is larger than the shard's share).
func (s *streamShuffle[K, V]) emit(w, dst int, k K, v V) {
	st := s.dests[dst]
	if st.dead.Load() {
		return
	}
	sh := s.shards[dst*s.nshards+w%s.nshards]
	sz := int64(s.sizeOf(k, v))
	sh.mu.Lock()
	if sh.groups == nil {
		// A worker sharing this shard hit a flush error while we were
		// blocked on the mutex; the destination is dead.
		sh.mu.Unlock()
		return
	}
	if sh.bytes > 0 && sh.bytes+sz > st.shardCap.Load() {
		if err := sh.flushLocked(false); err != nil {
			st.dead.Store(true)
			sh.groups = nil
			sh.mu.Unlock()
			s.fail(err)
			return
		}
		st.noteFullFlush()
	}
	sh.groups[k] = append(sh.groups[k], v)
	sh.bytes += sz
	st.occupancy.Add(sz)
	if testSendBufferProbe != nil {
		testSendBufferProbe(dst, st.occupancy.Load())
	}
	sh.mu.Unlock()
}

// flushLocked combines the shard's buffered groups and hands them off:
// self-owned batches go to the shuffle accumulator, remote batches to the
// destination's sender queue, or — when the sender is busy and this is not
// the final flush — to an overflow segment on disk. Callers hold sh.mu; the
// handoff may block on the queue (grace wait), which is exactly the
// backpressure a full buffer means for this map worker — the other workers'
// shards stay available.
func (sh *sendShard[K, V]) flushLocked(final bool) error {
	if len(sh.groups) == 0 {
		return nil
	}
	st := sh.dest
	s := st.owner
	s.occHist.Observe(float64(st.occupancy.Load()))
	batches := st.getBatches(len(sh.groups))
	var records, sizeBytes int64
	for k, vs := range sh.groups {
		if s.combine != nil {
			vs = s.combine(k, vs)
		}
		records += int64(len(vs))
		if !s.wire {
			for _, v := range vs {
				sizeBytes += int64(s.sizeOf(k, v))
			}
		}
		batches = append(batches, KeyBatch[K, V]{Key: k, Values: vs})
	}
	st.records.Add(records)
	st.sizeBytes.Add(sizeBytes)
	st.batches.Add(int64(len(batches)))
	st.occupancy.Add(-sh.bytes)
	// The map is cleared, not reallocated: its buckets are reused by the
	// next fill (the value slices were handed off in batches).
	clear(sh.groups)
	sh.bytes = 0

	if st.self {
		for _, b := range batches {
			if err := s.acc.add(b); err != nil {
				return err
			}
		}
		st.putBatches(batches)
		return nil
	}
	if final {
		st.queue <- batches // mapping is done; blocking costs nothing
		return nil
	}
	select {
	case st.queue <- batches:
		st.lagging.Store(false)
		return nil
	default:
	}
	if !st.lagging.Load() {
		// Give the sender a short grace before paying disk. The wait holds
		// only this shard's mutex, so it stalls exactly the map worker whose
		// buffer is full; the sender never needs the mutex to drain the
		// queue, so it can free a slot (and end the wait) meanwhile.
		timer := time.NewTimer(sendOverflowGrace)
		defer timer.Stop()
		select {
		case st.queue <- batches:
			return nil
		case <-timer.C:
			st.lagging.Store(true)
		}
	}
	if err := st.spillRun(batches); err != nil {
		return err
	}
	st.putBatches(batches)
	return nil
}

// spillRun writes one flushed run to a fresh overflow segment the sender
// replays later. Runs are unsorted — unlike receive-side segments they are
// never merged, only replayed — so the write is a straight encode.
func (st *destSendState[K, V]) spillRun(batches []KeyBatch[K, V]) error {
	s := st.owner
	start := time.Now()
	s.dirOnce.Do(func() {
		dir, err := os.MkdirTemp(s.cfg.TmpDir, "seqmine-sendspill-")
		if err != nil {
			s.dirErr = fmt.Errorf("mapreduce: creating send-overflow directory: %w", err)
			return
		}
		s.dir = dir
	})
	if s.dirErr != nil {
		return s.dirErr
	}
	st.spillMu.Lock()
	defer st.spillMu.Unlock()
	sink, err := newSegmentSink(s.dir, int(st.spillCount), s.cfg.Compression)
	if err != nil {
		return err
	}
	w := segmentWriter[K, V]{codec: s.codec, bw: sink.bw, vbuf: st.buf}
	for _, b := range batches {
		if err := w.writeKey(s.codec.AppendKey(nil, b.Key), b.Values); err != nil {
			sink.abort()
			return fmt.Errorf("mapreduce: writing send-overflow segment: %w", err)
		}
	}
	if err := sink.finish(); err != nil {
		return err
	}
	st.buf = w.vbuf
	st.segs = append(st.segs, sink.f)
	st.spilledBytes += sink.cw.n
	st.spillCount++
	s.segHist.Observe(float64(sink.cw.n))
	obs.Observe(s.ctx, "mapreduce.spill", start, time.Since(start),
		obs.Int("bytes", sink.cw.n), obs.Int("dst", int64(st.dst)))
	return nil
}

// popSegment takes the oldest unsent overflow segment, if any.
func (st *destSendState[K, V]) popSegment() *os.File {
	st.spillMu.Lock()
	defer st.spillMu.Unlock()
	if len(st.segs) == 0 {
		return nil
	}
	f := st.segs[0]
	st.segs = st.segs[1:]
	return f
}

// runSender drains the peer's queue and overflow segments over the exchange
// until the queue is closed and every segment is replayed. On a send error
// it keeps consuming (discarding) so flushes never block against a dead
// peer; the error surfaces after the barrier.
func (st *destSendState[K, V]) runSender(ex Exchange[K, V]) {
	s := st.owner
	defer s.senders.Done()
	// A FrameSender exchange relays overflow segments as raw frames: the
	// on-disk record form is exactly the EncodeBatch wire form, so replay is
	// read → send with no decode→re-encode round trip.
	frames, _ := ex.(FrameSender)
	failed := false
	send := func(batches []KeyBatch[K, V]) {
		for _, b := range batches {
			if failed {
				break
			}
			if err := ex.Send(st.dst, b); err != nil {
				s.fail(err)
				failed = true
			}
		}
		st.putBatches(batches)
	}
	replaySegment := func(f *os.File) {
		name := f.Name()
		defer func() {
			f.Close()
			os.Remove(name)
		}()
		if failed {
			return
		}
		r, err := openSegment(s.codec, f, s.cfg.Compression)
		if err != nil {
			s.fail(err)
			failed = true
			return
		}
		for !failed {
			if frames != nil {
				frame, err := r.readFrame()
				if err == io.EOF {
					return
				}
				if err != nil {
					s.fail(fmt.Errorf("mapreduce: replaying send-overflow segment: %w", err))
					failed = true
					return
				}
				if err := frames.SendFrame(st.dst, frame); err != nil {
					s.fail(err)
					failed = true
				}
				continue
			}
			_, b, err := r.next()
			if err == io.EOF {
				return
			}
			if err != nil {
				s.fail(fmt.Errorf("mapreduce: replaying send-overflow segment: %w", err))
				failed = true
				return
			}
			if err := ex.Send(st.dst, b); err != nil {
				s.fail(err)
				failed = true
			}
		}
	}
	drainSegments := func() {
		for {
			f := st.popSegment()
			if f == nil {
				return
			}
			replaySegment(f)
		}
	}
	for {
		// Strictly prefer queued in-memory runs: replaying a segment blocks
		// the queue for its whole duration, and doing that while the map
		// workers are still producing turns one overflow into a spiral
		// (stalled flushes → more spill → more replay). Segments are
		// replayed only after the queue has stayed idle for a beat — the
		// network has genuinely caught up — or when the map is done.
		select {
		case batches, ok := <-st.queue:
			if !ok {
				drainSegments()
				return
			}
			send(batches)
			continue
		default:
		}
		idle := time.NewTimer(senderIdleCheck)
		select {
		case batches, ok := <-st.queue:
			idle.Stop()
			if !ok {
				drainSegments()
				return
			}
			send(batches)
		case <-idle.C:
			if f := st.popSegment(); f != nil {
				replaySegment(f)
			} else {
				batches, ok := <-st.queue
				if !ok {
					drainSegments()
					return
				}
				send(batches)
			}
		}
	}
}

// finish flushes every shard, joins the senders and returns the first
// streaming error. After finish, CloseSend forms the barrier as usual.
func (s *streamShuffle[K, V]) finish() error {
	for _, sh := range s.shards {
		sh.mu.Lock()
		var err error
		if sh.groups != nil {
			err = sh.flushLocked(true)
		}
		if err != nil {
			sh.dest.dead.Store(true)
		}
		sh.mu.Unlock()
		if err != nil {
			s.fail(err)
		}
	}
	for _, st := range s.dests {
		if st.queue != nil {
			close(st.queue)
		}
	}
	s.senders.Wait()
	if b, ok := s.err.Load().(errBox); ok {
		return b.err
	}
	return nil
}

// fold adds the streaming counters to the job metrics. Call after finish.
func (s *streamShuffle[K, V]) fold(metrics *Metrics) {
	for _, st := range s.dests {
		batches := st.batches.Load()
		metrics.ShuffleRecords += st.records.Load()
		metrics.StreamedBatches += batches
		st.spillMu.Lock()
		spilledBytes, spillCount := st.spilledBytes, st.spillCount
		st.spillMu.Unlock()
		metrics.SpilledBytes += spilledBytes
		metrics.SpillCount += spillCount
		metrics.SendOverflowSegments += spillCount
		if !s.wire {
			metrics.ShuffleBytes += st.sizeBytes.Load()
		}
		if !st.self && (batches > 0 || spillCount > 0) {
			metrics.StreamPeers = append(metrics.StreamPeers, PeerStreamStats{
				Peer:             st.dst,
				StreamedBatches:  batches,
				OverflowSegments: spillCount,
			})
		}
	}
}

// cleanup removes overflow segments that were never replayed (error paths)
// and the overflow directory. Safe to call when nothing overflowed.
func (s *streamShuffle[K, V]) cleanup() {
	for _, st := range s.dests {
		st.spillMu.Lock()
		for _, f := range st.segs {
			f.Close()
		}
		st.segs = nil
		st.spillMu.Unlock()
	}
	if s.dir != "" {
		os.RemoveAll(s.dir)
	}
}

// fail records the first streaming error.
func (s *streamShuffle[K, V]) fail(err error) {
	s.err.CompareAndSwap(nil, errBox{err})
}
