package mapreduce

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// sendOverflowGrace is how long a flush with a full sender queue waits for
// the sender before overflowing the run to disk. A full queue usually means
// the sender goroutine merely lost a scheduling race (or the box is briefly
// oversubscribed), not that the network stalled; paying disk for that would
// be far more expensive than the wait. Once a flush does time out, the peer
// is marked lagging and further overflow goes to disk immediately (no
// repeated stalls) until the sender catches up.
const sendOverflowGrace = 100 * time.Millisecond

// senderIdleCheck is how long the sender waits on an empty queue before
// replaying an overflow segment. Replaying while the map workers are still
// producing turns one overflow into a spiral (the replay blocks the queue,
// stalling flushes into more spill), so segments wait for a genuinely idle
// queue — or the end of the map phase, which drains them unconditionally.
const senderIdleCheck = 20 * time.Millisecond

// This file implements the streaming pipelined shuffle
// (ShuffleConfig.SendBufferBytes > 0): instead of accumulating the whole map
// output and shuffling after a phase barrier, map workers emit into bounded
// per-peer send buffers that dedicated sender goroutines drain over the
// exchange while mapping continues. Network transfer therefore overlaps map
// compute, and a peer's sender memory is capped by SendBufferBytes per peer:
//
//   - a buffer that reaches the cap is flushed — the combiner runs on the
//     buffered groups (partial combine; the reducers merge the partial
//     results exactly like batches from different peers), and the combined
//     batches are handed to the peer's sender goroutine;
//   - when the sender is still busy with the previous run (the network is
//     applying backpressure), the flushed run overflows to an on-disk
//     segment in the FrameCodec wire encoding — the same machinery the
//     receive side spills with — and the sender replays those segments as
//     the network catches up, so map compute never stalls and sender memory
//     never grows;
//   - batches this peer owns flush into the shuffle accumulator, which is
//     itself bounded by the spill threshold.
//
// Streaming and barrier mode produce identical mining results: the reduce
// phase sees the same multiset of values per key either way, only grouped
// into different partial batches.

// testSendBufferProbe, when non-nil, observes the per-peer send-buffer
// occupancy (in accounted bytes) after every emit. Tests use it to assert
// the SendBufferBytes bound; it must be set before the job starts and not
// changed while one runs.
var testSendBufferProbe func(peer int, occupancyBytes int64)

// jobShape is the slice of Job the streaming shuffle needs, avoiding a type
// parameter tangle with the job's input and output types.
type jobShape[K comparable, V any] struct {
	combine func(K, []V) []V
	sizeOf  func(K, V) int
	codec   *FrameCodec[K, V]
	wire    bool // ShuffleBytes comes from WireMetrics, skip the estimate
}

// streamShuffle is the per-RunExchange state of the streaming shuffle.
type streamShuffle[K comparable, V any] struct {
	cfg     ShuffleConfig
	combine func(K, []V) []V
	sizeOf  func(K, V) int
	codec   *FrameCodec[K, V]
	wire    bool

	acc    *shuffleAccumulator[K, V]
	states []*peerSendState[K, V]

	dir     string // lazily created overflow-segment directory
	dirOnce sync.Once
	dirErr  error

	senders sync.WaitGroup
	err     atomic.Value // first sender/flush error, wrapped in errBox
}

type errBox struct{ err error }

// peerSendState is one destination's bounded send buffer.
type peerSendState[K comparable, V any] struct {
	owner *streamShuffle[K, V]
	dst   int
	self  bool

	mu      sync.Mutex
	groups  map[K][]V
	bytes   int64
	dead    bool // a sender/flush error was recorded; drop further data
	lagging bool // the sender timed the grace out; overflow goes straight to disk

	// queue hands flushed runs to the sender goroutine (remote peers only).
	// Its small capacity absorbs scheduler jitter — the sender losing the
	// CPU for a couple of timeslices must not stall the map workers or send
	// runs to disk. Flushes beyond a full queue overflow to disk after the
	// grace, so in-flight sender memory stays a small constant multiple of
	// SendBufferBytes per peer.
	queue chan []KeyBatch[K, V]

	// overflow segments, completed and not yet sent (remote peers only).
	segs         []*os.File
	spilledBytes int64
	spillCount   int64
	buf          []byte // scratch encode buffer for overflow segments

	// accounting, folded into Metrics after the barrier.
	records   int64 // post-combine records flushed (ShuffleRecords share)
	batches   int64 // flushed batches (StreamedBatches share)
	sizeBytes int64 // SizeOf estimate of flushed records (non-wire runs)
}

// newStreamShuffle prepares the send states and starts one sender goroutine
// per remote peer.
func newStreamShuffle[K comparable, V any](cfg ShuffleConfig, job jobShape[K, V], acc *shuffleAccumulator[K, V], ex Exchange[K, V]) *streamShuffle[K, V] {
	sizeOf := job.sizeOf
	if sizeOf == nil {
		sizeOf = job.codec.RecordSize
	}
	s := &streamShuffle[K, V]{
		cfg:     cfg,
		combine: job.combine,
		sizeOf:  sizeOf,
		codec:   job.codec,
		wire:    job.wire,
		acc:     acc,
		states:  make([]*peerSendState[K, V], ex.NumPeers()),
	}
	self := ex.Self()
	for p := range s.states {
		st := &peerSendState[K, V]{owner: s, dst: p, self: p == self, groups: make(map[K][]V)}
		s.states[p] = st
		if p == self {
			continue
		}
		st.queue = make(chan []KeyBatch[K, V], 4)
		s.senders.Add(1)
		go st.runSender(ex)
	}
	return s
}

// emit routes one record into the owning peer's send buffer, flushing the
// buffer first when adding the record would exceed the cap (so occupancy
// stays within SendBufferBytes, plus one record when a single record is
// larger than the whole cap).
func (s *streamShuffle[K, V]) emit(dst int, k K, v V) {
	st := s.states[dst]
	sz := int64(s.sizeOf(k, v))
	st.mu.Lock()
	if st.dead {
		st.mu.Unlock()
		return
	}
	if st.bytes > 0 && st.bytes+sz > s.cfg.SendBufferBytes {
		if err := st.flushLocked(false); err != nil {
			st.dead = true
			st.groups = nil
			st.mu.Unlock()
			s.fail(err)
			return
		}
	}
	st.groups[k] = append(st.groups[k], v)
	st.bytes += sz
	if testSendBufferProbe != nil {
		testSendBufferProbe(dst, st.bytes)
	}
	st.mu.Unlock()
}

// flushLocked combines the buffered groups and hands them off: self-owned
// batches go to the shuffle accumulator, remote batches to the sender's
// queue, or — when the sender is busy and this is not the final flush — to
// an overflow segment on disk. Callers hold st.mu.
func (st *peerSendState[K, V]) flushLocked(final bool) error {
	if len(st.groups) == 0 {
		return nil
	}
	s := st.owner
	batches := make([]KeyBatch[K, V], 0, len(st.groups))
	for k, vs := range st.groups {
		if s.combine != nil {
			vs = s.combine(k, vs)
		}
		st.records += int64(len(vs))
		if !s.wire {
			for _, v := range vs {
				st.sizeBytes += int64(s.sizeOf(k, v))
			}
		}
		batches = append(batches, KeyBatch[K, V]{Key: k, Values: vs})
	}
	st.batches += int64(len(batches))
	st.groups = make(map[K][]V, len(st.groups))
	st.bytes = 0

	if st.self {
		for _, b := range batches {
			if err := s.acc.add(b); err != nil {
				return err
			}
		}
		return nil
	}
	if final {
		st.queue <- batches // mapping is done; blocking costs nothing
		return nil
	}
	select {
	case st.queue <- batches:
		st.lagging = false
		return nil
	default:
	}
	if !st.lagging {
		// Give the sender a short grace before paying disk. Holding st.mu
		// here is deliberate: other map workers bound for this peer block on
		// the mutex, which is exactly the backpressure the full buffer
		// means. The sender never needs st.mu to drain the queue, so it can
		// free a slot (and end the wait) while we hold it.
		timer := time.NewTimer(sendOverflowGrace)
		defer timer.Stop()
		select {
		case st.queue <- batches:
			return nil
		case <-timer.C:
			st.lagging = true
		}
	}
	return st.spillRunLocked(batches)
}

// spillRunLocked writes one flushed run to a fresh overflow segment the
// sender replays later. Runs are unsorted — unlike receive-side segments
// they are never merged, only replayed — so the write is a straight encode.
func (st *peerSendState[K, V]) spillRunLocked(batches []KeyBatch[K, V]) error {
	s := st.owner
	s.dirOnce.Do(func() {
		dir, err := os.MkdirTemp(s.cfg.TmpDir, "seqmine-sendspill-")
		if err != nil {
			s.dirErr = fmt.Errorf("mapreduce: creating send-overflow directory: %w", err)
			return
		}
		s.dir = dir
	})
	if s.dirErr != nil {
		return s.dirErr
	}
	sink, err := newSegmentSink(s.dir, int(st.spillCount), s.cfg.Compression)
	if err != nil {
		return err
	}
	w := segmentWriter[K, V]{codec: s.codec, bw: sink.bw, vbuf: st.buf}
	for _, b := range batches {
		if err := w.writeKey(s.codec.AppendKey(nil, b.Key), b.Values); err != nil {
			sink.abort()
			return fmt.Errorf("mapreduce: writing send-overflow segment: %w", err)
		}
	}
	if err := sink.finish(); err != nil {
		return err
	}
	st.buf = w.vbuf
	st.segs = append(st.segs, sink.f)
	st.spilledBytes += sink.cw.n
	st.spillCount++
	return nil
}

// popSegment takes the oldest unsent overflow segment, if any.
func (st *peerSendState[K, V]) popSegment() *os.File {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.segs) == 0 {
		return nil
	}
	f := st.segs[0]
	st.segs = st.segs[1:]
	return f
}

// runSender drains the peer's queue and overflow segments over the exchange
// until the queue is closed and every segment is replayed. On a send error
// it keeps consuming (discarding) so flushes never block against a dead
// peer; the error surfaces after the barrier.
func (st *peerSendState[K, V]) runSender(ex Exchange[K, V]) {
	s := st.owner
	defer s.senders.Done()
	failed := false
	send := func(batches []KeyBatch[K, V]) {
		for _, b := range batches {
			if failed {
				return
			}
			if err := ex.Send(st.dst, b); err != nil {
				s.fail(err)
				failed = true
			}
		}
	}
	replaySegment := func(f *os.File) {
		name := f.Name()
		defer func() {
			f.Close()
			os.Remove(name)
		}()
		if failed {
			return
		}
		r, err := openSegment(s.codec, f, s.cfg.Compression)
		if err != nil {
			s.fail(err)
			failed = true
			return
		}
		for !failed {
			_, b, err := r.next()
			if err == io.EOF {
				return
			}
			if err != nil {
				s.fail(fmt.Errorf("mapreduce: replaying send-overflow segment: %w", err))
				failed = true
				return
			}
			send([]KeyBatch[K, V]{b})
		}
	}
	drainSegments := func() {
		for {
			f := st.popSegment()
			if f == nil {
				return
			}
			replaySegment(f)
		}
	}
	for {
		// Strictly prefer queued in-memory runs: replaying a segment blocks
		// the queue for its whole duration, and doing that while the map
		// workers are still producing turns one overflow into a spiral
		// (stalled flushes → more spill → more replay). Segments are
		// replayed only after the queue has stayed idle for a beat — the
		// network has genuinely caught up — or when the map is done.
		select {
		case batches, ok := <-st.queue:
			if !ok {
				drainSegments()
				return
			}
			send(batches)
			continue
		default:
		}
		idle := time.NewTimer(senderIdleCheck)
		select {
		case batches, ok := <-st.queue:
			idle.Stop()
			if !ok {
				drainSegments()
				return
			}
			send(batches)
		case <-idle.C:
			if f := st.popSegment(); f != nil {
				replaySegment(f)
			} else {
				batches, ok := <-st.queue
				if !ok {
					drainSegments()
					return
				}
				send(batches)
			}
		}
	}
}

// finish flushes every buffer, joins the senders and returns the first
// streaming error. After finish, CloseSend forms the barrier as usual.
func (s *streamShuffle[K, V]) finish() error {
	for _, st := range s.states {
		st.mu.Lock()
		err := st.flushLocked(true)
		if err != nil {
			st.dead = true
		}
		st.mu.Unlock()
		if err != nil {
			s.fail(err)
		}
	}
	for _, st := range s.states {
		if st.queue != nil {
			close(st.queue)
		}
	}
	s.senders.Wait()
	if b, ok := s.err.Load().(errBox); ok {
		return b.err
	}
	return nil
}

// fold adds the streaming counters to the job metrics. Call after finish.
func (s *streamShuffle[K, V]) fold(metrics *Metrics) {
	for _, st := range s.states {
		metrics.ShuffleRecords += st.records
		metrics.StreamedBatches += st.batches
		metrics.SpilledBytes += st.spilledBytes
		metrics.SpillCount += st.spillCount
		if !s.wire {
			metrics.ShuffleBytes += st.sizeBytes
		}
	}
}

// cleanup removes overflow segments that were never replayed (error paths)
// and the overflow directory. Safe to call when nothing overflowed.
func (s *streamShuffle[K, V]) cleanup() {
	for _, st := range s.states {
		st.mu.Lock()
		for _, f := range st.segs {
			f.Close()
		}
		st.segs = nil
		st.mu.Unlock()
	}
	if s.dir != "" {
		os.RemoveAll(s.dir)
	}
}

// fail records the first streaming error.
func (s *streamShuffle[K, V]) fail(err error) {
	s.err.CompareAndSwap(nil, errBox{err})
}
