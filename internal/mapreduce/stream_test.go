package mapreduce

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// streamingConfig is the fixture streaming configuration of these tests: a
// tiny send buffer so even the small word-count inputs flush many times.
func streamingConfig(t *testing.T, sendBuffer int64) Config {
	t.Helper()
	return Config{MapWorkers: 3, ReduceWorkers: 3,
		Shuffle: ShuffleConfig{SendBufferBytes: sendBuffer, TmpDir: t.TempDir()}}
}

// TestStreamingMatchesBarrier is the core equivalence property: for random
// inputs, worker counts and buffer sizes, the streaming shuffle must produce
// byte-identical output to the barrier shuffle.
func TestStreamingMatchesBarrier(t *testing.T) {
	inputs := spillInputs(200)
	job := spillWordCountJob()
	want, wantMetrics := Run(inputs, Config{MapWorkers: 2, ReduceWorkers: 2}, job)
	sort.Strings(want)
	if wantMetrics.StreamedBatches != 0 {
		t.Fatalf("barrier run reported streamed batches: %+v", wantMetrics)
	}

	for _, workers := range []int{1, 2, 4} {
		for _, buffer := range []int64{64, 512, 1 << 20} {
			cfg := Config{MapWorkers: workers, ReduceWorkers: workers,
				Shuffle: ShuffleConfig{SendBufferBytes: buffer, TmpDir: t.TempDir()}}
			got, metrics := Run(inputs, cfg, job)
			sort.Strings(got)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("workers=%d buffer=%d: streaming output differs from barrier output", workers, buffer)
			}
			if metrics.StreamedBatches == 0 {
				t.Errorf("workers=%d buffer=%d: expected streamed batches", workers, buffer)
			}
			if metrics.MapOutputRecords != wantMetrics.MapOutputRecords {
				t.Errorf("workers=%d buffer=%d: MapOutputRecords = %d, want %d",
					workers, buffer, metrics.MapOutputRecords, wantMetrics.MapOutputRecords)
			}
			if metrics.Partitions != wantMetrics.Partitions {
				t.Errorf("workers=%d buffer=%d: Partitions = %d, want %d",
					workers, buffer, metrics.Partitions, wantMetrics.Partitions)
			}
			// Per-flush combining still merges duplicates within a buffer, so
			// the communicated records stay within the plausible envelope.
			if metrics.ShuffleRecords > metrics.MapOutputRecords || metrics.ShuffleRecords < metrics.Partitions {
				t.Errorf("workers=%d buffer=%d: implausible ShuffleRecords %d (map output %d, partitions %d)",
					workers, buffer, metrics.ShuffleRecords, metrics.MapOutputRecords, metrics.Partitions)
			}
			if metrics.ShuffleBytes <= 0 || metrics.ShuffleTime <= 0 {
				t.Errorf("workers=%d buffer=%d: streaming metrics not populated: %+v", workers, buffer, metrics)
			}
		}
	}
}

// TestStreamingSendBufferBound asserts the acceptance criterion directly:
// per-peer send-buffer occupancy never exceeds SendBufferBytes.
func TestStreamingSendBufferBound(t *testing.T) {
	const bufCap = 256
	var max atomic.Int64
	testSendBufferProbe = func(_ int, occupancy int64) {
		for {
			cur := max.Load()
			if occupancy <= cur || max.CompareAndSwap(cur, occupancy) {
				return
			}
		}
	}
	defer func() { testSendBufferProbe = nil }()

	inputs := spillInputs(150)
	job := spillWordCountJob()
	want, _ := Run(inputs, Config{MapWorkers: 2, ReduceWorkers: 2}, job)
	sort.Strings(want)

	got, metrics := Run(inputs, streamingConfig(t, bufCap), job)
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Error("streaming output differs from barrier output")
	}
	if metrics.StreamedBatches == 0 {
		t.Fatal("expected streamed batches")
	}
	// Every record of the fixture is far smaller than the cap, so occupancy
	// must stay within it exactly (the documented slack of one record only
	// applies to records larger than the whole buffer).
	if got := max.Load(); got > bufCap {
		t.Errorf("send-buffer occupancy reached %d bytes, cap is %d", got, bufCap)
	}
	if max.Load() == 0 {
		t.Error("probe observed no occupancy")
	}
}

// TestStreamingMultiPeerLoopback checks equivalence across a 3-peer loopback
// group with streaming enabled on every peer.
func TestStreamingMultiPeerLoopback(t *testing.T) {
	inputs := spillInputs(200)
	job := spillWordCountJob()
	want, _ := Run(inputs, Config{MapWorkers: 2, ReduceWorkers: 2}, job)
	sort.Strings(want)

	group := NewLoopbackGroup[string, int](3)
	results := make([][]string, len(group))
	metricses := make([]Metrics, len(group))
	errs := make([]error, len(group))
	var wg sync.WaitGroup
	for p := range group {
		var split []string
		for i := p; i < len(inputs); i += len(group) {
			split = append(split, inputs[i])
		}
		wg.Add(1)
		go func(p int, split []string) {
			defer wg.Done()
			cfg := Config{MapWorkers: 2, ReduceWorkers: 2,
				Shuffle: ShuffleConfig{SendBufferBytes: 256, TmpDir: t.TempDir()}}
			results[p], metricses[p], errs[p] = RunExchange(split, cfg, job, group[p])
		}(p, split)
	}
	wg.Wait()
	var out []string
	var streamed int64
	for p := range group {
		if errs[p] != nil {
			t.Fatalf("peer %d: %v", p, errs[p])
		}
		out = append(out, results[p]...)
		streamed += metricses[p].StreamedBatches
	}
	sort.Strings(out)
	if !reflect.DeepEqual(out, want) {
		t.Error("multi-peer streaming output differs from single-process barrier output")
	}
	if streamed == 0 {
		t.Error("expected streamed batches across the group")
	}
}

// TestStreamingWithSpillAndCompression combines every shuffle bound: tiny
// send buffers, a tiny receive-side spill threshold and compressed segments.
// The output must still be byte-identical, and SpilledBytes must report the
// (smaller) compressed on-disk size.
func TestStreamingWithSpillAndCompression(t *testing.T) {
	inputs := spillInputs(300)
	job := spillWordCountJob()
	want, _ := Run(inputs, Config{MapWorkers: 3, ReduceWorkers: 3}, job)
	sort.Strings(want)

	base := ShuffleConfig{SendBufferBytes: 128, SpillThreshold: 256}
	var plain, compressed Metrics
	for _, compress := range []bool{false, true} {
		sc := base
		sc.Compression = compress
		sc.TmpDir = t.TempDir()
		cfg := Config{MapWorkers: 3, ReduceWorkers: 3, Shuffle: sc}
		got, metrics := Run(inputs, cfg, job)
		sort.Strings(got)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("compression=%v: bounded-shuffle output differs from in-memory output", compress)
		}
		if metrics.SpillCount == 0 || metrics.SpilledBytes == 0 {
			t.Fatalf("compression=%v: expected spilling, got %+v", compress, metrics)
		}
		if compress {
			compressed = metrics
		} else {
			plain = metrics
		}
	}
	// The fixture words are highly redundant; DEFLATE must shrink the
	// on-disk segments.
	if compressed.SpilledBytes >= plain.SpilledBytes {
		t.Errorf("compressed spill (%d bytes) is not smaller than plain spill (%d bytes)",
			compressed.SpilledBytes, plain.SpilledBytes)
	}
}

// gatedExchange blocks every Send until the gate channel is closed,
// simulating a network that has stalled completely: the per-peer sender
// goroutines wedge on their first frame, so full send buffers must overflow
// to map-side spill segments instead of stalling the map workers forever.
type gatedExchange[K comparable, V any] struct {
	Exchange[K, V]
	gate <-chan struct{}
}

func (g *gatedExchange[K, V]) Send(dst int, b KeyBatch[K, V]) error {
	<-g.gate
	return g.Exchange.Send(dst, b)
}

// TestStreamingBackpressureOverflowsToDisk pins the bounded-memory claim: a
// sender that cannot keep up must push flushed runs to disk instead of
// stalling map workers or growing the buffer, and the replayed segments must
// still produce identical output once the network recovers.
func TestStreamingBackpressureOverflowsToDisk(t *testing.T) {
	inputs := spillInputs(120)
	job := spillWordCountJob()
	want, _ := Run(inputs, Config{MapWorkers: 2, ReduceWorkers: 2}, job)
	sort.Strings(want)

	gate := make(chan struct{})
	group := NewLoopbackGroup[string, int](2)
	results := make([][]string, len(group))
	metricses := make([]Metrics, len(group))
	errs := make([]error, len(group))
	var wg sync.WaitGroup
	for p := range group {
		var split []string
		for i := p; i < len(inputs); i += len(group) {
			split = append(split, inputs[i])
		}
		wg.Add(1)
		go func(p int, split []string) {
			defer wg.Done()
			cfg := Config{MapWorkers: 2, ReduceWorkers: 2,
				Shuffle: ShuffleConfig{SendBufferBytes: 64, TmpDir: t.TempDir()}}
			ex := &gatedExchange[string, int]{Exchange: group[p], gate: gate}
			results[p], metricses[p], errs[p] = RunExchange(split, cfg, job, ex)
		}(p, split)
	}
	// Leave the network stalled long enough for the map phases (fast) plus
	// the overflow grace to elapse, then let the senders drain everything.
	time.Sleep(4 * sendOverflowGrace)
	close(gate)
	wg.Wait()
	var out []string
	var spilled int64
	for p := range group {
		if errs[p] != nil {
			t.Fatalf("peer %d: %v", p, errs[p])
		}
		out = append(out, results[p]...)
		spilled += metricses[p].SpilledBytes
	}
	sort.Strings(out)
	if !reflect.DeepEqual(out, want) {
		t.Error("backpressured streaming output differs from barrier output")
	}
	if spilled == 0 {
		t.Error("expected map-side send overflow to spill under backpressure")
	}
}

// TestStreamingRequiresCodec mirrors the spill precondition.
func TestStreamingRequiresCodec(t *testing.T) {
	job := wordCountJob() // no codec
	cfg := Config{Shuffle: ShuffleConfig{SendBufferBytes: 64}}
	_, _, err := RunLocal(wordCountInputs, cfg, job)
	if err == nil {
		t.Fatal("expected an error for streaming without a codec")
	}
}

// TestStreamingEmptyInput: no emits, no flushes, no batches — and no hang.
func TestStreamingEmptyInput(t *testing.T) {
	out, metrics := Run(nil, streamingConfig(t, 128), spillWordCountJob())
	if len(out) != 0 || metrics.StreamedBatches != 0 || metrics.ShuffleRecords != 0 {
		t.Errorf("empty streaming input should produce nothing: %v %+v", out, metrics)
	}
}

// TestStreamingPreservesEmptyValueKeys: the per-flush combiner may prune
// every value of a key; the key must still reach Reduce (same contract as
// the spill path).
func TestStreamingPreservesEmptyValueKeys(t *testing.T) {
	job := spillWordCountJob()
	job.Combine = func(k string, vs []int) []int {
		if k == "word000" {
			return nil
		}
		return vs
	}
	job.Reduce = func(k string, vs []int, emit func(string)) {
		emit(k)
	}
	inputs := spillInputs(150)
	want, _ := Run(inputs, Config{MapWorkers: 2, ReduceWorkers: 2}, job)
	sort.Strings(want)

	got, metrics := Run(inputs, streamingConfig(t, 128), job)
	sort.Strings(got)
	if metrics.StreamedBatches == 0 {
		t.Fatal("expected streamed batches")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("streaming run dropped or altered keys: got %d keys, want %d", len(got), len(want))
	}
	found := false
	for _, s := range got {
		if s == "word000" {
			found = true
		}
	}
	if !found {
		t.Error("the empty-value key must still reach Reduce in the streaming run")
	}
}

// TestRunExchangeCancel: a canceled Config.Context must abort the run with
// the context's error without wedging the other peers of the exchange — the
// canceled peer still delivers its end frame, so its neighbors complete their
// barrier normally (with whatever the canceled peer sent before stopping).
func TestRunExchangeCancel(t *testing.T) {
	inputs := spillInputs(200)
	job := spillWordCountJob()

	for _, streaming := range []bool{false, true} {
		name := "barrier"
		if streaming {
			name = "streaming"
		}
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			group := NewLoopbackGroup[string, int](2)
			slowMap := job
			slowMap.Map = func(in string, emit func(string, int)) {
				cancel() // cancel as soon as peer 0 starts mapping
				time.Sleep(time.Millisecond)
				job.Map(in, emit)
			}
			var sc ShuffleConfig
			if streaming {
				sc = ShuffleConfig{SendBufferBytes: 128, TmpDir: t.TempDir()}
			}
			errs := make([]error, 2)
			var wg sync.WaitGroup
			for p := range group {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					cfg := Config{MapWorkers: 2, ReduceWorkers: 2, Shuffle: sc}
					j := job
					var split []string
					if p == 0 {
						cfg.Context = ctx
						j = slowMap
						split = inputs
					}
					_, _, errs[p] = RunExchange(split, cfg, j, group[p])
				}(p)
			}
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("canceled exchange did not finish within 30s (wedged barrier?)")
			}
			if !errors.Is(errs[0], context.Canceled) {
				t.Errorf("canceled peer returned %v, want context.Canceled", errs[0])
			}
			if errs[1] != nil {
				t.Errorf("neighbor of the canceled peer failed: %v", errs[1])
			}
		})
	}
}

// TestStreamEmitShardedByWorker pins the sharding property indirectly: with
// several map workers and a buffer large enough that nothing flushes until
// the end, per-destination occupancy still respects the configured cap and
// output equals the barrier run.
func TestStreamEmitShardedByWorker(t *testing.T) {
	inputs := spillInputs(200)
	job := spillWordCountJob()
	want, _ := Run(inputs, Config{MapWorkers: 2, ReduceWorkers: 2}, job)
	sort.Strings(want)

	const bufCap = 1 << 10
	var max atomic.Int64
	testSendBufferProbe = func(_ int, occupancy int64) {
		for {
			cur := max.Load()
			if occupancy <= cur || max.CompareAndSwap(cur, occupancy) {
				return
			}
		}
	}
	defer func() { testSendBufferProbe = nil }()

	cfg := Config{MapWorkers: 8, ReduceWorkers: 2,
		Shuffle: ShuffleConfig{SendBufferBytes: bufCap, TmpDir: t.TempDir()}}
	got, metrics := Run(inputs, cfg, job)
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Error("sharded streaming output differs from barrier output")
	}
	if metrics.StreamedBatches == 0 {
		t.Fatal("expected streamed batches")
	}
	if got := max.Load(); got > bufCap {
		t.Errorf("send-buffer occupancy reached %d bytes across shards, cap is %d", got, bufCap)
	}
}
