package mapreduce

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// spillWordCountJob is wordCountJob with the codec the spill path needs.
func spillWordCountJob() Job[string, string, int, string] {
	job := wordCountJob()
	c := testCodec()
	job.Codec = &c
	return job
}

// spillInputs is large enough that a tiny threshold spills many runs.
func spillInputs(lines int) []string {
	rng := rand.New(rand.NewSource(11))
	words := make([]string, 150)
	for i := range words {
		words[i] = fmt.Sprintf("word%03d", i)
	}
	out := make([]string, lines)
	for i := range out {
		parts := make([]string, 12)
		for j := range parts {
			parts[j] = words[rng.Intn(len(words))]
		}
		out[i] = strings.Join(parts, " ")
	}
	return out
}

func TestRunSpillEquivalence(t *testing.T) {
	inputs := spillInputs(300)
	cfg := Config{MapWorkers: 3, ReduceWorkers: 3}
	want, wantMetrics := Run(inputs, cfg, spillWordCountJob())
	sort.Strings(want)
	if wantMetrics.SpilledBytes != 0 || wantMetrics.SpillCount != 0 {
		t.Fatalf("in-memory run reported spilling: %+v", wantMetrics)
	}

	const threshold = 256
	cfg.Shuffle = ShuffleConfig{SpillThreshold: threshold, TmpDir: t.TempDir()}
	got, metrics := Run(inputs, cfg, spillWordCountJob())
	sort.Strings(got)

	if !reflect.DeepEqual(got, want) {
		t.Errorf("spilled output differs from in-memory output:\n got %d records\nwant %d records", len(got), len(want))
	}
	if metrics.SpilledBytes == 0 || metrics.SpillCount == 0 {
		t.Fatalf("expected spilling at threshold %d, got %+v", threshold, metrics)
	}
	// The acceptance bar: the shuffle footprint exceeds the threshold by
	// >= 10x, and the run still completes with identical results.
	if metrics.ShuffleBytes < 10*threshold {
		t.Fatalf("shuffle footprint %d bytes does not exceed the threshold %d by 10x; grow the fixture", metrics.ShuffleBytes, threshold)
	}
	if metrics.Partitions != wantMetrics.Partitions {
		t.Errorf("partitions: got %d want %d", metrics.Partitions, wantMetrics.Partitions)
	}
	if metrics.MaxPartitionRecords != wantMetrics.MaxPartitionRecords {
		t.Errorf("max partition records: got %d want %d", metrics.MaxPartitionRecords, wantMetrics.MaxPartitionRecords)
	}
}

func TestRunExchangeSpillMultiPeerLoopback(t *testing.T) {
	inputs := spillInputs(200)
	job := spillWordCountJob()
	want, _ := Run(inputs, Config{MapWorkers: 2, ReduceWorkers: 2}, job)
	sort.Strings(want)

	group := NewLoopbackGroup[string, int](3)
	var (
		out     []string
		spilled int64
	)
	results := make([][]string, len(group))
	metricses := make([]Metrics, len(group))
	errs := make([]error, len(group))
	done := make(chan int, len(group))
	for p := range group {
		var split []string
		for i := p; i < len(inputs); i += len(group) {
			split = append(split, inputs[i])
		}
		go func(p int, split []string) {
			cfg := Config{MapWorkers: 2, ReduceWorkers: 2,
				Shuffle: ShuffleConfig{SpillThreshold: 512, TmpDir: t.TempDir()}}
			results[p], metricses[p], errs[p] = RunExchange(split, cfg, job, group[p])
			done <- p
		}(p, split)
	}
	for range group {
		<-done
	}
	for p := range group {
		if errs[p] != nil {
			t.Fatalf("peer %d: %v", p, errs[p])
		}
		out = append(out, results[p]...)
		spilled += metricses[p].SpilledBytes
	}
	sort.Strings(out)
	if !reflect.DeepEqual(out, want) {
		t.Errorf("multi-peer spilled output differs from single-process in-memory output")
	}
	if spilled == 0 {
		t.Error("expected at least one peer to spill")
	}
}

// TestSpillCompression runs the same spilling job with and without DEFLATE
// segments: the output must be identical and the compressed run's
// SpilledBytes — the on-disk size — must be smaller on the redundant
// fixture.
func TestSpillCompression(t *testing.T) {
	inputs := spillInputs(300)
	cfg := Config{MapWorkers: 3, ReduceWorkers: 3}
	want, _ := Run(inputs, cfg, spillWordCountJob())
	sort.Strings(want)

	var plain, compressed Metrics
	for _, compress := range []bool{false, true} {
		cfg.Shuffle = ShuffleConfig{SpillThreshold: 512, TmpDir: t.TempDir(), Compression: compress}
		got, metrics := Run(inputs, cfg, spillWordCountJob())
		sort.Strings(got)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("compression=%v: spilled output differs from in-memory output", compress)
		}
		if metrics.SpillCount == 0 || metrics.SpilledBytes == 0 {
			t.Fatalf("compression=%v: expected spilling, got %+v", compress, metrics)
		}
		if compress {
			compressed = metrics
		} else {
			plain = metrics
		}
	}
	if compressed.SpilledBytes >= plain.SpilledBytes {
		t.Errorf("compressed spill (%d bytes) is not smaller than plain spill (%d bytes)",
			compressed.SpilledBytes, plain.SpilledBytes)
	}
}

func TestSpillRequiresCodec(t *testing.T) {
	job := wordCountJob() // no codec
	cfg := Config{Shuffle: ShuffleConfig{SpillThreshold: 1}}
	_, _, err := RunLocal(wordCountInputs, cfg, job)
	if err == nil {
		t.Fatal("expected an error for spilling without a codec")
	}
}

func TestSpillSingleHotKey(t *testing.T) {
	// One key carrying every record exercises the chunked segment writer
	// (frames capped at spillChunkBytes) and the cross-run regrouping.
	job := spillWordCountJob()
	var lines []string
	for i := 0; i < 4000; i++ {
		lines = append(lines, "hot")
	}
	job.Combine = nil // keep every record so the hot key has 4000 values
	cfg := Config{MapWorkers: 2, ReduceWorkers: 2,
		Shuffle: ShuffleConfig{SpillThreshold: 128, TmpDir: t.TempDir()}}
	out, metrics := Run(lines, cfg, job)
	if len(out) != 1 || out[0] != "hot=4000" {
		t.Fatalf("got %v, want [hot=4000]", out)
	}
	if metrics.SpillCount == 0 {
		t.Fatal("expected spilling")
	}
	if metrics.MaxPartitionRecords != 4000 {
		t.Errorf("MaxPartitionRecords = %d, want 4000", metrics.MaxPartitionRecords)
	}
}

func TestSegmentWriterReaderRoundTrip(t *testing.T) {
	codec := testCodec()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	w := segmentWriter[string, int]{codec: &codec, bw: bw}
	batches := []KeyBatch[string, int]{
		{Key: "alpha", Values: []int{1, 2, 3}},
		{Key: "beta", Values: []int{4}},
		{Key: "gamma", Values: []int{5, 6}},
	}
	for _, b := range batches {
		if err := w.writeKey(codec.AppendKey(nil, b.Key), b.Values); err != nil {
			t.Fatalf("writeKey: %v", err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	r := newSegmentReader(&codec, bufio.NewReader(bytes.NewReader(buf.Bytes())), maxSpillFrame)
	var got []KeyBatch[string, int]
	for {
		keyBytes, b, err := r.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("next: %v", err)
		}
		if !bytes.Equal(keyBytes, codec.AppendKey(nil, b.Key)) {
			t.Errorf("keyBytes mismatch for %q", b.Key)
		}
		got = append(got, b)
	}
	if !reflect.DeepEqual(got, batches) {
		t.Errorf("round trip: got %+v want %+v", got, batches)
	}
}

func TestSegmentReaderCorrupt(t *testing.T) {
	codec := testCodec()
	valid := func() []byte {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		w := segmentWriter[string, int]{codec: &codec, bw: bw}
		if err := w.writeKey(codec.AppendKey(nil, "k"), []int{7}); err != nil {
			t.Fatal(err)
		}
		bw.Flush()
		return buf.Bytes()
	}()

	cases := map[string][]byte{
		"truncated frame":    valid[:len(valid)-1],
		"oversized length":   {0xff, 0xff, 0xff, 0xff, 0x7f},
		"zero-length frame":  {0x00},
		"garbage payload":    {0x03, 0xff, 0xff, 0xff},
		"length then eof":    {0x10},
		"overflowing varint": bytes.Repeat([]byte{0xff}, 12),
	}
	for name, data := range cases {
		r := newSegmentReader(&codec, bufio.NewReader(bytes.NewReader(data)), 1<<20)
		for {
			_, _, err := r.next()
			if err == io.EOF {
				t.Errorf("%s: reader reported a clean EOF on corrupt input", name)
				break
			}
			if err != nil {
				break // any non-EOF error is the expected outcome
			}
		}
	}
}

func TestSegmentReaderDefaultMaxFrame(t *testing.T) {
	codec := testCodec()
	// maxFrame <= 0 falls back to the package default bound.
	r := newSegmentReader(&codec, bufio.NewReader(bytes.NewReader(nil)), 0)
	if r.maxFrame != maxSpillFrame {
		t.Errorf("default maxFrame = %d, want %d", r.maxFrame, maxSpillFrame)
	}
	if _, _, err := r.next(); err != io.EOF {
		t.Errorf("empty segment: err = %v, want io.EOF", err)
	}
}

func TestSegmentWriterRejectsOversizedFrame(t *testing.T) {
	codec := testCodec()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	// A 64-byte frame bound: a key whose values cannot fit must be rejected
	// at write time, not produce a segment the reader would refuse.
	w := segmentWriter[string, int]{codec: &codec, bw: bw, maxFrame: 64}
	keyBytes := codec.AppendKey(nil, strings.Repeat("k", 80))
	if err := w.writeKey(keyBytes, []int{1}); err == nil {
		t.Fatal("expected an oversized-frame error")
	}
	// A frame under the bound still writes.
	if err := w.writeKey(codec.AppendKey(nil, "ok"), []int{1, 2}); err != nil {
		t.Fatalf("small frame: %v", err)
	}
}

// TestSpillPreservesEmptyValueKeys pins the engine contract that a key whose
// combiner pruned every value still reaches Reduce, spilled or not.
func TestSpillPreservesEmptyValueKeys(t *testing.T) {
	job := spillWordCountJob()
	// The combiner drops every value of the hottest word but keeps the key.
	job.Combine = func(k string, vs []int) []int {
		if k == "word000" {
			return nil
		}
		return vs
	}
	job.Reduce = func(k string, vs []int, emit func(string)) {
		emit(fmt.Sprintf("%s/%d", k, len(vs)))
	}
	inputs := spillInputs(200)
	want, _ := Run(inputs, Config{MapWorkers: 2, ReduceWorkers: 2}, job)
	sort.Strings(want)

	cfg := Config{MapWorkers: 2, ReduceWorkers: 2,
		Shuffle: ShuffleConfig{SpillThreshold: 256, TmpDir: t.TempDir()}}
	got, metrics := Run(inputs, cfg, job)
	sort.Strings(got)
	if metrics.SpillCount == 0 {
		t.Fatal("expected spilling")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("spilling run dropped or altered keys:\n got %d keys\nwant %d keys", len(got), len(want))
	}
	found := false
	for _, s := range got {
		if s == "word000/0" {
			found = true
		}
	}
	if !found {
		t.Error("the empty-value key must still reach Reduce in the spilling run")
	}
}
