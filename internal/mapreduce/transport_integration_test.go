package mapreduce_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"seqmine/internal/mapreduce"
	"seqmine/internal/transport"
)

// TestRunExchangeManyKeysOverTransport shuffles thousands of tiny batches
// across three real TCP peers. Regression test for a deadlock in the frame
// adapter's self-delivery path: with more than an inbox's worth of
// self-owned keys and remote frames small enough to sit in the connections'
// write buffers, a bounded self queue wedged sender and receiver against
// each other.
func TestRunExchangeManyKeysOverTransport(t *testing.T) {
	const (
		npeers = 3
		nkeys  = 3000
	)
	nodes := make([]*transport.Node, npeers)
	addrs := make([]string, npeers)
	for i := range nodes {
		node, err := transport.NewNode("127.0.0.1:0", transport.Config{})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		defer node.Close()
		nodes[i] = node
		addrs[i] = node.Addr()
	}

	codec := mapreduce.FrameCodec[int, int]{
		AppendKey: func(buf []byte, k int) []byte { return mapreduce.AppendUvarint(buf, uint64(k)) },
		ReadKey: func(data []byte, pos int) (int, int, error) {
			v, pos, err := mapreduce.ReadUvarint(data, pos)
			return int(v), pos, err
		},
		AppendValue: func(buf []byte, v int) []byte { return mapreduce.AppendUvarint(buf, uint64(v)) },
		ReadValue: func(data []byte, pos int) (int, int, error) {
			v, pos, err := mapreduce.ReadUvarint(data, pos)
			return int(v), pos, err
		},
	}
	// Every peer emits every key once, so each peer owns ~nkeys/npeers keys
	// (one third of its own batches are self-destined) and every reduce sees
	// exactly npeers values.
	job := mapreduce.Job[int, int, int, string]{
		Map: func(base int, emit func(int, int)) {
			for k := base; k < nkeys; k += npeers * 10 {
				emit(k, 1)
			}
		},
		Reduce: func(k int, vs []int, emit func(string)) {
			sum := 0
			for _, v := range vs {
				sum += v
			}
			emit(fmt.Sprintf("%d=%d", k, sum))
		},
		Hash: func(k int) uint64 { return mapreduce.HashUint64(uint64(k)) },
	}

	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		out   []string
		fails []error
	)
	for p := 0; p < npeers; p++ {
		// Every peer gets all residues, so every peer emits every key once.
		var inputs []int
		for i := 0; i < npeers*10; i++ {
			inputs = append(inputs, i)
		}
		wg.Add(1)
		go func(p int, inputs []int) {
			defer wg.Done()
			bx, err := nodes[p].OpenExchange("many-keys", p, addrs)
			if err != nil {
				mu.Lock()
				fails = append(fails, err)
				mu.Unlock()
				return
			}
			defer bx.Close()
			ex := mapreduce.NewFrameExchange(bx, codec)
			local, _, err := mapreduce.RunExchange(inputs, mapreduce.Config{MapWorkers: 2, ReduceWorkers: 2}, job, ex)
			mu.Lock()
			out = append(out, local...)
			if err != nil {
				fails = append(fails, err)
			}
			mu.Unlock()
		}(p, inputs)
	}
	wg.Wait()
	for _, err := range fails {
		t.Fatalf("RunExchange: %v", err)
	}
	if len(out) != nkeys {
		t.Fatalf("got %d reduced keys, want %d", len(out), nkeys)
	}
	for _, s := range out {
		var k, sum int
		if _, err := fmt.Sscanf(s, "%d=%d", &k, &sum); err != nil || sum != npeers {
			t.Fatalf("unexpected reduce output %q (want every key summed to %d)", s, npeers)
		}
	}
}

// TestRunExchangeSkewedOwnershipSpills pins every key on peer 0 and gives the
// transport a one-frame inbox, the pathological shape that used to require an
// unbounded self-delivery queue (the PR 2 workaround): peer 0 receives its
// own data plus everything the other peers send, with no room to buffer
// inbound frames. With the spill buffer bounding self-delivery instead, the
// job must complete — without deadlocking and with peer 0's memory bounded by
// the spill threshold — and produce the same groups as an in-memory run.
func TestRunExchangeSkewedOwnershipSpills(t *testing.T) {
	const (
		npeers = 3
		nkeys  = 800
	)
	nodes := make([]*transport.Node, npeers)
	addrs := make([]string, npeers)
	for i := range nodes {
		node, err := transport.NewNode("127.0.0.1:0", transport.Config{InboxFrames: 1})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		defer node.Close()
		nodes[i] = node
		addrs[i] = node.Addr()
	}

	codec := mapreduce.FrameCodec[int, int]{
		AppendKey: func(buf []byte, k int) []byte { return mapreduce.AppendUvarint(buf, uint64(k)) },
		ReadKey: func(data []byte, pos int) (int, int, error) {
			v, pos, err := mapreduce.ReadUvarint(data, pos)
			return int(v), pos, err
		},
		AppendValue: func(buf []byte, v int) []byte { return mapreduce.AppendUvarint(buf, uint64(v)) },
		ReadValue: func(data []byte, pos int) (int, int, error) {
			v, pos, err := mapreduce.ReadUvarint(data, pos)
			return int(v), pos, err
		},
	}
	job := mapreduce.Job[int, int, int, string]{
		Map: func(base int, emit func(int, int)) {
			for k := base; k < nkeys; k += npeers * 10 {
				emit(k, 1)
			}
		},
		Reduce: func(k int, vs []int, emit func(string)) {
			sum := 0
			for _, v := range vs {
				sum += v
			}
			emit(fmt.Sprintf("%d=%d", k, sum))
		},
		Hash:  func(int) uint64 { return 0 }, // every key is owned by peer 0
		Codec: &codec,
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		out     []string
		spilled int64
		fails   []error
	)
	for p := 0; p < npeers; p++ {
		var inputs []int
		for i := 0; i < npeers*10; i++ {
			inputs = append(inputs, i)
		}
		wg.Add(1)
		go func(p int, inputs []int) {
			defer wg.Done()
			bx, err := nodes[p].OpenExchange("skewed-spill", p, addrs)
			if err != nil {
				mu.Lock()
				fails = append(fails, err)
				mu.Unlock()
				return
			}
			defer bx.Close()
			ex := mapreduce.NewFrameExchange(bx, codec)
			cfg := mapreduce.Config{MapWorkers: 2, ReduceWorkers: 2,
				Shuffle: mapreduce.ShuffleConfig{SpillThreshold: 256, TmpDir: t.TempDir()}}
			local, metrics, err := mapreduce.RunExchange(inputs, cfg, job, ex)
			mu.Lock()
			out = append(out, local...)
			spilled += metrics.SpilledBytes
			if err != nil {
				fails = append(fails, err)
			}
			mu.Unlock()
		}(p, inputs)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("skewed shuffle did not complete within 60s (self-delivery deadlock?)")
	}
	for _, err := range fails {
		t.Fatalf("RunExchange: %v", err)
	}
	if len(out) != nkeys {
		t.Fatalf("got %d reduced keys, want %d", len(out), nkeys)
	}
	for _, s := range out {
		var k, sum int
		if _, err := fmt.Sscanf(s, "%d=%d", &k, &sum); err != nil || sum != npeers {
			t.Fatalf("unexpected reduce output %q (want every key summed to %d)", s, npeers)
		}
	}
	if spilled == 0 {
		t.Fatal("expected the owning peer to spill under the 256-byte threshold")
	}
}
