package mapreduce_test

import (
	"fmt"
	"sync"
	"testing"

	"seqmine/internal/mapreduce"
	"seqmine/internal/transport"
)

// BenchmarkShuffleOverlapTCP measures the streaming pipelined shuffle against
// the phase-synchronous barrier on the multiprocess path: a compute-heavy map
// peer shuffles every record to a reducer peer over localhost TCP (two
// transport nodes). In barrier mode not a byte moves until the whole map
// phase finishes, so the job pays map + transfer + accumulate sequentially;
// with streaming, the sender goroutine moves frames — and the remote peer
// decodes and accumulates them — while mapping continues, so wall-clock
// approaches max(map, shuffle) instead of the sum.
func BenchmarkShuffleOverlapTCP(b *testing.B) {
	for _, mode := range []struct {
		name    string
		shuffle mapreduce.ShuffleConfig
	}{
		{name: "barrier"},
		{name: "streaming", shuffle: mapreduce.ShuffleConfig{SendBufferBytes: 64 << 10}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			sc := mode.shuffle
			sc.TmpDir = b.TempDir()
			for i := 0; i < b.N; i++ {
				runOverlapJob(b, fmt.Sprintf("overlap-%s-%d", mode.name, i), sc)
			}
		})
	}
}

// overlapCodec moves int keys and fixed-size byte payloads.
func overlapCodec() mapreduce.FrameCodec[int, []byte] {
	return mapreduce.FrameCodec[int, []byte]{
		AppendKey: func(buf []byte, k int) []byte { return mapreduce.AppendUvarint(buf, uint64(k)) },
		ReadKey: func(data []byte, pos int) (int, int, error) {
			v, pos, err := mapreduce.ReadUvarint(data, pos)
			return int(v), pos, err
		},
		AppendValue: func(buf []byte, v []byte) []byte {
			buf = mapreduce.AppendUvarint(buf, uint64(len(v)))
			return append(buf, v...)
		},
		ReadValue: func(data []byte, pos int) ([]byte, int, error) {
			n, pos, err := mapreduce.ReadUvarint(data, pos)
			if err != nil {
				return nil, 0, err
			}
			if n > uint64(len(data)-pos) {
				return nil, 0, fmt.Errorf("truncated payload")
			}
			return data[pos : pos+int(n)], pos + int(n), nil
		},
	}
}

func runOverlapJob(b *testing.B, jobID string, sc mapreduce.ShuffleConfig) {
	b.Helper()
	const (
		npeers        = 2
		mapperInputs  = 96
		recordsPerMap = 24
		payloadSize   = 16 << 10
		spinPerRecord = 12000 // CPU work per emitted record
	)
	nodes := make([]*transport.Node, npeers)
	addrs := make([]string, npeers)
	for i := range nodes {
		node, err := transport.NewNode("127.0.0.1:0", transport.Config{})
		if err != nil {
			b.Fatal(err)
		}
		defer node.Close()
		nodes[i] = node
		addrs[i] = node.Addr()
	}

	codec := overlapCodec()
	job := mapreduce.Job[int, int, []byte, int]{
		Map: func(base int, emit func(int, []byte)) {
			payload := make([]byte, payloadSize)
			for r := 0; r < recordsPerMap; r++ {
				// Deterministic CPU burn standing in for pivot search /
				// NFA construction.
				x := uint64(base*recordsPerMap + r)
				for s := 0; s < spinPerRecord; s++ {
					x = mapreduce.HashUint64(x)
				}
				payload[0] = byte(x)
				emit(base*recordsPerMap+r, payload)
			}
		},
		Reduce: func(k int, vs [][]byte, emit func(int)) {
			total := 0
			for _, v := range vs {
				total += len(v)
			}
			emit(total)
		},
		Hash:   func(k int) uint64 { return 1 }, // every key lives on the reducer peer
		SizeOf: func(k int, v []byte) int { return 1 + 2 + len(v) },
		Codec:  &codec,
	}

	var wg sync.WaitGroup
	errs := make([]error, npeers)
	counts := make([]int, npeers)
	for p := 0; p < npeers; p++ {
		var inputs []int
		if p == 0 { // peer 0 maps everything; peer 1 owns every key
			inputs = make([]int, mapperInputs)
			for i := range inputs {
				inputs[i] = i
			}
		}
		wg.Add(1)
		go func(p int, inputs []int) {
			defer wg.Done()
			bx, err := nodes[p].OpenExchange(jobID, p, addrs)
			if err != nil {
				errs[p] = err
				return
			}
			defer bx.Close()
			ex := mapreduce.NewFrameExchange(bx, codec)
			// One map worker: the contrast under test is whether the shuffle
			// (sender, remote decode and accumulate) can use the remaining
			// cores while the map core is busy.
			cfg := mapreduce.Config{MapWorkers: 1, ReduceWorkers: 2, Shuffle: sc}
			out, _, err := mapreduce.RunExchange(inputs, cfg, job, ex)
			errs[p] = err
			counts[p] = len(out)
		}(p, inputs)
	}
	wg.Wait()
	total := 0
	for p := 0; p < npeers; p++ {
		if errs[p] != nil {
			b.Fatalf("peer %d: %v", p, errs[p])
		}
		total += counts[p]
	}
	if total != mapperInputs*recordsPerMap {
		b.Fatalf("reduced %d keys, want %d", total, mapperInputs*recordsPerMap)
	}
}

// BenchmarkStreamEmitContention measures the emit hot path of the streaming
// shuffle under map-worker parallelism: many map workers emitting tiny
// records toward two destinations. Before the send buffers were sharded per
// map worker, every emit to one destination serialized on a single mutex, so
// this benchmark scaled inversely with MapWorkers; with per-worker shards the
// emits are contention-free and only flush handoffs synchronize.
func BenchmarkStreamEmitContention(b *testing.B) {
	codec := overlapCodec()
	payload := make([]byte, 16)
	job := mapreduce.Job[int, int, []byte, int]{
		Map: func(base int, emit func(int, []byte)) {
			for r := 0; r < 64; r++ {
				emit(base*64+r, payload)
			}
		},
		Reduce: func(k int, vs [][]byte, emit func(int)) { emit(len(vs)) },
		Hash:   func(k int) uint64 { return uint64(k) },
		SizeOf: func(k int, v []byte) int { return 1 + 1 + len(v) },
		Codec:  &codec,
	}
	inputs := make([]int, 512)
	for i := range inputs {
		inputs[i] = i
	}
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := mapreduce.Config{MapWorkers: workers, ReduceWorkers: 2,
				Shuffle: mapreduce.ShuffleConfig{SendBufferBytes: 32 << 10, TmpDir: b.TempDir()}}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				group := mapreduce.NewLoopbackGroup[int, []byte](2)
				var wg sync.WaitGroup
				for p := range group {
					wg.Add(1)
					go func(p int) {
						defer wg.Done()
						var split []int
						if p == 0 {
							split = inputs
						}
						if _, _, err := mapreduce.RunExchange(split, cfg, job, group[p]); err != nil {
							b.Error(err)
						}
					}(p)
				}
				wg.Wait()
			}
		})
	}
}
