package mapreduce

import (
	"bufio"
	"bytes"
	"compress/flate"
	"context"
	"io"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
)

// TestSegmentReaderZeroRecordSegment: a segment that was finished without a
// single frame (every buffered key drained to another segment, or a spill of
// an empty run) must read back as an immediate clean io.EOF on both the
// decoded and the raw paths, plain and compressed.
func TestSegmentReaderZeroRecordSegment(t *testing.T) {
	codec := testCodec()
	t.Run("plain", func(t *testing.T) {
		r := newSegmentReader(&codec, bufio.NewReader(bytes.NewReader(nil)), maxSpillFrame)
		if _, _, err := r.next(); err != io.EOF {
			t.Fatalf("next on empty segment: %v, want io.EOF", err)
		}
		rr := newSegmentReader(&codec, bufio.NewReader(bytes.NewReader(nil)), maxSpillFrame)
		if _, _, _, err := rr.nextRaw(); err != io.EOF {
			t.Fatalf("nextRaw on empty segment: %v, want io.EOF", err)
		}
	})
	t.Run("compressed", func(t *testing.T) {
		// A compressed zero-record segment is not zero bytes: it is a valid
		// empty DEFLATE stream, which must still yield a clean io.EOF.
		var buf bytes.Buffer
		fw, _ := flate.NewWriter(&buf, flate.BestSpeed)
		if err := fw.Close(); err != nil {
			t.Fatal(err)
		}
		r := newSegmentReader(&codec, bufio.NewReader(flate.NewReader(bytes.NewReader(buf.Bytes()))), maxSpillFrame)
		if _, _, err := r.next(); err != io.EOF {
			t.Fatalf("next on empty compressed segment: %v, want io.EOF", err)
		}
	})
}

// TestSegmentReaderTornCompressedSegment tears a compressed segment at every
// region of the compressed byte stream. A DEFLATE stream cut before its final
// block can never end cleanly, so the reader must surface an error — not a
// silent io.EOF that would drop the tail of a spill — and must never yield a
// frame that was not fully written.
func TestSegmentReaderTornCompressedSegment(t *testing.T) {
	codec := testCodec()
	var buf bytes.Buffer
	fw, _ := flate.NewWriter(&buf, flate.BestSpeed)
	bw := bufio.NewWriter(fw)
	w := segmentWriter[string, int]{codec: &codec, bw: bw}
	written := map[string][]int{"alpha": {1, 2, 3}, "beta": {300}, "gamma": {7, 8, 9, 10}}
	for _, k := range []string{"alpha", "beta", "gamma"} {
		if err := w.writeKey(codec.AppendKey(nil, k), written[k]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	cuts := []int{0, 1, len(full) / 4, len(full) / 2, 3 * len(full) / 4, len(full) - 1}
	for _, cut := range cuts {
		r := newSegmentReader(&codec, bufio.NewReader(flate.NewReader(bytes.NewReader(full[:cut]))), maxSpillFrame)
		frames := 0
		for {
			_, batch, err := r.next()
			if err == io.EOF {
				t.Fatalf("cut=%d: torn compressed segment ended with a clean io.EOF after %d frames", cut, frames)
			}
			if err != nil {
				break // surfaced the tear; exactly what the reduce path needs
			}
			if _, ok := written[batch.Key]; !ok {
				t.Fatalf("cut=%d: reader invented key %q", cut, batch.Key)
			}
			if frames++; frames > len(written) {
				t.Fatalf("cut=%d: reader yielded more frames than were written", cut)
			}
		}
	}
}

// TestSpillCrossBufferRawChunksThreeFlushes drives the accumulator the way a
// streaming shuffle does when one hot key keeps arriving across buffer
// flushes: decoded loopback batches and raw wire frames for the same key land
// in three separate runs (two spilled, one left in memory). The merge must
// deliver the key exactly once, with the per-spill external combine collapsing
// each decoded run and the raw chunks preserved byte-for-byte in
// segment-then-arrival order.
func TestSpillCrossBufferRawChunksThreeFlushes(t *testing.T) {
	codec := testCodec()
	acc := newShuffleAccumulator[string, int](context.Background(),
		ShuffleConfig{SpillThreshold: 1 << 20, TmpDir: t.TempDir()}, nil, &codec, nil)
	defer acc.cleanup()
	acc.combine = func(_ string, vs []int) []int {
		s := 0
		for _, v := range vs {
			s += v
		}
		return []int{s}
	}
	frame := func(k string, vs ...int) []byte {
		return codec.EncodeBatch(nil, KeyBatch[string, int]{Key: k, Values: vs})
	}
	spill := func() {
		acc.mu.Lock()
		err := acc.spillLocked()
		acc.mu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
	}

	// Flush 1: two decoded batches (combine collapses them to [6] at spill
	// time) plus a raw frame for the same key, and a raw-only key.
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(acc.add(KeyBatch[string, int]{Key: "hot", Values: []int{1, 2}}))
	must(acc.add(KeyBatch[string, int]{Key: "hot", Values: []int{3}}))
	must(acc.addRaw(frame("hot", 10)))
	must(acc.addRaw(frame("rawonly", 7, 8)))
	spill()
	// Flush 2: the same key again, one decoded and one raw contribution.
	must(acc.add(KeyBatch[string, int]{Key: "hot", Values: []int{4}}))
	must(acc.addRaw(frame("hot", 20, 21)))
	spill()
	// Flush 3 stays in memory: a final raw chunk plus a decoded-only key.
	must(acc.addRaw(frame("hot", 30)))
	must(acc.add(KeyBatch[string, int]{Key: "memonly", Values: []int{5}}))

	if _, n := acc.stats(); n != 2 {
		t.Fatalf("spill count = %d, want 2", n)
	}
	got := map[string][]int{}
	var order []string
	err := acc.merge(func(k string, vs []int) error {
		if _, dup := got[k]; dup {
			t.Fatalf("merge delivered key %q twice", k)
		}
		got[k] = append([]int(nil), vs...)
		order = append(order, k)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]int{
		// Segment order (seg 0, seg 1, in-memory runs), decoded-before-raw
		// within a segment, arrival order within a raw group.
		"hot":     {6, 10, 4, 20, 21, 30},
		"rawonly": {7, 8},
		"memonly": {5},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged groups = %v, want %v", got, want)
	}
	if !sort.StringsAreSorted(order) {
		t.Fatalf("merge delivered keys out of encoded order: %v", order)
	}
}

// TestSendBufferAdaptiveGrowth unit-tests noteFullFlush: the per-destination
// shard share doubles only after sendBufferGrowthFlushes consecutive
// capacity-triggered flushes with the sender keeping up, a lagging sender
// resets the streak, growth clamps at maxShardCap, and a configuration
// without headroom disables adaptation entirely.
func TestSendBufferAdaptiveGrowth(t *testing.T) {
	s := &streamShuffle[string, int]{shardCap: 64, maxShardCap: 256}
	st := &destSendState[string, int]{owner: s}
	st.shardCap.Store(s.shardCap)

	for i := 0; i < sendBufferGrowthFlushes-1; i++ {
		st.noteFullFlush()
	}
	if got := st.shardCap.Load(); got != 64 {
		t.Fatalf("shardCap grew after %d flushes: %d", sendBufferGrowthFlushes-1, got)
	}
	// A lagging flush resets the streak: the next three flushes must not grow.
	st.lagging.Store(true)
	st.noteFullFlush()
	st.lagging.Store(false)
	for i := 0; i < sendBufferGrowthFlushes-1; i++ {
		st.noteFullFlush()
	}
	if got := st.shardCap.Load(); got != 64 {
		t.Fatalf("shardCap grew across a lagging reset: %d", got)
	}
	st.noteFullFlush() // completes the streak
	if got := st.shardCap.Load(); got != 128 {
		t.Fatalf("shardCap after one growth = %d, want 128", got)
	}
	for i := 0; i < 2*sendBufferGrowthFlushes; i++ {
		st.noteFullFlush()
	}
	if got := st.shardCap.Load(); got != 256 {
		t.Fatalf("shardCap did not clamp at maxShardCap: %d", got)
	}

	fixed := &streamShuffle[string, int]{shardCap: 64, maxShardCap: 64}
	stFixed := &destSendState[string, int]{owner: fixed}
	stFixed.shardCap.Store(fixed.shardCap)
	for i := 0; i < 3*sendBufferGrowthFlushes; i++ {
		stFixed.noteFullFlush()
	}
	if got := stFixed.shardCap.Load(); got != 64 {
		t.Fatalf("adaptation ran without headroom: shardCap = %d", got)
	}
}

// TestStreamingAdaptiveMatchesBarrier runs the streaming shuffle with
// adaptive send buffers enabled end to end: output stays byte-identical to
// the barrier shuffle and occupancy stays within the adaptive bound.
func TestStreamingAdaptiveMatchesBarrier(t *testing.T) {
	const bufCap, bufMax = 64, 2048
	var max atomic.Int64
	testSendBufferProbe = func(_ int, occupancy int64) {
		for {
			cur := max.Load()
			if occupancy <= cur || max.CompareAndSwap(cur, occupancy) {
				return
			}
		}
	}
	defer func() { testSendBufferProbe = nil }()

	inputs := spillInputs(200)
	job := spillWordCountJob()
	want, _ := Run(inputs, Config{MapWorkers: 2, ReduceWorkers: 2}, job)
	sort.Strings(want)

	cfg := Config{MapWorkers: 3, ReduceWorkers: 3,
		Shuffle: ShuffleConfig{SendBufferBytes: bufCap, SendBufferMaxBytes: bufMax, TmpDir: t.TempDir()}}
	got, metrics := Run(inputs, cfg, job)
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Error("adaptive streaming output differs from barrier output")
	}
	if metrics.StreamedBatches == 0 {
		t.Fatal("expected streamed batches")
	}
	if got := max.Load(); got > bufMax {
		t.Errorf("send-buffer occupancy reached %d bytes, adaptive bound is %d", got, bufMax)
	}
}
