package mapreduce_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"seqmine/internal/mapreduce"
)

func benchLines(n int) []string {
	rng := rand.New(rand.NewSource(5))
	words := make([]string, 200)
	for i := range words {
		words[i] = fmt.Sprintf("w%d", i)
	}
	lines := make([]string, n)
	for i := range lines {
		k := rng.Intn(15) + 5
		parts := make([]string, k)
		for j := range parts {
			parts[j] = words[rng.Intn(len(words))]
		}
		lines[i] = strings.Join(parts, " ")
	}
	return lines
}

// BenchmarkWordCount measures the raw engine overhead with a classic word
// count at different worker counts.
func BenchmarkWordCount(b *testing.B) {
	lines := benchLines(2000)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			cfg := mapreduce.Config{MapWorkers: workers, ReduceWorkers: workers}
			for i := 0; i < b.N; i++ {
				mapreduce.Run(lines, cfg, wordCountJob())
			}
		})
	}
}

// BenchmarkCombine measures the effect of the combiner on a highly redundant
// input.
func BenchmarkCombine(b *testing.B) {
	lines := make([]string, 2000)
	for i := range lines {
		lines[i] = "alpha beta gamma alpha"
	}
	cfg := mapreduce.Config{MapWorkers: 2, ReduceWorkers: 2}
	b.Run("with-combiner", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mapreduce.Run(lines, cfg, wordCountJob())
		}
	})
	b.Run("without-combiner", func(b *testing.B) {
		job := wordCountJob()
		job.Combine = nil
		for i := 0; i < b.N; i++ {
			mapreduce.Run(lines, cfg, job)
		}
	})
}
