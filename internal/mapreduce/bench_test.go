package mapreduce_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"seqmine/internal/mapreduce"
)

func benchLines(n int) []string {
	rng := rand.New(rand.NewSource(5))
	words := make([]string, 200)
	for i := range words {
		words[i] = fmt.Sprintf("w%d", i)
	}
	lines := make([]string, n)
	for i := range lines {
		k := rng.Intn(15) + 5
		parts := make([]string, k)
		for j := range parts {
			parts[j] = words[rng.Intn(len(words))]
		}
		lines[i] = strings.Join(parts, " ")
	}
	return lines
}

// BenchmarkWordCount measures the raw engine overhead with a classic word
// count at different worker counts.
func BenchmarkWordCount(b *testing.B) {
	lines := benchLines(2000)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			cfg := mapreduce.Config{MapWorkers: workers, ReduceWorkers: workers}
			for i := 0; i < b.N; i++ {
				mapreduce.Run(lines, cfg, wordCountJob())
			}
		})
	}
}

// BenchmarkCombine measures the effect of the combiner on a skewed word
// distribution: most occurrences come from a handful of hot words while the
// tail stays wide, so map-side combining collapses the hot keys' emissions to
// one record per (worker, key) and the with-combiner variant moves a fraction
// of the records through the shuffle and the reduce-side grouping. The old
// workload (three words, uniformly repeated) made both variants degenerate to
// three shuffle groups, measuring the combiner's overhead instead of its win.
func BenchmarkCombine(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	hot := []string{"the", "of", "and", "to", "in", "for", "is", "on"}
	lines := make([]string, 2000)
	for i := range lines {
		parts := make([]string, 20)
		for j := range parts {
			if rng.Intn(100) < 85 {
				parts[j] = hot[rng.Intn(len(hot))]
			} else {
				parts[j] = fmt.Sprintf("tail%d", rng.Intn(5000))
			}
		}
		lines[i] = strings.Join(parts, " ")
	}
	cfg := mapreduce.Config{MapWorkers: 2, ReduceWorkers: 2}
	b.Run("with-combiner", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mapreduce.Run(lines, cfg, wordCountJob())
		}
	})
	b.Run("without-combiner", func(b *testing.B) {
		b.ReportAllocs()
		job := wordCountJob()
		job.Combine = nil
		for i := 0; i < b.N; i++ {
			mapreduce.Run(lines, cfg, job)
		}
	})
}
