package mapreduce_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"seqmine/internal/mapreduce"
)

// wordCountJob is the canonical MapReduce example used to exercise the
// engine.
func wordCountJob() mapreduce.Job[string, string, int64, [2]string] {
	return mapreduce.Job[string, string, int64, [2]string]{
		Map: func(line string, emit func(string, int64)) {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
		},
		Combine: func(_ string, vs []int64) []int64 {
			var s int64
			for _, v := range vs {
				s += v
			}
			return []int64{s}
		},
		Reduce: func(k string, vs []int64, emit func([2]string)) {
			var s int64
			for _, v := range vs {
				s += v
			}
			emit([2]string{k, fmt.Sprint(s)})
		},
		Hash:   mapreduce.HashString,
		SizeOf: func(k string, _ int64) int { return len(k) + 8 },
	}
}

func TestWordCount(t *testing.T) {
	lines := []string{
		"the quick brown fox",
		"the lazy dog",
		"the quick dog",
	}
	for _, workers := range []int{1, 2, 4, 8} {
		out, metrics := mapreduce.Run(lines, mapreduce.Config{MapWorkers: workers, ReduceWorkers: workers}, wordCountJob())
		got := map[string]string{}
		for _, kv := range out {
			got[kv[0]] = kv[1]
		}
		want := map[string]string{"the": "3", "quick": "2", "brown": "1", "fox": "1", "lazy": "1", "dog": "2"}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: word count = %v, want %v", workers, got, want)
		}
		if metrics.MapOutputRecords != 10 {
			t.Errorf("workers=%d: MapOutputRecords = %d, want 10", workers, metrics.MapOutputRecords)
		}
		if metrics.Partitions != 6 {
			t.Errorf("workers=%d: Partitions = %d, want 6", workers, metrics.Partitions)
		}
		// The combiner merges per-worker duplicates, so shuffle records can
		// never exceed map output records and must cover every partition.
		if metrics.ShuffleRecords > metrics.MapOutputRecords || metrics.ShuffleRecords < metrics.Partitions {
			t.Errorf("workers=%d: implausible shuffle records %d", workers, metrics.ShuffleRecords)
		}
		if metrics.ShuffleBytes <= 0 || metrics.Total() <= 0 {
			t.Errorf("workers=%d: metrics not populated: %+v", workers, metrics)
		}
	}
}

func TestCombinerReducesShuffle(t *testing.T) {
	// 100 identical lines: with one map worker the combiner must collapse the
	// emissions of each word to a single shuffle record.
	lines := make([]string, 100)
	for i := range lines {
		lines[i] = "alpha beta"
	}
	cfg := mapreduce.Config{MapWorkers: 1, ReduceWorkers: 1}
	_, with := mapreduce.Run(lines, cfg, wordCountJob())
	job := wordCountJob()
	job.Combine = nil
	_, without := mapreduce.Run(lines, cfg, job)
	if with.ShuffleRecords != 2 {
		t.Errorf("with combiner: ShuffleRecords = %d, want 2", with.ShuffleRecords)
	}
	if without.ShuffleRecords != 200 {
		t.Errorf("without combiner: ShuffleRecords = %d, want 200", without.ShuffleRecords)
	}
	if with.ShuffleBytes >= without.ShuffleBytes {
		t.Errorf("combiner should reduce shuffle bytes: %d vs %d", with.ShuffleBytes, without.ShuffleBytes)
	}
}

func TestNilHashAndSize(t *testing.T) {
	job := wordCountJob()
	job.Hash = nil
	job.SizeOf = nil
	out, metrics := mapreduce.Run([]string{"a b a"}, mapreduce.Config{MapWorkers: 2, ReduceWorkers: 4}, job)
	if len(out) != 2 {
		t.Errorf("expected 2 outputs, got %v", out)
	}
	// With SizeOf nil, every shuffled record counts one byte.
	if metrics.ShuffleBytes != metrics.ShuffleRecords {
		t.Errorf("default SizeOf should count one byte per record: %+v", metrics)
	}
}

func TestEmptyInput(t *testing.T) {
	out, metrics := mapreduce.Run(nil, mapreduce.Config{}, wordCountJob())
	if len(out) != 0 || metrics.ShuffleRecords != 0 || metrics.Partitions != 0 {
		t.Errorf("empty input should produce nothing: %v %+v", out, metrics)
	}
}

// TestParallelMatchesSequential is a property test: for random inputs, the
// engine's result must be independent of the worker configuration.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	words := []string{"a", "b", "c", "d", "e", "f", "g"}
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(50)
		lines := make([]string, n)
		for i := range lines {
			k := rng.Intn(5) + 1
			parts := make([]string, k)
			for j := range parts {
				parts[j] = words[rng.Intn(len(words))]
			}
			lines[i] = strings.Join(parts, " ")
		}
		ref, _ := mapreduce.Run(lines, mapreduce.Config{MapWorkers: 1, ReduceWorkers: 1}, wordCountJob())
		refSorted := renderKV(ref)
		for _, workers := range []int{2, 3, 8} {
			got, _ := mapreduce.Run(lines, mapreduce.Config{MapWorkers: workers, ReduceWorkers: workers}, wordCountJob())
			if !reflect.DeepEqual(renderKV(got), refSorted) {
				t.Fatalf("trial %d workers %d: %v != %v", trial, workers, renderKV(got), refSorted)
			}
		}
	}
}

func renderKV(kvs [][2]string) []string {
	out := make([]string, 0, len(kvs))
	for _, kv := range kvs {
		out = append(out, kv[0]+"="+kv[1])
	}
	sort.Strings(out)
	return out
}

func TestSortSlice(t *testing.T) {
	s := []int{3, 1, 2}
	mapreduce.SortSlice(s, func(a, b int) bool { return a < b })
	if !reflect.DeepEqual(s, []int{1, 2, 3}) {
		t.Errorf("SortSlice = %v", s)
	}
}

func TestHashFunctions(t *testing.T) {
	if mapreduce.HashUint64(1) == mapreduce.HashUint64(2) {
		t.Error("HashUint64 collision on small integers")
	}
	if mapreduce.HashString("abc") == mapreduce.HashString("abd") {
		t.Error("HashString collision on similar strings")
	}
	// Hash values must be stable (used for partitioning).
	if mapreduce.HashString("pivot") != mapreduce.HashString("pivot") {
		t.Error("HashString not deterministic")
	}
}
