package mapreduce

import (
	"bufio"
	"bytes"
	"io"
	"testing"
)

// FuzzSpillSegmentReader feeds arbitrary bytes to the spill-segment reader.
// The reader must terminate with io.EOF or an error — never panic, spin, or
// allocate beyond its frame bound — because the reduce phase trusts it to
// fail cleanly on a corrupt or torn segment file.
func FuzzSpillSegmentReader(f *testing.F) {
	codec := testCodec()

	// Seed with a well-formed two-frame segment and a few mutations.
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	w := segmentWriter[string, int]{codec: &codec, bw: bw}
	_ = w.writeKey(codec.AppendKey(nil, "alpha"), []int{1, 2, 3})
	_ = w.writeKey(codec.AppendKey(nil, "beta"), []int{300})
	bw.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add(bytes.Repeat([]byte{0xff}, 16))

	const maxFrame = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		r := newSegmentReader(&codec, bufio.NewReader(bytes.NewReader(data)), maxFrame)
		decFrames := 0
		var decErr error
		for {
			keyBytes, batch, err := r.next()
			if err != nil {
				decErr = err
				break
			}
			if len(keyBytes) == 0 {
				t.Fatal("decoded frame with empty key bytes")
			}
			// A decoded batch must re-encode to a frame the codec accepts,
			// i.e. the reader only ever yields self-consistent batches.
			frame := codec.EncodeBatch(nil, batch)
			if _, err := codec.DecodeBatch(frame); err != nil {
				t.Fatalf("re-encoded batch does not decode: %v", err)
			}
			if decFrames++; decFrames > 1<<20 {
				t.Fatal("reader yielded implausibly many frames")
			}
		}

		// Raw-relay form: the same bytes through nextRaw (the k-way merge's
		// path) must terminate too, and yield headers consistent with the
		// frame they came from. The raw path validates only the frame header,
		// so it may legally read past a value corruption that stops the
		// decoded reader — but a cleanly decodable segment must raw-read
		// cleanly to the same frame count.
		rr := newSegmentReader(&codec, bufio.NewReader(bytes.NewReader(data)), maxFrame)
		rawFrames := 0
		var rawErr error
		for {
			keyBytes, vals, count, err := rr.nextRaw()
			if err != nil {
				rawErr = err
				break
			}
			if len(keyBytes) == 0 {
				t.Fatal("raw frame with empty key bytes")
			}
			if count < 0 {
				t.Fatalf("raw frame with negative count %d", count)
			}
			frame := append([]byte(nil), keyBytes...)
			frame = AppendUvarint(frame, uint64(count))
			frame = append(frame, vals...)
			h, err := codec.parseFrameHeader(frame)
			if err != nil {
				t.Fatalf("reassembled raw frame does not parse: %v", err)
			}
			if h.keyLen != len(keyBytes) || h.count != count {
				t.Fatalf("reassembled header (keyLen %d, count %d) != raw read (keyLen %d, count %d)",
					h.keyLen, h.count, len(keyBytes), count)
			}
			if rawFrames++; rawFrames > 1<<20 {
				t.Fatal("raw reader yielded implausibly many frames")
			}
		}
		if decErr == io.EOF && (rawErr != io.EOF || rawFrames != decFrames) {
			t.Fatalf("decoded read ended cleanly after %d frames, raw read gave %d frames, err %v",
				decFrames, rawFrames, rawErr)
		}
		if rawFrames < decFrames {
			t.Fatalf("raw read stopped after %d frames, decoded read managed %d", rawFrames, decFrames)
		}
	})
}

// FuzzSpillSegmentRoundTrip writes fuzz-derived batches through the segment
// writer and asserts the reader returns them byte-identically and in order.
func FuzzSpillSegmentRoundTrip(f *testing.F) {
	f.Add("key", uint16(3), uint16(2))
	f.Add("", uint16(1), uint16(0))
	f.Add("a longer key with spaces", uint16(40), uint16(9))
	f.Fuzz(func(t *testing.T, key string, count uint16, stride uint16) {
		codec := testCodec()
		values := make([]int, int(count)%512)
		for i := range values {
			values[i] = i * int(stride)
		}
		if len(values) == 0 {
			return // segment writer skips empty value sets by design
		}
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		w := segmentWriter[string, int]{codec: &codec, bw: bw}
		if err := w.writeKey(codec.AppendKey(nil, key), values); err != nil {
			t.Fatalf("writeKey: %v", err)
		}
		bw.Flush()

		r := newSegmentReader(&codec, bufio.NewReader(bytes.NewReader(buf.Bytes())), maxSpillFrame)
		var got []int
		for {
			_, batch, err := r.next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("next: %v", err)
			}
			if batch.Key != key {
				t.Fatalf("key %q, want %q", batch.Key, key)
			}
			got = append(got, batch.Values...)
		}
		if len(got) != len(values) {
			t.Fatalf("got %d values, want %d", len(got), len(values))
		}
		for i := range got {
			if got[i] != values[i] {
				t.Fatalf("value %d: got %d want %d", i, got[i], values[i])
			}
		}

		// Raw-relay readback: the same segment through nextRaw must carry the
		// same values, still encoded, with frame counts that sum to the
		// original value count (writeKey may split a large batch across
		// frames; each raw frame must decode independently).
		rr := newSegmentReader(&codec, bufio.NewReader(bytes.NewReader(buf.Bytes())), maxSpillFrame)
		var raw []int
		rawCount := 0
		for {
			keyBytes, vals, count, err := rr.nextRaw()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("nextRaw: %v", err)
			}
			frame := append([]byte(nil), keyBytes...)
			frame = AppendUvarint(frame, uint64(count))
			frame = append(frame, vals...)
			batch, err := codec.DecodeBatch(frame)
			if err != nil {
				t.Fatalf("raw frame does not decode: %v", err)
			}
			if batch.Key != key {
				t.Fatalf("raw key %q, want %q", batch.Key, key)
			}
			if len(batch.Values) != count {
				t.Fatalf("raw frame decoded %d values, header says %d", len(batch.Values), count)
			}
			raw = append(raw, batch.Values...)
			rawCount += count
		}
		if rawCount != len(values) {
			t.Fatalf("raw frame counts sum to %d, want %d", rawCount, len(values))
		}
		for i := range raw {
			if raw[i] != values[i] {
				t.Fatalf("raw value %d: got %d want %d", i, raw[i], values[i])
			}
		}
	})
}
