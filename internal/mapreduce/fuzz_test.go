package mapreduce

import (
	"bufio"
	"bytes"
	"io"
	"testing"
)

// FuzzSpillSegmentReader feeds arbitrary bytes to the spill-segment reader.
// The reader must terminate with io.EOF or an error — never panic, spin, or
// allocate beyond its frame bound — because the reduce phase trusts it to
// fail cleanly on a corrupt or torn segment file.
func FuzzSpillSegmentReader(f *testing.F) {
	codec := testCodec()

	// Seed with a well-formed two-frame segment and a few mutations.
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	w := segmentWriter[string, int]{codec: &codec, bw: bw}
	_ = w.writeKey(codec.AppendKey(nil, "alpha"), []int{1, 2, 3})
	_ = w.writeKey(codec.AppendKey(nil, "beta"), []int{300})
	bw.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add(bytes.Repeat([]byte{0xff}, 16))

	const maxFrame = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		r := newSegmentReader(&codec, bufio.NewReader(bytes.NewReader(data)), maxFrame)
		frames := 0
		for {
			keyBytes, batch, err := r.next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			if len(keyBytes) == 0 {
				t.Fatal("decoded frame with empty key bytes")
			}
			// A decoded batch must re-encode to a frame the codec accepts,
			// i.e. the reader only ever yields self-consistent batches.
			frame := codec.EncodeBatch(nil, batch)
			if _, err := codec.DecodeBatch(frame); err != nil {
				t.Fatalf("re-encoded batch does not decode: %v", err)
			}
			if frames++; frames > 1<<20 {
				t.Fatal("reader yielded implausibly many frames")
			}
		}
	})
}

// FuzzSpillSegmentRoundTrip writes fuzz-derived batches through the segment
// writer and asserts the reader returns them byte-identically and in order.
func FuzzSpillSegmentRoundTrip(f *testing.F) {
	f.Add("key", uint16(3), uint16(2))
	f.Add("", uint16(1), uint16(0))
	f.Add("a longer key with spaces", uint16(40), uint16(9))
	f.Fuzz(func(t *testing.T, key string, count uint16, stride uint16) {
		codec := testCodec()
		values := make([]int, int(count)%512)
		for i := range values {
			values[i] = i * int(stride)
		}
		if len(values) == 0 {
			return // segment writer skips empty value sets by design
		}
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		w := segmentWriter[string, int]{codec: &codec, bw: bw}
		if err := w.writeKey(codec.AppendKey(nil, key), values); err != nil {
			t.Fatalf("writeKey: %v", err)
		}
		bw.Flush()

		r := newSegmentReader(&codec, bufio.NewReader(bytes.NewReader(buf.Bytes())), maxSpillFrame)
		var got []int
		for {
			_, batch, err := r.next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("next: %v", err)
			}
			if batch.Key != key {
				t.Fatalf("key %q, want %q", batch.Key, key)
			}
			got = append(got, batch.Values...)
		}
		if len(got) != len(values) {
			t.Fatalf("got %d values, want %d", len(got), len(values))
		}
		for i := range got {
			if got[i] != values[i] {
				t.Fatalf("value %d: got %d want %d", i, got[i], values[i])
			}
		}
	})
}
