package mapreduce

import (
	"fmt"
	"math/rand"
	"testing"
)

// spineWorkload builds a fixed batch set (120 distinct keys, 400 batches) and
// its encoded wire frames, the common currency of the shuffle spine stages.
func spineWorkload() ([]KeyBatch[string, int], [][]byte) {
	rng := rand.New(rand.NewSource(7))
	codec := testCodec()
	batches := make([]KeyBatch[string, int], 400)
	frames := make([][]byte, len(batches))
	for i := range batches {
		vs := make([]int, rng.Intn(6)+1)
		for j := range vs {
			vs[j] = rng.Intn(1000)
		}
		batches[i] = KeyBatch[string, int]{Key: fmt.Sprintf("key-%03d", rng.Intn(120)), Values: vs}
		frames[i] = codec.EncodeBatch(nil, batches[i])
	}
	return batches, frames
}

// BenchmarkShuffleSpine measures the shuffle/reduce spine stage by stage with
// -benchmem, so the allocation gate locks in the encoded-byte design: encode
// into a reused buffer, receive-side grouping by encoded key without decoding,
// the sort+spill of one full run, and the k-way merge over spilled segments
// plus the final in-memory runs.
func BenchmarkShuffleSpine(b *testing.B) {
	codec := testCodec()
	batches, frames := spineWorkload()

	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			for _, batch := range batches {
				buf = codec.EncodeBatch(buf[:0], batch)
			}
		}
	})

	b.Run("group-raw", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			acc := newShuffleAccumulator[string, int](nil, ShuffleConfig{}, nil, &codec, nil)
			for _, f := range frames {
				if err := acc.addRaw(f); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("sort-spill", func(b *testing.B) {
		dir := b.TempDir()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			acc := newShuffleAccumulator[string, int](nil,
				ShuffleConfig{SpillThreshold: 1 << 30, TmpDir: dir}, nil, &codec, nil)
			for _, batch := range batches[:len(batches)/2] {
				if err := acc.add(batch); err != nil {
					b.Fatal(err)
				}
			}
			for _, f := range frames[len(frames)/2:] {
				if err := acc.addRaw(f); err != nil {
					b.Fatal(err)
				}
			}
			acc.mu.Lock()
			err := acc.spillLocked()
			acc.mu.Unlock()
			if err != nil {
				b.Fatal(err)
			}
			acc.cleanup()
		}
	})

	b.Run("merge", func(b *testing.B) {
		acc := newShuffleAccumulator[string, int](nil,
			ShuffleConfig{SpillThreshold: 1 << 30, TmpDir: b.TempDir()}, nil, &codec, nil)
		defer acc.cleanup()
		third := len(batches) / 3
		fill := func(lo, hi int) {
			for _, batch := range batches[lo:hi] {
				if err := acc.add(batch); err != nil {
					b.Fatal(err)
				}
			}
			for _, f := range frames[lo:hi] {
				if err := acc.addRaw(f); err != nil {
					b.Fatal(err)
				}
			}
		}
		fill(0, third)
		acc.mu.Lock()
		if err := acc.spillLocked(); err != nil {
			acc.mu.Unlock()
			b.Fatal(err)
		}
		acc.mu.Unlock()
		fill(third, 2*third)
		acc.mu.Lock()
		if err := acc.spillLocked(); err != nil {
			acc.mu.Unlock()
			b.Fatal(err)
		}
		acc.mu.Unlock()
		fill(2*third, len(batches)) // final runs stay in memory
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := acc.merge(func(string, []int) error { return nil }); err != nil {
				b.Fatal(err)
			}
		}
	})
}
