package mapreduce

import (
	"fmt"
	"io"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
)

// wordCountJob is the shared fixture of the exchange tests.
func wordCountJob() Job[string, string, int, string] {
	return Job[string, string, int, string]{
		Map: func(line string, emit func(string, int)) {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
		},
		Combine: func(_ string, vs []int) []int {
			sum := 0
			for _, v := range vs {
				sum += v
			}
			return []int{sum}
		},
		Reduce: func(k string, vs []int, emit func(string)) {
			sum := 0
			for _, v := range vs {
				sum += v
			}
			emit(fmt.Sprintf("%s=%d", k, sum))
		},
		Hash:   HashString,
		SizeOf: func(k string, _ int) int { return len(k) + 1 },
	}
}

var wordCountInputs = []string{
	"the quick brown fox",
	"the lazy dog",
	"the quick dog jumps over the lazy fox",
	"a fox a dog a quick brown fox",
}

// runPeers executes the job across the given exchanges (one goroutine per
// peer, round-robin input split) and returns the union of the local outputs.
func runPeers(t *testing.T, job Job[string, string, int, string], group []Exchange[string, int]) []string {
	t.Helper()
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		out  []string
		errs []error
	)
	for p := range group {
		var split []string
		for i := p; i < len(wordCountInputs); i += len(group) {
			split = append(split, wordCountInputs[i])
		}
		wg.Add(1)
		go func(p int, split []string) {
			defer wg.Done()
			local, _, err := RunExchange(split, Config{MapWorkers: 2, ReduceWorkers: 2}, job, group[p])
			mu.Lock()
			out = append(out, local...)
			if err != nil {
				errs = append(errs, err)
			}
			mu.Unlock()
		}(p, split)
	}
	wg.Wait()
	for _, err := range errs {
		t.Fatalf("RunExchange: %v", err)
	}
	sort.Strings(out)
	return out
}

func TestRunExchangeMultiPeerLoopback(t *testing.T) {
	job := wordCountJob()
	want, _ := Run(wordCountInputs, Config{MapWorkers: 2, ReduceWorkers: 2}, job)
	sort.Strings(want)

	got := runPeers(t, job, NewLoopbackGroup[string, int](3))
	if !reflect.DeepEqual(got, want) {
		t.Errorf("multi-peer output differs:\n got %v\nwant %v", got, want)
	}
}

func TestRunExchangeRequiresHash(t *testing.T) {
	job := wordCountJob()
	job.Hash = nil
	group := NewLoopbackGroup[string, int](2)
	_, _, err := RunExchange(wordCountInputs, Config{}, job, group[0])
	if err == nil {
		t.Fatal("expected error for multi-peer job without Hash")
	}
}

// memFabric is an in-memory ByteExchange used to test the frame adapter
// without a real network. Frames are copied on Send (the contract allows the
// caller to reuse the buffer) and byte counts include a mock frame header.
type memFabric struct {
	self    int
	inboxes []chan []byte
	open    int
	mu      sync.Mutex
	out     int64
}

func newMemFabric(n int) []*memFabric {
	inboxes := make([]chan []byte, n)
	for i := range inboxes {
		inboxes[i] = make(chan []byte, 1024)
	}
	peers := make([]*memFabric, n)
	for i := range peers {
		peers[i] = &memFabric{self: i, inboxes: inboxes, open: n - 1}
	}
	return peers
}

func (m *memFabric) NumPeers() int { return len(m.inboxes) }
func (m *memFabric) Self() int     { return m.self }

func (m *memFabric) Send(dst int, frame []byte) error {
	if dst == m.self {
		return fmt.Errorf("self-send reached the fabric")
	}
	cp := append([]byte(nil), frame...)
	m.mu.Lock()
	m.out += int64(1 + UvarintLen(uint64(len(frame))) + len(frame))
	m.mu.Unlock()
	m.inboxes[dst] <- cp
	return nil
}

func (m *memFabric) CloseSend() error {
	for i, inbox := range m.inboxes {
		if i != m.self {
			inbox <- nil // end-of-stream marker
		}
	}
	return nil
}

func (m *memFabric) Recv() ([]byte, error) {
	for m.open > 0 {
		frame := <-m.inboxes[m.self]
		if frame == nil {
			m.open--
			continue
		}
		return frame, nil
	}
	return nil, io.EOF
}

func (m *memFabric) WireBytesOut() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.out
}

func testCodec() FrameCodec[string, int] {
	return FrameCodec[string, int]{
		AppendKey: func(buf []byte, k string) []byte {
			buf = AppendUvarint(buf, uint64(len(k)))
			return append(buf, k...)
		},
		ReadKey: func(data []byte, pos int) (string, int, error) {
			n, pos, err := ReadUvarint(data, pos)
			if err != nil {
				return "", 0, err
			}
			if uint64(len(data)-pos) < n {
				return "", 0, fmt.Errorf("truncated key")
			}
			return string(data[pos : pos+int(n)]), pos + int(n), nil
		},
		AppendValue: func(buf []byte, v int) []byte { return AppendUvarint(buf, uint64(v)) },
		ReadValue: func(data []byte, pos int) (int, int, error) {
			n, pos, err := ReadUvarint(data, pos)
			return int(n), pos, err
		},
	}
}

func TestRunExchangeOverFrameFabric(t *testing.T) {
	job := wordCountJob()
	want, _ := Run(wordCountInputs, Config{MapWorkers: 2, ReduceWorkers: 2}, job)
	sort.Strings(want)

	fabrics := newMemFabric(3)
	group := make([]Exchange[string, int], len(fabrics))
	for i, f := range fabrics {
		group[i] = NewFrameExchange(f, testCodec())
	}
	got := runPeers(t, job, group)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("frame-fabric output differs:\n got %v\nwant %v", got, want)
	}
	var total int64
	for _, f := range fabrics {
		total += f.WireBytesOut()
	}
	if total <= 0 {
		t.Error("expected wire bytes on the fabric")
	}
}

func TestFrameCodecBatchRoundTrip(t *testing.T) {
	c := testCodec()
	b := KeyBatch[string, int]{Key: "fox", Values: []int{1, 200, 3}}
	frame := c.EncodeBatch(nil, b)
	got, err := c.DecodeBatch(frame)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Errorf("round trip: got %+v want %+v", got, b)
	}
	if size := c.RecordSize("fox", 200); size != len(c.EncodeBatch(nil, KeyBatch[string, int]{Key: "fox", Values: []int{200}})) {
		t.Errorf("RecordSize mismatch: %d", size)
	}
	// Corrupt frames must error, not panic or over-allocate.
	for _, bad := range [][]byte{
		{},
		{0x03, 'f', 'o'}, // truncated key
		append(c.AppendKey(nil, "k"), 0xff, 0xff, 0xff, 0xff, 0x0f), // huge count
		append(frame, 0x00), // trailing byte
	} {
		if _, err := c.DecodeBatch(bad); err == nil {
			t.Errorf("DecodeBatch(%v) should fail", bad)
		}
	}
}
