package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"seqmine/internal/dict"
	"seqmine/internal/seqdb"
)

// The shared dataset store moves a cluster job's input off the job-submission
// path. A database is serialized once into an immutable, content-addressed
// bundle (dictionary text plus varint-encoded sequences); its id is the
// SHA-256 of the bundle bytes. Workers hold decoded bundles in a small LRU
// keyed by id, and job specs reference the id plus a partition assignment
// instead of inlining the split — so a resubmission, a retry or a speculative
// re-execution against an already-pushed dataset ships zero sequence bytes.

// bundleMagic versions the bundle encoding.
const bundleMagic = "SQDS1\n"

// maxBundleSeqs bounds the sequence count a decoder will allocate for (an
// upload is already size-capped; this guards the varint header itself).
const maxBundleSeqs = 1 << 31

// EncodeBundle serializes a database as one immutable bundle and returns the
// bundle bytes with their content id.
func EncodeBundle(db *seqdb.Database) ([]byte, string, error) {
	if db == nil || db.Dict == nil {
		return nil, "", fmt.Errorf("cluster: nil database")
	}
	var dictText strings.Builder
	if err := db.Dict.Save(&dictText); err != nil {
		return nil, "", fmt.Errorf("cluster: serializing dictionary: %w", err)
	}
	buf := make([]byte, 0, len(dictText.String())+16*len(db.Sequences)+len(bundleMagic))
	buf = append(buf, bundleMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(dictText.String())))
	buf = append(buf, dictText.String()...)
	buf = binary.AppendUvarint(buf, uint64(len(db.Sequences)))
	for _, seq := range db.Sequences {
		buf = binary.AppendUvarint(buf, uint64(len(seq)))
		for _, it := range seq {
			buf = binary.AppendUvarint(buf, uint64(it))
		}
	}
	return buf, BundleID(buf), nil
}

// BundleID returns the content id of bundle bytes.
func BundleID(data []byte) string {
	sum := sha256.Sum256(data)
	return "sha256-" + hex.EncodeToString(sum[:])
}

// DecodeBundle parses bundle bytes back into a database.
func DecodeBundle(data []byte) (*seqdb.Database, error) {
	if len(data) < len(bundleMagic) || string(data[:len(bundleMagic)]) != bundleMagic {
		return nil, fmt.Errorf("cluster: bad bundle magic")
	}
	pos := len(bundleMagic)
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("cluster: truncated bundle varint at offset %d", pos)
		}
		pos += n
		return v, nil
	}
	dictLen, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if dictLen > uint64(len(data)-pos) {
		return nil, fmt.Errorf("cluster: bundle dictionary of %d bytes exceeds payload", dictLen)
	}
	d, err := dict.Load(strings.NewReader(string(data[pos : pos+int(dictLen)])))
	if err != nil {
		return nil, fmt.Errorf("cluster: loading bundle dictionary: %w", err)
	}
	pos += int(dictLen)
	nseqs, err := readUvarint()
	if err != nil {
		return nil, err
	}
	// Every sequence occupies at least one byte (its length varint).
	if nseqs > maxBundleSeqs || nseqs > uint64(len(data)-pos) {
		return nil, fmt.Errorf("cluster: bundle claims %d sequences in %d bytes", nseqs, len(data)-pos)
	}
	// Decode into one contiguous backing array (matching seqdb.Build's
	// layout), so mining over the restored database scans memory linearly.
	// Sub-slices are taken only once backing has its final size — appends may
	// reallocate it.
	offsets := make([]int, 0, nseqs+1)
	offsets = append(offsets, 0)
	var backing []dict.ItemID
	for i := uint64(0); i < nseqs; i++ {
		n, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(data)-pos) {
			return nil, fmt.Errorf("cluster: bundle sequence %d claims %d items in %d bytes", i, n, len(data)-pos)
		}
		for j := uint64(0); j < n; j++ {
			v, err := readUvarint()
			if err != nil {
				return nil, err
			}
			it := dict.ItemID(v)
			if !d.Contains(it) {
				return nil, fmt.Errorf("cluster: bundle sequence %d contains unknown fid %d", i, v)
			}
			backing = append(backing, it)
		}
		offsets = append(offsets, len(backing))
	}
	seqs := make([][]dict.ItemID, 0, nseqs)
	for i := 0; i+1 < len(offsets); i++ {
		seqs = append(seqs, backing[offsets[i]:offsets[i+1]:offsets[i+1]])
	}
	if pos != len(data) {
		return nil, fmt.Errorf("cluster: %d trailing bytes after bundle", len(data)-pos)
	}
	return &seqdb.Database{Dict: d, Sequences: seqs}, nil
}

// Store is a worker's slice of the shared dataset store: decoded bundles in
// an LRU keyed by content id. All methods are safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	max     int
	seq     uint64
	entries map[string]*storeEntry

	hits, misses int64
}

type storeEntry struct {
	db      *seqdb.Database
	bytes   int64
	lastUse uint64
}

// DefaultStoreEntries is the dataset capacity of a worker's store when none
// is configured.
const DefaultStoreEntries = 16

// NewStore creates a store holding at most maxEntries decoded datasets
// (<= 0 uses DefaultStoreEntries). Eviction is LRU by last Get/Put.
func NewStore(maxEntries int) *Store {
	if maxEntries <= 0 {
		maxEntries = DefaultStoreEntries
	}
	return &Store{max: maxEntries, entries: map[string]*storeEntry{}}
}

// Get returns the decoded dataset for id, if present, bumping its recency.
func (s *Store) Get(id string) (*seqdb.Database, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if !ok {
		s.misses++
		return nil, false
	}
	s.seq++
	e.lastUse = s.seq
	s.hits++
	return e.db, true
}

// Has reports whether id is present without counting a hit or miss.
func (s *Store) Has(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[id]
	return ok
}

// Put verifies data against id, decodes it and stores the dataset. Storing an
// id that is already present is a cheap no-op (the bundle is immutable).
func (s *Store) Put(id string, data []byte) error {
	if got := BundleID(data); got != id {
		return fmt.Errorf("cluster: bundle content hash %s does not match id %s", got, id)
	}
	if s.Has(id) {
		return nil
	}
	db, err := DecodeBundle(data)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[id]; ok {
		return nil
	}
	s.seq++
	s.entries[id] = &storeEntry{db: db, bytes: int64(len(data)), lastUse: s.seq}
	for len(s.entries) > s.max {
		evictOldestLocked(s.entries, func(e *storeEntry) uint64 { return e.lastUse })
	}
	return nil
}

// evictOldestLocked removes the entry with the smallest recency stamp from
// m. Shared by the dataset store and the coordinator's bundle cache; callers
// hold the respective lock, and the maps are tiny (a linear scan beats a
// heap at these sizes).
func evictOldestLocked[K comparable, V any](m map[K]V, lastUse func(V) uint64) {
	var oldestKey K
	var oldest uint64
	first := true
	for k, v := range m {
		if first || lastUse(v) < oldest {
			first = false
			oldest = lastUse(v)
			oldestKey = k
		}
	}
	if !first {
		delete(m, oldestKey)
	}
}

// Len returns the number of stored datasets.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// StoreInfo describes one stored dataset.
type StoreInfo struct {
	ID        string `json:"id"`
	Sequences int    `json:"sequences"`
	Bytes     int64  `json:"bytes"`
}

// List returns the stored datasets (unordered).
func (s *Store) List() []StoreInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StoreInfo, 0, len(s.entries))
	for id, e := range s.entries {
		out = append(out, StoreInfo{ID: id, Sequences: len(e.db.Sequences), Bytes: e.bytes})
	}
	return out
}

// Stats returns the lookup hit/miss counters.
func (s *Store) Stats() (hits, misses int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}
