package cluster_test

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"

	"seqmine/internal/cluster"
	"seqmine/internal/datagen"
	"seqmine/internal/dcand"
	"seqmine/internal/dseq"
	"seqmine/internal/fst"
	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
	"seqmine/internal/paperex"
	"seqmine/internal/seqdb"
	"seqmine/internal/transport"
)

// startWorkers brings up n workers, each with its own shuffle node and
// control HTTP server, and returns their control URLs.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		node, err := transport.NewNode("127.0.0.1:0", transport.Config{})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		t.Cleanup(func() { node.Close() })
		srv := httptest.NewServer(cluster.NewWorker(node).Handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls
}

func paperDatabase(t *testing.T) *seqdb.Database {
	t.Helper()
	d := paperex.Dict()
	return &seqdb.Database{Dict: d, Sequences: paperex.DB(d)}
}

func TestCoordinatorMatchesInProcess(t *testing.T) {
	db := paperDatabase(t)
	f := fst.MustCompile(paperex.PatternExpression, db.Dict)
	coord := &cluster.Coordinator{Workers: startWorkers(t, 3)}

	t.Run("dcand", func(t *testing.T) {
		want, _ := dcand.Mine(f, db.Sequences, paperex.Sigma, dcand.DefaultOptions(), mapreduce.Config{})
		res, err := coord.Mine(context.Background(), db, paperex.PatternExpression, paperex.Sigma, cluster.AlgoDCand, cluster.DefaultOptions())
		if err != nil {
			t.Fatalf("Mine: %v", err)
		}
		if got, wantM := miner.PatternsToMap(db.Dict, res.Patterns), miner.PatternsToMap(db.Dict, want); !reflect.DeepEqual(got, wantM) {
			t.Errorf("distributed D-CAND = %v, want %v", got, wantM)
		}
		// ShuffleBytes must be real traffic: everything written was read.
		if res.Metrics.ShuffleBytes <= 0 {
			t.Errorf("ShuffleBytes = %d, want > 0", res.Metrics.ShuffleBytes)
		}
		if !res.Metrics.RemoteShuffle {
			t.Error("metrics should be marked RemoteShuffle")
		}
		if res.Metrics.ShuffleBytes != res.WireBytesIn {
			t.Errorf("bytes written %d != bytes read %d", res.Metrics.ShuffleBytes, res.WireBytesIn)
		}
	})

	t.Run("dseq", func(t *testing.T) {
		want, _ := dseq.Mine(f, db.Sequences, paperex.Sigma, dseq.DefaultOptions(), mapreduce.Config{})
		res, err := coord.Mine(context.Background(), db, paperex.PatternExpression, paperex.Sigma, cluster.AlgoDSeq, cluster.DefaultOptions())
		if err != nil {
			t.Fatalf("Mine: %v", err)
		}
		if got, wantM := miner.PatternsToMap(db.Dict, res.Patterns), miner.PatternsToMap(db.Dict, want); !reflect.DeepEqual(got, wantM) {
			t.Errorf("distributed D-SEQ = %v, want %v", got, wantM)
		}
		if res.Metrics.ShuffleBytes != res.WireBytesIn {
			t.Errorf("bytes written %d != bytes read %d", res.Metrics.ShuffleBytes, res.WireBytesIn)
		}
	})
}

func TestCoordinatorRejectsBadAlgorithm(t *testing.T) {
	db := paperDatabase(t)
	coord := &cluster.Coordinator{Workers: startWorkers(t, 2)}
	if _, err := coord.Mine(context.Background(), db, paperex.PatternExpression, paperex.Sigma, "naive", cluster.DefaultOptions()); err == nil {
		t.Fatal("expected an error for a non-distributable algorithm")
	}
}

func TestCoordinatorNoWorkers(t *testing.T) {
	db := paperDatabase(t)
	coord := &cluster.Coordinator{}
	if _, err := coord.Mine(context.Background(), db, paperex.PatternExpression, paperex.Sigma, cluster.AlgoDCand, cluster.DefaultOptions()); err == nil {
		t.Fatal("expected an error with no workers")
	}
}

// TestCoordinatorManyWorkersRandomDB cross-checks the distributed engines
// against the sequential miner on a larger random database with 4 workers.
func TestCoordinatorManyWorkersRandomDB(t *testing.T) {
	raw, hierarchy := fixtureRandomRaw()
	db, err := seqdb.Build(raw, hierarchy)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	const expr, sigma = "[.*(.)]{1,3}.*", int64(4)
	f := fst.MustCompile(expr, db.Dict)
	want := miner.PatternsToMap(db.Dict, miner.MineDFS(f, miner.Weighted(db.Sequences), sigma, miner.DFSOptions{}))

	coord := &cluster.Coordinator{Workers: startWorkers(t, 4)}
	for _, algo := range []string{cluster.AlgoDSeq, cluster.AlgoDCand} {
		res, err := coord.Mine(context.Background(), db, expr, sigma, algo, cluster.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if got := miner.PatternsToMap(db.Dict, res.Patterns); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: distributed = %v, want %v", algo, got, want)
		}
	}
}

// fixtureRandomRaw builds a deterministic pseudo-random raw database over a
// small vocabulary with a two-level hierarchy.
func fixtureRandomRaw() ([][]string, seqdb.Hierarchy) {
	vocab := []string{"a1", "a2", "b1", "b2", "c", "d", "e"}
	hierarchy := seqdb.Hierarchy{
		"a1": {"A"}, "a2": {"A"},
		"b1": {"B"}, "b2": {"B"},
	}
	state := uint64(42)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	raw := make([][]string, 60)
	for i := range raw {
		seq := make([]string, next(6)+1)
		for j := range seq {
			seq[j] = vocab[next(len(vocab))]
		}
		raw[i] = seq
	}
	return raw, hierarchy
}

// TestCoordinatorSpillMatchesInProcess runs a 3-worker distributed job with a
// tiny spill threshold on a dataset whose shuffle dwarfs it: every worker must
// spill, and the merged pattern set must equal the in-memory single-process
// run.
func TestCoordinatorSpillMatchesInProcess(t *testing.T) {
	db, err := datagen.NYT(datagen.NYTConfig{NumSentences: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const expr, sigma = "[.*(.)]{1,3}.*", int64(20)
	f := fst.MustCompile(expr, db.Dict)

	coord := &cluster.Coordinator{Workers: startWorkers(t, 3)}
	opts := cluster.DefaultOptions()
	opts.SpillThresholdBytes = 2048
	for _, algo := range []string{cluster.AlgoDSeq, cluster.AlgoDCand} {
		res, err := coord.Mine(context.Background(), db, expr, sigma, algo, opts)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		var want []miner.Pattern
		switch algo {
		case cluster.AlgoDSeq:
			want, _ = dseq.Mine(f, db.Sequences, sigma, dseq.DefaultOptions(), mapreduce.Config{})
		case cluster.AlgoDCand:
			want, _ = dcand.Mine(f, db.Sequences, sigma, dcand.DefaultOptions(), mapreduce.Config{})
		}
		if len(want) == 0 {
			t.Fatalf("%s: reference run found no patterns", algo)
		}
		if !reflect.DeepEqual(res.Patterns, want) {
			t.Errorf("%s: spilled cluster run differs from in-memory run (%d vs %d patterns)",
				algo, len(res.Patterns), len(want))
		}
		if res.Metrics.SpilledBytes == 0 || res.Metrics.SpillCount == 0 {
			t.Errorf("%s: expected cluster-wide spilling, got %+v", algo, res.Metrics)
		}
		for p, r := range res.PerWorker {
			if r.Metrics.SpilledBytes == 0 {
				t.Errorf("%s: worker %d did not spill", algo, p)
			}
		}
	}
}

func TestWorkerNodeAccessor(t *testing.T) {
	node, err := transport.NewNode("127.0.0.1:0", transport.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if w := cluster.NewWorker(node); w.Node() != node {
		t.Error("Node() must return the wrapped transport node")
	}
}

// TestCoordinatorStreamingMatchesInProcess runs a 3-worker distributed job
// with the streaming pipelined shuffle (a tiny per-peer send buffer, plus a
// compressed-spill variant): the merged pattern set must be byte-identical
// to the in-memory single-process barrier run, and the workers must report
// streamed batches.
func TestCoordinatorStreamingMatchesInProcess(t *testing.T) {
	db, err := datagen.NYT(datagen.NYTConfig{NumSentences: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const expr, sigma = "[.*(.)]{1,3}.*", int64(20)
	f := fst.MustCompile(expr, db.Dict)

	coord := &cluster.Coordinator{Workers: startWorkers(t, 3)}
	variants := map[string]cluster.Options{}
	streaming := cluster.DefaultOptions()
	streaming.SendBufferBytes = 1024
	variants["streaming"] = streaming
	everything := streaming
	everything.SpillThresholdBytes = 2048
	everything.CompressSpill = true
	variants["streaming+spill+deflate"] = everything

	for _, algo := range []string{cluster.AlgoDSeq, cluster.AlgoDCand} {
		var want []miner.Pattern
		switch algo {
		case cluster.AlgoDSeq:
			want, _ = dseq.Mine(f, db.Sequences, sigma, dseq.DefaultOptions(), mapreduce.Config{})
		case cluster.AlgoDCand:
			want, _ = dcand.Mine(f, db.Sequences, sigma, dcand.DefaultOptions(), mapreduce.Config{})
		}
		if len(want) == 0 {
			t.Fatalf("%s: reference run found no patterns", algo)
		}
		for name, opts := range variants {
			res, err := coord.Mine(context.Background(), db, expr, sigma, algo, opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", algo, name, err)
			}
			if !reflect.DeepEqual(res.Patterns, want) {
				t.Errorf("%s/%s: streaming cluster run differs from in-memory run (%d vs %d patterns)",
					algo, name, len(res.Patterns), len(want))
			}
			if res.Metrics.StreamedBatches == 0 {
				t.Errorf("%s/%s: expected streamed batches, got %+v", algo, name, res.Metrics)
			}
			for p, r := range res.PerWorker {
				if r.Metrics.StreamedBatches == 0 {
					t.Errorf("%s/%s: worker %d streamed no batches", algo, name, p)
				}
			}
			if opts.SpillThresholdBytes > 0 && res.Metrics.SpilledBytes == 0 {
				t.Errorf("%s/%s: expected cluster-wide spilling, got %+v", algo, name, res.Metrics)
			}
		}
	}
}
