package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// BundleDir is the on-disk half of the content-addressed dataset store: a
// directory of immutable bundle files named <id>.bundle. Because bundles are
// content-addressed, the directory may be shared by any number of processes
// (N stateless seqmined replicas, a catalog, workers warming their caches) —
// writers of the same id write identical bytes, and Put is atomic (write to a
// temp file, rename into place), so a reader never observes a torn bundle.
type BundleDir struct {
	dir string
}

// OpenBundleDir creates (if needed) and opens a bundle directory.
func OpenBundleDir(dir string) (*BundleDir, error) {
	if dir == "" {
		return nil, fmt.Errorf("cluster: bundle directory must not be empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: creating bundle directory: %w", err)
	}
	return &BundleDir{dir: dir}, nil
}

// Dir returns the directory path.
func (b *BundleDir) Dir() string { return b.dir }

func (b *BundleDir) path(id string) (string, error) {
	// Ids are hex digests with a scheme prefix; refuse anything that could
	// escape the directory.
	if id == "" || strings.ContainsAny(id, "/\\") || strings.Contains(id, "..") {
		return "", fmt.Errorf("cluster: invalid bundle id %q", id)
	}
	return filepath.Join(b.dir, id+".bundle"), nil
}

// Has reports whether a bundle is present.
func (b *BundleDir) Has(id string) bool {
	p, err := b.path(id)
	if err != nil {
		return false
	}
	_, err = os.Stat(p)
	return err == nil
}

// Put stores bundle bytes under their content id. The data is verified
// against the id, written to a temp file and renamed into place; storing an
// id that already exists is a no-op (bundles are immutable).
func (b *BundleDir) Put(id string, data []byte) error {
	if got := BundleID(data); got != id {
		return fmt.Errorf("cluster: bundle content hash %s does not match id %s", got, id)
	}
	p, err := b.path(id)
	if err != nil {
		return err
	}
	if _, err := os.Stat(p); err == nil {
		return nil
	}
	tmp, err := os.CreateTemp(b.dir, ".bundle-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Get reads a bundle's bytes, verifying them against the id (a corrupted
// file is reported, not returned).
func (b *BundleDir) Get(id string) ([]byte, error) {
	p, err := b.path(id)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, err
	}
	if got := BundleID(data); got != id {
		return nil, fmt.Errorf("cluster: bundle file %s is corrupt (content hash %s)", p, got)
	}
	return data, nil
}

// List returns the stored bundle ids, sorted.
func (b *BundleDir) List() ([]string, error) {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		if name, ok := strings.CutSuffix(e.Name(), ".bundle"); ok && !strings.HasPrefix(name, ".") {
			ids = append(ids, name)
		}
	}
	sort.Strings(ids)
	return ids, nil
}
