// Package cluster fans a D-SEQ or D-CAND mining job out across worker
// processes. The control plane is HTTP: a Coordinator splits the encoded
// database round-robin, ships one JobSpec per worker (the shared dictionary
// travels as dict.Save text so every worker sees identical fids and document
// frequencies), and merges the per-partition results. The data plane is the
// TCP shuffle fabric of internal/transport: during the job the workers
// exchange serialized sequence/NFA frames directly with each other, so the
// coordinator never touches shuffle traffic.
//
// Because the distributed miners partition by pivot item and every pivot key
// is owned by exactly one worker, the union of the workers' pattern sets is
// exactly the in-process engine's output — no deduplication is needed (the
// equivalence tests and the CI multi-process smoke job assert this).
package cluster

import (
	"seqmine/internal/dict"
	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
	"seqmine/internal/transport"
)

// AlgoDSeq and AlgoDCand are the algorithms that can run on the cluster.
const (
	AlgoDSeq  = "dseq"
	AlgoDCand = "dcand"
)

// Options carries the paper's per-algorithm enhancement toggles plus the
// local engine parallelism of each worker.
type Options struct {
	// D-SEQ toggles.
	UseGrid            bool `json:"use_grid"`
	Rewrite            bool `json:"rewrite"`
	EarlyStopping      bool `json:"early_stopping"`
	AggregateSequences bool `json:"aggregate_sequences"`
	// D-CAND toggles.
	MinimizeNFAs  bool `json:"minimize_nfas"`
	AggregateNFAs bool `json:"aggregate_nfas"`
	// Per-worker engine parallelism (0 = all CPUs of the worker).
	MapWorkers    int `json:"map_workers,omitempty"`
	ReduceWorkers int `json:"reduce_workers,omitempty"`
	// SpillThresholdBytes bounds each worker's in-memory shuffle footprint:
	// past it, shuffle partitions spill to sorted temp-file segments that
	// the reduce phase merge-streams, so partitions larger than worker
	// memory still complete. 0 keeps the shuffle in memory.
	SpillThresholdBytes int64 `json:"spill_threshold_bytes,omitempty"`
	// SpillTmpDir is where workers create spill segments; empty uses each
	// worker's default (its -spill-dir flag, else the system temp dir).
	SpillTmpDir string `json:"spill_tmp_dir,omitempty"`
	// SendBufferBytes, when > 0, switches each worker to the streaming
	// pipelined shuffle: map workers emit into bounded per-peer send buffers
	// drained over the TCP fabric while mapping continues, overlapping map
	// compute with network transfer. 0 keeps the phase-synchronous barrier.
	SendBufferBytes int64 `json:"send_buffer_bytes,omitempty"`
	// CompressSpill compresses the workers' spill segments (receive-side
	// runs and map-side send overflow) with DEFLATE.
	CompressSpill bool `json:"compress_spill,omitempty"`
}

// DefaultOptions enables every enhancement, mirroring the single-process
// defaults.
func DefaultOptions() Options {
	return Options{
		UseGrid:            true,
		Rewrite:            true,
		EarlyStopping:      true,
		AggregateSequences: true,
		MinimizeNFAs:       true,
		AggregateNFAs:      true,
	}
}

// JobSpec is the unit of work POSTed to one worker: everything the worker
// needs to run its share of the job and find its peers.
type JobSpec struct {
	// JobID names the job on the shuffle fabric; it must be identical on
	// every peer of the job and unique per node at a time.
	JobID string `json:"job_id"`
	// Algorithm is AlgoDSeq or AlgoDCand.
	Algorithm string `json:"algorithm"`
	// Peer is this worker's index; DataPeers[Peer] is its shuffle address.
	Peer int `json:"peer"`
	// DataPeers are the shuffle (transport.Node) addresses of all peers.
	DataPeers []string `json:"data_peers"`
	// Expression is the DESQ pattern expression, compiled by each worker
	// against the shared dictionary.
	Expression string `json:"expression"`
	// Sigma is the minimum support threshold.
	Sigma int64 `json:"sigma"`
	// Dict is the shared dictionary in dict.Save text form.
	Dict string `json:"dict"`
	// Split is this worker's input partition, encoded as fids of Dict.
	Split [][]dict.ItemID `json:"split"`
	// Options are the algorithm toggles.
	Options Options `json:"options"`
}

// JobResult is one worker's share of a job's output.
type JobResult struct {
	// Patterns are the frequent sequences of the pivot partitions this
	// worker owns.
	Patterns []miner.Pattern `json:"patterns"`
	// Metrics is the worker-local engine execution; ShuffleBytes is the
	// actual bytes the worker wrote to its shuffle sockets.
	Metrics mapreduce.Metrics `json:"metrics"`
	// WireBytesIn is the actual bytes the worker read from its shuffle
	// sockets.
	WireBytesIn int64 `json:"wire_bytes_in"`
	// PeerStats breaks the shuffle traffic down per remote peer.
	PeerStats []transport.PeerStats `json:"peer_stats"`
}

// HealthResponse is the body of a worker's GET /healthz: it advertises the
// shuffle address so a coordinator only needs to know control URLs.
type HealthResponse struct {
	Status   string `json:"status"`
	DataAddr string `json:"data_addr"`
}
