// Package cluster fans a D-SEQ or D-CAND mining job out across worker
// processes with a task-based, fault-tolerant scheduler. The control plane is
// HTTP: the Coordinator decomposes a mining request into per-partition tasks
// over the pool of live workers, pushes the input database once per worker
// into a content-addressed dataset store (job specs then reference a
// dataset id plus a partition assignment instead of inlining sequences), and
// drives attempts of the job through a heartbeat/liveness loop — a worker
// that dies or stalls mid-shuffle fails only its attempt, which the scheduler
// retries (or speculatively re-executes) on the surviving workers under a
// fresh attempt epoch. Only the first successful attempt's results are
// merged; the epoch in the shuffle handshake makes duplicate or zombie
// attempts idempotent (internal/transport refuses frames from stale epochs).
// The data plane is the TCP shuffle fabric of internal/transport: during the
// job the workers exchange serialized sequence/NFA frames directly with each
// other, so the coordinator never touches shuffle traffic.
//
// Because the distributed miners partition by pivot item and every pivot key
// is owned by exactly one worker of an attempt, the union of one attempt's
// pattern sets is exactly the in-process engine's output — no deduplication
// is needed, and the output is independent of how the input partitions are
// distributed over workers, so a retry on fewer workers is byte-identical
// (the equivalence tests and the CI multi-process and chaos smoke jobs
// assert this).
package cluster

import (
	"time"

	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
	"seqmine/internal/obs"
	"seqmine/internal/transport"
)

// AlgoDSeq and AlgoDCand are the algorithms that can run on the cluster.
const (
	AlgoDSeq  = "dseq"
	AlgoDCand = "dcand"
)

// Options carries the paper's per-algorithm enhancement toggles plus the
// local engine parallelism of each worker.
type Options struct {
	// D-SEQ toggles.
	UseGrid            bool `json:"use_grid"`
	Rewrite            bool `json:"rewrite"`
	EarlyStopping      bool `json:"early_stopping"`
	AggregateSequences bool `json:"aggregate_sequences"`
	// D-CAND toggles.
	MinimizeNFAs  bool `json:"minimize_nfas"`
	AggregateNFAs bool `json:"aggregate_nfas"`
	// Prefilter enables the two-pass reachability prefilter on the workers'
	// map phase (dseq.Options.Prefilter / dcand.Options.Prefilter); mining
	// output is byte-identical with and without it.
	Prefilter bool `json:"prefilter,omitempty"`
	// Per-worker engine parallelism (0 = all CPUs of the worker).
	MapWorkers    int `json:"map_workers,omitempty"`
	ReduceWorkers int `json:"reduce_workers,omitempty"`
	// SpillThresholdBytes bounds each worker's in-memory shuffle footprint:
	// past it, shuffle partitions spill to sorted temp-file segments that
	// the reduce phase merge-streams, so partitions larger than worker
	// memory still complete. 0 keeps the shuffle in memory.
	SpillThresholdBytes int64 `json:"spill_threshold_bytes,omitempty"`
	// SpillTmpDir is where workers create spill segments; empty uses each
	// worker's default (its -spill-dir flag, else the system temp dir).
	SpillTmpDir string `json:"spill_tmp_dir,omitempty"`
	// SendBufferBytes, when > 0, switches each worker to the streaming
	// pipelined shuffle: map workers emit into bounded per-peer send buffers
	// drained over the TCP fabric while mapping continues, overlapping map
	// compute with network transfer. 0 keeps the phase-synchronous barrier.
	SendBufferBytes int64 `json:"send_buffer_bytes,omitempty"`
	// SendBufferMaxBytes, when > SendBufferBytes, lets each worker's
	// streaming shuffle grow a destination's send buffer adaptively up to
	// this bound; 0 (or <= SendBufferBytes) keeps the buffers fixed.
	SendBufferMaxBytes int64 `json:"send_buffer_max_bytes,omitempty"`
	// CompressSpill compresses the workers' spill segments (receive-side
	// runs and map-side send overflow) with DEFLATE.
	CompressSpill bool `json:"compress_spill,omitempty"`

	// MaxRetries is the scheduler's retry budget: how many failed attempts
	// it relaunches (on the surviving workers, under a fresh attempt epoch)
	// before the job as a whole fails. Negative disables retries.
	MaxRetries int `json:"max_retries,omitempty"`
	// SpeculativeAfterMS launches one speculative second attempt when the
	// running attempt has not completed this many milliseconds after its
	// launch (straggler mitigation; the first attempt to complete wins and
	// the other is canceled). At most one speculative attempt per job.
	// 0 disables speculation.
	SpeculativeAfterMS int64 `json:"speculative_after_ms,omitempty"`
	// TaskPartitions is the number of per-partition tasks the input is
	// decomposed into; 0 uses one task per live worker. More tasks than
	// workers gives the scheduler finer rebalancing units on retry.
	TaskPartitions int `json:"task_partitions,omitempty"`
}

// DefaultOptions enables every enhancement, mirroring the single-process
// defaults, with a retry budget of 2.
func DefaultOptions() Options {
	return Options{
		UseGrid:            true,
		Rewrite:            true,
		EarlyStopping:      true,
		AggregateSequences: true,
		MinimizeNFAs:       true,
		AggregateNFAs:      true,
		MaxRetries:         2,
	}
}

// ApplyRetryKnobs maps the sentinel convention shared by the CLIs and the
// service layer onto the scheduler knobs: taskRetries > 0 sets the retry
// budget, negative disables retries, 0 keeps the scheduler's default budget;
// speculativeAfter > 0 enables speculation at that threshold (sub-millisecond
// values clamp to 1ms), <= 0 disables it.
func (o *Options) ApplyRetryKnobs(taskRetries int, speculativeAfter time.Duration) {
	switch {
	case taskRetries > 0:
		o.MaxRetries = taskRetries
	case taskRetries < 0:
		o.MaxRetries = 0
	default:
		o.MaxRetries = DefaultOptions().MaxRetries
	}
	if speculativeAfter > 0 {
		o.SpeculativeAfterMS = speculativeAfter.Milliseconds()
		if o.SpeculativeAfterMS == 0 {
			o.SpeculativeAfterMS = 1 // sub-millisecond but positive
		}
	} else {
		o.SpeculativeAfterMS = 0
	}
}

// JobSpec is the unit of work POSTed to one worker: everything the worker
// needs to run its share of one job attempt and find its peers. The input
// travels by reference — DatasetID names a bundle in the worker's dataset
// store (pushed ahead of the attempt via PUT /datasets/{id}) and Partitions
// selects this worker's share of it — so retries and resubmissions ship no
// sequence bytes.
type JobSpec struct {
	// JobID names the job on the shuffle fabric; it must be identical on
	// every peer of every attempt of the job.
	JobID string `json:"job_id"`
	// Epoch is the attempt number. Attempts of one job are isolated on the
	// shuffle fabric by their epoch, and workers refuse connections from
	// epochs older than the newest one they have opened.
	Epoch int `json:"epoch"`
	// Algorithm is AlgoDSeq or AlgoDCand.
	Algorithm string `json:"algorithm"`
	// Peer is this worker's index; DataPeers[Peer] is its shuffle address.
	Peer int `json:"peer"`
	// DataPeers are the shuffle (transport.Node) addresses of all peers.
	DataPeers []string `json:"data_peers"`
	// Expression is the DESQ pattern expression, compiled by each worker
	// against the dataset's dictionary.
	Expression string `json:"expression"`
	// Sigma is the minimum support threshold.
	Sigma int64 `json:"sigma"`
	// DatasetID names the input bundle in the worker's dataset store.
	DatasetID string `json:"dataset_id"`
	// NumPartitions is the job-wide task count P: input sequence i belongs
	// to partition i mod P. It is fixed across attempts so task identity is
	// stable.
	NumPartitions int `json:"num_partitions"`
	// Partitions are the partition indices this worker mines in this
	// attempt (may be empty: the worker then only reduces the pivot keys it
	// owns).
	Partitions []int `json:"partitions"`
	// Options are the algorithm toggles.
	Options Options `json:"options"`
}

// JobResult is one worker's share of one attempt's output.
type JobResult struct {
	// Epoch echoes the attempt this result belongs to.
	Epoch int `json:"epoch"`
	// Patterns are the frequent sequences of the pivot partitions this
	// worker owns.
	Patterns []miner.Pattern `json:"patterns"`
	// Metrics is the worker-local engine execution; ShuffleBytes is the
	// actual bytes the worker wrote to its shuffle sockets.
	Metrics mapreduce.Metrics `json:"metrics"`
	// WireBytesIn is the actual bytes the worker read from its shuffle
	// sockets.
	WireBytesIn int64 `json:"wire_bytes_in"`
	// PeerStats breaks the shuffle traffic down per remote peer, including
	// the streaming shuffle's per-destination batch/overflow counters.
	PeerStats []transport.PeerStats `json:"peer_stats"`
	// Spans are the worker-local trace spans of this run's trace (the run
	// itself, its engine stages, and transport sends/receives), shipped back
	// so the coordinator can merge one end-to-end trace. Empty when the
	// worker records no spans or the request carried no trace context.
	Spans []obs.SpanRecord `json:"spans,omitempty"`
}

// HealthResponse is the body of a worker's GET /healthz: it advertises the
// shuffle address so a coordinator only needs to know control URLs, and the
// dataset-store occupancy for observability.
type HealthResponse struct {
	Status   string `json:"status"`
	DataAddr string `json:"data_addr"`
	// Datasets is the number of bundles in the worker's dataset store.
	Datasets int `json:"datasets"`
}
