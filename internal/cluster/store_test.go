package cluster

import (
	"strings"
	"testing"

	"seqmine/internal/paperex"
	"seqmine/internal/seqdb"
)

func testDB(t *testing.T) *seqdb.Database {
	t.Helper()
	d := paperex.Dict()
	return &seqdb.Database{Dict: d, Sequences: paperex.DB(d)}
}

func TestBundleRoundTrip(t *testing.T) {
	db := testDB(t)
	data, id, err := EncodeBundle(db)
	if err != nil {
		t.Fatalf("EncodeBundle: %v", err)
	}
	if !strings.HasPrefix(id, "sha256-") || id != BundleID(data) {
		t.Fatalf("bundle id %q is not the content hash", id)
	}
	got, err := DecodeBundle(data)
	if err != nil {
		t.Fatalf("DecodeBundle: %v", err)
	}
	if len(got.Sequences) != len(db.Sequences) {
		t.Fatalf("decoded %d sequences, want %d", len(got.Sequences), len(db.Sequences))
	}
	for i, seq := range db.Sequences {
		if len(got.Sequences[i]) != len(seq) {
			t.Fatalf("sequence %d length mismatch", i)
		}
		for j, it := range seq {
			if got.Sequences[i][j] != it {
				t.Fatalf("sequence %d item %d: got %d, want %d", i, j, got.Sequences[i][j], it)
			}
		}
	}
	if got.Dict.Size() != db.Dict.Size() {
		t.Fatalf("decoded dictionary size %d, want %d", got.Dict.Size(), db.Dict.Size())
	}
	// Deterministic encoding: the same database yields the same id.
	_, id2, err := EncodeBundle(db)
	if err != nil || id2 != id {
		t.Fatalf("re-encoding changed the id: %q vs %q (%v)", id2, id, err)
	}
}

func TestBundleDecodeRejectsCorruption(t *testing.T) {
	db := testDB(t)
	data, _, err := EncodeBundle(db)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOPE!\nrest"),
		"truncated":   data[:len(data)/2],
		"trailing":    append(append([]byte(nil), data...), 0x01),
		"unknown fid": func() []byte { d := append([]byte(nil), data...); d[len(d)-1] = 0xff; return d }(),
	}
	for name, d := range cases {
		if _, err := DecodeBundle(d); err == nil {
			t.Errorf("%s: DecodeBundle accepted corrupt input", name)
		}
	}
}

func TestStorePutVerifiesHash(t *testing.T) {
	db := testDB(t)
	data, id, err := EncodeBundle(db)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(2)
	if err := s.Put("sha256-wrong", data); err == nil {
		t.Fatal("Put accepted a mismatched id")
	}
	if err := s.Put(id, data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Put(id, data); err != nil {
		t.Fatalf("idempotent Put: %v", err)
	}
	if got, ok := s.Get(id); !ok || len(got.Sequences) != len(db.Sequences) {
		t.Fatalf("Get(%s) = %v, %v", id, got, ok)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	mkBundle := func(n int) (string, []byte) {
		t.Helper()
		raw := make([][]string, n)
		for i := range raw {
			raw[i] = []string{"a", "b"}
		}
		db, err := seqdb.Build(raw, nil)
		if err != nil {
			t.Fatal(err)
		}
		data, id, err := EncodeBundle(db)
		if err != nil {
			t.Fatal(err)
		}
		return id, data
	}
	s := NewStore(2)
	id1, d1 := mkBundle(1)
	id2, d2 := mkBundle(2)
	id3, d3 := mkBundle(3)
	for _, p := range []struct {
		id   string
		data []byte
	}{{id1, d1}, {id2, d2}} {
		if err := s.Put(p.id, p.data); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get(id1); !ok { // bump id1: id2 becomes the LRU victim
		t.Fatal("id1 missing")
	}
	if err := s.Put(id3, d3); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("store holds %d entries, want 2", s.Len())
	}
	if s.Has(id2) {
		t.Error("id2 should have been evicted (LRU)")
	}
	if !s.Has(id1) || !s.Has(id3) {
		t.Error("id1 and id3 should survive")
	}
	if infos := s.List(); len(infos) != 2 {
		t.Errorf("List returned %d entries, want 2", len(infos))
	}
	hits, misses := s.Stats()
	if hits == 0 {
		t.Errorf("expected lookup hits, got hits=%d misses=%d", hits, misses)
	}
}
