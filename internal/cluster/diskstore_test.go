package cluster

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestBundleDirRoundTrip(t *testing.T) {
	bd, err := OpenBundleDir(filepath.Join(t.TempDir(), "bundles"))
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("bundle payload")
	id := BundleID(data)
	if bd.Has(id) {
		t.Fatal("Has before Put")
	}
	if err := bd.Put(id, data); err != nil {
		t.Fatal(err)
	}
	if !bd.Has(id) {
		t.Fatal("Has after Put")
	}
	// Idempotent: storing the same immutable bundle again is a no-op.
	if err := bd.Put(id, data); err != nil {
		t.Fatal(err)
	}
	got, err := bd.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, data) {
		t.Fatalf("Get = %q, want %q", got, data)
	}
	other := []byte("second bundle")
	if err := bd.Put(BundleID(other), other); err != nil {
		t.Fatal(err)
	}
	ids, err := bd.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || !sortedStrings(ids) {
		t.Fatalf("List = %v, want 2 sorted ids", ids)
	}
	if bd.Dir() == "" {
		t.Fatal("empty Dir()")
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}

func TestBundleDirRejectsMismatchedContent(t *testing.T) {
	bd, err := OpenBundleDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := bd.Put("sha256:deadbeef", []byte("not that content")); err == nil {
		t.Fatal("Put accepted content not matching its id")
	}
}

func TestBundleDirRejectsTraversalIDs(t *testing.T) {
	bd, err := OpenBundleDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "../escape", "a/b", `a\b`, "a..b"} {
		if err := bd.Put(id, []byte("x")); err == nil {
			t.Fatalf("Put(%q) accepted a traversal-capable id", id)
		}
		if bd.Has(id) {
			t.Fatalf("Has(%q) = true", id)
		}
		if _, err := bd.Get(id); err == nil {
			t.Fatalf("Get(%q) succeeded", id)
		}
	}
}

func TestBundleDirGetVerifiesHash(t *testing.T) {
	dir := t.TempDir()
	bd, err := OpenBundleDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("good bytes")
	id := BundleID(data)
	if err := bd.Put(id, data); err != nil {
		t.Fatal(err)
	}
	// Corrupt the file on disk: Get must refuse to return mismatching bytes.
	if err := os.WriteFile(filepath.Join(dir, id+".bundle"), []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := bd.Get(id); err == nil {
		t.Fatal("Get returned tampered content")
	}
}

func TestOpenBundleDirRejectsEmpty(t *testing.T) {
	if _, err := OpenBundleDir(""); err == nil {
		t.Fatal("OpenBundleDir(\"\") succeeded")
	}
}
