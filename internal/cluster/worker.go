package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"seqmine/internal/dcand"
	"seqmine/internal/dict"
	"seqmine/internal/dseq"
	"seqmine/internal/fst"
	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
	"seqmine/internal/transport"
)

// maxSpecBodyBytes bounds a job spec upload (the dominant part is the
// worker's input split).
const maxSpecBodyBytes = 1 << 30

// Worker executes job specs against a process-wide transport node. One
// Worker serves any number of concurrent jobs (each job is isolated by its
// JobID on the node).
type Worker struct {
	node *transport.Node

	// SpillDir is the default directory for shuffle spill segments of jobs
	// that enable spilling without naming a directory; empty uses the
	// system temp directory.
	SpillDir string
}

// NewWorker wraps a transport node.
func NewWorker(node *transport.Node) *Worker { return &Worker{node: node} }

// Node returns the underlying transport node.
func (w *Worker) Node() *transport.Node { return w.node }

// Run executes one job spec: it rebuilds the dictionary, compiles the
// expression, opens the job's exchange on the node and runs the requested
// miner over the local split.
func (w *Worker) Run(ctx context.Context, spec JobSpec) (*JobResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if spec.JobID == "" {
		return nil, fmt.Errorf("cluster: empty job id")
	}
	if spec.Peer < 0 || spec.Peer >= len(spec.DataPeers) {
		return nil, fmt.Errorf("cluster: peer %d out of range for %d data peers", spec.Peer, len(spec.DataPeers))
	}
	if spec.Sigma <= 0 {
		return nil, fmt.Errorf("cluster: minimum support must be positive, got %d", spec.Sigma)
	}
	d, err := dict.Load(strings.NewReader(spec.Dict))
	if err != nil {
		return nil, fmt.Errorf("cluster: loading dictionary: %w", err)
	}
	f, err := fst.Compile(spec.Expression, d)
	if err != nil {
		return nil, fmt.Errorf("cluster: compiling %q: %w", spec.Expression, err)
	}
	for i, seq := range spec.Split {
		for _, it := range seq {
			if !d.Contains(it) {
				return nil, fmt.Errorf("cluster: split sequence %d contains unknown fid %d", i, it)
			}
		}
	}

	bx, err := w.node.OpenExchange(spec.JobID, spec.Peer, spec.DataPeers)
	if err != nil {
		return nil, err
	}
	defer bx.Close()
	// Propagate cancellation into the exchange: closing it fails every
	// blocked Send/Recv, so an abandoned job (coordinator gone, peer failed)
	// stops mining instead of waiting out the transport timeouts.
	stopCancel := context.AfterFunc(ctx, func() { bx.Close() })
	defer stopCancel()

	spillDir := spec.Options.SpillTmpDir
	if spillDir == "" {
		spillDir = w.SpillDir
	}
	cfg := mapreduce.Config{
		MapWorkers:    spec.Options.MapWorkers,
		ReduceWorkers: spec.Options.ReduceWorkers,
		Shuffle: mapreduce.ShuffleConfig{
			SpillThreshold:  spec.Options.SpillThresholdBytes,
			TmpDir:          spillDir,
			SendBufferBytes: spec.Options.SendBufferBytes,
			Compression:     spec.Options.CompressSpill,
		},
	}
	var (
		patterns []miner.Pattern
		metrics  mapreduce.Metrics
	)
	switch spec.Algorithm {
	case AlgoDSeq:
		patterns, metrics, err = dseq.MinePeer(f, spec.Split, spec.Sigma, dseq.Options{
			UseGrid:       spec.Options.UseGrid,
			Rewrite:       spec.Options.Rewrite,
			EarlyStopping: spec.Options.EarlyStopping,
			Aggregate:     spec.Options.AggregateSequences,
		}, cfg, bx)
	case AlgoDCand:
		patterns, metrics, err = dcand.MinePeer(f, spec.Split, spec.Sigma, dcand.Options{
			Minimize:  spec.Options.MinimizeNFAs,
			Aggregate: spec.Options.AggregateNFAs,
		}, cfg, bx)
	default:
		err = fmt.Errorf("cluster: algorithm %q cannot run distributed (want %s or %s)", spec.Algorithm, AlgoDSeq, AlgoDCand)
	}
	if err != nil {
		return nil, err
	}
	return &JobResult{
		Patterns:    patterns,
		Metrics:     metrics,
		WireBytesIn: bx.WireBytesIn(),
		PeerStats:   bx.Stats(),
	}, nil
}

// Handler returns the worker's control API:
//
//	POST /run      execute one JobSpec, respond with the JobResult
//	GET  /healthz  liveness probe, advertises the shuffle address
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, http.StatusOK, HealthResponse{Status: "ok", DataAddr: w.node.Addr()})
	})
	mux.HandleFunc("POST /run", func(rw http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := json.NewDecoder(http.MaxBytesReader(rw, r.Body, maxSpecBodyBytes)).Decode(&spec); err != nil {
			writeJSONError(rw, http.StatusBadRequest, fmt.Errorf("invalid JSON body: %w", err))
			return
		}
		result, err := w.Run(r.Context(), spec)
		if err != nil {
			writeJSONError(rw, http.StatusInternalServerError, err)
			return
		}
		writeJSON(rw, http.StatusOK, result)
	})
	return mux
}

type jsonError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeJSONError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, jsonError{Error: err.Error()})
}
