package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"seqmine/internal/dcand"
	"seqmine/internal/dict"
	"seqmine/internal/dseq"
	"seqmine/internal/fst"
	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
	"seqmine/internal/obs"
	"seqmine/internal/transport"
)

// Request body caps: a job spec is metadata only (the input travels through
// the dataset store), a dataset upload carries the whole bundle.
const (
	maxSpecBodyBytes    = 8 << 20
	maxDatasetBodyBytes = 1 << 30
)

// ErrUnknownDataset is returned when a job spec references a dataset id the
// worker's store does not hold (e.g. evicted under capacity pressure). The
// coordinator reacts by re-pushing the bundle and retrying the attempt.
var ErrUnknownDataset = errors.New("cluster: unknown dataset")

// Worker executes job specs against a process-wide transport node and a
// dataset store. One Worker serves any number of concurrent jobs (each
// attempt is isolated by its job id and epoch on the node).
type Worker struct {
	node *transport.Node

	// Store holds the datasets pushed to this worker; replace it before
	// serving to change its capacity.
	Store *Store

	// SpillDir is the default directory for shuffle spill segments of jobs
	// that enable spilling without naming a directory; empty uses the
	// system temp directory.
	SpillDir string

	// Rec records the worker's trace spans (job runs, engine stages,
	// transport sends/receives) and serves GET /debug/trace/{id}; nil
	// disables tracing.
	Rec *obs.Recorder
	// Obs receives the worker's metrics (seqmine_worker_stage_seconds and
	// friends) and serves GET /metrics; nil disables them.
	Obs *obs.Registry
}

// NewWorker wraps a transport node with a default-capacity dataset store.
func NewWorker(node *transport.Node) *Worker {
	return &Worker{node: node, Store: NewStore(0)}
}

// Node returns the underlying transport node.
func (w *Worker) Node() *transport.Node { return w.node }

// Run executes one job spec: it resolves the dataset from the store, compiles
// the expression against its dictionary, selects the spec's partitions as the
// local split, opens the attempt's exchange on the node and runs the
// requested miner. Cancelling ctx aborts the run cooperatively (the engine
// stops at input granularity and the exchange is torn down), so a superseded
// attempt releases its CPU promptly.
func (w *Worker) Run(ctx context.Context, spec JobSpec) (result *JobResult, err error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if obs.RecorderFrom(ctx) == nil {
		ctx = obs.WithRecorder(ctx, w.Rec)
	}
	ctx, span := obs.StartSpan(ctx, "worker.run",
		obs.String("job", spec.JobID), obs.Int("epoch", int64(spec.Epoch)),
		obs.Int("peer", int64(spec.Peer)), obs.String("algorithm", spec.Algorithm))
	defer func() {
		if err != nil {
			span.SetAttr("error", err.Error())
		}
		span.End()
	}()
	if err := validateSpec(spec); err != nil {
		return nil, permanentError{err}
	}
	db, ok := w.Store.Get(spec.DatasetID)
	if !ok {
		return nil, fmt.Errorf("%w %s", ErrUnknownDataset, spec.DatasetID)
	}
	f, err := fst.Compile(spec.Expression, db.Dict)
	if err != nil {
		return nil, permanentError{fmt.Errorf("cluster: compiling %q: %w", spec.Expression, err)}
	}
	split := partitionSplit(db.Sequences, spec.NumPartitions, spec.Partitions)

	bx, err := w.node.OpenExchangeContext(ctx, spec.JobID, spec.Epoch, spec.Peer, spec.DataPeers)
	if err != nil {
		return nil, err
	}
	defer bx.Close()
	// Propagate cancellation into the exchange: closing it fails every
	// blocked Send/Recv, so an abandoned attempt (coordinator gone, peer
	// failed, attempt superseded) stops mining instead of waiting out the
	// transport timeouts.
	stopCancel := context.AfterFunc(ctx, func() { bx.Close() })
	defer stopCancel()

	spillDir := spec.Options.SpillTmpDir
	if spillDir == "" {
		spillDir = w.SpillDir
	}
	cfg := mapreduce.Config{
		MapWorkers:    spec.Options.MapWorkers,
		ReduceWorkers: spec.Options.ReduceWorkers,
		Context:       ctx,
		Obs:           w.Obs,
		Shuffle: mapreduce.ShuffleConfig{
			SpillThreshold:     spec.Options.SpillThresholdBytes,
			TmpDir:             spillDir,
			SendBufferBytes:    spec.Options.SendBufferBytes,
			SendBufferMaxBytes: spec.Options.SendBufferMaxBytes,
			Compression:        spec.Options.CompressSpill,
		},
	}
	var (
		patterns []miner.Pattern
		metrics  mapreduce.Metrics
	)
	switch spec.Algorithm {
	case AlgoDSeq:
		patterns, metrics, err = dseq.MinePeer(f, split, spec.Sigma, dseq.Options{
			UseGrid:       spec.Options.UseGrid,
			Rewrite:       spec.Options.Rewrite,
			EarlyStopping: spec.Options.EarlyStopping,
			Aggregate:     spec.Options.AggregateSequences,
			Prefilter:     spec.Options.Prefilter,
		}, cfg, bx)
	case AlgoDCand:
		patterns, metrics, err = dcand.MinePeer(f, split, spec.Sigma, dcand.Options{
			Minimize:  spec.Options.MinimizeNFAs,
			Aggregate: spec.Options.AggregateNFAs,
			Prefilter: spec.Options.Prefilter,
		}, cfg, bx)
	default:
		err = permanentError{fmt.Errorf("cluster: algorithm %q cannot run distributed (want %s or %s)", spec.Algorithm, AlgoDSeq, AlgoDCand)}
	}
	if err != nil {
		return nil, err
	}
	// Copy the streaming shuffle's per-destination counters onto the
	// transport's per-peer stats rows, so the job result reports one
	// per-peer breakdown.
	stats := bx.Stats()
	for _, sp := range metrics.StreamPeers {
		if sp.Peer >= 0 && sp.Peer < len(stats) {
			stats[sp.Peer].StreamedBatches = sp.StreamedBatches
			stats[sp.Peer].OverflowSegments = sp.OverflowSegments
		}
	}
	w.observeStages(spec.Algorithm, metrics)
	result = &JobResult{
		Epoch:       spec.Epoch,
		Patterns:    patterns,
		Metrics:     metrics,
		WireBytesIn: bx.WireBytesIn(),
		PeerStats:   stats,
	}
	// End the run span before collecting, so the shipped batch includes it
	// (plus any spans of earlier attempts of the same trace this worker
	// recorded — that is how a retried job's full history reaches the
	// coordinator through the surviving workers).
	span.SetAttrInt("patterns", int64(len(patterns)))
	span.End()
	if trace, _ := obs.SpanContextFrom(ctx); trace != "" {
		result.Spans = w.Rec.TraceSpans(trace)
	}
	return result, nil
}

// observeStages feeds one finished run's engine metrics into the worker's
// per-stage latency histograms.
func (w *Worker) observeStages(algorithm string, m mapreduce.Metrics) {
	if w.Obs == nil {
		return
	}
	hist := func(stage string) *obs.Histogram {
		return w.Obs.Histogram("seqmine_worker_stage_seconds",
			"Wall-clock duration of worker engine stages.", obs.DurationBuckets, "stage", stage)
	}
	hist("map").Observe(m.MapTime.Seconds())
	hist("shuffle").Observe(m.ShuffleTime.Seconds())
	hist("reduce").Observe(m.ReduceTime.Seconds())
	w.Obs.Counter("seqmine_worker_jobs_total",
		"Job attempts completed by this worker.", "algorithm", algorithm).Inc()
}

// validateSpec rejects malformed job specs up front (permanent errors the
// coordinator must not retry).
func validateSpec(spec JobSpec) error {
	if spec.JobID == "" {
		return fmt.Errorf("cluster: empty job id")
	}
	if spec.Epoch < 0 {
		return fmt.Errorf("cluster: negative epoch %d", spec.Epoch)
	}
	if spec.Peer < 0 || spec.Peer >= len(spec.DataPeers) {
		return fmt.Errorf("cluster: peer %d out of range for %d data peers", spec.Peer, len(spec.DataPeers))
	}
	if spec.Sigma <= 0 {
		return fmt.Errorf("cluster: minimum support must be positive, got %d", spec.Sigma)
	}
	if spec.DatasetID == "" {
		return fmt.Errorf("cluster: empty dataset id")
	}
	if spec.NumPartitions < 1 {
		return fmt.Errorf("cluster: NumPartitions %d out of range", spec.NumPartitions)
	}
	for _, p := range spec.Partitions {
		if p < 0 || p >= spec.NumPartitions {
			return fmt.Errorf("cluster: partition %d out of range for %d partitions", p, spec.NumPartitions)
		}
	}
	return nil
}

// partitionSplit selects the sequences of the given partitions (sequence i
// belongs to partition i mod numPartitions), in stable input order.
func partitionSplit(seqs [][]dict.ItemID, numPartitions int, partitions []int) [][]dict.ItemID {
	if len(partitions) == 0 {
		return nil
	}
	want := make([]bool, numPartitions)
	for _, p := range partitions {
		want[p] = true
	}
	var split [][]dict.ItemID
	for i, seq := range seqs {
		if want[i%numPartitions] {
			split = append(split, seq)
		}
	}
	return split
}

// Handler returns the worker's control API:
//
//	POST /run              execute one JobSpec, respond with the JobResult
//	GET  /healthz          liveness probe, advertises the shuffle address
//	GET  /datasets         list the dataset store's bundles
//	GET  /datasets/{id}    presence probe for one bundle
//	PUT  /datasets/{id}    upload one content-addressed bundle
//	GET  /metrics          worker metrics (JSON; ?format=prometheus for text)
//	GET  /debug/trace/{id} one trace as Chrome trace_event JSON
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prometheus" {
			rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = w.Obs.WritePrometheus(rw)
			return
		}
		writeJSON(rw, http.StatusOK, struct {
			Metrics []obs.SnapshotEntry `json:"metrics"`
		}{Metrics: w.Obs.Snapshot()})
	})
	mux.HandleFunc("GET /debug/trace/{id}", func(rw http.ResponseWriter, r *http.Request) {
		id := obs.TraceID(r.PathValue("id"))
		spans := w.Rec.TraceSpans(id)
		if len(spans) == 0 {
			writeJSONError(rw, http.StatusNotFound, fmt.Errorf("cluster: no spans recorded for trace %s", id))
			return
		}
		data, err := obs.ChromeTrace(spans)
		if err != nil {
			writeJSONError(rw, http.StatusInternalServerError, err)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		_, _ = rw.Write(data)
	})
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, http.StatusOK, HealthResponse{
			Status:   "ok",
			DataAddr: w.node.Addr(),
			Datasets: w.Store.Len(),
		})
	})
	mux.HandleFunc("GET /datasets", func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, http.StatusOK, w.Store.List())
	})
	mux.HandleFunc("GET /datasets/{id}", func(rw http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if !w.Store.Has(id) {
			writeJSONError(rw, http.StatusNotFound, fmt.Errorf("%w %s", ErrUnknownDataset, id))
			return
		}
		writeJSON(rw, http.StatusOK, struct {
			ID string `json:"id"`
		}{ID: id})
	})
	mux.HandleFunc("PUT /datasets/{id}", func(rw http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		data, err := io.ReadAll(http.MaxBytesReader(rw, r.Body, maxDatasetBodyBytes))
		if err != nil {
			writeJSONError(rw, http.StatusBadRequest, fmt.Errorf("reading bundle: %w", err))
			return
		}
		if err := w.Store.Put(id, data); err != nil {
			writeJSONError(rw, http.StatusBadRequest, err)
			return
		}
		writeJSON(rw, http.StatusOK, struct {
			ID string `json:"id"`
		}{ID: id})
	})
	mux.HandleFunc("POST /run", func(rw http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := json.NewDecoder(http.MaxBytesReader(rw, r.Body, maxSpecBodyBytes)).Decode(&spec); err != nil {
			writeJSONError(rw, http.StatusBadRequest, fmt.Errorf("invalid JSON body: %w", err))
			return
		}
		ctx := obs.ExtractHeader(obs.WithRecorder(r.Context(), w.Rec), r.Header)
		result, err := w.Run(ctx, spec)
		if err != nil {
			writeRunError(rw, err)
			return
		}
		writeJSON(rw, http.StatusOK, result)
	})
	return mux
}

// permanentError marks failures a retry cannot fix (malformed spec, a
// pattern expression that does not compile, an unknown algorithm). The worker
// reports them as HTTP 400 so the coordinator fails the job instead of
// burning its retry budget on a deterministic error.
type permanentError struct{ err error }

func (e permanentError) Error() string { return e.err.Error() }
func (e permanentError) Unwrap() error { return e.err }

// writeRunError maps a run failure to a status the coordinator can act on:
// 404 for a missing dataset (re-push and retry), 400 for a permanent error
// (do not retry), 500 otherwise, carrying the index of the peer whose
// shuffle connection died when the failure was a peer death.
func writeRunError(rw http.ResponseWriter, err error) {
	var perm permanentError
	switch {
	case errors.Is(err, ErrUnknownDataset):
		writeJSONError(rw, http.StatusNotFound, err)
	case errors.As(err, &perm):
		writeJSONError(rw, http.StatusBadRequest, err)
	default:
		body := jsonError{Error: err.Error(), FailedPeer: -1}
		var perr *transport.PeerError
		if errors.As(err, &perr) {
			body.FailedPeer = perr.Peer
		}
		writeJSON(rw, http.StatusInternalServerError, body)
	}
}

type jsonError struct {
	Error string `json:"error"`
	// FailedPeer is the peer index whose shuffle connection caused the
	// failure; -1 when the failure was not a peer death. The field is always
	// written (no omitempty): 0 is a valid peer index, so absence must not
	// be confusable with it.
	FailedPeer int `json:"failed_peer"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeJSONError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, jsonError{Error: err.Error(), FailedPeer: -1})
}
