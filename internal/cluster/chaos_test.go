package cluster_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"seqmine/internal/cluster"
	"seqmine/internal/datagen"
	"seqmine/internal/dseq"
	"seqmine/internal/fst"
	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
	"seqmine/internal/paperex"
	"seqmine/internal/transport"
)

// chaosWorker is a worker that dies abruptly a short while after its first
// job spec arrives: the transport node closes (tearing every shuffle
// connection down mid-stream, like a SIGKILL would) and the control
// connections are severed. Its /healthz keeps failing afterwards.
type chaosWorker struct {
	worker *cluster.Worker
	node   *transport.Node
	srv    *httptest.Server
	delay  time.Duration
	killed atomic.Bool
	once   sync.Once
}

func (c *chaosWorker) handler() http.Handler {
	inner := c.worker.Handler()
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if c.killed.Load() {
			http.Error(rw, "killed", http.StatusServiceUnavailable)
			return
		}
		if r.Method == http.MethodPost && r.URL.Path == "/run" {
			c.once.Do(func() {
				go func() {
					time.Sleep(c.delay)
					c.killed.Store(true)
					c.node.Close()                 // shuffle connections die mid-stream
					c.srv.CloseClientConnections() // control connections die too
				}()
			})
		}
		inner.ServeHTTP(rw, r)
	})
}

// TestChaosKillWorkerMidShuffle is the fault-tolerance acceptance test: one
// of three workers is killed while a distributed job is in flight. The
// scheduler must declare it dead, retry the attempt on the two survivors
// under a fresh epoch, and produce a pattern set byte-identical to the
// single-process run — with non-zero retry metrics and no goroutine leaks.
func TestChaosKillWorkerMidShuffle(t *testing.T) {
	before := runtime.NumGoroutine()

	db, err := datagen.NYT(datagen.NYTConfig{NumSentences: 4000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const expr, sigma = "[.*(.)]{1,3}.*", int64(20)
	f := fst.MustCompile(expr, db.Dict)
	want, _ := dseq.Mine(f, db.Sequences, sigma, dseq.DefaultOptions(), mapreduce.Config{})
	if len(want) == 0 {
		t.Fatal("reference run found no patterns")
	}

	runChaos := func(t *testing.T, closers *[]func()) {
		// Two healthy workers plus one that dies shortly into its first run.
		urls := make([]string, 0, 3)
		for i := 0; i < 2; i++ {
			node, err := transport.NewNode("127.0.0.1:0", transport.Config{})
			if err != nil {
				t.Fatal(err)
			}
			*closers = append(*closers, func() { node.Close() })
			srv := httptest.NewServer(cluster.NewWorker(node).Handler())
			*closers = append(*closers, srv.Close)
			urls = append(urls, srv.URL)
		}
		node, err := transport.NewNode("127.0.0.1:0", transport.Config{})
		if err != nil {
			t.Fatal(err)
		}
		*closers = append(*closers, func() { node.Close() })
		chaos := &chaosWorker{worker: cluster.NewWorker(node), node: node, delay: 15 * time.Millisecond}
		chaos.srv = httptest.NewUnstartedServer(nil)
		chaos.srv.Config.Handler = chaos.handler()
		chaos.srv.Start()
		*closers = append(*closers, chaos.srv.Close)
		urls = append(urls, chaos.srv.URL)

		coord := &cluster.Coordinator{
			Workers:           urls,
			HeartbeatInterval: 100 * time.Millisecond,
		}
		opts := cluster.DefaultOptions()
		res, err := coord.Mine(context.Background(), db, expr, sigma, cluster.AlgoDSeq, opts)
		if err != nil {
			t.Fatalf("Mine with a dying worker: %v", err)
		}
		if !reflect.DeepEqual(res.Patterns, want) {
			t.Errorf("patterns after worker death differ from the single-process run (%d vs %d)",
				len(res.Patterns), len(want))
		}
		if res.Retries == 0 || res.Attempts < 2 {
			t.Errorf("expected a retried attempt, got attempts=%d retries=%d", res.Attempts, res.Retries)
		}
		found := false
		for _, dead := range res.DeadWorkers {
			if dead == chaos.srv.URL {
				found = true
			}
		}
		if !found {
			t.Errorf("dead workers %v do not include the killed worker %s", res.DeadWorkers, chaos.srv.URL)
		}
		if res.WinningEpoch == 0 {
			t.Errorf("winning epoch is 0; the retried attempt should have won")
		}
		if len(res.PerWorker) != 2 {
			t.Errorf("winning gang has %d members, want the 2 survivors", len(res.PerWorker))
		}
	}
	var closers []func()
	runChaos(t, &closers)
	// Tear the fixture servers down and drop idle keep-alive connections, so
	// the leak check below sees only what the job itself might have leaked.
	for _, shutdown := range closers {
		shutdown()
	}
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	if t.Failed() {
		return
	}

	// Everything the job started — schedulers, heartbeats, attempt
	// goroutines, worker runs, transport loops — must wind down.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<17)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after chaos run: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestCoordinatorResubmissionShipsNoBytes pins the dataset-store acceptance
// criterion: a second job against the same database must find the bundle on
// every worker and ship zero sequence bytes.
func TestCoordinatorResubmissionShipsNoBytes(t *testing.T) {
	db := paperDatabase(t)
	coord := &cluster.Coordinator{Workers: startWorkers(t, 3)}

	first, err := coord.Mine(context.Background(), db, paperex.PatternExpression, paperex.Sigma, cluster.AlgoDSeq, cluster.DefaultOptions())
	if err != nil {
		t.Fatalf("first Mine: %v", err)
	}
	if first.StoreMisses != 3 || first.StorePutBytes == 0 {
		t.Fatalf("first run should push the bundle to all 3 workers: %+v", storeStats(first))
	}
	if first.StoreHits != 0 {
		t.Fatalf("first run should not hit the store: %+v", storeStats(first))
	}

	second, err := coord.Mine(context.Background(), db, paperex.PatternExpression, paperex.Sigma, cluster.AlgoDSeq, cluster.DefaultOptions())
	if err != nil {
		t.Fatalf("second Mine: %v", err)
	}
	if second.StoreHits != 3 || second.StoreMisses != 0 || second.StorePutBytes != 0 {
		t.Errorf("resubmission should ship zero sequence bytes: %+v", storeStats(second))
	}
	if !reflect.DeepEqual(first.Patterns, second.Patterns) {
		t.Error("resubmission produced different patterns")
	}

	// A different coordinator instance hits the same worker-side store.
	fresh := &cluster.Coordinator{Workers: coord.Workers}
	third, err := fresh.Mine(context.Background(), db, paperex.PatternExpression, paperex.Sigma, cluster.AlgoDSeq, cluster.DefaultOptions())
	if err != nil {
		t.Fatalf("third Mine: %v", err)
	}
	if third.StoreMisses != 0 || third.StorePutBytes != 0 {
		t.Errorf("a fresh coordinator should still hit the worker stores: %+v", storeStats(third))
	}
}

func storeStats(r *cluster.Result) map[string]int64 {
	return map[string]int64{
		"hits": int64(r.StoreHits), "misses": int64(r.StoreMisses), "put_bytes": r.StorePutBytes,
	}
}

// TestCoordinatorSpeculativeAttempt: with an aggressive speculation
// threshold, a second attempt races the first; whichever completes first
// wins and the result is still exactly the single-process pattern set.
func TestCoordinatorSpeculativeAttempt(t *testing.T) {
	db, err := datagen.NYT(datagen.NYTConfig{NumSentences: 150, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const expr, sigma = "[.*(.)]{1,3}.*", int64(15)
	f := fst.MustCompile(expr, db.Dict)
	want, _ := dseq.Mine(f, db.Sequences, sigma, dseq.DefaultOptions(), mapreduce.Config{})
	if len(want) == 0 {
		t.Fatal("reference run found no patterns")
	}

	coord := &cluster.Coordinator{Workers: startWorkers(t, 3)}
	opts := cluster.DefaultOptions()
	opts.SpeculativeAfterMS = 1
	res, err := coord.Mine(context.Background(), db, expr, sigma, cluster.AlgoDSeq, opts)
	if err != nil {
		t.Fatalf("Mine: %v", err)
	}
	if !reflect.DeepEqual(res.Patterns, want) {
		t.Errorf("speculative run differs from the single-process run (%d vs %d patterns)",
			len(res.Patterns), len(want))
	}
	if res.SpeculativeAttempts != 1 || res.Attempts != 2 {
		t.Errorf("expected one speculative attempt to race, got attempts=%d speculative=%d",
			res.Attempts, res.SpeculativeAttempts)
	}
	if res.Retries != 0 {
		t.Errorf("speculation is not a retry: retries=%d", res.Retries)
	}
}

// TestCoordinatorTaskPartitions: more tasks than workers still yields the
// exact pattern set (tasks are just finer scheduling units).
func TestCoordinatorTaskPartitions(t *testing.T) {
	db := paperDatabase(t)
	f := fst.MustCompile(paperex.PatternExpression, db.Dict)
	want, _ := dseq.Mine(f, db.Sequences, paperex.Sigma, dseq.DefaultOptions(), mapreduce.Config{})

	coord := &cluster.Coordinator{Workers: startWorkers(t, 2)}
	opts := cluster.DefaultOptions()
	opts.TaskPartitions = 7
	res, err := coord.Mine(context.Background(), db, paperex.PatternExpression, paperex.Sigma, cluster.AlgoDSeq, opts)
	if err != nil {
		t.Fatalf("Mine: %v", err)
	}
	if got, wantM := miner.PatternsToMap(db.Dict, res.Patterns), miner.PatternsToMap(db.Dict, want); !reflect.DeepEqual(got, wantM) {
		t.Errorf("7-task run = %v, want %v", got, wantM)
	}
	if res.Tasks != 7 {
		t.Errorf("Tasks = %d, want 7", res.Tasks)
	}
}

// hangWorker answers its first health probes, then accepts a job spec and
// hangs forever without opening its exchange (a stalled process rather than
// a dead one: TCP stays up). Only the heartbeat/liveness loop can catch it.
type hangWorker struct {
	node    *transport.Node
	started atomic.Bool
}

func (h *hangWorker) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		if h.started.Load() {
			// Stalled: probes hang until the prober's timeout expires.
			<-r.Context().Done()
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		_, _ = rw.Write([]byte(`{"status":"ok","data_addr":"` + h.node.Addr() + `"}`))
	})
	mux.HandleFunc("GET /datasets/{id}", func(rw http.ResponseWriter, r *http.Request) {
		http.Error(rw, `{"error":"cluster: unknown dataset","failed_peer":-1}`, http.StatusNotFound)
	})
	mux.HandleFunc("PUT /datasets/{id}", func(rw http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		rw.WriteHeader(http.StatusOK)
		_, _ = rw.Write([]byte(`{}`))
	})
	mux.HandleFunc("POST /run", func(rw http.ResponseWriter, r *http.Request) {
		h.started.Store(true)
		// Consume the body so the server's background read notices the
		// coordinator abandoning the request, then hang like a stalled miner.
		_, _ = io.Copy(io.Discard, r.Body)
		<-r.Context().Done() // hang until the coordinator gives up on us
	})
	return mux
}

// TestHeartbeatDetectsStalledWorker: a worker that accepts its spec and then
// stalls (no crash, TCP alive) is only observable through missed heartbeats.
// The scheduler must declare it dead, abort the attempt and retry on the
// survivors — still byte-identical to the single-process run.
func TestHeartbeatDetectsStalledWorker(t *testing.T) {
	db := paperDatabase(t)
	f := fst.MustCompile(paperex.PatternExpression, db.Dict)
	want, _ := dseq.Mine(f, db.Sequences, paperex.Sigma, dseq.DefaultOptions(), mapreduce.Config{})

	urls := startWorkers(t, 2)
	node, err := transport.NewNode("127.0.0.1:0", transport.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	hang := &hangWorker{node: node}
	srv := httptest.NewServer(hang.handler())
	t.Cleanup(srv.Close)
	urls = append(urls, srv.URL)

	coord := &cluster.Coordinator{
		Workers:           urls,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatMisses:   2,
	}
	start := time.Now()
	res, err := coord.Mine(context.Background(), db, paperex.PatternExpression, paperex.Sigma, cluster.AlgoDSeq, cluster.DefaultOptions())
	if err != nil {
		t.Fatalf("Mine with a stalled worker: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("heartbeat path took %v; the stall should be caught in well under the transport timeouts", elapsed)
	}
	if got, wantM := miner.PatternsToMap(db.Dict, res.Patterns), miner.PatternsToMap(db.Dict, want); !reflect.DeepEqual(got, wantM) {
		t.Errorf("patterns after stalled worker = %v, want %v", got, wantM)
	}
	if res.Retries == 0 {
		t.Errorf("expected a retry after the heartbeat death, got %+v attempts/%d retries", res.Attempts, res.Retries)
	}
	found := false
	for _, dead := range res.DeadWorkers {
		if dead == srv.URL {
			found = true
		}
	}
	if !found {
		t.Errorf("dead workers %v do not include the stalled worker", res.DeadWorkers)
	}
}
