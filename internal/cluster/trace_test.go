package cluster_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"seqmine/internal/cluster"
	"seqmine/internal/obs"
	"seqmine/internal/paperex"
	"seqmine/internal/transport"
)

// flakyWorker fails its first POST /run with the store-eviction 404 (the
// coordinator's repush/retry path) and behaves normally afterwards, so a job
// against it spans two attempts without any worker being declared dead.
type flakyWorker struct {
	inner  http.Handler
	failed atomic.Bool
}

func (f *flakyWorker) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && r.URL.Path == "/run" && f.failed.CompareAndSwap(false, true) {
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(http.StatusNotFound)
		_, _ = rw.Write([]byte(`{"error":"cluster: unknown dataset","failed_peer":-1}`))
		return
	}
	f.inner.ServeHTTP(rw, r)
}

// TestTraceSpansWholeCluster is the tracing acceptance test: a 3-worker
// distributed mine with a forced retry must produce ONE trace — the same
// trace id covering the coordinator's job/attempt/task spans for both
// attempts and every worker's run and map/reduce stage spans, merged into the
// coordinator-side recorder and exportable as Chrome trace-event JSON.
func TestTraceSpansWholeCluster(t *testing.T) {
	db := paperDatabase(t)

	const n = 3
	urls := make([]string, n)
	workers := make([]*cluster.Worker, n)
	for i := 0; i < n; i++ {
		// A short open timeout so attempt 0's healthy members give up on the
		// flaky peer's exchange quickly instead of waiting out the default.
		node, err := transport.NewNode("127.0.0.1:0", transport.Config{OpenTimeout: 2 * time.Second})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		t.Cleanup(func() { node.Close() })
		w := cluster.NewWorker(node)
		w.Rec = obs.NewRecorder(fmt.Sprintf("worker-%d", i), 0)
		w.Obs = obs.NewRegistry()
		workers[i] = w
		var h http.Handler = w.Handler()
		if i == n-1 {
			h = &flakyWorker{inner: h}
		}
		srv := httptest.NewServer(h)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}

	rec := obs.NewRecorder("coordinator", 0)
	ctx := obs.WithRecorder(context.Background(), rec)
	coord := &cluster.Coordinator{Workers: urls, Obs: obs.NewRegistry()}
	res, err := coord.Mine(ctx, db, paperex.PatternExpression, paperex.Sigma, cluster.AlgoDSeq, cluster.DefaultOptions())
	if err != nil {
		t.Fatalf("Mine: %v", err)
	}
	if res.Retries == 0 || res.Attempts < 2 {
		t.Fatalf("the flaky worker should force a retry, got attempts=%d retries=%d", res.Attempts, res.Retries)
	}
	if res.TraceID == "" {
		t.Fatal("Result.TraceID is empty with a recorder on the context")
	}

	spans := rec.TraceSpans(res.TraceID)
	if len(spans) == 0 {
		t.Fatal("no spans recorded for the job's trace")
	}
	byName := map[string]int{}
	procs := map[string]map[string]bool{} // span name -> set of processes
	epochs := map[string]bool{}
	for _, sp := range spans {
		if sp.Trace != res.TraceID {
			t.Fatalf("span %s/%s carries trace %s, want %s", sp.Name, sp.Span, sp.Trace, res.TraceID)
		}
		byName[sp.Name]++
		if procs[sp.Name] == nil {
			procs[sp.Name] = map[string]bool{}
		}
		procs[sp.Name][sp.Proc] = true
		if sp.Name == "cluster.attempt" {
			for _, a := range sp.Attrs {
				if a.Key == "epoch" {
					epochs[a.Value] = true
				}
			}
		}
	}

	if byName["cluster.mine"] != 1 {
		t.Errorf("cluster.mine spans = %d, want exactly 1", byName["cluster.mine"])
	}
	if byName["cluster.attempt"] < 2 || len(epochs) < 2 {
		t.Errorf("want attempt spans from >= 2 epochs, got %d spans over epochs %v", byName["cluster.attempt"], epochs)
	}
	if byName["cluster.task"] < 2*n-1 {
		// Attempt 0 posts to all n workers (the flaky one fails fast), the
		// retry posts to all n again.
		t.Errorf("cluster.task spans = %d, want >= %d", byName["cluster.task"], 2*n-1)
	}
	// Every worker's run and engine stage spans must have been shipped back
	// and merged under the same trace, keeping their per-worker process label.
	for _, name := range []string{"worker.run", "mapreduce.run", "mapreduce.map", "mapreduce.reduce"} {
		if got := len(procs[name]); got != n {
			t.Errorf("%s spans come from %d processes %v, want all %d workers", name, got, keys(procs[name]), n)
		}
	}
	// Coordinator-side spans keep the coordinator's process label.
	for _, name := range []string{"cluster.mine", "cluster.attempt", "cluster.task"} {
		if !procs[name]["coordinator"] {
			t.Errorf("%s spans missing from the coordinator process: %v", name, keys(procs[name]))
		}
	}

	// The merged trace must export as Chrome trace-event JSON (the format
	// GET /debug/trace/{id} serves and Perfetto loads).
	buf, err := obs.ChromeTrace(spans)
	if err != nil {
		t.Fatalf("ChromeTrace: %v", err)
	}
	if len(buf) == 0 {
		t.Fatal("empty Chrome trace export")
	}

	// The registry side of the acceptance criterion: worker stage latency
	// histograms populated and a well-formed Prometheus exposition.
	for i, w := range workers {
		var expo bytes.Buffer
		if err := w.Obs.WritePrometheus(&expo); err != nil {
			t.Fatalf("worker %d WritePrometheus: %v", i, err)
		}
		stats, err := obs.ValidateExposition(&expo)
		if err != nil {
			t.Fatalf("worker %d exposition: %v", i, err)
		}
		if stats.SeriesByName["seqmine_worker_stage_seconds_count"] == 0 {
			t.Errorf("worker %d exposition has no stage-latency series", i)
		}
	}
}

func keys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	return out
}
