package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"
	"weak"

	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
	"seqmine/internal/obs"
	"seqmine/internal/seqdb"
)

// Coordinator schedules mining jobs across a pool of worker processes. One
// job runs as a sequence of attempts: each attempt gang-schedules every
// pending per-partition task over the live workers and runs one BSP round;
// a worker death or straggle fails only that attempt, and the scheduler
// relaunches (or speculatively duplicates) it under a fresh epoch on the
// surviving workers. The input database travels through the workers' shared
// dataset store, pushed at most once per worker per dataset.
type Coordinator struct {
	// Workers are the control URLs of the worker processes
	// ("http://host:port"), one per pool member.
	Workers []string
	// Client issues the control requests; nil uses http.DefaultClient. Job
	// requests run for the duration of an attempt, so a client with a short
	// Timeout will abort long jobs.
	Client *http.Client
	// HeartbeatInterval is how often busy workers are health-probed during a
	// job; 0 means 500ms.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is how many consecutive failed probes declare a worker
	// dead (its running attempt is then aborted and retried without it);
	// 0 means 3.
	HeartbeatMisses int
	// Obs, when non-nil, receives scheduler metrics: task-attempt durations
	// (seqmine_task_attempt_seconds) and heartbeat round-trip times
	// (seqmine_heartbeat_rtt_seconds).
	Obs *obs.Registry
	// Log receives structured liveness and scheduling log lines; nil falls
	// back to obs.DefaultLogger() (which may itself be silent). A recorder on
	// the Mine context additionally receives cluster.mine / cluster.attempt /
	// cluster.task spans, propagated to the workers via the X-Seqmine-Trace
	// header.
	Log *obs.Logger
}

// bundleRef caches one database's encoded bundle so resubmissions skip
// re-encoding (the network already skips re-shipping via the store probe).
type bundleRef struct {
	data    []byte
	id      string
	lastUse uint64
}

// bundleCache is shared by all coordinators of the process (the service
// layer builds a fresh Coordinator per query): keyed by a weak pointer to
// the database, so a resubmitted database object encodes once but a dropped
// one (e.g. a daemon re-registering a dataset) is not pinned in memory — a
// GC cleanup drops an entry as soon as its database is collected, and live
// entries are LRU-evicted beyond the (tiny) capacity.
var bundleCache = struct {
	sync.Mutex
	entries map[weak.Pointer[seqdb.Database]]*bundleRef
	clock   uint64
}{entries: map[weak.Pointer[seqdb.Database]]*bundleRef{}}

// maxBundleCache bounds the process-wide bundle cache.
const maxBundleCache = 8

// Result is the merged outcome of a distributed mining job.
type Result struct {
	// TraceID is the distributed trace this job ran under (empty when the
	// Mine context carried no recorder). The coordinator's recorder then
	// holds the merged end-to-end trace: its own scheduler spans plus the
	// winning attempt's worker spans.
	TraceID obs.TraceID
	// Patterns is the complete frequent-sequence set, sorted like the
	// single-process miners sort it.
	Patterns []miner.Pattern
	// Metrics aggregates the winning attempt's engine metrics: times are
	// maxima (phases run in parallel), counts and bytes are sums.
	// ShuffleBytes is the total bytes written to shuffle sockets by the
	// winning attempt.
	Metrics mapreduce.Metrics
	// WireBytesIn is the total bytes read from shuffle sockets by the
	// winning attempt; it equals Metrics.ShuffleBytes when every frame
	// arrived.
	WireBytesIn int64
	// PerWorker holds each gang member's own result for the winning attempt
	// (index = peer within the attempt's gang).
	PerWorker []JobResult

	// Tasks is the number of per-partition tasks the job was decomposed
	// into.
	Tasks int
	// Attempts is the number of attempts launched (>= 1).
	Attempts int
	// Retries is the number of attempts relaunched after a failure.
	Retries int
	// SpeculativeAttempts counts attempts launched against a straggling (not
	// failed) attempt.
	SpeculativeAttempts int
	// WinningEpoch is the epoch of the attempt whose results were merged.
	WinningEpoch int
	// DeadWorkers are the control URLs of pool members declared dead during
	// the job.
	DeadWorkers []string

	// StoreHits counts workers that already held the dataset bundle;
	// StoreMisses counts workers the bundle had to be pushed to, and
	// StorePutBytes is the total bundle bytes shipped. A resubmission
	// against an already-pushed dataset reports StoreMisses == 0 and
	// StorePutBytes == 0: the job moved no sequence bytes.
	StoreHits     int
	StoreMisses   int
	StorePutBytes int64
}

// workerRef is the scheduler's view of one pool member.
type workerRef struct {
	url      string
	dataAddr string

	mu     sync.Mutex
	alive  bool
	misses int // consecutive failed heartbeats
}

func (w *workerRef) isAlive() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.alive
}

func (w *workerRef) markDead() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	wasAlive := w.alive
	w.alive = false
	return wasAlive
}

// Mine runs one distributed job over the database with the scheduler
// described on Coordinator. algorithm is AlgoDSeq or AlgoDCand.
func (c *Coordinator) Mine(ctx context.Context, db *seqdb.Database, expression string, sigma int64, algorithm string, opts Options) (*Result, error) {
	if len(c.Workers) == 0 {
		return nil, fmt.Errorf("cluster: no workers configured")
	}
	if db == nil || db.Dict == nil {
		return nil, fmt.Errorf("cluster: nil database")
	}
	client := c.Client
	if client == nil {
		client = http.DefaultClient
	}
	log := c.Log
	if log == nil {
		log = obs.DefaultLogger()
	}
	ctx, mineSpan := obs.StartSpan(ctx, "cluster.mine",
		obs.String("algorithm", algorithm), obs.Int("sigma", sigma),
		obs.Int("workers", int64(len(c.Workers))))
	defer mineSpan.End()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Probe the pool: a worker that does not answer /healthz now is out for
	// this job.
	pool := make([]*workerRef, len(c.Workers))
	var probeWG sync.WaitGroup
	probeErrs := make([]error, len(c.Workers))
	for i, base := range c.Workers {
		pool[i] = &workerRef{url: strings.TrimRight(base, "/")}
		probeWG.Add(1)
		go func(i int) {
			defer probeWG.Done()
			var health HealthResponse
			if err := getJSON(ctx, client, pool[i].url+"/healthz", &health); err != nil {
				probeErrs[i] = err
				return
			}
			if health.DataAddr == "" {
				probeErrs[i] = fmt.Errorf("worker advertises no shuffle address")
				return
			}
			pool[i].dataAddr = health.DataAddr
			pool[i].alive = true
		}(i)
	}
	probeWG.Wait()
	live := liveWorkers(pool)
	if len(live) == 0 {
		return nil, fmt.Errorf("cluster: no live workers (worker 0 %s: %v)", c.Workers[0], probeErrs[0])
	}

	// Push the dataset bundle to every live worker that does not hold it.
	data, datasetID, err := c.bundleFor(db)
	if err != nil {
		return nil, err
	}
	res := &Result{TraceID: mineSpan.TraceID()}
	var pushMu sync.Mutex
	var pushWG sync.WaitGroup
	for _, ws := range live {
		pushWG.Add(1)
		go func(ws *workerRef) {
			defer pushWG.Done()
			hit, putBytes, err := ensureDataset(ctx, client, ws.url, datasetID, data)
			pushMu.Lock()
			defer pushMu.Unlock()
			if err != nil {
				if ws.markDead() {
					res.DeadWorkers = append(res.DeadWorkers, ws.url)
				}
				return
			}
			if hit {
				res.StoreHits++
			} else {
				res.StoreMisses++
				res.StorePutBytes += putBytes
			}
		}(ws)
	}
	pushWG.Wait()
	live = liveWorkers(pool)
	if len(live) == 0 {
		return nil, fmt.Errorf("cluster: no worker accepted the dataset bundle")
	}

	// Decompose into per-partition tasks. The partition count is fixed for
	// the whole job, so task identity survives gang changes across attempts.
	numTasks := opts.TaskPartitions
	if numTasks <= 0 {
		numTasks = len(live)
	}
	res.Tasks = numTasks

	jobID, err := newJobID()
	if err != nil {
		return nil, err
	}
	sched := &scheduler{
		coord:     c,
		client:    client,
		ctx:       ctx,
		cancel:    cancel,
		pool:      pool,
		jobID:     jobID,
		numTasks:  numTasks,
		datasetID: datasetID,
		bundle:    data,
		algorithm: algorithm,
		expr:      expression,
		sigma:     sigma,
		opts:      opts,
		res:       res,
		log:       log,
		attemptHist: c.Obs.Histogram("seqmine_task_attempt_seconds",
			"Duration of cluster job attempts (gang launch to last member response).",
			obs.DurationBuckets, "algorithm", algorithm),
		hbHist: c.Obs.Histogram("seqmine_heartbeat_rtt_seconds",
			"Round-trip time of successful worker heartbeat probes.", obs.DurationBuckets),
	}
	result, err := sched.run()
	if err != nil {
		mineSpan.SetAttr("error", err.Error())
		return nil, err
	}
	mineSpan.SetAttrInt("attempts", int64(result.Attempts))
	mineSpan.SetAttrInt("retries", int64(result.Retries))
	mineSpan.SetAttrInt("patterns", int64(len(result.Patterns)))
	return result, nil
}

// liveWorkers filters the pool down to its live members, in pool order.
func liveWorkers(pool []*workerRef) []*workerRef {
	var live []*workerRef
	for _, ws := range pool {
		if ws.isAlive() {
			live = append(live, ws)
		}
	}
	return live
}

// bundleFor returns the (cached) encoded bundle of db.
func (c *Coordinator) bundleFor(db *seqdb.Database) ([]byte, string, error) {
	key := weak.Make(db)
	bundleCache.Lock()
	if ref, ok := bundleCache.entries[key]; ok {
		bundleCache.clock++
		ref.lastUse = bundleCache.clock
		data, id := ref.data, ref.id
		bundleCache.Unlock()
		return data, id, nil
	}
	bundleCache.Unlock()
	data, id, err := EncodeBundle(db)
	if err != nil {
		return nil, "", err
	}
	bundleCache.Lock()
	if _, ok := bundleCache.entries[key]; !ok {
		for len(bundleCache.entries) >= maxBundleCache {
			evictOldestLocked(bundleCache.entries, func(r *bundleRef) uint64 { return r.lastUse })
		}
		bundleCache.clock++
		bundleCache.entries[key] = &bundleRef{data: data, id: id, lastUse: bundleCache.clock}
		// Drop the entry as soon as the database itself is collected, so an
		// idle daemon does not pin dead bundles until the next cluster query.
		runtime.AddCleanup(db, func(k weak.Pointer[seqdb.Database]) {
			bundleCache.Lock()
			delete(bundleCache.entries, k)
			bundleCache.Unlock()
		}, key)
	}
	bundleCache.Unlock()
	return data, id, nil
}

// ensureDataset makes one worker hold the bundle: a cheap presence probe,
// then a PUT only on miss. Returns whether the probe hit.
func ensureDataset(ctx context.Context, client *http.Client, baseURL, id string, data []byte) (hit bool, putBytes int64, err error) {
	probeErr := getJSON(ctx, client, baseURL+"/datasets/"+id, &struct{}{})
	if probeErr == nil {
		return true, 0, nil
	}
	var herr *httpStatusError
	if !errors.As(probeErr, &herr) || herr.status != http.StatusNotFound {
		return false, 0, probeErr
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, baseURL+"/datasets/"+id, bytes.NewReader(data))
	if err != nil {
		return false, 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if err := doJSON(client, req, &struct{}{}); err != nil {
		return false, 0, err
	}
	return false, int64(len(data)), nil
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

// scheduler drives one job's attempts to completion.
type scheduler struct {
	coord  *Coordinator
	client *http.Client
	ctx    context.Context
	cancel context.CancelFunc
	pool   []*workerRef

	jobID     string
	numTasks  int
	datasetID string
	bundle    []byte
	algorithm string
	expr      string
	sigma     int64
	opts      Options
	res       *Result

	log         *obs.Logger
	attemptHist *obs.Histogram
	hbHist      *obs.Histogram

	epoch    int
	outcomes chan *attempt

	// smu guards running and res.DeadWorkers, which the heartbeat goroutine
	// touches concurrently with the scheduling loop.
	smu     sync.Mutex
	running map[int]*attempt
}

// attempt is one gang execution of all tasks.
type attempt struct {
	epoch  int
	gang   []*workerRef
	cancel context.CancelFunc

	// hbDead is set (under mu) by the heartbeat loop before canceling the
	// attempt.
	mu     sync.Mutex
	hbDead *workerRef

	// outcome, posted to scheduler.outcomes when every gang request ended.
	results   []JobResult
	err       error      // nil on success
	permanent bool       // failure a retry cannot fix
	failed    *workerRef // gang member held responsible, when identifiable
	repush    *workerRef // gang member that lost the dataset (evicted)
}

func (a *attempt) heartbeatDeath() *workerRef {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.hbDead
}

func (s *scheduler) heartbeatInterval() time.Duration {
	if s.coord.HeartbeatInterval > 0 {
		return s.coord.HeartbeatInterval
	}
	return 500 * time.Millisecond
}

func (s *scheduler) heartbeatMisses() int {
	if s.coord.HeartbeatMisses > 0 {
		return s.coord.HeartbeatMisses
	}
	return 3
}

// run launches attempts until one succeeds, the retry budget is exhausted,
// or the context ends.
func (s *scheduler) run() (*Result, error) {
	maxRetries := s.opts.MaxRetries
	if maxRetries < 0 {
		maxRetries = 0
	}
	// Every attempt posts exactly one outcome; the channel is sized for the
	// worst case (initial + retries + one speculative) so posts never block
	// even after the scheduler has returned.
	s.outcomes = make(chan *attempt, maxRetries+3)
	s.running = map[int]*attempt{}

	// The heartbeat loop is joined before run returns: its probe goroutines
	// touch res.DeadWorkers, which the caller reads as soon as Mine returns.
	hbCtx, hbStop := context.WithCancel(s.ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		s.heartbeatLoop(hbCtx)
	}()
	defer func() {
		hbStop()
		<-hbDone
	}()

	// The speculation timer measures the *current* attempt: it is re-armed on
	// every launch, so a retry does not inherit the previous attempt's clock.
	// One speculative attempt per job.
	var (
		specTimer *time.Timer
		specC     <-chan time.Time
		specUsed  bool
	)
	armSpec := func() {
		specC = nil
		if s.opts.SpeculativeAfterMS <= 0 || specUsed {
			return
		}
		d := time.Duration(s.opts.SpeculativeAfterMS) * time.Millisecond
		if specTimer == nil {
			specTimer = time.NewTimer(d)
		} else {
			if !specTimer.Stop() {
				select {
				case <-specTimer.C:
				default:
				}
			}
			specTimer.Reset(d)
		}
		specC = specTimer.C
	}
	defer func() {
		if specTimer != nil {
			specTimer.Stop()
		}
	}()

	if err := s.launch(); err != nil {
		return nil, err
	}
	armSpec()

	for {
		select {
		case a := <-s.outcomes:
			s.smu.Lock()
			delete(s.running, a.epoch)
			s.smu.Unlock()
			if a.err == nil {
				s.cancel() // supersede the losing attempts, stop heartbeats
				return s.merge(a), nil
			}
			if s.ctx.Err() != nil {
				return nil, s.ctx.Err()
			}
			if a.permanent {
				s.cancel()
				s.log.Error("job failed permanently", obs.String("job", s.jobID),
					obs.Int("epoch", int64(a.epoch)), obs.String("error", a.err.Error()))
				return nil, fmt.Errorf("cluster: %w", a.err)
			}
			if a.failed != nil && a.failed.markDead() {
				s.addDeadWorker(a.failed)
				s.log.Warn("worker removed from pool", obs.String("worker", a.failed.url),
					obs.Int("epoch", int64(a.epoch)), obs.String("error", a.err.Error()))
			}
			if a.repush != nil {
				hit, putBytes, err := ensureDataset(s.ctx, s.client, a.repush.url, s.datasetID, s.bundle)
				if err != nil {
					if a.repush.markDead() {
						s.addDeadWorker(a.repush)
					}
				} else if !hit {
					s.res.StoreMisses++
					s.res.StorePutBytes += putBytes
				}
			}
			if s.runningCount() > 0 {
				// A concurrent attempt (the speculative race's sibling) is
				// still in flight and may yet win: its failure, not this one,
				// decides whether the job needs a relaunch. Losing a
				// duplicate costs no retry budget.
				continue
			}
			if s.res.Retries >= maxRetries {
				s.cancel()
				s.log.Error("retry budget exhausted", obs.String("job", s.jobID),
					obs.Int("attempts", int64(s.res.Attempts)), obs.String("error", a.err.Error()))
				return nil, fmt.Errorf("cluster: job failed after %d attempts (%d retries): %w",
					s.res.Attempts, s.res.Retries, a.err)
			}
			s.res.Retries++
			s.log.Warn("attempt failed, retrying", obs.String("job", s.jobID),
				obs.Int("epoch", int64(a.epoch)), obs.Int("retries", int64(s.res.Retries)),
				obs.String("error", a.err.Error()))
			if err := s.launch(); err != nil {
				return nil, fmt.Errorf("cluster: relaunching after %w: %v", a.err, err)
			}
			armSpec()
		case <-specC:
			specC = nil
			if s.runningCount() == 1 && len(liveWorkers(s.pool)) > 0 {
				if err := s.launch(); err == nil {
					s.res.SpeculativeAttempts++
					specUsed = true
				}
			}
		case <-s.ctx.Done():
			return nil, s.ctx.Err()
		}
	}
}

func (s *scheduler) runningCount() int {
	s.smu.Lock()
	defer s.smu.Unlock()
	return len(s.running)
}

// latestEpoch is the most recently launched attempt epoch (-1 before the
// first launch); the heartbeat loop stamps it onto its log lines.
func (s *scheduler) latestEpoch() int {
	s.smu.Lock()
	defer s.smu.Unlock()
	return s.epoch - 1
}

func (s *scheduler) addDeadWorker(ws *workerRef) {
	s.smu.Lock()
	s.res.DeadWorkers = append(s.res.DeadWorkers, ws.url)
	s.smu.Unlock()
}

// launch starts one attempt over the currently live workers: every task is
// assigned to a gang member (rotated by epoch so a straggler gets different
// partitions on the next attempt) and each member is POSTed its spec.
func (s *scheduler) launch() error {
	gang := liveWorkers(s.pool)
	if len(gang) == 0 {
		return fmt.Errorf("no live workers remain")
	}
	// The heartbeat loop reads the latest epoch for its log lines, so the
	// counter is guarded even though only the run loop launches.
	s.smu.Lock()
	epoch := s.epoch
	s.epoch++
	s.smu.Unlock()
	s.res.Attempts++

	dataPeers := make([]string, len(gang))
	for i, ws := range gang {
		dataPeers[i] = ws.dataAddr
	}
	parts := make([][]int, len(gang))
	for task := 0; task < s.numTasks; task++ {
		gi := (task + epoch) % len(gang)
		parts[gi] = append(parts[gi], task)
	}

	sctx, aspan := obs.StartSpan(s.ctx, "cluster.attempt",
		obs.Int("epoch", int64(epoch)), obs.Int("gang", int64(len(gang))))
	actx, acancel := context.WithCancel(sctx)
	a := &attempt{epoch: epoch, gang: gang, cancel: acancel, results: make([]JobResult, len(gang))}
	s.smu.Lock()
	s.running[epoch] = a
	s.smu.Unlock()
	s.log.Info("attempt launched", obs.String("job", s.jobID), obs.Int("epoch", int64(epoch)),
		obs.Int("gang", int64(len(gang))), obs.Int("tasks", int64(s.numTasks)))

	go func() {
		started := time.Now()
		defer acancel()
		errs := make([]error, len(gang))
		var wg sync.WaitGroup
		for gi := range gang {
			spec := JobSpec{
				JobID:         s.jobID,
				Epoch:         epoch,
				Algorithm:     s.algorithm,
				Peer:          gi,
				DataPeers:     dataPeers,
				Expression:    s.expr,
				Sigma:         s.sigma,
				DatasetID:     s.datasetID,
				NumPartitions: s.numTasks,
				Partitions:    parts[gi],
				Options:       s.opts,
			}
			wg.Add(1)
			go func(gi int, spec JobSpec) {
				defer wg.Done()
				tctx, tspan := obs.StartSpan(actx, "cluster.task",
					obs.Int("peer", int64(gi)), obs.String("worker", gang[gi].url),
					obs.Int("epoch", int64(epoch)), obs.Int("partitions", int64(len(spec.Partitions))))
				err := postJSON(tctx, s.client, gang[gi].url+"/run", spec, &a.results[gi])
				if err != nil {
					tspan.SetAttr("error", err.Error())
				}
				tspan.End()
				errs[gi] = err
			}(gi, spec)
		}
		wg.Wait()
		s.classify(a, errs)
		s.attemptHist.Observe(time.Since(started).Seconds())
		if a.err != nil {
			aspan.SetAttr("error", a.err.Error())
		}
		aspan.End()
		s.outcomes <- a // buffered for the worst case; never blocks
	}()
	return nil
}

// classify condenses a finished attempt's per-member errors into one outcome.
// Blame for a failed attempt is assigned by evidence strength: a member whose
// own control request failed at the transport level is known dead first hand,
// whereas a failed_peer report is hearsay — a healthy member whose shuffle
// stream broke may be seeing the cascade of another member aborting, not the
// root cause. Direct evidence therefore outranks the reports, and among
// reports the most-accused peer wins, so a single cascaded broken pipe cannot
// evict a healthy survivor from the pool.
func (s *scheduler) classify(a *attempt, errs []error) {
	if dead := a.heartbeatDeath(); dead != nil {
		a.err = fmt.Errorf("worker %s stopped answering heartbeats", dead.url)
		a.failed = dead
		return
	}
	votes := make([]int, len(a.gang))
	reportErr := make([]error, len(a.gang))
	reporter := make([]int, len(a.gang))
	for gi, err := range errs {
		if err == nil {
			continue
		}
		if a.err == nil {
			a.err = fmt.Errorf("worker %d (%s): %w", gi, a.gang[gi].url, err)
		}
		var herr *httpStatusError
		if !errors.As(err, &herr) {
			if errors.Is(err, context.Canceled) {
				// Our own cancellation (supersede or shutdown), not a death.
				continue
			}
			// Transport-level failure: the worker itself is unreachable.
			if a.failed == nil {
				a.failed = a.gang[gi]
				a.err = fmt.Errorf("worker %d (%s) unreachable: %w", gi, a.gang[gi].url, err)
			}
			continue
		}
		switch {
		case herr.status == http.StatusBadRequest:
			a.permanent = true
			a.err = fmt.Errorf("worker %d (%s): %w", gi, a.gang[gi].url, err)
			return
		case herr.status == http.StatusNotFound:
			if a.repush == nil {
				a.repush = a.gang[gi]
			}
		case herr.failedPeer >= 0 && herr.failedPeer < len(a.gang):
			if reportErr[herr.failedPeer] == nil {
				reportErr[herr.failedPeer] = err
				reporter[herr.failedPeer] = gi
			}
			votes[herr.failedPeer]++
		}
	}
	if a.failed == nil {
		accused := -1
		for peer, n := range votes {
			if n > 0 && (accused < 0 || n > votes[accused]) {
				accused = peer
			}
		}
		if accused >= 0 {
			a.failed = a.gang[accused]
			a.err = fmt.Errorf("worker %d (%s) reports peer %d (%s) dead: %w",
				reporter[accused], a.gang[reporter[accused]].url, accused, a.gang[accused].url, reportErr[accused])
		}
	}
	if a.err == nil && s.ctx.Err() != nil {
		a.err = s.ctx.Err()
	}
}

// heartbeatLoop probes the live pool members while the job runs; a member
// that misses enough consecutive probes is declared dead and every running
// attempt containing it is aborted (which surfaces as that attempt's failure
// and triggers the retry path).
func (s *scheduler) heartbeatLoop(ctx context.Context) {
	interval := s.heartbeatInterval()
	probeClient := &http.Client{Timeout: interval * 2}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		var wg sync.WaitGroup
		for _, ws := range liveWorkers(s.pool) {
			wg.Add(1)
			go func(ws *workerRef) {
				defer wg.Done()
				var health HealthResponse
				start := time.Now()
				err := getJSON(ctx, probeClient, ws.url+"/healthz", &health)
				rtt := time.Since(start)
				if ctx.Err() != nil {
					return // shutting down: a canceled probe is not a miss
				}
				if err == nil {
					s.hbHist.Observe(rtt.Seconds())
				}
				ws.mu.Lock()
				recovered := false
				if err != nil {
					ws.misses++
				} else {
					recovered = ws.misses > 0 && ws.alive
					ws.misses = 0
				}
				misses := ws.misses
				dead := ws.alive && ws.misses >= s.heartbeatMisses()
				if dead {
					ws.alive = false
				}
				ws.mu.Unlock()
				epoch := int64(s.latestEpoch())
				switch {
				case dead:
					s.log.Warn("worker declared dead", obs.String("worker", ws.url),
						obs.Int("misses", int64(misses)), obs.Int("epoch", epoch),
						obs.String("error", err.Error()))
					s.onHeartbeatDeath(ws)
				case err != nil:
					s.log.Debug("worker heartbeat missed", obs.String("worker", ws.url),
						obs.Int("misses", int64(misses)), obs.Int("epoch", epoch),
						obs.String("error", err.Error()))
				case recovered:
					s.log.Info("worker heartbeat recovered", obs.String("worker", ws.url),
						obs.Int("epoch", epoch))
				}
			}(ws)
		}
		wg.Wait()
	}
}

// onHeartbeatDeath aborts every running attempt that contains the dead
// worker.
func (s *scheduler) onHeartbeatDeath(ws *workerRef) {
	s.smu.Lock()
	s.res.DeadWorkers = append(s.res.DeadWorkers, ws.url)
	running := make([]*attempt, 0, len(s.running))
	for _, a := range s.running {
		running = append(running, a)
	}
	s.smu.Unlock()
	for _, a := range running {
		for _, member := range a.gang {
			if member == ws {
				a.mu.Lock()
				a.hbDead = ws
				a.mu.Unlock()
				a.cancel()
				break
			}
		}
	}
}

// merge folds the winning attempt into the job result.
func (s *scheduler) merge(a *attempt) *Result {
	res := s.res
	res.WinningEpoch = a.epoch
	res.PerWorker = a.results
	res.Metrics.RemoteShuffle = true
	// Fold the workers' span records into the coordinator's recorder: the
	// merged trace then covers the scheduler, every gang member's run (the
	// winning attempt plus any earlier attempts the surviving workers
	// recorded under the same trace) and their engine stages.
	if rec := obs.RecorderFrom(s.ctx); rec != nil {
		for _, r := range a.results {
			rec.Import(r.Spans)
		}
	}
	for _, r := range a.results {
		res.Patterns = append(res.Patterns, r.Patterns...)
		res.WireBytesIn += r.WireBytesIn
		m := r.Metrics
		if m.MapTime > res.Metrics.MapTime {
			res.Metrics.MapTime = m.MapTime
		}
		if m.ShuffleTime > res.Metrics.ShuffleTime {
			res.Metrics.ShuffleTime = m.ShuffleTime
		}
		if m.ReduceTime > res.Metrics.ReduceTime {
			res.Metrics.ReduceTime = m.ReduceTime
		}
		res.Metrics.MapOutputRecords += m.MapOutputRecords
		res.Metrics.ShuffleRecords += m.ShuffleRecords
		res.Metrics.ShuffleBytes += m.ShuffleBytes
		res.Metrics.Partitions += m.Partitions // pivot keys are disjoint across peers
		if m.MaxPartitionRecords > res.Metrics.MaxPartitionRecords {
			res.Metrics.MaxPartitionRecords = m.MaxPartitionRecords
		}
		res.Metrics.SpilledBytes += m.SpilledBytes
		res.Metrics.SpillCount += m.SpillCount
		res.Metrics.StreamedBatches += m.StreamedBatches
		res.Metrics.SendOverflowSegments += m.SendOverflowSegments
	}
	miner.SortPatterns(res.Patterns)
	return res
}

// ---------------------------------------------------------------------------
// HTTP helpers
// ---------------------------------------------------------------------------

func newJobID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("cluster: generating job id: %w", err)
	}
	return "job-" + hex.EncodeToString(b[:]), nil
}

// httpStatusError is a non-200 control-plane response, with the worker's
// structured error body when it sent one.
type httpStatusError struct {
	status     int
	msg        string
	failedPeer int // -1 when the body named no failed peer
}

func (e *httpStatusError) Error() string { return e.msg }

func getJSON(ctx context.Context, client *http.Client, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	obs.InjectHeader(ctx, req.Header)
	return doJSON(client, req, out)
}

func postJSON(ctx context.Context, client *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	obs.InjectHeader(ctx, req.Header)
	return doJSON(client, req, out)
}

func doJSON(client *http.Client, req *http.Request, out any) error {
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		herr := &httpStatusError{status: resp.StatusCode, failedPeer: -1}
		var je jsonError
		if json.Unmarshal(msg, &je) == nil && je.Error != "" {
			herr.msg = fmt.Sprintf("%s: %s", resp.Status, je.Error)
			if je.FailedPeer >= 0 {
				herr.failedPeer = je.FailedPeer
			}
		} else {
			herr.msg = fmt.Sprintf("%s: %s", resp.Status, strings.TrimSpace(string(msg)))
		}
		return herr
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
