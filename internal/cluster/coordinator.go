package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"seqmine/internal/dict"
	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
	"seqmine/internal/seqdb"
)

// Coordinator drives one mining job across a set of worker processes.
type Coordinator struct {
	// Workers are the control URLs of the worker processes
	// ("http://host:port"), one per peer.
	Workers []string
	// Client issues the control requests; nil uses http.DefaultClient. Job
	// requests run for the duration of the mining job, so a client with a
	// short Timeout will abort long jobs.
	Client *http.Client
}

// Result is the merged outcome of a distributed mining job.
type Result struct {
	// Patterns is the complete frequent-sequence set, sorted like the
	// single-process miners sort it.
	Patterns []miner.Pattern
	// Metrics aggregates the workers' engine metrics: times are maxima
	// (phases run in parallel), counts and bytes are sums. ShuffleBytes is
	// the total bytes written to shuffle sockets across the cluster.
	Metrics mapreduce.Metrics
	// WireBytesIn is the total bytes read from shuffle sockets across the
	// cluster; it equals Metrics.ShuffleBytes when every frame arrived.
	WireBytesIn int64
	// PerWorker holds each worker's own result (index = peer).
	PerWorker []JobResult
}

// Mine runs one distributed job over the database. The database is split
// round-robin across the workers; algorithm is AlgoDSeq or AlgoDCand.
func (c *Coordinator) Mine(ctx context.Context, db *seqdb.Database, expression string, sigma int64, algorithm string, opts Options) (*Result, error) {
	if len(c.Workers) == 0 {
		return nil, fmt.Errorf("cluster: no workers configured")
	}
	if db == nil || db.Dict == nil {
		return nil, fmt.Errorf("cluster: nil database")
	}
	client := c.Client
	if client == nil {
		client = http.DefaultClient
	}

	// Resolve every worker's shuffle address from its health endpoint, so
	// the coordinator configuration is control URLs only.
	dataPeers := make([]string, len(c.Workers))
	for i, base := range c.Workers {
		var health HealthResponse
		if err := getJSON(ctx, client, strings.TrimRight(base, "/")+"/healthz", &health); err != nil {
			return nil, fmt.Errorf("cluster: worker %d (%s): %w", i, base, err)
		}
		if health.DataAddr == "" {
			return nil, fmt.Errorf("cluster: worker %d (%s) advertises no shuffle address", i, base)
		}
		dataPeers[i] = health.DataAddr
	}

	var dictText strings.Builder
	if err := db.Dict.Save(&dictText); err != nil {
		return nil, fmt.Errorf("cluster: serializing dictionary: %w", err)
	}
	jobID, err := newJobID()
	if err != nil {
		return nil, err
	}

	// Fan the specs out; the workers shuffle among themselves and each
	// returns its partitions' patterns. The first failure cancels the other
	// requests and is the error reported (the canceled neighbors' errors are
	// collateral, not the root cause).
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]JobResult, len(c.Workers))
	var (
		wg       sync.WaitGroup
		failOnce sync.Once
		failErr  error
	)
	for p := range c.Workers {
		spec := JobSpec{
			JobID:      jobID,
			Algorithm:  algorithm,
			Peer:       p,
			DataPeers:  dataPeers,
			Expression: expression,
			Sigma:      sigma,
			Dict:       dictText.String(),
			Split:      roundRobinSplit(db, p, len(c.Workers)),
			Options:    opts,
		}
		wg.Add(1)
		go func(p int, spec JobSpec) {
			defer wg.Done()
			err := postJSON(ctx, client, strings.TrimRight(c.Workers[p], "/")+"/run", spec, &results[p])
			if err != nil {
				failOnce.Do(func() {
					failErr = fmt.Errorf("cluster: worker %d (%s): %w", p, c.Workers[p], err)
					cancel()
				})
			}
		}(p, spec)
	}
	wg.Wait()
	if failErr != nil {
		return nil, failErr
	}

	res := &Result{PerWorker: results}
	res.Metrics.RemoteShuffle = true
	for _, r := range results {
		res.Patterns = append(res.Patterns, r.Patterns...)
		res.WireBytesIn += r.WireBytesIn
		m := r.Metrics
		if m.MapTime > res.Metrics.MapTime {
			res.Metrics.MapTime = m.MapTime
		}
		if m.ShuffleTime > res.Metrics.ShuffleTime {
			res.Metrics.ShuffleTime = m.ShuffleTime
		}
		if m.ReduceTime > res.Metrics.ReduceTime {
			res.Metrics.ReduceTime = m.ReduceTime
		}
		res.Metrics.MapOutputRecords += m.MapOutputRecords
		res.Metrics.ShuffleRecords += m.ShuffleRecords
		res.Metrics.ShuffleBytes += m.ShuffleBytes
		res.Metrics.Partitions += m.Partitions // pivot keys are disjoint across peers
		if m.MaxPartitionRecords > res.Metrics.MaxPartitionRecords {
			res.Metrics.MaxPartitionRecords = m.MaxPartitionRecords
		}
		res.Metrics.SpilledBytes += m.SpilledBytes
		res.Metrics.SpillCount += m.SpillCount
		res.Metrics.StreamedBatches += m.StreamedBatches
	}
	miner.SortPatterns(res.Patterns)
	return res, nil
}

// roundRobinSplit returns peer p's share of the database.
func roundRobinSplit(db *seqdb.Database, p, n int) [][]dict.ItemID {
	var split [][]dict.ItemID
	for i := p; i < len(db.Sequences); i += n {
		split = append(split, db.Sequences[i])
	}
	return split
}

func newJobID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("cluster: generating job id: %w", err)
	}
	return "job-" + hex.EncodeToString(b[:]), nil
}

func getJSON(ctx context.Context, client *http.Client, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return doJSON(client, req, out)
}

func postJSON(ctx context.Context, client *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return doJSON(client, req, out)
}

func doJSON(client *http.Client, req *http.Request, out any) error {
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		var je jsonError
		if json.Unmarshal(msg, &je) == nil && je.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, je.Error)
		}
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
