package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"seqmine/internal/cluster"
	"seqmine/internal/transport"
)

// startWorkerWithStore brings up one worker and pushes the paper database's
// bundle into its store, returning the worker fixtures and the dataset id.
func startWorkerWithStore(t *testing.T) (*cluster.Worker, *httptest.Server, string) {
	t.Helper()
	node, err := transport.NewNode("127.0.0.1:0", transport.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	w := cluster.NewWorker(node)
	srv := httptest.NewServer(w.Handler())
	t.Cleanup(srv.Close)

	data, id, err := cluster.EncodeBundle(paperDatabase(t))
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, srv.URL+"/datasets/"+id, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT bundle: status %d", resp.StatusCode)
	}
	return w, srv, id
}

// postRun POSTs a spec to the worker and returns the status code and error
// body.
func postRun(t *testing.T, srv *httptest.Server, spec cluster.JobSpec) (int, string) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var je struct {
		Error string `json:"error"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&je)
	return resp.StatusCode, je.Error
}

// TestWorkerRejectsMalformedSpecs: permanent errors must come back as HTTP
// 400 so the coordinator does not burn its retry budget on them, and a
// missing dataset as 404 so it re-pushes instead.
func TestWorkerRejectsMalformedSpecs(t *testing.T) {
	w, srv, id := startWorkerWithStore(t)
	addr := w.Node().Addr()
	valid := cluster.JobSpec{
		JobID: "job-w", Algorithm: cluster.AlgoDSeq, Peer: 0, DataPeers: []string{addr},
		Expression: "(.)", Sigma: 1, DatasetID: id, NumPartitions: 1, Partitions: []int{0},
	}

	cases := []struct {
		name   string
		mutate func(*cluster.JobSpec)
		status int
	}{
		{"empty job id", func(s *cluster.JobSpec) { s.JobID = "" }, http.StatusBadRequest},
		{"negative epoch", func(s *cluster.JobSpec) { s.Epoch = -1 }, http.StatusBadRequest},
		{"peer out of range", func(s *cluster.JobSpec) { s.Peer = 5 }, http.StatusBadRequest},
		{"non-positive sigma", func(s *cluster.JobSpec) { s.Sigma = 0 }, http.StatusBadRequest},
		{"empty dataset id", func(s *cluster.JobSpec) { s.DatasetID = "" }, http.StatusBadRequest},
		{"zero partition count", func(s *cluster.JobSpec) { s.NumPartitions = 0 }, http.StatusBadRequest},
		{"partition out of range", func(s *cluster.JobSpec) { s.Partitions = []int{3} }, http.StatusBadRequest},
		{"bad expression", func(s *cluster.JobSpec) { s.Expression = "((" }, http.StatusBadRequest},
		{"bad algorithm", func(s *cluster.JobSpec) { s.Algorithm = "naive" }, http.StatusBadRequest},
		{"unknown dataset", func(s *cluster.JobSpec) { s.DatasetID = "sha256-feed" }, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := valid
			tc.mutate(&spec)
			status, msg := postRun(t, srv, spec)
			if status != tc.status {
				t.Errorf("status = %d (%s), want %d", status, msg, tc.status)
			}
			if msg == "" {
				t.Error("error body is empty")
			}
		})
	}

	// The valid spec itself runs (single-peer gang).
	status, msg := postRun(t, srv, valid)
	if status != http.StatusOK {
		t.Fatalf("valid spec: status %d (%s)", status, msg)
	}
}

// TestWorkerDatasetEndpoints covers the store's HTTP surface: presence
// probes, listing, hash verification on upload.
func TestWorkerDatasetEndpoints(t *testing.T) {
	_, srv, id := startWorkerWithStore(t)

	resp, err := http.Get(srv.URL + "/datasets/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("presence probe: status %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/datasets/sha256-unknown")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id probe: status %d", resp.StatusCode)
	}

	var infos []cluster.StoreInfo
	resp, err = http.Get(srv.URL + "/datasets")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].ID != id || infos[0].Sequences == 0 {
		t.Errorf("GET /datasets = %+v", infos)
	}

	req, err := http.NewRequest(http.MethodPut, srv.URL+"/datasets/sha256-bogus", strings.NewReader("garbage"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mismatched bundle upload: status %d, want 400", resp.StatusCode)
	}

	var health cluster.HealthResponse
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Datasets != 1 || health.DataAddr == "" {
		t.Errorf("healthz = %+v", health)
	}
}

// TestWorkerRunUnknownDatasetTyped: the library-level error is ErrUnknownDataset.
func TestWorkerRunUnknownDatasetTyped(t *testing.T) {
	w, _, _ := startWorkerWithStore(t)
	_, err := w.Run(context.Background(), cluster.JobSpec{
		JobID: "job-x", Algorithm: cluster.AlgoDSeq, Peer: 0, DataPeers: []string{w.Node().Addr()},
		Expression: "(.)", Sigma: 1, DatasetID: "sha256-missing", NumPartitions: 1, Partitions: []int{0},
	})
	if !errors.Is(err, cluster.ErrUnknownDataset) {
		t.Fatalf("err = %v, want ErrUnknownDataset", err)
	}
}
