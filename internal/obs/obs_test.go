package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestStartSpanNoRecorderIsNoop(t *testing.T) {
	ctx, span := StartSpan(context.Background(), "noop")
	if span != nil {
		t.Fatalf("StartSpan without recorder returned non-nil span")
	}
	if tr, _ := SpanContextFrom(ctx); tr != "" {
		t.Fatalf("no-recorder StartSpan leaked a trace id %q", tr)
	}
	// All nil-span methods must be safe.
	span.SetAttr("k", "v")
	span.SetAttrInt("n", 1)
	span.End()
	if span.TraceID() != "" || span.ID() != "" {
		t.Fatalf("nil span ids not empty")
	}
}

func TestSpanNesting(t *testing.T) {
	rec := NewRecorder("test", 0)
	ctx := WithRecorder(context.Background(), rec)
	ctx, root := StartSpan(ctx, "root", String("a", "b"))
	_, child := StartSpan(ctx, "child")
	child.SetAttrInt("n", 42)
	child.End()
	root.End()

	if root.TraceID() == "" || root.TraceID() != child.TraceID() {
		t.Fatalf("trace ids: root=%q child=%q", root.TraceID(), child.TraceID())
	}
	spans := rec.TraceSpans(root.TraceID())
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["child"].Parent != root.ID() {
		t.Fatalf("child parent = %q, want root id %q", byName["child"].Parent, root.ID())
	}
	if byName["root"].Parent != "" {
		t.Fatalf("root has parent %q", byName["root"].Parent)
	}
	if byName["root"].Proc != "test" {
		t.Fatalf("proc = %q, want test", byName["root"].Proc)
	}
	if got := byName["child"].Attrs; len(got) != 1 || got[0].Key != "n" || got[0].Value != "42" {
		t.Fatalf("child attrs = %v", got)
	}
}

func TestSpanEndTwiceRecordsOnce(t *testing.T) {
	rec := NewRecorder("test", 0)
	ctx := WithRecorder(context.Background(), rec)
	_, span := StartSpan(ctx, "once")
	span.End()
	span.End()
	if n := rec.Len(); n != 1 {
		t.Fatalf("recorder has %d spans, want 1", n)
	}
}

func TestObserveRetroactiveSpan(t *testing.T) {
	rec := NewRecorder("test", 0)
	ctx := WithRecorder(context.Background(), rec)
	ctx, root := StartSpan(ctx, "root")
	start := time.Now().Add(-50 * time.Millisecond)
	Observe(ctx, "retro", start, 50*time.Millisecond, Int("bytes", 7))
	root.End()
	spans := rec.TraceSpans(root.TraceID())
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	var retro *SpanRecord
	for i := range spans {
		if spans[i].Name == "retro" {
			retro = &spans[i]
		}
	}
	if retro == nil || retro.Parent != root.ID() || retro.DurationNS != int64(50*time.Millisecond) {
		t.Fatalf("retro span wrong: %+v", retro)
	}
}

func TestRecorderRingEviction(t *testing.T) {
	rec := NewRecorder("test", 4)
	ctx := WithRecorder(context.Background(), rec)
	ctx, root := StartSpan(ctx, "root")
	for i := 0; i < 10; i++ {
		_, s := StartSpan(ctx, "s")
		s.End()
	}
	root.End()
	if n := rec.Len(); n != 4 {
		t.Fatalf("ring holds %d, want 4", n)
	}
	// Records evicted from the ring must also leave the dedupe index, so the
	// index cannot grow without bound.
	if len(rec.seen[root.TraceID()]) != 4 {
		t.Fatalf("dedupe index holds %d ids, want 4", len(rec.seen[root.TraceID()]))
	}
}

func TestRecorderImportDedupes(t *testing.T) {
	rec := NewRecorder("coord", 0)
	remote := []SpanRecord{
		{Trace: "aaaaaaaaaaaaaaaa", Span: "bbbbbbbbbbbbbbbb", Name: "worker.run", Proc: "worker-1", StartUnixNS: 10, DurationNS: 5},
		{Trace: "aaaaaaaaaaaaaaaa", Span: "cccccccccccccccc", Name: "mapreduce.map", Proc: "worker-1", StartUnixNS: 11, DurationNS: 2},
	}
	rec.Import(remote)
	rec.Import(remote) // retried attempt ships the same spans again
	spans := rec.TraceSpans("aaaaaaaaaaaaaaaa")
	if len(spans) != 2 {
		t.Fatalf("got %d spans after duplicate import, want 2", len(spans))
	}
	if spans[0].Proc != "worker-1" {
		t.Fatalf("import overwrote proc: %q", spans[0].Proc)
	}
}

func TestTraceHeaderRoundTrip(t *testing.T) {
	rec := NewRecorder("a", 0)
	ctx := WithRecorder(context.Background(), rec)
	ctx, span := StartSpan(ctx, "root")
	h := http.Header{}
	InjectHeader(ctx, h)
	v := h.Get(TraceHeader)
	if v == "" {
		t.Fatalf("InjectHeader wrote nothing")
	}
	tr, parent, ok := ParseTraceHeader(v)
	if !ok || tr != span.TraceID() || parent != span.ID() {
		t.Fatalf("ParseTraceHeader(%q) = %q, %q, %v", v, tr, parent, ok)
	}

	// Receiving side: ExtractHeader joins the remote trace.
	rec2 := NewRecorder("b", 0)
	ctx2 := WithRecorder(context.Background(), rec2)
	ctx2 = ExtractHeader(ctx2, h)
	_, child := StartSpan(ctx2, "remote-child")
	child.End()
	if child.TraceID() != span.TraceID() {
		t.Fatalf("remote child trace %q, want %q", child.TraceID(), span.TraceID())
	}
	got := rec2.TraceSpans(span.TraceID())
	if len(got) != 1 || got[0].Parent != span.ID() {
		t.Fatalf("remote child parent = %+v, want parent %q", got, span.ID())
	}
	span.End()
}

func TestParseTraceHeaderRejectsGarbage(t *testing.T) {
	for _, v := range []string{"", "zzzz", "abc-def", "0123456789abcdef-xyz", strings.Repeat("0", 16) + "-" + strings.Repeat("g", 16)} {
		if _, _, ok := ParseTraceHeader(v); ok && v != "" {
			t.Fatalf("ParseTraceHeader(%q) accepted garbage", v)
		}
	}
	if tr, parent, ok := ParseTraceHeader("0123456789abcdef"); !ok || tr != "0123456789abcdef" || parent != "" {
		t.Fatalf("parent-less header rejected: %q %q %v", tr, parent, ok)
	}
}

func TestTraceBytesRoundTrip(t *testing.T) {
	rec := NewRecorder("a", 0)
	ctx := WithRecorder(context.Background(), rec)
	ctx, span := StartSpan(ctx, "root")
	defer span.End()
	b := TraceBytes(ctx)
	if len(b) != 16 {
		t.Fatalf("TraceBytes = %d bytes, want 16", len(b))
	}
	tr, parent, ok := ParseTraceBytes(b)
	if !ok || tr != span.TraceID() || parent != span.ID() {
		t.Fatalf("ParseTraceBytes = %q %q %v, want %q %q", tr, parent, ok, span.TraceID(), span.ID())
	}
	if TraceBytes(context.Background()) != nil {
		t.Fatalf("TraceBytes without trace should be nil")
	}
	if _, _, ok := ParseTraceBytes(make([]byte, 16)); ok {
		t.Fatalf("all-zero trace bytes accepted")
	}
	if _, _, ok := ParseTraceBytes([]byte{1, 2, 3}); ok {
		t.Fatalf("short trace bytes accepted")
	}
}

func TestRegistryCounterGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("seqmine_test_total", "help text")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotonic
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	if reg.Counter("seqmine_test_total", "help text") != c {
		t.Fatalf("get-or-create returned a different counter")
	}
	g := reg.Gauge("seqmine_gauge", "g", "shard", "1")
	g.Set(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Fatalf("gauge = %d, want 3", g.Value())
	}
	if reg.Gauge("seqmine_gauge", "g", "shard", "2") == g {
		t.Fatalf("different label set returned same gauge")
	}
}

func TestRegistryNilAndInvalid(t *testing.T) {
	var reg *Registry
	reg.Counter("x", "").Inc()
	reg.Gauge("x", "").Set(1)
	reg.Histogram("x", "", nil).Observe(1)
	live := NewRegistry()
	if live.Counter("0bad", "") != nil {
		t.Fatalf("invalid metric name accepted")
	}
	if live.Counter("ok_name", "", "__reserved", "v") != nil {
		t.Fatalf("reserved label name accepted")
	}
	if live.Counter("odd_labels", "", "k") != nil {
		t.Fatalf("odd label list accepted")
	}
	live.Counter("clash", "")
	if live.Gauge("clash", "") != nil {
		t.Fatalf("type conflict returned an instrument")
	}
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("seqmine_lat_seconds", "latency", []float64{0.1, 1, 10}, "stage", "mine")
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 55.55 {
		t.Fatalf("sum = %v, want 55.55", h.Sum())
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP seqmine_lat_seconds latency",
		"# TYPE seqmine_lat_seconds histogram",
		`seqmine_lat_seconds_bucket{stage="mine",le="0.1"} 1`,
		`seqmine_lat_seconds_bucket{stage="mine",le="1"} 2`,
		`seqmine_lat_seconds_bucket{stage="mine",le="10"} 3`,
		`seqmine_lat_seconds_bucket{stage="mine",le="+Inf"} 4`,
		`seqmine_lat_seconds_sum{stage="mine"} 55.55`,
		`seqmine_lat_seconds_count{stage="mine"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// The renderer's own output must satisfy the validator.
	stats, err := ValidateExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("ValidateExposition rejected our own output: %v\n%s", err, out)
	}
	if stats.SeriesByName["seqmine_lat_seconds_bucket"] != 4 {
		t.Fatalf("validator counted %d bucket samples", stats.SeriesByName["seqmine_lat_seconds_bucket"])
	}
}

func TestExpositionEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("seqmine_esc_total", "help with \\ and\nnewline", "path", `a"b\c`+"\n").Inc()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if _, err := ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("escaped exposition rejected: %v\n%s", err, buf.String())
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"bad metric name":     "0bad 1\n",
		"bad value":           "ok notafloat\n",
		"unclosed labels":     "ok{a=\"b\" 1\n",
		"unquoted label":      "ok{a=b} 1\n",
		"bad escape":          "ok{a=\"\\q\"} 1\n",
		"bad type":            "# TYPE ok weird\n",
		"dup type":            "# TYPE ok counter\n# TYPE ok counter\n",
		"type after samples":  "ok 1\n# TYPE ok counter\n",
		"bare histogram name": "# TYPE h histogram\nh 1\n",
		"bucket without le":   "# TYPE h histogram\nh_bucket 1\n",
		"histogram no inf":    "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"bad timestamp":       "ok 1 notatime\n",
	}
	for name, in := range cases {
		if _, err := ValidateExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
	good := "# random comment\n# HELP ok fine\n# TYPE ok counter\nok{a=\"b\"} 1 123456\n\nuntyped_metric 3.5\n"
	if _, err := ValidateExposition(strings.NewReader(good)); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
}

func TestChromeTraceExport(t *testing.T) {
	base := time.Now().UnixNano()
	spans := []SpanRecord{
		{Trace: "t", Span: "1", Name: "root", Proc: "coordinator", StartUnixNS: base, DurationNS: int64(10 * time.Millisecond)},
		{Trace: "t", Span: "2", Parent: "1", Name: "overlap-a", Proc: "worker-0", StartUnixNS: base + 1e6, DurationNS: int64(5 * time.Millisecond)},
		{Trace: "t", Span: "3", Parent: "1", Name: "overlap-b", Proc: "worker-0", StartUnixNS: base + 2e6, DurationNS: int64(5 * time.Millisecond),
			Attrs: []Attr{{Key: "peer", Value: "0"}}},
	}
	out, err := ChromeTrace(spans)
	if err != nil {
		t.Fatalf("ChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("export is not JSON: %v", err)
	}
	var meta, complete int
	tids := map[string]float64{}
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			meta++
		case "X":
			complete++
			if name, ok := ev["name"].(string); ok && strings.HasPrefix(name, "overlap") {
				tids[name] = ev["tid"].(float64)
			}
		}
	}
	if meta != 2 {
		t.Fatalf("got %d process_name events, want 2", meta)
	}
	if complete != 3 {
		t.Fatalf("got %d complete events, want 3", complete)
	}
	// The two overlapping worker spans must land on different lanes.
	if tids["overlap-a"] == tids["overlap-b"] {
		t.Fatalf("overlapping spans share tid %v", tids["overlap-a"])
	}
}

func TestLoggerLevelsAndFormat(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Debug("hidden")
	l.Info("visible", String("worker", "http://w:1"), Int("misses", 3), String("state", "now dead"))
	l.Warn("also visible")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("debug line leaked below level: %s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "level=info") || !strings.Contains(lines[0], "msg=visible") ||
		!strings.Contains(lines[0], "worker=http://w:1") || !strings.Contains(lines[0], "misses=3") ||
		!strings.Contains(lines[0], `state="now dead"`) {
		t.Fatalf("bad line format: %s", lines[0])
	}
	l.SetLevel(LevelOff)
	l.Error("dropped")
	if strings.Contains(buf.String(), "dropped") {
		t.Fatalf("LevelOff still logs")
	}

	var nilLogger *Logger
	nilLogger.Info("safe")
	nilLogger.SetLevel(LevelDebug)
	if nilLogger.Enabled(LevelError) {
		t.Fatalf("nil logger claims enabled")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "off": LevelOff, " silent ": LevelOff,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Errorf("ParseLevel accepted garbage")
	}
}

func TestDefaultLogger(t *testing.T) {
	old := DefaultLogger()
	defer SetDefaultLogger(old)
	var buf bytes.Buffer
	SetDefaultLogger(NewLogger(&buf, LevelInfo))
	DefaultLogger().Info("hello")
	if !strings.Contains(buf.String(), "msg=hello") {
		t.Fatalf("default logger did not write: %q", buf.String())
	}
}

func TestNewIDUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 10000; i++ {
		id := newID()
		if len(id) != 16 || !validID(id) {
			t.Fatalf("bad id %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}
