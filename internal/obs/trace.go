// Package obs is the zero-dependency observability layer: lightweight
// distributed tracing (spans with parent links, recorded into a process-local
// ring buffer and exportable as Chrome trace_event JSON), a typed metrics
// registry with Prometheus text exposition, and a structured key=value
// logger.
//
// Everything is opt-in and nil-safe: a nil *Recorder, *Registry, *Logger, or
// *Span no-ops, so library code can call into obs unconditionally without
// paying more than a context lookup when observability is not wired up.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"strconv"
	"sync"
	"time"
)

// TraceID identifies one end-to-end operation (e.g. one mine query) across
// processes. It is 16 lowercase hex characters; the zero value means "no
// trace".
type TraceID string

// SpanID identifies one span within a trace. Same encoding as TraceID.
type SpanID string

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// String builds a string-valued Attr.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer-valued Attr.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: strconv.FormatInt(v, 10)} }

// SpanRecord is the completed, serializable form of a span. Workers ship
// their records back to the coordinator inside JobResult, so the JSON shape
// is part of the control-plane contract.
type SpanRecord struct {
	Trace       TraceID `json:"trace"`
	Span        SpanID  `json:"span"`
	Parent      SpanID  `json:"parent,omitempty"`
	Name        string  `json:"name"`
	Proc        string  `json:"proc,omitempty"`
	StartUnixNS int64   `json:"start_unix_ns"`
	DurationNS  int64   `json:"duration_ns"`
	Attrs       []Attr  `json:"attrs,omitempty"`
}

// Recorder is a bounded, process-local span sink. When full it overwrites the
// oldest records (a ring), so a long-lived daemon keeps the most recent
// traces without unbounded growth.
type Recorder struct {
	proc string
	cap  int

	mu   sync.Mutex
	ring []SpanRecord
	next int // ring insertion cursor once len(ring) == cap
	full bool
	seen map[TraceID]map[SpanID]struct{} // dedupe for Import
}

// DefaultRecorderCapacity bounds a Recorder when NewRecorder is given a
// non-positive capacity.
const DefaultRecorderCapacity = 16384

// NewRecorder builds a Recorder whose records carry proc as their process
// label (used for Perfetto process lanes). capacity <= 0 selects
// DefaultRecorderCapacity.
func NewRecorder(proc string, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	return &Recorder{proc: proc, cap: capacity, seen: make(map[TraceID]map[SpanID]struct{})}
}

// Proc returns the recorder's process label.
func (r *Recorder) Proc() string {
	if r == nil {
		return ""
	}
	return r.proc
}

// Record appends one completed span record. The record's Proc defaults to
// the recorder's process label. Duplicate (trace, span) ids are dropped, so
// re-imported remote spans (e.g. from a retried attempt) appear once.
func (r *Recorder) Record(rec SpanRecord) {
	if r == nil || rec.Trace == "" || rec.Span == "" {
		return
	}
	if rec.Proc == "" {
		rec.Proc = r.proc
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	spans := r.seen[rec.Trace]
	if spans == nil {
		spans = make(map[SpanID]struct{})
		r.seen[rec.Trace] = spans
	}
	if _, dup := spans[rec.Span]; dup {
		return
	}
	spans[rec.Span] = struct{}{}
	if len(r.ring) < r.cap {
		r.ring = append(r.ring, rec)
		return
	}
	// Evict the record we overwrite from the dedupe index.
	old := r.ring[r.next]
	if s := r.seen[old.Trace]; s != nil {
		delete(s, old.Span)
		if len(s) == 0 {
			delete(r.seen, old.Trace)
		}
	}
	r.ring[r.next] = rec
	r.next = (r.next + 1) % r.cap
	r.full = true
}

// Import records a batch of remote span records, preserving their Proc
// labels. Records without ids are skipped.
func (r *Recorder) Import(recs []SpanRecord) {
	if r == nil {
		return
	}
	for _, rec := range recs {
		r.Record(rec)
	}
}

// TraceSpans returns all retained records for one trace, ordered by start
// time.
func (r *Recorder) TraceSpans(id TraceID) []SpanRecord {
	if r == nil || id == "" {
		return nil
	}
	r.mu.Lock()
	out := make([]SpanRecord, 0, 16)
	for _, rec := range r.ring {
		if rec.Trace == id {
			out = append(out, rec)
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartUnixNS != out[j].StartUnixNS {
			return out[i].StartUnixNS < out[j].StartUnixNS
		}
		return out[i].Span < out[j].Span
	})
	return out
}

// Len reports the number of retained records.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

// Span is one in-flight timed operation. A nil *Span (returned by StartSpan
// when no Recorder is attached to the context) is valid and no-ops.
type Span struct {
	rec    *Recorder
	trace  TraceID
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	attrs  []Attr

	mu    sync.Mutex
	ended bool
}

type ctxKey int

const (
	recorderKey ctxKey = iota
	spanCtxKey
)

type spanContext struct {
	trace TraceID
	span  SpanID
}

// WithRecorder attaches a span recorder to the context. StartSpan is a no-op
// until a recorder is attached.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, recorderKey, r)
}

// RecorderFrom returns the recorder attached to ctx, or nil.
func RecorderFrom(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(recorderKey).(*Recorder)
	return r
}

// ContextWithRemote marks ctx as part of a trace started elsewhere: the next
// StartSpan joins trace with its span parented under parent. Used on the
// receiving side of an X-Seqmine-Trace header or a shuffle-handshake trace
// field.
func ContextWithRemote(ctx context.Context, trace TraceID, parent SpanID) context.Context {
	if trace == "" {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey, spanContext{trace: trace, span: parent})
}

// SpanContextFrom returns the current trace and span id carried by ctx
// (either from an enclosing StartSpan or ContextWithRemote). Both are empty
// when ctx carries no trace.
func SpanContextFrom(ctx context.Context) (TraceID, SpanID) {
	if ctx == nil {
		return "", ""
	}
	sc, _ := ctx.Value(spanCtxKey).(spanContext)
	return sc.trace, sc.span
}

// StartSpan begins a span named name. If ctx carries no Recorder it returns
// (ctx, nil) — the fast path — and the nil span's methods no-op. Otherwise
// the span joins the context's current trace (starting a fresh trace if
// there is none) and the returned context carries the new span as parent for
// nested StartSpan calls.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	rec := RecorderFrom(ctx)
	if rec == nil {
		return ctx, nil
	}
	sc, _ := ctx.Value(spanCtxKey).(spanContext)
	if sc.trace == "" {
		sc.trace = TraceID(newID())
	}
	s := &Span{
		rec:    rec,
		trace:  sc.trace,
		id:     SpanID(newID()),
		parent: sc.span,
		name:   name,
		start:  time.Now(),
		attrs:  attrs,
	}
	return context.WithValue(ctx, spanCtxKey, spanContext{trace: s.trace, span: s.id}), s
}

// Observe records an already-completed operation as a span under ctx's
// current trace/parent. It is the retroactive form of StartSpan+End, useful
// when the duration is known from existing metrics.
func Observe(ctx context.Context, name string, start time.Time, d time.Duration, attrs ...Attr) {
	rec := RecorderFrom(ctx)
	if rec == nil {
		return
	}
	trace, parent := SpanContextFrom(ctx)
	if trace == "" {
		trace = TraceID(newID())
	}
	if d < 0 {
		d = 0
	}
	rec.Record(SpanRecord{
		Trace:       trace,
		Span:        SpanID(newID()),
		Parent:      parent,
		Name:        name,
		StartUnixNS: start.UnixNano(),
		DurationNS:  int64(d),
		Attrs:       attrs,
	})
}

// TraceID returns the span's trace id ("" for a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return ""
	}
	return s.trace
}

// ID returns the span's id ("" for a nil span).
func (s *Span) ID() SpanID {
	if s == nil {
		return ""
	}
	return s.id
}

// SetAttr adds or replaces an annotation. Safe on a nil span.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == k {
			s.attrs[i].Value = v
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: k, Value: v})
}

// SetAttrInt adds or replaces an integer annotation. Safe on a nil span.
func (s *Span) SetAttrInt(k string, v int64) { s.SetAttr(k, strconv.FormatInt(v, 10)) }

// End completes the span and hands it to the recorder. Ending twice records
// once. Safe on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	s.rec.Record(SpanRecord{
		Trace:       s.trace,
		Span:        s.id,
		Parent:      s.parent,
		Name:        s.name,
		StartUnixNS: s.start.UnixNano(),
		DurationNS:  int64(time.Since(s.start)),
		Attrs:       attrs,
	})
}

// idSource hands out unique 64-bit ids. Seeded once from crypto/rand so ids
// are unique across processes; subsequent ids mix a counter through
// splitmix64, which is cheap and collision-free within a process.
var idSource struct {
	mu   sync.Mutex
	next uint64
}

func init() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		idSource.next = binary.LittleEndian.Uint64(b[:])
	} else {
		idSource.next = uint64(time.Now().UnixNano())
	}
}

func newID() string {
	idSource.mu.Lock()
	idSource.next++
	x := idSource.next
	idSource.mu.Unlock()
	// splitmix64 finalizer: a counter in, well-distributed bits out.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1 // the zero id is reserved for "absent"
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], x)
	return hex.EncodeToString(b[:])
}

// NewSpanID mints a fresh span id for callers that assemble SpanRecords by
// hand (e.g. the transport's receive side).
func NewSpanID() SpanID { return SpanID(newID()) }

// NewTraceID mints a fresh trace id.
func NewTraceID() TraceID { return TraceID(newID()) }
