package obs

import (
	"context"
	"encoding/hex"
	"net/http"
	"strings"
)

// TraceHeader is the control-plane propagation header. Its value is
// "<trace id>-<parent span id>", both 16 lowercase hex characters.
const TraceHeader = "X-Seqmine-Trace"

// FormatTraceHeader renders the header value for a trace/parent pair, or ""
// when there is no trace.
func FormatTraceHeader(trace TraceID, parent SpanID) string {
	if trace == "" {
		return ""
	}
	if parent == "" {
		return string(trace)
	}
	return string(trace) + "-" + string(parent)
}

// ParseTraceHeader parses a header value produced by FormatTraceHeader.
func ParseTraceHeader(v string) (TraceID, SpanID, bool) {
	v = strings.TrimSpace(v)
	if v == "" {
		return "", "", false
	}
	trace, parent, _ := strings.Cut(v, "-")
	if !validID(trace) || (parent != "" && !validID(parent)) {
		return "", "", false
	}
	return TraceID(trace), SpanID(parent), true
}

func validID(s string) bool {
	if len(s) != 16 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// InjectHeader stamps ctx's current trace context onto an outbound request
// header. No-op when ctx carries no trace.
func InjectHeader(ctx context.Context, h http.Header) {
	trace, parent := SpanContextFrom(ctx)
	if v := FormatTraceHeader(trace, parent); v != "" {
		h.Set(TraceHeader, v)
	}
}

// ExtractHeader returns a context joined to the trace named by an inbound
// request's TraceHeader, if present and well-formed.
func ExtractHeader(ctx context.Context, h http.Header) context.Context {
	trace, parent, ok := ParseTraceHeader(h.Get(TraceHeader))
	if !ok {
		return ctx
	}
	return ContextWithRemote(ctx, trace, parent)
}

// TraceBytes renders ctx's trace context as the 16-byte wire form carried in
// the shuffle handshake (8 bytes trace id, 8 bytes parent span id), or nil
// when ctx carries no trace.
func TraceBytes(ctx context.Context) []byte {
	trace, parent := SpanContextFrom(ctx)
	if trace == "" {
		return nil
	}
	out := make([]byte, 0, 16)
	t, err := hex.DecodeString(string(trace))
	if err != nil || len(t) != 8 {
		return nil
	}
	out = append(out, t...)
	if p, err := hex.DecodeString(string(parent)); err == nil && len(p) == 8 {
		out = append(out, p...)
	} else {
		out = append(out, make([]byte, 8)...)
	}
	return out
}

// ParseTraceBytes decodes the handshake wire form produced by TraceBytes.
func ParseTraceBytes(b []byte) (TraceID, SpanID, bool) {
	if len(b) != 16 {
		return "", "", false
	}
	trace := TraceID(hex.EncodeToString(b[:8]))
	var parent SpanID
	if !allZero(b[8:]) {
		parent = SpanID(hex.EncodeToString(b[8:]))
	}
	if allZero(b[:8]) {
		return "", "", false
	}
	return trace, parent, true
}

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}
