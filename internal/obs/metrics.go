package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a typed metrics registry. Instruments are get-or-create: the
// same (name, label set) always returns the same instrument, so callers can
// resolve instruments at construction time or look them up on the fly.
//
// A nil *Registry returns nil instruments whose methods no-op, so library
// code can be instrumented unconditionally.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // family registration order, for stable exposition
}

type family struct {
	name    string
	help    string
	typ     string // "counter" | "gauge" | "histogram"
	buckets []float64
	series  map[string]*series
	order   []string
}

type series struct {
	labels []Attr
	inst   any
}

// NewRegistry builds an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one. Safe on nil.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored; counters are monotonic). Safe on
// nil.
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an integer metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value. Safe on nil.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n. Safe on nil.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram over float64 samples.
type Histogram struct {
	buckets []float64 // upper bounds, sorted ascending; +Inf is implicit
	counts  []atomic.Int64
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one sample. Safe on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound admits v; sort.SearchFloat64s gives the
	// insertion point, which is exactly the cumulative bucket index.
	i := sort.SearchFloat64s(h.buckets, v)
	if i < len(h.buckets) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of samples (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of samples (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// DurationBuckets is the default bucket set for latency histograms, in
// seconds: 1ms … 60s, roughly geometric.
var DurationBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.25, 1, 2.5, 10, 60}

// ByteBuckets is the default bucket set for size histograms, in bytes:
// 4 KiB … 256 MiB, geometric by 8x.
var ByteBuckets = []float64{4096, 32768, 262144, 2097152, 16777216, 134217728, 268435456}

// Counter returns (creating if needed) the counter name with the given
// label pairs ("k1", "v1", "k2", "v2", ...).
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	s := r.instrument(name, help, "counter", nil, labels)
	if s == nil {
		return nil
	}
	return s.inst.(*Counter)
}

// Gauge returns (creating if needed) the gauge name with the given label
// pairs.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	s := r.instrument(name, help, "gauge", nil, labels)
	if s == nil {
		return nil
	}
	return s.inst.(*Gauge)
}

// Histogram returns (creating if needed) the histogram name with fixed
// export buckets and the given label pairs. All series of one histogram
// family share the bucket layout of the first registration.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DurationBuckets
	}
	s := r.instrument(name, help, "histogram", buckets, labels)
	if s == nil {
		return nil
	}
	return s.inst.(*Histogram)
}

func (r *Registry) instrument(name, help, typ string, buckets []float64, labels []string) *series {
	if !validMetricName(name) || len(labels)%2 != 0 {
		return nil
	}
	attrs := make([]Attr, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		if !validLabelName(labels[i]) {
			return nil
		}
		attrs = append(attrs, Attr{Key: labels[i], Value: labels[i+1]})
	}
	sort.Slice(attrs, func(i, j int) bool { return attrs[i].Key < attrs[j].Key })
	key := seriesKey(attrs)

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		bs := make([]float64, len(buckets))
		copy(bs, buckets)
		sort.Float64s(bs)
		f = &family{name: name, help: help, typ: typ, buckets: bs, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.typ != typ {
		return nil // type conflict: refuse rather than corrupt the exposition
	}
	s := f.series[key]
	if s == nil {
		s = &series{labels: attrs}
		switch typ {
		case "counter":
			s.inst = &Counter{}
		case "gauge":
			s.inst = &Gauge{}
		case "histogram":
			h := &Histogram{buckets: f.buckets}
			h.counts = make([]atomic.Int64, len(f.buckets))
			s.inst = h
		}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

func seriesKey(attrs []Attr) string {
	var b strings.Builder
	for _, a := range attrs {
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(a.Value))
		b.WriteByte(',')
	}
	return b.String()
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// SnapshotEntry is one metric series in JSON form, for endpoints that keep a
// JSON default alongside the Prometheus exposition.
type SnapshotEntry struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the counter/gauge value; for histograms it is the sample count.
	Value int64 `json:"value"`
	// Sum is the histogram sample sum (absent otherwise).
	Sum float64 `json:"sum,omitempty"`
}

// Snapshot returns every series' current value under the same lock the
// Prometheus exposition takes, so one read is internally consistent.
func (r *Registry) Snapshot() []SnapshotEntry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []SnapshotEntry
	for _, name := range r.order {
		f := r.families[name]
		for _, key := range f.order {
			s := f.series[key]
			e := SnapshotEntry{Name: name, Type: f.typ}
			if len(s.labels) > 0 {
				e.Labels = make(map[string]string, len(s.labels))
				for _, a := range s.labels {
					e.Labels[a.Key] = a.Value
				}
			}
			switch inst := s.inst.(type) {
			case *Counter:
				e.Value = inst.Value()
			case *Gauge:
				e.Value = inst.Value()
			case *Histogram:
				e.Value = inst.Count()
				e.Sum = inst.Sum()
			}
			out = append(out, e)
		}
	}
	return out
}

// WritePrometheus renders the registry in Prometheus text exposition format
// (version 0.0.4). Families appear in registration order, series in
// creation order; histogram series expand to _bucket/_sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, name := range r.order {
		f := r.families[name]
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, key := range f.order {
			s := f.series[key]
			switch inst := s.inst.(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, renderLabels(s.labels, "", ""), inst.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, renderLabels(s.labels, "", ""), inst.Value())
			case *Histogram:
				var cum int64
				for i, ub := range inst.buckets {
					cum += inst.counts[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
						renderLabels(s.labels, "le", formatFloat(ub)), cum)
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
					renderLabels(s.labels, "le", "+Inf"), inst.Count())
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name,
					renderLabels(s.labels, "", ""), formatFloat(inst.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name,
					renderLabels(s.labels, "", ""), inst.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func renderLabels(attrs []Attr, extraKey, extraVal string) string {
	if len(attrs) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, a := range attrs {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(a.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(a.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
