package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity. Lines below a logger's level are dropped.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	// LevelOff silences a logger entirely.
	LevelOff
)

// ParseLevel maps a -log-level flag value to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off", "none", "silent":
		return LevelOff, nil
	}
	return LevelOff, fmt.Errorf("unknown log level %q (want debug|info|warn|error|off)", s)
}

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "off"
}

// Logger writes structured key=value lines:
//
//	ts=2026-08-07T12:00:00.000Z level=warn msg="worker dead" worker=http://... misses=3
//
// A nil *Logger drops everything, so call sites never need a nil check.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level atomic.Int32
}

// NewLogger builds a logger writing to w at the given level.
func NewLogger(w io.Writer, level Level) *Logger {
	l := &Logger{w: w}
	l.level.Store(int32(level))
	return l
}

// SetLevel adjusts the logger's level at runtime. Safe on nil.
func (l *Logger) SetLevel(level Level) {
	if l == nil {
		return
	}
	l.level.Store(int32(level))
}

// Enabled reports whether lines at level would be written. Safe on nil.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= Level(l.level.Load()) && level < LevelOff
}

// Debug logs at debug level. Safe on nil.
func (l *Logger) Debug(msg string, attrs ...Attr) { l.log(LevelDebug, msg, attrs) }

// Info logs at info level. Safe on nil.
func (l *Logger) Info(msg string, attrs ...Attr) { l.log(LevelInfo, msg, attrs) }

// Warn logs at warn level. Safe on nil.
func (l *Logger) Warn(msg string, attrs ...Attr) { l.log(LevelWarn, msg, attrs) }

// Error logs at error level. Safe on nil.
func (l *Logger) Error(msg string, attrs ...Attr) { l.log(LevelError, msg, attrs) }

func (l *Logger) log(level Level, msg string, attrs []Attr) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(time.Now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(quoteValue(msg))
	for _, a := range attrs {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(quoteValue(a.Value))
	}
	b.WriteByte('\n')
	l.mu.Lock()
	_, _ = io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// quoteValue quotes a value only when it needs it, keeping lines grep-able.
func quoteValue(s string) string {
	if s == "" {
		return `""`
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c == '"' || c == '=' || c == 0x7f {
			return strconv.Quote(s)
		}
	}
	return s
}

// defaultLogger is the process-wide fallback used by components that were
// not handed an explicit logger (e.g. a cluster.Coordinator built deep
// inside the executor). It starts silent; CLIs install a real logger from
// their -log-level flag via SetDefaultLogger.
var defaultLogger atomic.Pointer[Logger]

// SetDefaultLogger installs the process-wide fallback logger.
func SetDefaultLogger(l *Logger) { defaultLogger.Store(l) }

// DefaultLogger returns the process-wide fallback logger; it may be nil
// (silent), which is safe to use directly.
func DefaultLogger() *Logger { return defaultLogger.Load() }
