package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ExpositionStats summarizes a validated Prometheus text exposition.
type ExpositionStats struct {
	Samples int
	// SeriesByName counts samples per sample name (the full name including
	// _bucket/_sum/_count suffixes for histograms).
	SeriesByName map[string]int
	// MaxByName records the largest sample value observed per sample name
	// (across all label sets), so CI can assert bounds on gauges and counters
	// — e.g. that an admission queue's high-watermark never exceeded its
	// configured depth.
	MaxByName map[string]float64
}

// ValidateExposition parses r as Prometheus text exposition format (0.0.4)
// and returns an error describing the first malformed construct. It checks:
//
//   - comment lines are well-formed # HELP / # TYPE (other comments pass),
//   - TYPE names a known metric type and appears before the family's samples,
//   - sample lines parse as name{labels} value [timestamp] with valid metric
//     and label names, correctly quoted/escaped label values, and float
//     values,
//   - histogram families expose _bucket (with an le label, including
//     le="+Inf"), _sum, and _count samples and nothing else.
//
// It is a smoke validator for CI, not a full OpenMetrics parser.
func ValidateExposition(r io.Reader) (*ExpositionStats, error) {
	stats := &ExpositionStats{SeriesByName: make(map[string]int), MaxByName: make(map[string]float64)}
	types := make(map[string]string)              // family -> type
	sampled := make(map[string]bool)              // family already has samples
	histParts := make(map[string]map[string]bool) // histogram family -> suffixes seen

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line, types, sampled); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineno, err)
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		fam, suffix := familyOf(name, types)
		if t := types[fam]; t == "histogram" || t == "summary" {
			if suffix == "" {
				return nil, fmt.Errorf("line %d: sample %q of %s family %q must use _bucket/_sum/_count", lineno, name, t, fam)
			}
			if suffix == "_bucket" {
				le, ok := labels["le"]
				if t == "histogram" && !ok {
					return nil, fmt.Errorf("line %d: histogram bucket %q missing le label", lineno, name)
				}
				if histParts[fam] == nil {
					histParts[fam] = make(map[string]bool)
				}
				if le == "+Inf" {
					histParts[fam]["inf"] = true
				}
			}
			if histParts[fam] == nil {
				histParts[fam] = make(map[string]bool)
			}
			histParts[fam][suffix] = true
		}
		sampled[fam] = true
		stats.Samples++
		if stats.SeriesByName[name] == 0 || value > stats.MaxByName[name] {
			stats.MaxByName[name] = value
		}
		stats.SeriesByName[name]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for fam, t := range types {
		if t != "histogram" || !sampled[fam] {
			continue
		}
		parts := histParts[fam]
		for _, want := range []string{"_bucket", "_sum", "_count", "inf"} {
			if !parts[want] {
				label := want
				if want == "inf" {
					label = `le="+Inf" bucket`
				}
				return nil, fmt.Errorf("histogram family %q missing %s samples", fam, label)
			}
		}
	}
	return stats, nil
}

func validateComment(line string, types map[string]string, sampled map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // free-form comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validMetricName(name) {
			return fmt.Errorf("TYPE for invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %q", typ, name)
		}
		if _, dup := types[name]; dup {
			return fmt.Errorf("duplicate TYPE for %q", name)
		}
		if sampled[name] {
			return fmt.Errorf("TYPE for %q after its samples", name)
		}
		types[name] = typ
	}
	return nil
}

// familyOf maps a sample name to its declared family: histogram/summary
// samples strip a _bucket/_sum/_count suffix when the base name is declared.
func familyOf(name string, types map[string]string) (fam, suffix string) {
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, s)
		if base != name {
			if t := types[base]; t == "histogram" || t == "summary" {
				return base, s
			}
		}
	}
	return name, ""
}

func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	i := 0
	for i < len(rest) && rest[i] != '{' && rest[i] != ' ' && rest[i] != '\t' {
		i++
	}
	name = rest[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name in sample %q", line)
	}
	rest = rest[i:]
	labels = make(map[string]string)
	if strings.HasPrefix(rest, "{") {
		rest, err = parseLabels(rest[1:], labels)
		if err != nil {
			return "", nil, 0, fmt.Errorf("sample %q: %w", line, err)
		}
	}
	rest = strings.TrimLeft(rest, " \t")
	fields := strings.Fields(rest)
	if len(fields) == 0 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("sample %q: want value [timestamp], got %q", line, rest)
	}
	value, err = parsePromFloat(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("sample %q: bad value %q", line, fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("sample %q: bad timestamp %q", line, fields[1])
		}
	}
	return name, labels, value, nil
}

func parseLabels(s string, out map[string]string) (rest string, err error) {
	for {
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, "}") {
			return s[1:], nil
		}
		i := 0
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i == len(s) {
			return "", fmt.Errorf("unterminated label list")
		}
		lname := strings.TrimSpace(s[:i])
		if !validLabelName(lname) {
			return "", fmt.Errorf("invalid label name %q", lname)
		}
		s = s[i+1:]
		if !strings.HasPrefix(s, `"`) {
			return "", fmt.Errorf("label %s: value not quoted", lname)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if s == "" {
				return "", fmt.Errorf("label %s: unterminated value", lname)
			}
			c := s[0]
			if c == '"' {
				s = s[1:]
				break
			}
			if c == '\\' {
				if len(s) < 2 {
					return "", fmt.Errorf("label %s: dangling escape", lname)
				}
				switch s[1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return "", fmt.Errorf("label %s: bad escape \\%c", lname, s[1])
				}
				s = s[2:]
				continue
			}
			val.WriteByte(c)
			s = s[1:]
		}
		out[lname] = val.String()
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, ",") {
			s = s[1:]
			continue
		}
		if strings.HasPrefix(s, "}") {
			return s[1:], nil
		}
		return "", fmt.Errorf("label %s: expected , or } after value", lname)
	}
}

func parsePromFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return 1, nil
	case "-Inf":
		return -1, nil
	case "NaN", "nan":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}
