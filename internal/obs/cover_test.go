package obs

import (
	"context"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestRecorderProc(t *testing.T) {
	if got := NewRecorder("w1", 0).Proc(); got != "w1" {
		t.Errorf("Proc() = %q, want w1", got)
	}
	var nilRec *Recorder
	if got := nilRec.Proc(); got != "" {
		t.Errorf("nil Proc() = %q, want empty", got)
	}
	nilRec.Import([]SpanRecord{{Trace: "a", Span: "b"}}) // must not panic
	if nilRec.TraceSpans("a") != nil {
		t.Error("nil recorder returned spans")
	}
	if nilRec.Len() != 0 {
		t.Error("nil recorder has non-zero Len")
	}
}

func TestNewIDsAreValid(t *testing.T) {
	tr, sp := NewTraceID(), NewSpanID()
	if !validID(string(tr)) || !validID(string(sp)) {
		t.Errorf("minted ids %q/%q are not 16 lowercase hex chars", tr, sp)
	}
}

func TestWithRecorderNilAndRemoteContext(t *testing.T) {
	ctx := context.Background()
	if WithRecorder(ctx, nil) != ctx {
		t.Error("WithRecorder(nil) should return the context unchanged")
	}
	if RecorderFrom(nil) != nil {
		t.Error("RecorderFrom(nil ctx) should be nil")
	}
	if tr, sp := SpanContextFrom(nil); tr != "" || sp != "" {
		t.Error("SpanContextFrom(nil ctx) should be empty")
	}
	if ContextWithRemote(ctx, "", "ffffffffffffffff") != ctx {
		t.Error("ContextWithRemote with no trace should return the context unchanged")
	}

	parent := NewSpanID()
	joined := ContextWithRemote(ctx, "00000000000000ff", parent)
	if tr, sp := SpanContextFrom(joined); tr != "00000000000000ff" || sp != parent {
		t.Errorf("SpanContextFrom = %q/%q after ContextWithRemote", tr, sp)
	}
}

func TestObserveWithoutRecorderAndNegativeDuration(t *testing.T) {
	Observe(context.Background(), "noop", time.Now(), time.Second) // no recorder: no-op

	rec := NewRecorder("p", 4)
	ctx := WithRecorder(context.Background(), rec)
	// No enclosing span: Observe must mint a fresh trace and clamp d at 0.
	Observe(ctx, "fresh", time.Now(), -time.Second)
	if rec.Len() != 1 {
		t.Fatalf("recorded %d spans, want 1", rec.Len())
	}
}

func TestSpanSetAttrReplaces(t *testing.T) {
	rec := NewRecorder("p", 4)
	ctx := WithRecorder(context.Background(), rec)
	_, s := StartSpan(ctx, "op", String("k", "v1"))
	s.SetAttr("k", "v2")
	s.SetAttrInt("n", 7)
	s.End()
	got := rec.TraceSpans(s.TraceID())
	if len(got) != 1 {
		t.Fatalf("spans = %d, want 1", len(got))
	}
	attrs := map[string]string{}
	for _, a := range got[0].Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["k"] != "v2" || attrs["n"] != "7" {
		t.Errorf("attrs = %v, want k=v2 n=7", attrs)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	var nilReg *Registry
	if nilReg.Snapshot() != nil {
		t.Error("nil registry Snapshot should be nil")
	}

	r := NewRegistry()
	r.Counter("snap_total", "c", "algo", "dseq").Add(3)
	r.Gauge("snap_gauge", "g").Set(-2)
	h := r.Histogram("snap_seconds", "h", nil)
	h.Observe(0.5)
	h.Observe(1.5)

	entries := r.Snapshot()
	byName := map[string]SnapshotEntry{}
	for _, e := range entries {
		byName[e.Name] = e
	}
	if e := byName["snap_total"]; e.Type != "counter" || e.Value != 3 || e.Labels["algo"] != "dseq" {
		t.Errorf("snap_total entry = %+v", e)
	}
	if e := byName["snap_gauge"]; e.Type != "gauge" || e.Value != -2 || e.Labels != nil {
		t.Errorf("snap_gauge entry = %+v", e)
	}
	if e := byName["snap_seconds"]; e.Type != "histogram" || e.Value != 2 || e.Sum != 2.0 {
		t.Errorf("snap_seconds entry = %+v", e)
	}
}

func TestNilInstrumentsNoop(t *testing.T) {
	var c *Counter
	c.Add(1)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var g *Gauge
	g.Set(5)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram has samples")
	}

	// Invalid names/labels return nil instruments rather than panicking.
	r := NewRegistry()
	if r.Histogram("bad name", "h", nil) != nil {
		t.Error("invalid metric name should yield a nil histogram")
	}
	if r.Counter("ok_total", "c", "bad-label", "v") != nil {
		t.Error("invalid label name should yield a nil counter")
	}
}

func TestTraceHeaderFormatting(t *testing.T) {
	if got := FormatTraceHeader("", "ffffffffffffffff"); got != "" {
		t.Errorf("FormatTraceHeader with no trace = %q", got)
	}
	if got := FormatTraceHeader("00000000000000ab", ""); got != "00000000000000ab" {
		t.Errorf("FormatTraceHeader without parent = %q", got)
	}

	h := http.Header{}
	InjectHeader(context.Background(), h) // no trace: header untouched
	if h.Get(TraceHeader) != "" {
		t.Error("InjectHeader stamped a header without a trace")
	}
	ctx := ContextWithRemote(context.Background(), "00000000000000ab", "00000000000000cd")
	InjectHeader(ctx, h)
	if got := h.Get(TraceHeader); got != "00000000000000ab-00000000000000cd" {
		t.Errorf("injected header = %q", got)
	}

	bad := http.Header{}
	bad.Set(TraceHeader, "not a trace")
	base := context.Background()
	if ExtractHeader(base, bad) != base {
		t.Error("ExtractHeader with a malformed header should return the context unchanged")
	}
}

func TestTraceBytesEdgeCases(t *testing.T) {
	if TraceBytes(context.Background()) != nil {
		t.Error("TraceBytes without a trace should be nil")
	}
	// A remote trace id that is not 16 hex chars cannot be rendered.
	if b := TraceBytes(ContextWithRemote(context.Background(), "zz", "")); b != nil {
		t.Errorf("TraceBytes with a malformed trace id = %x", b)
	}
	// A missing parent encodes as eight zero bytes and round-trips as absent.
	b := TraceBytes(ContextWithRemote(context.Background(), "00000000000000ab", ""))
	if len(b) != 16 {
		t.Fatalf("wire form is %d bytes, want 16", len(b))
	}
	tr, sp, ok := ParseTraceBytes(b)
	if !ok || tr != "00000000000000ab" || sp != "" {
		t.Errorf("ParseTraceBytes = %q/%q/%v", tr, sp, ok)
	}
	if _, _, ok := ParseTraceBytes(make([]byte, 16)); ok {
		t.Error("all-zero trace bytes should not parse")
	}
}

func TestLevelString(t *testing.T) {
	for lvl, want := range map[Level]string{
		LevelDebug: "debug", LevelInfo: "info", LevelWarn: "warn",
		LevelError: "error", LevelOff: "off",
	} {
		if got := lvl.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", lvl, got, want)
		}
	}
}

func TestQuoteValue(t *testing.T) {
	for in, want := range map[string]string{
		"":         `""`,
		"plain":    "plain",
		"a b":      `"a b"`,
		`say "hi"`: `"say \"hi\""`,
		"k=v":      `"k=v"`,
	} {
		if got := quoteValue(in); got != want {
			t.Errorf("quoteValue(%q) = %s, want %s", in, got, want)
		}
	}
}

func TestFormatFloatAndPromFloat(t *testing.T) {
	if got := formatFloat(math.Inf(1)); got != "+Inf" {
		t.Errorf("formatFloat(+Inf) = %q", got)
	}
	if got := formatFloat(math.Inf(-1)); got != "-Inf" {
		t.Errorf("formatFloat(-Inf) = %q", got)
	}
	for _, v := range []string{"+Inf", "Inf", "-Inf", "NaN", "nan", "2.5"} {
		if _, err := parsePromFloat(v); err != nil {
			t.Errorf("parsePromFloat(%q): %v", v, err)
		}
	}
	if _, err := parsePromFloat("xyz"); err == nil {
		t.Error("parsePromFloat should reject non-numeric values")
	}
}

func TestValidateExpositionCommentErrors(t *testing.T) {
	for name, expo := range map[string]string{
		"malformed HELP":     "# HELP !bad help text\nok_total 1\n",
		"malformed TYPE":     "# TYPE only_two\n",
		"bad TYPE name":      "# TYPE !bad counter\n",
		"unknown type":       "# TYPE ok_total exotic\n",
		"duplicate TYPE":     "# TYPE ok_total counter\n# TYPE ok_total counter\n",
		"TYPE after samples": "ok_total 1\n# TYPE ok_total counter\n",
	} {
		if _, err := ValidateExposition(strings.NewReader(expo)); err == nil {
			t.Errorf("%s: expected a validation error", name)
		}
	}
	// Free-form comments are fine.
	if _, err := ValidateExposition(strings.NewReader("# just a note\nok_total 1\n")); err != nil {
		t.Errorf("free-form comment rejected: %v", err)
	}
}

func TestChromeTraceUnknownProc(t *testing.T) {
	buf, err := ChromeTrace([]SpanRecord{{
		Trace: "00000000000000ab", Span: "00000000000000cd",
		Name: "op", StartUnixNS: 10, DurationNS: 5,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), `"unknown"`) {
		t.Errorf("spans without a Proc label should land in an \"unknown\" process: %s", buf)
	}
}
