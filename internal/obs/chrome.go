package obs

import (
	"encoding/json"
	"sort"
)

// chromeEvent is one entry of the Chrome trace_event format ("Trace Event
// Format"), the JSON that Perfetto and chrome://tracing load directly.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	TS    int64          `json:"ts"`            // microseconds
	Dur   int64          `json:"dur,omitempty"` // microseconds
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders span records as Chrome trace_event JSON. Each distinct
// Proc label becomes a process (with a process_name metadata event);
// overlapping spans within a process are spread across thread lanes by
// greedy interval partitioning so sibling spans render side by side instead
// of stacking incorrectly.
func ChromeTrace(spans []SpanRecord) ([]byte, error) {
	// Stable process numbering: sorted distinct proc labels.
	procs := make([]string, 0, 4)
	seen := make(map[string]bool)
	for _, s := range spans {
		p := s.Proc
		if p == "" {
			p = "unknown"
		}
		if !seen[p] {
			seen[p] = true
			procs = append(procs, p)
		}
	}
	sort.Strings(procs)
	pidOf := make(map[string]int, len(procs))
	for i, p := range procs {
		pidOf[p] = i + 1
	}

	events := make([]chromeEvent, 0, len(spans)+len(procs))
	for _, p := range procs {
		events = append(events, chromeEvent{
			Name:  "process_name",
			Phase: "M",
			PID:   pidOf[p],
			Args:  map[string]any{"name": p},
		})
	}

	// Lane assignment per process: sort by start, place each span on the
	// first lane that is free at its start time.
	byProc := make(map[string][]SpanRecord, len(procs))
	for _, s := range spans {
		p := s.Proc
		if p == "" {
			p = "unknown"
		}
		byProc[p] = append(byProc[p], s)
	}
	for _, p := range procs {
		group := byProc[p]
		sort.Slice(group, func(i, j int) bool {
			if group[i].StartUnixNS != group[j].StartUnixNS {
				return group[i].StartUnixNS < group[j].StartUnixNS
			}
			return group[i].DurationNS > group[j].DurationNS
		})
		laneEnd := []int64{}
		for _, s := range group {
			end := s.StartUnixNS + s.DurationNS
			lane := -1
			for i, le := range laneEnd {
				if le <= s.StartUnixNS {
					lane = i
					break
				}
			}
			if lane == -1 {
				lane = len(laneEnd)
				laneEnd = append(laneEnd, 0)
			}
			laneEnd[lane] = end
			dur := s.DurationNS / 1000
			if dur < 1 {
				dur = 1
			}
			args := make(map[string]any, len(s.Attrs)+2)
			for _, a := range s.Attrs {
				args[a.Key] = a.Value
			}
			args["trace"] = string(s.Trace)
			args["span"] = string(s.Span)
			if s.Parent != "" {
				args["parent"] = string(s.Parent)
			}
			events = append(events, chromeEvent{
				Name:  s.Name,
				Phase: "X",
				PID:   pidOf[p],
				TID:   lane + 1,
				TS:    s.StartUnixNS / 1000,
				Dur:   dur,
				Args:  args,
			})
		}
	}
	return json.MarshalIndent(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}, "", " ")
}
