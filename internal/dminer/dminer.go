// Package dminer holds the engine-facing scaffolding shared by the
// distributed miners (internal/dseq, internal/dcand, internal/naive): the
// Mine/MineLocal/MinePeer run wrappers, the per-call shuffle-config override
// and the fingerprint-grouping combiner. The packages used to carry
// near-identical copies of this plumbing, so every new shuffle knob (spill
// thresholds, streaming send buffers, segment compression) had to be
// threaded three times; now it is threaded once here.
package dminer

import (
	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
)

// ApplyShuffle lets a per-call ShuffleConfig (the miners' Options.Spill)
// override the engine config's shuffle bounds. The zero value leaves the
// engine config untouched.
func ApplyShuffle(cfg mapreduce.Config, sc mapreduce.ShuffleConfig) mapreduce.Config {
	if sc != (mapreduce.ShuffleConfig{}) {
		cfg.Shuffle = sc
	}
	return cfg
}

// Mine runs the job on the in-process engine and panics on failure. A run
// can only fail when the shuffle is bounded (spilling or streaming), so
// callers that bound it should prefer MineLocal. name prefixes the panic
// message ("dseq", "dcand", ...).
func Mine[I any, K comparable, V any](name string, inputs []I, cfg mapreduce.Config, sc mapreduce.ShuffleConfig, job mapreduce.Job[I, K, V, miner.Pattern]) ([]miner.Pattern, mapreduce.Metrics) {
	out, metrics, err := MineLocal(inputs, cfg, sc, job)
	if err != nil {
		panic(name + ": " + err.Error())
	}
	return out, metrics
}

// MineLocal runs the job on the in-process engine and returns the sorted
// patterns with error reporting.
func MineLocal[I any, K comparable, V any](inputs []I, cfg mapreduce.Config, sc mapreduce.ShuffleConfig, job mapreduce.Job[I, K, V, miner.Pattern]) ([]miner.Pattern, mapreduce.Metrics, error) {
	out, metrics, err := mapreduce.RunLocal(inputs, ApplyShuffle(cfg, sc), job)
	if err != nil {
		return nil, metrics, err
	}
	miner.SortPatterns(out)
	return out, metrics, nil
}

// MinePeer runs this process's share of a distributed job over the wire
// fabric bx, adapting it with the job's codec. The returned patterns are
// those of the partitions this peer owns, sorted like MineLocal's.
func MinePeer[I any, K comparable, V any](inputs []I, cfg mapreduce.Config, sc mapreduce.ShuffleConfig, job mapreduce.Job[I, K, V, miner.Pattern], codec mapreduce.FrameCodec[K, V], bx mapreduce.ByteExchange) ([]miner.Pattern, mapreduce.Metrics, error) {
	ex := mapreduce.NewFrameExchange(bx, codec)
	out, metrics, err := mapreduce.RunExchange(inputs, ApplyShuffle(cfg, sc), job, ex)
	if err != nil {
		return nil, metrics, err
	}
	miner.SortPatterns(out)
	return out, metrics, nil
}

// GroupCombiner builds the combiner shared by the weighted-record miners: it
// groups a key's values by fingerprint, merging duplicates into the first
// occurrence (in first-seen order, so combining is deterministic given the
// input order).
func GroupCombiner[K comparable, V any](fingerprint func(V) string, merge func(dst *V, src V)) func(K, []V) []V {
	return func(_ K, vs []V) []V {
		grouped := make(map[string]*V, len(vs))
		order := make([]string, 0, len(vs))
		for _, v := range vs {
			fp := fingerprint(v)
			if g, ok := grouped[fp]; ok {
				merge(g, v)
				continue
			}
			vc := v
			grouped[fp] = &vc
			order = append(order, fp)
		}
		out := make([]V, 0, len(order))
		for _, fp := range order {
			out = append(out, *grouped[fp])
		}
		return out
	}
}
