// Package dminer holds the engine-facing scaffolding shared by the
// distributed miners (internal/dseq, internal/dcand, internal/naive): the
// Mine/MineLocal/MinePeer run wrappers, the per-call shuffle-config override
// and the fingerprint-grouping combiner. The packages used to carry
// near-identical copies of this plumbing, so every new shuffle knob (spill
// thresholds, streaming send buffers, segment compression) had to be
// threaded three times; now it is threaded once here.
package dminer

import (
	"sync"

	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
)

// ApplyShuffle lets a per-call ShuffleConfig (the miners' Options.Spill)
// override the engine config's shuffle bounds. The zero value leaves the
// engine config untouched.
func ApplyShuffle(cfg mapreduce.Config, sc mapreduce.ShuffleConfig) mapreduce.Config {
	if sc != (mapreduce.ShuffleConfig{}) {
		cfg.Shuffle = sc
	}
	return cfg
}

// Mine runs the job on the in-process engine and panics on failure. A run
// can only fail when the shuffle is bounded (spilling or streaming), so
// callers that bound it should prefer MineLocal. name prefixes the panic
// message ("dseq", "dcand", ...).
func Mine[I any, K comparable, V any](name string, inputs []I, cfg mapreduce.Config, sc mapreduce.ShuffleConfig, job mapreduce.Job[I, K, V, miner.Pattern]) ([]miner.Pattern, mapreduce.Metrics) {
	out, metrics, err := MineLocal(inputs, cfg, sc, job)
	if err != nil {
		panic(name + ": " + err.Error())
	}
	return out, metrics
}

// MineLocal runs the job on the in-process engine and returns the sorted
// patterns with error reporting.
func MineLocal[I any, K comparable, V any](inputs []I, cfg mapreduce.Config, sc mapreduce.ShuffleConfig, job mapreduce.Job[I, K, V, miner.Pattern]) ([]miner.Pattern, mapreduce.Metrics, error) {
	out, metrics, err := mapreduce.RunLocal(inputs, ApplyShuffle(cfg, sc), job)
	if err != nil {
		return nil, metrics, err
	}
	miner.SortPatterns(out)
	return out, metrics, nil
}

// MinePeer runs this process's share of a distributed job over the wire
// fabric bx, adapting it with the job's codec. The returned patterns are
// those of the partitions this peer owns, sorted like MineLocal's.
func MinePeer[I any, K comparable, V any](inputs []I, cfg mapreduce.Config, sc mapreduce.ShuffleConfig, job mapreduce.Job[I, K, V, miner.Pattern], codec mapreduce.FrameCodec[K, V], bx mapreduce.ByteExchange) ([]miner.Pattern, mapreduce.Metrics, error) {
	ex := mapreduce.NewFrameExchange(bx, codec)
	out, metrics, err := mapreduce.RunExchange(inputs, ApplyShuffle(cfg, sc), job, ex)
	if err != nil {
		return nil, metrics, err
	}
	miner.SortPatterns(out)
	return out, metrics, nil
}

// groupScratch is the pooled working memory of a GroupCombiner call: the
// fingerprint append buffer and the fingerprint → group-index map. Pooling
// keeps the map's buckets (and the interned key strings' lookup cost) across
// calls; only first-seen fingerprints allocate, as map key strings.
type groupScratch struct {
	buf []byte
	idx map[string]int
}

var groupPool = sync.Pool{New: func() any { return &groupScratch{idx: make(map[string]int)} }}

// GroupCombiner builds the combiner shared by the weighted-record miners: it
// groups a key's values by fingerprint, merging duplicates into the first
// occurrence (in first-seen order, so combining is deterministic given the
// input order). appendKey renders a value's fingerprint into the scratch
// buffer; fingerprints of duplicate values are looked up without allocating,
// so a combine pass only allocates one key string per distinct group. The
// grouped values are compacted into vs in place.
func GroupCombiner[K comparable, V any](appendKey func(buf []byte, v V) []byte, merge func(dst *V, src V)) func(K, []V) []V {
	return func(_ K, vs []V) []V {
		if len(vs) < 2 {
			return vs
		}
		sc := groupPool.Get().(*groupScratch)
		clear(sc.idx)
		out := vs[:0]
		for _, v := range vs {
			sc.buf = appendKey(sc.buf[:0], v)
			if i, ok := sc.idx[string(sc.buf)]; ok {
				merge(&out[i], v)
				continue
			}
			sc.idx[string(sc.buf)] = len(out)
			out = append(out, v)
		}
		groupPool.Put(sc)
		return out
	}
}
