package dminer

import (
	"io"
	"reflect"
	"strings"
	"testing"

	"seqmine/internal/dict"
	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
)

// countJob is a minimal distributed-miner-shaped job: it counts item
// occurrences and emits one single-item pattern per frequent item.
func countJob(sigma int64) mapreduce.Job[int, int, int64, miner.Pattern] {
	job := mapreduce.Job[int, int, int64, miner.Pattern]{
		Map: func(v int, emit func(int, int64)) { emit(v, 1) },
		Reduce: func(k int, vs []int64, emit func(miner.Pattern)) {
			var sum int64
			for _, v := range vs {
				sum += v
			}
			if sum >= sigma {
				emit(miner.Pattern{Items: []dict.ItemID{dict.ItemID(k)}, Freq: sum})
			}
		},
		Hash: func(k int) uint64 { return mapreduce.HashUint64(uint64(k)) },
	}
	codec := mapreduce.FrameCodec[int, int64]{
		AppendKey: func(buf []byte, k int) []byte { return mapreduce.AppendUvarint(buf, uint64(k)) },
		ReadKey: func(data []byte, pos int) (int, int, error) {
			v, pos, err := mapreduce.ReadUvarint(data, pos)
			return int(v), pos, err
		},
		AppendValue: func(buf []byte, v int64) []byte { return mapreduce.AppendUvarint(buf, uint64(v)) },
		ReadValue: func(data []byte, pos int) (int64, int, error) {
			v, pos, err := mapreduce.ReadUvarint(data, pos)
			return int64(v), pos, err
		},
	}
	job.Codec = &codec
	return job
}

var countInputs = []int{3, 1, 2, 3, 3, 2, 1, 3}

func TestApplyShuffle(t *testing.T) {
	base := mapreduce.Config{MapWorkers: 2, Shuffle: mapreduce.ShuffleConfig{SpillThreshold: 7}}
	if got := ApplyShuffle(base, mapreduce.ShuffleConfig{}); got.Shuffle.SpillThreshold != 7 {
		t.Errorf("zero override must keep the engine config, got %+v", got.Shuffle)
	}
	override := mapreduce.ShuffleConfig{SendBufferBytes: 9, Compression: true}
	if got := ApplyShuffle(base, override); got.Shuffle != override {
		t.Errorf("override not applied: %+v", got.Shuffle)
	}
}

func TestMineLocalSortsPatterns(t *testing.T) {
	out, metrics, err := MineLocal(countInputs, mapreduce.Config{MapWorkers: 2, ReduceWorkers: 2},
		mapreduce.ShuffleConfig{SendBufferBytes: 4}, countJob(2))
	if err != nil {
		t.Fatal(err)
	}
	want := []miner.Pattern{
		{Items: []dict.ItemID{3}, Freq: 4},
		{Items: []dict.ItemID{1}, Freq: 2},
		{Items: []dict.ItemID{2}, Freq: 2},
	}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("MineLocal = %+v, want %+v", out, want)
	}
	if metrics.StreamedBatches == 0 {
		t.Error("the streaming override should have streamed batches")
	}
}

func TestMinePanicsOnFailure(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a panic for a bounded shuffle without a codec")
		}
		if msg, ok := r.(string); !ok || !strings.HasPrefix(msg, "testminer: ") {
			t.Errorf("panic %v should carry the miner name", r)
		}
	}()
	job := countJob(1)
	job.Codec = nil
	Mine("testminer", countInputs, mapreduce.Config{}, mapreduce.ShuffleConfig{SpillThreshold: 1}, job)
}

func TestMineReturnsOutput(t *testing.T) {
	out, _ := Mine("testminer", countInputs, mapreduce.Config{}, mapreduce.ShuffleConfig{}, countJob(4))
	if len(out) != 1 || out[0].Freq != 4 {
		t.Errorf("Mine = %+v, want the single frequent item", out)
	}
}

// soloFabric is a single-peer ByteExchange: MinePeer over it reduces every
// key locally, which exercises the frame-adapter wiring without a network.
type soloFabric struct{}

func (soloFabric) NumPeers() int          { return 1 }
func (soloFabric) Self() int              { return 0 }
func (soloFabric) Send(int, []byte) error { panic("single-peer job must not send") }
func (soloFabric) CloseSend() error       { return nil }
func (soloFabric) Recv() ([]byte, error)  { return nil, io.EOF }
func (soloFabric) WireBytesOut() int64    { return 0 }

func TestMinePeerSinglePeer(t *testing.T) {
	job := countJob(2)
	out, metrics, err := MinePeer(countInputs, mapreduce.Config{MapWorkers: 2, ReduceWorkers: 2},
		mapreduce.ShuffleConfig{}, job, *job.Codec, soloFabric{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Errorf("MinePeer = %+v, want 3 patterns", out)
	}
	if !metrics.RemoteShuffle {
		t.Error("wire metrics should be reported for a frame exchange")
	}
}

func TestGroupCombiner(t *testing.T) {
	type rec struct {
		id     string
		weight int64
	}
	combine := GroupCombiner[int](
		func(buf []byte, r rec) []byte { return append(buf, r.id...) },
		func(dst *rec, src rec) { dst.weight += src.weight },
	)
	got := combine(0, []rec{{"a", 1}, {"b", 2}, {"a", 3}, {"c", 1}, {"b", 1}})
	want := []rec{{"a", 4}, {"b", 3}, {"c", 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("GroupCombiner = %+v, want %+v (first-seen order, merged weights)", got, want)
	}
	if single := combine(0, []rec{{"a", 7}}); !reflect.DeepEqual(single, []rec{{"a", 7}}) {
		t.Errorf("GroupCombiner on a single value = %+v, want it unchanged", single)
	}
}
