package patex

import (
	"strings"
	"testing"
)

func TestParseRunningExample(t *testing.T) {
	n, err := Parse(".*(A)[(.^).*]*(b).*")
	if err != nil {
		t.Fatal(err)
	}
	c, ok := n.(*Concat)
	if !ok {
		t.Fatalf("expected Concat at top level, got %T", n)
	}
	if len(c.Children) != 5 {
		t.Fatalf("expected 5 concat children, got %d: %v", len(c.Children), c)
	}
	// .*
	r0, ok := c.Children[0].(*Repeat)
	if !ok || r0.Min != 0 || !r0.Unbounded {
		t.Errorf("child 0 should be .*, got %v", c.Children[0])
	}
	if it, ok := r0.Child.(*ItemExpr); !ok || !it.Wildcard {
		t.Errorf("child 0 body should be wildcard")
	}
	// (A)
	cap1, ok := c.Children[1].(*Capture)
	if !ok {
		t.Fatalf("child 1 should be a capture, got %T", c.Children[1])
	}
	if it, ok := cap1.Child.(*ItemExpr); !ok || it.Item != "A" || it.Exact || it.Generalize {
		t.Errorf("child 1 should capture item A, got %v", cap1.Child)
	}
	// [(.^).*]*
	r2, ok := c.Children[2].(*Repeat)
	if !ok || !r2.Unbounded || r2.Min != 0 {
		t.Fatalf("child 2 should be an unbounded repeat, got %v", c.Children[2])
	}
	inner, ok := r2.Child.(*Concat)
	if !ok || len(inner.Children) != 2 {
		t.Fatalf("child 2 body should be a 2-element concat, got %v", r2.Child)
	}
	capGen, ok := inner.Children[0].(*Capture)
	if !ok {
		t.Fatalf("expected capture (.^), got %T", inner.Children[0])
	}
	if it, ok := capGen.Child.(*ItemExpr); !ok || !it.Wildcard || !it.Generalize {
		t.Errorf("expected (.^), got %v", capGen.Child)
	}
	// (b)
	if _, ok := c.Children[3].(*Capture); !ok {
		t.Errorf("child 3 should be a capture, got %T", c.Children[3])
	}
}

func TestParseItemExprVariants(t *testing.T) {
	cases := []struct {
		in         string
		item       string
		wildcard   bool
		exact      bool
		generalize bool
		forceGen   bool
	}{
		{"w", "w", false, false, false, false},
		{"w=", "w", false, true, false, false},
		{"w^", "w", false, false, true, false},
		{"w^=", "w", false, false, true, true},
		{".", "", true, false, false, false},
		{".^", "", true, false, true, false},
		{"ENTITY", "ENTITY", false, false, false, false},
		{"'MP3 Players'", "MP3 Players", false, false, false, false},
		{"be^=", "be", false, false, true, true},
	}
	for _, c := range cases {
		n, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		it, ok := n.(*ItemExpr)
		if !ok {
			t.Errorf("Parse(%q) = %T, want *ItemExpr", c.in, n)
			continue
		}
		if it.Item != c.item || it.Wildcard != c.wildcard || it.Exact != c.exact ||
			it.Generalize != c.generalize || it.ForceGen != c.forceGen {
			t.Errorf("Parse(%q) = %+v", c.in, it)
		}
	}
}

func TestParseRepetition(t *testing.T) {
	cases := []struct {
		in        string
		min, max  int
		unbounded bool
	}{
		{"[.]*", 0, 0, true},
		{"[.]+", 1, 0, true},
		{"[.]?", 0, 1, false},
		{"[.]{3}", 3, 3, false},
		{"[.]{2,}", 2, 0, true},
		{"[.]{1,4}", 1, 4, false},
		{"[.]{,4}", 0, 4, false},
		{".{0,2}", 0, 2, false},
		{"(.^){3}", 3, 3, false},
	}
	for _, c := range cases {
		n, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		r, ok := n.(*Repeat)
		if !ok {
			t.Errorf("Parse(%q) = %T, want *Repeat", c.in, n)
			continue
		}
		if r.Min != c.min || r.Unbounded != c.unbounded || (!c.unbounded && r.Max != c.max) {
			t.Errorf("Parse(%q) = {Min:%d Max:%d Unbounded:%v}, want {%d %d %v}",
				c.in, r.Min, r.Max, r.Unbounded, c.min, c.max, c.unbounded)
		}
	}
}

func TestParseStackedPostfix(t *testing.T) {
	// NOUN+? from constraint N1: (NOUN+)? i.e. an optional repetition.
	n, err := Parse("NOUN+?")
	if err != nil {
		t.Fatal(err)
	}
	outer, ok := n.(*Repeat)
	if !ok || outer.Min != 0 || outer.Max != 1 || outer.Unbounded {
		t.Fatalf("outer should be '?', got %v", n)
	}
	inner, ok := outer.Child.(*Repeat)
	if !ok || inner.Min != 1 || !inner.Unbounded {
		t.Fatalf("inner should be '+', got %v", outer.Child)
	}
}

func TestParseAlternation(t *testing.T) {
	n, err := Parse("[[.^. .]|[. .^.]|[. . .^]]")
	if err != nil {
		t.Fatal(err)
	}
	u, ok := n.(*Union)
	if !ok {
		t.Fatalf("expected Union, got %T", n)
	}
	if len(u.Children) != 3 {
		t.Fatalf("expected 3 branches, got %d", len(u.Children))
	}
	for i, b := range u.Children {
		c, ok := b.(*Concat)
		if !ok || len(c.Children) != 3 {
			t.Errorf("branch %d should be a 3-item concat, got %v", i, b)
		}
	}
}

// TestParsePaperConstraints parses every constraint of Table III.
func TestParsePaperConstraints(t *testing.T) {
	patterns := []string{
		"ENTITY (VERB+ NOUN+? PREP?) ENTITY",      // N1
		"(ENTITY^ VERB+ NOUN+? PREP? ENTITY^)",    // N2
		"(ENTITY^ be^=) DET? (ADV? ADJ? NOUN)",    // N3
		"(.^){3} NOUN",                            // N4
		"[[.^. .]|[. .^.]|[. . .^]]",              // N5
		"(Electr^)[.{0,2}(Electr^)]{1,4}",         // A1
		"(Book)[.{0,2}(Book)]{1,4}",               // A2
		"DigitalCamera[.{0,3}(.^)]{1,4}",          // A3
		"(MusicInstr^)[.{0,2}(MusicInstr^)]{1,4}", // A4
		"(.)[.*(.)]{,4}",                          // T1, lambda=5
		"(.)[.{0,1}(.)]{1,4}",                     // T2, gamma=1, lambda=5
		"(.^)[.{0,1}(.^)]{1,4}",                   // T3, gamma=1, lambda=5
	}
	for _, pat := range patterns {
		if _, err := Parse(pat); err != nil {
			t.Errorf("Parse(%q): %v", pat, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"(",
		"(A",
		"[A",
		"A)",
		"A]",
		"|A",
		".=",
		".^=",
		"[A]{3,1}",
		"[A]{}",
		"[A]{x}",
		"'unterminated",
		"[]",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	patterns := []string{
		".*(A)[(.^).*]*(b).*",
		"ENTITY (VERB+ NOUN+? PREP?) ENTITY",
		"(Electr^)[.{0,2}(Electr^)]{1,4}",
		"(.^)[.{0,1}(.^)]{1,4}",
		"'A Storm of Swords' (Book)",
	}
	for _, pat := range patterns {
		n1, err := Parse(pat)
		if err != nil {
			t.Fatalf("Parse(%q): %v", pat, err)
		}
		n2, err := Parse(n1.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", n1.String(), err)
		}
		if n1.String() != n2.String() {
			t.Errorf("String round trip mismatch: %q vs %q", n1.String(), n2.String())
		}
	}
}

func TestItems(t *testing.T) {
	n := MustParse("ENTITY (VERB+ NOUN+? PREP?) ENTITY")
	got := Items(n)
	want := []string{"ENTITY", "VERB", "NOUN", "PREP"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("Items = %v, want %v", got, want)
	}
}

func TestParseWhitespaceInsensitive(t *testing.T) {
	a := MustParse("(A)[(.^).*]*(b)")
	b := MustParse(" ( A ) [ ( .^ ) .* ] * ( b ) ")
	if a.String() != b.String() {
		t.Errorf("whitespace should not matter: %q vs %q", a.String(), b.String())
	}
}
