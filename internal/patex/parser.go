package patex

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses a pattern expression and returns its AST.
func Parse(input string) (Node, error) {
	p := &parser{input: input}
	node, err := p.parseAlternation()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.eof() {
		return nil, p.errorf("unexpected %q", p.rest())
	}
	return node, nil
}

// MustParse is Parse for tests and examples; it panics on error.
func MustParse(input string) Node {
	n, err := Parse(input)
	if err != nil {
		panic("patex: " + err.Error())
	}
	return n
}

type parser struct {
	input string
	pos   int
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("patex: position %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) eof() bool { return p.pos >= len(p.input) }

func (p *parser) rest() string {
	if p.eof() {
		return ""
	}
	r := p.input[p.pos:]
	if len(r) > 12 {
		r = r[:12] + "..."
	}
	return r
}

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.input[p.pos]
}

func (p *parser) skipSpace() {
	for !p.eof() && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t' || p.input[p.pos] == '\n' || p.input[p.pos] == '\r') {
		p.pos++
	}
}

// parseAlternation := parseConcat ('|' parseConcat)*
func (p *parser) parseAlternation() (Node, error) {
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	children := []Node{first}
	for {
		p.skipSpace()
		if p.peek() != '|' {
			break
		}
		p.pos++
		next, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		children = append(children, next)
	}
	if len(children) == 1 {
		return children[0], nil
	}
	return &Union{Children: children}, nil
}

// parseConcat := parseRepeated+
func (p *parser) parseConcat() (Node, error) {
	var children []Node
	for {
		p.skipSpace()
		if p.eof() {
			break
		}
		switch p.peek() {
		case ')', ']', '|':
			goto done
		}
		child, err := p.parseRepeated()
		if err != nil {
			return nil, err
		}
		children = append(children, child)
	}
done:
	switch len(children) {
	case 0:
		return nil, p.errorf("empty pattern expression")
	case 1:
		return children[0], nil
	default:
		return &Concat{Children: children}, nil
	}
}

// parseRepeated := parsePrimary postfix*
func (p *parser) parseRepeated() (Node, error) {
	node, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		switch p.peek() {
		case '*':
			p.pos++
			node = &Repeat{Child: node, Min: 0, Unbounded: true}
		case '+':
			p.pos++
			node = &Repeat{Child: node, Min: 1, Unbounded: true}
		case '?':
			p.pos++
			node = &Repeat{Child: node, Min: 0, Max: 1}
		case '{':
			rep, err := p.parseBounds(node)
			if err != nil {
				return nil, err
			}
			node = rep
		default:
			return node, nil
		}
	}
}

// parseBounds parses '{n}', '{n,}', '{n,m}' and also the lenient form '{,m}'
// (meaning '{0,m}') used in the paper for the PrefixSpan constraint T1.
func (p *parser) parseBounds(child Node) (Node, error) {
	if p.peek() != '{' {
		return nil, p.errorf("expected '{'")
	}
	p.pos++
	p.skipSpace()
	min, hasMin, err := p.parseOptionalInt()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	rep := &Repeat{Child: child}
	switch p.peek() {
	case '}':
		p.pos++
		if !hasMin {
			return nil, p.errorf("empty repetition bounds {}")
		}
		rep.Min, rep.Max = min, min
		return rep, nil
	case ',':
		p.pos++
		p.skipSpace()
		max, hasMax, err := p.parseOptionalInt()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != '}' {
			return nil, p.errorf("expected '}' to close repetition bounds")
		}
		p.pos++
		if !hasMin {
			min = 0
		}
		rep.Min = min
		if hasMax {
			if max < min {
				return nil, p.errorf("repetition bounds {%d,%d} have max < min", min, max)
			}
			rep.Max = max
		} else {
			rep.Unbounded = true
		}
		return rep, nil
	default:
		return nil, p.errorf("expected ',' or '}' in repetition bounds")
	}
}

func (p *parser) parseOptionalInt() (int, bool, error) {
	start := p.pos
	for !p.eof() && p.input[p.pos] >= '0' && p.input[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return 0, false, nil
	}
	v, err := strconv.Atoi(p.input[start:p.pos])
	if err != nil {
		return 0, false, p.errorf("bad repetition bound: %v", err)
	}
	return v, true, nil
}

// parsePrimary := '(' alternation ')' | '[' alternation ']' | itemExpr
func (p *parser) parsePrimary() (Node, error) {
	p.skipSpace()
	switch p.peek() {
	case '(':
		p.pos++
		inner, err := p.parseAlternation()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, p.errorf("expected ')'")
		}
		p.pos++
		return &Capture{Child: inner}, nil
	case '[':
		p.pos++
		inner, err := p.parseAlternation()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ']' {
			return nil, p.errorf("expected ']'")
		}
		p.pos++
		return inner, nil
	case 0:
		return nil, p.errorf("unexpected end of pattern expression")
	default:
		return p.parseItemExpr()
	}
}

// parseItemExpr := ('.' | ITEM | QUOTED) ['^'] ['=']
func (p *parser) parseItemExpr() (Node, error) {
	e := &ItemExpr{}
	switch {
	case p.peek() == '.':
		p.pos++
		e.Wildcard = true
	case p.peek() == '\'':
		name, err := p.parseQuoted()
		if err != nil {
			return nil, err
		}
		e.Item = name
	default:
		name := p.parseItemName()
		if name == "" {
			return nil, p.errorf("expected item, '.', '(', or '[' but found %q", p.rest())
		}
		e.Item = name
	}
	if p.peek() == '^' {
		p.pos++
		e.Generalize = true
	}
	if p.peek() == '=' {
		p.pos++
		if e.Generalize {
			e.ForceGen = true
		} else {
			e.Exact = true
		}
	}
	if e.Wildcard && (e.Exact || e.ForceGen) {
		return nil, p.errorf("'=' cannot be applied to the wildcard '.'")
	}
	return e, nil
}

func (p *parser) parseQuoted() (string, error) {
	// opening quote already peeked
	p.pos++
	var b strings.Builder
	for !p.eof() {
		c := p.input[p.pos]
		switch c {
		case '\\':
			if p.pos+1 < len(p.input) && p.input[p.pos+1] == '\'' {
				b.WriteByte('\'')
				p.pos += 2
				continue
			}
			b.WriteByte(c)
			p.pos++
		case '\'':
			p.pos++
			return b.String(), nil
		default:
			b.WriteByte(c)
			p.pos++
		}
	}
	return "", p.errorf("unterminated quoted item")
}

func isItemRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '#' || r == '&'
}

func (p *parser) parseItemName() string {
	start := p.pos
	for !p.eof() {
		r := rune(p.input[p.pos])
		if !isItemRune(r) {
			break
		}
		p.pos++
	}
	return p.input[start:p.pos]
}
