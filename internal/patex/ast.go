// Package patex implements the DESQ pattern-expression language used to state
// flexible subsequence constraints (Sec. II of the paper).
//
// The ASCII syntax accepted by this package ("↑" of the paper is written "^"):
//
//	w        match any descendant of item w, no output
//	w=       match exactly item w, no output
//	w^       match any descendant of w, no output
//	w^=      match any descendant of w, no output
//	.        match any item, no output
//	.^       match any item, no output
//	(E)      capture: item expressions inside E produce output
//	[E]      grouping
//	E1 E2    concatenation
//	[E1|E2]  alternation
//	[E]*  [E]+  [E]?  [E]{n}  [E]{n,}  [E]{n,m}   repetition
//
// Output behaviour of captured item expressions (inside parentheses):
//
//	(w)    outputs the matched item
//	(w=)   outputs w
//	(w^)   outputs the matched item or any of its ancestors up to w
//	(w^=)  outputs w (forced generalization)
//	(.)    outputs the matched item
//	(.^)   outputs the matched item or any of its ancestors
//
// Item names consist of letters, digits and the characters _ - # & ; names
// containing other characters (e.g. spaces) are written in single quotes:
// 'MP3 Players'.
package patex

import (
	"fmt"
	"strings"
)

// Node is a node of the pattern-expression abstract syntax tree.
type Node interface {
	fmt.Stringer
	node()
}

// ItemExpr matches a single input item and (when captured) produces output
// items. Wildcard expressions ('.') leave Item empty.
type ItemExpr struct {
	Wildcard   bool   // '.'
	Item       string // item name for non-wildcard expressions
	Exact      bool   // '=' without '^': match only the item itself
	Generalize bool   // '^'
	ForceGen   bool   // '^=': always generalize the output to Item
}

func (e *ItemExpr) node() {}

func (e *ItemExpr) String() string {
	var b strings.Builder
	if e.Wildcard {
		b.WriteByte('.')
	} else {
		b.WriteString(quoteIfNeeded(e.Item))
	}
	if e.Generalize {
		b.WriteByte('^')
	}
	if e.Exact || e.ForceGen {
		b.WriteByte('=')
	}
	return b.String()
}

// Concat is the concatenation of its children.
type Concat struct{ Children []Node }

func (c *Concat) node() {}

func (c *Concat) String() string {
	parts := make([]string, len(c.Children))
	for i, ch := range c.Children {
		parts[i] = ch.String()
	}
	return strings.Join(parts, " ")
}

// Union is the alternation of its children.
type Union struct{ Children []Node }

func (u *Union) node() {}

func (u *Union) String() string {
	parts := make([]string, len(u.Children))
	for i, ch := range u.Children {
		parts[i] = ch.String()
	}
	return "[" + strings.Join(parts, "|") + "]"
}

// Repeat repeats its child between Min and Max times. Unbounded Max is
// represented by Unbounded == true ( '*', '+', '{n,}' ).
type Repeat struct {
	Child     Node
	Min       int
	Max       int
	Unbounded bool
}

func (r *Repeat) node() {}

func (r *Repeat) String() string {
	suffix := ""
	switch {
	case r.Min == 0 && r.Unbounded:
		suffix = "*"
	case r.Min == 1 && r.Unbounded:
		suffix = "+"
	case r.Min == 0 && !r.Unbounded && r.Max == 1:
		suffix = "?"
	case r.Unbounded:
		suffix = fmt.Sprintf("{%d,}", r.Min)
	case r.Min == r.Max:
		suffix = fmt.Sprintf("{%d}", r.Min)
	default:
		suffix = fmt.Sprintf("{%d,%d}", r.Min, r.Max)
	}
	return "[" + r.Child.String() + "]" + suffix
}

// Capture marks its child as captured: item expressions below it produce
// output when they match.
type Capture struct{ Child Node }

func (c *Capture) node() {}

func (c *Capture) String() string { return "(" + c.Child.String() + ")" }

// quoteIfNeeded renders an item name, quoting it when it contains characters
// outside the unquoted item alphabet.
func quoteIfNeeded(name string) string {
	for _, r := range name {
		if !isItemRune(r) {
			return "'" + strings.ReplaceAll(name, "'", `\'`) + "'"
		}
	}
	return name
}

// Items returns the distinct non-wildcard item names referenced by the
// expression tree rooted at n, in first-appearance order.
func Items(n Node) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(Node)
	walk = func(n Node) {
		switch t := n.(type) {
		case *ItemExpr:
			if !t.Wildcard && !seen[t.Item] {
				seen[t.Item] = true
				out = append(out, t.Item)
			}
		case *Concat:
			for _, c := range t.Children {
				walk(c)
			}
		case *Union:
			for _, c := range t.Children {
				walk(c)
			}
		case *Repeat:
			walk(t.Child)
		case *Capture:
			walk(t.Child)
		}
	}
	walk(n)
	return out
}
