// Package dseq implements D-SEQ (Sec. V of the paper): distributed frequent
// sequence mining with item-based partitioning and sequence representation.
// The map phase determines the pivot items K(T) of each input sequence with
// the position–state grid, rewrites the sequence per pivot (dropping leading
// and trailing irrelevant positions) and sends the rewritten sequence to the
// pivot partitions. Each partition is mined locally with the pivot-restricted
// DESQ-DFS miner.
package dseq

import (
	"fmt"

	"seqmine/internal/dict"
	"seqmine/internal/dminer"
	"seqmine/internal/fst"
	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
	"seqmine/internal/pivot"
)

// Options toggles the individual enhancements of D-SEQ; they correspond to
// the ablation study of Fig. 10a.
type Options struct {
	// UseGrid enables the position–state grid during pivot search. Without
	// it, pivots are found by enumerating all accepting runs.
	UseGrid bool
	// Rewrite enables sending rewritten (shortened) input sequences instead
	// of the full sequences.
	Rewrite bool
	// EarlyStopping enables the local-mining heuristic that stops growing
	// prefixes that can no longer contain the pivot item.
	EarlyStopping bool
	// Aggregate merges identical (rewritten) sequences sent to the same
	// partition by a map worker into a single weighted record.
	Aggregate bool
	// Prefilter enables the two-pass trick of the paper: map workers run a
	// cheap backward reachability scan (fst.Flat.CanAccept) and skip the full
	// pivot analysis for sequences without any accepting run. Such sequences
	// have no pivots, so the mined output is byte-identical either way.
	Prefilter bool
	// Spill bounds the shuffle's memory: past Spill.SpillThreshold buffered
	// bytes a peer spills sorted runs to temp-file segments (the same varint
	// wire encoding the TCP shuffle uses) that the reduce phase
	// merge-streams, and with Spill.SendBufferBytes > 0 map workers stream
	// through bounded per-peer send buffers instead of a phase barrier
	// (optionally compressing segments with Spill.Compression). The zero
	// value keeps the shuffle in memory behind the barrier. When set it
	// overrides the engine config's Shuffle field.
	Spill mapreduce.ShuffleConfig
}

// DefaultOptions enables all enhancements.
func DefaultOptions() Options {
	return Options{UseGrid: true, Rewrite: true, EarlyStopping: true, Aggregate: true}
}

// value is the communicated record: a (possibly rewritten) input sequence
// with a weight. It is the miner's weighted-sequence type, so a reduce
// partition feeds MineDFS directly without a per-record conversion copy.
type value = miner.WeightedSequence

// codec is the wire encoding of one D-SEQ shuffle record: the pivot key and
// each value as varints (weight, item count, items). The same encoding backs
// the honest SizeOf estimate of in-process runs.
func codec() mapreduce.FrameCodec[dict.ItemID, value] {
	return mapreduce.FrameCodec[dict.ItemID, value]{
		AppendKey: func(buf []byte, k dict.ItemID) []byte {
			return mapreduce.AppendUvarint(buf, uint64(k))
		},
		ReadKey: func(data []byte, pos int) (dict.ItemID, int, error) {
			v, pos, err := mapreduce.ReadUvarint(data, pos)
			return dict.ItemID(v), pos, err
		},
		AppendValue: func(buf []byte, v value) []byte {
			buf = mapreduce.AppendUvarint(buf, uint64(v.Weight))
			buf = mapreduce.AppendUvarint(buf, uint64(len(v.Items)))
			for _, w := range v.Items {
				buf = mapreduce.AppendUvarint(buf, uint64(w))
			}
			return buf
		},
		ReadValue: func(data []byte, pos int) (value, int, error) {
			var v value
			weight, pos, err := mapreduce.ReadUvarint(data, pos)
			if err != nil {
				return v, 0, err
			}
			n, pos, err := mapreduce.ReadUvarint(data, pos)
			if err != nil {
				return v, 0, err
			}
			if n > uint64(len(data)-pos) {
				return v, 0, fmt.Errorf("dseq: sequence claims %d items in %d bytes", n, len(data)-pos)
			}
			v.Weight = int64(weight)
			v.Items = make([]dict.ItemID, n)
			for i := range v.Items {
				w, np, err := mapreduce.ReadUvarint(data, pos)
				if err != nil {
					return v, 0, err
				}
				pos = np
				v.Items[i] = dict.ItemID(w)
			}
			return v, pos, nil
		},
	}
}

// recordSize is the exact single-record wire size of (k, v) — the honest
// per-record contribution to ShuffleBytes.
func recordSize(k dict.ItemID, v value) int {
	size := mapreduce.UvarintLen(uint64(k)) + mapreduce.UvarintLen(1) +
		mapreduce.UvarintLen(uint64(v.Weight)) + mapreduce.UvarintLen(uint64(len(v.Items)))
	for _, w := range v.Items {
		size += mapreduce.UvarintLen(uint64(w))
	}
	return size
}

// Mine runs D-SEQ on the database and returns all frequent sequences together
// with the engine metrics. It panics on failure; a run can only fail when the
// shuffle is bounded (Options.Spill / cfg.Shuffle), so callers that bound it
// should prefer MineLocal.
func Mine(f *fst.FST, db [][]dict.ItemID, sigma int64, opts Options, cfg mapreduce.Config) ([]miner.Pattern, mapreduce.Metrics) {
	return dminer.Mine("dseq", db, cfg, opts.Spill, buildJob(f, sigma, opts))
}

// MineLocal is Mine with error reporting: bounded-shuffle failures (the only
// way an in-process run can fail) are returned instead of panicking.
func MineLocal(f *fst.FST, db [][]dict.ItemID, sigma int64, opts Options, cfg mapreduce.Config) ([]miner.Pattern, mapreduce.Metrics, error) {
	return dminer.MineLocal(db, cfg, opts.Spill, buildJob(f, sigma, opts))
}

// MinePeer runs this process's share of a distributed D-SEQ job: split is the
// local input partition and bx the wire fabric connecting the participating
// processes (internal/transport). The returned patterns are those of the
// pivot partitions this peer owns; the union over all peers equals Mine's
// output on the whole database. Metrics are local to this peer, with
// ShuffleBytes measuring real transport traffic.
func MinePeer(f *fst.FST, split [][]dict.ItemID, sigma int64, opts Options, cfg mapreduce.Config, bx mapreduce.ByteExchange) ([]miner.Pattern, mapreduce.Metrics, error) {
	return dminer.MinePeer(split, cfg, opts.Spill, buildJob(f, sigma, opts), codec(), bx)
}

// buildJob assembles the one-round BSP job of D-SEQ.
func buildJob(f *fst.FST, sigma int64, opts Options) mapreduce.Job[[]dict.ItemID, dict.ItemID, value, miner.Pattern] {
	searcher := pivot.NewSearcher(f, sigma, pivot.Options{UseGrid: opts.UseGrid})
	var flat *fst.Flat
	if opts.Prefilter {
		flat = f.Flatten()
	}

	job := mapreduce.Job[[]dict.ItemID, dict.ItemID, value, miner.Pattern]{
		Map: func(T []dict.ItemID, emit func(dict.ItemID, value)) {
			if flat != nil && !flat.CanAccept(T) {
				return
			}
			analysis := searcher.Analyze(T)
			for _, k := range analysis.Pivots {
				rho := T
				if opts.Rewrite {
					rho = searcher.Rewrite(T, analysis, k)
				}
				emit(k, value{Items: rho, Weight: 1})
			}
		},
		Reduce: func(k dict.ItemID, vs []value, emit func(miner.Pattern)) {
			patterns := miner.MineDFS(f, vs, sigma, miner.DFSOptions{
				Pivot:         k,
				EarlyStopping: opts.EarlyStopping,
				Prefilter:     opts.Prefilter,
			})
			for _, p := range patterns {
				emit(p)
			}
		},
		Hash:   func(k dict.ItemID) uint64 { return mapreduce.HashUint64(uint64(k)) },
		SizeOf: recordSize,
	}
	c := codec()
	job.Codec = &c
	if opts.Aggregate {
		job.Combine = dminer.GroupCombiner[dict.ItemID](
			func(buf []byte, v value) []byte { return dict.AppendPackedKey(buf, v.Items) },
			func(dst *value, src value) { dst.Weight += src.Weight },
		)
	}

	return job
}
