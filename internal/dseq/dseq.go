// Package dseq implements D-SEQ (Sec. V of the paper): distributed frequent
// sequence mining with item-based partitioning and sequence representation.
// The map phase determines the pivot items K(T) of each input sequence with
// the position–state grid, rewrites the sequence per pivot (dropping leading
// and trailing irrelevant positions) and sends the rewritten sequence to the
// pivot partitions. Each partition is mined locally with the pivot-restricted
// DESQ-DFS miner.
package dseq

import (
	"seqmine/internal/dict"
	"seqmine/internal/fst"
	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
	"seqmine/internal/pivot"
)

// Options toggles the individual enhancements of D-SEQ; they correspond to
// the ablation study of Fig. 10a.
type Options struct {
	// UseGrid enables the position–state grid during pivot search. Without
	// it, pivots are found by enumerating all accepting runs.
	UseGrid bool
	// Rewrite enables sending rewritten (shortened) input sequences instead
	// of the full sequences.
	Rewrite bool
	// EarlyStopping enables the local-mining heuristic that stops growing
	// prefixes that can no longer contain the pivot item.
	EarlyStopping bool
	// Aggregate merges identical (rewritten) sequences sent to the same
	// partition by a map worker into a single weighted record.
	Aggregate bool
}

// DefaultOptions enables all enhancements.
func DefaultOptions() Options {
	return Options{UseGrid: true, Rewrite: true, EarlyStopping: true, Aggregate: true}
}

// value is the communicated record: a (possibly rewritten) input sequence
// with a weight.
type value struct {
	items  []dict.ItemID
	weight int64
}

// Mine runs D-SEQ on the database and returns all frequent sequences together
// with the engine metrics.
func Mine(f *fst.FST, db [][]dict.ItemID, sigma int64, opts Options, cfg mapreduce.Config) ([]miner.Pattern, mapreduce.Metrics) {
	searcher := pivot.NewSearcher(f, sigma, pivot.Options{UseGrid: opts.UseGrid})

	job := mapreduce.Job[[]dict.ItemID, dict.ItemID, value, miner.Pattern]{
		Map: func(T []dict.ItemID, emit func(dict.ItemID, value)) {
			analysis := searcher.Analyze(T)
			for _, k := range analysis.Pivots {
				rho := T
				if opts.Rewrite {
					rho = searcher.Rewrite(T, analysis, k)
				}
				emit(k, value{items: rho, weight: 1})
			}
		},
		Reduce: func(k dict.ItemID, vs []value, emit func(miner.Pattern)) {
			part := make([]miner.WeightedSequence, len(vs))
			for i, v := range vs {
				part[i] = miner.WeightedSequence{Items: v.items, Weight: v.weight}
			}
			patterns := miner.MineDFS(f, part, sigma, miner.DFSOptions{
				Pivot:         k,
				EarlyStopping: opts.EarlyStopping,
			})
			for _, p := range patterns {
				emit(p)
			}
		},
		Hash:   func(k dict.ItemID) uint64 { return mapreduce.HashUint64(uint64(k)) },
		SizeOf: func(_ dict.ItemID, v value) int { return sequenceSize(v.items) + 2 },
	}
	if opts.Aggregate {
		job.Combine = func(_ dict.ItemID, vs []value) []value {
			grouped := map[string]*value{}
			order := make([]string, 0, len(vs))
			for _, v := range vs {
				key := seqKey(v.items)
				if g, ok := grouped[key]; ok {
					g.weight += v.weight
					continue
				}
				vc := v
				grouped[key] = &vc
				order = append(order, key)
			}
			out := make([]value, 0, len(grouped))
			for _, key := range order {
				out = append(out, *grouped[key])
			}
			return out
		}
	}

	out, metrics := mapreduce.Run(db, cfg, job)
	miner.SortPatterns(out)
	return out, metrics
}

// sequenceSize estimates the varint-serialized size of a sequence in bytes.
func sequenceSize(seq []dict.ItemID) int {
	size := 1
	for _, w := range seq {
		switch {
		case w < 1<<7:
			size++
		case w < 1<<14:
			size += 2
		case w < 1<<21:
			size += 3
		default:
			size += 5
		}
	}
	return size
}

func seqKey(seq []dict.ItemID) string {
	buf := make([]byte, 0, len(seq)*4)
	for _, w := range seq {
		buf = append(buf, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return string(buf)
}
