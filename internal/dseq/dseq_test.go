package dseq_test

import (
	"math/rand"
	"reflect"
	"testing"

	"seqmine/internal/datagen"
	"seqmine/internal/dict"
	"seqmine/internal/dseq"
	"seqmine/internal/fst"
	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
	"seqmine/internal/paperex"
)

func TestDSeqRunningExample(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	db := paperex.DB(d)
	got, metrics := dseq.Mine(f, db, paperex.Sigma, dseq.DefaultOptions(), mapreduce.Config{MapWorkers: 2, ReduceWorkers: 2})
	if m := miner.PatternsToMap(d, got); !reflect.DeepEqual(m, paperex.ExpectedFrequent()) {
		t.Errorf("D-SEQ = %v, want %v", m, paperex.ExpectedFrequent())
	}
	// T1 is relevant for partitions a1 and c; T2 and T5 for a1; T3 and T4 for
	// none. Without the combiner that is 4 shuffled sequences over 2
	// partitions.
	if metrics.Partitions != 2 {
		t.Errorf("Partitions = %d, want 2", metrics.Partitions)
	}
	if metrics.MapOutputRecords != 4 {
		t.Errorf("MapOutputRecords = %d, want 4", metrics.MapOutputRecords)
	}
}

func TestDSeqRewriteReducesShuffle(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	db := paperex.DB(d)
	cfg := mapreduce.Config{MapWorkers: 1, ReduceWorkers: 1}
	withRewrite := dseq.DefaultOptions()
	withRewrite.Aggregate = false
	noRewrite := withRewrite
	noRewrite.Rewrite = false
	_, m1 := dseq.Mine(f, db, paperex.Sigma, withRewrite, cfg)
	_, m2 := dseq.Mine(f, db, paperex.Sigma, noRewrite, cfg)
	// Rewriting trims the two leading "e e" items of T2 for partition a1.
	if m1.ShuffleBytes >= m2.ShuffleBytes {
		t.Errorf("rewriting should reduce shuffle size: %d vs %d", m1.ShuffleBytes, m2.ShuffleBytes)
	}
}

func TestDSeqOptionCombinations(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	db := paperex.DB(d)
	cfg := mapreduce.Config{MapWorkers: 3, ReduceWorkers: 3}
	want := paperex.ExpectedFrequent()
	for _, grid := range []bool{false, true} {
		for _, rewrite := range []bool{false, true} {
			for _, early := range []bool{false, true} {
				for _, agg := range []bool{false, true} {
					opts := dseq.Options{UseGrid: grid, Rewrite: rewrite, EarlyStopping: early, Aggregate: agg}
					got, _ := dseq.Mine(f, db, paperex.Sigma, opts, cfg)
					if m := miner.PatternsToMap(d, got); !reflect.DeepEqual(m, want) {
						t.Errorf("options %+v: %v, want %v", opts, m, want)
					}
				}
			}
		}
	}
}

// TestDSeqMatchesSequential is the central integration property: D-SEQ must
// produce exactly the sequential DESQ-DFS result on random databases, for
// several constraints, thresholds and worker counts.
func TestDSeqMatchesSequential(t *testing.T) {
	d := paperex.Dict()
	patterns := []string{
		paperex.PatternExpression,
		"[.*(.)]{1,3}.*",
		".*(A^)[.{0,1}(.^)]{1,2}.*",
		".*(d) .* (b).*",
	}
	rng := rand.New(rand.NewSource(31))
	for _, pat := range patterns {
		f := fst.MustCompile(pat, d)
		for trial := 0; trial < 3; trial++ {
			db := make([][]dict.ItemID, 25)
			for i := range db {
				n := rng.Intn(7) + 1
				seq := make([]dict.ItemID, n)
				for j := range seq {
					seq[j] = dict.ItemID(rng.Intn(d.Size()) + 1)
				}
				db[i] = seq
			}
			for _, sigma := range []int64{1, 2, 4} {
				want := miner.PatternsToMap(d, miner.MineDFS(f, miner.Weighted(db), sigma, miner.DFSOptions{}))
				for _, workers := range []int{1, 4} {
					got, _ := dseq.Mine(f, db, sigma, dseq.DefaultOptions(),
						mapreduce.Config{MapWorkers: workers, ReduceWorkers: workers})
					if m := miner.PatternsToMap(d, got); !reflect.DeepEqual(m, want) {
						t.Fatalf("pattern %q sigma %d workers %d: D-SEQ %v != sequential %v",
							pat, sigma, workers, m, want)
					}
				}
				// Ablation variants must not change the result either.
				minimal := dseq.Options{UseGrid: false, Rewrite: false, EarlyStopping: false, Aggregate: false}
				got, _ := dseq.Mine(f, db, sigma, minimal, mapreduce.Config{MapWorkers: 2, ReduceWorkers: 2})
				if m := miner.PatternsToMap(d, got); !reflect.DeepEqual(m, want) {
					t.Fatalf("pattern %q sigma %d minimal options: %v != %v", pat, sigma, m, want)
				}
			}
		}
	}
}

func TestDSeqEmptyDatabase(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	got, metrics := dseq.Mine(f, nil, 1, dseq.DefaultOptions(), mapreduce.Config{})
	if len(got) != 0 || metrics.ShuffleRecords != 0 {
		t.Errorf("empty database: got %v, metrics %+v", got, metrics)
	}
}

// TestDSeqSpillEquivalence mines a dataset whose shuffle footprint exceeds
// the spill threshold by well over 10x and asserts the spilling run produces
// byte-identical patterns to the in-memory run.
func TestDSeqSpillEquivalence(t *testing.T) {
	db, err := datagen.NYT(datagen.NYTConfig{NumSentences: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	f := fst.MustCompile("[.*(.)]{1,3}.*", db.Dict)
	const sigma = 30
	cfg := mapreduce.Config{MapWorkers: 2, ReduceWorkers: 2}

	want, wantMetrics := dseq.Mine(f, db.Sequences, sigma, dseq.DefaultOptions(), cfg)
	if len(want) == 0 {
		t.Fatal("reference run found no patterns; the equivalence test is vacuous")
	}

	const threshold = 1024
	opts := dseq.DefaultOptions()
	opts.Spill = mapreduce.ShuffleConfig{SpillThreshold: threshold, TmpDir: t.TempDir()}
	got, metrics, err := dseq.MineLocal(f, db.Sequences, sigma, opts, cfg)
	if err != nil {
		t.Fatalf("MineLocal: %v", err)
	}

	if !reflect.DeepEqual(got, want) {
		t.Errorf("spilling run differs: %d patterns vs %d", len(got), len(want))
	}
	if metrics.SpilledBytes == 0 || metrics.SpillCount == 0 {
		t.Fatalf("expected spilling at threshold %d: %+v", threshold, metrics)
	}
	if metrics.ShuffleBytes < 10*threshold {
		t.Fatalf("shuffle footprint %d bytes does not exceed threshold %d by 10x; grow the dataset", metrics.ShuffleBytes, threshold)
	}
	if metrics.Partitions != wantMetrics.Partitions {
		t.Errorf("partitions: got %d want %d", metrics.Partitions, wantMetrics.Partitions)
	}
}

// TestDSeqStreamingEquivalence asserts the streaming pipelined shuffle (tiny
// send buffers, with and without spill + compression) produces byte-identical
// patterns to the barrier run.
func TestDSeqStreamingEquivalence(t *testing.T) {
	db, err := datagen.NYT(datagen.NYTConfig{NumSentences: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	f := fst.MustCompile("[.*(.)]{1,3}.*", db.Dict)
	const sigma = 30
	cfg := mapreduce.Config{MapWorkers: 2, ReduceWorkers: 2}
	want, _ := dseq.Mine(f, db.Sequences, sigma, dseq.DefaultOptions(), cfg)
	if len(want) == 0 {
		t.Fatal("reference run found no patterns; the equivalence test is vacuous")
	}

	cases := map[string]mapreduce.ShuffleConfig{
		"streaming":               {SendBufferBytes: 512},
		"streaming+spill":         {SendBufferBytes: 512, SpillThreshold: 1024},
		"streaming+spill+deflate": {SendBufferBytes: 512, SpillThreshold: 1024, Compression: true},
	}
	for name, sc := range cases {
		sc.TmpDir = t.TempDir()
		opts := dseq.DefaultOptions()
		opts.Spill = sc
		got, metrics, err := dseq.MineLocal(f, db.Sequences, sigma, opts, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: streaming run differs: %d patterns vs %d", name, len(got), len(want))
		}
		if metrics.StreamedBatches == 0 {
			t.Errorf("%s: expected streamed batches, got %+v", name, metrics)
		}
	}
}
