package dseq

import (
	"reflect"
	"testing"

	"seqmine/internal/dict"
	"seqmine/internal/fst"
	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
	"seqmine/internal/paperex"
)

// FuzzSequenceBatchCodec checks the D-SEQ shuffle codec: arbitrary frames
// must fail cleanly, and decoded frames must re-encode to the same bytes.
func FuzzSequenceBatchCodec(f *testing.F) {
	c := codec()
	seed := c.EncodeBatch(nil, mapreduce.KeyBatch[dict.ItemID, value]{
		Key: 7,
		Values: []value{
			{Items: []dict.ItemID{1, 2, 300}, Weight: 4},
			{Items: nil, Weight: 1},
		},
	})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0x07, 0x01, 0x01, 0xff})
	f.Fuzz(func(t *testing.T, frame []byte) {
		b, err := c.DecodeBatch(frame)
		if err != nil {
			return
		}
		// A decodable frame must survive a re-encode/re-decode round trip
		// structurally (byte equality would be too strong: the reader
		// tolerates non-canonical varints).
		re := c.EncodeBatch(nil, b)
		b2, err := c.DecodeBatch(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v (frame %x)", err, re)
		}
		if !reflect.DeepEqual(b, b2) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", b2, b)
		}
		// The honest SizeOf must equal the actual encoding of each record.
		for _, v := range b.Values {
			single := c.EncodeBatch(nil, mapreduce.KeyBatch[dict.ItemID, value]{Key: b.Key, Values: []value{v}})
			if got := recordSize(b.Key, v); got != len(single) {
				t.Fatalf("recordSize = %d, actual encoding = %d bytes", got, len(single))
			}
		}
	})
}

// FuzzPrefilterEquivalence derives a small database from the fuzz input and
// cross-checks the flattened two-pass prefilter against the original pointer
// simulation end to end: a D-SEQ run with Options.Prefilter must produce
// exactly the pattern set of the unfiltered run. Any divergence means the
// flat reachability scan (fst.Flat.CanAccept) disagrees with the FST it was
// flattened from.
func FuzzPrefilterEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 4, 5})
	f.Add([]byte{})
	f.Add([]byte{7, 7, 7, 0, 7, 0, 1, 2})
	d := paperex.Dict()
	fm := fst.MustCompile(paperex.PatternExpression, d)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 48 {
			data = data[:48]
		}
		// 0 terminates a sequence; other bytes pick items of the vocabulary.
		var db [][]dict.ItemID
		var seq []dict.ItemID
		for _, c := range data {
			if c == 0 {
				db = append(db, seq)
				seq = nil
				continue
			}
			seq = append(seq, dict.ItemID(int(c)%d.Size()+1))
		}
		db = append(db, seq)

		cfg := mapreduce.Config{MapWorkers: 1, ReduceWorkers: 1}
		plain := DefaultOptions()
		pre := DefaultOptions()
		pre.Prefilter = true
		for _, sigma := range []int64{1, 2} {
			want, _, err := MineLocal(fm, db, sigma, plain, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := MineLocal(fm, db, sigma, pre, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(miner.PatternsToMap(d, got), miner.PatternsToMap(d, want)) {
				t.Fatalf("sigma %d: prefiltered D-SEQ differs:\n got %v\nwant %v (db=%v)",
					sigma, miner.PatternsToMap(d, got), miner.PatternsToMap(d, want), db)
			}
		}
	})
}
