package dseq_test

import (
	"reflect"
	"sync"
	"testing"

	"seqmine/internal/dict"
	"seqmine/internal/dseq"
	"seqmine/internal/fst"
	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
	"seqmine/internal/paperex"
	"seqmine/internal/transport"
)

// TestDSeqMinePeerMatchesMine runs D-SEQ across three processes' worth of
// transport nodes on localhost and checks that the union of the per-peer
// pattern sets is byte-identical to the in-process engine's output.
func TestDSeqMinePeerMatchesMine(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	db := paperex.DB(d)
	want, _ := dseq.Mine(f, db, paperex.Sigma, dseq.DefaultOptions(), mapreduce.Config{})

	const npeers = 3
	nodes := make([]*transport.Node, npeers)
	addrs := make([]string, npeers)
	for i := range nodes {
		node, err := transport.NewNode("127.0.0.1:0", transport.Config{})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		defer node.Close()
		nodes[i] = node
		addrs[i] = node.Addr()
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		union    []miner.Pattern
		wireOut  int64
		firstErr error
	)
	for p := 0; p < npeers; p++ {
		var split [][]dict.ItemID
		for i := p; i < len(db); i += npeers {
			split = append(split, db[i])
		}
		wg.Add(1)
		go func(p int, split [][]dict.ItemID) {
			defer wg.Done()
			bx, err := nodes[p].OpenExchange("dseq-test", p, addrs)
			if err == nil {
				defer bx.Close()
				var (
					local []miner.Pattern
					m     mapreduce.Metrics
				)
				local, m, err = dseq.MinePeer(f, split, paperex.Sigma, dseq.DefaultOptions(), mapreduce.Config{MapWorkers: 2, ReduceWorkers: 2}, bx)
				mu.Lock()
				union = append(union, local...)
				wireOut += m.ShuffleBytes
				if !m.RemoteShuffle {
					t.Errorf("peer %d: metrics should be marked RemoteShuffle", p)
				}
				mu.Unlock()
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(p, split)
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatalf("distributed run: %v", firstErr)
	}
	miner.SortPatterns(union)
	if !reflect.DeepEqual(miner.PatternsToMap(d, union), miner.PatternsToMap(d, want)) {
		t.Errorf("distributed D-SEQ = %v, want %v", miner.PatternsToMap(d, union), miner.PatternsToMap(d, want))
	}
	if wireOut <= 0 {
		t.Errorf("expected positive wire ShuffleBytes, got %d", wireOut)
	}
}
