package dcand_test

import (
	"math/rand"
	"reflect"
	"testing"

	"seqmine/internal/datagen"
	"seqmine/internal/dcand"
	"seqmine/internal/dict"
	"seqmine/internal/fst"
	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
	"seqmine/internal/paperex"
)

func TestDCandRunningExample(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	db := paperex.DB(d)
	got, metrics := dcand.Mine(f, db, paperex.Sigma, dcand.DefaultOptions(), mapreduce.Config{MapWorkers: 2, ReduceWorkers: 2})
	if m := miner.PatternsToMap(d, got); !reflect.DeepEqual(m, paperex.ExpectedFrequent()) {
		t.Errorf("D-CAND = %v, want %v", m, paperex.ExpectedFrequent())
	}
	// Partitions a1 and c receive NFAs (same item-based partitioning as
	// D-SEQ, Fig. 3).
	if metrics.Partitions != 2 {
		t.Errorf("Partitions = %d, want 2", metrics.Partitions)
	}
	if metrics.MapOutputRecords != 4 {
		t.Errorf("MapOutputRecords = %d, want 4 NFAs", metrics.MapOutputRecords)
	}
}

func TestDCandAggregationReducesShuffle(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	// Many identical sequences produce identical NFAs which the combiner
	// aggregates into a single weighted NFA.
	var db [][]dict.ItemID
	t5, _ := d.EncodeSequence([]string{"a1", "a1", "b"})
	for i := 0; i < 50; i++ {
		db = append(db, t5)
	}
	cfg := mapreduce.Config{MapWorkers: 1, ReduceWorkers: 1}
	withAgg := dcand.DefaultOptions()
	noAgg := dcand.Options{Minimize: true, Aggregate: false}
	res1, m1 := dcand.Mine(f, db, 2, withAgg, cfg)
	res2, m2 := dcand.Mine(f, db, 2, noAgg, cfg)
	if !reflect.DeepEqual(miner.PatternsToMap(d, res1), miner.PatternsToMap(d, res2)) {
		t.Fatalf("aggregation changed results: %v vs %v", res1, res2)
	}
	if m1.ShuffleRecords != 1 {
		t.Errorf("with aggregation: ShuffleRecords = %d, want 1", m1.ShuffleRecords)
	}
	if m2.ShuffleRecords != 50 {
		t.Errorf("without aggregation: ShuffleRecords = %d, want 50", m2.ShuffleRecords)
	}
	if m1.ShuffleBytes >= m2.ShuffleBytes {
		t.Errorf("aggregation should reduce shuffle bytes: %d vs %d", m1.ShuffleBytes, m2.ShuffleBytes)
	}
	if got := miner.PatternsToMap(d, res1); got["a1 a1 b"] != 50 {
		t.Errorf("aggregated counting wrong: %v", got)
	}
}

func TestDCandMinimizeReducesShuffle(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	// Many copies of T1: its pivot-c NFA is the Fig. 7 automaton, where
	// suffix sharing pays off (13/12 trie vs 7/10 minimized).
	t1, _ := d.EncodeSequence([]string{"a1", "c", "d", "c", "b"})
	var db [][]dict.ItemID
	for i := 0; i < 20; i++ {
		db = append(db, t1)
	}
	cfg := mapreduce.Config{MapWorkers: 1, ReduceWorkers: 1}
	res1, m1 := dcand.Mine(f, db, paperex.Sigma, dcand.Options{Minimize: true, Aggregate: false}, cfg)
	res2, m2 := dcand.Mine(f, db, paperex.Sigma, dcand.Options{Minimize: false, Aggregate: false}, cfg)
	if !reflect.DeepEqual(miner.PatternsToMap(d, res1), miner.PatternsToMap(d, res2)) {
		t.Fatalf("minimization changed results")
	}
	if m1.ShuffleBytes >= m2.ShuffleBytes {
		t.Errorf("minimization should reduce shuffle bytes: %d vs %d", m1.ShuffleBytes, m2.ShuffleBytes)
	}
}

func TestDCandOptionCombinations(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	db := paperex.DB(d)
	want := paperex.ExpectedFrequent()
	for _, minimize := range []bool{false, true} {
		for _, agg := range []bool{false, true} {
			opts := dcand.Options{Minimize: minimize, Aggregate: agg}
			got, _ := dcand.Mine(f, db, paperex.Sigma, opts, mapreduce.Config{MapWorkers: 3, ReduceWorkers: 2})
			if m := miner.PatternsToMap(d, got); !reflect.DeepEqual(m, want) {
				t.Errorf("options %+v: %v, want %v", opts, m, want)
			}
		}
	}
}

// TestDCandMatchesSequential: D-CAND must produce exactly the sequential
// DESQ-DFS result on random databases.
func TestDCandMatchesSequential(t *testing.T) {
	d := paperex.Dict()
	patterns := []string{
		paperex.PatternExpression,
		"[.*(.)]{1,3}.*",
		".*(A^)[.{0,1}(.^)]{1,2}.*",
		".*(d) .* (b).*",
	}
	rng := rand.New(rand.NewSource(37))
	for _, pat := range patterns {
		f := fst.MustCompile(pat, d)
		for trial := 0; trial < 3; trial++ {
			db := make([][]dict.ItemID, 25)
			for i := range db {
				n := rng.Intn(7) + 1
				seq := make([]dict.ItemID, n)
				for j := range seq {
					seq[j] = dict.ItemID(rng.Intn(d.Size()) + 1)
				}
				db[i] = seq
			}
			for _, sigma := range []int64{1, 2, 4} {
				want := miner.PatternsToMap(d, miner.MineDFS(f, miner.Weighted(db), sigma, miner.DFSOptions{}))
				for _, workers := range []int{1, 4} {
					got, _ := dcand.Mine(f, db, sigma, dcand.DefaultOptions(),
						mapreduce.Config{MapWorkers: workers, ReduceWorkers: workers})
					if m := miner.PatternsToMap(d, got); !reflect.DeepEqual(m, want) {
						t.Fatalf("pattern %q sigma %d workers %d: D-CAND %v != sequential %v",
							pat, sigma, workers, m, want)
					}
				}
			}
		}
	}
}

func TestDCandEmptyDatabase(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	got, metrics := dcand.Mine(f, nil, 1, dcand.DefaultOptions(), mapreduce.Config{})
	if len(got) != 0 || metrics.ShuffleRecords != 0 {
		t.Errorf("empty database: got %v, metrics %+v", got, metrics)
	}
}

// TestDCandSpillEquivalence mines a dataset whose shuffle footprint exceeds
// the spill threshold by well over 10x and asserts the spilling run produces
// byte-identical patterns to the in-memory run.
func TestDCandSpillEquivalence(t *testing.T) {
	db, err := datagen.NYT(datagen.NYTConfig{NumSentences: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	f := fst.MustCompile("[.*(.)]{1,3}.*", db.Dict)
	const sigma = 30
	cfg := mapreduce.Config{MapWorkers: 2, ReduceWorkers: 2}

	want, wantMetrics := dcand.Mine(f, db.Sequences, sigma, dcand.DefaultOptions(), cfg)
	if len(want) == 0 {
		t.Fatal("reference run found no patterns; the equivalence test is vacuous")
	}

	const threshold = 1024
	opts := dcand.DefaultOptions()
	opts.Spill = mapreduce.ShuffleConfig{SpillThreshold: threshold, TmpDir: t.TempDir()}
	got, metrics, err := dcand.MineLocal(f, db.Sequences, sigma, opts, cfg)
	if err != nil {
		t.Fatalf("MineLocal: %v", err)
	}

	if !reflect.DeepEqual(got, want) {
		t.Errorf("spilling run differs: %d patterns vs %d", len(got), len(want))
	}
	if metrics.SpilledBytes == 0 || metrics.SpillCount == 0 {
		t.Fatalf("expected spilling at threshold %d: %+v", threshold, metrics)
	}
	if metrics.ShuffleBytes < 10*threshold {
		t.Fatalf("shuffle footprint %d bytes does not exceed threshold %d by 10x; grow the dataset", metrics.ShuffleBytes, threshold)
	}
	if metrics.Partitions != wantMetrics.Partitions {
		t.Errorf("partitions: got %d want %d", metrics.Partitions, wantMetrics.Partitions)
	}
}

// TestDCandStreamingEquivalence asserts the streaming pipelined shuffle (tiny
// send buffers, with and without spill + compression) produces byte-identical
// patterns to the barrier run.
func TestDCandStreamingEquivalence(t *testing.T) {
	db, err := datagen.NYT(datagen.NYTConfig{NumSentences: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	f := fst.MustCompile("[.*(.)]{1,3}.*", db.Dict)
	const sigma = 30
	cfg := mapreduce.Config{MapWorkers: 2, ReduceWorkers: 2}
	want, _ := dcand.Mine(f, db.Sequences, sigma, dcand.DefaultOptions(), cfg)
	if len(want) == 0 {
		t.Fatal("reference run found no patterns; the equivalence test is vacuous")
	}

	cases := map[string]mapreduce.ShuffleConfig{
		"streaming":               {SendBufferBytes: 512},
		"streaming+spill":         {SendBufferBytes: 512, SpillThreshold: 1024},
		"streaming+spill+deflate": {SendBufferBytes: 512, SpillThreshold: 1024, Compression: true},
	}
	for name, sc := range cases {
		sc.TmpDir = t.TempDir()
		opts := dcand.DefaultOptions()
		opts.Spill = sc
		got, metrics, err := dcand.MineLocal(f, db.Sequences, sigma, opts, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: streaming run differs: %d patterns vs %d", name, len(got), len(want))
		}
		if metrics.StreamedBatches == 0 {
			t.Errorf("%s: expected streamed batches, got %+v", name, metrics)
		}
	}
}
