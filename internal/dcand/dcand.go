// Package dcand implements D-CAND (Sec. VI of the paper): distributed
// frequent sequence mining with item-based partitioning and candidate
// representation. The map phase enumerates the accepting runs of each input
// sequence, builds one NFA per pivot item that accepts exactly the pivot's
// candidate subsequences, minimizes the NFA and ships it in serialized form.
// A combiner aggregates identical NFAs into weighted NFAs. The reduce phase
// counts candidates directly on the compressed NFAs with a pattern-growth
// miner.
package dcand

import (
	"fmt"
	"sync"

	"seqmine/internal/dict"
	"seqmine/internal/dminer"
	"seqmine/internal/fst"
	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
	"seqmine/internal/nfa"
	"seqmine/internal/pivot"
)

// Options toggles the individual enhancements of D-CAND; they correspond to
// the ablation study of Fig. 10b.
type Options struct {
	// Minimize enables minimization of the per-pivot tries before
	// serialization. Without it, plain tries are shipped.
	Minimize bool
	// Aggregate enables the combiner that merges identical serialized NFAs
	// into a single weighted NFA.
	Aggregate bool
	// Prefilter enables the two-pass trick of the paper: map workers run a
	// cheap backward reachability scan (fst.Flat.CanAccept) and skip the run
	// enumeration for sequences without any accepting run. Such sequences
	// produce no NFAs, so the mined output is byte-identical either way.
	Prefilter bool
	// Spill bounds the shuffle's memory: past Spill.SpillThreshold buffered
	// bytes a peer spills sorted runs to temp-file segments (the same NFA
	// wire encoding the TCP shuffle uses) that the reduce phase
	// merge-streams, and with Spill.SendBufferBytes > 0 map workers stream
	// through bounded per-peer send buffers instead of a phase barrier
	// (optionally compressing segments with Spill.Compression). The zero
	// value keeps the shuffle in memory behind the barrier. When set it
	// overrides the engine config's Shuffle field.
	Spill mapreduce.ShuffleConfig
}

// DefaultOptions enables minimization and aggregation.
func DefaultOptions() Options { return Options{Minimize: true, Aggregate: true} }

// value is the communicated record: one serialized NFA and the number of
// input sequences it represents.
type value struct {
	data   []byte
	weight int64
}

// codec is the wire encoding of one D-CAND shuffle record: the pivot key as
// a varint and each value as weight varint, length varint and the serialized
// NFA bytes. The same encoding backs the honest SizeOf estimate of
// in-process runs.
func codec() mapreduce.FrameCodec[dict.ItemID, value] {
	return mapreduce.FrameCodec[dict.ItemID, value]{
		AppendKey: func(buf []byte, k dict.ItemID) []byte {
			return mapreduce.AppendUvarint(buf, uint64(k))
		},
		ReadKey: func(data []byte, pos int) (dict.ItemID, int, error) {
			v, pos, err := mapreduce.ReadUvarint(data, pos)
			return dict.ItemID(v), pos, err
		},
		AppendValue: func(buf []byte, v value) []byte {
			buf = mapreduce.AppendUvarint(buf, uint64(v.weight))
			buf = mapreduce.AppendUvarint(buf, uint64(len(v.data)))
			return append(buf, v.data...)
		},
		ReadValue: func(data []byte, pos int) (value, int, error) {
			var v value
			weight, pos, err := mapreduce.ReadUvarint(data, pos)
			if err != nil {
				return v, 0, err
			}
			n, pos, err := mapreduce.ReadUvarint(data, pos)
			if err != nil {
				return v, 0, err
			}
			if n > uint64(len(data)-pos) {
				return v, 0, fmt.Errorf("dcand: NFA claims %d bytes, %d left", n, len(data)-pos)
			}
			v.weight = int64(weight)
			v.data = append([]byte(nil), data[pos:pos+int(n)]...)
			return v, pos + int(n), nil
		},
	}
}

// mapScratch is the pooled per-call working memory of the map phase. The run
// enumeration is the hot loop of D-CAND: every accepting run filters its
// output sets, merges pivots and cuts one path per pivot, so all of that
// works out of reused buffers. Filtered sets and per-pivot paths are regions
// of one append-only arena (items) — a reallocation while appending leaves
// earlier regions intact in the old backing array, exactly like the pivot
// grid's arena. Builders are recycled across sequences via nfa.Builder.Reset,
// which is safe because every NFA a builder produced is serialized before the
// builder returns to the free list.
type mapScratch struct {
	builders map[dict.ItemID]*nfa.Builder
	free     []*nfa.Builder
	merge    pivot.MergeScratch
	filtered [][]dict.ItemID
	path     [][]dict.ItemID
	items    []dict.ItemID
}

var mapScratchPool = sync.Pool{New: func() any {
	return &mapScratch{builders: map[dict.ItemID]*nfa.Builder{}}
}}

func (sc *mapScratch) getBuilder() *nfa.Builder {
	if n := len(sc.free); n > 0 {
		b := sc.free[n-1]
		sc.free = sc.free[:n-1]
		return b
	}
	return nfa.NewBuilder()
}

func (sc *mapScratch) putBuilder(b *nfa.Builder) {
	b.Reset()
	sc.free = append(sc.free, b)
}

// recordSize is the exact single-record wire size of (k, v), replacing the
// earlier hard-coded `len(data) + 2 + 2` guess so ShuffleBytes stays honest
// across codecs.
func recordSize(k dict.ItemID, v value) int {
	return mapreduce.UvarintLen(uint64(k)) + mapreduce.UvarintLen(1) +
		mapreduce.UvarintLen(uint64(v.weight)) + mapreduce.UvarintLen(uint64(len(v.data))) + len(v.data)
}

// Mine runs D-CAND on the database and returns all frequent sequences
// together with the engine metrics. It panics on failure; a run can only
// fail when the shuffle is bounded (Options.Spill / cfg.Shuffle), so callers
// that bound it should prefer MineLocal.
func Mine(f *fst.FST, db [][]dict.ItemID, sigma int64, opts Options, cfg mapreduce.Config) ([]miner.Pattern, mapreduce.Metrics) {
	return dminer.Mine("dcand", db, cfg, opts.Spill, buildJob(f, sigma, opts))
}

// MineLocal is Mine with error reporting: bounded-shuffle failures (the only
// way an in-process run can fail) are returned instead of panicking.
func MineLocal(f *fst.FST, db [][]dict.ItemID, sigma int64, opts Options, cfg mapreduce.Config) ([]miner.Pattern, mapreduce.Metrics, error) {
	return dminer.MineLocal(db, cfg, opts.Spill, buildJob(f, sigma, opts))
}

// MinePeer runs this process's share of a distributed D-CAND job: split is
// the local input partition and bx the wire fabric connecting the
// participating processes (internal/transport). The returned patterns are
// those of the pivot partitions this peer owns; the union over all peers
// equals Mine's output on the whole database. Metrics are local to this
// peer, with ShuffleBytes measuring real transport traffic.
func MinePeer(f *fst.FST, split [][]dict.ItemID, sigma int64, opts Options, cfg mapreduce.Config, bx mapreduce.ByteExchange) ([]miner.Pattern, mapreduce.Metrics, error) {
	return dminer.MinePeer(split, cfg, opts.Spill, buildJob(f, sigma, opts), codec(), bx)
}

// buildJob assembles the one-round BSP job of D-CAND.
func buildJob(f *fst.FST, sigma int64, opts Options) mapreduce.Job[[]dict.ItemID, dict.ItemID, value, miner.Pattern] {
	d := f.Dict()
	var flat *fst.Flat
	if opts.Prefilter {
		flat = f.Flatten()
	}
	// For frequency-sorted dictionaries (every Builder-built dictionary) the
	// per-output frequency check is one compare against the largest frequent
	// fid, hoisted out of the run enumeration.
	byFid := sigma > 0 && d.FrequencySorted()
	var limit dict.ItemID
	if byFid {
		limit = d.MaxFrequentFid(sigma)
	}
	frequent := func(w dict.ItemID) bool {
		if byFid {
			return w <= limit
		}
		return d.IsFrequent(w, sigma)
	}

	job := mapreduce.Job[[]dict.ItemID, dict.ItemID, value, miner.Pattern]{
		Map: func(T []dict.ItemID, emit func(dict.ItemID, value)) {
			if flat != nil && !flat.CanAccept(T) {
				return
			}
			sc := mapScratchPool.Get().(*mapScratch)
			f.ForEachRun(T, func(outputs [][]dict.ItemID) bool {
				// Filter infrequent items from the output sets; skip the run
				// if a position retains no output choice.
				sc.filtered = sc.filtered[:0]
				sc.items = sc.items[:0]
				for _, set := range outputs {
					if set == nil {
						sc.filtered = append(sc.filtered, nil)
						continue
					}
					off := len(sc.items)
					for _, w := range set {
						if frequent(w) {
							sc.items = append(sc.items, w)
						}
					}
					if len(sc.items) == off {
						return true // no Gσ candidate passes through this run
					}
					sc.filtered = append(sc.filtered, sc.items[off:len(sc.items):len(sc.items)])
				}
				// Pivot items of the run (Theorem 1).
				pivots := sc.merge.MergeAll(sc.filtered)
				for _, k := range pivots {
					mark := len(sc.items)
					sc.path = sc.path[:0]
					for _, set := range sc.filtered {
						if set == nil {
							continue
						}
						off := len(sc.items)
						for _, w := range set {
							if w <= k {
								sc.items = append(sc.items, w)
							}
						}
						if len(sc.items) > off {
							sc.path = append(sc.path, sc.items[off:len(sc.items):len(sc.items)])
						}
					}
					if len(sc.path) > 0 {
						b := sc.builders[k]
						if b == nil {
							b = sc.getBuilder()
							sc.builders[k] = b
						}
						// AddPath copies the labels into the builder's own
						// arena, so the path regions are free to be reused.
						b.AddPath(sc.path)
					}
					sc.items = sc.items[:mark]
				}
				return true
			})
			for k, b := range sc.builders {
				var automaton *nfa.NFA
				if opts.Minimize {
					automaton = b.Minimize()
				} else {
					automaton = b.Trie()
				}
				emit(k, value{data: automaton.Serialize(), weight: 1})
				sc.putBuilder(b)
			}
			clear(sc.builders)
			mapScratchPool.Put(sc)
		},
		Reduce: func(k dict.ItemID, vs []value, emit func(miner.Pattern)) {
			weighted := make([]nfa.Weighted, 0, len(vs))
			for _, v := range vs {
				automaton, err := nfa.Deserialize(v.data)
				if err != nil {
					continue // cannot happen for locally produced data
				}
				weighted = append(weighted, nfa.Weighted{N: automaton, Weight: v.weight})
			}
			for _, p := range nfa.MinePartition(weighted, sigma, k) {
				emit(p)
			}
		},
		Hash:   func(k dict.ItemID) uint64 { return mapreduce.HashUint64(uint64(k)) },
		SizeOf: recordSize,
	}
	c := codec()
	job.Codec = &c
	if opts.Aggregate {
		job.Combine = dminer.GroupCombiner[dict.ItemID](
			func(buf []byte, v value) []byte { return append(buf, v.data...) },
			func(dst *value, src value) { dst.weight += src.weight },
		)
	}

	return job
}
