package dcand_test

import (
	"reflect"
	"sync"
	"testing"

	"seqmine/internal/dcand"
	"seqmine/internal/dict"
	"seqmine/internal/fst"
	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
	"seqmine/internal/paperex"
	"seqmine/internal/transport"
)

// TestDCandMinePeerMatchesMine runs D-CAND across three processes' worth of
// transport nodes on localhost — with a tiny spill threshold so the NFA
// shuffle exercises the on-disk path — and checks that the union of the
// per-peer pattern sets is byte-identical to the in-process engine's output.
func TestDCandMinePeerMatchesMine(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	db := paperex.DB(d)
	want, _ := dcand.Mine(f, db, paperex.Sigma, dcand.DefaultOptions(), mapreduce.Config{})

	const npeers = 3
	nodes := make([]*transport.Node, npeers)
	addrs := make([]string, npeers)
	for i := range nodes {
		node, err := transport.NewNode("127.0.0.1:0", transport.Config{})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		defer node.Close()
		nodes[i] = node
		addrs[i] = node.Addr()
	}

	opts := dcand.DefaultOptions()
	opts.Spill = mapreduce.ShuffleConfig{SpillThreshold: 1, TmpDir: t.TempDir()}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		union    []miner.Pattern
		spilled  int64
		firstErr error
	)
	for p := 0; p < npeers; p++ {
		var split [][]dict.ItemID
		for i := p; i < len(db); i += npeers {
			split = append(split, db[i])
		}
		wg.Add(1)
		go func(p int, split [][]dict.ItemID) {
			defer wg.Done()
			bx, err := nodes[p].OpenExchange("dcand-test", p, addrs)
			if err == nil {
				defer bx.Close()
				var (
					local []miner.Pattern
					m     mapreduce.Metrics
				)
				local, m, err = dcand.MinePeer(f, split, paperex.Sigma, opts, mapreduce.Config{MapWorkers: 2, ReduceWorkers: 2}, bx)
				mu.Lock()
				union = append(union, local...)
				spilled += m.SpilledBytes
				if !m.RemoteShuffle {
					t.Errorf("peer %d: metrics should be marked RemoteShuffle", p)
				}
				mu.Unlock()
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(p, split)
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatalf("distributed run: %v", firstErr)
	}
	miner.SortPatterns(union)
	if !reflect.DeepEqual(miner.PatternsToMap(d, union), miner.PatternsToMap(d, want)) {
		t.Errorf("distributed D-CAND = %v, want %v", miner.PatternsToMap(d, union), miner.PatternsToMap(d, want))
	}
	if spilled <= 0 {
		t.Errorf("expected spilling at a 1-byte threshold, got %d spilled bytes", spilled)
	}
}
