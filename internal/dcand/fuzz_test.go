package dcand

import (
	"reflect"
	"testing"

	"seqmine/internal/dict"
	"seqmine/internal/mapreduce"
)

// FuzzNFABatchCodec checks the D-CAND shuffle codec: arbitrary frames must
// fail cleanly, and decoded frames must re-encode to the same bytes.
func FuzzNFABatchCodec(f *testing.F) {
	c := codec()
	seed := c.EncodeBatch(nil, mapreduce.KeyBatch[dict.ItemID, value]{
		Key: 3,
		Values: []value{
			{data: []byte{0x04, 0x01, 0x02}, weight: 2},
			{data: nil, weight: 1},
		},
	})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0x03, 0x01, 0x01, 0xff})
	f.Fuzz(func(t *testing.T, frame []byte) {
		b, err := c.DecodeBatch(frame)
		if err != nil {
			return
		}
		// A decodable frame must survive a re-encode/re-decode round trip
		// structurally (byte equality would be too strong: the reader
		// tolerates non-canonical varints).
		re := c.EncodeBatch(nil, b)
		b2, err := c.DecodeBatch(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v (frame %x)", err, re)
		}
		if !reflect.DeepEqual(b, b2) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", b2, b)
		}
		// The honest SizeOf must equal the actual encoding of each record.
		for _, v := range b.Values {
			single := c.EncodeBatch(nil, mapreduce.KeyBatch[dict.ItemID, value]{Key: b.Key, Values: []value{v}})
			if got := recordSize(b.Key, v); got != len(single) {
				t.Fatalf("recordSize = %d, actual encoding = %d bytes", got, len(single))
			}
		}
	})
}
