// Package pivot implements the pivot search of D-SEQ (Sec. V-A of the paper):
// given an input sequence T and a compiled subsequence constraint, it
// determines K(T) — the pivot items of all candidate subsequences in Gσπ(T) —
// without enumerating the candidates, using the pivot-merge operator ⊕
// (Theorem 1) and a position–state grid (memoized FST simulation). It also
// determines the first and last relevant positions per pivot item, which are
// the basis of the sequence rewriting ρk(T) of Sec. V-B.
//
// The grid runs entirely on the flattened FST form (fst.Flat): reachability is
// a bitset accept matrix, transitions are walked by index in the flat int32
// table, frequent-output filtering is precomputed per (FST, σ) in an
// fst.SigmaView, and the per-state pivot sets K(i, q) live as (offset, length)
// regions of one pooled arena — steady-state analysis allocates only the
// Analysis result itself.
package pivot

import (
	"slices"
	"sync"

	"seqmine/internal/dict"
	"seqmine/internal/fst"
)

// Merge implements the commutative and associative pivot-merge operator ⊕ of
// Sec. V-A:
//
//	U ⊕ Q = { ω ∈ U | ω ≥ min(Q) } ∪ { ω ∈ Q | ω ≥ min(U) }
//
// Sets are sorted ascending slices of fids; dict.None (0) represents ε and is
// smaller than every item. Empty input sets are treated as {ε}. The result is
// sorted and duplicate free. Because the inputs are sorted, each side's
// filtered subset is a suffix, so the merge is a single linear union pass.
func Merge(u, q []dict.ItemID) []dict.ItemID {
	minU, minQ := dict.None, dict.None
	if len(u) > 0 {
		minU = u[0]
	}
	if len(q) > 0 {
		minQ = q[0]
	}
	return unionSorted(suffixFrom(u, minQ), suffixFrom(q, minU))
}

// suffixFrom returns the suffix of the sorted set s whose items are >= min.
func suffixFrom(s []dict.ItemID, min dict.ItemID) []dict.ItemID {
	i := 0
	for i < len(s) && s[i] < min {
		i++
	}
	return s[i:]
}

func dedupSorted(s []dict.ItemID) []dict.ItemID {
	if len(s) < 2 {
		return s
	}
	j := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[j-1] {
			s[j] = s[i]
			j++
		}
	}
	return s[:j]
}

// MergeAll folds ⊕ over a run's output sets and returns its pivot items K(r)
// (Theorem 1), with ε removed.
func MergeAll(sets ...[]dict.ItemID) []dict.ItemID {
	acc := []dict.ItemID{dict.None}
	for _, s := range sets {
		if len(s) == 0 {
			s = []dict.ItemID{dict.None}
		}
		acc = Merge(acc, s)
	}
	return dropEps(acc)
}

func dropEps(s []dict.ItemID) []dict.ItemID {
	if len(s) > 0 && s[0] == dict.None {
		return s[1:]
	}
	return s
}

// epsSet is the {ε} singleton empty input sets stand for.
var epsSet = []dict.ItemID{dict.None}

// MergeScratch is caller-owned working memory for MergeAll: the fold's
// accumulator double-buffer, reused across calls so a hot loop (the D-CAND
// run enumeration calls MergeAll once per accepting run) allocates nothing
// once the buffers are warm.
type MergeScratch struct {
	a, b []dict.ItemID
}

// MergeAll is pivot.MergeAll computed in the scratch's reused buffers. The
// returned slice aliases the scratch and is valid until the next call.
func (ms *MergeScratch) MergeAll(sets [][]dict.ItemID) []dict.ItemID {
	acc := append(ms.a[:0], dict.None)
	buf := ms.b[:0]
	for _, s := range sets {
		if len(s) == 0 {
			s = epsSet
		}
		minU, minQ := acc[0], s[0]
		buf = appendUnion(buf[:0], suffixFrom(acc, minQ), suffixFrom(s, minU))
		acc, buf = buf, acc
	}
	ms.a, ms.b = acc, buf
	return dropEps(acc)
}

// appendUnion appends the sorted duplicate-free union of a and b to dst. dst
// must not alias a or b.
func appendUnion(dst, a, b []dict.ItemID) []dict.ItemID {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// Options configures a Searcher.
type Options struct {
	// UseGrid enables the position–state grid (memoized simulation). When
	// false, pivot items are computed by enumerating all accepting runs and
	// applying Theorem 1 per run — the "no grid" ablation of Fig. 10a. The
	// grid is also required for computing relevant-position ranges; without
	// it Rewrite returns the input unchanged.
	UseGrid bool
}

// DefaultOptions enables the grid.
func DefaultOptions() Options { return Options{UseGrid: true} }

// Searcher performs pivot search for one compiled constraint and threshold.
// It is safe for concurrent use.
type Searcher struct {
	fst   *fst.FST
	flat  *fst.Flat
	sv    *fst.SigmaView
	dict  *dict.Dictionary
	sigma int64
	opts  Options
}

// NewSearcher returns a Searcher for the constraint and minimum support.
func NewSearcher(f *fst.FST, sigma int64, opts Options) *Searcher {
	fl := f.Flatten()
	return &Searcher{fst: f, flat: fl, sv: fl.Sigma(sigma), dict: f.Dict(), sigma: sigma, opts: opts}
}

// Analysis is the result of analyzing one input sequence.
type Analysis struct {
	// Pivots is K(T): the pivot items of the candidate subsequences in
	// Gσπ(T), sorted ascending.
	Pivots []dict.ItemID

	n       int
	haveRel bool
	// relFirst/relLast hold the relevant-position range per pivot, indexed
	// parallel to Pivots.
	relFirst []int32
	relLast  []int32
}

// Range returns the first and last relevant position (0-based, inclusive) of
// the analyzed sequence for pivot k. When relevance information is not
// available (grid disabled or k not a pivot), it returns the full range.
func (a *Analysis) Range(k dict.ItemID) (first, last int) {
	if !a.haveRel {
		return 0, a.n - 1
	}
	i, ok := slices.BinarySearch(a.Pivots, k)
	if !ok || i >= len(a.relFirst) {
		return 0, a.n - 1
	}
	return int(a.relFirst[i]), int(a.relLast[i])
}

// Analyze computes K(T) and the per-pivot relevant-position ranges for T.
func (s *Searcher) Analyze(T []dict.ItemID) *Analysis {
	if s.opts.UseGrid {
		return s.analyzeGrid(T)
	}
	return s.analyzeRuns(T)
}

// analyzeRuns computes K(T) by enumerating all accepting runs (no grid).
func (s *Searcher) analyzeRuns(T []dict.ItemID) *Analysis {
	a := &Analysis{n: len(T)}
	pivotSet := map[dict.ItemID]bool{}
	s.fst.ForEachRun(T, func(outputs [][]dict.ItemID) bool {
		acc := []dict.ItemID{dict.None}
		for _, set := range outputs {
			filtered := s.filterOutputs(set)
			if filtered == nil {
				if set != nil {
					// All output choices at this position are infrequent: the
					// run produces no Gσ candidates.
					return true
				}
				filtered = []dict.ItemID{dict.None}
			}
			acc = Merge(acc, filtered)
		}
		for _, w := range dropEps(acc) {
			pivotSet[w] = true
		}
		return true
	})
	for w := range pivotSet {
		a.Pivots = append(a.Pivots, w)
	}
	slices.Sort(a.Pivots)
	return a
}

// filterOutputs drops infrequent items from an output set. It returns nil if
// nothing remains (for a nil input set — ε — it also returns nil).
func (s *Searcher) filterOutputs(set []dict.ItemID) []dict.ItemID {
	if set == nil {
		return nil
	}
	out := make([]dict.ItemID, 0, len(set))
	for _, w := range set {
		if s.dict.IsFrequent(w, s.sigma) {
			out = append(out, w)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// gridScratch is the pooled per-call working memory of analyzeGrid: the bitset
// accept matrix, the per-state K(i, q) regions of the current and next grid
// column (offset and length into one append-only arena; offset -1 = inactive
// coordinate), and the per-position relevance summary. The arena is append
// only within a call, so regions handed out earlier stay valid while new
// merged sets are written behind them.
type gridScratch struct {
	reach []uint64
	arena []dict.ItemID

	curOff, curLen   []int32
	nextOff, nextLen []int32

	stateChange []bool
	minOutput   []dict.ItemID
	pivots      []dict.ItemID
	one         [1]dict.ItemID
}

var gridPool = sync.Pool{New: func() any { return new(gridScratch) }}

func (sc *gridScratch) prepare(n, words, numStates int) {
	need := (n + 1) * words
	if cap(sc.reach) < need {
		sc.reach = make([]uint64, need)
	}
	sc.reach = sc.reach[:need]
	clear(sc.reach)
	sc.arena = sc.arena[:0]
	if cap(sc.curOff) < numStates {
		sc.curOff = make([]int32, numStates)
		sc.curLen = make([]int32, numStates)
		sc.nextOff = make([]int32, numStates)
		sc.nextLen = make([]int32, numStates)
	}
	sc.curOff = sc.curOff[:numStates]
	sc.curLen = sc.curLen[:numStates]
	sc.nextOff = sc.nextOff[:numStates]
	sc.nextLen = sc.nextLen[:numStates]
	for q := 0; q < numStates; q++ {
		sc.curOff[q] = -1
		sc.nextOff[q] = -1
	}
	if cap(sc.stateChange) < n {
		sc.stateChange = make([]bool, n)
		sc.minOutput = make([]dict.ItemID, n)
	}
	sc.stateChange = sc.stateChange[:n]
	sc.minOutput = sc.minOutput[:n]
	clear(sc.stateChange)
	clear(sc.minOutput)
	sc.pivots = sc.pivots[:0]
}

// mergeInto appends the region for U ⊕ outs to the arena, where U is the arena
// region (off, n) and outs is a non-empty sorted frequent output set.
func (sc *gridScratch) mergeInto(off, n int32, outs []dict.ItemID) (int32, int32) {
	u := sc.arena[off : off+n]
	minU := dict.None
	if len(u) > 0 {
		minU = u[0]
	}
	return sc.unionInto(suffixFrom(u, outs[0]), suffixFrom(outs, minU))
}

// unionInto appends the sorted duplicate-free union of a and b to the arena
// and returns the new region. Reading a and b while appending is safe even
// when they alias the arena: the arena is append only, so a reallocation
// leaves the source regions intact in the old backing array.
func (sc *gridScratch) unionInto(a, b []dict.ItemID) (int32, int32) {
	start := int32(len(sc.arena))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			sc.arena = append(sc.arena, a[i])
			i++
		case a[i] > b[j]:
			sc.arena = append(sc.arena, b[j])
			j++
		default:
			sc.arena = append(sc.arena, a[i])
			i++
			j++
		}
	}
	sc.arena = append(sc.arena, a[i:]...)
	sc.arena = append(sc.arena, b[j:]...)
	return start, int32(len(sc.arena)) - start
}

// analyzeGrid computes K(T) with the position–state grid: one forward pass
// over the coordinates that lie on accepting runs, maintaining the pivot sets
// K(i, q) and the relevance information per position. The pass walks the flat
// transition table against the bitset accept matrix and keeps every K(i, q)
// as a region of the pooled arena; ε edges propagate their source region
// without copying.
func (s *Searcher) analyzeGrid(T []dict.ItemID) *Analysis {
	a := &Analysis{n: len(T), haveRel: true}
	n := len(T)
	if n == 0 {
		return a
	}
	fl := s.flat
	words := fl.Words()
	numStates := fl.NumStates()
	sc := gridPool.Get().(*gridScratch)
	sc.prepare(n, words, numStates)
	fl.AcceptBits(T, sc.reach)
	init := fl.Initial()
	if sc.reach[uint(init)>>6]&(1<<(uint(init)&63)) == 0 {
		gridPool.Put(sc)
		return a
	}

	sc.arena = append(sc.arena, dict.None)
	sc.curOff[init], sc.curLen[init] = 0, 1

	for i := 0; i < n; i++ {
		t := T[i]
		next := sc.reach[(i+1)*words:]
		for q := 0; q < numStates; q++ {
			ko, kl := sc.curOff[q], sc.curLen[q]
			if ko < 0 {
				continue
			}
			lo, hi := fl.TransitionsOf(q)
			for tr := int(lo); tr < int(hi); tr++ {
				to := int(fl.To(tr))
				if next[uint(to)>>6]&(1<<(uint(to)&63)) == 0 || !fl.Matches(tr, t) {
					continue
				}
				single, set, ok := s.sv.OutputsFor(tr, t)
				if !ok {
					// Only infrequent outputs: edge cannot contribute Gσ
					// candidates.
					continue
				}
				if q != to {
					sc.stateChange[i] = true
				}
				if single != dict.None {
					sc.one[0] = single
					set = sc.one[:]
				}
				mo, ml := ko, kl
				if set != nil {
					if sc.minOutput[i] == dict.None || set[0] < sc.minOutput[i] {
						sc.minOutput[i] = set[0]
					}
					mo, ml = sc.mergeInto(ko, kl, set)
				}
				if sc.nextOff[to] < 0 {
					sc.nextOff[to], sc.nextLen[to] = mo, ml
				} else {
					uo, ul := sc.nextOff[to], sc.nextLen[to]
					sc.nextOff[to], sc.nextLen[to] =
						sc.unionInto(sc.arena[uo:uo+ul], sc.arena[mo:mo+ml])
				}
			}
		}
		sc.curOff, sc.nextOff = sc.nextOff, sc.curOff
		sc.curLen, sc.nextLen = sc.nextLen, sc.curLen
		for q := 0; q < numStates; q++ {
			sc.nextOff[q] = -1
		}
	}

	for q := 0; q < numStates; q++ {
		if sc.curOff[q] < 0 || !fl.IsFinal(q) {
			continue
		}
		region := sc.arena[sc.curOff[q] : sc.curOff[q]+sc.curLen[q]]
		sc.pivots = append(sc.pivots, dropEps(region)...)
	}
	slices.Sort(sc.pivots)
	pivots := dedupSorted(sc.pivots)
	if m := len(pivots); m > 0 {
		a.Pivots = make([]dict.ItemID, m)
		copy(a.Pivots, pivots)
		// Relevant-position ranges per pivot: position i is relevant for pivot
		// k if an accepting-run edge at i changes state or can output a
		// frequent item <= k. Both range slices share one backing array.
		rel := make([]int32, 2*m)
		a.relFirst, a.relLast = rel[:m:m], rel[m:]
		for idx, k := range a.Pivots {
			first, last := -1, -1
			for i := 0; i < n; i++ {
				if sc.stateChange[i] || (sc.minOutput[i] != dict.None && sc.minOutput[i] <= k) {
					if first < 0 {
						first = i
					}
					last = i
				}
			}
			if first < 0 {
				first, last = 0, n-1
			}
			a.relFirst[idx] = int32(first)
			a.relLast[idx] = int32(last)
		}
	}
	gridPool.Put(sc)
	return a
}

// unionSorted merges two sorted fid slices into a sorted duplicate-free slice.
func unionSorted(a, b []dict.ItemID) []dict.ItemID {
	out := make([]dict.ItemID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Rewrite returns ρk(T): the input sequence restricted to the range between
// the first and last relevant position for pivot k (Sec. V-B). The result
// aliases T's backing array.
func (s *Searcher) Rewrite(T []dict.ItemID, a *Analysis, k dict.ItemID) []dict.ItemID {
	if a == nil || !a.haveRel || len(T) == 0 {
		return T
	}
	first, last := a.Range(k)
	if first < 0 || last >= len(T) || first > last {
		return T
	}
	return T[first : last+1]
}
