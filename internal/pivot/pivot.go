// Package pivot implements the pivot search of D-SEQ (Sec. V-A of the paper):
// given an input sequence T and a compiled subsequence constraint, it
// determines K(T) — the pivot items of all candidate subsequences in Gσπ(T) —
// without enumerating the candidates, using the pivot-merge operator ⊕
// (Theorem 1) and a position–state grid (memoized FST simulation). It also
// determines the first and last relevant positions per pivot item, which are
// the basis of the sequence rewriting ρk(T) of Sec. V-B.
package pivot

import (
	"sort"

	"seqmine/internal/dict"
	"seqmine/internal/fst"
)

// Merge implements the commutative and associative pivot-merge operator ⊕ of
// Sec. V-A:
//
//	U ⊕ Q = { ω ∈ U | ω ≥ min(Q) } ∪ { ω ∈ Q | ω ≥ min(U) }
//
// Sets are sorted ascending slices of fids; dict.None (0) represents ε and is
// smaller than every item. Empty input sets are treated as {ε}. The result is
// sorted and duplicate free.
func Merge(u, q []dict.ItemID) []dict.ItemID {
	minU, minQ := dict.None, dict.None
	if len(u) > 0 {
		minU = u[0]
	}
	if len(q) > 0 {
		minQ = q[0]
	}
	out := make([]dict.ItemID, 0, len(u)+len(q))
	for _, w := range u {
		if w >= minQ {
			out = append(out, w)
		}
	}
	for _, w := range q {
		if w >= minU {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return dedupSorted(out)
}

func dedupSorted(s []dict.ItemID) []dict.ItemID {
	if len(s) < 2 {
		return s
	}
	j := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[j-1] {
			s[j] = s[i]
			j++
		}
	}
	return s[:j]
}

// MergeAll folds ⊕ over a run's output sets and returns its pivot items K(r)
// (Theorem 1), with ε removed.
func MergeAll(sets ...[]dict.ItemID) []dict.ItemID {
	acc := []dict.ItemID{dict.None}
	for _, s := range sets {
		if len(s) == 0 {
			s = []dict.ItemID{dict.None}
		}
		acc = Merge(acc, s)
	}
	return dropEps(acc)
}

func dropEps(s []dict.ItemID) []dict.ItemID {
	if len(s) > 0 && s[0] == dict.None {
		return s[1:]
	}
	return s
}

// Options configures a Searcher.
type Options struct {
	// UseGrid enables the position–state grid (memoized simulation). When
	// false, pivot items are computed by enumerating all accepting runs and
	// applying Theorem 1 per run — the "no grid" ablation of Fig. 10a. The
	// grid is also required for computing relevant-position ranges; without
	// it Rewrite returns the input unchanged.
	UseGrid bool
}

// DefaultOptions enables the grid.
func DefaultOptions() Options { return Options{UseGrid: true} }

// Searcher performs pivot search for one compiled constraint and threshold.
// It is safe for concurrent use.
type Searcher struct {
	fst   *fst.FST
	dict  *dict.Dictionary
	sigma int64
	opts  Options
}

// NewSearcher returns a Searcher for the constraint and minimum support.
func NewSearcher(f *fst.FST, sigma int64, opts Options) *Searcher {
	return &Searcher{fst: f, dict: f.Dict(), sigma: sigma, opts: opts}
}

// Analysis is the result of analyzing one input sequence.
type Analysis struct {
	// Pivots is K(T): the pivot items of the candidate subsequences in
	// Gσπ(T), sorted ascending.
	Pivots []dict.ItemID

	n        int
	haveRel  bool
	firstRel map[dict.ItemID]int
	lastRel  map[dict.ItemID]int
}

// Range returns the first and last relevant position (0-based, inclusive) of
// the analyzed sequence for pivot k. When relevance information is not
// available (grid disabled or k not a pivot), it returns the full range.
func (a *Analysis) Range(k dict.ItemID) (first, last int) {
	if !a.haveRel {
		return 0, a.n - 1
	}
	f, ok1 := a.firstRel[k]
	l, ok2 := a.lastRel[k]
	if !ok1 || !ok2 {
		return 0, a.n - 1
	}
	return f, l
}

// Analyze computes K(T) and the per-pivot relevant-position ranges for T.
func (s *Searcher) Analyze(T []dict.ItemID) *Analysis {
	if s.opts.UseGrid {
		return s.analyzeGrid(T)
	}
	return s.analyzeRuns(T)
}

// analyzeRuns computes K(T) by enumerating all accepting runs (no grid).
func (s *Searcher) analyzeRuns(T []dict.ItemID) *Analysis {
	a := &Analysis{n: len(T)}
	pivotSet := map[dict.ItemID]bool{}
	s.fst.ForEachRun(T, func(outputs [][]dict.ItemID) bool {
		acc := []dict.ItemID{dict.None}
		for _, set := range outputs {
			filtered := s.filterOutputs(set)
			if filtered == nil {
				if set != nil {
					// All output choices at this position are infrequent: the
					// run produces no Gσ candidates.
					return true
				}
				filtered = []dict.ItemID{dict.None}
			}
			acc = Merge(acc, filtered)
		}
		for _, w := range dropEps(acc) {
			pivotSet[w] = true
		}
		return true
	})
	for w := range pivotSet {
		a.Pivots = append(a.Pivots, w)
	}
	sort.Slice(a.Pivots, func(i, j int) bool { return a.Pivots[i] < a.Pivots[j] })
	return a
}

// filterOutputs drops infrequent items from an output set. It returns nil if
// nothing remains (for a nil input set — ε — it also returns nil).
func (s *Searcher) filterOutputs(set []dict.ItemID) []dict.ItemID {
	if set == nil {
		return nil
	}
	out := make([]dict.ItemID, 0, len(set))
	for _, w := range set {
		if s.dict.IsFrequent(w, s.sigma) {
			out = append(out, w)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// analyzeGrid computes K(T) with the position–state grid: one forward pass
// over the coordinates that lie on accepting runs, maintaining the pivot sets
// K(i, q) and the relevance information per position.
func (s *Searcher) analyzeGrid(T []dict.ItemID) *Analysis {
	a := &Analysis{n: len(T), haveRel: true, firstRel: map[dict.ItemID]int{}, lastRel: map[dict.ItemID]int{}}
	n := len(T)
	if n == 0 {
		return a
	}
	reach := s.fst.AcceptMatrix(T)
	init := s.fst.Initial()
	if !reach[0][init] {
		return a
	}
	numStates := s.fst.NumStates()

	// K(i, q) for the active coordinates of column i. nil = inactive.
	cur := make([][]dict.ItemID, numStates)
	next := make([][]dict.ItemID, numStates)
	cur[init] = []dict.ItemID{dict.None}

	// Per-position relevance summary: did any accepting-run edge at position i
	// change state, and what is the smallest frequent output item produced at
	// position i on any accepting-run edge (None if none)?
	stateChange := make([]bool, n)
	minOutput := make([]dict.ItemID, n)

	for i := 0; i < n; i++ {
		for q := range next {
			next[q] = nil
		}
		t := T[i]
		for q := 0; q < numStates; q++ {
			kset := cur[q]
			if kset == nil {
				continue
			}
			for _, tr := range s.fst.Transitions(q) {
				if !reach[i+1][tr.To] || !tr.Label.Matches(s.dict, t) {
					continue
				}
				outs := s.filterOutputs(tr.Label.Outputs(s.dict, t))
				if outs == nil && tr.Label.ProducesOutput() {
					// Only infrequent outputs: edge cannot contribute Gσ
					// candidates.
					continue
				}
				if q != tr.To {
					stateChange[i] = true
				}
				merged := kset
				if outs != nil {
					if minOutput[i] == dict.None || outs[0] < minOutput[i] {
						minOutput[i] = outs[0]
					}
					merged = Merge(kset, outs)
				}
				if next[tr.To] == nil {
					next[tr.To] = merged
				} else {
					next[tr.To] = unionSorted(next[tr.To], merged)
				}
			}
		}
		cur, next = next, cur
	}

	pivotSet := map[dict.ItemID]bool{}
	for q := 0; q < numStates; q++ {
		if cur[q] == nil || !s.fst.IsFinal(q) {
			continue
		}
		for _, w := range dropEps(cur[q]) {
			pivotSet[w] = true
		}
	}
	for w := range pivotSet {
		a.Pivots = append(a.Pivots, w)
	}
	sort.Slice(a.Pivots, func(i, j int) bool { return a.Pivots[i] < a.Pivots[j] })

	// Relevant-position ranges per pivot: position i is relevant for pivot k
	// if an accepting-run edge at i changes state or can output a frequent
	// item <= k.
	for _, k := range a.Pivots {
		first, last := -1, -1
		for i := 0; i < n; i++ {
			if stateChange[i] || (minOutput[i] != dict.None && minOutput[i] <= k) {
				if first < 0 {
					first = i
				}
				last = i
			}
		}
		if first < 0 {
			first, last = 0, n-1
		}
		a.firstRel[k] = first
		a.lastRel[k] = last
	}
	return a
}

// unionSorted merges two sorted fid slices into a sorted duplicate-free slice.
func unionSorted(a, b []dict.ItemID) []dict.ItemID {
	out := make([]dict.ItemID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Rewrite returns ρk(T): the input sequence restricted to the range between
// the first and last relevant position for pivot k (Sec. V-B). The result
// aliases T's backing array.
func (s *Searcher) Rewrite(T []dict.ItemID, a *Analysis, k dict.ItemID) []dict.ItemID {
	if a == nil || !a.haveRel || len(T) == 0 {
		return T
	}
	first, last := a.Range(k)
	if first < 0 || last >= len(T) || first > last {
		return T
	}
	return T[first : last+1]
}
