package pivot_test

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"seqmine/internal/dict"
	"seqmine/internal/fst"
	"seqmine/internal/paperex"
	"seqmine/internal/pivot"
)

func fids(d *dict.Dictionary, names ...string) []dict.ItemID {
	out := make([]dict.ItemID, len(names))
	for i, n := range names {
		out[i] = d.MustFid(n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestMergePaperExample reproduces the ⊕ examples of Sec. V-A.
func TestMergePaperExample(t *testing.T) {
	d := paperex.Dict()
	set := func(names ...string) []dict.ItemID { return fids(d, names...) }

	// Run r4 with output sets {b,c}–{A}–{d,a1} has pivots {c, d, a1}.
	got := pivot.MergeAll(set("b", "c"), set("A"), set("d", "a1"))
	if want := set("c", "d", "a1"); !reflect.DeepEqual(got, want) {
		t.Errorf("K(r4) = %v, want %v", got, want)
	}
	// Run r4' of length 1: all items are pivots.
	if got, want := pivot.MergeAll(set("b", "c")), set("b", "c"); !reflect.DeepEqual(got, want) {
		t.Errorf("K(r4') = %v, want %v", got, want)
	}
	// Run r4'' = {b,c}–{A}: pivots {A, c}.
	if got, want := pivot.MergeAll(set("b", "c"), set("A")), set("A", "c"); !reflect.DeepEqual(got, want) {
		t.Errorf("K(r4'') = %v, want %v", got, want)
	}
	// ε sets do not constrain: {ε} ⊕ {a1} = {a1}.
	if got, want := pivot.MergeAll(nil, set("a1")), set("a1"); !reflect.DeepEqual(got, want) {
		t.Errorf("MergeAll(ε, {a1}) = %v, want %v", got, want)
	}
	// All-ε runs have no pivots.
	if got := pivot.MergeAll(nil, nil); len(got) != 0 {
		t.Errorf("MergeAll(ε, ε) = %v, want empty", got)
	}
}

func TestMergeCommutativeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	randSet := func() []dict.ItemID {
		n := rng.Intn(4)
		m := map[dict.ItemID]bool{}
		for i := 0; i < n; i++ {
			m[dict.ItemID(rng.Intn(7)+1)] = true
		}
		var s []dict.ItemID
		for v := range m {
			s = append(s, v)
		}
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return s
	}
	for i := 0; i < 200; i++ {
		a, b, c := randSet(), randSet(), randSet()
		ab := pivot.Merge(a, b)
		ba := pivot.Merge(b, a)
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("not commutative: %v ⊕ %v", a, b)
		}
		left := pivot.Merge(pivot.Merge(a, b), c)
		right := pivot.Merge(a, pivot.Merge(b, c))
		if !reflect.DeepEqual(left, right) {
			t.Fatalf("not associative: %v %v %v -> %v vs %v", a, b, c, left, right)
		}
	}
}

// bruteForcePivots computes K(T) from the candidate subsequences directly.
func bruteForcePivots(f *fst.FST, T []dict.ItemID, sigma int64) []dict.ItemID {
	set := map[dict.ItemID]bool{}
	for _, cand := range f.EnumerateCandidates(T, sigma) {
		set[dict.PivotOf(cand)] = true
	}
	out := make([]dict.ItemID, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestAnalyzeRunningExample checks K(T) for all sequences of the running
// example against Fig. 3 (σ=2: infrequent pivots are excluded).
func TestAnalyzeRunningExample(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	db := paperex.DB(d)

	want := [][]string{
		{"a1", "c"}, // T1
		{"a1"},      // T2 (e is infrequent)
		{},          // T3
		{},          // T4 (all candidates contain a2)
		{"a1"},      // T5
	}
	for _, useGrid := range []bool{true, false} {
		s := pivot.NewSearcher(f, paperex.Sigma, pivot.Options{UseGrid: useGrid})
		for i, T := range db {
			a := s.Analyze(T)
			wantPivots := fids(d, want[i]...)
			if len(wantPivots) == 0 {
				wantPivots = nil
			}
			var got []dict.ItemID
			if len(a.Pivots) > 0 {
				got = a.Pivots
			}
			if !reflect.DeepEqual(got, wantPivots) {
				t.Errorf("grid=%v: K(T%d) = %v, want %v", useGrid, i+1, decode(d, got), want[i])
			}
		}
	}
}

// TestAnalyzeUnrestrictedSigma checks K(T) at σ=1 where nothing is excluded
// (the keys shown in Fig. 3 including the crossed-out partitions).
func TestAnalyzeUnrestrictedSigma(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	db := paperex.DB(d)
	s := pivot.NewSearcher(f, 1, pivot.DefaultOptions())

	want := [][]string{
		{"a1", "c"},
		{"a1", "e"},
		{},
		{"a2"},
		{"a1"},
	}
	for i, T := range db {
		a := s.Analyze(T)
		if got := decode(d, a.Pivots); !reflect.DeepEqual(got, sortedNames(d, want[i])) {
			t.Errorf("K(T%d) = %v, want %v", i+1, got, want[i])
		}
	}
}

func decode(d *dict.Dictionary, items []dict.ItemID) []string {
	if len(items) == 0 {
		return nil
	}
	out := make([]string, len(items))
	for i, w := range items {
		out[i] = d.Name(w)
	}
	return out
}

func sortedNames(d *dict.Dictionary, names []string) []string {
	if len(names) == 0 {
		return nil
	}
	ids := fids(d, names...)
	return decode(d, ids)
}

// TestRewriteRunningExample checks ρa1(T2) = a1 e a1 e b (Sec. V-B).
func TestRewriteRunningExample(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	db := paperex.DB(d)
	s := pivot.NewSearcher(f, paperex.Sigma, pivot.DefaultOptions())

	T2 := db[1]
	a := s.Analyze(T2)
	a1 := d.MustFid("a1")
	first, last := a.Range(a1)
	if first != 2 || last != 6 {
		t.Errorf("Range(a1) = (%d,%d), want (2,6)", first, last)
	}
	got := d.DecodeString(s.Rewrite(T2, a, a1))
	if got != "a1 e a1 e b" {
		t.Errorf("ρa1(T2) = %q, want %q", got, "a1 e a1 e b")
	}

	// T5 is already minimal for pivot a1.
	T5 := db[4]
	a5 := s.Analyze(T5)
	if got := d.DecodeString(s.Rewrite(T5, a5, a1)); got != "a1 a1 b" {
		t.Errorf("ρa1(T5) = %q, want %q", got, "a1 a1 b")
	}
}

func TestRewriteWithoutGridIsIdentity(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	db := paperex.DB(d)
	s := pivot.NewSearcher(f, paperex.Sigma, pivot.Options{UseGrid: false})
	a := s.Analyze(db[1])
	if got := d.DecodeString(s.Rewrite(db[1], a, d.MustFid("a1"))); got != d.DecodeString(db[1]) {
		t.Errorf("rewrite without grid should be the identity, got %q", got)
	}
}

// TestAnalyzeMatchesBruteForce compares grid-based and run-based pivot search
// against a brute-force computation from Gσπ(T) on random sequences.
func TestAnalyzeMatchesBruteForce(t *testing.T) {
	d := paperex.Dict()
	patterns := []string{
		paperex.PatternExpression,
		"[.*(.)]{1,3}.*",
		".*(A^)[.{0,1}(.^)]{1,2}.*",
		".*(d) .* (b).*",
	}
	rng := rand.New(rand.NewSource(11))
	for _, pat := range patterns {
		f := fst.MustCompile(pat, d)
		grid := pivot.NewSearcher(f, paperex.Sigma, pivot.DefaultOptions())
		noGrid := pivot.NewSearcher(f, paperex.Sigma, pivot.Options{UseGrid: false})
		for trial := 0; trial < 150; trial++ {
			n := rng.Intn(8)
			T := make([]dict.ItemID, n)
			for i := range T {
				T[i] = dict.ItemID(rng.Intn(d.Size()) + 1)
			}
			want := bruteForcePivots(f, T, paperex.Sigma)
			if len(want) == 0 {
				want = nil
			}
			gotGrid := grid.Analyze(T).Pivots
			gotRuns := noGrid.Analyze(T).Pivots
			if !reflect.DeepEqual(gotGrid, want) {
				t.Fatalf("pattern %q T=%v: grid pivots %v, want %v", pat, d.DecodeSequence(T), decode(d, gotGrid), decode(d, want))
			}
			if !reflect.DeepEqual(gotRuns, want) {
				t.Fatalf("pattern %q T=%v: run pivots %v, want %v", pat, d.DecodeSequence(T), decode(d, gotRuns), decode(d, want))
			}
		}
	}
}

// TestRewritePreservesPivotCandidates: for every pivot k of a random sequence
// T, the pivot-k candidates of Gσπ(T) and Gσπ(ρk(T)) must coincide.
func TestRewritePreservesPivotCandidates(t *testing.T) {
	d := paperex.Dict()
	patterns := []string{
		paperex.PatternExpression,
		"[.*(.)]{1,3}.*",
		".*(A^)[.{0,1}(.^)]{1,2}.*",
	}
	rng := rand.New(rand.NewSource(23))
	for _, pat := range patterns {
		f := fst.MustCompile(pat, d)
		s := pivot.NewSearcher(f, paperex.Sigma, pivot.DefaultOptions())
		for trial := 0; trial < 150; trial++ {
			n := rng.Intn(8)
			T := make([]dict.ItemID, n)
			for i := range T {
				T[i] = dict.ItemID(rng.Intn(d.Size()) + 1)
			}
			a := s.Analyze(T)
			for _, k := range a.Pivots {
				want := pivotCandidates(f, T, paperex.Sigma, k)
				got := pivotCandidates(f, s.Rewrite(T, a, k), paperex.Sigma, k)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("pattern %q T=%v pivot %s: rewrite changed pivot candidates\n got %v\nwant %v",
						pat, d.DecodeSequence(T), d.Name(k), got, want)
				}
			}
		}
	}
}

func pivotCandidates(f *fst.FST, T []dict.ItemID, sigma int64, k dict.ItemID) map[string]bool {
	out := map[string]bool{}
	for _, cand := range f.EnumerateCandidates(T, sigma) {
		if dict.PivotOf(cand) == k {
			out[f.Dict().DecodeString(cand)] = true
		}
	}
	return out
}

func TestAnalyzeEmptySequence(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	s := pivot.NewSearcher(f, paperex.Sigma, pivot.DefaultOptions())
	if a := s.Analyze(nil); len(a.Pivots) != 0 {
		t.Errorf("empty sequence must have no pivots, got %v", a.Pivots)
	}
}

// TestRewriteEdgeCases pins the defensive paths of ρk(T): nil analysis, empty
// sequences and non-pivot items must all return the input unchanged.
func TestRewriteEdgeCases(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	db := paperex.DB(d)
	s := pivot.NewSearcher(f, paperex.Sigma, pivot.DefaultOptions())
	T2 := db[1]

	if got := s.Rewrite(T2, nil, d.MustFid("a1")); !reflect.DeepEqual(got, T2) {
		t.Errorf("nil analysis: Rewrite = %v, want input unchanged", got)
	}
	aEmpty := s.Analyze(nil)
	if got := s.Rewrite(nil, aEmpty, d.MustFid("a1")); len(got) != 0 {
		t.Errorf("empty sequence: Rewrite = %v, want empty", got)
	}
	// A non-pivot item falls back to the full relevance range.
	a := s.Analyze(T2)
	nonPivot := d.MustFid("c") // K(T2) = {a1}
	if first, last := a.Range(nonPivot); first != 0 || last != len(T2)-1 {
		t.Errorf("Range(non-pivot) = (%d,%d), want full range", first, last)
	}
	if got := s.Rewrite(T2, a, nonPivot); !reflect.DeepEqual(got, T2) {
		t.Errorf("non-pivot Rewrite = %v, want input unchanged", got)
	}
	// A sequence without accepting runs has no pivots and an unrestricted range.
	T3 := db[2]
	a3 := s.Analyze(T3)
	if len(a3.Pivots) != 0 {
		t.Fatalf("K(T3) = %v, want empty", a3.Pivots)
	}
	if got := s.Rewrite(T3, a3, d.MustFid("a1")); !reflect.DeepEqual(got, T3) {
		t.Errorf("no-pivot Rewrite = %v, want input unchanged", got)
	}
}
