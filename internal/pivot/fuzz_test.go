package pivot

import (
	"reflect"
	"slices"
	"testing"

	"seqmine/internal/dict"
	"seqmine/internal/fst"
	"seqmine/internal/paperex"
)

// fuzzPatterns cover the output classes of the flat transition table: the
// running example (ancestor outputs), capture-any, generalize-up-to, const
// anchors and input copies.
var fuzzPatterns = []string{
	paperex.PatternExpression,
	"[.*(.)]{1,4}.*",
	".*(.^)[.{0,1}(.^)]{1,3}.*",
	".*(a1).*(b).*",
	"(A^).*",
}

// referenceGrid is the pre-refactor position–state grid, map backed: K(i, q)
// sets live in per-state maps, frequent-output filtering runs per edge against
// the dictionary, and set union goes through fresh slices. It exists purely as
// the differential oracle for the arena-backed analyzeGrid.
func referenceGrid(f *fst.FST, sigma int64, T []dict.ItemID) (pivots []dict.ItemID, ranges map[dict.ItemID][2]int) {
	d := f.Dict()
	fl := f.Flatten()
	n := len(T)
	if n == 0 {
		return nil, nil
	}
	words := fl.Words()
	reach := make([]uint64, (n+1)*words)
	fl.AcceptBits(T, reach)
	init := fl.Initial()
	if reach[uint(init)>>6]&(1<<(uint(init)&63)) == 0 {
		return nil, nil
	}

	cur := map[int][]dict.ItemID{init: {dict.None}}
	stateChange := make([]bool, n)
	minOutput := make([]dict.ItemID, n)
	for i := 0; i < n; i++ {
		t := T[i]
		row := reach[(i+1)*words:]
		next := map[int][]dict.ItemID{}
		for q := 0; q < fl.NumStates(); q++ {
			K, ok := cur[q]
			if !ok {
				continue
			}
			lo, hi := fl.TransitionsOf(q)
			for tr := int(lo); tr < int(hi); tr++ {
				to := int(fl.To(tr))
				if row[uint(to)>>6]&(1<<(uint(to)&63)) == 0 || !fl.Matches(tr, t) {
					continue
				}
				merged := K
				if fl.ProducesOutput(tr) {
					single, set := fl.OutputsFor(tr, t)
					if set == nil {
						set = []dict.ItemID{single}
					}
					var outs []dict.ItemID
					for _, w := range set {
						if sigma <= 0 || d.IsFrequent(w, sigma) {
							outs = append(outs, w)
						}
					}
					if len(outs) == 0 {
						continue // only infrequent outputs: skip the edge
					}
					if q != to {
						stateChange[i] = true
					}
					if minOutput[i] == dict.None || outs[0] < minOutput[i] {
						minOutput[i] = outs[0]
					}
					merged = Merge(K, outs)
				} else if q != to {
					stateChange[i] = true
				}
				if prev, ok := next[to]; ok {
					next[to] = unionSorted(prev, merged)
				} else {
					next[to] = merged
				}
			}
		}
		cur = next
	}

	for q, K := range cur {
		if fl.IsFinal(q) {
			pivots = append(pivots, dropEps(K)...)
		}
	}
	slices.Sort(pivots)
	pivots = dedupSorted(pivots)
	ranges = make(map[dict.ItemID][2]int, len(pivots))
	for _, k := range pivots {
		first, last := -1, -1
		for i := 0; i < n; i++ {
			if stateChange[i] || (minOutput[i] != dict.None && minOutput[i] <= k) {
				if first < 0 {
					first = i
				}
				last = i
			}
		}
		if first < 0 {
			first, last = 0, n-1
		}
		ranges[k] = [2]int{first, last}
	}
	return pivots, ranges
}

// FuzzPivotEquivalence derives a sequence from the fuzz input and cross-checks
// the arena-backed flat grid against the run-enumeration path and the
// map-backed pre-refactor grid on every test pattern: the three must agree on
// K(T), and the two grids on every relevant-position range. Any divergence is
// a bug in the flat grid's edge walk, arena merging or relevance summary.
func FuzzPivotEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5}, int64(2))
	f.Add([]byte{}, int64(0))
	f.Add([]byte{9, 9, 9, 1, 1, 1, 2}, int64(4))
	d := paperex.Dict()
	fsts := make([]*fst.FST, len(fuzzPatterns))
	for i, pat := range fuzzPatterns {
		fsts[i] = fst.MustCompile(pat, d)
	}
	f.Fuzz(func(t *testing.T, data []byte, sigma int64) {
		if len(data) > 24 {
			data = data[:24]
		}
		if sigma < 0 || sigma > 8 {
			sigma = paperex.Sigma
		}
		T := make([]dict.ItemID, len(data))
		for i, c := range data {
			T[i] = dict.ItemID(int(c)%d.Size() + 1)
		}
		for i, fm := range fsts {
			grid := NewSearcher(fm, sigma, Options{UseGrid: true})
			runs := NewSearcher(fm, sigma, Options{UseGrid: false})
			a := grid.Analyze(T)
			wantPivots, wantRanges := referenceGrid(fm, sigma, T)
			if !reflect.DeepEqual(a.Pivots, wantPivots) && !(len(a.Pivots) == 0 && len(wantPivots) == 0) {
				t.Fatalf("%q σ=%d T=%v: grid pivots %v, reference %v",
					fuzzPatterns[i], sigma, T, a.Pivots, wantPivots)
			}
			runPivots := runs.Analyze(T).Pivots
			if !reflect.DeepEqual(a.Pivots, runPivots) && !(len(a.Pivots) == 0 && len(runPivots) == 0) {
				t.Fatalf("%q σ=%d T=%v: grid pivots %v, run enumeration %v",
					fuzzPatterns[i], sigma, T, a.Pivots, runPivots)
			}
			for _, k := range a.Pivots {
				first, last := a.Range(k)
				if want := wantRanges[k]; first != want[0] || last != want[1] {
					t.Fatalf("%q σ=%d T=%v pivot %d: Range = (%d,%d), reference (%d,%d)",
						fuzzPatterns[i], sigma, T, k, first, last, want[0], want[1])
				}
			}
			// A non-pivot probe falls back to the full range on both sides.
			if first, last := a.Range(dict.None); first != 0 || last != len(T)-1 {
				t.Fatalf("%q σ=%d T=%v: Range(ε) = (%d,%d), want full range",
					fuzzPatterns[i], sigma, T, first, last)
			}
		}
	})
}
