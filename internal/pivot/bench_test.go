package pivot_test

import (
	"math/rand"
	"sync"
	"testing"

	"seqmine/internal/dict"
	"seqmine/internal/experiments"
	"seqmine/internal/fst"
	"seqmine/internal/paperex"
	"seqmine/internal/pivot"
)

func benchWorkload(n, maxLen int) (*dict.Dictionary, *fst.FST, [][]dict.ItemID) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	rng := rand.New(rand.NewSource(2))
	db := make([][]dict.ItemID, n)
	for i := range db {
		l := rng.Intn(maxLen) + 1
		seq := make([]dict.ItemID, l)
		for j := range seq {
			seq[j] = dict.ItemID(rng.Intn(d.Size()) + 1)
		}
		db[i] = seq
	}
	return d, f, db
}

// BenchmarkAnalyzeGrid measures pivot search with the position-state grid
// (the D-SEQ map phase).
func BenchmarkAnalyzeGrid(b *testing.B) {
	_, f, db := benchWorkload(200, 12)
	s := pivot.NewSearcher(f, paperex.Sigma, pivot.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Analyze(db[i%len(db)])
	}
}

// BenchmarkAnalyzeRuns measures the "no grid" ablation: pivot search by
// enumerating all accepting runs.
func BenchmarkAnalyzeRuns(b *testing.B) {
	_, f, db := benchWorkload(200, 12)
	s := pivot.NewSearcher(f, paperex.Sigma, pivot.Options{UseGrid: false})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Analyze(db[i%len(db)])
	}
}

// BenchmarkRewrite measures relevant-range rewriting on top of the analysis.
func BenchmarkRewrite(b *testing.B) {
	_, f, db := benchWorkload(200, 12)
	s := pivot.NewSearcher(f, paperex.Sigma, pivot.DefaultOptions())
	analyses := make([]*pivot.Analysis, len(db))
	for i, T := range db {
		analyses[i] = s.Analyze(T)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := i % len(db)
		for _, k := range analyses[idx].Pivots {
			s.Rewrite(db[idx], analyses[idx], k)
		}
	}
}

func BenchmarkMerge(b *testing.B) {
	d := paperex.Dict()
	u := []dict.ItemID{d.MustFid("b"), d.MustFid("c")}
	q := []dict.ItemID{d.MustFid("d"), d.MustFid("a1")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pivot.Merge(u, q)
	}
}

var (
	t3Once sync.Once
	t3FST  *fst.FST
	t3DB   [][]dict.ItemID
	t3Err  error
)

// t3Workload builds the AMZN-F dataset and the loose T3 constraint of the
// end-to-end BenchmarkAlgorithms_T3, scaled down to the map phase: the
// returned database is what D-SEQ's map workers analyze per sequence.
func t3Workload(b *testing.B) (*fst.FST, [][]dict.ItemID) {
	b.Helper()
	t3Once.Do(func() {
		ds, err := experiments.Generate(experiments.Scale{
			NYTSentences: 1, AmazonCustomers: 500, ClueWebSentences: 1, Workers: 2, Seed: 1,
		})
		if err != nil {
			t3Err = err
			return
		}
		t3FST = fst.MustCompile(experiments.T3Expr(1, 5), ds.AMZNF.Dict)
		t3DB = ds.AMZNF.Sequences
	})
	if t3Err != nil {
		b.Fatal(t3Err)
	}
	return t3FST, t3DB
}

// BenchmarkPivotAnalyze_T3 measures one full map-phase pivot analysis pass
// (grid and run-enumeration ablation) over the AMZN-F T3 workload — the
// per-sequence kernel behind BenchmarkAlgorithms_T3/D-SEQ.
func BenchmarkPivotAnalyze_T3(b *testing.B) {
	f, db := t3Workload(b)
	for _, cfg := range []struct {
		name string
		opts pivot.Options
	}{
		{"Grid", pivot.DefaultOptions()},
		{"Runs", pivot.Options{UseGrid: false}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			s := pivot.NewSearcher(f, 10, cfg.opts)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, T := range db {
					a := s.Analyze(T)
					for _, k := range a.Pivots {
						s.Rewrite(T, a, k)
					}
				}
			}
		})
	}
}
