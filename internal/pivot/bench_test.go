package pivot_test

import (
	"math/rand"
	"testing"

	"seqmine/internal/dict"
	"seqmine/internal/fst"
	"seqmine/internal/paperex"
	"seqmine/internal/pivot"
)

func benchWorkload(n, maxLen int) (*dict.Dictionary, *fst.FST, [][]dict.ItemID) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	rng := rand.New(rand.NewSource(2))
	db := make([][]dict.ItemID, n)
	for i := range db {
		l := rng.Intn(maxLen) + 1
		seq := make([]dict.ItemID, l)
		for j := range seq {
			seq[j] = dict.ItemID(rng.Intn(d.Size()) + 1)
		}
		db[i] = seq
	}
	return d, f, db
}

// BenchmarkAnalyzeGrid measures pivot search with the position-state grid
// (the D-SEQ map phase).
func BenchmarkAnalyzeGrid(b *testing.B) {
	_, f, db := benchWorkload(200, 12)
	s := pivot.NewSearcher(f, paperex.Sigma, pivot.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Analyze(db[i%len(db)])
	}
}

// BenchmarkAnalyzeRuns measures the "no grid" ablation: pivot search by
// enumerating all accepting runs.
func BenchmarkAnalyzeRuns(b *testing.B) {
	_, f, db := benchWorkload(200, 12)
	s := pivot.NewSearcher(f, paperex.Sigma, pivot.Options{UseGrid: false})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Analyze(db[i%len(db)])
	}
}

// BenchmarkRewrite measures relevant-range rewriting on top of the analysis.
func BenchmarkRewrite(b *testing.B) {
	_, f, db := benchWorkload(200, 12)
	s := pivot.NewSearcher(f, paperex.Sigma, pivot.DefaultOptions())
	analyses := make([]*pivot.Analysis, len(db))
	for i, T := range db {
		analyses[i] = s.Analyze(T)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := i % len(db)
		for _, k := range analyses[idx].Pivots {
			s.Rewrite(db[idx], analyses[idx], k)
		}
	}
}

func BenchmarkMerge(b *testing.B) {
	d := paperex.Dict()
	u := []dict.ItemID{d.MustFid("b"), d.MustFid("c")}
	q := []dict.ItemID{d.MustFid("d"), d.MustFid("a1")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pivot.Merge(u, q)
	}
}
