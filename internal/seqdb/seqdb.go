// Package seqdb provides the in-memory sequence database used by the miners:
// a dictionary plus encoded input sequences, simple text input/output, and
// the dataset statistics reported in Table II of the paper.
package seqdb

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"seqmine/internal/dict"
)

// Database is a sequence database together with its dictionary (vocabulary,
// hierarchy and f-list). Build lays all sequences out in one contiguous
// backing array (Sequences are sub-slices of it), so a full database scan —
// the shape of every mining pass — walks memory linearly instead of chasing
// one heap object per sequence.
type Database struct {
	Dict      *dict.Dictionary
	Sequences [][]dict.ItemID
}

// Hierarchy maps an item name to the names of its direct generalizations.
type Hierarchy map[string][]string

// Build constructs a Database from raw sequences of item names and a
// hierarchy. The dictionary's document frequencies are computed from the
// sequences (the f-list of the paper).
func Build(raw [][]string, hierarchy Hierarchy) (*Database, error) {
	b := dict.NewBuilder()
	for item, parents := range hierarchy {
		b.AddItem(item, parents...)
	}
	for _, seq := range raw {
		b.AddSequence(seq)
	}
	d, err := b.Build()
	if err != nil {
		return nil, err
	}
	total := 0
	for _, seq := range raw {
		total += len(seq)
	}
	backing := make([]dict.ItemID, 0, total)
	db := &Database{Dict: d, Sequences: make([][]dict.ItemID, len(raw))}
	for i, seq := range raw {
		start := len(backing)
		for _, name := range seq {
			fid, ok := d.Fid(name)
			if !ok {
				return nil, fmt.Errorf("seqdb: unknown item %q", name)
			}
			backing = append(backing, fid)
		}
		db.Sequences[i] = backing[start:len(backing):len(backing)]
	}
	return db, nil
}

// Compact re-lays arbitrary sequences into one contiguous backing array,
// returning sub-slices of it. Useful to restore scan locality after a
// database was assembled sequence by sequence (e.g. decoded from the wire).
func Compact(seqs [][]dict.ItemID) [][]dict.ItemID {
	total := 0
	for _, s := range seqs {
		total += len(s)
	}
	backing := make([]dict.ItemID, 0, total)
	out := make([][]dict.ItemID, len(seqs))
	for i, s := range seqs {
		start := len(backing)
		backing = append(backing, s...)
		out[i] = backing[start:len(backing):len(backing)]
	}
	return out
}

// NumSequences returns the number of input sequences.
func (db *Database) NumSequences() int { return len(db.Sequences) }

// Sample returns a database containing approximately fraction of the
// sequences (chosen pseudo-randomly with the given seed) sharing the original
// dictionary. Used by the data/weak scalability experiments.
func (db *Database) Sample(fraction float64, seed int64) *Database {
	if fraction >= 1 {
		return db
	}
	rng := rand.New(rand.NewSource(seed))
	out := &Database{Dict: db.Dict}
	for _, s := range db.Sequences {
		if rng.Float64() < fraction {
			out.Sequences = append(out.Sequences, s)
		}
	}
	return out
}

// Stats summarizes a database in the shape of Table II.
type Stats struct {
	NumSequences   int64
	TotalItems     int64
	UniqueItems    int
	MaxLength      int
	MeanLength     float64
	HierarchyItems int
	MaxAncestors   int
	MeanAncestors  float64
}

// Stats computes the Table II statistics of the database.
func (db *Database) Stats() Stats {
	s := Stats{
		NumSequences:   int64(len(db.Sequences)),
		HierarchyItems: db.Dict.Size(),
		MaxAncestors:   db.Dict.MaxAncestors(),
		MeanAncestors:  db.Dict.MeanAncestors(),
	}
	seen := map[dict.ItemID]bool{}
	for _, seq := range db.Sequences {
		s.TotalItems += int64(len(seq))
		if len(seq) > s.MaxLength {
			s.MaxLength = len(seq)
		}
		for _, w := range seq {
			seen[w] = true
		}
	}
	s.UniqueItems = len(seen)
	if s.NumSequences > 0 {
		s.MeanLength = float64(s.TotalItems) / float64(s.NumSequences)
	}
	return s
}

// String renders the statistics as a Table II style row set.
func (s Stats) String() string {
	return fmt.Sprintf("sequences=%d items=%d unique=%d maxLen=%d meanLen=%.1f hierarchyItems=%d maxAnc=%d meanAnc=%.1f",
		s.NumSequences, s.TotalItems, s.UniqueItems, s.MaxLength, s.MeanLength, s.HierarchyItems, s.MaxAncestors, s.MeanAncestors)
}

// ReadFiles loads a database from a sequence file (one sequence per line,
// space-separated items) and an optional hierarchy file
// ("child<TAB>parent1,parent2" per line; empty path for no hierarchy). It is
// the shared loading path of the root API and the service layer's registry.
func ReadFiles(sequencesPath, hierarchyPath string) (*Database, error) {
	sf, err := os.Open(sequencesPath)
	if err != nil {
		return nil, err
	}
	defer sf.Close()
	raw, err := ReadSequences(sf)
	if err != nil {
		return nil, err
	}
	hierarchy := Hierarchy{}
	if hierarchyPath != "" {
		hf, err := os.Open(hierarchyPath)
		if err != nil {
			return nil, err
		}
		defer hf.Close()
		hierarchy, err = ReadHierarchy(hf)
		if err != nil {
			return nil, err
		}
	}
	return Build(raw, hierarchy)
}

// WriteSequences writes raw sequences in the text format used by the command
// line tools: one sequence per line, items separated by single spaces. Items
// must not contain spaces or newlines.
func WriteSequences(w io.Writer, raw [][]string) error {
	bw := bufio.NewWriter(w)
	for _, seq := range raw {
		if _, err := fmt.Fprintln(bw, strings.Join(seq, " ")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSequences reads sequences in the WriteSequences format. Empty lines are
// skipped.
func ReadSequences(r io.Reader) ([][]string, error) {
	var out [][]string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		out = append(out, strings.Fields(line))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteHierarchy writes a hierarchy in the text format used by the command
// line tools: "child<TAB>parent1,parent2" per line.
func WriteHierarchy(w io.Writer, h Hierarchy) error {
	bw := bufio.NewWriter(w)
	for child, parents := range h {
		if _, err := fmt.Fprintf(bw, "%s\t%s\n", child, strings.Join(parents, ",")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadHierarchy reads a hierarchy written by WriteHierarchy.
func ReadHierarchy(r io.Reader) (Hierarchy, error) {
	h := Hierarchy{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "\t", 2)
		var parents []string
		if len(parts) == 2 && parts[1] != "" {
			parents = strings.Split(parts[1], ",")
		}
		h[parts[0]] = parents
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return h, nil
}
