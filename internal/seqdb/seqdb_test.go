package seqdb_test

import (
	"bytes"
	"reflect"
	"testing"

	"seqmine/internal/paperex"
	"seqmine/internal/seqdb"
)

func runningExampleDB(t *testing.T) *seqdb.Database {
	t.Helper()
	h := seqdb.Hierarchy{
		"a1": {"A"},
		"a2": {"A"},
		"A":  nil,
		"b":  nil, "c": nil, "d": nil, "e": nil,
	}
	db, err := seqdb.Build(paperex.RawDB(), h)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestBuildAndStats(t *testing.T) {
	db := runningExampleDB(t)
	s := db.Stats()
	if s.NumSequences != 5 {
		t.Errorf("NumSequences = %d, want 5", s.NumSequences)
	}
	if s.TotalItems != 22 {
		t.Errorf("TotalItems = %d, want 22", s.TotalItems)
	}
	if s.MaxLength != 7 {
		t.Errorf("MaxLength = %d, want 7", s.MaxLength)
	}
	if s.UniqueItems != 6 { // a1, a2, b, c, d, e appear; A does not appear literally
		t.Errorf("UniqueItems = %d, want 6", s.UniqueItems)
	}
	if s.HierarchyItems != 7 {
		t.Errorf("HierarchyItems = %d, want 7", s.HierarchyItems)
	}
	if s.MaxAncestors != 1 {
		t.Errorf("MaxAncestors = %d, want 1", s.MaxAncestors)
	}
	if s.MeanLength < 4.3 || s.MeanLength > 4.5 {
		t.Errorf("MeanLength = %f, want 4.4", s.MeanLength)
	}
	if s.String() == "" {
		t.Error("Stats.String should not be empty")
	}
	// Document frequencies must match the paper's f-list.
	if got := db.Dict.DocFreq(db.Dict.MustFid("A")); got != 4 {
		t.Errorf("f(A) = %d, want 4", got)
	}
}

func TestBuildUnknownParent(t *testing.T) {
	_, err := seqdb.Build([][]string{{"x"}}, seqdb.Hierarchy{"x": {"y"}})
	if err != nil {
		t.Fatalf("parents declared in hierarchy should be interned automatically: %v", err)
	}
}

func TestSample(t *testing.T) {
	db := runningExampleDB(t)
	half := db.Sample(0.5, 1)
	if half.Dict != db.Dict {
		t.Error("Sample must share the dictionary")
	}
	if half.NumSequences() > db.NumSequences() {
		t.Error("Sample must not grow the database")
	}
	full := db.Sample(1.0, 1)
	if full.NumSequences() != db.NumSequences() {
		t.Error("Sample(1.0) must keep all sequences")
	}
	// Deterministic for a fixed seed.
	again := db.Sample(0.5, 1)
	if again.NumSequences() != half.NumSequences() {
		t.Error("Sample must be deterministic for a fixed seed")
	}
}

func TestSequenceIORoundTrip(t *testing.T) {
	raw := paperex.RawDB()
	var buf bytes.Buffer
	if err := seqdb.WriteSequences(&buf, raw); err != nil {
		t.Fatal(err)
	}
	back, err := seqdb.ReadSequences(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, raw) {
		t.Errorf("sequence IO round trip mismatch: %v vs %v", back, raw)
	}
}

func TestHierarchyIORoundTrip(t *testing.T) {
	h := seqdb.Hierarchy{"a1": {"A"}, "a2": {"A"}, "A": nil}
	var buf bytes.Buffer
	if err := seqdb.WriteHierarchy(&buf, h); err != nil {
		t.Fatal(err)
	}
	back, err := seqdb.ReadHierarchy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(h) {
		t.Fatalf("hierarchy IO round trip: %v vs %v", back, h)
	}
	if !reflect.DeepEqual(back["a1"], []string{"A"}) {
		t.Errorf("a1 parents = %v", back["a1"])
	}
	if len(back["A"]) != 0 {
		t.Errorf("A parents = %v", back["A"])
	}
}

func TestReadHierarchyBareItem(t *testing.T) {
	h, err := seqdb.ReadHierarchy(bytes.NewReader([]byte("root-item\n")))
	if err != nil {
		t.Fatal(err)
	}
	if parents, ok := h["root-item"]; !ok || len(parents) != 0 {
		t.Errorf("bare item should be read with no parents, got %v", h)
	}
}
