package seqdb_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seqmine/internal/dict"
	"seqmine/internal/paperex"
	"seqmine/internal/seqdb"
)

func writeExampleDataset(t *testing.T, dir string) (seqPath, hierPath string) {
	t.Helper()
	var seqs strings.Builder
	for _, s := range paperex.RawDB() {
		seqs.WriteString(strings.Join(s, " "))
		seqs.WriteByte('\n')
	}
	seqPath = filepath.Join(dir, "sequences.txt")
	if err := os.WriteFile(seqPath, []byte(seqs.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	hierPath = filepath.Join(dir, "hierarchy.txt")
	if err := os.WriteFile(hierPath, []byte("a1\tA\na2\tA\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return seqPath, hierPath
}

func TestReadFiles(t *testing.T) {
	seqPath, hierPath := writeExampleDataset(t, t.TempDir())
	db, err := seqdb.ReadFiles(seqPath, hierPath)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSequences() != len(paperex.RawDB()) {
		t.Fatalf("NumSequences = %d, want %d", db.NumSequences(), len(paperex.RawDB()))
	}
	// The hierarchy must have taken effect: "A" is an ancestor item in the dict.
	if _, ok := db.Dict.Fid("A"); !ok {
		t.Fatal("ancestor item A missing from the dictionary")
	}

	// Omitting the hierarchy is allowed and yields a flat dictionary.
	flat, err := seqdb.ReadFiles(seqPath, "")
	if err != nil {
		t.Fatal(err)
	}
	if flat.NumSequences() != db.NumSequences() {
		t.Fatalf("flat NumSequences = %d", flat.NumSequences())
	}

	if _, err := seqdb.ReadFiles(filepath.Join(t.TempDir(), "absent.txt"), ""); err == nil {
		t.Fatal("missing sequences file accepted")
	}
	if _, err := seqdb.ReadFiles(seqPath, filepath.Join(t.TempDir(), "absent.txt")); err == nil {
		t.Fatal("missing hierarchy file accepted")
	}
}

func TestCompact(t *testing.T) {
	seqs := [][]dict.ItemID{{1, 2, 3}, nil, {4}, {5, 6}}
	out := seqdb.Compact(seqs)
	if len(out) != len(seqs) {
		t.Fatalf("len = %d, want %d", len(out), len(seqs))
	}
	for i := range seqs {
		if len(out[i]) != len(seqs[i]) {
			t.Fatalf("sequence %d: len %d, want %d", i, len(out[i]), len(seqs[i]))
		}
		for j := range seqs[i] {
			if out[i][j] != seqs[i][j] {
				t.Fatalf("sequence %d item %d = %d, want %d", i, j, out[i][j], seqs[i][j])
			}
		}
	}
	// Sub-slices are capacity-capped so appends cannot clobber a neighbor.
	if cap(out[0]) != len(out[0]) {
		t.Fatalf("sub-slice capacity %d leaks past its end (len %d)", cap(out[0]), len(out[0]))
	}
	// The output is a copy: mutating the input must not change it.
	seqs[0][0] = 99
	if out[0][0] != 1 {
		t.Fatal("Compact aliases its input")
	}
}
