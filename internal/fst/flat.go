package fst

import (
	"sync"

	"seqmine/internal/dict"
)

// Flat is the flattened, simulation-oriented form of a compiled FST: the
// per-state transition lists are laid out as contiguous int32 arrays walked by
// offset, label matching is precomputed into per-transition item bitsets (one
// bit test instead of a binary search over ancestor lists per position), and
// the output behaviour of every transition is pre-classified so the common
// single-item outputs need no slice allocation at simulation time. State sets
// are represented as bitsets ([]uint64 rows of Words() words), which keeps a
// whole accept matrix row in one or two machine words for the small automata
// pattern expressions compile to.
//
// A Flat is immutable after construction and safe for concurrent use; obtain
// one with FST.Flatten, which builds it once per FST and caches it.
type Flat struct {
	dict      *dict.Dictionary
	numStates int
	initial   int
	words     int      // bitset words per state-set row
	finalBits []uint64 // bitset of final states

	// Transition arrays, grouped by source state: state q's transitions are
	// indices off[q]..off[q+1].
	off []int32
	to  []int32
	// outKind classifies the output behaviour (see the outXxx constants).
	outKind []uint8
	// item is the label's referenced item for constant outputs and upTo sets.
	item []dict.ItemID
	// match is the per-transition bitset of accepted input items (bit t set
	// iff the label matches item t); nil means the label matches every item
	// (an unrestricted dot).
	match [][]uint64
	// upTo holds, for outUpTo transitions, the precomputed output set per
	// input item (anc(t) ∩ desc(w)); nil entries mean the label does not
	// match that item. Indexed like match by transition, then by item fid.
	upTo [][][]dict.ItemID

	// sigmaViews caches the frequency-filtered views built by Sigma, one per
	// minimum support threshold.
	sigmaMu    sync.Mutex
	sigmaViews map[int64]*SigmaView
}

// Output behaviour classes of a transition, precomputed from its Label.
const (
	// outNone produces no output (ε).
	outNone uint8 = iota
	// outInput outputs exactly the input item.
	outInput
	// outConst outputs exactly the label's item (forced generalization).
	outConst
	// outAncestors outputs all ancestors of the input item (captured dot with
	// generalization); the set is the dictionary's shared ancestor slice.
	outAncestors
	// outUpTo outputs anc(t) ∩ desc(item) (captured generalization below a
	// hierarchy item); sets are precomputed per input item in Flat.upTo.
	outUpTo
)

// Flatten returns the flattened form of the FST, building it on first use.
func (f *FST) Flatten() *Flat {
	f.flatOnce.Do(func() { f.flat = newFlat(f) })
	return f.flat
}

func newFlat(f *FST) *Flat {
	n := f.numStates
	fl := &Flat{
		dict:      f.dict,
		numStates: n,
		initial:   f.initial,
		words:     (n + 63) / 64,
		finalBits: make([]uint64, (n+63)/64),
		off:       make([]int32, n+1),
	}
	for q := 0; q < n; q++ {
		if f.final[q] {
			fl.finalBits[q>>6] |= 1 << (uint(q) & 63)
		}
	}
	total := f.NumTransitions()
	fl.to = make([]int32, 0, total)
	fl.outKind = make([]uint8, 0, total)
	fl.item = make([]dict.ItemID, 0, total)
	fl.match = make([][]uint64, 0, total)
	fl.upTo = make([][][]dict.ItemID, 0, total)
	vocab := f.dict.Size()
	for q := 0; q < n; q++ {
		fl.off[q] = int32(len(fl.to))
		for _, tr := range f.trans[q] {
			fl.to = append(fl.to, int32(tr.To))
			fl.outKind = append(fl.outKind, classifyOutput(tr.Label))
			fl.item = append(fl.item, tr.Label.Item)
			fl.match = append(fl.match, matchBitset(f.dict, tr.Label, vocab))
			fl.upTo = append(fl.upTo, upToSets(f.dict, tr.Label, vocab))
		}
	}
	fl.off[n] = int32(len(fl.to))
	return fl
}

// classifyOutput maps a label to its output behaviour class, mirroring
// Label.Outputs.
func classifyOutput(l Label) uint8 {
	switch {
	case !l.Captured:
		return outNone
	case l.Kind == KindDot && !l.Generalize:
		return outInput
	case l.Kind == KindDot && l.Generalize:
		return outAncestors
	case l.ForceGen:
		return outConst
	case l.Exact:
		return outInput
	case l.Generalize:
		return outUpTo
	default:
		return outInput
	}
}

// matchBitset precomputes which input items a label matches; nil means all.
func matchBitset(d *dict.Dictionary, l Label, vocab int) []uint64 {
	if l.Kind == KindDot {
		return nil
	}
	bits := make([]uint64, (vocab+1+63)/64)
	if l.Exact {
		t := l.Item
		bits[uint(t)>>6] |= 1 << (uint(t) & 63)
		return bits
	}
	for t := dict.ItemID(1); int(t) <= vocab; t++ {
		if d.IsA(t, l.Item) {
			bits[uint(t)>>6] |= 1 << (uint(t) & 63)
		}
	}
	return bits
}

// upToSets precomputes the outUpTo output sets per input item.
func upToSets(d *dict.Dictionary, l Label, vocab int) [][]dict.ItemID {
	if classifyOutput(l) != outUpTo {
		return nil
	}
	sets := make([][]dict.ItemID, vocab+1)
	for t := dict.ItemID(1); int(t) <= vocab; t++ {
		if d.IsA(t, l.Item) {
			sets[t] = d.AncestorsUpTo(t, l.Item)
		}
	}
	return sets
}

// Dict returns the dictionary the FST was compiled against.
func (fl *Flat) Dict() *dict.Dictionary { return fl.dict }

// NumStates returns the number of states.
func (fl *Flat) NumStates() int { return fl.numStates }

// Initial returns the initial state.
func (fl *Flat) Initial() int { return fl.initial }

// Words returns the number of uint64 words of one state-set bitset row.
func (fl *Flat) Words() int { return fl.words }

// IsFinal reports whether state q is final.
func (fl *Flat) IsFinal(q int) bool {
	return fl.finalBits[uint(q)>>6]&(1<<(uint(q)&63)) != 0
}

// Matches reports whether transition tr accepts input item t.
func (fl *Flat) Matches(tr int, t dict.ItemID) bool {
	m := fl.match[tr]
	return m == nil || m[uint(t)>>6]&(1<<(uint(t)&63)) != 0
}

// AcceptBits computes the accept matrix of T as bitset rows: bit q of row i
// (dst[i*Words():]) is set iff the remaining input T[i:] can be consumed from
// state q ending in a final state — the flat form of FST.AcceptMatrix. dst
// must have (len(T)+1)*Words() zeroed words; it is returned for convenience.
func (fl *Flat) AcceptBits(T []dict.ItemID, dst []uint64) []uint64 {
	return fl.reachBits(T, dst, false)
}

// FinishBits computes the finishable matrix of T as bitset rows: bit q of row
// i is set iff the remaining input can be consumed from state q ending in a
// final state while producing no further output (ε-output transitions only).
// dst must have (len(T)+1)*Words() zeroed words.
func (fl *Flat) FinishBits(T []dict.ItemID, dst []uint64) []uint64 {
	return fl.reachBits(T, dst, true)
}

func (fl *Flat) reachBits(T []dict.ItemID, dst []uint64, epsOnly bool) []uint64 {
	n, w := len(T), fl.words
	copy(dst[n*w:(n+1)*w], fl.finalBits)
	for i := n - 1; i >= 0; i-- {
		t := T[i]
		row := dst[i*w : (i+1)*w]
		next := dst[(i+1)*w : (i+2)*w]
		for q := 0; q < fl.numStates; q++ {
			for tr := fl.off[q]; tr < fl.off[q+1]; tr++ {
				if epsOnly && fl.outKind[tr] != outNone {
					continue
				}
				to := uint(fl.to[tr])
				if next[to>>6]&(1<<(to&63)) != 0 && fl.Matches(int(tr), t) {
					row[uint(q)>>6] |= 1 << (uint(q) & 63)
					break
				}
			}
		}
	}
	return dst
}

// acceptScratch pools the two-row scratch of CanAccept so the prefilter pass
// allocates nothing in steady state.
var acceptScratch = sync.Pool{New: func() any { return new([]uint64) }}

// CanAccept reports whether the FST has at least one accepting run for T,
// without materializing the full accept matrix: it runs the same backward
// reachability scan as AcceptBits but keeps only two bitset rows, so the pass
// is O(states) space and allocation free in steady state. It is the cheap
// first pass of the paper's two-pass prefilter: a sequence that cannot reach
// acceptance can produce no candidate subsequences (and therefore no pivot
// items), so full simulation can skip it.
func (fl *Flat) CanAccept(T []dict.ItemID) bool {
	w := fl.words
	if len(T) == 0 {
		return fl.IsFinal(fl.initial)
	}
	bufp := acceptScratch.Get().(*[]uint64)
	buf := *bufp
	if cap(buf) < 2*w {
		buf = make([]uint64, 2*w)
	}
	buf = buf[:2*w]
	cur, next := buf[:w], buf[w:2*w]
	copy(next, fl.finalBits)
	for i := len(T) - 1; i >= 0; i-- {
		t := T[i]
		clear(cur)
		any := false
		for q := 0; q < fl.numStates; q++ {
			for tr := fl.off[q]; tr < fl.off[q+1]; tr++ {
				to := uint(fl.to[tr])
				if next[to>>6]&(1<<(to&63)) != 0 && fl.Matches(int(tr), t) {
					cur[uint(q)>>6] |= 1 << (uint(q) & 63)
					any = true
					break
				}
			}
		}
		if !any {
			*bufp = buf
			acceptScratch.Put(bufp)
			return false
		}
		cur, next = next, cur
	}
	q := uint(fl.initial)
	ok := next[q>>6]&(1<<(q&63)) != 0
	*bufp = buf
	acceptScratch.Put(bufp)
	return ok
}

// OutputsFor returns the output set of transition tr for input item t, in one
// of two forms: a single output item (set == nil), or a shared sorted set that
// must not be modified. Both results are zero for ε-output transitions. The
// caller must have checked Matches(tr, t).
func (fl *Flat) OutputsFor(tr int, t dict.ItemID) (single dict.ItemID, set []dict.ItemID) {
	switch fl.outKind[tr] {
	case outNone:
		return dict.None, nil
	case outInput:
		return t, nil
	case outConst:
		return fl.item[tr], nil
	case outAncestors:
		return dict.None, fl.dict.Ancestors(t)
	default:
		return dict.None, fl.upTo[tr][t]
	}
}

// NumTransitions returns the total number of transitions in the flat table.
func (fl *Flat) NumTransitions() int { return len(fl.to) }

// TransitionsOf returns the half-open transition index range of state q.
func (fl *Flat) TransitionsOf(q int) (lo, hi int32) { return fl.off[q], fl.off[q+1] }

// To returns the target state of transition tr.
func (fl *Flat) To(tr int) int32 { return fl.to[tr] }

// ProducesOutput reports whether transition tr can produce output.
func (fl *Flat) ProducesOutput(tr int) bool { return fl.outKind[tr] != outNone }
