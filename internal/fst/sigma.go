package fst

import (
	"sort"

	"seqmine/internal/dict"
)

// SigmaView is the frequency-filtered view of a Flat for one minimum support
// threshold: every output set a transition can produce is pre-truncated to its
// frequent items at construction time, so the per-transition "drop infrequent
// outputs" filtering of the map-side kernels (pivot search, candidate
// enumeration) costs nothing at simulation time. For frequency-sorted
// dictionaries (every Builder-built dictionary) the truncation is a prefix cut
// — output sets are sorted ascending and "is frequent" is one compare against
// dict.MaxFrequentFid — so the filtered sets share the Flat's backing arrays
// and the view itself is cheap to build.
//
// A SigmaView is immutable and safe for concurrent use; obtain one with
// Flat.Sigma, which builds it once per (Flat, sigma) pair and caches it.
type SigmaView struct {
	fl    *Flat
	all   bool        // sigma <= 0: nothing is filtered
	byFid bool        // frequency-sorted dict: frequent iff fid <= limit
	limit dict.ItemID // largest frequent fid (byFid only)
	sigma int64

	// anc holds, per input item, the filtered ancestor set used by
	// outAncestors transitions; nil when the FST has no such transition (or
	// when all is set, in which case the dictionary's sets are used directly).
	anc [][]dict.ItemID
	// upTo holds the filtered output sets of outUpTo transitions, indexed like
	// Flat.upTo; nil entries fall through to the unfiltered sets.
	upTo [][][]dict.ItemID
}

// Sigma returns the frequency-filtered view of the flat FST for the given
// minimum support, building it on first use. sigma <= 0 yields the unfiltered
// view (every output item passes), matching the sigma <= 0 behaviour of
// EnumerateCandidates.
func (fl *Flat) Sigma(sigma int64) *SigmaView {
	if sigma <= 0 {
		sigma = 0
	}
	fl.sigmaMu.Lock()
	defer fl.sigmaMu.Unlock()
	if sv, ok := fl.sigmaViews[sigma]; ok {
		return sv
	}
	sv := newSigmaView(fl, sigma)
	if fl.sigmaViews == nil {
		fl.sigmaViews = make(map[int64]*SigmaView)
	}
	fl.sigmaViews[sigma] = sv
	return sv
}

func newSigmaView(fl *Flat, sigma int64) *SigmaView {
	sv := &SigmaView{fl: fl, sigma: sigma}
	if sigma <= 0 {
		sv.all = true
		return sv
	}
	d := fl.dict
	if d.FrequencySorted() {
		sv.byFid = true
		sv.limit = d.MaxFrequentFid(sigma)
	}
	needAnc := false
	for tr := 0; tr < len(fl.outKind); tr++ {
		switch fl.outKind[tr] {
		case outAncestors:
			needAnc = true
		case outUpTo:
			sets := make([][]dict.ItemID, len(fl.upTo[tr]))
			for t, set := range fl.upTo[tr] {
				sets[t] = sv.truncate(set)
			}
			if sv.upTo == nil {
				sv.upTo = make([][][]dict.ItemID, len(fl.outKind))
			}
			sv.upTo[tr] = sets
		}
	}
	if needAnc {
		vocab := d.Size()
		sv.anc = make([][]dict.ItemID, vocab+1)
		for t := dict.ItemID(1); int(t) <= vocab; t++ {
			sv.anc[t] = sv.truncate(d.Ancestors(t))
		}
	}
	return sv
}

// truncate filters a sorted output set down to its frequent items. For
// frequency-sorted dictionaries this is a prefix cut sharing the input's
// backing array; otherwise a filtered copy is built (once, at view build).
func (sv *SigmaView) truncate(set []dict.ItemID) []dict.ItemID {
	if set == nil {
		return nil
	}
	if sv.byFid {
		limit := sv.limit
		cut := sort.Search(len(set), func(i int) bool { return set[i] > limit })
		return set[:cut:cut]
	}
	var out []dict.ItemID
	for _, w := range set {
		if sv.fl.dict.IsFrequent(w, sv.sigma) {
			out = append(out, w)
		}
	}
	return out
}

// Frequent reports whether output item w survives the view's threshold.
func (sv *SigmaView) Frequent(w dict.ItemID) bool {
	if sv.all {
		return true
	}
	if sv.byFid {
		return w <= sv.limit
	}
	return sv.fl.dict.IsFrequent(w, sv.sigma)
}

// OutputsFor returns the frequency-filtered output set of transition tr for
// input item t, in one of two forms: a single output item (set == nil) or a
// shared sorted set that must not be modified. ε transitions return
// (None, nil, true); ok is false when the transition produces output but no
// output item is frequent — such an edge cannot contribute Gσ candidates and
// must be skipped. The caller must have checked Flat.Matches(tr, t).
func (sv *SigmaView) OutputsFor(tr int, t dict.ItemID) (single dict.ItemID, set []dict.ItemID, ok bool) {
	fl := sv.fl
	switch fl.outKind[tr] {
	case outNone:
		return dict.None, nil, true
	case outInput:
		if sv.Frequent(t) {
			return t, nil, true
		}
		return dict.None, nil, false
	case outConst:
		if w := fl.item[tr]; sv.Frequent(w) {
			return w, nil, true
		}
		return dict.None, nil, false
	case outAncestors:
		var s []dict.ItemID
		if sv.anc != nil {
			s = sv.anc[t]
		} else {
			s = fl.dict.Ancestors(t)
		}
		if len(s) == 0 {
			return dict.None, nil, false
		}
		return dict.None, s, true
	default: // outUpTo
		var s []dict.ItemID
		if sv.upTo != nil && sv.upTo[tr] != nil {
			s = sv.upTo[tr][t]
		} else {
			s = fl.upTo[tr][t]
		}
		if len(s) == 0 {
			return dict.None, nil, false
		}
		return dict.None, s, true
	}
}
