package fst_test

import (
	"math/rand"
	"testing"

	"seqmine/internal/dict"
	"seqmine/internal/fst"
	"seqmine/internal/paperex"
)

// flatTestPatterns exercise every output class of the flattened transition
// table: captured/uncaptured dots, exact items, generalization up to a
// hierarchy item, and forced generalization.
var flatTestPatterns = []string{
	paperex.PatternExpression,
	"[.*(.)]{1,5}.*",
	".*(.^)[.{0,1}(.^)]{1,4}.*",
	".*(a1).*(b).*",
	"(A^).*",
}

// finishMatrixRef computes the ε-output-only backward reachability matrix
// with the pointer representation: bit [i][q] iff T[i:] can be consumed from
// q into a final state using only transitions that produce no output. It is
// the independent reference for Flat.FinishBits.
func finishMatrixRef(f *fst.FST, T []dict.ItemID) [][]bool {
	d := f.Dict()
	n := len(T)
	m := make([][]bool, n+1)
	for i := range m {
		m[i] = make([]bool, f.NumStates())
	}
	for q := 0; q < f.NumStates(); q++ {
		m[n][q] = f.IsFinal(q)
	}
	for i := n - 1; i >= 0; i-- {
		for q := 0; q < f.NumStates(); q++ {
			for _, tr := range f.Transitions(q) {
				if tr.Label.ProducesOutput() {
					continue
				}
				if m[i+1][tr.To] && tr.Label.Matches(d, T[i]) {
					m[i][q] = true
					break
				}
			}
		}
	}
	return m
}

func bitsRow(dst []uint64, words, i, q int) bool {
	return dst[i*words+q>>6]&(1<<(uint(q)&63)) != 0
}

// TestFlatEquivalence cross-checks every Flat operation against the pointer
// FST it was flattened from, on random sequences: the bitset accept matrix
// against AcceptMatrix, the ε-only finish matrix against an independent
// reference, the two-row CanAccept prefilter against Accepts, and per-
// transition matching and outputs against the Label methods.
func TestFlatEquivalence(t *testing.T) {
	d := paperex.Dict()
	rng := rand.New(rand.NewSource(11))
	for _, pat := range flatTestPatterns {
		f := fst.MustCompile(pat, d)
		flat := f.Flatten()
		if flat.NumStates() != f.NumStates() || flat.Initial() != f.Initial() ||
			flat.NumTransitions() != f.NumTransitions() || flat.Dict() != d {
			t.Fatalf("%q: flat shape differs from the FST", pat)
		}
		for q := 0; q < f.NumStates(); q++ {
			if flat.IsFinal(q) != f.IsFinal(q) {
				t.Fatalf("%q: IsFinal(%d) mismatch", pat, q)
			}
			lo, hi := flat.TransitionsOf(q)
			trans := f.Transitions(q)
			if int(hi-lo) != len(trans) {
				t.Fatalf("%q: state %d has %d flat transitions, want %d", pat, q, hi-lo, len(trans))
			}
			for i, tr := range trans {
				fi := int(lo) + i
				if int(flat.To(fi)) != tr.To {
					t.Fatalf("%q: transition target mismatch at state %d", pat, q)
				}
				if flat.ProducesOutput(fi) != tr.Label.ProducesOutput() {
					t.Fatalf("%q: ProducesOutput mismatch at state %d", pat, q)
				}
				for item := dict.ItemID(1); int(item) <= d.Size(); item++ {
					if flat.Matches(fi, item) != tr.Label.Matches(d, item) {
						t.Fatalf("%q: Matches(%d, %v) mismatch", pat, fi, item)
					}
					if !tr.Label.Matches(d, item) {
						continue
					}
					want := tr.Label.Outputs(d, item)
					single, set := flat.OutputsFor(fi, item)
					var got []dict.ItemID
					switch {
					case single != dict.None:
						got = []dict.ItemID{single}
					default:
						got = set
					}
					if len(got) != len(want) {
						t.Fatalf("%q: OutputsFor(%d, %v) = %v, want %v", pat, fi, item, got, want)
					}
					for j := range got {
						if got[j] != want[j] {
							t.Fatalf("%q: OutputsFor(%d, %v) = %v, want %v", pat, fi, item, got, want)
						}
					}
				}
			}
		}

		for trial := 0; trial < 50; trial++ {
			T := make([]dict.ItemID, rng.Intn(12))
			for j := range T {
				T[j] = dict.ItemID(rng.Intn(d.Size()) + 1)
			}
			words := flat.Words()
			accept := make([]uint64, (len(T)+1)*words)
			flat.AcceptBits(T, accept)
			ref := f.AcceptMatrix(T)
			for i := 0; i <= len(T); i++ {
				for q := 0; q < f.NumStates(); q++ {
					if bitsRow(accept, words, i, q) != ref[i][q] {
						t.Fatalf("%q: AcceptBits[%d][%d] = %v, want %v (T=%v)",
							pat, i, q, !ref[i][q], ref[i][q], T)
					}
				}
			}
			finish := make([]uint64, (len(T)+1)*words)
			flat.FinishBits(T, finish)
			fref := finishMatrixRef(f, T)
			for i := 0; i <= len(T); i++ {
				for q := 0; q < f.NumStates(); q++ {
					if bitsRow(finish, words, i, q) != fref[i][q] {
						t.Fatalf("%q: FinishBits[%d][%d] = %v, want %v (T=%v)",
							pat, i, q, !fref[i][q], fref[i][q], T)
					}
				}
			}
			if got, want := flat.CanAccept(T), f.Accepts(T); got != want {
				t.Fatalf("%q: CanAccept(%v) = %v, want %v", pat, T, got, want)
			}
		}
	}
}

// TestFlattenCached checks that Flatten builds once and returns the cached
// Flat on every later call.
func TestFlattenCached(t *testing.T) {
	f := fst.MustCompile(paperex.PatternExpression, paperex.Dict())
	if f.Flatten() != f.Flatten() {
		t.Fatal("Flatten must return the same cached Flat")
	}
}

// TestCanAcceptEmpty pins the empty-sequence semantics of the prefilter: an
// empty input is acceptable iff the initial state is final, matching Accepts.
func TestCanAcceptEmpty(t *testing.T) {
	d := paperex.Dict()
	for _, pat := range []string{paperex.PatternExpression, ".*"} {
		f := fst.MustCompile(pat, d)
		if got, want := f.Flatten().CanAccept(nil), f.Accepts(nil); got != want {
			t.Errorf("%q: CanAccept(nil) = %v, want %v", pat, got, want)
		}
	}
}

// FuzzFlatEquivalence derives a sequence from the fuzz input and cross-checks
// the flattened simulation primitives against the pointer FST on every test
// pattern: the prefilter must agree with Accepts and the bitset accept matrix
// with AcceptMatrix. Any divergence is a miscompiled flat table.
func FuzzFlatEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5})
	f.Add([]byte{})
	f.Add([]byte{9, 9, 9, 1, 1, 1, 2})
	d := paperex.Dict()
	fsts := make([]*fst.FST, len(flatTestPatterns))
	for i, pat := range flatTestPatterns {
		fsts[i] = fst.MustCompile(pat, d)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 32 {
			data = data[:32]
		}
		T := make([]dict.ItemID, len(data))
		for i, c := range data {
			T[i] = dict.ItemID(int(c)%d.Size() + 1)
		}
		for i, fm := range fsts {
			flat := fm.Flatten()
			if got, want := flat.CanAccept(T), fm.Accepts(T); got != want {
				t.Fatalf("%q: CanAccept = %v, Accepts = %v (T=%v)", flatTestPatterns[i], got, want, T)
			}
			words := flat.Words()
			accept := make([]uint64, (len(T)+1)*words)
			flat.AcceptBits(T, accept)
			ref := fm.AcceptMatrix(T)
			for pos := 0; pos <= len(T); pos++ {
				for q := 0; q < fm.NumStates(); q++ {
					if bitsRow(accept, words, pos, q) != ref[pos][q] {
						t.Fatalf("%q: AcceptBits[%d][%d] disagrees with AcceptMatrix (T=%v)",
							flatTestPatterns[i], pos, q, T)
					}
				}
			}
		}
	})
}
