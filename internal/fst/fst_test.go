package fst_test

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"seqmine/internal/dict"
	"seqmine/internal/fst"
	"seqmine/internal/paperex"
)

// decodeAll renders candidate sequences as sorted space-separated strings.
func decodeAll(d *dict.Dictionary, cands [][]dict.ItemID) []string {
	out := make([]string, 0, len(cands))
	for _, c := range cands {
		out = append(out, d.DecodeString(c))
	}
	sort.Strings(out)
	return out
}

func sorted(ss []string) []string {
	out := make([]string, 0, len(ss))
	out = append(out, ss...)
	sort.Strings(out)
	return out
}

// TestRunningExampleCandidates checks Gπex(T) for every sequence of the
// running example against Fig. 3 of the paper.
func TestRunningExampleCandidates(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	db := paperex.DB(d)

	want := [][]string{
		{"a1 c d c b", "a1 c d b", "a1 c b", "a1 d c b", "a1 c c b", "a1 d b", "a1 b"},
		{"a1 a1 b", "a1 A b", "a1 b", "a1 e b", "a1 e e b", "a1 a1 e b", "a1 A e b",
			"a1 e a1 b", "a1 e A b", "a1 e a1 e b", "a1 e A e b"},
		{},
		{"a2 d b", "a2 b"},
		{"a1 a1 b", "a1 A b", "a1 b"},
	}
	for i, T := range db {
		got := decodeAll(d, f.EnumerateCandidates(T, 0))
		if !reflect.DeepEqual(got, sorted(want[i])) {
			t.Errorf("Gπex(T%d) = %v, want %v", i+1, got, sorted(want[i]))
		}
		if got := f.CountCandidates(T, 0); got != len(want[i]) {
			t.Errorf("CountCandidates(T%d) = %d, want %d", i+1, got, len(want[i]))
		}
	}
}

// TestRunningExampleFrequentItemCandidates checks Gσπex(T) (σ=2): candidates
// containing infrequent items are excluded (crossed out in Fig. 3).
func TestRunningExampleFrequentItemCandidates(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	db := paperex.DB(d)

	want := [][]string{
		{"a1 c d c b", "a1 c d b", "a1 c b", "a1 d c b", "a1 c c b", "a1 d b", "a1 b"},
		{"a1 a1 b", "a1 A b", "a1 b"},
		{},
		{},
		{"a1 a1 b", "a1 A b", "a1 b"},
	}
	for i, T := range db {
		got := decodeAll(d, f.EnumerateCandidates(T, paperex.Sigma))
		if !reflect.DeepEqual(got, sorted(want[i])) {
			t.Errorf("Gσπex(T%d) = %v, want %v", i+1, got, sorted(want[i]))
		}
	}
}

func TestAccepts(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	db := paperex.DB(d)
	want := []bool{true, true, false, true, true}
	for i, T := range db {
		if got := f.Accepts(T); got != want[i] {
			t.Errorf("Accepts(T%d) = %v, want %v", i+1, got, want[i])
		}
	}
	if f.Accepts(nil) {
		t.Error("Accepts(empty) should be false for πex")
	}
}

func TestAcceptingRunsT5(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	T5, _ := d.EncodeSequence([]string{"a1", "a1", "b"})
	if n := f.CountAcceptingRuns(T5); n < 1 {
		t.Fatalf("expected at least one accepting run, got %d", n)
	}
	// Every accepting run must produce output sets whose Cartesian product is
	// a subset of Gπex(T5); their union must be exactly Gπex(T5).
	wantSet := map[string]bool{"a1 a1 b": true, "a1 A b": true, "a1 b": true}
	gotSet := map[string]bool{}
	f.ForEachRun(T5, func(outputs [][]dict.ItemID) bool {
		var expand func(i int, cur []dict.ItemID)
		expand = func(i int, cur []dict.ItemID) {
			if i == len(outputs) {
				if len(cur) > 0 {
					gotSet[d.DecodeString(cur)] = true
				}
				return
			}
			if outputs[i] == nil {
				expand(i+1, cur)
				return
			}
			for _, w := range outputs[i] {
				expand(i+1, append(cur, w))
			}
		}
		expand(0, nil)
		return true
	})
	if !reflect.DeepEqual(gotSet, wantSet) {
		t.Errorf("run outputs generate %v, want %v", gotSet, wantSet)
	}
}

// simpleDict builds a small dictionary with hierarchy x1,x2 -> X and flat
// items y, z.
func simpleDict(t *testing.T) *dict.Dictionary {
	t.Helper()
	b := dict.NewBuilder()
	b.AddItem("x1", "X")
	b.AddItem("x2", "X")
	b.AddItem("y")
	b.AddItem("z")
	b.AddSequence([]string{"x1", "y", "z"})
	b.AddSequence([]string{"x2", "y"})
	b.AddSequence([]string{"y"})
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestItemExpressionSemantics(t *testing.T) {
	d := simpleDict(t)
	enc := func(items ...string) []dict.ItemID {
		s, err := d.EncodeSequence(items)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := []struct {
		pattern string
		input   []dict.ItemID
		want    []string
	}{
		{"(X)", enc("x1"), []string{"x1"}},                   // matched item, no generalization
		{"(X^)", enc("x1"), []string{"X", "x1"}},             // generalize up to X
		{"(X^=)", enc("x1"), []string{"X"}},                  // forced generalization
		{"(X=)", enc("x1"), []string{}},                      // exact: x1 != X
		{"(x1=)", enc("x1"), []string{"x1"}},                 // exact match of a leaf
		{"(.)", enc("y"), []string{"y"}},                     // wildcard capture
		{"(.^)", enc("x1"), []string{"X", "x1"}},             // wildcard with generalization
		{"X (y)", enc("x1", "y"), []string{"y"}},             // uncaptured context item
		{"(.){2}", enc("y", "z"), []string{"y z"}},           // fixed repetition
		{"(.){2}", enc("y"), []string{}},                     // too short
		{"(.){1,2}", enc("y"), []string{"y"}},                // bounded repetition
		{"(y) .* (z)", enc("y", "x1", "z"), []string{"y z"}}, // gap via .*
		{"[(y)|(z)]", enc("z"), []string{"z"}},               // alternation
		{"(X^) (y)?", enc("x2", "y"), []string{"X y", "x2 y"}},
	}
	for _, c := range cases {
		f := fst.MustCompile(c.pattern, d)
		got := decodeAll(d, f.EnumerateCandidates(c.input, 0))
		if !reflect.DeepEqual(got, sorted(c.want)) {
			t.Errorf("%q on %v = %v, want %v", c.pattern, d.DecodeSequence(c.input), got, sorted(c.want))
		}
	}
}

func TestCompileUnknownItem(t *testing.T) {
	d := simpleDict(t)
	if _, err := fst.Compile("(UNKNOWN)", d); err == nil {
		t.Fatal("expected error for unknown item in pattern")
	}
	if _, err := fst.Compile("((", d); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestCompileStructure(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	if f.NumStates() == 0 || f.NumTransitions() == 0 {
		t.Fatal("compiled FST is empty")
	}
	if f.Initial() < 0 || f.Initial() >= f.NumStates() {
		t.Fatalf("invalid initial state %d", f.Initial())
	}
	finals := 0
	for q := 0; q < f.NumStates(); q++ {
		if f.IsFinal(q) {
			finals++
		}
		for _, tr := range f.Transitions(q) {
			if tr.To < 0 || tr.To >= f.NumStates() {
				t.Fatalf("transition to invalid state %d", tr.To)
			}
		}
	}
	if finals == 0 {
		t.Fatal("compiled FST has no final states")
	}
	if f.Dict() != d {
		t.Fatal("Dict() must return the compile-time dictionary")
	}
}

func TestMaxLengthConstraint(t *testing.T) {
	// T1-style PrefixSpan constraint with lambda = 2: subsequences of length
	// 1 or 2 with arbitrary gaps. Explicit .* context is added because the FST
	// consumes the whole input sequence.
	d := simpleDict(t)
	f := fst.MustCompile("[.*(.)]{1,2}.*", d)
	T, _ := d.EncodeSequence([]string{"x1", "y", "z"})
	got := decodeAll(d, f.EnumerateCandidates(T, 0))
	want := sorted([]string{"x1", "y", "z", "x1 y", "x1 z", "y z"})
	if !reflect.DeepEqual(got, want) {
		t.Errorf("length-2 subsequences = %v, want %v", got, want)
	}
}

func TestMaxGapConstraint(t *testing.T) {
	// T2-style constraint: gap 0 (consecutive items), length exactly 2.
	d := simpleDict(t)
	f := fst.MustCompile(".*(.)[.{0,0}(.)]{1,1}.*", d)
	T, _ := d.EncodeSequence([]string{"x1", "y", "z"})
	got := decodeAll(d, f.EnumerateCandidates(T, 0))
	want := sorted([]string{"x1 y", "y z"})
	if !reflect.DeepEqual(got, want) {
		t.Errorf("consecutive bigrams = %v, want %v", got, want)
	}
}

// TestRunsGenerateCandidates cross-checks ForEachRun against
// EnumerateCandidates on random sequences over the paper dictionary.
func TestRunsGenerateCandidates(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(7)
		T := make([]dict.ItemID, n)
		for i := range T {
			T[i] = dict.ItemID(rng.Intn(d.Size()) + 1)
		}
		want := map[string]bool{}
		for _, c := range f.EnumerateCandidates(T, 0) {
			want[d.DecodeString(c)] = true
		}
		got := map[string]bool{}
		f.ForEachRun(T, func(outputs [][]dict.ItemID) bool {
			var expand func(i int, cur []dict.ItemID)
			expand = func(i int, cur []dict.ItemID) {
				if i == len(outputs) {
					if len(cur) > 0 {
						got[d.DecodeString(cur)] = true
					}
					return
				}
				if outputs[i] == nil {
					expand(i+1, cur)
					return
				}
				for _, w := range outputs[i] {
					expand(i+1, append(cur, w))
				}
			}
			expand(0, nil)
			return true
		})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: runs generate %v, candidates %v (T=%v)", trial, got, want, d.DecodeSequence(T))
		}
	}
}

// TestSigmaFilterProperty: Gσπ(T) must equal Gπ(T) restricted to candidates
// whose items are all frequent.
func TestSigmaFilterProperty(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	check := func(raw []uint8) bool {
		T := make([]dict.ItemID, 0, len(raw))
		for _, v := range raw {
			T = append(T, dict.ItemID(v%7+1))
		}
		if len(T) > 8 {
			T = T[:8]
		}
		all := f.EnumerateCandidates(T, 0)
		var filtered []string
		for _, c := range all {
			ok := true
			for _, w := range c {
				if !d.IsFrequent(w, paperex.Sigma) {
					ok = false
					break
				}
			}
			if ok {
				filtered = append(filtered, d.DecodeString(c))
			}
		}
		sort.Strings(filtered)
		got := decodeAll(d, f.EnumerateCandidates(T, paperex.Sigma))
		if len(filtered) == 0 && len(got) == 0 {
			return true
		}
		return reflect.DeepEqual(got, filtered)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAcceptMatrixDimensions(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	T, _ := d.EncodeSequence([]string{"a1", "a1", "b"})
	m := f.AcceptMatrix(T)
	if len(m) != len(T)+1 {
		t.Fatalf("AcceptMatrix has %d rows, want %d", len(m), len(T)+1)
	}
	for i, row := range m {
		if len(row) != f.NumStates() {
			t.Fatalf("row %d has %d cols, want %d", i, len(row), f.NumStates())
		}
	}
	if !m[0][f.Initial()] {
		t.Error("initial coordinate should be accepting-reachable for T5")
	}
}

func TestLabelString(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile("(A^) b", d)
	var labels []string
	for q := 0; q < f.NumStates(); q++ {
		for _, tr := range f.Transitions(q) {
			labels = append(labels, tr.Label.String())
		}
	}
	joined := strings.Join(labels, " ")
	if !strings.Contains(joined, "(") || !strings.Contains(joined, "^") {
		t.Errorf("expected a captured generalizing label in %q", joined)
	}
}
