package fst

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"seqmine/internal/dict"
	"seqmine/internal/paperex"
)

// enumPatterns mirror flatTestPatterns (flat_test.go): one pattern per output
// class of the flattened transition table.
var enumPatterns = []string{
	paperex.PatternExpression,
	"[.*(.)]{1,5}.*",
	".*(.^)[.{0,1}(.^)]{1,4}.*",
	".*(a1).*(b).*",
	"(A^).*",
}

// enumOracle collects the distinct candidates of the pointer-walking
// simulation — the pre-flattening reference the flat enumeration must match.
func enumOracle(f *FST, T []dict.ItemID, sigma int64) [][]dict.ItemID {
	set := map[string][]dict.ItemID{}
	f.enumerateLimited(T, sigma, func(cand []dict.ItemID) bool {
		key := dict.PackKey(cand)
		if _, ok := set[key]; !ok {
			set[key] = append([]dict.ItemID(nil), cand...)
		}
		return true
	})
	out := make([][]dict.ItemID, 0, len(set))
	for _, c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return lessSeq(out[i], out[j]) })
	return out
}

// TestFlatEnumerationMatchesPointerOracle cross-checks the flat candidate
// enumeration (SigmaView filtering, pooled scratch, open-addressing dedup)
// against the pointer-walking oracle on the running example and random
// sequences, for unfiltered and filtered thresholds, including the early-stop
// truncation semantics of CountCandidatesUpTo.
func TestFlatEnumerationMatchesPointerOracle(t *testing.T) {
	d := paperex.Dict()
	rng := rand.New(rand.NewSource(7))
	seqs := append([][]dict.ItemID{nil}, paperex.DB(d)...)
	for trial := 0; trial < 40; trial++ {
		T := make([]dict.ItemID, rng.Intn(10))
		for j := range T {
			T[j] = dict.ItemID(rng.Intn(d.Size()) + 1)
		}
		seqs = append(seqs, T)
	}
	for _, pat := range enumPatterns {
		f := MustCompile(pat, d)
		for _, sigma := range []int64{0, 2, 4} {
			for _, T := range seqs {
				want := enumOracle(f, T, sigma)
				got := f.EnumerateCandidates(T, sigma)
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%q σ=%d T=%v: flat enumeration = %v, want %v", pat, sigma, T, got, want)
				}
				if n := f.CountCandidates(T, sigma); n != len(want) {
					t.Fatalf("%q σ=%d T=%v: CountCandidates = %d, want %d", pat, sigma, T, n, len(want))
				}
				const limit = 3
				n, trunc := f.CountCandidatesUpTo(T, sigma, limit)
				wantN, wantTrunc := len(want), false
				if wantN >= limit {
					wantN, wantTrunc = limit, true
				}
				if n != wantN || trunc != wantTrunc {
					t.Fatalf("%q σ=%d T=%v: CountCandidatesUpTo = (%d, %v), want (%d, %v)",
						pat, sigma, T, n, trunc, wantN, wantTrunc)
				}
			}
		}
	}
}

// TestSigmaViewCached checks that Sigma builds one view per threshold and
// returns the cached view on later calls, with sigma <= 0 collapsing to one
// unfiltered view.
func TestSigmaViewCached(t *testing.T) {
	fl := MustCompile(paperex.PatternExpression, paperex.Dict()).Flatten()
	if fl.Sigma(2) != fl.Sigma(2) {
		t.Fatal("Sigma(2) must return the cached view")
	}
	if fl.Sigma(0) != fl.Sigma(-5) {
		t.Fatal("sigma <= 0 must collapse to the single unfiltered view")
	}
	if fl.Sigma(2) == fl.Sigma(3) {
		t.Fatal("distinct thresholds must get distinct views")
	}
}
