// Package fst implements the finite state transducer model of DESQ (Sec. IV
// of the paper). A pattern expression is compiled into an FST whose accepting
// runs on an input sequence T generate exactly the candidate subsequences
// Gπ(T) of the subsequence predicate π described by the expression.
//
// States are numbered 0..NumStates-1. Every transition consumes one input
// item; ε-transitions produced by the Thompson construction are eliminated at
// compile time. A transition's Label describes both which input items it
// matches and which output items it produces (possibly none, written ε).
package fst

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"seqmine/internal/dict"
	"seqmine/internal/patex"
)

// LabelKind distinguishes wildcard from item-based transition labels.
type LabelKind uint8

const (
	// KindDot matches any input item.
	KindDot LabelKind = iota
	// KindItem matches the label's Item or (unless Exact) any of its
	// descendants.
	KindItem
)

// Label is the input/output behaviour of one FST transition, derived from a
// single item expression of the pattern language.
type Label struct {
	Kind       LabelKind
	Item       dict.ItemID // referenced item for KindItem
	Exact      bool        // match only Item itself (the "=" marker)
	Generalize bool        // "^": outputs may generalize along the hierarchy
	ForceGen   bool        // "^=": output is always Item
	Captured   bool        // inside a capture group: produces output items
}

// Matches reports whether the label accepts input item t.
func (l Label) Matches(d *dict.Dictionary, t dict.ItemID) bool {
	switch l.Kind {
	case KindDot:
		return true
	default:
		if l.Exact {
			return t == l.Item
		}
		return d.IsA(t, l.Item)
	}
}

// Outputs returns the output set of the label for input item t, assuming the
// label matches t. A nil result denotes ε (no output). The result is sorted by
// ascending fid.
func (l Label) Outputs(d *dict.Dictionary, t dict.ItemID) []dict.ItemID {
	if !l.Captured {
		return nil
	}
	switch {
	case l.Kind == KindDot && !l.Generalize:
		return []dict.ItemID{t}
	case l.Kind == KindDot && l.Generalize:
		return d.Ancestors(t)
	case l.ForceGen:
		return []dict.ItemID{l.Item}
	case l.Exact:
		return []dict.ItemID{t}
	case l.Generalize:
		return d.AncestorsUpTo(t, l.Item)
	default:
		return []dict.ItemID{t}
	}
}

// ProducesOutput reports whether the label can produce a non-ε output.
func (l Label) ProducesOutput() bool { return l.Captured }

// String renders the label in pattern-expression syntax (for debugging).
func (l Label) String() string {
	s := ""
	if l.Kind == KindDot {
		s = "."
	} else {
		s = fmt.Sprintf("#%d", l.Item)
	}
	if l.Generalize {
		s += "^"
	}
	if l.Exact || l.ForceGen {
		s += "="
	}
	if l.Captured {
		s = "(" + s + ")"
	}
	return s
}

// Transition is one labeled edge of the FST.
type Transition struct {
	To    int
	Label Label
}

// FST is a compiled pattern expression: a finite state transducer over the
// item vocabulary of a Dictionary.
type FST struct {
	dict      *dict.Dictionary
	numStates int
	initial   int
	final     []bool
	trans     [][]Transition // outgoing transitions per state

	// flat caches the flattened simulation form (see Flatten); built at most
	// once and immutable afterwards, so sharing an FST across goroutines stays
	// safe.
	flatOnce sync.Once
	flat     *Flat
}

// Dict returns the dictionary the FST was compiled against.
func (f *FST) Dict() *dict.Dictionary { return f.dict }

// NumStates returns the number of states.
func (f *FST) NumStates() int { return f.numStates }

// Initial returns the initial state.
func (f *FST) Initial() int { return f.initial }

// IsFinal reports whether state q is a final state.
func (f *FST) IsFinal(q int) bool { return f.final[q] }

// Transitions returns the outgoing transitions of state q. The returned slice
// must not be modified.
func (f *FST) Transitions(q int) []Transition { return f.trans[q] }

// NumTransitions returns the total number of transitions.
func (f *FST) NumTransitions() int {
	n := 0
	for _, ts := range f.trans {
		n += len(ts)
	}
	return n
}

// Compile parses the given pattern expression and compiles it for the
// dictionary.
func Compile(expression string, d *dict.Dictionary) (*FST, error) {
	ast, err := patex.Parse(expression)
	if err != nil {
		return nil, err
	}
	return CompileAST(ast, d)
}

// MustCompile is Compile for tests and examples; it panics on error.
func MustCompile(expression string, d *dict.Dictionary) *FST {
	f, err := Compile(expression, d)
	if err != nil {
		panic("fst: " + err.Error())
	}
	return f
}

// CompileAST compiles a parsed pattern expression for the dictionary.
func CompileAST(node patex.Node, d *dict.Dictionary) (*FST, error) {
	b := &builder{dict: d}
	start, end, err := b.compile(node, false)
	if err != nil {
		return nil, err
	}
	return b.finish(start, end), nil
}

// builder constructs a Thompson ε-NFA fragment and then eliminates ε
// transitions.
type builder struct {
	dict     *dict.Dictionary
	numState int
	eps      [][]int        // ε edges per state
	labeled  [][]Transition // labeled edges per state
}

func (b *builder) newState() int {
	b.numState++
	b.eps = append(b.eps, nil)
	b.labeled = append(b.labeled, nil)
	return b.numState - 1
}

func (b *builder) addEps(from, to int) {
	if from == to {
		return
	}
	b.eps[from] = append(b.eps[from], to)
}

func (b *builder) addLabeled(from, to int, l Label) {
	b.labeled[from] = append(b.labeled[from], Transition{To: to, Label: l})
}

// compile returns the (start, end) states of the fragment for node.
func (b *builder) compile(node patex.Node, captured bool) (int, int, error) {
	switch t := node.(type) {
	case *patex.ItemExpr:
		return b.compileItem(t, captured)
	case *patex.Capture:
		return b.compile(t.Child, true)
	case *patex.Concat:
		start := -1
		end := -1
		for _, child := range t.Children {
			cs, ce, err := b.compile(child, captured)
			if err != nil {
				return 0, 0, err
			}
			if start == -1 {
				start, end = cs, ce
				continue
			}
			b.addEps(end, cs)
			end = ce
		}
		if start == -1 {
			s := b.newState()
			return s, s, nil
		}
		return start, end, nil
	case *patex.Union:
		start := b.newState()
		end := b.newState()
		for _, child := range t.Children {
			cs, ce, err := b.compile(child, captured)
			if err != nil {
				return 0, 0, err
			}
			b.addEps(start, cs)
			b.addEps(ce, end)
		}
		return start, end, nil
	case *patex.Repeat:
		return b.compileRepeat(t, captured)
	default:
		return 0, 0, fmt.Errorf("fst: unknown AST node %T", node)
	}
}

func (b *builder) compileItem(e *patex.ItemExpr, captured bool) (int, int, error) {
	l := Label{
		Generalize: e.Generalize,
		ForceGen:   e.ForceGen,
		Exact:      e.Exact,
		Captured:   captured,
	}
	if e.Wildcard {
		l.Kind = KindDot
	} else {
		fid, ok := b.dict.Fid(e.Item)
		if !ok {
			return 0, 0, fmt.Errorf("fst: pattern references unknown item %q", e.Item)
		}
		l.Kind = KindItem
		l.Item = fid
	}
	s := b.newState()
	t := b.newState()
	b.addLabeled(s, t, l)
	return s, t, nil
}

func (b *builder) compileRepeat(r *patex.Repeat, captured bool) (int, int, error) {
	start := b.newState()
	end := start
	// Mandatory copies.
	for i := 0; i < r.Min; i++ {
		cs, ce, err := b.compile(r.Child, captured)
		if err != nil {
			return 0, 0, err
		}
		b.addEps(end, cs)
		end = ce
	}
	if r.Unbounded {
		// Kleene star of one more copy.
		cs, ce, err := b.compile(r.Child, captured)
		if err != nil {
			return 0, 0, err
		}
		loopEnd := b.newState()
		b.addEps(end, cs)
		b.addEps(end, loopEnd)
		b.addEps(ce, cs)
		b.addEps(ce, loopEnd)
		return start, loopEnd, nil
	}
	// Optional copies up to Max.
	var skipTargets []int
	for i := r.Min; i < r.Max; i++ {
		cs, ce, err := b.compile(r.Child, captured)
		if err != nil {
			return 0, 0, err
		}
		b.addEps(end, cs)
		skipTargets = append(skipTargets, end)
		end = ce
	}
	for _, s := range skipTargets {
		b.addEps(s, end)
	}
	return start, end, nil
}

// finish eliminates ε transitions, trims unreachable and dead states and
// returns the final FST.
func (b *builder) finish(start, end int) *FST {
	n := b.numState
	// ε-closures.
	closure := make([][]int, n)
	for s := 0; s < n; s++ {
		seen := make([]bool, n)
		stack := []int{s}
		seen[s] = true
		var cl []int
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cl = append(cl, u)
			for _, v := range b.eps[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		closure[s] = cl
	}

	final := make([]bool, n)
	trans := make([][]Transition, n)
	for s := 0; s < n; s++ {
		type edge struct {
			to    int
			label Label
		}
		seenEdge := map[edge]bool{}
		for _, u := range closure[s] {
			if u == end {
				final[s] = true
			}
			for _, tr := range b.labeled[u] {
				e := edge{to: tr.To, label: tr.Label}
				if !seenEdge[e] {
					seenEdge[e] = true
					trans[s] = append(trans[s], tr)
				}
			}
		}
	}

	// Forward reachability from the start state.
	reach := make([]bool, n)
	stack := []int{start}
	reach[start] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, tr := range trans[u] {
			if !reach[tr.To] {
				reach[tr.To] = true
				stack = append(stack, tr.To)
			}
		}
	}
	// Backward reachability from final states (dead-state trimming).
	rev := make([][]int, n)
	for u := 0; u < n; u++ {
		for _, tr := range trans[u] {
			rev[tr.To] = append(rev[tr.To], u)
		}
	}
	live := make([]bool, n)
	for s := 0; s < n; s++ {
		if final[s] && reach[s] {
			if !live[s] {
				live[s] = true
				stack = append(stack, s)
			}
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range rev[u] {
			if reach[v] && !live[v] {
				live[v] = true
				stack = append(stack, v)
			}
		}
	}
	live[start] = true // always keep the initial state

	// Renumber surviving states.
	id := make([]int, n)
	for i := range id {
		id[i] = -1
	}
	next := 0
	for s := 0; s < n; s++ {
		if reach[s] && live[s] {
			id[s] = next
			next++
		}
	}
	f := &FST{
		dict:      b.dict,
		numStates: next,
		initial:   id[start],
		final:     make([]bool, next),
		trans:     make([][]Transition, next),
	}
	for s := 0; s < n; s++ {
		if id[s] < 0 {
			continue
		}
		f.final[id[s]] = final[s]
		for _, tr := range trans[s] {
			if id[tr.To] < 0 {
				continue
			}
			f.trans[id[s]] = append(f.trans[id[s]], Transition{To: id[tr.To], Label: tr.Label})
		}
	}
	f.mergeEquivalentStates()
	return f
}

// mergeEquivalentStates repeatedly merges states that are forward-equivalent:
// same finality and identical outgoing transition sets. Merging such states
// preserves the runs (and therefore the generated candidate subsequences) of
// the FST while producing the compact self-loop structure of the paper's
// FSTs (e.g. ".*" becomes a single self-loop), which both speeds up
// simulation and makes "state change" a meaningful signal for the relevant-
// position computation of D-SEQ.
func (f *FST) mergeEquivalentStates() {
	for {
		// Group states by signature.
		repr := make([]int, f.numStates)
		for i := range repr {
			repr[i] = i
		}
		groups := map[string]int{}
		merged := false
		for q := 0; q < f.numStates; q++ {
			sig := f.stateSignature(q)
			if first, ok := groups[sig]; ok {
				repr[q] = first
				merged = true
			} else {
				groups[sig] = q
			}
		}
		if !merged {
			return
		}
		// Renumber surviving states.
		id := make([]int, f.numStates)
		next := 0
		for q := 0; q < f.numStates; q++ {
			if repr[q] == q {
				id[q] = next
				next++
			}
		}
		for q := 0; q < f.numStates; q++ {
			id[q] = id[repr[q]]
		}
		newFinal := make([]bool, next)
		newTrans := make([][]Transition, next)
		for q := 0; q < f.numStates; q++ {
			if repr[q] != q {
				continue
			}
			nq := id[q]
			newFinal[nq] = f.final[q]
			seen := map[Transition]bool{}
			for _, tr := range f.trans[q] {
				nt := Transition{To: id[tr.To], Label: tr.Label}
				if !seen[nt] {
					seen[nt] = true
					newTrans[nq] = append(newTrans[nq], nt)
				}
			}
		}
		f.numStates = next
		f.initial = id[f.initial]
		f.final = newFinal
		f.trans = newTrans
	}
}

// stateSignature builds a canonical description of a state's finality and
// outgoing transitions.
func (f *FST) stateSignature(q int) string {
	keys := make([]string, 0, len(f.trans[q])+1)
	for _, tr := range f.trans[q] {
		keys = append(keys, fmt.Sprintf("%d/%d/%d/%t/%t/%t/%t", tr.To,
			tr.Label.Kind, tr.Label.Item, tr.Label.Exact, tr.Label.Generalize, tr.Label.ForceGen, tr.Label.Captured))
	}
	sort.Strings(keys)
	prefix := "n:"
	if f.final[q] {
		prefix = "f:"
	}
	return prefix + strings.Join(keys, "|")
}
