package fst_test

import (
	"math/rand"
	"testing"

	"seqmine/internal/dict"
	"seqmine/internal/fst"
	"seqmine/internal/paperex"
)

// benchSequences builds a deterministic workload of random sequences over the
// running-example vocabulary.
func benchSequences(n, maxLen int) (*dict.Dictionary, [][]dict.ItemID) {
	d := paperex.Dict()
	rng := rand.New(rand.NewSource(1))
	db := make([][]dict.ItemID, n)
	for i := range db {
		l := rng.Intn(maxLen) + 1
		seq := make([]dict.ItemID, l)
		for j := range seq {
			seq[j] = dict.ItemID(rng.Intn(d.Size()) + 1)
		}
		db[i] = seq
	}
	return d, db
}

func BenchmarkCompile(b *testing.B) {
	d := paperex.Dict()
	patterns := map[string]string{
		"running-example": paperex.PatternExpression,
		"max-length":      "[.*(.)]{1,5}.*",
		"gap-hierarchy":   ".*(.^)[.{0,1}(.^)]{1,4}.*",
	}
	for name, pat := range patterns {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fst.Compile(pat, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAcceptMatrix(b *testing.B) {
	d, db := benchSequences(200, 12)
	f := fst.MustCompile(paperex.PatternExpression, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.AcceptMatrix(db[i%len(db)])
	}
}

func BenchmarkEnumerateCandidates(b *testing.B) {
	d, db := benchSequences(200, 10)
	f := fst.MustCompile(paperex.PatternExpression, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.EnumerateCandidates(db[i%len(db)], paperex.Sigma)
	}
}

func BenchmarkForEachRun(b *testing.B) {
	d, db := benchSequences(200, 10)
	f := fst.MustCompile(paperex.PatternExpression, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ForEachRun(db[i%len(db)], func([][]dict.ItemID) bool { return true })
	}
}

func BenchmarkAccepts(b *testing.B) {
	d, db := benchSequences(200, 12)
	f := fst.MustCompile(".*(.^)[.{0,1}(.^)]{1,4}.*", d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Accepts(db[i%len(db)])
	}
}

// BenchmarkFlatAcceptBits measures the flattened backward reachability pass
// over the bitset accept matrix — the per-sequence precomputation of the
// rewritten DESQ-DFS hot path. The caller-provided dst keeps it to one
// amortized allocation, which the report pins.
func BenchmarkFlatAcceptBits(b *testing.B) {
	d, db := benchSequences(200, 12)
	flat := fst.MustCompile(paperex.PatternExpression, d).Flatten()
	var dst []uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		T := db[i%len(db)]
		n := (len(T) + 1) * flat.Words()
		if cap(dst) < n {
			dst = make([]uint64, n)
		}
		clear(dst[:n])
		flat.AcceptBits(T, dst[:n])
	}
}

// BenchmarkCanAccept measures the two-pass reachability prefilter: the
// O(states)-space scan that decides whether a sequence has any accepting run
// at all. It must stay allocation-free (pooled scratch) because every input
// sequence of a prefiltered run pays it.
func BenchmarkCanAccept(b *testing.B) {
	d, db := benchSequences(200, 12)
	flat := fst.MustCompile(paperex.PatternExpression, d).Flatten()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flat.CanAccept(db[i%len(db)])
	}
}
