package fst_test

import (
	"math/rand"
	"testing"

	"seqmine/internal/dict"
	"seqmine/internal/fst"
	"seqmine/internal/paperex"
)

// benchSequences builds a deterministic workload of random sequences over the
// running-example vocabulary.
func benchSequences(n, maxLen int) (*dict.Dictionary, [][]dict.ItemID) {
	d := paperex.Dict()
	rng := rand.New(rand.NewSource(1))
	db := make([][]dict.ItemID, n)
	for i := range db {
		l := rng.Intn(maxLen) + 1
		seq := make([]dict.ItemID, l)
		for j := range seq {
			seq[j] = dict.ItemID(rng.Intn(d.Size()) + 1)
		}
		db[i] = seq
	}
	return d, db
}

func BenchmarkCompile(b *testing.B) {
	d := paperex.Dict()
	patterns := map[string]string{
		"running-example": paperex.PatternExpression,
		"max-length":      "[.*(.)]{1,5}.*",
		"gap-hierarchy":   ".*(.^)[.{0,1}(.^)]{1,4}.*",
	}
	for name, pat := range patterns {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fst.Compile(pat, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAcceptMatrix(b *testing.B) {
	d, db := benchSequences(200, 12)
	f := fst.MustCompile(paperex.PatternExpression, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.AcceptMatrix(db[i%len(db)])
	}
}

func BenchmarkEnumerateCandidates(b *testing.B) {
	d, db := benchSequences(200, 10)
	f := fst.MustCompile(paperex.PatternExpression, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.EnumerateCandidates(db[i%len(db)], paperex.Sigma)
	}
}

func BenchmarkForEachRun(b *testing.B) {
	d, db := benchSequences(200, 10)
	f := fst.MustCompile(paperex.PatternExpression, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ForEachRun(db[i%len(db)], func([][]dict.ItemID) bool { return true })
	}
}

func BenchmarkAccepts(b *testing.B) {
	d, db := benchSequences(200, 12)
	f := fst.MustCompile(".*(.^)[.{0,1}(.^)]{1,4}.*", d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Accepts(db[i%len(db)])
	}
}
