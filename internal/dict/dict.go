// Package dict implements the item dictionary used throughout the miner: the
// vocabulary, the item hierarchy (a directed acyclic graph of generalizations),
// per-item document frequencies (the "f-list" of the paper), and the
// frequency-based item encoding.
//
// Items are identified by ItemID values called fids ("frequency ids"): fid 1 is
// the most frequent item, fid 2 the second most frequent, and so on. The total
// order used for item-based partitioning in the paper ("w1 < w2 iff f(w1) >
// f(w2)") therefore coincides with the numeric order of fids: the pivot item of
// a sequence is simply its maximum fid.
package dict

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ItemID identifies an item by its frequency rank (fid). The zero value None
// is reserved: it never names an item and doubles as the ε sentinel in output
// sets (an ε "item" is smaller than every real item).
type ItemID uint32

// None is the reserved zero ItemID (no item / ε).
const None ItemID = 0

// Dictionary is an immutable vocabulary with hierarchy and document
// frequencies. Build one with a Builder.
type Dictionary struct {
	names     []string // index = fid; names[0] == ""
	fidByName map[string]ItemID
	parents   [][]ItemID // direct generalizations
	children  [][]ItemID
	ancestors [][]ItemID // reflexive-transitive parents, sorted ascending
	docFreq   []int64    // f(w, D): number of input sequences that contain w or a descendant of w

	// freqSorted records whether docFreq is non-increasing in fid. Builder
	// output always is; Load output is whenever the file was written by Save.
	// When it holds, IsFrequent(w, sigma) reduces to w <= MaxFrequentFid(sigma).
	freqSorted bool
}

// Size returns the number of items in the dictionary.
func (d *Dictionary) Size() int { return len(d.names) - 1 }

// Contains reports whether fid names an item of this dictionary.
func (d *Dictionary) Contains(fid ItemID) bool {
	return fid != None && int(fid) < len(d.names)
}

// Name returns the string form of an item.
func (d *Dictionary) Name(fid ItemID) string {
	if !d.Contains(fid) {
		return ""
	}
	return d.names[fid]
}

// Fid looks up an item by name. The second result is false if the item is
// unknown.
func (d *Dictionary) Fid(name string) (ItemID, bool) {
	fid, ok := d.fidByName[name]
	return fid, ok
}

// MustFid is Fid for tests and examples; it panics on unknown items.
func (d *Dictionary) MustFid(name string) ItemID {
	fid, ok := d.Fid(name)
	if !ok {
		panic(fmt.Sprintf("dict: unknown item %q", name))
	}
	return fid
}

// DocFreq returns f(w, D), the number of input sequences that contain w or one
// of its descendants.
func (d *Dictionary) DocFreq(fid ItemID) int64 {
	if !d.Contains(fid) {
		return 0
	}
	return d.docFreq[fid]
}

// IsFrequent reports whether the item meets the minimum support threshold.
func (d *Dictionary) IsFrequent(fid ItemID, sigma int64) bool {
	return d.DocFreq(fid) >= sigma
}

// FrequencySorted reports whether document frequencies are non-increasing in
// fid. This holds for every Builder-built dictionary (fids are assigned by
// descending frequency) and is verified once at load time for dictionaries
// read from files. When it holds, the frequent-item test is a single integer
// comparison against MaxFrequentFid.
func (d *Dictionary) FrequencySorted() bool { return d.freqSorted }

// MaxFrequentFid returns the largest fid w with DocFreq(w) >= sigma, so that
// IsFrequent(w, sigma) iff w <= MaxFrequentFid(sigma); it returns None when no
// item is frequent. Only meaningful when FrequencySorted reports true.
func (d *Dictionary) MaxFrequentFid(sigma int64) ItemID {
	lo, hi := 1, d.Size()
	for lo <= hi {
		mid := (lo + hi) / 2
		if d.docFreq[mid] >= sigma {
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return ItemID(hi)
}

// Parents returns the direct generalizations of an item.
func (d *Dictionary) Parents(fid ItemID) []ItemID {
	if !d.Contains(fid) {
		return nil
	}
	return d.parents[fid]
}

// Children returns the direct specializations of an item.
func (d *Dictionary) Children(fid ItemID) []ItemID {
	if !d.Contains(fid) {
		return nil
	}
	return d.children[fid]
}

// Ancestors returns anc(w): the item itself plus all items reachable by
// repeated generalization, sorted by ascending fid.
func (d *Dictionary) Ancestors(fid ItemID) []ItemID {
	if !d.Contains(fid) {
		return nil
	}
	return d.ancestors[fid]
}

// HasAncestor reports whether anc ∈ anc(item), i.e. whether item ⇒* anc.
// Every item is an ancestor of itself.
func (d *Dictionary) HasAncestor(item, anc ItemID) bool {
	if !d.Contains(item) || !d.Contains(anc) {
		return false
	}
	as := d.ancestors[item]
	i := sort.Search(len(as), func(i int) bool { return as[i] >= anc })
	return i < len(as) && as[i] == anc
}

// IsA is an alias for HasAncestor: IsA(t, w) reports whether t is w or a
// descendant of w (t ∈ desc(w)).
func (d *Dictionary) IsA(t, w ItemID) bool { return d.HasAncestor(t, w) }

// AncestorsUpTo returns anc(t) ∩ desc(w): the ancestors of t (including t) that
// are descendants of w (including w). This is the output set of a captured
// "w^" item expression. The result is sorted by ascending fid.
func (d *Dictionary) AncestorsUpTo(t, w ItemID) []ItemID {
	if !d.IsA(t, w) {
		return nil
	}
	var out []ItemID
	for _, a := range d.ancestors[t] {
		if d.HasAncestor(a, w) {
			out = append(out, a)
		}
	}
	return out
}

// Leaves returns all items without children.
func (d *Dictionary) Leaves() []ItemID {
	var out []ItemID
	for fid := ItemID(1); int(fid) < len(d.names); fid++ {
		if len(d.children[fid]) == 0 {
			out = append(out, fid)
		}
	}
	return out
}

// MaxAncestors returns the largest number of proper ancestors of any item
// (Table II, "Max. ancestors").
func (d *Dictionary) MaxAncestors() int {
	max := 0
	for fid := ItemID(1); int(fid) < len(d.names); fid++ {
		if n := len(d.ancestors[fid]) - 1; n > max {
			max = n
		}
	}
	return max
}

// MeanAncestors returns the mean number of proper ancestors per item
// (Table II, "Mean ancestors").
func (d *Dictionary) MeanAncestors() float64 {
	if d.Size() == 0 {
		return 0
	}
	total := 0
	for fid := ItemID(1); int(fid) < len(d.names); fid++ {
		total += len(d.ancestors[fid]) - 1
	}
	return float64(total) / float64(d.Size())
}

// NumFrequent returns the number of items with document frequency >= sigma.
func (d *Dictionary) NumFrequent(sigma int64) int {
	n := 0
	for fid := ItemID(1); int(fid) < len(d.names); fid++ {
		if d.docFreq[fid] >= sigma {
			n++
		}
	}
	return n
}

// EncodeSequence converts item names to fids. Unknown items yield an error.
func (d *Dictionary) EncodeSequence(items []string) ([]ItemID, error) {
	out := make([]ItemID, len(items))
	for i, s := range items {
		fid, ok := d.fidByName[s]
		if !ok {
			return nil, fmt.Errorf("dict: unknown item %q", s)
		}
		out[i] = fid
	}
	return out, nil
}

// DecodeSequence converts fids back to item names.
func (d *Dictionary) DecodeSequence(seq []ItemID) []string {
	out := make([]string, len(seq))
	for i, fid := range seq {
		out[i] = d.Name(fid)
	}
	return out
}

// DecodeString renders a sequence of fids as a space-separated string, which
// is how mined patterns are reported.
func (d *Dictionary) DecodeString(seq []ItemID) string {
	return strings.Join(d.DecodeSequence(seq), " ")
}

// Save writes the dictionary in a simple line-oriented text format:
//
//	name<TAB>docFreq<TAB>parent1,parent2,...
//
// Items are written in fid order so that Load reproduces identical fids.
func (d *Dictionary) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for fid := ItemID(1); int(fid) < len(d.names); fid++ {
		parents := make([]string, 0, len(d.parents[fid]))
		for _, p := range d.parents[fid] {
			parents = append(parents, d.names[p])
		}
		if _, err := fmt.Fprintf(bw, "%s\t%d\t%s\n", d.names[fid], d.docFreq[fid], strings.Join(parents, ",")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a dictionary previously written by Save. Item order in the file
// determines fids (first line = fid 1).
func Load(r io.Reader) (*Dictionary, error) {
	type entry struct {
		name    string
		freq    int64
		parents []string
	}
	var entries []entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) < 2 {
			return nil, fmt.Errorf("dict: malformed line %q", line)
		}
		freq, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dict: bad frequency in line %q: %v", line, err)
		}
		e := entry{name: parts[0], freq: freq}
		if len(parts) >= 3 && parts[2] != "" {
			e.parents = strings.Split(parts[2], ",")
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	d := &Dictionary{
		names:     make([]string, 1, len(entries)+1),
		fidByName: make(map[string]ItemID, len(entries)),
		parents:   make([][]ItemID, 1, len(entries)+1),
		children:  make([][]ItemID, 1, len(entries)+1),
		docFreq:   make([]int64, 1, len(entries)+1),
	}
	for _, e := range entries {
		fid := ItemID(len(d.names))
		if _, dup := d.fidByName[e.name]; dup {
			return nil, fmt.Errorf("dict: duplicate item %q", e.name)
		}
		d.names = append(d.names, e.name)
		d.fidByName[e.name] = fid
		d.parents = append(d.parents, nil)
		d.children = append(d.children, nil)
		d.docFreq = append(d.docFreq, e.freq)
	}
	for i, e := range entries {
		fid := ItemID(i + 1)
		for _, pn := range e.parents {
			p, ok := d.fidByName[pn]
			if !ok {
				return nil, fmt.Errorf("dict: item %q has unknown parent %q", e.name, pn)
			}
			d.parents[fid] = append(d.parents[fid], p)
			d.children[p] = append(d.children[p], fid)
		}
	}
	if err := d.computeAncestors(); err != nil {
		return nil, err
	}
	return d, nil
}

// computeAncestors fills the reflexive-transitive ancestor sets and checks
// that the hierarchy is acyclic.
func (d *Dictionary) computeAncestors() error {
	n := len(d.names)
	d.ancestors = make([][]ItemID, n)
	state := make([]uint8, n) // 0 = unvisited, 1 = in progress, 2 = done
	var visit func(fid ItemID) error
	visit = func(fid ItemID) error {
		switch state[fid] {
		case 1:
			return fmt.Errorf("dict: hierarchy cycle involving item %q", d.names[fid])
		case 2:
			return nil
		}
		state[fid] = 1
		set := map[ItemID]struct{}{fid: {}}
		for _, p := range d.parents[fid] {
			if err := visit(p); err != nil {
				return err
			}
			for _, a := range d.ancestors[p] {
				set[a] = struct{}{}
			}
		}
		anc := make([]ItemID, 0, len(set))
		for a := range set {
			anc = append(anc, a)
		}
		sort.Slice(anc, func(i, j int) bool { return anc[i] < anc[j] })
		d.ancestors[fid] = anc
		state[fid] = 2
		return nil
	}
	for fid := ItemID(1); int(fid) < n; fid++ {
		if err := visit(fid); err != nil {
			return err
		}
	}
	d.freqSorted = true
	for fid := 2; fid < n; fid++ {
		if d.docFreq[fid] > d.docFreq[fid-1] {
			d.freqSorted = false
			break
		}
	}
	return nil
}

// Builder accumulates the hierarchy and document frequencies of a dataset and
// produces an immutable Dictionary with frequency-ordered fids.
//
// Typical use:
//
//	b := dict.NewBuilder()
//	b.AddItem("a1", "A")           // declare hierarchy edges
//	b.AddSequence([]string{"a1", "c", "d", "c", "b"})
//	d, err := b.Build()
type Builder struct {
	ids      map[string]int
	names    []string
	parents  [][]int
	docFreq  []int64
	numSeqs  int64
	scratch  map[int]struct{} // per-sequence dedup
	finished bool
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{ids: make(map[string]int), scratch: make(map[int]struct{})}
}

func (b *Builder) intern(name string) int {
	if id, ok := b.ids[name]; ok {
		return id
	}
	id := len(b.names)
	b.ids[name] = id
	b.names = append(b.names, name)
	b.parents = append(b.parents, nil)
	b.docFreq = append(b.docFreq, 0)
	return id
}

// AddItem declares an item and (optionally) its direct parents. Items may be
// declared repeatedly; parent lists accumulate (duplicates are ignored).
func (b *Builder) AddItem(name string, parents ...string) {
	id := b.intern(name)
	for _, p := range parents {
		pid := b.intern(p)
		dup := false
		for _, existing := range b.parents[id] {
			if existing == pid {
				dup = true
				break
			}
		}
		if !dup && pid != id {
			b.parents[id] = append(b.parents[id], pid)
		}
	}
}

// AddSequence records one input sequence for document-frequency counting.
// Each item and each of its (transitive) ancestors is counted at most once per
// sequence. Unknown items are interned implicitly (without parents).
func (b *Builder) AddSequence(items []string) {
	b.numSeqs++
	clear(b.scratch)
	var mark func(id int)
	mark = func(id int) {
		if _, seen := b.scratch[id]; seen {
			return
		}
		b.scratch[id] = struct{}{}
		for _, p := range b.parents[id] {
			mark(p)
		}
	}
	for _, it := range items {
		mark(b.intern(it))
	}
	for id := range b.scratch {
		b.docFreq[id]++
	}
}

// NumSequences returns the number of sequences seen so far.
func (b *Builder) NumSequences() int64 { return b.numSeqs }

// Build assigns fids by descending document frequency (ties broken by name)
// and returns the immutable Dictionary. The Builder must not be reused.
func (b *Builder) Build() (*Dictionary, error) {
	if b.finished {
		return nil, errors.New("dict: Builder.Build called twice")
	}
	b.finished = true

	order := make([]int, len(b.names))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, c := order[i], order[j]
		if b.docFreq[a] != b.docFreq[c] {
			return b.docFreq[a] > b.docFreq[c]
		}
		return b.names[a] < b.names[c]
	})

	fidOf := make([]ItemID, len(b.names))
	d := &Dictionary{
		names:     make([]string, len(b.names)+1),
		fidByName: make(map[string]ItemID, len(b.names)),
		parents:   make([][]ItemID, len(b.names)+1),
		children:  make([][]ItemID, len(b.names)+1),
		docFreq:   make([]int64, len(b.names)+1),
	}
	for rank, id := range order {
		fid := ItemID(rank + 1)
		fidOf[id] = fid
		d.names[fid] = b.names[id]
		d.fidByName[b.names[id]] = fid
		d.docFreq[fid] = b.docFreq[id]
	}
	for id, ps := range b.parents {
		fid := fidOf[id]
		for _, p := range ps {
			pf := fidOf[p]
			d.parents[fid] = append(d.parents[fid], pf)
			d.children[pf] = append(d.children[pf], fid)
		}
	}
	for fid := ItemID(1); int(fid) < len(d.names); fid++ {
		sort.Slice(d.parents[fid], func(i, j int) bool { return d.parents[fid][i] < d.parents[fid][j] })
		sort.Slice(d.children[fid], func(i, j int) bool { return d.children[fid][i] < d.children[fid][j] })
	}
	if err := d.computeAncestors(); err != nil {
		return nil, err
	}
	return d, nil
}

// AppendPackedKey appends the canonical packed encoding of a fid sequence to
// buf: four little-endian bytes per item. It is the one sequence-key encoding
// shared by pattern merging (miner.Key), the combiner fingerprints of the
// distributed miners and the candidate interning of DESQ-COUNT; keeping a
// single encoder means keys computed in different layers always compare equal.
func AppendPackedKey(buf []byte, seq []ItemID) []byte {
	for _, v := range seq {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return buf
}

// PackKey returns the canonical packed key of a fid sequence (see
// AppendPackedKey) as a string, suitable for use as a map key.
func PackKey(seq []ItemID) string {
	return string(AppendPackedKey(make([]byte, 0, len(seq)*4), seq))
}

// UnpackKey decodes a key produced by PackKey back into the fid sequence. A
// key whose length is not a multiple of four returns nil (no valid sequence
// encodes to it).
func UnpackKey(key string) []ItemID {
	if len(key)%4 != 0 {
		return nil
	}
	out := make([]ItemID, len(key)/4)
	for i := range out {
		out[i] = ItemID(key[4*i]) | ItemID(key[4*i+1])<<8 | ItemID(key[4*i+2])<<16 | ItemID(key[4*i+3])<<24
	}
	return out
}

// HashItems is the canonical hash of a fid sequence, an FNV-1a style fold
// over the item values. It hashes exactly the information PackKey encodes, so
// open-addressing tables keyed by item slices and string maps keyed by PackKey
// agree on candidate identity.
func HashItems(seq []ItemID) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range seq {
		h ^= uint64(uint32(v))
		h *= 1099511628211
	}
	return h
}

// PivotOf returns the pivot item of a sequence: its maximum (least frequent)
// item, or None for an empty sequence.
func PivotOf(seq []ItemID) ItemID {
	var max ItemID
	for _, it := range seq {
		if it > max {
			max = it
		}
	}
	return max
}
