package dict_test

import (
	"bytes"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"seqmine/internal/dict"
	"seqmine/internal/paperex"
)

// buildRunningExample builds the Fig. 2 dictionary through the Builder (its
// own tie-break, which may differ from the paper's arbitrary one for equal
// frequencies, is irrelevant for these assertions).
func buildRunningExample(t *testing.T) *dict.Dictionary {
	t.Helper()
	b := dict.NewBuilder()
	b.AddItem("a1", "A")
	b.AddItem("a2", "A")
	for _, name := range []string{"A", "b", "c", "d", "e"} {
		b.AddItem(name)
	}
	for _, seq := range paperex.RawDB() {
		b.AddSequence(seq)
	}
	d, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return d
}

func TestBuilderDocumentFrequencies(t *testing.T) {
	d := buildRunningExample(t)
	want := map[string]int64{"b": 5, "A": 4, "d": 3, "a1": 3, "c": 2, "e": 1, "a2": 1}
	for name, freq := range want {
		fid, ok := d.Fid(name)
		if !ok {
			t.Fatalf("item %q missing", name)
		}
		if got := d.DocFreq(fid); got != freq {
			t.Errorf("f(%s) = %d, want %d", name, got, freq)
		}
	}
	if d.Size() != 7 {
		t.Errorf("Size = %d, want 7", d.Size())
	}
}

func TestBuilderFrequencyOrder(t *testing.T) {
	d := buildRunningExample(t)
	// fids must be ordered by non-increasing document frequency.
	for fid := dict.ItemID(2); int(fid) <= d.Size(); fid++ {
		if d.DocFreq(fid) > d.DocFreq(fid-1) {
			t.Errorf("fid %d (%s, f=%d) more frequent than fid %d (%s, f=%d)",
				fid, d.Name(fid), d.DocFreq(fid), fid-1, d.Name(fid-1), d.DocFreq(fid-1))
		}
	}
	// b is the most frequent item, so it must have fid 1.
	if b := d.MustFid("b"); b != 1 {
		t.Errorf("fid(b) = %d, want 1", b)
	}
	// A is the second most frequent.
	if a := d.MustFid("A"); a != 2 {
		t.Errorf("fid(A) = %d, want 2", a)
	}
}

func TestPaperFixtureOrder(t *testing.T) {
	d := paperex.Dict()
	want := []string{"b", "A", "d", "a1", "c", "e", "a2"}
	for i, name := range want {
		fid := dict.ItemID(i + 1)
		if d.Name(fid) != name {
			t.Errorf("fid %d = %q, want %q", fid, d.Name(fid), name)
		}
	}
	wantFreq := []int64{5, 4, 3, 3, 2, 1, 1}
	for i, f := range wantFreq {
		if got := d.DocFreq(dict.ItemID(i + 1)); got != f {
			t.Errorf("DocFreq(%d) = %d, want %d", i+1, got, f)
		}
	}
}

func TestAncestors(t *testing.T) {
	d := paperex.Dict()
	a1, a2, A := d.MustFid("a1"), d.MustFid("a2"), d.MustFid("A")
	if got := d.Ancestors(a1); !reflect.DeepEqual(got, []dict.ItemID{A, a1}) {
		t.Errorf("anc(a1) = %v, want [%d %d]", got, A, a1)
	}
	if got := d.Ancestors(A); !reflect.DeepEqual(got, []dict.ItemID{A}) {
		t.Errorf("anc(A) = %v, want [%d]", got, A)
	}
	if !d.IsA(a1, A) || !d.IsA(a2, A) || !d.IsA(A, A) {
		t.Error("a1, a2 and A must all be descendants of A")
	}
	if d.IsA(A, a1) {
		t.Error("A must not be a descendant of a1")
	}
	if d.IsA(d.MustFid("b"), A) {
		t.Error("b must not be a descendant of A")
	}
	// Children of A are a1 and a2 (in fid order).
	kids := d.Children(A)
	if len(kids) != 2 || kids[0] != d.MustFid("a1") || kids[1] != d.MustFid("a2") {
		t.Errorf("children(A) = %v", kids)
	}
}

func TestAncestorsUpTo(t *testing.T) {
	d := paperex.Dict()
	a1, A, b := d.MustFid("a1"), d.MustFid("A"), d.MustFid("b")
	got := d.AncestorsUpTo(a1, A)
	want := []dict.ItemID{A, a1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AncestorsUpTo(a1, A) = %v, want %v", got, want)
	}
	if got := d.AncestorsUpTo(a1, a1); !reflect.DeepEqual(got, []dict.ItemID{a1}) {
		t.Errorf("AncestorsUpTo(a1, a1) = %v", got)
	}
	if got := d.AncestorsUpTo(b, A); got != nil {
		t.Errorf("AncestorsUpTo(b, A) = %v, want nil", got)
	}
}

func TestEncodeDecode(t *testing.T) {
	d := paperex.Dict()
	seq, err := d.EncodeSequence([]string{"a1", "c", "d", "c", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.DecodeString(seq); got != "a1 c d c b" {
		t.Errorf("DecodeString = %q", got)
	}
	if _, err := d.EncodeSequence([]string{"nope"}); err == nil {
		t.Error("expected error for unknown item")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := buildRunningExample(t)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := dict.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Size() != d.Size() {
		t.Fatalf("size mismatch: %d vs %d", d2.Size(), d.Size())
	}
	for fid := dict.ItemID(1); int(fid) <= d.Size(); fid++ {
		if d.Name(fid) != d2.Name(fid) {
			t.Errorf("name mismatch at fid %d: %q vs %q", fid, d.Name(fid), d2.Name(fid))
		}
		if d.DocFreq(fid) != d2.DocFreq(fid) {
			t.Errorf("freq mismatch at fid %d", fid)
		}
		if !reflect.DeepEqual(d.Ancestors(fid), d2.Ancestors(fid)) {
			t.Errorf("ancestors mismatch at fid %d", fid)
		}
	}
}

func TestLoadRejectsCycle(t *testing.T) {
	const text = "x\t1\ty\ny\t1\tx\n"
	if _, err := dict.Load(bytes.NewReader([]byte(text))); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestLoadRejectsUnknownParent(t *testing.T) {
	const text = "x\t1\tmissing\n"
	if _, err := dict.Load(bytes.NewReader([]byte(text))); err == nil {
		t.Fatal("expected unknown-parent error")
	}
}

func TestHierarchyStats(t *testing.T) {
	d := paperex.Dict()
	if got := d.MaxAncestors(); got != 1 {
		t.Errorf("MaxAncestors = %d, want 1", got)
	}
	// a1 and a2 have one proper ancestor each; 2/7 total.
	if got := d.MeanAncestors(); got < 0.28 || got > 0.29 {
		t.Errorf("MeanAncestors = %f", got)
	}
	leaves := d.Leaves()
	if len(leaves) != 6 {
		t.Errorf("Leaves = %v, want 6 items (all but A)", leaves)
	}
	if d.NumFrequent(2) != 5 {
		t.Errorf("NumFrequent(2) = %d, want 5", d.NumFrequent(2))
	}
	if d.NumFrequent(1) != 7 {
		t.Errorf("NumFrequent(1) = %d, want 7", d.NumFrequent(1))
	}
}

func TestPivotOf(t *testing.T) {
	d := paperex.Dict()
	cases := []struct {
		seq  []string
		want string
	}{
		{[]string{"a1", "a1", "b"}, "a1"},
		{[]string{"a1", "A", "b"}, "a1"},
		{[]string{"a1", "b"}, "a1"},
		{[]string{"a1", "c", "d", "c", "b"}, "c"},
		{[]string{"b"}, "b"},
	}
	for _, c := range cases {
		enc, err := d.EncodeSequence(c.seq)
		if err != nil {
			t.Fatal(err)
		}
		if got := dict.PivotOf(enc); got != d.MustFid(c.want) {
			t.Errorf("PivotOf(%v) = %s, want %s", c.seq, d.Name(got), c.want)
		}
	}
	if dict.PivotOf(nil) != dict.None {
		t.Error("PivotOf(nil) must be None")
	}
}

func TestIsFrequent(t *testing.T) {
	d := paperex.Dict()
	if !d.IsFrequent(d.MustFid("c"), 2) {
		t.Error("c should be frequent at sigma=2")
	}
	if d.IsFrequent(d.MustFid("e"), 2) {
		t.Error("e should be infrequent at sigma=2")
	}
}

// TestHasAncestorConsistentWithAncestors is a property test: HasAncestor(x, a)
// holds exactly when a appears in Ancestors(x).
func TestHasAncestorConsistentWithAncestors(t *testing.T) {
	d := paperex.Dict()
	f := func(x, a uint8) bool {
		xi := dict.ItemID(x%7 + 1)
		ai := dict.ItemID(a%7 + 1)
		in := false
		for _, v := range d.Ancestors(xi) {
			if v == ai {
				in = true
			}
		}
		return d.HasAncestor(xi, ai) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestBuilderRandomFrequencies checks, on random small databases, that the
// Builder's document frequencies equal a brute-force count and that fid order
// is consistent with frequencies.
func TestBuilderRandomFrequencies(t *testing.T) {
	f := func(raw [][]uint8) bool {
		names := []string{"x0", "x1", "x2", "x3", "p0", "p1"}
		b := dict.NewBuilder()
		// x0..x3 are leaves, x0,x1 -> p0, x2 -> p1.
		b.AddItem("x0", "p0")
		b.AddItem("x1", "p0")
		b.AddItem("x2", "p1")
		b.AddItem("x3")
		var db [][]string
		for _, row := range raw {
			var seq []string
			for _, v := range row {
				seq = append(seq, names[v%4])
			}
			if len(seq) == 0 {
				continue
			}
			db = append(db, seq)
			b.AddSequence(seq)
		}
		d, err := b.Build()
		if err != nil {
			return false
		}
		// Brute-force document frequencies.
		want := make(map[string]int64)
		for _, seq := range db {
			seen := map[string]bool{}
			for _, it := range seq {
				seen[it] = true
				switch it {
				case "x0", "x1":
					seen["p0"] = true
				case "x2":
					seen["p1"] = true
				}
			}
			for k := range seen {
				want[k]++
			}
		}
		for _, n := range names {
			fid, ok := d.Fid(n)
			if !ok {
				continue
			}
			if d.DocFreq(fid) != want[n] {
				return false
			}
		}
		// fids sorted by frequency.
		freqs := make([]int64, 0, d.Size())
		for fid := dict.ItemID(1); int(fid) <= d.Size(); fid++ {
			freqs = append(freqs, d.DocFreq(fid))
		}
		return sort.SliceIsSorted(freqs, func(i, j int) bool { return freqs[i] > freqs[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestMaxFrequentFid pins the single-compare frequent-item test the flattened
// miner hot path relies on: for a Builder-built (frequency-sorted) dictionary,
// IsFrequent(w, sigma) must hold exactly for w <= MaxFrequentFid(sigma).
func TestMaxFrequentFid(t *testing.T) {
	d := buildRunningExample(t)
	if !d.FrequencySorted() {
		t.Fatal("Builder-built dictionary must report FrequencySorted")
	}
	for sigma := int64(0); sigma <= 5; sigma++ {
		limit := d.MaxFrequentFid(sigma)
		for w := dict.ItemID(1); int(w) <= d.Size(); w++ {
			if got, want := w <= limit, d.IsFrequent(w, sigma); got != want {
				t.Errorf("sigma %d: w=%v <= MaxFrequentFid=%v is %v, IsFrequent is %v",
					sigma, w, limit, got, want)
			}
		}
	}
	if got := d.MaxFrequentFid(1 << 40); got != dict.None {
		t.Errorf("MaxFrequentFid(huge) = %v, want None", got)
	}
}

// TestParentsAndNumSequences covers the direct-generalization accessor and
// the Builder's sequence counter.
func TestParentsAndNumSequences(t *testing.T) {
	b := dict.NewBuilder()
	b.AddItem("a1", "A")
	b.AddItem("a2", "A")
	for _, name := range []string{"A", "b", "c", "d", "e"} {
		b.AddItem(name)
	}
	for _, seq := range paperex.RawDB() {
		b.AddSequence(seq)
	}
	if got, want := b.NumSequences(), int64(len(paperex.RawDB())); got != want {
		t.Fatalf("NumSequences = %d, want %d", got, want)
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ps := d.Parents(d.MustFid("a1"))
	if len(ps) != 1 || d.Name(ps[0]) != "A" {
		t.Errorf("Parents(a1) = %v, want [A]", ps)
	}
	if ps := d.Parents(d.MustFid("b")); len(ps) != 0 {
		t.Errorf("Parents(b) = %v, want none", ps)
	}
	if ps := d.Parents(dict.ItemID(999)); ps != nil {
		t.Errorf("Parents(out of range) = %v, want nil", ps)
	}
}

// TestPackKeyRoundTrip pins the canonical packed sequence-key encoding shared
// by the miner's pattern keys, the D-SEQ combiner fingerprints and the flat
// candidate tables: 4 bytes little endian per item, loss-free round trip.
func TestPackKeyRoundTrip(t *testing.T) {
	seqs := [][]dict.ItemID{
		nil,
		{1},
		{1, 2, 300},
		{0x01020304, 0x7fffffff, 0},
	}
	for _, seq := range seqs {
		key := dict.PackKey(seq)
		if len(key) != 4*len(seq) {
			t.Fatalf("PackKey(%v): %d bytes, want %d", seq, len(key), 4*len(seq))
		}
		got := dict.UnpackKey(key)
		if len(seq) == 0 {
			if len(got) != 0 {
				t.Fatalf("UnpackKey of empty key = %v", got)
			}
			continue
		}
		if !reflect.DeepEqual(got, seq) {
			t.Fatalf("round trip of %v = %v", seq, got)
		}
	}
	if got := dict.UnpackKey("abc"); got != nil {
		t.Errorf("UnpackKey of a non-multiple-of-4 key = %v, want nil", got)
	}
	// AppendPackedKey appends behind existing bytes.
	buf := dict.AppendPackedKey([]byte("x"), []dict.ItemID{7})
	if string(buf) != "x"+dict.PackKey([]dict.ItemID{7}) {
		t.Errorf("AppendPackedKey did not append: %q", buf)
	}
}

// TestHashItems pins that the canonical sequence hash depends on content and
// order, and agrees across equal slices.
func TestHashItems(t *testing.T) {
	a := []dict.ItemID{1, 2, 3}
	if dict.HashItems(a) != dict.HashItems([]dict.ItemID{1, 2, 3}) {
		t.Error("equal sequences must hash equal")
	}
	if dict.HashItems(a) == dict.HashItems([]dict.ItemID{3, 2, 1}) {
		t.Error("hash should depend on order")
	}
	if dict.HashItems(nil) == dict.HashItems(a) {
		t.Error("empty and non-empty sequences should differ")
	}
}
