// Package paperex provides the running example of the paper (Fig. 2) as a
// shared test fixture: the sequence database Dex, the item hierarchy, the item
// frequencies, and the example constraint πex = .*(A)[(.^).*]*(b).* with σ = 2.
//
// The dictionary is constructed with the exact item order of Fig. 2c
// (b < A < d < a1 < c < e < a2), so fids are:
//
//	b=1, A=2, d=3, a1=4, c=5, e=6, a2=7
//
// which makes the expected pivots, partitions and mining results of the paper
// directly checkable in tests.
package paperex

import (
	"math/rand"
	"strings"

	"seqmine/internal/dict"
)

// Sigma is the minimum support threshold used in the running example.
const Sigma int64 = 2

// PatternExpression is πex in the ASCII syntax of this library (↑ is ^).
//
// The paper writes πex = .*(A)[(.↑).*]*(b).*; its compiled FST (Fig. 4)
// permits uncaptured gap items anywhere between the captured items, i.e. the
// starred group behaves like [(.↑)|.]*. This library uses a strictly
// language-preserving compilation of pattern expressions, so the fixture
// states the gaps explicitly; the generated candidate sets are exactly those
// of Fig. 3.
const PatternExpression = ".*(A)[(.^)|.]*(b).*"

// dictText is the Save/Load text form of the Fig. 2 dictionary, in the item
// order of Fig. 2c so that fids match the paper's total order.
const dictText = `b	5
A	4
d	3
a1	3	A
c	2
e	1
a2	1	A
`

// Dict returns the running-example dictionary.
func Dict() *dict.Dictionary {
	d, err := dict.Load(strings.NewReader(dictText))
	if err != nil {
		panic("paperex: " + err.Error())
	}
	return d
}

// rawDB is Dex of Fig. 2a.
var rawDB = [][]string{
	{"a1", "c", "d", "c", "b"},
	{"e", "e", "a1", "e", "a1", "e", "b"},
	{"c", "d", "c", "b"},
	{"a2", "d", "b"},
	{"a1", "a1", "b"},
}

// DB returns Dex encoded with the fixture dictionary.
func DB(d *dict.Dictionary) [][]dict.ItemID {
	out := make([][]dict.ItemID, len(rawDB))
	for i, raw := range rawDB {
		enc, err := d.EncodeSequence(raw)
		if err != nil {
			panic("paperex: " + err.Error())
		}
		out[i] = enc
	}
	return out
}

// RawDB returns Dex as item names (one slice per sequence).
func RawDB() [][]string {
	out := make([][]string, len(rawDB))
	for i, s := range rawDB {
		out[i] = append([]string(nil), s...)
	}
	return out
}

// RandomDatabase generates a random database over the running-example
// vocabulary and hierarchy and builds a dictionary whose document frequencies
// are consistent with that database (the "f-list is known" assumption of the
// paper). It is used by tests that compare algorithms which rely on the
// f-list with ones that count true support.
func RandomDatabase(rng *rand.Rand, numSeqs, maxLen int) (*dict.Dictionary, [][]dict.ItemID) {
	vocab := []string{"b", "A", "d", "a1", "c", "e", "a2"}
	b := dict.NewBuilder()
	b.AddItem("a1", "A")
	b.AddItem("a2", "A")
	for _, name := range vocab {
		b.AddItem(name)
	}
	raw := make([][]string, numSeqs)
	for i := range raw {
		n := rng.Intn(maxLen) + 1
		seq := make([]string, n)
		for j := range seq {
			seq[j] = vocab[rng.Intn(len(vocab))]
		}
		raw[i] = seq
		b.AddSequence(seq)
	}
	d, err := b.Build()
	if err != nil {
		panic("paperex: " + err.Error())
	}
	db := make([][]dict.ItemID, numSeqs)
	for i, seq := range raw {
		enc, err := d.EncodeSequence(seq)
		if err != nil {
			panic("paperex: " + err.Error())
		}
		db[i] = enc
	}
	return d, db
}

// ExpectedFrequent maps each frequent subsequence of the running example
// (under πex and σ=2) to its frequency, keyed by the space-separated decoded
// pattern.
func ExpectedFrequent() map[string]int64 {
	return map[string]int64{
		"a1 a1 b": 2,
		"a1 A b":  2,
		"a1 b":    3,
	}
}
