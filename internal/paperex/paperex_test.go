package paperex

import (
	"math/rand"
	"testing"

	"seqmine/internal/dict"
)

func TestDictMatchesFigure2(t *testing.T) {
	d := Dict()
	// Fig. 2c total order: b < A < d < a1 < c < e < a2 → fids 1..7.
	want := []struct {
		name string
		fid  dict.ItemID
	}{
		{"b", 1}, {"A", 2}, {"d", 3}, {"a1", 4}, {"c", 5}, {"e", 6}, {"a2", 7},
	}
	for _, w := range want {
		if got, ok := d.Fid(w.name); !ok || got != w.fid {
			t.Fatalf("Fid(%s) = %d, %v — want %d", w.name, got, ok, w.fid)
		}
	}
}

func TestDBEncodesEverySequence(t *testing.T) {
	d := Dict()
	db := DB(d)
	raw := RawDB()
	if len(db) != len(raw) {
		t.Fatalf("DB has %d sequences, RawDB %d", len(db), len(raw))
	}
	for i := range db {
		if len(db[i]) != len(raw[i]) {
			t.Fatalf("sequence %d: %d fids vs %d items", i, len(db[i]), len(raw[i]))
		}
	}
	// RawDB hands out copies: mutating one must not corrupt the fixture.
	raw[0][0] = "mutated"
	if RawDB()[0][0] != "a1" {
		t.Fatal("RawDB aliases its backing array")
	}
}

func TestRandomDatabaseIsDeterministic(t *testing.T) {
	d1, db1 := RandomDatabase(rand.New(rand.NewSource(42)), 20, 8)
	d2, db2 := RandomDatabase(rand.New(rand.NewSource(42)), 20, 8)
	if d1.Size() != d2.Size() || len(db1) != len(db2) {
		t.Fatal("same seed produced different shapes")
	}
	for i := range db1 {
		if len(db1[i]) != len(db2[i]) {
			t.Fatalf("sequence %d lengths differ", i)
		}
		for j := range db1[i] {
			if db1[i][j] != db2[i][j] {
				t.Fatalf("sequence %d item %d differs", i, j)
			}
		}
		if len(db1[i]) == 0 || len(db1[i]) > 8 {
			t.Fatalf("sequence %d length %d out of [1,8]", i, len(db1[i]))
		}
	}
}

func TestExpectedFrequentIsTheKnownAnswer(t *testing.T) {
	want := ExpectedFrequent()
	if len(want) != 3 || want["a1 b"] != 3 || want["a1 A b"] != 2 || want["a1 a1 b"] != 2 {
		t.Fatalf("fixture answer drifted: %v", want)
	}
}
