package miner_test

import (
	"math/rand"
	"testing"

	"seqmine/internal/dict"
	"seqmine/internal/fst"
	"seqmine/internal/miner"
	"seqmine/internal/paperex"
)

func benchDatabase(n, maxLen int) (*dict.Dictionary, *fst.FST, []miner.WeightedSequence) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	rng := rand.New(rand.NewSource(4))
	db := make([][]dict.ItemID, n)
	for i := range db {
		l := rng.Intn(maxLen) + 1
		seq := make([]dict.ItemID, l)
		for j := range seq {
			seq[j] = dict.ItemID(rng.Intn(d.Size()) + 1)
		}
		db[i] = seq
	}
	return d, f, miner.Weighted(db)
}

// BenchmarkMineDFS measures the pattern-growth miner (DESQ-DFS). Allocations
// are reported and gated: the flattened hot path must stay arena-backed, so a
// change that reintroduces per-snapshot or per-state-set heap traffic shows
// up as an allocs/op regression even when time happens to absorb it.
func BenchmarkMineDFS(b *testing.B) {
	_, f, db := benchDatabase(500, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		miner.MineDFS(f, db, 5, miner.DFSOptions{})
	}
}

// BenchmarkMineCount measures the enumerate-and-count miner (DESQ-COUNT).
func BenchmarkMineCount(b *testing.B) {
	_, f, db := benchDatabase(500, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		miner.MineCount(f, db, 5)
	}
}

// BenchmarkMineDFSPrefilter measures DESQ-DFS with the two-pass reachability
// prefilter, which pre-screens every sequence with fst.Flat.CanAccept before
// the projected-database machinery touches it.
func BenchmarkMineDFSPrefilter(b *testing.B) {
	_, f, db := benchDatabase(500, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		miner.MineDFS(f, db, 5, miner.DFSOptions{Prefilter: true})
	}
}

// BenchmarkMineDFSPivot measures pivot-restricted local mining as used by the
// D-SEQ reduce phase, with and without early stopping.
func BenchmarkMineDFSPivot(b *testing.B) {
	d, f, db := benchDatabase(500, 10)
	pivotItem := d.MustFid("a1")
	for _, early := range []bool{false, true} {
		name := "plain"
		if early {
			name = "earlyStopping"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				miner.MineDFS(f, db, 5, miner.DFSOptions{Pivot: pivotItem, EarlyStopping: early})
			}
		})
	}
}
