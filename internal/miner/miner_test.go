package miner_test

import (
	"math/rand"
	"reflect"
	"testing"

	"seqmine/internal/dict"
	"seqmine/internal/fst"
	"seqmine/internal/miner"
	"seqmine/internal/paperex"
)

func runningExample(t *testing.T) (*dict.Dictionary, *fst.FST, [][]dict.ItemID) {
	t.Helper()
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	return d, f, paperex.DB(d)
}

func TestMineCountRunningExample(t *testing.T) {
	d, f, db := runningExample(t)
	got := miner.PatternsToMap(d, miner.MineCount(f, miner.Weighted(db), paperex.Sigma))
	if !reflect.DeepEqual(got, paperex.ExpectedFrequent()) {
		t.Errorf("MineCount = %v, want %v", got, paperex.ExpectedFrequent())
	}
}

func TestMineDFSRunningExample(t *testing.T) {
	d, f, db := runningExample(t)
	got := miner.PatternsToMap(d, miner.MineDFS(f, miner.Weighted(db), paperex.Sigma, miner.DFSOptions{}))
	if !reflect.DeepEqual(got, paperex.ExpectedFrequent()) {
		t.Errorf("MineDFS = %v, want %v", got, paperex.ExpectedFrequent())
	}
}

func TestMineDFSSigmaOne(t *testing.T) {
	// With sigma=1 every candidate of every sequence is frequent; DESQ-DFS and
	// DESQ-COUNT must agree exactly.
	d, f, db := runningExample(t)
	want := miner.PatternsToMap(d, miner.MineCount(f, miner.Weighted(db), 1))
	got := miner.PatternsToMap(d, miner.MineDFS(f, miner.Weighted(db), 1, miner.DFSOptions{}))
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sigma=1 mismatch:\n got %v\nwant %v", got, want)
	}
	if len(got) == 0 {
		t.Fatal("expected a non-empty result at sigma=1")
	}
}

// TestMineDFSPivotRestricted mines partition P_a1 of the running example
// (Fig. 6): the sequences relevant for pivot a1 are T1, T2 and T5, and the
// frequent pivot sequences are exactly the three patterns of the paper.
func TestMineDFSPivotRestricted(t *testing.T) {
	d, f, db := runningExample(t)
	a1 := d.MustFid("a1")
	part := [][]dict.ItemID{db[0], db[1], db[4]} // T1, T2, T5
	for _, early := range []bool{false, true} {
		got := miner.PatternsToMap(d, miner.MineDFS(f, miner.Weighted(part), paperex.Sigma,
			miner.DFSOptions{Pivot: a1, EarlyStopping: early}))
		if !reflect.DeepEqual(got, paperex.ExpectedFrequent()) {
			t.Errorf("early=%v: partition P_a1 = %v, want %v", early, got, paperex.ExpectedFrequent())
		}
	}
}

// TestMineDFSPivotPartitionC: partition P_c receives only T1 (Fig. 3); no
// pivot-c sequence is frequent at sigma=2.
func TestMineDFSPivotPartitionC(t *testing.T) {
	d, f, db := runningExample(t)
	c := d.MustFid("c")
	got := miner.MineDFS(f, miner.Weighted([][]dict.ItemID{db[0]}), paperex.Sigma, miner.DFSOptions{Pivot: c})
	if len(got) != 0 {
		t.Errorf("partition P_c should produce no frequent sequences, got %v", miner.PatternsToMap(d, got))
	}
	// At sigma=1 the pivot-c partition outputs exactly the pivot-c candidates
	// of T1.
	got1 := miner.PatternsToMap(d, miner.MineDFS(f, miner.Weighted([][]dict.ItemID{db[0]}), 1, miner.DFSOptions{Pivot: c}))
	want := map[string]int64{
		"a1 c d c b": 1, "a1 c d b": 1, "a1 c b": 1, "a1 d c b": 1, "a1 c c b": 1,
	}
	if !reflect.DeepEqual(got1, want) {
		t.Errorf("pivot-c candidates = %v, want %v", got1, want)
	}
}

func TestMineDFSWeighted(t *testing.T) {
	d, f, db := runningExample(t)
	// Duplicate T5 with weight 3: a1 a1 b, a1 A b, a1 b all gain +2 support.
	weighted := miner.Weighted(db)
	weighted[4].Weight = 3
	got := miner.PatternsToMap(d, miner.MineDFS(f, weighted, paperex.Sigma, miner.DFSOptions{}))
	want := map[string]int64{"a1 a1 b": 4, "a1 A b": 4, "a1 b": 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("weighted MineDFS = %v, want %v", got, want)
	}
	gotCount := miner.PatternsToMap(d, miner.MineCount(f, weighted, paperex.Sigma))
	if !reflect.DeepEqual(gotCount, want) {
		t.Errorf("weighted MineCount = %v, want %v", gotCount, want)
	}
}

func TestMineDFSEmptyAndNoMatch(t *testing.T) {
	d, f, _ := runningExample(t)
	if got := miner.MineDFS(f, nil, 1, miner.DFSOptions{}); len(got) != 0 {
		t.Errorf("empty database should mine nothing, got %v", got)
	}
	// T3 has no accepting run; a database of only T3 yields nothing.
	t3, _ := d.EncodeSequence([]string{"c", "d", "c", "b"})
	if got := miner.MineDFS(f, miner.Weighted([][]dict.ItemID{t3}), 1, miner.DFSOptions{}); len(got) != 0 {
		t.Errorf("database without accepting runs should mine nothing, got %v", got)
	}
}

func TestSortPatternsAndHelpers(t *testing.T) {
	d := paperex.Dict()
	ps := []miner.Pattern{
		{Items: []dict.ItemID{d.MustFid("a1"), d.MustFid("b")}, Freq: 3},
		{Items: []dict.ItemID{d.MustFid("b")}, Freq: 5},
		{Items: []dict.ItemID{d.MustFid("A")}, Freq: 3},
	}
	miner.SortPatterns(ps)
	if ps[0].Freq != 5 {
		t.Errorf("highest frequency first, got %v", ps)
	}
	if ps[1].Items[0] != d.MustFid("A") {
		t.Errorf("ties broken by item order, got %v", ps)
	}
	m := miner.PatternsToMap(d, ps)
	if m["b"] != 5 || m["a1 b"] != 3 {
		t.Errorf("PatternsToMap = %v", m)
	}
}

// randomDB builds a random database over the running-example vocabulary.
func randomDB(rng *rand.Rand, d *dict.Dictionary, numSeqs, maxLen int) [][]dict.ItemID {
	db := make([][]dict.ItemID, numSeqs)
	for i := range db {
		n := rng.Intn(maxLen) + 1
		seq := make([]dict.ItemID, n)
		for j := range seq {
			seq[j] = dict.ItemID(rng.Intn(d.Size()) + 1)
		}
		db[i] = seq
	}
	return db
}

// TestMineDFSMatchesMineCountRandom is the central equivalence property:
// DESQ-DFS and DESQ-COUNT agree on random databases for several constraints
// and thresholds.
func TestMineDFSMatchesMineCountRandom(t *testing.T) {
	d := paperex.Dict()
	patterns := []string{
		paperex.PatternExpression,
		"[.*(.)]{1,3}.*",
		".*(A^)[.{0,1}(.)]{1,2}.*",
		".*(d) .* (b).*",
		".*[(A^=)|(c)] .* (b).*",
	}
	rng := rand.New(rand.NewSource(42))
	for _, pat := range patterns {
		f := fst.MustCompile(pat, d)
		for trial := 0; trial < 6; trial++ {
			db := randomDB(rng, d, 12, 6)
			for _, sigma := range []int64{1, 2, 3} {
				want := miner.PatternsToMap(d, miner.MineCount(f, miner.Weighted(db), sigma))
				got := miner.PatternsToMap(d, miner.MineDFS(f, miner.Weighted(db), sigma, miner.DFSOptions{}))
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("pattern %q sigma %d: DFS %v != COUNT %v (db=%v)", pat, sigma, got, want, db)
				}
			}
		}
	}
}

// TestPivotPartitionsCoverSequentialResult: mining each pivot partition of the
// full database with the pivot restriction and merging the results must equal
// the unrestricted sequential result (item-based partitioning correctness).
func TestPivotPartitionsCoverSequentialResult(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		db := randomDB(rng, d, 15, 6)
		for _, sigma := range []int64{1, 2} {
			want := miner.PatternsToMap(d, miner.MineDFS(f, miner.Weighted(db), sigma, miner.DFSOptions{}))
			got := map[string]int64{}
			for pivot := dict.ItemID(1); int(pivot) <= d.Size(); pivot++ {
				for _, p := range miner.MineDFS(f, miner.Weighted(db), sigma, miner.DFSOptions{Pivot: pivot}) {
					if dict.PivotOf(p.Items) != pivot {
						continue // non-pivot sequences are handled by their own partition
					}
					got[d.DecodeString(p.Items)] = p.Freq
				}
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d sigma %d: merged pivot partitions %v != sequential %v", trial, sigma, got, want)
			}
		}
	}
}

// TestEarlyStoppingPreservesResults: the early-stopping heuristic must not
// change the mining output of any pivot partition.
func TestEarlyStoppingPreservesResults(t *testing.T) {
	d := paperex.Dict()
	f := fst.MustCompile(paperex.PatternExpression, d)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		db := randomDB(rng, d, 15, 6)
		for pivot := dict.ItemID(1); int(pivot) <= d.Size(); pivot++ {
			plain := miner.PatternsToMap(d, miner.MineDFS(f, miner.Weighted(db), 2, miner.DFSOptions{Pivot: pivot}))
			early := miner.PatternsToMap(d, miner.MineDFS(f, miner.Weighted(db), 2, miner.DFSOptions{Pivot: pivot, EarlyStopping: true}))
			if !reflect.DeepEqual(plain, early) {
				t.Fatalf("pivot %s: early stopping changed results: %v vs %v", d.Name(pivot), plain, early)
			}
		}
	}
}

// TestPrefilterPreservesResults: the two-pass reachability prefilter skips
// sequences without accepting runs before mining; it must never change the
// output of any miner, for any pattern, threshold or pivot restriction.
func TestPrefilterPreservesResults(t *testing.T) {
	d := paperex.Dict()
	patterns := []string{
		paperex.PatternExpression,
		"[.*(.)]{1,3}.*",
		".*(d) .* (b).*",
	}
	rng := rand.New(rand.NewSource(23))
	for _, pat := range patterns {
		f := fst.MustCompile(pat, d)
		for trial := 0; trial < 4; trial++ {
			db := miner.Weighted(randomDB(rng, d, 12, 6))
			for _, sigma := range []int64{1, 2} {
				plainDFS := miner.PatternsToMap(d, miner.MineDFS(f, db, sigma, miner.DFSOptions{}))
				preDFS := miner.PatternsToMap(d, miner.MineDFS(f, db, sigma, miner.DFSOptions{Prefilter: true}))
				if !reflect.DeepEqual(plainDFS, preDFS) {
					t.Fatalf("pattern %q sigma %d: prefiltered DFS %v != plain %v", pat, sigma, preDFS, plainDFS)
				}
				plainCount := miner.PatternsToMap(d, miner.MineCount(f, db, sigma))
				preCount := miner.PatternsToMap(d, miner.MineCountOpts(f, db, sigma, miner.CountOptions{Prefilter: true}))
				if !reflect.DeepEqual(plainCount, preCount) {
					t.Fatalf("pattern %q sigma %d: prefiltered COUNT %v != plain %v", pat, sigma, preCount, plainCount)
				}
				enc := map[string]bool{}
				for _, p := range miner.MineCount(f, db, sigma) {
					enc[string(miner.Key(p.Items))] = true
				}
				plainSup := miner.SupportOf(f, db, sigma, enc)
				preSup := miner.SupportOfOpts(f, db, sigma, enc, miner.CountOptions{Prefilter: true})
				if !reflect.DeepEqual(plainSup, preSup) {
					t.Fatalf("pattern %q sigma %d: prefiltered SupportOf differs", pat, sigma)
				}
			}
			for pivot := dict.ItemID(1); int(pivot) <= d.Size(); pivot++ {
				plain := miner.PatternsToMap(d, miner.MineDFS(f, db, 2, miner.DFSOptions{Pivot: pivot, EarlyStopping: true}))
				pre := miner.PatternsToMap(d, miner.MineDFS(f, db, 2, miner.DFSOptions{Pivot: pivot, EarlyStopping: true, Prefilter: true}))
				if !reflect.DeepEqual(plain, pre) {
					t.Fatalf("pattern %q pivot %s: prefilter changed the pivot partition: %v vs %v",
						pat, d.Name(pivot), pre, plain)
				}
			}
		}
	}
}

// TestSupportOfWeighted pins the aggregation semantics of the flat counting
// path: weights of duplicate generated candidates sum per sequence weight, a
// candidate touched only by zero-weight sequences still appears (with count
// 0), candidates never generated stay absent, and want=false entries are
// excluded from the query.
func TestSupportOfWeighted(t *testing.T) {
	d, f, db := runningExample(t)
	weighted := miner.Weighted(db)
	weighted[0].Weight = 0 // T1 contributes structure but no support
	weighted[4].Weight = 3 // T5 counts three times

	enc := func(names ...string) string {
		seq, err := d.EncodeSequence(names)
		if err != nil {
			t.Fatalf("encode %v: %v", names, err)
		}
		return miner.Key(seq)
	}
	a1b := enc("a1", "b")
	t1only := enc("a1", "c", "d", "c", "b")
	absent := enc("b")
	excluded := enc("a1", "a1", "b")
	cands := map[string]bool{a1b: true, t1only: true, absent: true, excluded: false}

	// sigma=1: no output filtering, so the expectations follow Fig. 1 directly.
	got := miner.SupportOf(f, weighted, 1, cands)
	want := map[string]int64{
		a1b:    4, // T2 (1) + T5 (3); T1 has weight 0
		t1only: 0, // generated only by the zero-weight T1
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SupportOf = %v, want %v", got, want)
	}
}
